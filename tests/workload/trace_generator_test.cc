/** @file Unit and property tests for the synthetic trace generator. */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/profile_template.hh"
#include "sim/quant.hh"
#include "workload/trace_generator.hh"

using namespace soc;
using namespace soc::workload;

namespace
{

TraceConfig
shortConfig()
{
    TraceConfig cfg;
    cfg.end = 2 * sim::kWeek;
    return cfg;
}

} // namespace

TEST(TraceGenerator, DeterministicForSeed)
{
    TraceGenerator a(42, shortConfig());
    TraceGenerator b(42, shortConfig());
    const auto sa = a.utilSeries(serviceA());
    const auto sb = b.utilSeries(serviceA());
    ASSERT_EQ(sa.size(), sb.size());
    for (std::size_t i = 0; i < sa.size(); ++i)
        ASSERT_EQ(sa.at(i), sb.at(i));
}

TEST(TraceGenerator, DifferentSeedsDiffer)
{
    TraceGenerator a(1, shortConfig());
    TraceGenerator b(2, shortConfig());
    const auto sa = a.utilSeries(serviceA());
    const auto sb = b.utilSeries(serviceA());
    int diff = 0;
    for (std::size_t i = 0; i < sa.size(); ++i)
        if (sa.at(i) != sb.at(i))
            ++diff;
    EXPECT_GT(diff, static_cast<int>(sa.size()) / 2);
}

TEST(TraceGenerator, SeriesCoversConfiguredSpan)
{
    TraceGenerator gen(3, shortConfig());
    const auto series = gen.utilSeries(serviceB());
    EXPECT_EQ(series.size(),
              static_cast<std::size_t>(2 * sim::kSlotsPerWeek));
    EXPECT_EQ(series.interval(), sim::kSlot);
}

TEST(TraceGenerator, UtilStaysInUnitRange)
{
    TraceGenerator gen(4, shortConfig());
    for (const auto &arch : {serviceA(), serviceB(), mlTraining()}) {
        const auto series = gen.utilSeries(arch);
        for (double v : series.values()) {
            ASSERT_GE(v, 0.0);
            ASSERT_LE(v, 1.0);
        }
    }
}

TEST(TraceGenerator, WeekOverWeekRepeatability)
{
    // The core property behind Fig. 8: a DailyMed template built on
    // week 1 predicts week 2 with small error relative to the mean.
    TraceConfig cfg;
    cfg.end = 2 * sim::kWeek;
    TraceGenerator gen(5, cfg);
    const power::PowerModel model;
    const auto trace = gen.serverTrace(gen.randomVmMix(64), model);

    const auto week1 = trace.powerWatts.slice(0, sim::kWeek);
    const auto week2 =
        trace.powerWatts.slice(sim::kWeek, 2 * sim::kWeek);
    const auto tmpl = core::ProfileTemplate::build(
        core::TemplateStrategy::DailyMed, week1);
    const double err = tmpl.rmseAgainst(week2);
    const double mean = week2.stats().mean();
    EXPECT_LT(err / mean, 0.10)
        << "rmse=" << err << " mean=" << mean;
}

TEST(TraceGenerator, RandomVmMixFitsServer)
{
    TraceGenerator gen(6, shortConfig());
    for (int trial = 0; trial < 20; ++trial) {
        const auto mix = gen.randomVmMix(64);
        ASSERT_FALSE(mix.empty());
        int cores = 0;
        for (const auto &vm : mix) {
            ASSERT_GE(vm.cores, 1);
            ASSERT_LE(vm.cores, 8);
            cores += vm.cores;
        }
        ASSERT_LE(cores, 64);
        ASSERT_GE(cores, 40); // decently packed
    }
}

TEST(TraceGenerator, MlHeavyMixIsHot)
{
    TraceGenerator gen(7, shortConfig());
    const auto mix = gen.mlHeavyMix(64);
    ASSERT_FALSE(mix.empty());
    int ml_cores = 0;
    for (const auto &vm : mix)
        if (vm.archetype.kind == ShapeKind::ConstantHigh)
            ml_cores += vm.cores;
    EXPECT_GE(ml_cores, 48);
}

TEST(TraceGenerator, ServerTraceConsistency)
{
    TraceGenerator gen(8, shortConfig());
    const power::PowerModel model;
    const auto mix = gen.randomVmMix(64);
    const auto trace = gen.serverTrace(mix, model);
    ASSERT_EQ(trace.vmUtil.size(), mix.size());
    ASSERT_EQ(trace.serverUtil.size(), trace.powerWatts.size());

    // Server util must be the core-weighted VM utils.
    for (std::size_t i = 0; i < trace.serverUtil.size(); i += 97) {
        double weighted = 0.0;
        for (std::size_t v = 0; v < mix.size(); ++v)
            weighted += mix[v].cores * trace.vmUtil[v].at(i);
        EXPECT_NEAR(trace.serverUtil.at(i), weighted / 64.0, 1e-9);
    }

    // Power must be above idle and below TDP (at turbo).
    for (double w : trace.powerWatts.values()) {
        ASSERT_GE(w, model.params().idleWatts.count());
        ASSERT_LE(w, model.params().tdpWatts.count() + 1e-9);
    }
}

TEST(TraceGenerator, RackPowerSumsServers)
{
    TraceGenerator gen(9, shortConfig());
    const power::PowerModel model;
    std::vector<ServerTrace> traces;
    for (int s = 0; s < 3; ++s)
        traces.push_back(gen.serverTrace(gen.randomVmMix(64), model));
    const auto rack = TraceGenerator::rackPower(traces);
    for (std::size_t i = 0; i < rack.size(); i += 131) {
        double sum = 0.0;
        for (const auto &t : traces)
            sum += t.powerWatts.at(i);
        EXPECT_NEAR(rack.at(i), sum, 1e-9);
    }
}

TEST(TraceGenerator, ServersInRackAreDiverse)
{
    // Fig. 9's premise: per-server power profiles differ materially.
    TraceGenerator gen(10, shortConfig());
    const power::PowerModel model;
    const auto a = gen.serverTrace(gen.randomVmMix(64), model);
    const auto b = gen.serverTrace(gen.randomVmMix(64), model);
    double diff = 0.0;
    for (std::size_t i = 0; i < a.powerWatts.size(); ++i) {
        diff += std::abs(a.powerWatts.at(i) - b.powerWatts.at(i));
    }
    diff /= static_cast<double>(a.powerWatts.size());
    EXPECT_GT(diff, 5.0); // materially apart on average
}

TEST(TraceGenerator, OutlierDaysReduceLoad)
{
    TraceConfig with;
    with.end = 8 * sim::kWeek;
    with.outlierDayProb = 0.5;
    with.outlierScale = 0.2;
    with.surgeDayProb = 0.0;
    TraceConfig without = with;
    without.outlierDayProb = 0.0;
    TraceGenerator gw(11, with);
    TraceGenerator go(11, without);
    const double mean_with =
        gw.utilSeries(serviceA()).stats().mean();
    const double mean_without =
        go.utilSeries(serviceA()).stats().mean();
    EXPECT_LT(mean_with, mean_without);
}

TEST(TraceGenerator, StreamMatchesMaterializedBitIdentically)
{
    // The streaming path must be a drop-in for the materialized one:
    // same parent-stream consumption (so downstream draws agree) and
    // sample-for-sample identical output, however the windows are
    // chunked.  Window sizes are deliberately awkward (prime, not
    // slot-aligned to days) to catch any per-window state reset.
    const power::PowerModel model;
    TraceGenerator materialized(77, shortConfig());
    TraceGenerator streamed(77, shortConfig());

    const auto mix_a = materialized.randomVmMix(64);
    const auto mix_b = streamed.randomVmMix(64);
    ASSERT_EQ(mix_a.size(), mix_b.size());

    const auto trace = materialized.serverTrace(mix_a, model);
    auto stream = streamed.serverTraceStream(mix_b, model);
    ASSERT_EQ(stream.vms(), trace.vmUtil.size());

    const std::size_t slots = trace.vmUtil[0].size();
    const std::size_t stride = stream.vms();
    std::vector<double> util(slots * stride);
    std::vector<double> watts(slots * stride);
    for (std::size_t first = 0; first < slots;) {
        const std::size_t n = std::min<std::size_t>(97, slots - first);
        stream.generate(n, util.data() + first * stride,
                        watts.data() + first * stride, stride);
        first += n;
    }
    for (std::size_t v = 0; v < stride; ++v) {
        for (std::size_t i = 0; i < slots; ++i) {
            ASSERT_EQ(util[i * stride + v], trace.vmUtil[v].at(i))
                << "vm " << v << " slot " << i;
            ASSERT_EQ(watts[i * stride + v],
                      trace.vmTurboWatts[v].at(i))
                << "vm " << v << " slot " << i;
        }
    }

    // Both generators must leave the parent stream in the same
    // state: the next draws agree bit for bit.
    const auto next_a = materialized.utilSeries(serviceA());
    const auto next_b = streamed.utilSeries(serviceA());
    ASSERT_EQ(next_a.size(), next_b.size());
    for (std::size_t i = 0; i < next_a.size(); ++i)
        ASSERT_EQ(next_a.at(i), next_b.at(i));
}

TEST(TraceGenerator, StreamResetReplaysIdentically)
{
    const power::PowerModel model;
    TraceGenerator gen(33, shortConfig());
    const auto mix = gen.randomVmMix(64);
    auto stream = gen.serverTraceStream(mix, model);

    const std::size_t stride = stream.vms();
    const std::size_t slots = static_cast<std::size_t>(
        shortConfig().end / sim::kSlot);
    std::vector<double> util_once(slots * stride);
    std::vector<double> watts_once(slots * stride);
    stream.generate(slots, util_once.data(), watts_once.data(),
                    stride);

    stream.reset();
    std::vector<double> util_again(slots * stride);
    std::vector<double> watts_again(slots * stride);
    for (std::size_t first = 0; first < slots;) {
        const std::size_t n = std::min<std::size_t>(7, slots - first);
        stream.generate(n, util_again.data() + first * stride,
                        watts_again.data() + first * stride, stride);
        first += n;
    }
    ASSERT_EQ(util_once, util_again);
    ASSERT_EQ(watts_once, watts_again);
}

TEST(TraceGenerator, QuantizedStreamResumesBitIdentically)
{
    // The compact-column fill must be as resumable as the double
    // one: however the windows are chunked (awkward prime sizes
    // again), the quantized samples and float watts hints agree bit
    // for bit with a single-shot fill — the VmUtilCursor resume
    // guarantee carried through quantization.
    const power::PowerModel model;
    TraceGenerator whole(55, shortConfig());
    TraceGenerator chunked(55, shortConfig());

    const auto mix_a = whole.randomVmMix(64);
    const auto mix_b = chunked.randomVmMix(64);
    auto stream_a = whole.serverTraceStream(mix_a, model);
    auto stream_b = chunked.serverTraceStream(mix_b, model);

    const std::size_t stride = stream_a.vms();
    const std::size_t slots = static_cast<std::size_t>(
        shortConfig().end / sim::kSlot);
    std::vector<std::uint16_t> util_once(slots * stride);
    std::vector<float> watts_once(slots * stride);
    stream_a.generateQuantized(slots, util_once.data(),
                               watts_once.data(), stride);

    std::vector<std::uint16_t> util_chunked(slots * stride);
    std::vector<float> watts_chunked(slots * stride);
    for (std::size_t first = 0; first < slots;) {
        const std::size_t n =
            std::min<std::size_t>(101, slots - first);
        stream_b.generateQuantized(
            n, util_chunked.data() + first * stride,
            watts_chunked.data() + first * stride, stride);
        first += n;
    }
    ASSERT_EQ(util_once, util_chunked);
    ASSERT_EQ(watts_once, watts_chunked);
}

TEST(TraceGenerator, QuantizedStreamMatchesDoubleStream)
{
    // The quantized fill consumes the RNG exactly like the double
    // fill, its stored sample is quantizeUtil(double sample), and
    // its watts hint is the power model evaluated at the
    // *dequantized* utilization — the invariant that lets the
    // replay's batch server update reuse the hint verbatim.
    const power::PowerModel model;
    TraceGenerator doubles(91, shortConfig());
    TraceGenerator quantized(91, shortConfig());

    const auto mix_a = doubles.randomVmMix(64);
    const auto mix_b = quantized.randomVmMix(64);
    auto stream_a = doubles.serverTraceStream(mix_a, model);
    auto stream_b = quantized.serverTraceStream(mix_b, model);

    const std::size_t stride = stream_a.vms();
    const std::size_t slots = 3 * sim::kSlotsPerDay + 17;
    std::vector<double> util_d(slots * stride);
    std::vector<double> watts_d(slots * stride);
    stream_a.generate(slots, util_d.data(), watts_d.data(), stride);

    std::vector<std::uint16_t> util_q(slots * stride);
    std::vector<float> watts_q(slots * stride);
    stream_b.generateQuantized(slots, util_q.data(), watts_q.data(),
                               stride);

    for (std::size_t v = 0; v < stride; ++v) {
        const int cores = mix_a[v].cores;
        for (std::size_t i = 0; i < slots; ++i) {
            const std::size_t at = i * stride + v;
            ASSERT_EQ(util_q[at],
                      sim::quantizeUtil(util_d[at]))
                << "vm " << v << " slot " << i;
            const double uq = sim::dequantUtil(util_q[at]);
            const float want = static_cast<float>(
                (cores *
                 model.corePower(uq, power::kTurboMHz)).count());
            ASSERT_EQ(watts_q[at], want)
                << "vm " << v << " slot " << i;
        }
    }
}

TEST(TraceGenerator, UtilFillMatchesUtilAt)
{
    // The batched shape kernel behind the window fills must agree
    // bit for bit with the scalar utilAt across day, weekend, and
    // phase-shift boundaries for every archetype kind.
    TraceGenerator gen(12, shortConfig());
    std::vector<Archetype> archetypes;
    for (const auto &vm : gen.randomVmMix(64))
        archetypes.push_back(vm.archetype);
    archetypes.push_back(serviceA());
    archetypes.push_back(serviceB());
    archetypes.push_back(serviceC());
    archetypes.push_back(mlTraining());

    const std::size_t n = 9 * sim::kSlotsPerDay; // crosses a weekend
    const sim::Tick start = 4 * sim::kDay + 3 * sim::kMinute;
    std::vector<double> filled(n);
    for (const auto &arch : archetypes) {
        arch.utilFill(start, sim::kSlot, n, filled.data());
        for (std::size_t k = 0; k < n; ++k) {
            const sim::Tick t =
                start + static_cast<sim::Tick>(k) * sim::kSlot;
            ASSERT_EQ(filled[k], arch.utilAt(t))
                << shapeName(arch.kind) << " k " << k;
        }
    }
}
