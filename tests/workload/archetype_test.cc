/** @file Unit tests for the service load-shape archetypes. */

#include <gtest/gtest.h>

#include "workload/archetype.hh"

using namespace soc;
using namespace soc::workload;
using sim::kDay;
using sim::kHour;
using sim::kMinute;

TEST(Shape, AllShapesStayInUnitRange)
{
    for (auto kind : {ShapeKind::MorningPeak, ShapeKind::TopOfHour,
                      ShapeKind::BusinessHours, ShapeKind::Diurnal,
                      ShapeKind::ConstantHigh, ShapeKind::NightBatch,
                      ShapeKind::LowIdle}) {
        for (sim::Tick t = 0; t < kDay; t += 7 * kMinute) {
            const double v = shapeValue(kind, t);
            ASSERT_GE(v, 0.0) << shapeName(kind);
            ASSERT_LE(v, 1.0) << shapeName(kind);
        }
    }
}

TEST(Shape, MorningPeakPeaksMidMorning)
{
    const double peak = shapeValue(ShapeKind::MorningPeak,
                                   11 * kHour);
    const double night = shapeValue(ShapeKind::MorningPeak,
                                    3 * kHour);
    EXPECT_EQ(peak, 1.0);
    EXPECT_LT(night, 0.2);
}

TEST(Shape, TopOfHourSpikes)
{
    // Spike at :02, calm at :15 (same hour, midday).
    const sim::Tick base = 13 * kHour;
    const double spike = shapeValue(ShapeKind::TopOfHour,
                                    base + 2 * kMinute);
    const double calm = shapeValue(ShapeKind::TopOfHour,
                                   base + 15 * kMinute);
    const double half = shapeValue(ShapeKind::TopOfHour,
                                   base + 32 * kMinute);
    EXPECT_GT(spike, calm + 0.4);
    EXPECT_GT(half, calm + 0.4);
}

TEST(Shape, ConstantHighIsFlat)
{
    EXPECT_EQ(shapeValue(ShapeKind::ConstantHigh, 0), 1.0);
    EXPECT_EQ(shapeValue(ShapeKind::ConstantHigh, 13 * kHour), 1.0);
}

TEST(Shape, NightBatchPeaksAtNight)
{
    EXPECT_GT(shapeValue(ShapeKind::NightBatch, 2 * kHour), 0.9);
    EXPECT_LT(shapeValue(ShapeKind::NightBatch, 14 * kHour), 0.1);
}

TEST(Archetype, UtilBetweenBaseAndPeak)
{
    Archetype a;
    a.baseUtil = 0.2;
    a.peakUtil = 0.8;
    for (sim::Tick t = 0; t < kDay; t += 11 * kMinute) {
        const double u = a.utilAt(t);
        ASSERT_GE(u, 0.2 - 1e-9);
        ASSERT_LE(u, 0.8 + 1e-9);
    }
}

TEST(Archetype, WeekendAmplitudeReduced)
{
    Archetype a;
    a.kind = ShapeKind::Diurnal;
    a.baseUtil = 0.1;
    a.peakUtil = 0.9;
    a.weekendFactor = 0.5;
    const sim::Tick midday = 13 * kHour + 30 * kMinute;
    const double weekday = a.utilAt(midday);            // Monday
    const double weekend = a.utilAt(5 * kDay + midday); // Saturday
    EXPECT_GT(weekday, weekend);
    EXPECT_NEAR(weekend - a.baseUtil,
                (weekday - a.baseUtil) * 0.5, 0.02);
}

TEST(Archetype, ConstantHighIgnoresWeekends)
{
    Archetype a = mlTraining();
    EXPECT_NEAR(a.utilAt(0), a.utilAt(5 * kDay), 1e-9);
}

TEST(Archetype, PhaseShiftMovesPeak)
{
    Archetype a;
    a.kind = ShapeKind::MorningPeak;
    a.baseUtil = 0.0;
    a.peakUtil = 1.0;
    Archetype shifted = a;
    shifted.phaseShift = -2 * kHour; // peak appears 2h later
    EXPECT_NEAR(a.utilAt(11 * kHour), shifted.utilAt(13 * kHour),
                1e-9);
}

TEST(Archetype, NamedServicesHaveExpectedShapes)
{
    EXPECT_EQ(serviceA().kind, ShapeKind::MorningPeak);
    EXPECT_EQ(serviceB().kind, ShapeKind::TopOfHour);
    EXPECT_EQ(serviceC().kind, ShapeKind::TopOfHour);
    EXPECT_EQ(mlTraining().kind, ShapeKind::ConstantHigh);
    EXPECT_GT(serviceB().peakUtil, serviceB().baseUtil);
}

TEST(Archetype, ShapeNamesAreUnique)
{
    EXPECT_NE(shapeName(ShapeKind::Diurnal),
              shapeName(ShapeKind::LowIdle));
    EXPECT_EQ(shapeName(ShapeKind::TopOfHour), "top-of-hour");
}
