/** @file Unit tests for the MLTrain throughput model. */

#include <gtest/gtest.h>

#include "workload/mltrain.hh"

using namespace soc;
using namespace soc::workload;

TEST(MlTrain, BaseThroughputAtTurbo)
{
    MlTrainJob job(1000.0, 0.3);
    EXPECT_NEAR(job.throughput(power::kTurboMHz), 1000.0, 1e-9);
}

TEST(MlTrain, ThroughputRisesWithFrequency)
{
    MlTrainJob job(1000.0, 0.3);
    EXPECT_GT(job.throughput(power::kOverclockMHz), 1000.0);
    EXPECT_LT(job.throughput(power::kBaseMHz), 1000.0);
}

TEST(MlTrain, MemoryBoundFractionCapsSpeedup)
{
    MlTrainJob compute(1000.0, 0.0);
    MlTrainJob memory(1000.0, 0.9);
    const double c = compute.throughput(power::kOverclockMHz);
    const double m = memory.throughput(power::kOverclockMHz);
    EXPECT_GT(c, m);
    // Fully compute-bound scales linearly with frequency.
    EXPECT_NEAR(c, 1000.0 * 4000.0 / 3300.0, 1e-6);
}

TEST(MlTrain, ProgressIntegrates)
{
    MlTrainJob job(100.0, 0.3);
    job.advance(10 * sim::kSecond, power::kTurboMHz);
    EXPECT_NEAR(job.progress(), 1000.0, 1e-6);
    EXPECT_NEAR(job.meanThroughput(), 100.0, 1e-6);
}

TEST(MlTrain, ThrottlingSlowsProgress)
{
    MlTrainJob fast(100.0, 0.3);
    MlTrainJob slow(100.0, 0.3);
    fast.advance(10 * sim::kSecond, power::kTurboMHz);
    slow.advance(10 * sim::kSecond, power::kMinMHz);
    EXPECT_GT(fast.progress(), slow.progress());
}

TEST(MlTrain, MeanThroughputMixesPhases)
{
    MlTrainJob job(100.0, 0.0);
    job.advance(10 * sim::kSecond, power::kTurboMHz);
    job.advance(10 * sim::kSecond,
                power::FreqMHz{1650}); // exactly half speed
    EXPECT_NEAR(job.meanThroughput(), 75.0, 1e-6);
}

TEST(MlTrain, ZeroElapsedMeansZeroMeanThroughput)
{
    MlTrainJob job;
    EXPECT_EQ(job.meanThroughput(), 0.0);
}
