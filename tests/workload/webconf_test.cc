/** @file Unit tests for the WebConf deployment-level model (Fig. 4). */

#include <gtest/gtest.h>

#include "workload/webconf.hh"

using namespace soc;
using namespace soc::workload;

TEST(WebConf, VmUtilIsLoadOverCores)
{
    WebConfDeployment dep;
    const int vm = dep.addVm(4, 2.0);
    EXPECT_NEAR(dep.vmUtil(vm), 0.5, 1e-9);
}

TEST(WebConf, UtilClamped)
{
    WebConfDeployment dep;
    const int vm = dep.addVm(2, 10.0);
    EXPECT_EQ(dep.vmUtil(vm), 1.0);
}

TEST(WebConf, OverclockLowersVmUtil)
{
    WebConfDeployment dep;
    const int vm = dep.addVm(4, 3.2); // 80% at turbo
    const double before = dep.vmUtil(vm);
    dep.setFrequency(vm, power::kOverclockMHz);
    EXPECT_LT(dep.vmUtil(vm), before);
}

TEST(WebConf, DeploymentUtilIsCoreWeighted)
{
    WebConfDeployment dep;
    dep.addVm(4, 0.4);  // 10%
    dep.addVm(4, 3.2);  // 80%
    EXPECT_NEAR(dep.deploymentUtil(), 0.45, 1e-9);
}

TEST(WebConf, Fig4Scenario)
{
    // Two VMs at 10% and 80%: deployment-level util 45% meets the
    // 50% goal, so overclocking the hot VM is flagged as wasted.
    WebConfDeployment dep(0.5);
    dep.addVm(4, 0.4);
    const int hot = dep.addVm(4, 3.2);
    EXPECT_TRUE(dep.meetsTarget());
    EXPECT_FALSE(dep.overclockUseful(hot, power::kOverclockMHz));
}

TEST(WebConf, OverclockUsefulWhenGoalMissed)
{
    WebConfDeployment dep(0.5);
    const int a = dep.addVm(4, 3.0); // 75%
    dep.addVm(4, 2.4);               // 60%
    EXPECT_FALSE(dep.meetsTarget());
    EXPECT_TRUE(dep.overclockUseful(a, power::kOverclockMHz));
    // Overclocking to the same frequency is never useful.
    EXPECT_FALSE(dep.overclockUseful(a, power::kTurboMHz));
}

TEST(WebConf, MemBoundFracLimitsUtilReduction)
{
    WebConfDeployment cpu_bound(0.5, 0.0);
    WebConfDeployment mem_bound(0.5, 0.8);
    const int a = cpu_bound.addVm(4, 3.2);
    const int b = mem_bound.addVm(4, 3.2);
    cpu_bound.setFrequency(a, power::kOverclockMHz);
    mem_bound.setFrequency(b, power::kOverclockMHz);
    EXPECT_LT(cpu_bound.vmUtil(a), mem_bound.vmUtil(b));
}

TEST(WebConf, EmptyDeploymentIsZeroUtil)
{
    WebConfDeployment dep;
    EXPECT_EQ(dep.deploymentUtil(), 0.0);
    EXPECT_TRUE(dep.meetsTarget());
}

TEST(WebConf, LoadUpdateReflected)
{
    WebConfDeployment dep;
    const int vm = dep.addVm(4, 1.0);
    dep.setLoad(vm, 2.0);
    EXPECT_NEAR(dep.vmUtil(vm), 0.5, 1e-9);
}
