/** @file Unit and behavioural tests for the microservice queue model. */

#include <gtest/gtest.h>

#include "workload/queueing_service.hh"

using namespace soc;
using namespace soc::workload;
using sim::kMinute;
using sim::kSecond;

namespace
{

MicroserviceParams
simpleService()
{
    MicroserviceParams params;
    params.name = "test";
    params.meanServiceMs = 10.0;
    params.serviceCv = 0.5;
    params.memBoundFrac = 0.2;
    params.workersPerVm = 4;
    return params;
}

} // namespace

TEST(Catalog, HasEightTunedServices)
{
    const auto catalog = socialNetCatalog();
    ASSERT_EQ(catalog.size(), 8u);
    for (const auto &params : catalog) {
        EXPECT_FALSE(params.name.empty());
        EXPECT_GT(params.meanServiceMs, 0.0);
        EXPECT_GT(params.workersPerVm, 0);
        EXPECT_GE(params.memBoundFrac, 0.0);
        EXPECT_LE(params.memBoundFrac, 1.0);
    }
}

TEST(Catalog, UrlShortIsUnfixable)
{
    // §III-Q1: UrlShort violates its SLO even at low utilization.
    for (const auto &params : socialNetCatalog()) {
        if (params.name == "UrlShort") {
            EXPECT_GT(unloadedP99Ms(params),
                      params.sloMultiplier * params.meanServiceMs);
            return;
        }
    }
    FAIL() << "UrlShort missing from catalog";
}

TEST(Catalog, UsrToleratesHighUtil)
{
    // Usr's unloaded tail sits far below its SLO.
    for (const auto &params : socialNetCatalog()) {
        if (params.name == "Usr") {
            EXPECT_LT(unloadedP99Ms(params),
                      0.6 * params.sloMultiplier *
                          params.meanServiceMs);
            return;
        }
    }
    FAIL() << "Usr missing from catalog";
}

TEST(Scaling, ServiceTimeShrinksWithFrequency)
{
    const auto params = simpleService();
    const double turbo = scaledServiceMs(params, power::kTurboMHz);
    const double oc = scaledServiceMs(params, power::kOverclockMHz);
    EXPECT_DOUBLE_EQ(turbo, params.meanServiceMs);
    EXPECT_LT(oc, turbo);
    // Mem-bound fraction floors the speedup.
    const double max_speedup =
        1.0 / params.memBoundFrac; // infinite frequency limit
    EXPECT_GT(oc, turbo / max_speedup);
}

TEST(Scaling, MemoryBoundServiceBarelyBenefits)
{
    auto params = simpleService();
    params.memBoundFrac = 0.9;
    const double oc = scaledServiceMs(params, power::kOverclockMHz);
    EXPECT_GT(oc, 0.95 * params.meanServiceMs);
}

TEST(QueueingService, CapacityFollowsFrequency)
{
    sim::Simulator simr;
    QueueingService service(simr, simpleService(), 1);
    const double turbo = service.instanceCapacity(power::kTurboMHz);
    const double oc = service.instanceCapacity(power::kOverclockMHz);
    EXPECT_NEAR(turbo, 400.0, 1.0); // 4 workers / 10 ms
    EXPECT_GT(oc, turbo);
}

TEST(QueueingService, CompletesRequestsAtModerateLoad)
{
    sim::Simulator simr;
    QueueingService service(simr, simpleService(), 2);
    service.addInstance();
    service.setArrivalRate(100.0); // rho = 0.25
    simr.runUntil(30 * kSecond);
    EXPECT_GT(service.completedCount(), 2000u);
    EXPECT_LT(service.latencies().p50(), 3.0 * 10.0);
}

TEST(QueueingService, LatencyGrowsWithLoad)
{
    sim::Simulator sim_lo, sim_hi;
    QueueingService lo(sim_lo, simpleService(), 3);
    QueueingService hi(sim_hi, simpleService(), 3);
    lo.addInstance();
    hi.addInstance();
    lo.setArrivalRate(80.0);  // rho 0.2
    hi.setArrivalRate(360.0); // rho 0.9
    sim_lo.runUntil(60 * kSecond);
    sim_hi.runUntil(60 * kSecond);
    EXPECT_GT(hi.latencies().p99(), 1.5 * lo.latencies().p99());
}

TEST(QueueingService, OverclockReducesTailUnderLoad)
{
    sim::Simulator sim_a, sim_b;
    QueueingService turbo(sim_a, simpleService(), 4);
    QueueingService oc(sim_b, simpleService(), 4);
    turbo.addInstance(power::kTurboMHz);
    oc.addInstance(power::kOverclockMHz);
    turbo.setArrivalRate(340.0);
    oc.setArrivalRate(340.0);
    sim_a.runUntil(60 * kSecond);
    sim_b.runUntil(60 * kSecond);
    EXPECT_LT(oc.latencies().p99(), turbo.latencies().p99());
}

TEST(QueueingService, ScaleOutReducesTailUnderLoad)
{
    sim::Simulator sim_a, sim_b;
    QueueingService one(sim_a, simpleService(), 5);
    QueueingService two(sim_b, simpleService(), 5);
    one.addInstance();
    two.addInstance();
    two.addInstance();
    one.setArrivalRate(340.0);
    two.setArrivalRate(340.0);
    sim_a.runUntil(60 * kSecond);
    sim_b.runUntil(60 * kSecond);
    EXPECT_LT(two.latencies().p99(), one.latencies().p99());
    EXPECT_EQ(two.instanceCount(), 2u);
}

TEST(QueueingService, RetiredInstanceReceivesNoNewWork)
{
    sim::Simulator simr;
    QueueingService service(simr, simpleService(), 6);
    service.addInstance();
    const auto second = service.addInstance();
    EXPECT_TRUE(service.retireInstance());
    EXPECT_EQ(service.instanceCount(), 1u);
    service.setArrivalRate(50.0);
    simr.runUntil(10 * kSecond);
    EXPECT_EQ(service.instantUtilization(second), 0.0);
    EXPECT_GT(service.completedCount(), 100u);
}

TEST(QueueingService, CannotRetireLastInstance)
{
    sim::Simulator simr;
    QueueingService service(simr, simpleService(), 7);
    service.addInstance();
    EXPECT_FALSE(service.retireInstance());
}

TEST(QueueingService, SloViolationsCounted)
{
    sim::Simulator simr;
    auto params = simpleService();
    params.serviceCv = 1.5; // fat tail: some violations guaranteed
    QueueingService service(simr, params, 8);
    service.addInstance();
    service.setArrivalRate(300.0);
    simr.runUntil(30 * kSecond);
    EXPECT_GT(service.violationCount(), 0u);
    EXPECT_LE(service.violationCount(), service.completedCount());
}

TEST(QueueingService, WindowDrainsAndResets)
{
    sim::Simulator simr;
    QueueingService service(simr, simpleService(), 9);
    service.addInstance();
    service.setArrivalRate(200.0);
    simr.runUntil(10 * kSecond);
    const auto w1 = service.drainWindow();
    EXPECT_GT(w1.completed, 0u);
    EXPECT_GT(w1.utilization, 0.1);
    EXPECT_LT(w1.utilization, 1.0);
    const auto w2 = service.drainWindow();
    EXPECT_EQ(w2.completed, 0u);
}

TEST(QueueingService, WindowUtilizationTracksLoad)
{
    sim::Simulator simr;
    QueueingService service(simr, simpleService(), 10);
    service.addInstance();
    service.setArrivalRate(200.0); // rho = 0.5
    simr.runUntil(60 * kSecond);
    const auto w = service.drainWindow();
    EXPECT_NEAR(w.utilization, 0.5, 0.08);
}

TEST(QueueingService, ZeroRatePausesArrivals)
{
    sim::Simulator simr;
    QueueingService service(simr, simpleService(), 11);
    service.addInstance();
    service.setArrivalRate(100.0);
    simr.runUntil(5 * kSecond);
    service.setArrivalRate(0.0);
    const auto before = service.completedCount();
    simr.runUntil(6 * kSecond); // drain in-flight work
    const auto drained = service.completedCount();
    simr.runUntil(30 * kSecond);
    EXPECT_EQ(service.completedCount(), drained);
    EXPECT_GE(drained, before);
}

TEST(QueueingService, OverloadDropsAtQueueBound)
{
    sim::Simulator simr;
    auto params = simpleService();
    params.maxQueue = 50;
    QueueingService service(simr, params, 12);
    service.addInstance();
    service.setArrivalRate(2000.0); // rho = 5: hopeless overload
    simr.runUntil(10 * kSecond);
    EXPECT_GT(service.droppedCount(), 0u);
}

TEST(QueueingService, FrequencyChangeAffectsNewWork)
{
    sim::Simulator simr;
    QueueingService service(simr, simpleService(), 13);
    const auto id = service.addInstance();
    EXPECT_EQ(service.frequency(id), power::kTurboMHz);
    service.setFrequency(id, power::kOverclockMHz);
    EXPECT_EQ(service.frequency(id), power::kOverclockMHz);
    service.setAllFrequencies(power::kTurboMHz);
    EXPECT_EQ(service.frequency(id), power::kTurboMHz);
}
