/** @file Unit tests for the fixed-interval time series. */

#include <gtest/gtest.h>

#include "telemetry/time_series.hh"

using namespace soc;
using telemetry::TimeSeries;
using sim::kSlot;
using sim::Tick;

TEST(TimeSeries, EmptyBasics)
{
    TimeSeries s(0, kSlot);
    EXPECT_TRUE(s.empty());
    EXPECT_EQ(s.size(), 0u);
    EXPECT_EQ(s.end(), 0);
    EXPECT_EQ(s.atTime(12345), 0.0);
}

TEST(TimeSeries, AppendAndIndex)
{
    TimeSeries s(0, kSlot);
    s.append(1.0);
    s.append(2.0);
    s.append(3.0);
    EXPECT_EQ(s.size(), 3u);
    EXPECT_EQ(s.at(0), 1.0);
    EXPECT_EQ(s.at(2), 3.0);
    EXPECT_EQ(s.end(), 3 * kSlot);
    EXPECT_EQ(s.timeOf(1), kSlot);
}

TEST(TimeSeries, AtTimeSelectsWindow)
{
    TimeSeries s(0, kSlot, {10.0, 20.0, 30.0});
    EXPECT_EQ(s.atTime(0), 10.0);
    EXPECT_EQ(s.atTime(kSlot - 1), 10.0);
    EXPECT_EQ(s.atTime(kSlot), 20.0);
    EXPECT_EQ(s.atTime(3 * kSlot + 5), 30.0); // clamps past end
}

TEST(TimeSeries, AtTimeClampsBeforeStart)
{
    TimeSeries s(10 * kSlot, kSlot, {5.0, 6.0});
    EXPECT_EQ(s.atTime(0), 5.0);
    EXPECT_EQ(s.atTime(10 * kSlot), 5.0);
    EXPECT_EQ(s.atTime(11 * kSlot), 6.0);
}

TEST(TimeSeries, NonZeroStartIndexing)
{
    TimeSeries s(2 * kSlot, kSlot, {1.0, 2.0});
    EXPECT_EQ(s.timeOf(0), 2 * kSlot);
    EXPECT_EQ(s.indexOf(2 * kSlot), 0u);
    EXPECT_EQ(s.indexOf(3 * kSlot), 1u);
    EXPECT_EQ(s.end(), 4 * kSlot);
}

TEST(TimeSeries, SetOverwrites)
{
    TimeSeries s(0, kSlot, {1.0, 2.0});
    s.set(1, 9.0);
    EXPECT_EQ(s.at(1), 9.0);
}

TEST(TimeSeries, SliceSelectsFullyContainedWindows)
{
    TimeSeries s(0, kSlot, {0.0, 1.0, 2.0, 3.0, 4.0});
    const TimeSeries cut = s.slice(kSlot, 4 * kSlot);
    ASSERT_EQ(cut.size(), 3u);
    EXPECT_EQ(cut.at(0), 1.0);
    EXPECT_EQ(cut.at(2), 3.0);
    EXPECT_EQ(cut.start(), kSlot);
}

TEST(TimeSeries, StatsAndQuantile)
{
    TimeSeries s(0, kSlot, {1.0, 2.0, 3.0, 4.0});
    const auto stats = s.stats();
    EXPECT_DOUBLE_EQ(stats.mean(), 2.5);
    EXPECT_DOUBLE_EQ(stats.min(), 1.0);
    EXPECT_DOUBLE_EQ(stats.max(), 4.0);
    EXPECT_NEAR(s.quantile(0.5), 2.5, 1e-9);
}

TEST(TimeSeries, PlusEqualsElementwise)
{
    TimeSeries a(0, kSlot, {1.0, 2.0});
    TimeSeries b(0, kSlot, {10.0, 20.0});
    a += b;
    EXPECT_EQ(a.at(0), 11.0);
    EXPECT_EQ(a.at(1), 22.0);
}

TEST(TimeSeries, ScaleAndClamp)
{
    TimeSeries s(0, kSlot, {1.0, -2.0, 3.0});
    s.scale(2.0);
    EXPECT_EQ(s.at(1), -4.0);
    s.clamp(0.0, 5.0);
    EXPECT_EQ(s.at(0), 2.0);
    EXPECT_EQ(s.at(1), 0.0);
    EXPECT_EQ(s.at(2), 5.0);
}

TEST(TimeSeries, SumOfAlignedSeries)
{
    TimeSeries a(0, kSlot, {1.0, 2.0});
    TimeSeries b(0, kSlot, {3.0, 4.0});
    TimeSeries c(0, kSlot, {5.0, 6.0});
    const TimeSeries total = TimeSeries::sum({&a, &b, &c});
    EXPECT_EQ(total.at(0), 9.0);
    EXPECT_EQ(total.at(1), 12.0);
}
