/** @file Unit tests for the fixed-interval time series. */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "telemetry/time_series.hh"

using namespace soc;
using telemetry::TimeSeries;
using sim::kSlot;
using sim::Tick;

TEST(TimeSeries, EmptyBasics)
{
    TimeSeries s(0, kSlot);
    EXPECT_TRUE(s.empty());
    EXPECT_EQ(s.size(), 0u);
    EXPECT_EQ(s.end(), 0);
    EXPECT_EQ(s.atTime(12345), 0.0);
}

TEST(TimeSeries, AppendAndIndex)
{
    TimeSeries s(0, kSlot);
    s.append(1.0);
    s.append(2.0);
    s.append(3.0);
    EXPECT_EQ(s.size(), 3u);
    EXPECT_EQ(s.at(0), 1.0);
    EXPECT_EQ(s.at(2), 3.0);
    EXPECT_EQ(s.end(), 3 * kSlot);
    EXPECT_EQ(s.timeOf(1), kSlot);
}

TEST(TimeSeries, AtTimeSelectsWindow)
{
    TimeSeries s(0, kSlot, {10.0, 20.0, 30.0});
    EXPECT_EQ(s.atTime(0), 10.0);
    EXPECT_EQ(s.atTime(kSlot - 1), 10.0);
    EXPECT_EQ(s.atTime(kSlot), 20.0);
    EXPECT_EQ(s.atTime(3 * kSlot - 1), 30.0); // last covered tick
}

// Regression: a trace shorter than the sim horizon used to clamp
// silently, replaying the final sample forever.  Out-of-range reads
// now die in debug builds; release builds still clamp so replays
// degrade gracefully instead of reading past the buffer.
TEST(TimeSeries, AtTimePastEndDiesInDebug)
{
    TimeSeries short_trace(0, kSlot, {10.0, 20.0, 30.0});
    EXPECT_DEBUG_DEATH(short_trace.atTime(short_trace.end()),
                       "tick at/after end");
    EXPECT_DEBUG_DEATH(short_trace.atTime(3 * kSlot + 5),
                       "tick at/after end");
    EXPECT_DEBUG_DEATH(short_trace.indexOf(100 * kSlot),
                       "tick at/after end");
#ifdef NDEBUG
    // Release policy: clamp to the last sample.
    EXPECT_EQ(short_trace.atTime(3 * kSlot + 5), 30.0);
    EXPECT_EQ(short_trace.indexOf(100 * kSlot), 2u);
#endif
    // Empty series stay readable at any tick.
    TimeSeries empty(0, kSlot);
    EXPECT_EQ(empty.atTime(123), 0.0);
    EXPECT_EQ(empty.indexOf(123), 0u);
}

TEST(TimeSeries, AtTimeClampsBeforeStart)
{
    TimeSeries s(10 * kSlot, kSlot, {5.0, 6.0});
    EXPECT_EQ(s.atTime(0), 5.0);
    EXPECT_EQ(s.atTime(10 * kSlot), 5.0);
    EXPECT_EQ(s.atTime(11 * kSlot), 6.0);
}

TEST(TimeSeries, NonZeroStartIndexing)
{
    TimeSeries s(2 * kSlot, kSlot, {1.0, 2.0});
    EXPECT_EQ(s.timeOf(0), 2 * kSlot);
    EXPECT_EQ(s.indexOf(2 * kSlot), 0u);
    EXPECT_EQ(s.indexOf(3 * kSlot), 1u);
    EXPECT_EQ(s.end(), 4 * kSlot);
}

TEST(TimeSeries, SetOverwrites)
{
    TimeSeries s(0, kSlot, {1.0, 2.0});
    s.set(1, 9.0);
    EXPECT_EQ(s.at(1), 9.0);
}

TEST(TimeSeries, SliceSelectsFullyContainedWindows)
{
    TimeSeries s(0, kSlot, {0.0, 1.0, 2.0, 3.0, 4.0});
    const TimeSeries cut = s.slice(kSlot, 4 * kSlot);
    ASSERT_EQ(cut.size(), 3u);
    EXPECT_EQ(cut.at(0), 1.0);
    EXPECT_EQ(cut.at(2), 3.0);
    EXPECT_EQ(cut.start(), kSlot);
}

TEST(TimeSeries, SliceHandlesUnalignedAndOutOfRangeBounds)
{
    TimeSeries s(2 * kSlot, kSlot, {0.0, 1.0, 2.0, 3.0, 4.0});
    // Naive per-sample reference the arithmetic slice must match.
    const auto naive = [&s](Tick from, Tick to) {
        std::vector<double> kept;
        for (std::size_t i = 0; i < s.size(); ++i) {
            const Tick t = s.timeOf(i);
            if (t >= from && t + s.interval() <= to)
                kept.push_back(s.at(i));
        }
        return kept;
    };
    const Tick lo = s.start() - 3 * kSlot;
    const Tick hi = s.end() + 3 * kSlot;
    for (Tick from = lo; from <= hi; from += kSlot / 2) {
        for (Tick to = lo; to <= hi; to += kSlot / 2) {
            const auto cut = s.slice(from, to);
            EXPECT_EQ(cut.values(), naive(from, to))
                << "from=" << from << " to=" << to;
            EXPECT_EQ(cut.start(), std::max(from, s.start()));
            EXPECT_EQ(cut.interval(), s.interval());
        }
    }
}

TEST(TimeSeries, SliceOfEmptySeriesIsEmpty)
{
    TimeSeries s(kSlot, kSlot);
    EXPECT_TRUE(s.slice(0, 10 * kSlot).empty());
}

TEST(TimeSeries, SliceBoundaryCases)
{
    TimeSeries s(2 * kSlot, kSlot, {0.0, 1.0, 2.0, 3.0, 4.0});
    // `to` lands inside the first sample's window: no sample is
    // fully contained, so the slice is empty (and must not trip the
    // unsigned (to - start_) / interval_ arithmetic for to < start).
    EXPECT_TRUE(s.slice(0, 2 * kSlot + kSlot / 2).empty());
    EXPECT_TRUE(s.slice(2 * kSlot, 3 * kSlot - 1).empty());
    EXPECT_TRUE(s.slice(0, kSlot).empty()); // to before start
    // `from` at/past end(): nothing left to keep.
    EXPECT_TRUE(s.slice(s.end(), s.end() + 3 * kSlot).empty());
    EXPECT_TRUE(s.slice(s.end() + kSlot, s.end() + 9 * kSlot).empty());
    // Degenerate from == to windows are empty everywhere.
    EXPECT_TRUE(s.slice(3 * kSlot, 3 * kSlot).empty());
    EXPECT_TRUE(s.slice(s.start(), s.start()).empty());
    EXPECT_TRUE(s.slice(s.end(), s.end()).empty());
    // Exactly one fully contained sample survives.
    const TimeSeries one = s.slice(3 * kSlot, 4 * kSlot);
    ASSERT_EQ(one.size(), 1u);
    EXPECT_EQ(one.at(0), 1.0);
    EXPECT_EQ(one.start(), 3 * kSlot);
}

TEST(TimeSeries, QuantileMatchesPercentilesReference)
{
    TimeSeries s(0, kSlot);
    std::uint64_t x = 88172645463325252ull; // xorshift64
    for (int i = 0; i < 501; ++i) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        s.append(static_cast<double>(x % 100000) / 100.0);
    }
    sim::Percentiles ref;
    for (double v : s.values())
        ref.add(v);
    for (double q : {-0.5, 0.0, 0.01, 0.25, 0.5, 0.9, 0.999, 1.0,
                     2.0}) {
        EXPECT_DOUBLE_EQ(s.quantile(q), ref.quantile(q))
            << "q=" << q;
    }
}

TEST(TimeSeries, QuantileEdgeCases)
{
    EXPECT_EQ(TimeSeries(0, kSlot).quantile(0.5), 0.0);
    TimeSeries one(0, kSlot, {7.0});
    EXPECT_EQ(one.quantile(0.0), 7.0);
    EXPECT_EQ(one.quantile(1.0), 7.0);
    TimeSeries two(0, kSlot, {10.0, 20.0});
    EXPECT_DOUBLE_EQ(two.quantile(0.5), 15.0);
}

TEST(TimeSeries, StatsAndQuantile)
{
    TimeSeries s(0, kSlot, {1.0, 2.0, 3.0, 4.0});
    const auto stats = s.stats();
    EXPECT_DOUBLE_EQ(stats.mean(), 2.5);
    EXPECT_DOUBLE_EQ(stats.min(), 1.0);
    EXPECT_DOUBLE_EQ(stats.max(), 4.0);
    EXPECT_NEAR(s.quantile(0.5), 2.5, 1e-9);
}

TEST(TimeSeries, PlusEqualsElementwise)
{
    TimeSeries a(0, kSlot, {1.0, 2.0});
    TimeSeries b(0, kSlot, {10.0, 20.0});
    a += b;
    EXPECT_EQ(a.at(0), 11.0);
    EXPECT_EQ(a.at(1), 22.0);
}

TEST(TimeSeries, ScaleAndClamp)
{
    TimeSeries s(0, kSlot, {1.0, -2.0, 3.0});
    s.scale(2.0);
    EXPECT_EQ(s.at(1), -4.0);
    s.clamp(0.0, 5.0);
    EXPECT_EQ(s.at(0), 2.0);
    EXPECT_EQ(s.at(1), 0.0);
    EXPECT_EQ(s.at(2), 5.0);
}

TEST(TimeSeries, SumOfAlignedSeries)
{
    TimeSeries a(0, kSlot, {1.0, 2.0});
    TimeSeries b(0, kSlot, {3.0, 4.0});
    TimeSeries c(0, kSlot, {5.0, 6.0});
    const TimeSeries total = TimeSeries::sum({&a, &b, &c});
    EXPECT_EQ(total.at(0), 9.0);
    EXPECT_EQ(total.at(1), 12.0);
}
