/** @file Unit tests for the console-table / CSV writer. */

#include <gtest/gtest.h>

#include <sstream>

#include "telemetry/table.hh"

using namespace soc::telemetry;

TEST(Fmt, DoubleFormatting)
{
    EXPECT_EQ(fmt(3.14159, 2), "3.14");
    EXPECT_EQ(fmt(3.14159, 0), "3");
    EXPECT_EQ(fmt(-1.5, 1), "-1.5");
}

TEST(Fmt, PercentFormatting)
{
    EXPECT_EQ(fmtPercent(0.093), "9.3%");
    EXPECT_EQ(fmtPercent(1.0, 0), "100%");
    EXPECT_EQ(fmtPercent(0.5, 2), "50.00%");
}

TEST(Table, TracksShape)
{
    Table t("demo", {"a", "b"});
    EXPECT_EQ(t.columns(), 2u);
    EXPECT_EQ(t.rows(), 0u);
    t.addRow({"1", "2"});
    EXPECT_EQ(t.rows(), 1u);
    EXPECT_EQ(t.title(), "demo");
}

TEST(Table, PrintContainsTitleHeadersAndCells)
{
    Table t("My Table", {"col1", "column2"});
    t.addRow({"x", "y"});
    std::ostringstream os;
    t.print(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("My Table"), std::string::npos);
    EXPECT_NE(out.find("col1"), std::string::npos);
    EXPECT_NE(out.find("column2"), std::string::npos);
    EXPECT_NE(out.find("x"), std::string::npos);
}

TEST(Table, ColumnsAreAligned)
{
    Table t("t", {"h", "i"});
    t.addRow({"longvalue", "1"});
    t.addRow({"s", "2"});
    std::ostringstream os;
    t.print(os);
    // Find the two data lines and check the separator column matches.
    std::istringstream is(os.str());
    std::string line;
    std::vector<std::string> lines;
    while (std::getline(is, line))
        lines.push_back(line);
    ASSERT_GE(lines.size(), 5u);
    const auto bar1 = lines[3].find('|');
    const auto bar2 = lines[4].find('|');
    EXPECT_EQ(bar1, bar2);
}

TEST(Table, CsvOutput)
{
    Table t("t", {"a", "b"});
    t.addRow({"1", "2"});
    t.addRow({"3", "4"});
    std::ostringstream os;
    t.writeCsv(os);
    EXPECT_EQ(os.str(), "a,b\n1,2\n3,4\n");
}
