/**
 * @file
 * HintIngress behavior tests (DESIGN.md §12): bounded capacity with
 * the oldest-duplicate-first drop policy, exact-duplicate
 * suppression, staleness, drain batching/backpressure, snapshot
 * re-entrancy, and the sOA flap-hysteresis window the ingress
 * config feeds.
 */

#include <gtest/gtest.h>

#include <vector>

#include "core/hint_ingress.hh"
#include "core/soa.hh"
#include "power/power_model.hh"

using namespace soc;
using namespace soc::core;
using wire::HintHeader;
using wire::HintKind;
using wire::Reject;
using sim::kHour;
using sim::kMinute;
using sim::kSecond;

namespace
{

wire::Frame
stopFrame(int server, std::int32_t vm, std::uint64_t seq,
          sim::Tick issued_at = 0)
{
    HintHeader h;
    h.server = server;
    h.vmId = vm;
    h.seq = seq;
    h.issuedAt = issued_at;
    return encodeStopRequest(h);
}

/** Drain everything, recording (server, vmId, seq) in order. */
std::vector<std::tuple<int, std::int32_t, std::uint64_t>>
drainAll(HintIngress &ingress, sim::Tick now = 0)
{
    std::vector<std::tuple<int, std::int32_t, std::uint64_t>> got;
    ingress.drain(now, [&](const wire::ParsedHint &h) {
        got.emplace_back(h.server, h.vmId, h.seq);
        return true;
    });
    return got;
}

} // namespace

TEST(HintIngress, AcceptsAndDrainsFifo)
{
    HintIngressConfig cfg;
    cfg.enabled = true;
    HintIngress ingress(cfg);
    for (std::uint64_t i = 0; i < 5; ++i)
        EXPECT_EQ(ingress.offer(stopFrame(0, 1, i), 0), Reject::None);
    EXPECT_EQ(ingress.depth(), 5u);
    const auto got = drainAll(ingress);
    ASSERT_EQ(got.size(), 5u);
    for (std::uint64_t i = 0; i < 5; ++i)
        EXPECT_EQ(std::get<2>(got[i]), i);
    EXPECT_EQ(ingress.depth(), 0u);
    EXPECT_EQ(ingress.stats().accepted, 5u);
    EXPECT_EQ(ingress.stats().drained, 5u);
    EXPECT_EQ(ingress.stats().drainBatches, 1u);
    EXPECT_EQ(ingress.stats().maxDepth, 5u);
}

TEST(HintIngress, MalformedFramesAttributedAndNotQueued)
{
    HintIngressConfig cfg;
    HintIngress ingress(cfg);
    auto bad = stopFrame(0, 1, 0);
    bad.bytes[0] ^= 0xff;
    EXPECT_EQ(ingress.offer(bad, 0), Reject::BadMagic);
    EXPECT_EQ(ingress.depth(), 0u);
    EXPECT_EQ(ingress.stats().parseRejects, 1u);
    EXPECT_EQ(ingress.stats().rejects(Reject::BadMagic), 1u);
    EXPECT_EQ(ingress.stats().accepted, 0u);
    // The sink never sees it.
    bool sunk = false;
    ingress.drain(0, [&](const wire::ParsedHint &) {
        sunk = true;
        return true;
    });
    EXPECT_FALSE(sunk);
}

TEST(HintIngress, ExactDuplicatesSuppressed)
{
    HintIngressConfig cfg;
    HintIngress ingress(cfg);
    EXPECT_EQ(ingress.offer(stopFrame(0, 1, 9), 0), Reject::None);
    EXPECT_EQ(ingress.offer(stopFrame(0, 1, 9), 0), Reject::None);
    EXPECT_EQ(ingress.depth(), 1u);
    EXPECT_EQ(ingress.stats().duplicates, 1u);
    // Same seq on another VM is a different flow, not a duplicate.
    EXPECT_EQ(ingress.offer(stopFrame(0, 2, 9), 0), Reject::None);
    EXPECT_EQ(ingress.depth(), 2u);
    EXPECT_EQ(ingress.stats().duplicates, 1u);
}

TEST(HintIngress, OverflowEvictsOldestDuplicateFirst)
{
    HintIngressConfig cfg;
    cfg.queueCapacity = 3;
    HintIngress ingress(cfg);
    // VM 1 has two queued hints (a flapping flow); VM 2 has one.
    ingress.offer(stopFrame(0, 1, 0), 0);
    ingress.offer(stopFrame(0, 2, 0), 0);
    ingress.offer(stopFrame(0, 1, 1), 0);
    // Overflow: the victim must be VM 1's *older* hint (seq 0), not
    // the overall front by arrival if that were unique -- here it is
    // both, so also check the unique-flow VM 2 survived.
    ingress.offer(stopFrame(0, 3, 0), 0);
    EXPECT_EQ(ingress.stats().overflowEvictions, 1u);
    EXPECT_EQ(ingress.stats().overflowSuperseded, 1u);
    const auto got = drainAll(ingress);
    ASSERT_EQ(got.size(), 3u);
    EXPECT_EQ(got[0], (std::tuple<int, std::int32_t, std::uint64_t>{
                          0, 2, 0}));
    EXPECT_EQ(got[1], (std::tuple<int, std::int32_t, std::uint64_t>{
                          0, 1, 1}));
    EXPECT_EQ(got[2], (std::tuple<int, std::int32_t, std::uint64_t>{
                          0, 3, 0}));
}

TEST(HintIngress, OverflowWithUniqueFlowsEvictsFront)
{
    HintIngressConfig cfg;
    cfg.queueCapacity = 2;
    HintIngress ingress(cfg);
    ingress.offer(stopFrame(0, 1, 0), 0);
    ingress.offer(stopFrame(0, 2, 0), 0);
    ingress.offer(stopFrame(0, 3, 0), 0);
    EXPECT_EQ(ingress.stats().overflowEvictions, 1u);
    EXPECT_EQ(ingress.stats().overflowSuperseded, 0u);
    const auto got = drainAll(ingress);
    ASSERT_EQ(got.size(), 2u);
    EXPECT_EQ(std::get<1>(got[0]), 2);
    EXPECT_EQ(std::get<1>(got[1]), 3);
}

TEST(HintIngress, StaleAndFutureHintsRejected)
{
    HintIngressConfig cfg;
    cfg.maxHintAge = kHour;
    HintIngress ingress(cfg);
    const sim::Tick now = 10 * kHour;
    // Too old.
    EXPECT_EQ(ingress.offer(stopFrame(0, 1, 0, now - 2 * kHour), now),
              Reject::Stale);
    // From the future.
    EXPECT_EQ(ingress.offer(stopFrame(0, 1, 1, now + kMinute), now),
              Reject::Stale);
    // Within the window.
    EXPECT_EQ(ingress.offer(stopFrame(0, 1, 2, now - kMinute), now),
              Reject::None);
    EXPECT_EQ(ingress.stats().rejects(Reject::Stale), 2u);
    EXPECT_EQ(ingress.depth(), 1u);
}

TEST(HintIngress, DrainMaxBoundsBatchAndKeepsOrder)
{
    HintIngressConfig cfg;
    cfg.drainMax = 2;
    HintIngress ingress(cfg);
    for (std::uint64_t i = 0; i < 5; ++i)
        ingress.offer(stopFrame(0, 1, i), 0);
    auto got = drainAll(ingress);
    ASSERT_EQ(got.size(), 2u);
    EXPECT_EQ(std::get<2>(got[0]), 0u);
    EXPECT_EQ(std::get<2>(got[1]), 1u);
    EXPECT_EQ(ingress.depth(), 3u);
    got = drainAll(ingress);
    ASSERT_EQ(got.size(), 2u);
    EXPECT_EQ(std::get<2>(got[0]), 2u);
    got = drainAll(ingress);
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(std::get<2>(got[0]), 4u);
    EXPECT_EQ(ingress.stats().drainBatches, 3u);
}

TEST(HintIngress, OffersDuringDrainLandInNextBatch)
{
    HintIngressConfig cfg;
    HintIngress ingress(cfg);
    ingress.offer(stopFrame(0, 1, 0), 0);
    std::size_t seen = 0;
    ingress.drain(0, [&](const wire::ParsedHint &) {
        // Re-entrant offer: must not join the batch in flight.
        ingress.offer(stopFrame(0, 1, 1), 0);
        ++seen;
        return true;
    });
    EXPECT_EQ(seen, 1u);
    EXPECT_EQ(ingress.depth(), 1u);
    const auto got = drainAll(ingress);
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(std::get<2>(got[0]), 1u);
}

TEST(HintIngress, SinkDropCounted)
{
    HintIngressConfig cfg;
    HintIngress ingress(cfg);
    ingress.offer(stopFrame(0, 1, 0), 0);
    ingress.drain(0, [](const wire::ParsedHint &) { return false; });
    EXPECT_EQ(ingress.stats().sinkDrops, 1u);
    EXPECT_EQ(ingress.stats().drained, 1u);
}

TEST(HintIngress, ClearDropsEverything)
{
    HintIngressConfig cfg;
    HintIngress ingress(cfg);
    ingress.offer(stopFrame(0, 1, 0), 0);
    ingress.offer(stopFrame(0, 2, 0), 0);
    ingress.clear();
    EXPECT_EQ(ingress.depth(), 0u);
    EXPECT_TRUE(drainAll(ingress).empty());
    // After a clear (crash restart), the same frame is new again.
    EXPECT_EQ(ingress.offer(stopFrame(0, 1, 0), 0), Reject::None);
    EXPECT_EQ(ingress.depth(), 1u);
}

TEST(HintIngress, ConfigValidation)
{
    HintIngressConfig cfg;
    cfg.queueCapacity = 0;
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
    cfg = HintIngressConfig{};
    cfg.flapHoldoff = -1;
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(HintIngress, DeterministicAcrossIdenticalRuns)
{
    // Same offer sequence => bit-identical stats and drain order.
    auto run = [] {
        HintIngressConfig cfg;
        cfg.queueCapacity = 4;
        HintIngress ingress(cfg);
        for (std::uint64_t i = 0; i < 16; ++i)
            ingress.offer(
                stopFrame(0, static_cast<std::int32_t>(i % 3), i / 3),
                0);
        auto got = drainAll(ingress);
        return std::make_pair(got, ingress.stats());
    };
    const auto a = run();
    const auto b = run();
    EXPECT_EQ(a.first, b.first);
    EXPECT_EQ(a.second.accepted, b.second.accepted);
    EXPECT_EQ(a.second.overflowEvictions, b.second.overflowEvictions);
    EXPECT_EQ(a.second.overflowSuperseded,
              b.second.overflowSuperseded);
    EXPECT_EQ(a.second.duplicates, b.second.duplicates);
}

TEST(HintIngress, SoaFlapHysteresisDeniesRapidRerequest)
{
    // The window HintIngressConfig::flapHoldoff feeds: after a stop,
    // a re-request inside the window is denied and counted, without
    // inflating the requested-core telemetry.
    static const power::PowerModel model;
    power::Rack rack{0, power::Watts{2000.0}};
    power::Server &server = rack.addServer(&model);
    const int vm = server.addGroup(8, 0.5, power::kTurboMHz, 1);
    SoaConfig soa_cfg;
    soa_cfg.flapHoldoff = 5 * kMinute;
    ServerOverclockingAgent soa(server, soa_cfg, &rack);
    soa.assignBudget(ProfileTemplate::flat(900.0));

    OverclockRequest req;
    req.groupId = vm;
    req.cores = 8;
    ASSERT_TRUE(soa.requestOverclock(req, 0).granted);
    soa.stopOverclock(vm, kMinute);

    // Flap: re-request inside the holdoff window.
    const auto denied = soa.requestOverclock(req, 2 * kMinute);
    EXPECT_FALSE(denied.granted);
    EXPECT_EQ(denied.reason, "flap hysteresis");
    EXPECT_EQ(soa.stats().flapDenied, 1u);

    // Past the window: granted again.
    const auto granted =
        soa.requestOverclock(req, kMinute + 6 * kMinute);
    EXPECT_TRUE(granted.granted);
    EXPECT_EQ(soa.stats().flapDenied, 1u);
}
