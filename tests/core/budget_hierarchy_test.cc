/** @file Unit tests for the rack -> row -> zone budget tier. */

#include <gtest/gtest.h>

#include <vector>

#include "core/budget_hierarchy.hh"

using namespace soc;
using namespace soc::core;

namespace
{

const power::PowerModel &
model()
{
    static const power::PowerModel instance;
    return instance;
}

ServerProfile
flatProfile(double watts, double util, double oc_cores,
            double req_cores)
{
    ServerProfile profile;
    profile.power = ProfileTemplate::flat(watts);
    profile.utilization = ProfileTemplate::flat(util);
    profile.overclockedCores = ProfileTemplate::flat(oc_cores);
    profile.requestedCores = ProfileTemplate::flat(req_cores);
    return profile;
}

/** A small synthetic fleet: @p racks racks of @p servers servers,
 *  with per-rack variation so the splits are non-trivial. */
std::vector<std::vector<ServerProfile>>
fleetProfiles(int racks, int servers)
{
    std::vector<std::vector<ServerProfile>> fleet;
    for (int r = 0; r < racks; ++r) {
        std::vector<ServerProfile> rack;
        for (int s = 0; s < servers; ++s) {
            rack.push_back(flatProfile(300.0 + 10.0 * (r % 5),
                                       0.4 + 0.05 * (s % 4),
                                       static_cast<double>(s % 3),
                                       4.0 + (r + s) % 6));
        }
        fleet.push_back(std::move(rack));
    }
    return fleet;
}

} // namespace

TEST(BudgetHierarchy, RackBudgetsConserveZoneLimit)
{
    HierarchyConfig cfg;
    cfg.racksPerRow = 4;
    cfg.budget.safetyFraction = 0.0;
    BudgetHierarchy hierarchy(model(), cfg);
    for (auto &rack : fleetProfiles(12, 6))
        hierarchy.addRack(std::move(rack));
    const double zone = 12 * 6 * 450.0;
    hierarchy.recompute(power::Watts{zone});

    ASSERT_EQ(hierarchy.racks(), 12u);
    EXPECT_EQ(hierarchy.rows(), 3u);
    double total = 0.0;
    for (int r = 0; r < 12; ++r)
        total += hierarchy.rackBudget(r).predict(0);
    // Both split levels conserve exactly when headroom is positive.
    EXPECT_NEAR(total, zone, zone * 1e-9);
}

TEST(BudgetHierarchy, HigherDemandRackGetsMoreBudget)
{
    HierarchyConfig cfg;
    cfg.racksPerRow = 2;
    BudgetHierarchy hierarchy(model(), cfg);
    // Two racks in one row: identical regular power, demand 2 vs 12
    // requested cores per server.
    hierarchy.addRack({flatProfile(300.0, 0.5, 0.0, 2.0),
                       flatProfile(300.0, 0.5, 0.0, 2.0)});
    hierarchy.addRack({flatProfile(300.0, 0.5, 0.0, 12.0),
                       flatProfile(300.0, 0.5, 0.0, 12.0)});
    hierarchy.recompute(power::Watts{2000.0});
    EXPECT_GT(hierarchy.rackBudget(1).predict(0),
              hierarchy.rackBudget(0).predict(0));
}

TEST(BudgetHierarchy, SingleRackReceivesWholeUsableLimit)
{
    HierarchyConfig cfg;
    cfg.budget.safetyFraction = 0.01;
    BudgetHierarchy hierarchy(model(), cfg);
    hierarchy.addRack({flatProfile(350.0, 0.5, 1.0, 6.0),
                       flatProfile(420.0, 0.6, 0.0, 3.0)});
    hierarchy.recompute(power::Watts{3000.0});
    // One rack in one row: every split is a 1-member split, so the
    // whole usable budget (margin applied exactly once) lands on it.
    EXPECT_NEAR(hierarchy.rackBudget(0).predict(0), 3000.0 * 0.99,
                1e-6);
}

TEST(BudgetHierarchy, IncrementalRecomputeMatchesFreshBuild)
{
    const auto fleet = fleetProfiles(10, 5);
    HierarchyConfig cfg;
    cfg.racksPerRow = 4;

    BudgetHierarchy incremental(model(), cfg);
    for (const auto &rack : fleet)
        incremental.addRack(rack);
    incremental.recompute(power::Watts{20000.0});

    // Mutate one rack and recompute incrementally.
    auto changed = fleet;
    changed[7][2] = flatProfile(500.0, 0.9, 2.0, 10.0);
    const auto base_aggs = incremental.stats().rackAggregations;
    incremental.setRackProfiles(7, changed[7]);
    incremental.recompute(power::Watts{20000.0});
    // Only the one dirty rack was re-aggregated.
    EXPECT_EQ(incremental.stats().rackAggregations - base_aggs, 1u);

    // A hierarchy built fresh over the mutated fleet agrees
    // bit-identically on every rack budget.
    BudgetHierarchy fresh(model(), cfg);
    for (const auto &rack : changed)
        fresh.addRack(rack);
    fresh.recompute(power::Watts{20000.0});
    for (int r = 0; r < 10; ++r)
        EXPECT_EQ(incremental.rackBudget(r), fresh.rackBudget(r))
            << "rack " << r;
}

TEST(BudgetHierarchy, CleanRecomputeSkipsAllAggregation)
{
    BudgetHierarchy hierarchy(model(), {});
    for (auto &rack : fleetProfiles(6, 4))
        hierarchy.addRack(std::move(rack));
    hierarchy.recompute(power::Watts{10000.0});
    const auto aggs = hierarchy.stats().rackAggregations;
    const auto row_aggs = hierarchy.stats().rowAggregations;
    // Limit changes re-split but touch no aggregates.
    hierarchy.recompute(power::Watts{12000.0});
    EXPECT_EQ(hierarchy.stats().rackAggregations, aggs);
    EXPECT_EQ(hierarchy.stats().rowAggregations, row_aggs);
}

TEST(BudgetAllocatorWeekly, ConstantRowMatchesScalarSplit)
{
    BudgetConfig cfg;
    BudgetAllocator allocator(model(), cfg);
    const std::vector<ServerProfile> profiles = {
        flatProfile(400.0, 0.5, 1.0, 4.0),
        flatProfile(350.0, 0.7, 0.0, 8.0),
    };
    const auto scalar =
        allocator.split(power::Watts{2000.0}, profiles);

    const double usable = 2000.0 * (1.0 - cfg.safetyFraction);
    std::vector<double> row(
        static_cast<std::size_t>(sim::kSlotsPerWeek), usable);
    BudgetAllocator::SplitScratch scratch;
    std::vector<ProfileTemplate> weekly;
    allocator.splitWeeklyInto(row, profiles, scratch, weekly);

    ASSERT_EQ(scalar.size(), weekly.size());
    for (std::size_t i = 0; i < scalar.size(); ++i)
        EXPECT_EQ(scalar[i], weekly[i]);
}

TEST(BudgetHierarchy, AggregateRacksMatchPerServerRacks)
{
    // A hierarchy fed pre-built rack aggregates (the trace sim's
    // form: gOAs reduce their own servers with ProfileAggregator)
    // must produce bit-identical budgets to one holding the
    // per-server profiles itself.
    const auto fleet = fleetProfiles(10, 5);
    HierarchyConfig cfg;
    cfg.racksPerRow = 4;

    BudgetHierarchy internal(model(), cfg);
    for (const auto &rack : fleet)
        internal.addRack(rack);
    internal.recompute(power::Watts{20000.0});

    BudgetHierarchy external(model(), cfg);
    ProfileAggregator aggregator;
    for (const auto &rack : fleet) {
        ServerProfile aggregate;
        aggregator.aggregate(rack.data(), rack.size(), aggregate);
        external.addRackAggregate(std::move(aggregate));
    }
    external.recompute(power::Watts{20000.0});
    // Externally-aggregated racks never trigger step-1 aggregation.
    EXPECT_EQ(external.stats().rackAggregations, 0u);

    ASSERT_EQ(external.racks(), internal.racks());
    for (int r = 0; r < 10; ++r)
        EXPECT_EQ(external.rackBudget(r), internal.rackBudget(r))
            << "rack " << r;
}

TEST(BudgetHierarchy, ExchangePropagatesDirtinessToItsRowOnly)
{
    const auto fleet = fleetProfiles(8, 4);
    HierarchyConfig cfg;
    cfg.racksPerRow = 4;

    BudgetHierarchy hierarchy(model(), cfg);
    ProfileAggregator aggregator;
    for (const auto &rack : fleet) {
        ServerProfile aggregate;
        aggregator.aggregate(rack.data(), rack.size(), aggregate);
        hierarchy.addRackAggregate(std::move(aggregate));
    }
    hierarchy.recompute(power::Watts{16000.0});
    const auto row_aggs = hierarchy.stats().rowAggregations;

    // Swap a hotter aggregate into rack 6 (row 1); its old
    // aggregate comes back in the slot for reuse.
    std::vector<ServerProfile> hot(
        4, flatProfile(500.0, 0.9, 2.0, 10.0));
    ServerProfile slot;
    aggregator.aggregate(hot.data(), hot.size(), slot);
    hierarchy.exchangeRackAggregate(6, slot);
    hierarchy.recompute(power::Watts{16000.0});
    // Only the touched row re-aggregated; budgets match a fresh
    // build over the same aggregates.
    EXPECT_EQ(hierarchy.stats().rowAggregations - row_aggs, 1u);

    BudgetHierarchy fresh(model(), cfg);
    for (int r = 0; r < 8; ++r) {
        const auto &rack = fleet[static_cast<std::size_t>(r)];
        ServerProfile aggregate;
        if (r == 6)
            aggregator.aggregate(hot.data(), hot.size(), aggregate);
        else
            aggregator.aggregate(rack.data(), rack.size(),
                                 aggregate);
        fresh.addRackAggregate(std::move(aggregate));
    }
    fresh.recompute(power::Watts{16000.0});
    for (int r = 0; r < 8; ++r)
        EXPECT_EQ(hierarchy.rackBudget(r), fresh.rackBudget(r))
            << "rack " << r;
}
