/** @file Behavioural tests for the Global Overclocking Agent. */

#include <gtest/gtest.h>

#include "core/goa.hh"

using namespace soc;
using namespace soc::core;
using sim::kMinute;
using sim::Tick;

namespace
{

const power::PowerModel &
model()
{
    static const power::PowerModel instance;
    return instance;
}

struct Fixture {
    power::Rack rack{0, power::Watts{1500.0}};
    std::vector<std::unique_ptr<ServerOverclockingAgent>> soas;
    std::vector<power::GroupId> vms;
    GlobalOverclockingAgent goa{rack, model()};

    explicit Fixture(int servers = 2)
    {
        for (int i = 0; i < servers; ++i) {
            power::Server &server = rack.addServer(&model());
            vms.push_back(
                server.addGroup(8, 0.3 + 0.2 * i, power::kTurboMHz,
                                1));
            soas.push_back(
                std::make_unique<ServerOverclockingAgent>(
                    server, SoaConfig{}, &rack));
            goa.addAgent(soas.back().get());
        }
    }
};

} // namespace

TEST(Goa, EvenSplitAssignsEqualBudgets)
{
    Fixture fx;
    fx.goa.assignEvenSplit();
    EXPECT_NEAR(fx.soas[0]->budgetWatts(0).count(), 750.0, 1e-9);
    EXPECT_NEAR(fx.soas[1]->budgetWatts(0).count(), 750.0, 1e-9);
    EXPECT_EQ(fx.goa.lastBudgets().size(), 2u);
}

TEST(Goa, RecomputeProducesHeterogeneousBudgets)
{
    Fixture fx;
    fx.goa.assignEvenSplit();

    // Collect telemetry: server 1 requests overclocking, server 0
    // does not; the recompute must favour server 1's demand.
    OverclockRequest req;
    req.cores = 8;
    req.groupId = fx.vms[1];
    req.duration = 4 * sim::kHour;
    fx.soas[1]->requestOverclock(req, 0);
    for (Tick t = 0; t < 2 * sim::kHour; t += kMinute) {
        fx.soas[0]->tick(t);
        fx.soas[1]->tick(t);
    }

    fx.goa.recompute(2 * sim::kHour);
    EXPECT_EQ(fx.goa.recomputeCount(), 1u);
    // Server 1 draws more (util 0.5 vs 0.3, plus overclock) and has
    // all the demand: its budget must exceed server 0's.
    const Tick probe = sim::kHour;
    EXPECT_GT(fx.soas[1]->budgetWatts(probe),
              fx.soas[0]->budgetWatts(probe));
}

TEST(Goa, BudgetsRespectRackLimit)
{
    Fixture fx(3);
    fx.goa.assignEvenSplit();
    for (Tick t = 0; t < sim::kHour; t += kMinute)
        for (auto &soa : fx.soas)
            soa->tick(t);
    fx.goa.recompute(sim::kHour);
    for (Tick t = 0; t < sim::kWeek; t += 37 * kMinute) {
        double sum = 0.0;
        for (const auto &b : fx.goa.lastBudgets())
            sum += b.predict(t);
        EXPECT_LE(sum, fx.rack.limitWatts().count() + 1e-6);
    }
}

TEST(Goa, RecomputeRefreshesOwnTemplates)
{
    // After a recompute, sOAs can do look-ahead admission: verify
    // the profile-based budget responds to the collected history
    // rather than staying at the bootstrap even split.
    Fixture fx;
    fx.goa.assignEvenSplit();
    const power::Watts even = fx.soas[0]->budgetWatts(0);
    for (Tick t = 0; t < sim::kHour; t += kMinute)
        for (auto &soa : fx.soas)
            soa->tick(t);
    fx.goa.recompute(sim::kHour);
    EXPECT_NE(fx.soas[0]->budgetWatts(2 * sim::kHour), even);
}
