/** @file Unit tests for the heterogeneous budget allocator (§IV-C). */

#include <gtest/gtest.h>

#include "core/budget_allocator.hh"

using namespace soc;
using namespace soc::core;

namespace
{

const power::PowerModel &
model()
{
    static const power::PowerModel instance;
    return instance;
}

ServerProfile
flatProfile(double watts, double util, double oc_cores,
            double req_cores)
{
    ServerProfile profile;
    profile.power = ProfileTemplate::flat(watts);
    profile.utilization = ProfileTemplate::flat(util);
    profile.overclockedCores = ProfileTemplate::flat(oc_cores);
    profile.requestedCores = ProfileTemplate::flat(req_cores);
    return profile;
}

} // namespace

TEST(BudgetAllocator, PaperWorkedExampleProportions)
{
    // §IV-C: limit 1.3 kW, regular 400/300 W, overclock demand in
    // ratio 1:2 => budgets 400 + 200 = 600 and 300 + 400 = 700.
    // We reproduce the proportions with demand expressed through
    // requested cores (5 vs 10 at equal utilization).
    BudgetConfig cfg;
    cfg.safetyFraction = 0.0;
    BudgetAllocator allocator(model(), cfg);
    const auto budgets = allocator.split(
        power::Watts{1300.0}, {flatProfile(400.0, 0.6, 0.0, 5.0),
                 flatProfile(300.0, 0.6, 0.0, 10.0)});
    ASSERT_EQ(budgets.size(), 2u);
    const double bx = budgets[0].predict(0);
    const double by = budgets[1].predict(0);
    // Headroom = 600 W split 1:2.
    EXPECT_NEAR(bx, 400.0 + 600.0 / 3.0, 1e-6);
    EXPECT_NEAR(by, 300.0 + 2.0 * 600.0 / 3.0, 1e-6);
}

TEST(BudgetAllocator, BudgetsSumToUsableLimit)
{
    BudgetAllocator allocator(model());
    const double limit = 2000.0;
    const auto budgets = allocator.split(
        power::Watts{limit}, {flatProfile(400.0, 0.5, 0.0, 4.0),
                flatProfile(350.0, 0.7, 0.0, 8.0),
                flatProfile(500.0, 0.9, 0.0, 2.0)});
    double sum = 0.0;
    for (const auto &b : budgets)
        sum += b.predict(0);
    EXPECT_NEAR(sum, limit * 0.995, 1e-6); // default 0.5% safety
}

TEST(BudgetAllocator, NoDemandFallsBackToEvenHeadroomSplit)
{
    BudgetConfig cfg;
    cfg.safetyFraction = 0.0;
    BudgetAllocator allocator(model(), cfg);
    const auto budgets = allocator.split(
        power::Watts{1000.0}, {flatProfile(300.0, 0.5, 0.0, 0.0),
                 flatProfile(500.0, 0.5, 0.0, 0.0)});
    EXPECT_NEAR(budgets[0].predict(0), 300.0 + 100.0, 1e-6);
    EXPECT_NEAR(budgets[1].predict(0), 500.0 + 100.0, 1e-6);
}

TEST(BudgetAllocator, OverloadScalesRegularBudgets)
{
    BudgetConfig cfg;
    cfg.safetyFraction = 0.0;
    BudgetAllocator allocator(model(), cfg);
    // Regular draws sum to 1200 W against a 600 W limit.
    const auto budgets = allocator.split(
        power::Watts{600.0}, {flatProfile(800.0, 0.9, 0.0, 4.0),
                flatProfile(400.0, 0.9, 0.0, 4.0)});
    EXPECT_NEAR(budgets[0].predict(0), 400.0, 1e-6);
    EXPECT_NEAR(budgets[1].predict(0), 200.0, 1e-6);
}

TEST(BudgetAllocator, RegularPowerSubtractsOverclockSurcharge)
{
    BudgetAllocator allocator(model());
    // A server that historically ran 6 cores overclocked: its
    // "regular" power strips the modelled surcharge.
    const auto profile = flatProfile(450.0, 0.8, 6.0, 6.0);
    const power::Watts surcharge = model().overclockExtraPower(
        0.8, power::kOverclockMHz, 6);
    EXPECT_NEAR(allocator.regularPower(profile, 0).count(),
                450.0 - surcharge.count(), 1e-9);
}

TEST(BudgetAllocator, DemandUsesRequestedCores)
{
    BudgetAllocator allocator(model());
    const auto quiet = flatProfile(400.0, 0.8, 0.0, 0.0);
    const auto hungry = flatProfile(400.0, 0.8, 0.0, 12.0);
    EXPECT_EQ(allocator.overclockDemand(quiet, 0),
              power::Watts{0.0});
    EXPECT_GT(allocator.overclockDemand(hungry, 0),
              power::Watts{0.0});
}

TEST(BudgetAllocator, BudgetNeverNegative)
{
    BudgetAllocator allocator(model());
    const auto budgets = allocator.split(
        power::Watts{100.0}, {flatProfile(800.0, 1.0, 0.0, 8.0),
                flatProfile(0.0, 0.0, 0.0, 0.0)});
    for (const auto &b : budgets)
        for (sim::Tick t = 0; t < sim::kWeek; t += sim::kHour)
            EXPECT_GE(b.predict(t), 0.0);
}

TEST(BudgetAllocator, TimeVaryingProfilesGetTimeVaryingBudgets)
{
    // Server A is hungry at night, server B during the day; the
    // headroom must follow demand across slots.
    std::vector<double> day_hungry(sim::kSlotsPerWeek, 0.0);
    std::vector<double> night_hungry(sim::kSlotsPerWeek, 0.0);
    for (int slot = 0; slot < sim::kSlotsPerWeek; ++slot) {
        const double hour =
            sim::hourOfDay(static_cast<sim::Tick>(slot) * sim::kSlot);
        if (hour >= 9 && hour < 17)
            day_hungry[slot] = 8.0;
        else
            night_hungry[slot] = 8.0;
    }
    ServerProfile a = flatProfile(400.0, 0.6, 0.0, 0.0);
    a.requestedCores = ProfileTemplate::fromWeekly(day_hungry);
    ServerProfile b = flatProfile(400.0, 0.6, 0.0, 0.0);
    b.requestedCores = ProfileTemplate::fromWeekly(night_hungry);

    BudgetConfig cfg;
    cfg.safetyFraction = 0.0;
    BudgetAllocator allocator(model(), cfg);
    const auto budgets =
        allocator.split(power::Watts{1000.0}, {a, b});

    const sim::Tick noon = 12 * sim::kHour;
    const sim::Tick midnight = 1 * sim::kHour;
    EXPECT_GT(budgets[0].predict(noon), budgets[1].predict(noon));
    EXPECT_LT(budgets[0].predict(midnight),
              budgets[1].predict(midnight));
}

TEST(BudgetAllocator, SingleServerGetsWholeUsableLimit)
{
    BudgetConfig cfg;
    cfg.safetyFraction = 0.0;
    BudgetAllocator allocator(model(), cfg);
    const auto budgets = allocator.split(
        power::Watts{900.0}, {flatProfile(300.0, 0.5, 0.0, 4.0)});
    EXPECT_NEAR(budgets[0].predict(0), 900.0, 1e-6);
}
