/** @file Behavioural tests for the Workload Intelligence agents. */

#include <gtest/gtest.h>

#include "core/wi.hh"

using namespace soc;
using namespace soc::core;
using sim::kHour;
using sim::kMinute;
using sim::kSecond;
using sim::Tick;

namespace
{

const power::PowerModel &
model()
{
    static const power::PowerModel instance;
    return instance;
}

/** A service deployment with one VM on one server. */
struct Fixture {
    power::Rack rack{0, power::Watts{2000.0}};
    power::Server *server;
    std::unique_ptr<ServerOverclockingAgent> soa;
    power::GroupId vm;
    std::unique_ptr<GlobalWiAgent> wi;
    int scaleOuts = 0;
    int scaleIns = 0;

    explicit Fixture(WiPolicyConfig cfg)
    {
        server = &rack.addServer(&model());
        vm = server->addGroup(8, 0.5, power::kTurboMHz, 1);
        soa = std::make_unique<ServerOverclockingAgent>(
            *server, SoaConfig{}, &rack);
        soa->assignBudget(ProfileTemplate::flat(900.0));
        wi = std::make_unique<GlobalWiAgent>("svc", cfg);
        wi->addVm(std::make_unique<LocalWiAgent>(0, soa.get(), vm,
                                                 8));
        wi->setScaleOutHandler([this](int n) { scaleOuts += n; });
        wi->setScaleInHandler([this](int n) { scaleIns += n; });
    }
};

WiPolicyConfig
latencyPolicy()
{
    WiPolicyConfig cfg;
    cfg.sloMs = 100.0;
    cfg.baselineP99Ms = 20.0;
    cfg.scaleCooldown = 0;
    cfg.overclockGrace = 30 * kSecond;
    return cfg;
}

VmMetrics
metrics(double p99, double util = 0.5)
{
    VmMetrics m;
    m.p99LatencyMs = p99;
    m.meanLatencyMs = p99 / 3.0;
    m.utilization = util;
    m.completed = 1000;
    return m;
}

} // namespace

TEST(ScheduleWindow, ContainsRespectsDayMaskAndMinutes)
{
    ScheduleWindow w;
    w.dayMask = 0x1f; // weekdays
    w.startMinute = 9 * 60;
    w.endMinute = 10 * 60;
    EXPECT_TRUE(w.contains(9 * kHour + 30 * kMinute));   // Mon 9:30
    EXPECT_FALSE(w.contains(8 * kHour));                 // Mon 8:00
    EXPECT_FALSE(w.contains(10 * kHour));                // boundary
    EXPECT_FALSE(
        w.contains(5 * sim::kDay + 9 * kHour + kMinute)); // Saturday
}

TEST(Wi, LatencyTriggerStartsOverclock)
{
    Fixture fx(latencyPolicy());
    fx.wi->onMetrics(0, metrics(30.0));
    EXPECT_FALSE(fx.wi->overclocking());
    // Above baseline + 0.7 * (slo - baseline) = 20 + 56 = 76.
    fx.wi->onMetrics(15 * kSecond, metrics(80.0));
    EXPECT_TRUE(fx.wi->overclocking());
    EXPECT_TRUE(fx.soa->isOverclockActive(fx.vm));
    EXPECT_EQ(fx.wi->stats().overclockStarts, 1u);
}

TEST(Wi, LatencyRecoveryStopsOverclock)
{
    Fixture fx(latencyPolicy());
    fx.wi->onMetrics(0, metrics(80.0));
    ASSERT_TRUE(fx.wi->overclocking());
    // Below baseline + 0.35 * 80 = 48.
    fx.wi->onMetrics(kMinute, metrics(25.0));
    EXPECT_FALSE(fx.wi->overclocking());
    EXPECT_FALSE(fx.soa->isOverclockActive(fx.vm));
}

TEST(Wi, HysteresisHoldsBetweenThresholds)
{
    Fixture fx(latencyPolicy());
    fx.wi->onMetrics(0, metrics(80.0));
    ASSERT_TRUE(fx.wi->overclocking());
    fx.wi->onMetrics(kMinute, metrics(60.0)); // between down and up
    EXPECT_TRUE(fx.wi->overclocking());
}

TEST(Wi, UtilizationTriggerWorks)
{
    WiPolicyConfig cfg;
    cfg.overclockUpUtil = 0.7;
    cfg.overclockDownUtil = 0.3;
    Fixture fx(cfg);
    fx.wi->onMetrics(0, metrics(0.0, 0.8));
    EXPECT_TRUE(fx.wi->overclocking());
    fx.wi->onMetrics(kMinute, metrics(0.0, 0.2));
    EXPECT_FALSE(fx.wi->overclocking());
}

TEST(Wi, ScaleOutAfterGraceWhenStillSlow)
{
    Fixture fx(latencyPolicy());
    // p99 above scale-out threshold (20 + 0.9*80 = 92).
    fx.wi->onMetrics(0, metrics(95.0));
    EXPECT_TRUE(fx.wi->overclocking());
    EXPECT_EQ(fx.scaleOuts, 0); // inside grace
    fx.wi->onMetrics(45 * kSecond, metrics(95.0));
    EXPECT_EQ(fx.scaleOuts, 1);
}

TEST(Wi, SevereSloViolationBypassesGrace)
{
    // A sustained outright SLO breach (two consecutive windows)
    // bypasses the overclock grace period.
    Fixture fx(latencyPolicy());
    fx.wi->onMetrics(0, metrics(150.0));
    EXPECT_EQ(fx.scaleOuts, 0); // first severe window: hold
    fx.wi->onMetrics(15 * kSecond, metrics(150.0));
    EXPECT_EQ(fx.scaleOuts, 1);
}

TEST(Wi, OverclockDenialTriggersScaleOut)
{
    auto cfg = latencyPolicy();
    Fixture fx(cfg);
    // Make the sOA deny: assign an impossible budget.
    fx.soa->assignBudget(ProfileTemplate::flat(1.0));
    fx.wi->onMetrics(0, metrics(80.0));
    EXPECT_FALSE(fx.wi->overclocking());
    EXPECT_GT(fx.wi->stats().denials, 0u);
    EXPECT_EQ(fx.scaleOuts, 1);
}

TEST(Wi, ScaleInOnLowLatency)
{
    Fixture fx(latencyPolicy());
    // Add a second VM so scale-in has something to remove.
    fx.wi->addVm(std::make_unique<LocalWiAgent>(1, fx.soa.get(),
                                                fx.vm, 8));
    fx.wi->onMetrics(0, metrics(22.0)); // below scale-in threshold
    EXPECT_EQ(fx.scaleIns, 1);
}

TEST(Wi, NoScaleInBelowMinInstances)
{
    Fixture fx(latencyPolicy());
    fx.wi->onMetrics(0, metrics(22.0));
    EXPECT_EQ(fx.scaleIns, 0);
}

TEST(Wi, CooldownLimitsActionRate)
{
    auto cfg = latencyPolicy();
    cfg.scaleCooldown = 10 * kMinute;
    Fixture fx(cfg);
    fx.wi->onMetrics(0, metrics(150.0));
    fx.wi->onMetrics(kMinute, metrics(150.0));
    EXPECT_EQ(fx.scaleOuts, 1);
    fx.wi->onMetrics(11 * kMinute, metrics(150.0));
    EXPECT_EQ(fx.scaleOuts, 2);
}

TEST(Wi, MaxInstancesBoundsScaleOut)
{
    auto cfg = latencyPolicy();
    cfg.maxInstances = 1;
    Fixture fx(cfg);
    fx.wi->onMetrics(0, metrics(150.0));
    EXPECT_EQ(fx.scaleOuts, 0);
}

TEST(Wi, DisabledOverclockNeverRequests)
{
    auto cfg = latencyPolicy();
    cfg.enableOverclock = false;
    Fixture fx(cfg);
    fx.wi->onMetrics(0, metrics(80.0));
    EXPECT_FALSE(fx.wi->overclocking());
    EXPECT_EQ(fx.soa->stats().requests, 0u);
}

TEST(Wi, DisabledScaleOutNeverScales)
{
    auto cfg = latencyPolicy();
    cfg.enableScaleOut = false;
    Fixture fx(cfg);
    fx.wi->onMetrics(0, metrics(150.0));
    EXPECT_EQ(fx.scaleOuts, 0);
}

TEST(Wi, ScheduleWindowDrivesOverclock)
{
    WiPolicyConfig cfg;
    ScheduleWindow w;
    w.dayMask = 0x7f;
    w.startMinute = 60; // 01:00-02:00 daily
    w.endMinute = 120;
    cfg.windows.push_back(w);
    Fixture fx(cfg);
    fx.wi->tick(30 * kMinute);
    EXPECT_FALSE(fx.wi->overclocking());
    fx.wi->tick(kHour + kMinute);
    EXPECT_TRUE(fx.wi->overclocking());
    fx.wi->tick(2 * kHour + kMinute);
    EXPECT_FALSE(fx.wi->overclocking());
}

TEST(Wi, DeploymentGoalSuppressesOverclock)
{
    auto cfg = latencyPolicy();
    cfg.deploymentUtilTarget = 0.5;
    Fixture fx(cfg);
    // VM reports low utilization: deployment goal already met.
    fx.wi->vm(0).lastMetrics = metrics(80.0, 0.2);
    fx.wi->onMetrics(0, metrics(80.0, 0.2));
    EXPECT_FALSE(fx.wi->overclocking());
    EXPECT_GT(fx.wi->stats().suppressedByDeploymentGoal, 0u);
    // Miss the goal: overclocking proceeds.
    fx.wi->vm(0).lastMetrics = metrics(80.0, 0.9);
    fx.wi->onMetrics(kMinute, metrics(80.0, 0.9));
    EXPECT_TRUE(fx.wi->overclocking());
}

TEST(Wi, ExhaustionSignalProactivelyScalesOut)
{
    Fixture fx(latencyPolicy());
    ExhaustionSignal signal;
    signal.groupId = fx.vm;
    signal.kind = ExhaustionKind::OverclockBudget;
    signal.eta = 10 * kMinute;
    fx.wi->onExhaustion(0, signal);
    EXPECT_EQ(fx.scaleOuts, 1);
    EXPECT_EQ(fx.wi->stats().proactiveScaleOuts, 1u);
}

TEST(Wi, ProactiveDisabledIgnoresExhaustion)
{
    auto cfg = latencyPolicy();
    cfg.proactiveScaleOut = false;
    Fixture fx(cfg);
    ExhaustionSignal signal;
    fx.wi->onExhaustion(0, signal);
    EXPECT_EQ(fx.scaleOuts, 0);
}

TEST(Wi, RemoveLastVmStopsItsOverclock)
{
    Fixture fx(latencyPolicy());
    fx.wi->onMetrics(0, metrics(80.0));
    ASSERT_TRUE(fx.soa->isOverclockActive(fx.vm));
    auto vm = fx.wi->removeLastVm(kMinute);
    ASSERT_NE(vm, nullptr);
    EXPECT_FALSE(fx.soa->isOverclockActive(fx.vm));
    EXPECT_EQ(fx.wi->vmCount(), 0u);
}

TEST(Wi, RejectsNonFiniteMetricsFailClosed)
{
    Fixture fx(latencyPolicy());
    auto bad = metrics(150.0);
    bad.p99LatencyMs = std::numeric_limits<double>::quiet_NaN();
    fx.wi->onMetrics(0, bad);
    // Rejected whole: counted, and zero trigger/scaling mutation
    // even though the (garbage) latency reads as an SLO breach.
    EXPECT_EQ(fx.wi->stats().rejectedMetrics, 1u);
    EXPECT_FALSE(fx.wi->overclocking());
    EXPECT_EQ(fx.wi->stats().overclockStarts, 0u);
    EXPECT_EQ(fx.scaleOuts, 0);

    bad = metrics(150.0);
    bad.meanLatencyMs = std::numeric_limits<double>::infinity();
    fx.wi->onMetrics(kSecond, bad);
    EXPECT_EQ(fx.wi->stats().rejectedMetrics, 2u);
    EXPECT_FALSE(fx.wi->overclocking());
}

TEST(Wi, RejectsNegativeMetricsFailClosed)
{
    Fixture fx(latencyPolicy());
    auto bad = metrics(150.0);
    bad.utilization = -0.5;
    fx.wi->onMetrics(0, bad);
    EXPECT_EQ(fx.wi->stats().rejectedMetrics, 1u);
    EXPECT_FALSE(fx.wi->overclocking());

    bad = metrics(150.0);
    bad.p99LatencyMs = -1.0;
    fx.wi->onMetrics(kSecond, bad);
    EXPECT_EQ(fx.wi->stats().rejectedMetrics, 2u);
    EXPECT_FALSE(fx.wi->overclocking());

    // A valid window still works after the rejects.
    fx.wi->onMetrics(2 * kSecond, metrics(80.0));
    EXPECT_TRUE(fx.wi->overclocking());
    EXPECT_EQ(fx.wi->stats().rejectedMetrics, 2u);
}

TEST(Wi, LongCooldownDoesNotBlockFirstAction)
{
    // Regression for the old -(1 << 30) sentinel: that constant is
    // only ~18 simulated minutes in the past, so any cooldown
    // longer than that wrongly suppressed the *first* scale action
    // of the run.  kNeverTick must let it fire.
    auto cfg = latencyPolicy();
    cfg.scaleCooldown = 2 * kHour;
    Fixture fx(cfg);
    // Two consecutive outright SLO breaches cut the overclock grace
    // short and demand the horizontal fallback.
    fx.wi->onMetrics(0, metrics(150.0));
    fx.wi->onMetrics(15 * kSecond, metrics(150.0));
    EXPECT_EQ(fx.scaleOuts, 1);
    // And the (long) cooldown is then enforced from that action.
    fx.wi->onMetrics(30 * kSecond, metrics(150.0));
    EXPECT_EQ(fx.scaleOuts, 1);
}
