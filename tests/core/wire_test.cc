/**
 * @file
 * Wire-format tests (DESIGN.md §12): roundtrips for every hint
 * kind, and a malformed-frame corpus where each corruption class
 * must be rejected with its specific reason and provably zero
 * output mutation.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "core/wire.hh"

using namespace soc;
using namespace soc::core;
using namespace soc::core::wire;
using sim::kMinute;

namespace
{

HintHeader
header(HintKind kind)
{
    HintHeader h;
    h.kind = kind;
    h.server = 3;
    h.vmId = 42;
    h.seq = 7;
    h.issuedAt = 90 * kMinute;
    return h;
}

OverclockRequest
goodRequest()
{
    OverclockRequest r;
    r.groupId = 42;
    r.cores = 8;
    r.desiredMHz = power::kOverclockMHz;
    r.trigger = TriggerKind::Schedule;
    r.duration = 10 * kMinute;
    r.priority = 2;
    return r;
}

VmMetrics
goodMetrics()
{
    VmMetrics m;
    m.p99LatencyMs = 85.0;
    m.meanLatencyMs = 30.0;
    m.utilization = 0.75;
    m.completed = 12345;
    return m;
}

/** Parse with a canary-filled output; on rejection the canary must
 *  survive untouched (fail-closed means zero mutation). */
Reject
parseExpectNoMutation(const Frame &f, Reject expected)
{
    ParsedHint out;
    out.server = -777;
    out.seq = 0xdeadbeef;
    const Reject r =
        parseFrame(f.data(), f.size, WireLimits{}, out);
    EXPECT_EQ(r, expected) << rejectName(r);
    EXPECT_EQ(out.server, -777) << "rejected frame mutated output";
    EXPECT_EQ(out.seq, 0xdeadbeefu);
    return r;
}

} // namespace

TEST(Wire, OverclockRequestRoundtrip)
{
    const auto f =
        encodeOverclockRequest(header(HintKind::OverclockRequest),
                               goodRequest());
    ParsedHint out;
    ASSERT_EQ(parseFrame(f.data(), f.size, WireLimits{}, out),
              Reject::None);
    EXPECT_EQ(out.kind, HintKind::OverclockRequest);
    EXPECT_EQ(out.server, 3);
    EXPECT_EQ(out.vmId, 42);
    EXPECT_EQ(out.seq, 7u);
    EXPECT_EQ(out.issuedAt, 90 * kMinute);
    EXPECT_EQ(out.request.groupId, 42);
    EXPECT_EQ(out.request.cores, 8);
    EXPECT_EQ(out.request.desiredMHz, power::kOverclockMHz);
    EXPECT_EQ(out.request.trigger, TriggerKind::Schedule);
    EXPECT_EQ(out.request.duration, 10 * kMinute);
    EXPECT_EQ(out.request.priority, 2);
}

TEST(Wire, StopRequestRoundtrip)
{
    const auto f = encodeStopRequest(header(HintKind::StopRequest));
    ParsedHint out;
    ASSERT_EQ(parseFrame(f.data(), f.size, WireLimits{}, out),
              Reject::None);
    EXPECT_EQ(out.kind, HintKind::StopRequest);
    EXPECT_EQ(out.vmId, 42);
}

TEST(Wire, MetricsWindowRoundtrip)
{
    const auto f = encodeMetricsWindow(header(HintKind::MetricsWindow),
                                       goodMetrics());
    ParsedHint out;
    ASSERT_EQ(parseFrame(f.data(), f.size, WireLimits{}, out),
              Reject::None);
    EXPECT_DOUBLE_EQ(out.metrics.p99LatencyMs, 85.0);
    EXPECT_DOUBLE_EQ(out.metrics.meanLatencyMs, 30.0);
    EXPECT_DOUBLE_EQ(out.metrics.utilization, 0.75);
    EXPECT_EQ(out.metrics.completed, 12345u);
}

TEST(Wire, ScheduleDeclarationRoundtrip)
{
    ScheduleWindow w;
    w.dayMask = 0x7f;
    w.startMinute = 9 * 60;
    w.endMinute = 17 * 60;
    const auto f = encodeScheduleDeclaration(
        header(HintKind::ScheduleDeclaration), w);
    ParsedHint out;
    ASSERT_EQ(parseFrame(f.data(), f.size, WireLimits{}, out),
              Reject::None);
    EXPECT_EQ(out.window.dayMask, 0x7f);
    EXPECT_EQ(out.window.startMinute, 9 * 60);
    EXPECT_EQ(out.window.endMinute, 17 * 60);
}

TEST(Wire, ExhaustionSignalRoundtrip)
{
    ExhaustionSignal s;
    s.groupId = 42;
    s.kind = ExhaustionKind::OverclockBudget;
    s.eta = 10 * kMinute;
    const auto f =
        encodeExhaustionSignal(header(HintKind::ExhaustionSignal), s);
    ParsedHint out;
    ASSERT_EQ(parseFrame(f.data(), f.size, WireLimits{}, out),
              Reject::None);
    EXPECT_EQ(out.exhaustion.groupId, 42);
    EXPECT_EQ(out.exhaustion.kind, ExhaustionKind::OverclockBudget);
    EXPECT_EQ(out.exhaustion.eta, 10 * kMinute);
}

// ---------------------------------------------------------------
// Malformed-frame corpus: one corruption class per test, each
// attributed to its exact Reject reason, each provably mutating
// nothing (canary in parseExpectNoMutation).
// ---------------------------------------------------------------

TEST(Wire, RejectsTruncatedHeader)
{
    auto f = encodeStopRequest(header(HintKind::StopRequest));
    f.size = kHeaderBytes / 2;
    parseExpectNoMutation(f, Reject::Truncated);
}

TEST(Wire, RejectsTruncatedPayload)
{
    auto f = encodeMetricsWindow(header(HintKind::MetricsWindow),
                                 goodMetrics());
    f.size -= 4; // header intact, payload cut short
    parseExpectNoMutation(f, Reject::Truncated);
}

TEST(Wire, RejectsOversizedInput)
{
    Frame f;
    f.size = kMaxFrameBytes + 1; // longer than any legal frame
    parseExpectNoMutation(f, Reject::Truncated);
}

TEST(Wire, RejectsBadMagic)
{
    auto f = encodeStopRequest(header(HintKind::StopRequest));
    f.bytes[0] ^= 0xff;
    parseExpectNoMutation(f, Reject::BadMagic);
}

TEST(Wire, RejectsBadVersion)
{
    auto f = encodeStopRequest(header(HintKind::StopRequest));
    f.bytes[2] = 0x7e;
    parseExpectNoMutation(f, Reject::BadVersion);
}

TEST(Wire, RejectsUnknownTag)
{
    auto f = encodeStopRequest(header(HintKind::StopRequest));
    f.bytes[3] = 0xc8;
    parseExpectNoMutation(f, Reject::UnknownTag);
    f.bytes[3] = 0; // zero tag is just as unknown
    parseExpectNoMutation(f, Reject::UnknownTag);
}

TEST(Wire, RejectsLengthMismatch)
{
    auto f = encodeStopRequest(header(HintKind::StopRequest));
    putU16(f.bytes.data() + 4, 3); // claims payload a stop lacks
    f.size = kHeaderBytes + 3;
    parseExpectNoMutation(f, Reject::LengthMismatch);
}

TEST(Wire, RejectsNonFiniteMetrics)
{
    auto m = goodMetrics();
    m.p99LatencyMs = std::numeric_limits<double>::quiet_NaN();
    auto f =
        encodeMetricsWindow(header(HintKind::MetricsWindow), m);
    parseExpectNoMutation(f, Reject::NonFinite);

    m = goodMetrics();
    m.utilization = std::numeric_limits<double>::infinity();
    f = encodeMetricsWindow(header(HintKind::MetricsWindow), m);
    parseExpectNoMutation(f, Reject::NonFinite);
}

TEST(Wire, RejectsNegativeFields)
{
    auto m = goodMetrics();
    m.meanLatencyMs = -0.25;
    parseExpectNoMutation(
        encodeMetricsWindow(header(HintKind::MetricsWindow), m),
        Reject::Negative);

    auto r = goodRequest();
    r.cores = -5;
    parseExpectNoMutation(
        encodeOverclockRequest(header(HintKind::OverclockRequest), r),
        Reject::Negative);

    auto h = header(HintKind::StopRequest);
    h.vmId = -1;
    parseExpectNoMutation(encodeStopRequest(h), Reject::Negative);

    h = header(HintKind::StopRequest);
    h.issuedAt = -1;
    parseExpectNoMutation(encodeStopRequest(h), Reject::Negative);
}

TEST(Wire, RejectsOutOfRangeFields)
{
    // Lying frequency claim: 99999 MHz is finite and positive but
    // outside [turbo, overclock].
    auto r = goodRequest();
    r.desiredMHz = power::FreqMHz{99999};
    parseExpectNoMutation(
        encodeOverclockRequest(header(HintKind::OverclockRequest), r),
        Reject::OutOfRange);

    r = goodRequest();
    r.cores = WireLimits{}.maxCores + 1;
    parseExpectNoMutation(
        encodeOverclockRequest(header(HintKind::OverclockRequest), r),
        Reject::OutOfRange);

    r = goodRequest();
    r.duration = 0;
    parseExpectNoMutation(
        encodeOverclockRequest(header(HintKind::OverclockRequest), r),
        Reject::OutOfRange);

    // Lying utilization: 250% busy.
    auto m = goodMetrics();
    m.utilization = 2.5;
    parseExpectNoMutation(
        encodeMetricsWindow(header(HintKind::MetricsWindow), m),
        Reject::OutOfRange);

    auto h = header(HintKind::StopRequest);
    h.vmId = WireLimits{}.maxVmId + 1;
    parseExpectNoMutation(encodeStopRequest(h), Reject::OutOfRange);

    // Inverted schedule window.
    ScheduleWindow w;
    w.dayMask = 0x1f;
    w.startMinute = 600;
    w.endMinute = 540;
    parseExpectNoMutation(
        encodeScheduleDeclaration(
            header(HintKind::ScheduleDeclaration), w),
        Reject::OutOfRange);
}

TEST(Wire, EveryRejectReasonHasAName)
{
    for (std::size_t i = 0; i < kRejectReasons; ++i) {
        const auto name = rejectName(static_cast<Reject>(i));
        EXPECT_NE(name, nullptr);
        EXPECT_STRNE(name, "invalid");
    }
}
