/** @file Unit and property tests for profile templates (Fig. 15). */

#include <gtest/gtest.h>

#include "core/profile_template.hh"
#include "workload/trace_generator.hh"

using namespace soc;
using namespace soc::core;
using telemetry::TimeSeries;
using sim::kSlot;
using sim::kDay;
using sim::kWeek;

namespace
{

/** Two weeks of telemetry: weekdays at `hi` 9am-5pm else `lo`;
 *  weekends flat at `weekend`. */
TimeSeries
syntheticHistory(double lo, double hi, double weekend)
{
    TimeSeries s(0, kSlot);
    for (sim::Tick t = 0; t < 2 * kWeek; t += kSlot) {
        if (sim::isWeekend(t)) {
            s.append(weekend);
        } else {
            const double h = sim::hourOfDay(t);
            s.append(h >= 9.0 && h < 17.0 ? hi : lo);
        }
    }
    return s;
}

} // namespace

TEST(ProfileTemplate, FlatMedPredictsMedian)
{
    TimeSeries s(0, kSlot, {1.0, 2.0, 3.0, 4.0, 100.0});
    const auto tmpl = ProfileTemplate::build(
        TemplateStrategy::FlatMed, s);
    EXPECT_EQ(tmpl.predict(0), 3.0);
    EXPECT_EQ(tmpl.predict(5 * kWeek), 3.0);
}

TEST(ProfileTemplate, FlatMaxPredictsMax)
{
    TimeSeries s(0, kSlot, {1.0, 2.0, 100.0, 4.0});
    const auto tmpl = ProfileTemplate::build(
        TemplateStrategy::FlatMax, s);
    EXPECT_EQ(tmpl.predict(12345678), 100.0);
}

TEST(ProfileTemplate, DailyMedCapturesTimeOfDayStructure)
{
    const auto history = syntheticHistory(100.0, 300.0, 50.0);
    const auto tmpl = ProfileTemplate::build(
        TemplateStrategy::DailyMed, history);
    // Weekday predictions in week 3 (outside history).
    const sim::Tick monday = 2 * kWeek;
    EXPECT_NEAR(tmpl.predict(monday + 12 * sim::kHour), 300.0, 1e-9);
    EXPECT_NEAR(tmpl.predict(monday + 3 * sim::kHour), 100.0, 1e-9);
    // Weekend predictions use the weekend template.
    EXPECT_NEAR(tmpl.predict(monday + 5 * kDay + 12 * sim::kHour),
                50.0, 1e-9);
}

TEST(ProfileTemplate, DailyMedRobustToSingleOutlierDay)
{
    auto history = syntheticHistory(100.0, 300.0, 50.0);
    // Corrupt one whole weekday (say Wednesday of week 1) with a
    // holiday-like collapse.
    for (sim::Tick t = 2 * kDay; t < 3 * kDay; t += kSlot)
        history.set(history.indexOf(t), 10.0);
    const auto tmpl = ProfileTemplate::build(
        TemplateStrategy::DailyMed, history);
    // Median across 10 weekdays ignores the single bad day.
    EXPECT_NEAR(tmpl.predict(2 * kWeek + 12 * sim::kHour), 300.0,
                1e-9);
}

TEST(ProfileTemplate, DailyMaxIsConservative)
{
    const auto history = syntheticHistory(100.0, 300.0, 50.0);
    const auto med = ProfileTemplate::build(
        TemplateStrategy::DailyMed, history);
    const auto max = ProfileTemplate::build(
        TemplateStrategy::DailyMax, history);
    for (sim::Tick t = 0; t < kDay; t += sim::kHour) {
        EXPECT_GE(max.predict(t), med.predict(t));
    }
}

TEST(ProfileTemplate, WeeklyReplaysLastWeek)
{
    TimeSeries history(0, kSlot);
    // Week 1: constant 100.  Week 2: constant 200.
    for (sim::Tick t = 0; t < kWeek; t += kSlot)
        history.append(100.0);
    for (sim::Tick t = 0; t < kWeek; t += kSlot)
        history.append(200.0);
    const auto tmpl = ProfileTemplate::build(
        TemplateStrategy::Weekly, history);
    // The most recent week's value wins for every slot.
    EXPECT_EQ(tmpl.predict(2 * kWeek + 3 * kDay), 200.0);
}

TEST(ProfileTemplate, EmptyHistoryPredictsZero)
{
    TimeSeries empty(0, kSlot);
    for (auto strategy :
         {TemplateStrategy::FlatMed, TemplateStrategy::FlatMax,
          TemplateStrategy::Weekly, TemplateStrategy::DailyMed,
          TemplateStrategy::DailyMax}) {
        const auto tmpl = ProfileTemplate::build(strategy, empty);
        EXPECT_EQ(tmpl.predict(kDay), 0.0);
    }
}

TEST(ProfileTemplate, FlatAndFromWeeklyConstructors)
{
    const auto flat = ProfileTemplate::flat(42.0);
    EXPECT_EQ(flat.predict(0), 42.0);
    EXPECT_EQ(flat.predict(9 * kWeek), 42.0);

    std::vector<double> weekly(sim::kSlotsPerWeek, 1.0);
    weekly[10] = 99.0;
    const auto tmpl = ProfileTemplate::fromWeekly(std::move(weekly));
    EXPECT_EQ(tmpl.predict(10 * kSlot), 99.0);
    EXPECT_EQ(tmpl.predict(kWeek + 10 * kSlot), 99.0);
    EXPECT_EQ(tmpl.predict(11 * kSlot), 1.0);
}

TEST(ProfileTemplate, PeakReflectsLargestPrediction)
{
    const auto history = syntheticHistory(100.0, 300.0, 50.0);
    const auto tmpl = ProfileTemplate::build(
        TemplateStrategy::DailyMed, history);
    EXPECT_NEAR(tmpl.peak(), 300.0, 1e-9);
}

TEST(ProfileTemplate, RmseZeroForPerfectlyPeriodicSignal)
{
    const auto history = syntheticHistory(100.0, 300.0, 50.0);
    const auto tmpl = ProfileTemplate::build(
        TemplateStrategy::DailyMed, history);
    EXPECT_NEAR(tmpl.rmseAgainst(history), 0.0, 1e-9);
}

TEST(ProfileTemplate, BiasSignConventions)
{
    TimeSeries actual(0, kSlot, std::vector<double>(288, 100.0));
    const auto over = ProfileTemplate::flat(150.0);
    const auto under = ProfileTemplate::flat(60.0);
    EXPECT_GT(over.biasAgainst(actual), 0.0);
    EXPECT_LT(under.biasAgainst(actual), 0.0);
}

/**
 * Property (Fig. 15's headline): on realistic traces, DailyMed beats
 * FlatMed, FlatMax and Weekly in RMSE on the following week.
 */
class StrategyAccuracy : public ::testing::TestWithParam<int>
{
};

TEST_P(StrategyAccuracy, DailyMedWins)
{
    workload::TraceConfig cfg;
    cfg.end = 3 * kWeek;
    workload::TraceGenerator gen(500 + GetParam(), cfg);
    const power::PowerModel model;
    const auto trace = gen.serverTrace(gen.randomVmMix(64), model);
    const auto history = trace.powerWatts.slice(0, 2 * kWeek);
    const auto future =
        trace.powerWatts.slice(2 * kWeek, 3 * kWeek);

    auto rmse_of = [&](TemplateStrategy strategy) {
        return ProfileTemplate::build(strategy, history)
            .rmseAgainst(future);
    };
    const double daily_med = rmse_of(TemplateStrategy::DailyMed);
    EXPECT_LT(daily_med, rmse_of(TemplateStrategy::FlatMed));
    EXPECT_LT(daily_med, rmse_of(TemplateStrategy::FlatMax));
    EXPECT_LT(daily_med,
              rmse_of(TemplateStrategy::Weekly) + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, StrategyAccuracy,
                         ::testing::Range(0, 6));

TEST(ProfileTemplate, StrategyNames)
{
    EXPECT_EQ(strategyName(TemplateStrategy::DailyMed), "DailyMed");
    EXPECT_EQ(strategyName(TemplateStrategy::FlatMax), "FlatMax");
}
