/** @file Unit and calibration tests for the lifetime/aging module. */

#include <gtest/gtest.h>

#include "core/lifetime.hh"

using namespace soc;
using namespace soc::core;
using sim::kDay;
using sim::kHour;
using sim::kWeek;
using sim::Tick;

namespace
{

const power::PowerModel &
model()
{
    static const power::PowerModel instance;
    return instance;
}

} // namespace

TEST(LifetimeModel, RatedAnchorAtFullTurboUtilization)
{
    const LifetimeModel lm(model());
    EXPECT_NEAR(lm.agingRate(1.0, power::kTurboMHz), 1.0, 1e-9);
}

TEST(LifetimeModel, UnderUtilizationAccruesCredits)
{
    // §III-Q2: conservative fleet usage ages ~2.5y over 5y, i.e.
    // the rate sits around 0.5 at moderate utilization.
    const LifetimeModel lm(model());
    const double fleet = lm.agingRate(0.55, power::kTurboMHz);
    EXPECT_GT(fleet, 0.3);
    EXPECT_LT(fleet, 0.7);
}

TEST(LifetimeModel, OverclockAcceleratesWearSuperlinearly)
{
    const LifetimeModel lm(model());
    const double turbo = lm.agingRate(0.5, power::kTurboMHz);
    const double oc = lm.agingRate(0.5, power::kOverclockMHz);
    EXPECT_GT(oc / turbo, 4.0); // exponential voltage acceleration
}

TEST(LifetimeModel, Fig7AlwaysOverclockAnchor)
{
    // Fig. 7: at diurnal utilization (~0.35 mean), always-overclock
    // ages the part by "over 10 days" in a 5-day window (>2x), while
    // the non-overclocked baseline ages "less than 2 days" (<0.4x).
    const LifetimeModel lm(model());
    const double base = lm.agingRate(0.35, power::kTurboMHz);
    const double oc = lm.agingRate(0.35, power::kOverclockMHz);
    EXPECT_LT(base, 0.4);
    EXPECT_GT(oc, 2.0);
}

TEST(LifetimeModel, AgingRateMonotoneInUtilAndFreq)
{
    const LifetimeModel lm(model());
    EXPECT_LT(lm.agingRate(0.2, power::kTurboMHz),
              lm.agingRate(0.9, power::kTurboMHz));
    EXPECT_LT(lm.agingRate(0.5, power::kTurboMHz),
              lm.agingRate(0.5, power::FreqMHz{3600}));
    EXPECT_LT(lm.agingRate(0.5, power::FreqMHz{3600}),
              lm.agingRate(0.5, power::kOverclockMHz));
}

TEST(LifetimeModel, IdleCoresStillAgeALittle)
{
    const LifetimeModel lm(model());
    EXPECT_GT(lm.agingRate(0.0, power::kTurboMHz), 0.0);
}

TEST(LifetimeModel, AgingOverIntegratesRate)
{
    const LifetimeModel lm(model());
    const double rate = lm.agingRate(0.5, power::kTurboMHz);
    EXPECT_NEAR(lm.agingOver(kDay, 0.5, power::kTurboMHz),
                rate * kDay, 1e-3);
}

TEST(LifetimeModel, MaxOverclockDutySolvesBudget)
{
    const LifetimeModel lm(model());
    const double util = 0.35;
    const double duty =
        lm.maxOverclockDuty(util, power::kOverclockMHz, 1.0);
    ASSERT_GT(duty, 0.0);
    ASSERT_LT(duty, 1.0);
    // Verify the blended rate actually meets the budget.
    const double base = lm.agingRate(util, power::kTurboMHz);
    const double oc = lm.agingRate(util, power::kOverclockMHz);
    EXPECT_NEAR(duty * oc + (1.0 - duty) * base, 1.0, 1e-9);
    // Fig. 7's overclock-aware policy lands around 25% duty.
    EXPECT_GT(duty, 0.10);
    EXPECT_LT(duty, 0.45);
}

TEST(LifetimeModel, DutyIsOneWhenBoostIsFree)
{
    const LifetimeModel lm(model());
    // Overclocking to turbo itself costs nothing extra.
    EXPECT_EQ(lm.maxOverclockDuty(0.5, power::kTurboMHz, 10.0), 1.0);
}

TEST(OverclockBudget, AllowanceComputation)
{
    OverclockBudget budget(kWeek, 0.10, 64);
    EXPECT_EQ(budget.allowancePerEpoch(),
              static_cast<Tick>(0.10 * kWeek) * 64);
    EXPECT_EQ(budget.remaining(0), budget.allowancePerEpoch());
}

TEST(OverclockBudget, ConsumeReducesRemaining)
{
    OverclockBudget budget(kWeek, 0.10, 64);
    const Tick before = budget.remaining(0);
    budget.consume(1000 * sim::kSecond, 0);
    EXPECT_EQ(budget.remaining(0), before - 1000 * sim::kSecond);
    EXPECT_EQ(budget.totalConsumed(), 1000 * sim::kSecond);
}

TEST(OverclockBudget, ClampsAtZeroAndTracksOverdraft)
{
    OverclockBudget budget(kDay, 0.01, 1);
    budget.consume(kDay, 0); // way beyond the 1% allowance
    EXPECT_EQ(budget.remaining(0), 0);
    EXPECT_GT(budget.overdraft(), 0);
}

TEST(OverclockBudget, ReservationBlocksAndReleases)
{
    OverclockBudget budget(kWeek, 0.10, 4);
    const Tick all = budget.remaining(0);
    EXPECT_TRUE(budget.tryReserve(all, 0));
    EXPECT_EQ(budget.remaining(0), 0);
    EXPECT_FALSE(budget.tryReserve(1, 0));
    budget.release(all / 2, 0);
    EXPECT_EQ(budget.remaining(0), all / 2);
}

TEST(OverclockBudget, EpochRollRestoresAllowance)
{
    OverclockBudget budget(kDay, 0.10, 1, /*carryover_cap=*/0.0);
    budget.consume(budget.remaining(0), 0);
    EXPECT_EQ(budget.remaining(0), 0);
    EXPECT_EQ(budget.remaining(kDay + 1), budget.allowancePerEpoch());
}

TEST(OverclockBudget, UnusedBudgetCarriesOverCapped)
{
    OverclockBudget budget(kDay, 0.10, 1, /*carryover_cap=*/1.0);
    // Consume nothing in epoch 0; epoch 1 gets allowance + carry.
    EXPECT_EQ(budget.remaining(kDay + 1),
              2 * budget.allowancePerEpoch());
    // Carry is capped: epoch 2 cannot triple.
    EXPECT_EQ(budget.remaining(2 * kDay + 1),
              2 * budget.allowancePerEpoch());
}

TEST(OverclockBudget, ReservationsDoNotSurviveEpochs)
{
    OverclockBudget budget(kDay, 0.10, 1, 0.0);
    ASSERT_TRUE(budget.tryReserve(budget.remaining(0), 0));
    EXPECT_EQ(budget.reserved(kDay + 1), 0);
}

TEST(OverclockBudget, TimeToExhaustion)
{
    OverclockBudget budget(kWeek, 0.10, 10);
    const Tick remaining = budget.remaining(0);
    EXPECT_EQ(budget.timeToExhaustion(0, 10.0), remaining / 10);
    EXPECT_GT(budget.timeToExhaustion(0, 0.0),
              Tick{1} << 60); // effectively never
}

TEST(TimeInState, TracksPerCoreOverclockedTime)
{
    TimeInState tis(4);
    EXPECT_EQ(tis.cores(), 4);
    tis.startOverclock(0, 100);
    EXPECT_TRUE(tis.overclocked(0));
    EXPECT_EQ(tis.overclockedCores(), 1);
    EXPECT_EQ(tis.overclockedTime(0, 600), 500);
    tis.stopOverclock(0, 600);
    EXPECT_FALSE(tis.overclocked(0));
    EXPECT_EQ(tis.overclockedTime(0, 9999), 500);
}

TEST(TimeInState, AccumulatesAcrossEpisodes)
{
    TimeInState tis(2);
    tis.startOverclock(1, 0);
    tis.stopOverclock(1, 100);
    tis.startOverclock(1, 200);
    tis.stopOverclock(1, 350);
    EXPECT_EQ(tis.overclockedTime(1, 1000), 250);
    EXPECT_EQ(tis.totalOverclockedTime(1000), 250);
}

TEST(TimeInState, DoubleStartAndStopAreIdempotent)
{
    TimeInState tis(1);
    tis.startOverclock(0, 0);
    tis.startOverclock(0, 50); // ignored
    tis.stopOverclock(0, 100);
    tis.stopOverclock(0, 200); // ignored
    EXPECT_EQ(tis.overclockedTime(0, 500), 100);
}

/** Property sweep: duty solution is monotone in the budget rate. */
class DutyProperty : public ::testing::TestWithParam<double>
{
};

TEST_P(DutyProperty, MonotoneInBudget)
{
    const LifetimeModel lm(model());
    const double util = GetParam();
    double prev = -1.0;
    for (double budget = 0.2; budget <= 2.0; budget += 0.3) {
        const double duty = lm.maxOverclockDuty(
            util, power::kOverclockMHz, budget);
        EXPECT_GE(duty, prev);
        prev = duty;
    }
}

INSTANTIATE_TEST_SUITE_P(Utils, DutyProperty,
                         ::testing::Values(0.1, 0.3, 0.5, 0.7, 0.9));
