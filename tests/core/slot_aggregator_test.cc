/**
 * @file
 * SlotAggregator correctness: the incremental aggregator must be a
 * bit-identical replacement for the batch ProfileTemplate::build on
 * the same sample stream, for every strategy, under any history
 * shape (random, mid-week start, sub-day, empty) and under window
 * eviction.
 */

#include <gtest/gtest.h>

#include <limits>
#include <random>
#include <stdexcept>
#include <vector>

#include "core/profile_template.hh"
#include "core/slot_aggregator.hh"
#include "telemetry/time_series.hh"

using namespace soc;
using namespace soc::core;
using telemetry::TimeSeries;
using sim::kSlot;
using sim::kDay;
using sim::kWeek;

namespace
{

constexpr TemplateStrategy kAllStrategies[] = {
    TemplateStrategy::FlatMed,  TemplateStrategy::FlatMax,
    TemplateStrategy::Weekly,   TemplateStrategy::DailyMed,
    TemplateStrategy::DailyMax,
};

/** Random-walk history of @p slots samples starting at @p start. */
TimeSeries
randomHistory(std::uint64_t seed, sim::Tick start, int slots)
{
    std::mt19937_64 rng(seed);
    std::uniform_real_distribution<double> step(-8.0, 8.0);
    TimeSeries s(start, kSlot);
    double level = 200.0;
    for (int i = 0; i < slots; ++i) {
        level += step(rng);
        s.append(level);
    }
    return s;
}

/** Feed @p history into a fresh aggregator sample by sample. */
SlotAggregator
aggregate(const TimeSeries &history, sim::Tick window = 0)
{
    SlotAggregator agg(window);
    for (std::size_t i = 0; i < history.size(); ++i)
        agg.add(history.timeOf(i), history.at(i));
    return agg;
}

void
expectMatchesBatch(const SlotAggregator &agg,
                   const TimeSeries &history)
{
    for (auto strategy : kAllStrategies) {
        EXPECT_TRUE(agg.build(strategy) ==
                    ProfileTemplate::build(strategy, history))
            << "strategy " << strategyName(strategy) << " at "
            << history.size() << " samples from tick "
            << history.start();
    }
}

} // namespace

TEST(SlotAggregator, EmptyMatchesBatch)
{
    const SlotAggregator agg;
    EXPECT_TRUE(agg.empty());
    expectMatchesBatch(agg, TimeSeries(0, kSlot));
}

TEST(SlotAggregator, SingleSampleMatchesBatch)
{
    const TimeSeries history(0, kSlot, {123.5});
    expectMatchesBatch(aggregate(history), history);
}

TEST(SlotAggregator, SubDayHistoryLeavesBucketsEmpty)
{
    // Half a day of weekday samples: most weekday buckets and every
    // weekend bucket are empty, exercising both fallbacks.
    const auto history = randomHistory(11, 0, sim::kSlotsPerDay / 2);
    expectMatchesBatch(aggregate(history), history);
}

TEST(SlotAggregator, WeekendOnlyHistory)
{
    // Tick 0 is Monday, so 5*kDay starts Saturday: weekday buckets
    // all empty, the weekend fallback chain must still match.
    const auto history =
        randomHistory(12, 5 * kDay, sim::kSlotsPerDay);
    expectMatchesBatch(aggregate(history), history);
}

TEST(SlotAggregator, MidWeekStartCrossingWeekend)
{
    // Saturday start, 1.5 days: weekend samples then Monday
    // morning.
    const auto history =
        randomHistory(13, 5 * kDay + 7 * kSlot,
                      sim::kSlotsPerDay + sim::kSlotsPerDay / 2);
    expectMatchesBatch(aggregate(history), history);
}

TEST(SlotAggregator, RandomHistoriesBitIdenticalAtEveryPrefix)
{
    for (std::uint64_t seed : {1u, 2u, 3u}) {
        const auto history =
            randomHistory(seed, 0, 2 * sim::kSlotsPerWeek + 3);
        SlotAggregator agg;
        TimeSeries prefix(0, kSlot);
        for (std::size_t i = 0; i < history.size(); ++i) {
            agg.add(history.timeOf(i), history.at(i));
            prefix.append(history.at(i));
            // Checking all 5 strategies at every slot is O(weeks^2);
            // a stride plus the exact end keeps the test fast while
            // still crossing day and week boundaries mid-stream.
            if (i % 97 == 0 || i + 1 == history.size())
                expectMatchesBatch(agg, prefix);
        }
    }
}

TEST(SlotAggregator, IndexModeSwitchBitIdenticalAcrossThreshold)
{
    // Long unbounded histories flip the aggregator from the ring
    // representation to incremental index maintenance at
    // kIndexThreshold retained samples.  The switch must be
    // invisible: bit-identical templates right before, at, and well
    // after the crossing.
    const auto threshold =
        static_cast<int>(SlotAggregator::kIndexThreshold);
    const auto history = randomHistory(41, 0, threshold + 640);
    SlotAggregator agg;
    TimeSeries prefix(0, kSlot);
    for (std::size_t i = 0; i < history.size(); ++i) {
        agg.add(history.timeOf(i), history.at(i));
        prefix.append(history.at(i));
        const auto n = static_cast<int>(i) + 1;
        if (n == threshold - 1 || n == threshold ||
            n == threshold + 1 || n == threshold + 389 ||
            i + 1 == history.size())
            expectMatchesBatch(agg, prefix);
    }
}

TEST(SlotAggregator, IndexedWindowEvictionMatchesSlicedBatch)
{
    // A window wider than kIndexThreshold slots forces indexed-mode
    // *eviction* (bag erase + weekly-latest invalidation), which the
    // ring-mode eviction tests never reach.
    const sim::Tick window = 4 * kWeek;
    const auto history =
        randomHistory(43, 0, 4 * sim::kSlotsPerWeek + 500);
    SlotAggregator agg(window);
    TimeSeries prefix(0, kSlot);
    for (std::size_t i = 0; i < history.size(); ++i) {
        agg.add(history.timeOf(i), history.at(i));
        prefix.append(history.at(i));
        if (i % 509 == 0 || i + 1 == history.size()) {
            const auto windowed =
                prefix.slice(prefix.end() - window, prefix.end());
            expectMatchesBatch(agg, windowed);
            EXPECT_EQ(agg.sampleCount(), windowed.size());
        }
    }
}

TEST(SlotAggregator, VersionAndCacheBehavior)
{
    const auto history = randomHistory(21, 0, 3 * sim::kSlotsPerDay);
    auto agg = aggregate(history);
    const auto v = agg.version();

    EXPECT_EQ(agg.rebuildCount(), 0u);
    (void)agg.build(TemplateStrategy::DailyMed);
    EXPECT_EQ(agg.rebuildCount(), 1u);

    // Same strategy, no new samples: cached, no rebuild.
    (void)agg.build(TemplateStrategy::DailyMed);
    (void)agg.build(TemplateStrategy::DailyMed);
    EXPECT_EQ(agg.rebuildCount(), 1u);
    EXPECT_EQ(agg.version(), v);

    // A different strategy has its own cache slot.
    (void)agg.build(TemplateStrategy::FlatMax);
    EXPECT_EQ(agg.rebuildCount(), 2u);
    (void)agg.build(TemplateStrategy::FlatMax);
    (void)agg.build(TemplateStrategy::DailyMed);
    EXPECT_EQ(agg.rebuildCount(), 2u);

    // New sample bumps the version and invalidates both.
    agg.add(history.end(), 250.0);
    EXPECT_GT(agg.version(), v);
    (void)agg.build(TemplateStrategy::DailyMed);
    (void)agg.build(TemplateStrategy::FlatMax);
    EXPECT_EQ(agg.rebuildCount(), 4u);
}

TEST(SlotAggregator, WindowEvictionMatchesSlicedBatch)
{
    for (sim::Tick window : {kDay, kWeek}) {
        const auto history =
            randomHistory(31, 0, 3 * sim::kSlotsPerWeek);
        SlotAggregator agg(window);
        TimeSeries prefix(0, kSlot);
        for (std::size_t i = 0; i < history.size(); ++i) {
            agg.add(history.timeOf(i), history.at(i));
            prefix.append(history.at(i));
            if (i % 131 != 0 && i + 1 != history.size())
                continue;
            const auto windowed =
                prefix.slice(prefix.end() - window, prefix.end());
            expectMatchesBatch(agg, windowed);
            EXPECT_EQ(agg.sampleCount(), windowed.size());
        }
    }
}

TEST(SlotAggregator, ClearResetsToEmpty)
{
    auto agg = aggregate(randomHistory(41, 0, 100));
    (void)agg.build(TemplateStrategy::Weekly);
    agg.clear();
    EXPECT_TRUE(agg.empty());
    EXPECT_EQ(agg.sampleCount(), 0u);
    expectMatchesBatch(agg, TimeSeries(0, kSlot));
    // Refilling after clear behaves like a fresh aggregator.
    const auto history = randomHistory(42, 0, sim::kSlotsPerDay);
    for (std::size_t i = 0; i < history.size(); ++i)
        agg.add(history.timeOf(i), history.at(i));
    expectMatchesBatch(agg, history);
}

TEST(SlotAggregator, RejectsNonFiniteSamplesAtIngestion)
{
    // A NaN admitted into a SortedBag breaks the upper_bound /
    // lower_bound ordering invariant and silently corrupts medians;
    // the aggregator must refuse it up front and stay untouched.
    const auto history = randomHistory(77, 0, 64);
    auto agg = aggregate(history);
    const std::uint64_t version = agg.version();
    const sim::Tick next = history.end();

    const double bad[] = {
        std::numeric_limits<double>::quiet_NaN(),
        std::numeric_limits<double>::signaling_NaN(),
        std::numeric_limits<double>::infinity(),
        -std::numeric_limits<double>::infinity(),
    };
    for (double v : bad)
        EXPECT_THROW(agg.add(next, v), std::invalid_argument);

    // No partial mutation: same version, same sample count, and
    // every template still matches the batch builder over the
    // samples that were actually accepted.
    EXPECT_EQ(agg.version(), version);
    EXPECT_EQ(agg.sampleCount(), history.size());
    expectMatchesBatch(agg, history);

    // The rejected tick was never recorded, so the slot is still
    // free for a finite retry.
    agg.add(next, 250.0);
    EXPECT_EQ(agg.sampleCount(), history.size() + 1);
}

TEST(ProfileTemplateEquality, DetectsEveryFieldDifference)
{
    const auto history = randomHistory(51, 0, sim::kSlotsPerDay * 9);
    for (auto strategy : kAllStrategies) {
        const auto a = ProfileTemplate::build(strategy, history);
        const auto b = ProfileTemplate::build(strategy, history);
        EXPECT_TRUE(a == b);
    }
    const auto med =
        ProfileTemplate::build(TemplateStrategy::FlatMed, history);
    const auto max =
        ProfileTemplate::build(TemplateStrategy::FlatMax, history);
    EXPECT_TRUE(med != max);
    EXPECT_TRUE(ProfileTemplate::flat(1.0) !=
                ProfileTemplate::flat(2.0));
}
