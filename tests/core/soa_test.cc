/** @file Behavioural tests for the Server Overclocking Agent. */

#include <gtest/gtest.h>

#include "core/soa.hh"

using namespace soc;
using namespace soc::core;
using sim::kMinute;
using sim::kSecond;
using sim::Tick;

namespace
{

const power::PowerModel &
model()
{
    static const power::PowerModel instance;
    return instance;
}

struct Fixture {
    power::Rack rack{0, power::Watts{2000.0}};
    power::Server *server;
    std::unique_ptr<ServerOverclockingAgent> soa;
    power::GroupId vm;

    explicit Fixture(SoaConfig cfg = {}, double util = 0.6)
    {
        server = &rack.addServer(&model());
        vm = server->addGroup(8, util, power::kTurboMHz, 1);
        soa = std::make_unique<ServerOverclockingAgent>(
            *server, cfg, &rack);
    }

    OverclockRequest
    makeRequest(Tick duration = 20 * kMinute) const
    {
        OverclockRequest r;
        r.groupId = vm;
        r.cores = 8;
        r.desiredMHz = power::kOverclockMHz;
        r.trigger = TriggerKind::Metrics;
        r.duration = duration;
        r.priority = 1;
        return r;
    }

    /** Run control ticks from `from` to `to`. */
    void
    run(Tick from, Tick to, Tick step = 5 * kSecond)
    {
        for (Tick t = from; t <= to; t += step)
            soa->tick(t);
    }
};

} // namespace

TEST(Soa, GrantsAndRampsToDesiredFrequency)
{
    Fixture fx;
    fx.soa->assignBudget(ProfileTemplate::flat(600.0));
    const auto decision =
        fx.soa->requestOverclock(fx.makeRequest(), 0);
    ASSERT_TRUE(decision.granted);
    EXPECT_TRUE(fx.soa->isOverclockActive(fx.vm));

    fx.run(0, 2 * kMinute);
    EXPECT_EQ(fx.server->group(fx.vm)->effectiveMHz(),
              power::kOverclockMHz);
}

TEST(Soa, FeedbackHoldsWithinBudget)
{
    SoaConfig no_explore;
    no_explore.exploreEnabled = false; // isolate the feedback loop
    Fixture fx(no_explore, /*util=*/0.9);
    // Budget admits the worst-case surcharge (so the request is
    // granted) but the actual ramp at util=0.9 draws more than the
    // 0.75-util estimate, so the feedback loop must stop short of
    // both the budget and the full 4.0 GHz target.
    const power::Watts draw = fx.server->powerWatts();
    const power::Watts surcharge = model().overclockExtraPower(
        0.75, power::kOverclockMHz, 8);
    const power::Watts budget = draw + surcharge + power::Watts{1.0};
    fx.soa->assignBudget(ProfileTemplate::flat(budget.count()));
    ASSERT_TRUE(fx.soa->requestOverclock(fx.makeRequest(), 0)
                    .granted);
    fx.run(0, 2 * kMinute);
    EXPECT_LE(fx.server->powerWatts(),
              budget + power::Watts{1e-9});
    const auto eff = fx.server->group(fx.vm)->effectiveMHz();
    EXPECT_LT(eff, power::kOverclockMHz);
    EXPECT_GT(eff, power::kTurboMHz);
}

TEST(Soa, StopRestoresTurbo)
{
    Fixture fx;
    fx.soa->assignBudget(ProfileTemplate::flat(800.0));
    fx.soa->requestOverclock(fx.makeRequest(), 0);
    fx.run(0, kMinute);
    fx.soa->stopOverclock(fx.vm, kMinute);
    EXPECT_FALSE(fx.soa->isOverclockActive(fx.vm));
    EXPECT_EQ(fx.server->group(fx.vm)->targetMHz, power::kTurboMHz);
}

TEST(Soa, RejectsWhenBudgetTooSmall)
{
    Fixture fx(SoaConfig{}, 0.9);
    fx.soa->assignBudget(ProfileTemplate::flat(
        fx.server->powerWatts().count() + 1.0));
    const auto decision =
        fx.soa->requestOverclock(fx.makeRequest(), 0);
    EXPECT_FALSE(decision.granted);
    EXPECT_EQ(fx.soa->stats().rejects, 1u);
}

TEST(Soa, ReRequestExtendsGrant)
{
    Fixture fx;
    fx.soa->assignBudget(ProfileTemplate::flat(800.0));
    const auto first =
        fx.soa->requestOverclock(fx.makeRequest(10 * kMinute), 0);
    const auto second = fx.soa->requestOverclock(
        fx.makeRequest(30 * kMinute), 5 * kMinute);
    EXPECT_TRUE(second.granted);
    EXPECT_EQ(second.reason, "extended");
    EXPECT_GT(second.grantedUntil, first.grantedUntil);
}

TEST(Soa, GrantExpiresNaturally)
{
    Fixture fx;
    fx.soa->assignBudget(ProfileTemplate::flat(800.0));
    fx.soa->requestOverclock(fx.makeRequest(2 * kMinute), 0);
    fx.run(0, 3 * kMinute);
    EXPECT_FALSE(fx.soa->isOverclockActive(fx.vm));
}

TEST(Soa, ExplorationRaisesBonusWhenDeniedForPower)
{
    SoaConfig cfg;
    cfg.warningWindow = 10 * kSecond;
    Fixture fx(cfg, 0.9);
    const double draw = fx.server->powerWatts().count();
    fx.soa->assignBudget(ProfileTemplate::flat(draw + 1.0));
    ASSERT_FALSE(
        fx.soa->requestOverclock(fx.makeRequest(), 0).granted);
    fx.run(0, kMinute);
    EXPECT_GT(fx.soa->explorationBonus(), power::Watts{0.0});
    EXPECT_GT(fx.soa->stats().explorationsStarted, 0u);
    // With the bonus grown, a retry is eventually admitted.
    Tick t = kMinute;
    bool granted = false;
    while (t < 20 * kMinute && !granted) {
        granted =
            fx.soa->requestOverclock(fx.makeRequest(), t).granted;
        fx.soa->tick(t);
        t += 5 * kSecond;
    }
    EXPECT_TRUE(granted);
}

TEST(Soa, WarningWhileExploringBacksOff)
{
    SoaConfig cfg;
    cfg.warningWindow = 10 * kSecond;
    Fixture fx(cfg, 0.9);
    const double draw = fx.server->powerWatts().count();
    fx.soa->assignBudget(ProfileTemplate::flat(draw + 1.0));
    // A 32-core ask needs ~120 W of bonus: the agent is still mid-
    // exploration (bonus ~80 W) when the warning arrives at t=35s.
    auto req = fx.makeRequest();
    req.cores = 32;
    for (Tick t = 0; t <= 35 * kSecond; t += 5 * kSecond) {
        if (!fx.soa->isOverclockActive(fx.vm))
            fx.soa->requestOverclock(req, t);
        fx.soa->tick(t);
    }
    ASSERT_GT(fx.soa->explorationBonus(), power::Watts{0.0});
    const power::Watts bonus = fx.soa->explorationBonus();
    fx.soa->onWarning(35 * kSecond);
    EXPECT_LT(fx.soa->explorationBonus(), bonus);
    EXPECT_EQ(fx.soa->stats().warningsHeeded, 1u);
}

TEST(Soa, NoWarningPolicyIgnoresWarnings)
{
    SoaConfig cfg = SoaConfig::forPolicy(PolicyKind::NoWarning);
    cfg.warningWindow = 10 * kSecond;
    Fixture fx(cfg, 0.9);
    const double draw = fx.server->powerWatts().count();
    fx.soa->assignBudget(ProfileTemplate::flat(draw + 1.0));
    fx.soa->requestOverclock(fx.makeRequest(), 0);
    fx.run(0, 30 * kSecond);
    const power::Watts bonus = fx.soa->explorationBonus();
    ASSERT_GT(bonus, power::Watts{0.0});
    fx.soa->onWarning(30 * kSecond);
    EXPECT_EQ(fx.soa->explorationBonus(), bonus);
    EXPECT_EQ(fx.soa->stats().warningsHeeded, 0u);
}

TEST(Soa, CapEventResetsBonus)
{
    SoaConfig cfg;
    cfg.warningWindow = 10 * kSecond;
    Fixture fx(cfg, 0.9);
    const double draw = fx.server->powerWatts().count();
    fx.soa->assignBudget(ProfileTemplate::flat(draw + 1.0));
    fx.soa->requestOverclock(fx.makeRequest(), 0);
    fx.run(0, kMinute);
    ASSERT_GT(fx.soa->explorationBonus(), power::Watts{0.0});
    fx.soa->onCapEvent(kMinute);
    EXPECT_EQ(fx.soa->explorationBonus(), power::Watts{0.0});
    EXPECT_EQ(fx.soa->stats().capResets, 1u);
}

TEST(Soa, NoFeedbackPolicyNeverExplores)
{
    SoaConfig cfg = SoaConfig::forPolicy(PolicyKind::NoFeedback);
    Fixture fx(cfg, 0.9);
    const double draw = fx.server->powerWatts().count();
    fx.soa->assignBudget(ProfileTemplate::flat(draw + 1.0));
    fx.soa->requestOverclock(fx.makeRequest(), 0);
    fx.run(0, 5 * kMinute);
    EXPECT_EQ(fx.soa->explorationBonus(), power::Watts{0.0});
    EXPECT_EQ(fx.soa->stats().explorationsStarted, 0u);
}

TEST(Soa, NaivePolicyGrantsEverythingInstantly)
{
    SoaConfig cfg = SoaConfig::forPolicy(PolicyKind::NaiveOClock);
    Fixture fx(cfg, 0.95);
    fx.soa->assignBudget(ProfileTemplate::flat(1.0)); // irrelevant
    const auto decision =
        fx.soa->requestOverclock(fx.makeRequest(), 0);
    EXPECT_TRUE(decision.granted);
    EXPECT_EQ(fx.server->group(fx.vm)->targetMHz,
              power::kOverclockMHz);
}

TEST(Soa, CentralOracleChecksRackDraw)
{
    SoaConfig cfg = SoaConfig::forPolicy(PolicyKind::Central);
    Fixture fx(cfg, 0.9);
    // Rack limit just above current draw: the surcharge cannot fit.
    fx.rack.setLimitWatts(fx.rack.powerWatts() + power::Watts{1.0});
    const auto denied =
        fx.soa->requestOverclock(fx.makeRequest(), 0);
    EXPECT_FALSE(denied.granted);
    fx.rack.setLimitWatts(fx.rack.powerWatts() +
                          power::Watts{500.0});
    EXPECT_TRUE(fx.soa->requestOverclock(fx.makeRequest(), 0)
                    .granted);
}

TEST(Soa, LifetimeBudgetConsumedWhileOverclocked)
{
    SoaConfig cfg;
    cfg.budgetEpoch = sim::kDay;
    cfg.overclockFraction = 0.5;
    Fixture fx(cfg);
    fx.soa->assignBudget(ProfileTemplate::flat(900.0));
    const Tick before = fx.soa->lifetimeRemaining(0);
    fx.soa->requestOverclock(fx.makeRequest(), 0);
    fx.run(0, 10 * kMinute);
    const Tick after = fx.soa->lifetimeRemaining(10 * kMinute);
    EXPECT_LT(after, before);
    EXPECT_GT(fx.soa->stats().overclockedCoreTime, 0);
}

TEST(Soa, RevokesWhenLifetimeBudgetExhausted)
{
    SoaConfig cfg;
    cfg.budgetEpoch = sim::kDay;
    // ~2.4 minutes of whole-server budget: with one 8-core VM the
    // per-core allowance runs out quickly and no fresh cores remain
    // forever.
    cfg.overclockFraction = 0.0017;
    Fixture fx(cfg);
    fx.soa->assignBudget(ProfileTemplate::flat(900.0));
    fx.soa->requestOverclock(fx.makeRequest(8 * sim::kHour), 0);
    fx.run(0, 2 * sim::kHour, 30 * kSecond);
    EXPECT_FALSE(fx.soa->isOverclockActive(fx.vm));
    EXPECT_GT(fx.soa->stats().revocations, 0u);
}

TEST(Soa, CoreReschedulingUsesFreshCores)
{
    SoaConfig cfg;
    cfg.budgetEpoch = sim::kDay;
    cfg.overclockFraction = 0.01; // ~14 min per core per day
    Fixture fx(cfg);
    fx.soa->assignBudget(ProfileTemplate::flat(900.0));
    fx.soa->requestOverclock(fx.makeRequest(8 * sim::kHour), 0);
    // After the first core set exhausts (~14 min), the sOA should
    // reschedule to the server's other cores at least once.
    fx.run(0, sim::kHour, 30 * kSecond);
    EXPECT_GT(fx.soa->stats().coreReschedules, 0u);
}

TEST(Soa, ExhaustionSignalEmittedAheadOfBudgetEnd)
{
    SoaConfig cfg;
    cfg.budgetEpoch = sim::kDay;
    cfg.overclockFraction = 0.01;
    cfg.exhaustionWindow = 15 * kMinute;
    Fixture fx(cfg);
    fx.soa->assignBudget(ProfileTemplate::flat(900.0));
    std::vector<ExhaustionSignal> signals;
    fx.soa->setExhaustionCallback(
        [&](const ExhaustionSignal &s) { signals.push_back(s); });
    fx.soa->requestOverclock(fx.makeRequest(8 * sim::kHour), 0);
    fx.run(0, 2 * sim::kHour, 30 * kSecond);
    ASSERT_FALSE(signals.empty());
    EXPECT_EQ(signals.front().kind,
              ExhaustionKind::OverclockBudget);
    EXPECT_EQ(signals.front().groupId, fx.vm);
}

TEST(Soa, TelemetryHistoriesFillPerSlot)
{
    Fixture fx;
    fx.soa->assignBudget(ProfileTemplate::flat(800.0));
    fx.soa->requestOverclock(fx.makeRequest(sim::kHour), 0);
    fx.run(0, 31 * kMinute, 15 * kSecond);
    EXPECT_GE(fx.soa->powerHistory().size(), 6u);
    EXPECT_EQ(fx.soa->powerHistory().size(),
              fx.soa->utilHistory().size());
    EXPECT_EQ(fx.soa->powerHistory().size(),
              fx.soa->grantedCoreHistory().size());
    // Granted-core telemetry reflects the 8 overclocked cores.
    EXPECT_NEAR(fx.soa->grantedCoreHistory().values().back(), 8.0,
                1.0);
}

TEST(Soa, BuildProfileUsesCollectedTelemetry)
{
    Fixture fx;
    fx.soa->assignBudget(ProfileTemplate::flat(800.0));
    fx.run(0, 2 * sim::kHour, kMinute);
    const auto profile = fx.soa->buildProfile();
    EXPECT_GT(profile.power.predict(kMinute), 0.0);
    EXPECT_GE(profile.utilization.predict(kMinute), 0.0);
}

TEST(Soa, BudgetWattsFallsBackToTdpBeforeAssignment)
{
    Fixture fx;
    EXPECT_NEAR(fx.soa->budgetWatts(0).count(),
                model().params().tdpWatts.count(), 1e-9);
    fx.soa->assignBudget(ProfileTemplate::flat(321.0));
    EXPECT_NEAR(fx.soa->budgetWatts(0).count(), 321.0, 1e-9);
}

TEST(Soa, ExtensionDoesNotDoubleCountRequestedCores)
{
    Fixture fx;
    fx.soa->assignBudget(ProfileTemplate::flat(800.0));
    ASSERT_TRUE(
        fx.soa->requestOverclock(fx.makeRequest(sim::kHour), 0)
            .granted);
    // Re-request every tick while the grant is live, as WI agents
    // do to keep a grant alive.  Every request from 15 s on takes
    // the "extended" path.
    for (Tick t = 0; t <= 10 * kMinute; t += 15 * kSecond) {
        if (t > 0) {
            const auto d =
                fx.soa->requestOverclock(fx.makeRequest(sim::kHour),
                                         t);
            ASSERT_EQ(d.reason, "extended");
        }
        fx.soa->tick(t);
    }
    // The second 5-minute telemetry slot saw only extensions, so
    // requested demand must equal the granted cores — extensions
    // must not be counted on top of the grant they extend.
    ASSERT_GE(fx.soa->requestedCoreHistory().size(), 2u);
    EXPECT_DOUBLE_EQ(
        fx.soa->requestedCoreHistory().values().back(), 8.0);
    EXPECT_DOUBLE_EQ(
        fx.soa->requestedCoreHistory().values().back(),
        fx.soa->grantedCoreHistory().values().back());
}

TEST(Soa, WearChargedThroughGrantExpiry)
{
    SoaConfig cfg;
    cfg.budgetEpoch = sim::kDay;
    cfg.overclockFraction = 0.5;
    cfg.exploreEnabled = false;
    Fixture fx(cfg);
    fx.soa->assignBudget(ProfileTemplate::flat(900.0));
    // The grant expires at 7.5 min, between the accounting ticks at
    // 5 and 10 min; the final partial interval [5 min, 7.5 min)
    // must still be charged.
    ASSERT_TRUE(fx.soa
                    ->requestOverclock(
                        fx.makeRequest(7 * kMinute + 30 * kSecond),
                        0)
                    .granted);
    fx.run(0, 10 * kMinute, 5 * kMinute);
    EXPECT_FALSE(fx.soa->isOverclockActive(fx.vm));
    EXPECT_EQ(fx.soa->stats().overclockedCoreTime,
              8 * (7 * kMinute + 30 * kSecond));
}

TEST(Soa, WearChargedOnStopBetweenTicks)
{
    SoaConfig cfg;
    cfg.budgetEpoch = sim::kDay;
    cfg.overclockFraction = 0.5;
    cfg.exploreEnabled = false;
    Fixture fx(cfg);
    fx.soa->assignBudget(ProfileTemplate::flat(900.0));
    ASSERT_TRUE(
        fx.soa->requestOverclock(fx.makeRequest(sim::kHour), 0)
            .granted);
    fx.soa->tick(0);
    fx.soa->tick(5 * kMinute); // charges [0, 5 min)
    const Tick before = fx.soa->stats().overclockedCoreTime;
    EXPECT_EQ(before, 8 * (5 * kMinute));
    // Stopping between ticks must charge the partial interval
    // [5 min, 7 min) before the grant record disappears.
    fx.soa->stopOverclock(fx.vm, 7 * kMinute);
    EXPECT_EQ(fx.soa->stats().overclockedCoreTime,
              8 * (7 * kMinute));
    // The next tick has nothing left to charge for this group.
    fx.soa->tick(10 * kMinute);
    EXPECT_EQ(fx.soa->stats().overclockedCoreTime,
              8 * (7 * kMinute));
}
