/** @file Unit tests for prediction-based admission control (§IV-B). */

#include <gtest/gtest.h>

#include "core/admission.hh"

using namespace soc;
using namespace soc::core;
using sim::kMinute;
using sim::kHour;

namespace
{

const power::PowerModel &
model()
{
    static const power::PowerModel instance;
    return instance;
}

OverclockRequest
request(int cores = 8, TriggerKind trigger = TriggerKind::Metrics)
{
    OverclockRequest r;
    r.groupId = 1;
    r.cores = cores;
    r.desiredMHz = power::kOverclockMHz;
    r.trigger = trigger;
    r.duration = 30 * kMinute;
    return r;
}

} // namespace

TEST(Admission, GrantsWithAmpleBudget)
{
    AdmissionController admission(model());
    OverclockBudget lifetime(sim::kWeek, 0.5, 64);
    ProfileTemplate budget = ProfileTemplate::flat(500.0);
    AdmissionInputs in;
    in.now = 0;
    in.measuredWatts = power::Watts{250.0};
    in.budget = &budget;
    in.lifetime = &lifetime;
    const auto decision = admission.decide(request(), in);
    EXPECT_TRUE(decision.granted);
    EXPECT_EQ(decision.grantedUntil, 30 * kMinute);
}

TEST(Admission, RejectsWhenPowerBudgetTight)
{
    AdmissionController admission(model());
    OverclockBudget lifetime(sim::kWeek, 0.5, 64);
    ProfileTemplate budget = ProfileTemplate::flat(300.0);
    AdmissionInputs in;
    in.now = 0;
    in.measuredWatts = power::Watts{298.0}; // surcharge cannot fit
    in.budget = &budget;
    in.lifetime = &lifetime;
    const auto decision = admission.decide(request(), in);
    EXPECT_FALSE(decision.granted);
    EXPECT_EQ(decision.reason, "power budget insufficient");
}

TEST(Admission, ExplorationBonusUnblocksPower)
{
    AdmissionController admission(model());
    OverclockBudget lifetime(sim::kWeek, 0.5, 64);
    ProfileTemplate budget = ProfileTemplate::flat(300.0);
    AdmissionInputs in;
    in.now = 0;
    in.measuredWatts = power::Watts{298.0};
    in.budget = &budget;
    in.lifetime = &lifetime;
    in.bonusWatts = power::Watts{60.0};
    EXPECT_TRUE(admission.decide(request(), in).granted);
}

TEST(Admission, PowerCheckDisabledGrantsAnyway)
{
    AdmissionConfig cfg;
    cfg.checkPower = false;
    AdmissionController admission(model(), cfg);
    OverclockBudget lifetime(sim::kWeek, 0.5, 64);
    ProfileTemplate budget = ProfileTemplate::flat(10.0);
    AdmissionInputs in;
    in.now = 0;
    in.measuredWatts = power::Watts{1000.0};
    in.budget = &budget;
    in.lifetime = &lifetime;
    EXPECT_TRUE(admission.decide(request(), in).granted);
}

TEST(Admission, ScheduleRequestReservesLifetime)
{
    AdmissionController admission(model());
    OverclockBudget lifetime(sim::kWeek, 0.5, 64);
    ProfileTemplate budget = ProfileTemplate::flat(1000.0);
    AdmissionInputs in;
    in.now = 0;
    in.measuredWatts = power::Watts{200.0};
    in.budget = &budget;
    in.lifetime = &lifetime;
    const auto req = request(8, TriggerKind::Schedule);
    const auto before = lifetime.remaining(0);
    ASSERT_TRUE(admission.decide(req, in).granted);
    EXPECT_EQ(lifetime.remaining(0),
              before - req.duration * req.cores);
}

TEST(Admission, ScheduleRejectedWhenLifetimeShort)
{
    AdmissionController admission(model());
    OverclockBudget lifetime(sim::kWeek, 0.0001, 64);
    ProfileTemplate budget = ProfileTemplate::flat(1000.0);
    AdmissionInputs in;
    in.now = 0;
    in.measuredWatts = power::Watts{200.0};
    in.budget = &budget;
    in.lifetime = &lifetime;
    const auto decision =
        admission.decide(request(32, TriggerKind::Schedule), in);
    EXPECT_FALSE(decision.granted);
    EXPECT_EQ(decision.reason, "overclock budget insufficient");
}

TEST(Admission, MetricsGrantTruncatedByLifetime)
{
    AdmissionController admission(model());
    // Tiny budget: 0.1% of a week for 64 cores.
    OverclockBudget lifetime(sim::kWeek, 0.001, 64);
    ProfileTemplate budget = ProfileTemplate::flat(1000.0);
    AdmissionInputs in;
    in.now = 0;
    in.measuredWatts = power::Watts{200.0};
    in.budget = &budget;
    in.lifetime = &lifetime;
    auto req = request(8);
    req.duration = 10 * kHour;
    const auto decision = admission.decide(req, in);
    ASSERT_TRUE(decision.granted);
    const sim::Tick sustain = lifetime.remaining(0) / 8;
    EXPECT_EQ(decision.grantedUntil, sustain);
    EXPECT_LT(decision.grantedUntil, req.duration);
}

TEST(Admission, MetricsRejectedWhenLifetimeExhausted)
{
    AdmissionController admission(model());
    OverclockBudget lifetime(sim::kWeek, 0.5, 64);
    lifetime.consume(lifetime.remaining(0), 0);
    ProfileTemplate budget = ProfileTemplate::flat(1000.0);
    AdmissionInputs in;
    in.now = 0;
    in.measuredWatts = power::Watts{200.0};
    in.budget = &budget;
    in.lifetime = &lifetime;
    const auto decision = admission.decide(request(), in);
    EXPECT_FALSE(decision.granted);
    EXPECT_EQ(decision.reason, "overclock budget exhausted");
}

TEST(Admission, LookAheadCutsGrantAtPredictedViolation)
{
    AdmissionController admission(model());
    OverclockBudget lifetime(sim::kWeek, 0.5, 64);
    // Budget 500 W flat; the server's own power template shows a
    // jump to 480 W one hour from now.
    ProfileTemplate budget = ProfileTemplate::flat(500.0);
    std::vector<double> own(sim::kSlotsPerWeek, 250.0);
    const int jump_slot = static_cast<int>(kHour / sim::kSlot);
    for (int s = jump_slot; s < sim::kSlotsPerWeek; ++s)
        own[s] = 480.0;
    ProfileTemplate own_power = ProfileTemplate::fromWeekly(own);

    AdmissionInputs in;
    in.now = 0;
    in.measuredWatts = power::Watts{250.0};
    in.budget = &budget;
    in.serverPower = &own_power;
    in.lifetime = &lifetime;
    auto req = request(8);
    req.duration = 5 * kHour;
    const auto decision = admission.decide(req, in);
    ASSERT_TRUE(decision.granted);
    EXPECT_LE(decision.grantedUntil, kHour);
    EXPECT_GT(decision.grantedUntil, 0);
}

TEST(Admission, SurchargeUsesWorstCaseUtil)
{
    AdmissionConfig cfg;
    cfg.worstCaseUtil = 0.75;
    AdmissionController admission(model(), cfg);
    const auto req = request(8);
    EXPECT_NEAR(admission.surchargeWatts(req).count(),
                model().overclockExtraPower(0.75,
                                            power::kOverclockMHz, 8)
                    .count(),
                1e-9);
}

TEST(Admission, NullBudgetSkipsPowerCheck)
{
    AdmissionController admission(model());
    OverclockBudget lifetime(sim::kWeek, 0.5, 64);
    AdmissionInputs in;
    in.now = 0;
    in.measuredWatts = power::Watts{1e9};
    in.budget = nullptr; // bootstrap: no assignment yet
    in.lifetime = &lifetime;
    EXPECT_TRUE(admission.decide(request(), in).granted);
}
