/** @file Tests for the parallelFor worker pool. */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "sim/thread_pool.hh"

using namespace soc;
using sim::ThreadPool;

TEST(ThreadPool, RunsEveryIndexExactlyOnce)
{
    const std::size_t n = 1000;
    std::vector<std::atomic<int>> hits(n);
    ThreadPool pool(4);
    pool.parallelFor(n, [&](std::size_t i) {
        hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPool, SizeOneRunsInlineOnCaller)
{
    ThreadPool pool(1);
    EXPECT_EQ(pool.size(), 1);
    const auto caller = std::this_thread::get_id();
    std::vector<std::thread::id> seen(8);
    pool.parallelFor(seen.size(), [&](std::size_t i) {
        seen[i] = std::this_thread::get_id();
    });
    for (const auto &id : seen)
        EXPECT_EQ(id, caller);
}

TEST(ThreadPool, ClampsNonPositiveSizes)
{
    ThreadPool pool(-3);
    EXPECT_EQ(pool.size(), 1);
    int runs = 0;
    pool.parallelFor(3, [&](std::size_t) { ++runs; });
    EXPECT_EQ(runs, 3);
}

TEST(ThreadPool, EmptyRangeIsANoop)
{
    ThreadPool pool(2);
    bool ran = false;
    pool.parallelFor(0, [&](std::size_t) { ran = true; });
    EXPECT_FALSE(ran);
    pool.parallelForChunked(0, 4, [&](std::size_t, std::size_t) {
        ran = true;
    });
    EXPECT_FALSE(ran);
}

TEST(ThreadPool, FewerIndicesThanThreads)
{
    // n < threads must still run every index exactly once and leave
    // the surplus workers idle rather than claiming phantom work.
    ThreadPool pool(8);
    std::vector<std::atomic<int>> hits(3);
    pool.parallelFor(hits.size(), [&](std::size_t i) {
        hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < hits.size(); ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPool, ChunkedCoversEveryIndexOnceWithFixedBounds)
{
    // Chunk boundaries depend only on (n, grain): chunk c is
    // [c*grain, min(n, (c+1)*grain)), at every pool size.
    for (int threads : {1, 2, 8}) {
        ThreadPool pool(threads);
        const std::size_t n = 103;
        const std::size_t grain = 10;
        std::vector<std::atomic<int>> hits(n);
        std::atomic<int> bad_bounds{0};
        pool.parallelForChunked(
            n, grain, [&](std::size_t begin, std::size_t end) {
                if (begin % grain != 0 ||
                    end != std::min(n, begin + grain))
                    bad_bounds.fetch_add(1);
                for (std::size_t i = begin; i < end; ++i)
                    hits[i].fetch_add(1, std::memory_order_relaxed);
            });
        EXPECT_EQ(bad_bounds.load(), 0) << threads << " threads";
        for (std::size_t i = 0; i < n; ++i)
            EXPECT_EQ(hits[i].load(), 1)
                << "index " << i << ", " << threads << " threads";
    }
}

TEST(ThreadPool, ChunkedClampsGrainAndOversizedChunks)
{
    ThreadPool pool(2);
    // grain = 0 clamps to 1 (one index per chunk).
    std::vector<std::atomic<int>> hits(5);
    pool.parallelForChunked(hits.size(), 0,
                            [&](std::size_t begin, std::size_t end) {
                                EXPECT_EQ(end, begin + 1);
                                hits[begin].fetch_add(1);
                            });
    for (std::size_t i = 0; i < hits.size(); ++i)
        EXPECT_EQ(hits[i].load(), 1);
    // grain > n degenerates to a single inline chunk.
    std::size_t calls = 0, lo = 99, hi = 99;
    pool.parallelForChunked(4, 100,
                            [&](std::size_t begin, std::size_t end) {
                                ++calls;
                                lo = begin;
                                hi = end;
                            });
    EXPECT_EQ(calls, 1u);
    EXPECT_EQ(lo, 0u);
    EXPECT_EQ(hi, 4u);
}

TEST(ThreadPool, ChunkedPropagatesException)
{
    ThreadPool pool(4);
    std::atomic<int> visited{0};
    EXPECT_THROW(
        pool.parallelForChunked(
            64, 4,
            [&](std::size_t begin, std::size_t end) {
                visited.fetch_add(static_cast<int>(end - begin));
                if (begin == 8)
                    throw std::runtime_error("chunk failed");
            }),
        std::runtime_error);
    // The loop drains: every index was still visited exactly once.
    EXPECT_EQ(visited.load(), 64);
}

TEST(ThreadPool, PropagatesFirstException)
{
    ThreadPool pool(4);
    std::atomic<int> completed{0};
    EXPECT_THROW(
        pool.parallelFor(64,
                         [&](std::size_t i) {
            if (i == 10)
                throw std::runtime_error("boom");
            completed.fetch_add(1, std::memory_order_relaxed);
        }),
        std::runtime_error);
    // The loop drains (no iteration is lost) even when one throws.
    EXPECT_EQ(completed.load(), 63);
}

TEST(ThreadPool, PropagatesOneExceptionWhenManyThrowConcurrently)
{
    // Worst case for the rethrow path: every iteration throws, from
    // every worker at once.  Exactly one exception must surface (the
    // first captured), the others are swallowed, and no iteration is
    // lost or run twice.
    ThreadPool pool(8);
    std::atomic<int> attempts{0};
    EXPECT_THROW(
        pool.parallelFor(256,
                         [&](std::size_t i) {
            attempts.fetch_add(1, std::memory_order_relaxed);
            throw std::runtime_error(
                "boom " + std::to_string(i));
        }),
        std::runtime_error);
    EXPECT_EQ(attempts.load(), 256);

    // The pool survives the storm: the next loop runs normally.
    std::atomic<int> completed{0};
    pool.parallelFor(64, [&](std::size_t) {
        completed.fetch_add(1, std::memory_order_relaxed);
    });
    EXPECT_EQ(completed.load(), 64);
}

TEST(ThreadPool, ReusableAcrossManyLoops)
{
    ThreadPool pool(3);
    std::atomic<long> sum{0};
    for (int round = 0; round < 50; ++round) {
        pool.parallelFor(20, [&](std::size_t i) {
            sum.fetch_add(static_cast<long>(i),
                          std::memory_order_relaxed);
        });
    }
    EXPECT_EQ(sum.load(), 50L * (19 * 20 / 2));
}

TEST(ThreadPool, ResolveThreadsDefaultsPositive)
{
    EXPECT_GE(ThreadPool::defaultThreads(), 1);
    EXPECT_EQ(ThreadPool::resolveThreads(0),
              ThreadPool::defaultThreads());
    EXPECT_EQ(ThreadPool::resolveThreads(-1),
              ThreadPool::defaultThreads());
    EXPECT_EQ(ThreadPool::resolveThreads(5), 5);
}

TEST(ThreadPool, NestedPoolsInsideWorkers)
{
    // A worker task may build its own pool (runTraceSimBatch runs
    // whole simulations, each with a private per-rack pool).
    ThreadPool outer(3);
    std::vector<std::atomic<int>> counts(6);
    outer.parallelFor(counts.size(), [&](std::size_t i) {
        ThreadPool inner(2);
        inner.parallelFor(4, [&](std::size_t) {
            counts[i].fetch_add(1, std::memory_order_relaxed);
        });
    });
    for (auto &c : counts)
        EXPECT_EQ(c.load(), 4);
}
