/** @file Statistical sanity tests for the deterministic RNG. */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "sim/rng.hh"

using soc::sim::Rng;

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int equal = 0;
    for (int i = 0; i < 100; ++i)
        if (a() == b())
            ++equal;
    EXPECT_EQ(equal, 0);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    double sum = 0.0;
    for (int i = 0; i < 20000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 20000.0, 0.5, 0.01);
}

TEST(Rng, UniformRangeRespectsBounds)
{
    Rng rng(8);
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.uniform(-3.0, 5.0);
        ASSERT_GE(u, -3.0);
        ASSERT_LT(u, 5.0);
    }
}

TEST(Rng, UniformIntCoversInclusiveRange)
{
    Rng rng(9);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 5000; ++i) {
        const auto v = rng.uniformInt(2, 9);
        ASSERT_GE(v, 2);
        ASSERT_LE(v, 9);
        saw_lo |= v == 2;
        saw_hi |= v == 9;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalMomentsMatch)
{
    Rng rng(10);
    double sum = 0.0, sq = 0.0;
    const int n = 50000;
    for (int i = 0; i < n; ++i) {
        const double x = rng.normal(3.0, 2.0);
        sum += x;
        sq += x * x;
    }
    const double mean = sum / n;
    const double var = sq / n - mean * mean;
    EXPECT_NEAR(mean, 3.0, 0.05);
    EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

TEST(Rng, ExponentialMeanMatches)
{
    Rng rng(11);
    double sum = 0.0;
    const int n = 50000;
    for (int i = 0; i < n; ++i) {
        const double x = rng.exponential(4.0);
        ASSERT_GE(x, 0.0);
        sum += x;
    }
    EXPECT_NEAR(sum / n, 4.0, 0.1);
}

TEST(Rng, LognormalMeanMatches)
{
    // mean of lognormal = exp(mu + sigma^2/2)
    Rng rng(12);
    const double mu = 0.5, sigma = 0.6;
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += rng.lognormal(mu, sigma);
    EXPECT_NEAR(sum / n, std::exp(mu + sigma * sigma / 2.0), 0.05);
}

TEST(Rng, PoissonMeanMatchesSmallAndLarge)
{
    Rng rng(13);
    for (double mean : {0.5, 3.0, 12.0, 80.0}) {
        double sum = 0.0;
        const int n = 20000;
        for (int i = 0; i < n; ++i)
            sum += static_cast<double>(rng.poisson(mean));
        EXPECT_NEAR(sum / n, mean, mean * 0.05 + 0.05)
            << "mean=" << mean;
    }
}

TEST(Rng, PoissonOfNonPositiveMeanIsZero)
{
    Rng rng(14);
    EXPECT_EQ(rng.poisson(0.0), 0);
    EXPECT_EQ(rng.poisson(-1.0), 0);
}

TEST(Rng, ChanceFrequencyMatches)
{
    Rng rng(15);
    int hits = 0;
    for (int i = 0; i < 20000; ++i)
        hits += rng.chance(0.3) ? 1 : 0;
    EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(Rng, SplitProducesIndependentStream)
{
    Rng parent(16);
    Rng child = parent.split();
    // Child and parent should not produce identical sequences.
    int equal = 0;
    for (int i = 0; i < 64; ++i)
        if (parent() == child())
            ++equal;
    EXPECT_LT(equal, 2);
}

TEST(Rng, SplitIsDeterministic)
{
    Rng a(17), b(17);
    Rng ca = a.split();
    Rng cb = b.split();
    for (int i = 0; i < 32; ++i)
        EXPECT_EQ(ca(), cb());
}

TEST(Rng, DeriveSeedIsDeterministic)
{
    EXPECT_EQ(soc::sim::deriveSeed(1, 0), soc::sim::deriveSeed(1, 0));
    EXPECT_EQ(soc::sim::deriveSeed(99, 7), soc::sim::deriveSeed(99, 7));
}

TEST(Rng, DeriveSeedSeparatesStreamsAndSeeds)
{
    EXPECT_NE(soc::sim::deriveSeed(1, 0), soc::sim::deriveSeed(1, 1));
    EXPECT_NE(soc::sim::deriveSeed(1, 0), soc::sim::deriveSeed(2, 0));
    // Generators seeded from adjacent streams diverge immediately.
    Rng a(soc::sim::deriveSeed(42, 0));
    Rng b(soc::sim::deriveSeed(42, 1));
    int equal = 0;
    for (int i = 0; i < 64; ++i)
        if (a() == b())
            ++equal;
    EXPECT_LT(equal, 2);
}

TEST(Rng, DeriveSeedAdjacentRackStreamsAreIndependent)
{
    // The simulators hand rack i the stream deriveSeed(seed, i); a
    // weak mix (e.g. seed + i) would make rack i under seed s
    // identical to rack i+1 under seed s-1, and correlated draws
    // would couple the racks' fault plans.  Check both statistically
    // across many adjacent pairs.
    for (std::uint64_t seed : {1ULL, 42ULL, 0xDEADBEEFULL}) {
        for (std::uint64_t rack = 0; rack < 8; ++rack) {
            const auto lo = soc::sim::deriveSeed(seed, rack);
            const auto hi = soc::sim::deriveSeed(seed, rack + 1);
            EXPECT_NE(lo, hi);
            // Not a shifted copy of the neighbouring seed's stream.
            EXPECT_NE(hi, soc::sim::deriveSeed(seed + 1, rack));

            Rng a(lo), b(hi);
            int equal = 0;
            double corr = 0.0;
            for (int i = 0; i < 256; ++i) {
                const double ua = a.uniform(), ub = b.uniform();
                equal += ua == ub;
                corr += (ua - 0.5) * (ub - 0.5);
            }
            EXPECT_LT(equal, 2) << "seed " << seed << " rack "
                                << rack;
            // Sample covariance of independent U(0,1) draws is
            // near zero (sigma ~ 1/(12 sqrt(n)) ~ 0.005).
            EXPECT_LT(std::abs(corr / 256.0), 0.03)
                << "seed " << seed << " rack " << rack;
        }
    }
}

/*
 * Batch-fill stream equivalence: normalFill/uniformFill must consume
 * the generator exactly like repeated scalar calls, including the
 * polar method's cached spare normal carried across batch
 * boundaries.  The trace generator switches between the two shapes
 * freely (scalar day-amplitude draws between batched noise fills),
 * so any divergence would silently re-seed every trace.
 */

TEST(Rng, NormalFillMatchesScalarStream)
{
    // Batch sizes chosen to hit every boundary case: empty, one
    // (odd tail caches a spare), even, odd-after-spare, and a batch
    // larger than the internal pair loop's unroll.
    const std::size_t batches[] = {0, 1, 2, 3, 7, 288, 5, 0, 97};
    Rng scalar(2024), batch(2024);
    for (const std::size_t n : batches) {
        std::vector<double> got(n, 0.0);
        batch.normalFill(got.data(), n);
        for (std::size_t i = 0; i < n; ++i) {
            const double want = scalar.normal();
            ASSERT_EQ(want, got[i]) << "batch " << n << " i " << i;
        }
    }
    // Both generators end in the same raw-stream state too.
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(scalar(), batch());
}

TEST(Rng, NormalFillCarriesLiveSpareAcrossBoundary)
{
    Rng scalar(7), batch(7);
    // Leave a live spare in both generators...
    ASSERT_EQ(scalar.normal(), batch.normal());
    // ...then fill: the spare must come out as the first sample.
    double got[5];
    batch.normalFill(got, 5);
    for (double g : got)
        ASSERT_EQ(scalar.normal(), g);
    // The odd tail cached a fresh spare; the next scalar draws on
    // both generators must still agree.
    EXPECT_EQ(scalar.normal(), batch.normal());
    EXPECT_EQ(scalar.normal(), batch.normal());
}

TEST(Rng, UniformFillMatchesScalarStream)
{
    Rng scalar(11), batch(11);
    double got[64];
    batch.uniformFill(got, 64);
    for (double g : got)
        ASSERT_EQ(scalar.uniform(), g);
    EXPECT_EQ(scalar(), batch());
}
