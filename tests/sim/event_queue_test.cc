/** @file Unit tests for the discrete-event queue. */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"

using soc::sim::EventQueue;
using soc::sim::Tick;

TEST(EventQueue, StartsEmptyAtTimeZero)
{
    EventQueue q;
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.now(), 0);
    EXPECT_EQ(q.size(), 0u);
    EXPECT_FALSE(q.step());
}

TEST(EventQueue, ExecutesInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(30, [&](Tick) { order.push_back(3); });
    q.schedule(10, [&](Tick) { order.push_back(1); });
    q.schedule(20, [&](Tick) { order.push_back(2); });
    q.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(q.now(), 30);
}

TEST(EventQueue, FifoWithinSameTick)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 16; ++i)
        q.schedule(5, [&order, i](Tick) { order.push_back(i); });
    q.run();
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueue, HandlerReceivesItsTick)
{
    EventQueue q;
    Tick seen = -1;
    q.schedule(42, [&](Tick t) { seen = t; });
    q.run();
    EXPECT_EQ(seen, 42);
}

TEST(EventQueue, CancelPreventsExecution)
{
    EventQueue q;
    bool ran = false;
    auto id = q.schedule(10, [&](Tick) { ran = true; });
    EXPECT_TRUE(q.cancel(id));
    q.run();
    EXPECT_FALSE(ran);
}

TEST(EventQueue, CancelIsIdempotent)
{
    EventQueue q;
    auto id = q.schedule(10, [](Tick) {});
    EXPECT_TRUE(q.cancel(id));
    EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, CancelUnknownIdFails)
{
    EventQueue q;
    EXPECT_FALSE(q.cancel(12345));
}

TEST(EventQueue, CancelledEventsDoNotCountAsPending)
{
    EventQueue q;
    auto a = q.schedule(10, [](Tick) {});
    q.schedule(20, [](Tick) {});
    EXPECT_EQ(q.size(), 2u);
    q.cancel(a);
    EXPECT_EQ(q.size(), 1u);
    EXPECT_FALSE(q.empty());
}

TEST(EventQueue, HandlerCanReschedule)
{
    EventQueue q;
    int count = 0;
    std::function<void(Tick)> self = [&](Tick t) {
        ++count;
        if (count < 5)
            q.schedule(t + 10, self);
    };
    q.schedule(0, self);
    q.run();
    EXPECT_EQ(count, 5);
    EXPECT_EQ(q.now(), 40);
}

TEST(EventQueue, RunUntilStopsAtBoundaryAndAdvancesClock)
{
    EventQueue q;
    std::vector<Tick> executed;
    for (Tick t = 10; t <= 100; t += 10)
        q.schedule(t, [&](Tick now) { executed.push_back(now); });
    q.runUntil(55);
    EXPECT_EQ(executed.size(), 5u);
    EXPECT_EQ(q.now(), 55);
    q.runUntil(100);
    EXPECT_EQ(executed.size(), 10u);
    EXPECT_EQ(q.now(), 100);
}

TEST(EventQueue, RunUntilIncludesEventsAtBoundary)
{
    EventQueue q;
    bool ran = false;
    q.schedule(50, [&](Tick) { ran = true; });
    q.runUntil(50);
    EXPECT_TRUE(ran);
}

TEST(EventQueue, RunUntilOnEmptyQueueAdvancesClock)
{
    EventQueue q;
    q.runUntil(1000);
    EXPECT_EQ(q.now(), 1000);
}

TEST(EventQueue, ScheduleAfterUsesCurrentTime)
{
    EventQueue q;
    Tick when = -1;
    q.schedule(100, [&](Tick t) {
        q.scheduleAfter(25, [&](Tick inner) { when = inner; });
        (void)t;
    });
    q.run();
    EXPECT_EQ(when, 125);
}

TEST(EventQueue, ExecutedCountTracksOnlyRunEvents)
{
    EventQueue q;
    auto id = q.schedule(1, [](Tick) {});
    q.schedule(2, [](Tick) {});
    q.cancel(id);
    q.run();
    EXPECT_EQ(q.executedCount(), 1u);
}

TEST(EventQueue, ManyEventsStressOrdering)
{
    EventQueue q;
    Tick last = -1;
    bool monotonic = true;
    for (int i = 0; i < 10000; ++i) {
        const Tick when = (i * 7919) % 4096;
        q.schedule(when, [&](Tick t) {
            if (t < last)
                monotonic = false;
            last = t;
        });
    }
    q.run();
    EXPECT_TRUE(monotonic);
    EXPECT_EQ(q.executedCount(), 10000u);
}

TEST(EventQueue, CancelFromWithinHandler)
{
    EventQueue q;
    bool second_ran = false;
    soc::sim::EventId second =
        q.schedule(20, [&](Tick) { second_ran = true; });
    q.schedule(10, [&](Tick) { q.cancel(second); });
    q.run();
    EXPECT_FALSE(second_ran);
}
