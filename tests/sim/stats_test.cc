/** @file Unit and property tests for the statistics utilities. */

#include <gtest/gtest.h>

#include <cmath>

#include "sim/rng.hh"
#include "sim/stats.hh"

using namespace soc::sim;

TEST(OnlineStats, EmptyIsZero)
{
    OnlineStats s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.variance(), 0.0);
}

TEST(OnlineStats, BasicMoments)
{
    OnlineStats s;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(v);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.variance(), 4.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(OnlineStats, MergeMatchesSequential)
{
    Rng rng(3);
    OnlineStats all, a, b;
    for (int i = 0; i < 1000; ++i) {
        const double v = rng.normal(10.0, 3.0);
        all.add(v);
        (i % 2 == 0 ? a : b).add(v);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
    EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
    EXPECT_EQ(a.min(), all.min());
    EXPECT_EQ(a.max(), all.max());
}

TEST(OnlineStats, MergeWithEmptySides)
{
    OnlineStats a, b;
    a.add(1.0);
    a.merge(b); // empty rhs
    EXPECT_EQ(a.count(), 1u);
    b.merge(a); // empty lhs
    EXPECT_EQ(b.count(), 1u);
    EXPECT_EQ(b.mean(), 1.0);
}

TEST(Percentiles, EmptyQuantileIsZero)
{
    Percentiles p;
    EXPECT_EQ(p.quantile(0.5), 0.0);
    EXPECT_TRUE(p.empty());
}

TEST(Percentiles, SingleSample)
{
    Percentiles p;
    p.add(7.0);
    EXPECT_EQ(p.p50(), 7.0);
    EXPECT_EQ(p.p99(), 7.0);
    EXPECT_EQ(p.min(), 7.0);
    EXPECT_EQ(p.max(), 7.0);
}

TEST(Percentiles, ExactQuantilesOnKnownData)
{
    Percentiles p;
    for (int i = 1; i <= 100; ++i)
        p.add(static_cast<double>(i));
    EXPECT_NEAR(p.p50(), 50.5, 1e-9);
    EXPECT_NEAR(p.quantile(0.0), 1.0, 1e-9);
    EXPECT_NEAR(p.quantile(1.0), 100.0, 1e-9);
    EXPECT_NEAR(p.p99(), 99.01, 1e-9);
}

TEST(Percentiles, QuantileMonotoneInQ)
{
    Rng rng(5);
    Percentiles p;
    for (int i = 0; i < 1000; ++i)
        p.add(rng.lognormal(0.0, 1.0));
    double prev = -1.0;
    for (double q = 0.0; q <= 1.0; q += 0.05) {
        const double v = p.quantile(q);
        EXPECT_GE(v, prev);
        prev = v;
    }
}

TEST(Percentiles, InterleavedAddAndQuery)
{
    Percentiles p;
    p.add(10.0);
    EXPECT_EQ(p.p50(), 10.0);
    p.add(20.0);
    p.add(0.0);
    EXPECT_NEAR(p.p50(), 10.0, 1e-9);
}

TEST(Percentiles, MergeCombinesSamples)
{
    Percentiles a, b;
    for (int i = 0; i < 50; ++i)
        a.add(1.0);
    for (int i = 0; i < 50; ++i)
        b.add(3.0);
    a.merge(b);
    EXPECT_EQ(a.count(), 100u);
    EXPECT_NEAR(a.mean(), 2.0, 1e-9);
}

TEST(Percentiles, MergeOfSortedSidesKeepsQuantilesCheap)
{
    // After both sides have answered a quantile query their sample
    // stores are sorted; merging must keep the combined store
    // queryable with correct results (the in-place merge path).
    Rng rng(7);
    Percentiles a, b, all;
    for (int i = 0; i < 400; ++i) {
        const double v = rng.lognormal(0.0, 1.0);
        (i % 2 == 0 ? a : b).add(v);
        all.add(v);
    }
    (void)a.p50(); // force both sides sorted
    (void)b.p50();
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    for (double q : {0.0, 0.1, 0.5, 0.9, 0.99, 1.0})
        EXPECT_DOUBLE_EQ(a.quantile(q), all.quantile(q));
}

TEST(Percentiles, MergeOfUnsortedSidesStillCorrect)
{
    Rng rng(8);
    Percentiles a, b, all;
    for (int i = 0; i < 300; ++i) {
        const double v = rng.uniform(-5.0, 5.0);
        (i % 3 == 0 ? a : b).add(v);
        all.add(v);
    }
    a.merge(b); // neither side ever sorted
    EXPECT_EQ(a.count(), all.count());
    for (double q : {0.0, 0.25, 0.5, 0.75, 1.0})
        EXPECT_DOUBLE_EQ(a.quantile(q), all.quantile(q));
}

TEST(Percentiles, MergeWithEmptySides)
{
    Percentiles a, b;
    a.add(1.0);
    a.add(2.0);
    a.merge(b); // empty rhs is a no-op
    EXPECT_EQ(a.count(), 2u);
    b.merge(a); // empty lhs adopts rhs
    EXPECT_EQ(b.count(), 2u);
    EXPECT_DOUBLE_EQ(b.p50(), 1.5);
}

TEST(Percentiles, FractionAbove)
{
    Percentiles p;
    for (int i = 1; i <= 10; ++i)
        p.add(static_cast<double>(i));
    EXPECT_NEAR(p.fractionAbove(7.0), 0.3, 1e-9);
    EXPECT_NEAR(p.fractionAbove(0.0), 1.0, 1e-9);
    EXPECT_NEAR(p.fractionAbove(10.0), 0.0, 1e-9);
}

TEST(Cdf, EndsAtExtremes)
{
    std::vector<double> samples{5.0, 1.0, 3.0, 2.0, 4.0};
    const auto cdf = buildCdf(samples, 11);
    ASSERT_EQ(cdf.size(), 11u);
    EXPECT_EQ(cdf.front().value, 1.0);
    EXPECT_EQ(cdf.front().fraction, 0.0);
    EXPECT_EQ(cdf.back().value, 5.0);
    EXPECT_EQ(cdf.back().fraction, 1.0);
}

TEST(Cdf, MonotoneValues)
{
    Rng rng(6);
    std::vector<double> samples;
    for (int i = 0; i < 500; ++i)
        samples.push_back(rng.normal(0.0, 1.0));
    const auto cdf = buildCdf(samples, 50);
    for (std::size_t i = 1; i < cdf.size(); ++i) {
        EXPECT_GE(cdf[i].value, cdf[i - 1].value);
        EXPECT_GT(cdf[i].fraction, cdf[i - 1].fraction);
    }
}

TEST(Cdf, EmptyInput)
{
    EXPECT_TRUE(buildCdf({}, 10).empty());
    EXPECT_TRUE(buildCdf({1.0}, 0).empty());
}

TEST(Rmse, ZeroForPerfectPrediction)
{
    std::vector<double> a{1.0, 2.0, 3.0};
    EXPECT_EQ(rmse(a, a), 0.0);
}

TEST(Rmse, KnownValue)
{
    std::vector<double> actual{0.0, 0.0};
    std::vector<double> pred{3.0, 4.0};
    // sqrt((9 + 16) / 2) = sqrt(12.5)
    EXPECT_NEAR(rmse(actual, pred), std::sqrt(12.5), 1e-12);
}

TEST(Rmse, EmptyIsZero)
{
    EXPECT_EQ(rmse({}, {}), 0.0);
}

TEST(Errors, SignedAndAbsolute)
{
    std::vector<double> actual{1.0, 2.0, 3.0};
    std::vector<double> pred{2.0, 2.0, 1.0};
    EXPECT_NEAR(meanAbsoluteError(actual, pred), 1.0, 1e-12);
    EXPECT_NEAR(meanSignedError(actual, pred), -1.0 / 3.0, 1e-12);
}

TEST(Median, OddAndEven)
{
    EXPECT_EQ(median({3.0, 1.0, 2.0}), 2.0);
    EXPECT_EQ(median({4.0, 1.0, 2.0, 3.0}), 2.5);
    EXPECT_EQ(median({}), 0.0);
    EXPECT_EQ(median({42.0}), 42.0);
}

/** Property sweep: quantile() agrees with a naive sorted lookup. */
class QuantileProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(QuantileProperty, MatchesNaiveImplementation)
{
    Rng rng(100 + GetParam());
    Percentiles p;
    std::vector<double> raw;
    const int n = 10 + GetParam() * 37;
    for (int i = 0; i < n; ++i) {
        const double v = rng.uniform(0.0, 1000.0);
        p.add(v);
        raw.push_back(v);
    }
    std::sort(raw.begin(), raw.end());
    for (double q : {0.0, 0.25, 0.5, 0.9, 0.99, 1.0}) {
        const double rank = q * (n - 1);
        const auto lo = static_cast<std::size_t>(rank);
        const auto hi = std::min<std::size_t>(lo + 1, n - 1);
        const double frac = rank - static_cast<double>(lo);
        const double expect = raw[lo] * (1 - frac) + raw[hi] * frac;
        EXPECT_NEAR(p.quantile(q), expect, 1e-9);
    }
}

INSTANTIATE_TEST_SUITE_P(Sweep, QuantileProperty,
                         ::testing::Range(0, 8));
