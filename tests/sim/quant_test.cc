/**
 * @file
 * Contract tests for the fixed-point utilization quantization the
 * compact replay columns rely on (sim/quant.hh, DESIGN.md §14).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "sim/quant.hh"
#include "sim/rng.hh"

using namespace soc;

TEST(Quant, RoundTripErrorWithinHalfStep)
{
    // Nearest-step rounding: the round trip must stay within half a
    // quantization step (and therefore within the advertised
    // 1/65535 bound) for every utilization in [0, 1].
    const double half_step = 0.5 * sim::kUtilQuantStep;
    sim::Rng rng(321);
    for (int i = 0; i < 200000; ++i) {
        const double u = rng.uniform();
        const double back =
            sim::dequantUtil(sim::quantizeUtil(u));
        ASSERT_LE(std::abs(back - u), half_step) << "u " << u;
    }
}

TEST(Quant, BoundaryUtilsAreExact)
{
    // The endpoints and every exact grid point round-trip with zero
    // error: q * step re-quantizes to q.
    EXPECT_EQ(sim::quantizeUtil(0.0), 0);
    EXPECT_EQ(sim::quantizeUtil(1.0), sim::kUtilQuantMax);
    EXPECT_EQ(sim::dequantUtil(0), 0.0);
    EXPECT_EQ(sim::dequantUtil(sim::kUtilQuantMax), 1.0);
    for (std::uint32_t q = 0; q <= sim::kUtilQuantMax; q += 997) {
        const auto q16 = static_cast<std::uint16_t>(q);
        EXPECT_EQ(sim::quantizeUtil(sim::dequantUtil(q16)), q16);
    }
    EXPECT_EQ(sim::quantizeUtil(sim::dequantUtil(sim::kUtilQuantMax)),
              sim::kUtilQuantMax);
}

TEST(Quant, OutOfRangeClampsAndNaNFailsLow)
{
    // Utilization is defined on [0, 1]; the encoder clamps rather
    // than wrapping, and NaN maps to 0 — the same fail-low stance
    // as telemetry ingest, which rejects non-finite samples before
    // any consumer sees them (SlotAggregator::add throws).
    EXPECT_EQ(sim::quantizeUtil(-0.25), 0);
    EXPECT_EQ(sim::quantizeUtil(-1e300), 0);
    EXPECT_EQ(sim::quantizeUtil(1.25), sim::kUtilQuantMax);
    EXPECT_EQ(sim::quantizeUtil(1e300), sim::kUtilQuantMax);
    EXPECT_EQ(sim::quantizeUtil(
                  std::numeric_limits<double>::infinity()),
              sim::kUtilQuantMax);
    EXPECT_EQ(sim::quantizeUtil(
                  -std::numeric_limits<double>::infinity()),
              0);
    EXPECT_EQ(sim::quantizeUtil(
                  std::numeric_limits<double>::quiet_NaN()),
              0);
}

TEST(Quant, MonotoneOverTheUnitInterval)
{
    // The want-mask threshold compare (FleetState) replaces
    // dequantize-then-compare with an integer compare; that is only
    // sound if quantization is monotone.
    std::uint16_t prev = 0;
    for (double u = 0.0; u <= 1.0; u += 1e-4) {
        const std::uint16_t q = sim::quantizeUtil(u);
        ASSERT_GE(q, prev) << "u " << u;
        prev = q;
    }
}
