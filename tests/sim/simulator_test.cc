/** @file Unit tests for the periodic-task simulation driver. */

#include <gtest/gtest.h>

#include "sim/simulator.hh"

using namespace soc::sim;

TEST(Simulator, PeriodicTaskFiresAtPeriod)
{
    Simulator sim;
    std::vector<Tick> fired;
    sim.every(10, [&](Tick t) { fired.push_back(t); });
    sim.runUntil(35);
    EXPECT_EQ(fired, (std::vector<Tick>{10, 20, 30}));
}

TEST(Simulator, PhaseControlsFirstFiring)
{
    Simulator sim;
    std::vector<Tick> fired;
    sim.every(10, [&](Tick t) { fired.push_back(t); }, 3);
    sim.runUntil(25);
    EXPECT_EQ(fired, (std::vector<Tick>{3, 13, 23}));
}

TEST(Simulator, ZeroPhaseFiresImmediately)
{
    Simulator sim;
    int count = 0;
    sim.every(10, [&](Tick) { ++count; }, 0);
    sim.runUntil(0);
    EXPECT_EQ(count, 1);
}

TEST(Simulator, StopPeriodicHaltsTask)
{
    Simulator sim;
    int count = 0;
    const TaskId id = sim.every(10, [&](Tick) { ++count; });
    sim.runUntil(25);
    EXPECT_TRUE(sim.stopPeriodic(id));
    sim.runUntil(100);
    EXPECT_EQ(count, 2);
}

TEST(Simulator, StopUnknownTaskFails)
{
    Simulator sim;
    EXPECT_FALSE(sim.stopPeriodic(999));
}

TEST(Simulator, TaskCanStopItself)
{
    Simulator sim;
    int count = 0;
    TaskId id = 0;
    id = sim.every(5, [&](Tick) {
        if (++count == 3)
            sim.stopPeriodic(id);
    });
    sim.runUntil(100);
    EXPECT_EQ(count, 3);
}

TEST(Simulator, MultiplePeriodicTasksInterleave)
{
    Simulator sim;
    std::vector<int> order;
    sim.every(4, [&](Tick) { order.push_back(4); });
    sim.every(6, [&](Tick) { order.push_back(6); });
    sim.runUntil(12);
    // t=4:4, t=6:6, t=8:4, t=12: 6 before 4 (6's event was
    // scheduled earlier, FIFO within a tick).
    EXPECT_EQ(order, (std::vector<int>{4, 6, 4, 6, 4}));
}

TEST(Simulator, OneShotAndPeriodicCoexist)
{
    Simulator sim;
    std::vector<int> order;
    sim.every(10, [&](Tick) { order.push_back(1); });
    sim.queue().schedule(15, [&](Tick) { order.push_back(2); });
    sim.runUntil(20);
    EXPECT_EQ(order, (std::vector<int>{1, 2, 1}));
}

TEST(Simulator, RunUntilLeavesClockAtBoundary)
{
    Simulator sim;
    sim.every(7, [](Tick) {});
    sim.runUntil(100);
    EXPECT_EQ(sim.now(), 100);
}
