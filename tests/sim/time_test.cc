/** @file Unit tests for the simulated-time helpers. */

#include <gtest/gtest.h>

#include "sim/time.hh"

using namespace soc::sim;

TEST(Time, ConstantsAreConsistent)
{
    EXPECT_EQ(kSecond, 1000 * kMillisecond);
    EXPECT_EQ(kMinute, 60 * kSecond);
    EXPECT_EQ(kHour, 60 * kMinute);
    EXPECT_EQ(kDay, 24 * kHour);
    EXPECT_EQ(kWeek, 7 * kDay);
    EXPECT_EQ(kSlotsPerDay, 288);
    EXPECT_EQ(kSlotsPerWeek, 2016);
}

TEST(Time, DayOfWeekStartsMonday)
{
    EXPECT_EQ(dayOfWeek(0), 0);
    EXPECT_EQ(dayOfWeek(kDay - 1), 0);
    EXPECT_EQ(dayOfWeek(kDay), 1);
    EXPECT_EQ(dayOfWeek(6 * kDay), 6);
    EXPECT_EQ(dayOfWeek(kWeek), 0);
    EXPECT_EQ(dayOfWeek(kWeek + 3 * kDay), 3);
}

TEST(Time, WeekendDetection)
{
    EXPECT_FALSE(isWeekend(0));
    EXPECT_FALSE(isWeekend(4 * kDay));
    EXPECT_TRUE(isWeekend(5 * kDay));
    EXPECT_TRUE(isWeekend(6 * kDay + kHour));
    EXPECT_FALSE(isWeekend(kWeek));
}

TEST(Time, TimeOfDayWraps)
{
    EXPECT_EQ(timeOfDay(3 * kDay + 5 * kHour), 5 * kHour);
    EXPECT_EQ(timeOfDay(0), 0);
}

TEST(Time, SlotOfDay)
{
    EXPECT_EQ(slotOfDay(0), 0);
    EXPECT_EQ(slotOfDay(4 * kMinute), 0);
    EXPECT_EQ(slotOfDay(5 * kMinute), 1);
    EXPECT_EQ(slotOfDay(kDay - 1), 287);
    EXPECT_EQ(slotOfDay(kDay + 10 * kMinute), 2);
}

TEST(Time, HourOfDayFractional)
{
    EXPECT_DOUBLE_EQ(hourOfDay(90 * kMinute), 1.5);
    EXPECT_DOUBLE_EQ(hourOfDay(kDay + 6 * kHour), 6.0);
}

TEST(Time, FormatTick)
{
    EXPECT_EQ(formatTick(0), "d0 00:00:00");
    EXPECT_EQ(formatTick(kDay + kHour + kMinute + kSecond),
              "d1 01:01:01");
    EXPECT_EQ(formatTick(9 * kDay + 23 * kHour), "d9 23:00:00");
}
