/**
 * @file
 * End-to-end chaos tests: the cluster simulators under fault
 * injection.  The headline acceptance checks live here — a run with
 * mid-evaluation gOA outages completes with the sOAs enforcing
 * stale-then-decayed budgets, and fault-injected outcomes stay
 * bit-identical across thread counts and repeated runs.
 */

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "cluster/service_sim.hh"
#include "cluster/trace_sim.hh"

using namespace soc;
using namespace soc::cluster;

namespace
{

/**
 * A one-rack run whose fault load guarantees degraded-mode coverage
 * inside warmup + one evaluation day: the gOA recomputes every three
 * hours (lease = 6 h), while outages arrive often and last 12 h on
 * average, so several recomputes are skipped and leases expire while
 * the trace is still running.
 */
TraceSimConfig
chaosConfig()
{
    TraceSimConfig cfg;
    cfg.policy = core::PolicyKind::SmartOClock;
    cfg.racks = 1;
    cfg.serversPerRack = 8;
    cfg.warmup = sim::kWeek;
    cfg.duration = sim::kDay;
    cfg.controlStep = 60 * sim::kSecond;
    cfg.limitFactor = 1.1;
    cfg.seed = 101;
    cfg.recomputePeriod = 3 * sim::kHour;
    cfg.faults = sim::FaultConfig::standardChaos();
    cfg.faults.goaOutagesPerWeek = 14.0;
    cfg.faults.goaOutageMeanDuration = 12 * sim::kHour;
    cfg.faults.soaCrashesPerServerWeek = 2.0;
    return cfg;
}

void
expectIdentical(const TraceSimResult &a, const TraceSimResult &b)
{
    EXPECT_EQ(a.capEvents, b.capEvents);
    EXPECT_EQ(a.cappedTicks, b.cappedTicks);
    EXPECT_EQ(a.warnings, b.warnings);
    EXPECT_EQ(a.requests, b.requests);
    EXPECT_EQ(a.wantSteps, b.wantSteps);
    EXPECT_EQ(a.successSteps, b.successSteps);
    EXPECT_DOUBLE_EQ(a.successRate, b.successRate);
    EXPECT_DOUBLE_EQ(a.cappingPenalty, b.cappingPenalty);
    EXPECT_DOUBLE_EQ(a.normPerformance, b.normPerformance);
    EXPECT_DOUBLE_EQ(a.meanRackUtil, b.meanRackUtil);
    EXPECT_EQ(a.energyJoules, b.energyJoules);
    EXPECT_EQ(a.faults.goaOutages, b.faults.goaOutages);
    EXPECT_EQ(a.faults.recomputesSkipped,
              b.faults.recomputesSkipped);
    EXPECT_EQ(a.faults.soaCrashes, b.faults.soaCrashes);
    EXPECT_EQ(a.faults.telemetryDrops, b.faults.telemetryDrops);
    EXPECT_EQ(a.faults.telemetryRetries, b.faults.telemetryRetries);
    EXPECT_EQ(a.faults.budgetDrops, b.faults.budgetDrops);
    EXPECT_EQ(a.faults.budgetDelays, b.faults.budgetDelays);
    EXPECT_EQ(a.faults.budgetRejects, b.faults.budgetRejects);
    EXPECT_EQ(a.capEventsFaultAttributed,
              b.capEventsFaultAttributed);
    EXPECT_EQ(a.staleLeaseTicks, b.staleLeaseTicks);
    EXPECT_EQ(a.recoveries, b.recoveries);
    EXPECT_DOUBLE_EQ(a.meanRecoveryS, b.meanRecoveryS);
}

} // namespace

TEST(ChaosTraceSim, SurvivesMidEvaluationGoaOutage)
{
    const auto result = runTraceSim(chaosConfig());

    // The fault plan actually fired...
    EXPECT_GT(result.faults.goaOutages, 0u);
    EXPECT_GT(result.faults.recomputesSkipped, 0u);
    EXPECT_GT(result.faults.soaCrashes, 0u);
    // ...and the degraded paths were exercised: sOAs spent time on
    // stale leases (decayed budgets) instead of crashing or
    // overclocking unboundedly.
    EXPECT_GT(result.staleLeaseTicks, 0u);
    EXPECT_GT(result.recoveries, 0u);
    EXPECT_GT(result.meanRecoveryS, 0.0);

    // The run itself stays sane: activity happened, rates are
    // rates, and the rack limit was still enforced.
    EXPECT_GT(result.requests, 0u);
    EXPECT_GT(result.wantSteps, 0u);
    EXPECT_GE(result.successRate, 0.0);
    EXPECT_LE(result.successRate, 1.0);
    EXPECT_GT(result.meanRackUtil, 0.0);
    EXPECT_LT(result.meanRackUtil, 1.05);
    EXPECT_LE(result.capEventsFaultAttributed, result.capEvents);
}

TEST(ChaosTraceSim, MessageFaultCountersTrack)
{
    auto cfg = chaosConfig();
    const auto result = runTraceSim(cfg);
    // standardChaos loses/delays/corrupts messages at rates that a
    // week of three-hourly recomputes cannot miss.
    EXPECT_GT(result.faults.telemetryRetries, 0u);
    EXPECT_GT(result.faults.budgetDrops, 0u);
    EXPECT_GT(result.faults.budgetDelays, 0u);
    EXPECT_GT(result.faults.budgetRejects, 0u);
}

TEST(ChaosTraceSim, BitIdenticalAcrossThreadCountsAndReruns)
{
    auto cfg = chaosConfig();
    cfg.racks = 3;
    cfg.serversPerRack = 4;
    const auto run_with = [&cfg](int threads) {
        auto c = cfg;
        c.threads = threads;
        return runTraceSim(c);
    };
    const auto serial = run_with(1);
    const auto parallel = run_with(4);
    const auto again = run_with(1);
    expectIdentical(serial, parallel);
    expectIdentical(serial, again);
    // Sanity: this sweep injected faults, so the equality above
    // compared real fault traffic and not a disabled harness.
    EXPECT_GT(serial.faults.total(), 0u);
    EXPECT_GT(serial.staleLeaseTicks, 0u);
}

TEST(ChaosTraceSim, FaultFreeRunsReportZeroChaosMetrics)
{
    auto cfg = chaosConfig();
    cfg.faults = sim::FaultConfig{};
    const auto result = runTraceSim(cfg);
    EXPECT_EQ(result.faults.total(), 0u);
    EXPECT_EQ(result.faults.recomputesSkipped, 0u);
    EXPECT_EQ(result.capEventsFaultAttributed, 0u);
    EXPECT_EQ(result.staleLeaseTicks, 0u);
    EXPECT_EQ(result.recoveries, 0u);
    EXPECT_DOUBLE_EQ(result.meanRecoveryS, 0.0);
}

TEST(ChaosServiceSim, SurvivesCrashRestartStorm)
{
    ServiceSimConfig cfg;
    cfg.socialNetServers = 4;
    cfg.mlServers = 2;
    cfg.spareServers = 2;
    cfg.duration = 10 * sim::kMinute;
    cfg.warmup = 2 * sim::kMinute;
    cfg.goaPeriod = 2 * sim::kMinute;
    cfg.faults = sim::FaultConfig::standardChaos();
    // A ten-minute run is ~1/1000 of a week; scale the crash rate so
    // several sOAs actually restart mid-run.
    cfg.faults.soaCrashesPerServerWeek = 1500.0;
    cfg.faults.goaOutagesPerWeek = 400.0;
    cfg.faults.goaOutageMeanDuration = 3 * sim::kMinute;

    const auto result = runServiceSim(cfg);
    EXPECT_GT(result.faults.soaCrashes, 0u);
    EXPECT_GT(result.faults.total(), 0u);
    // The cluster still serves traffic end to end.
    EXPECT_GT(result.byClass[0].completed, 0u);
    EXPECT_GT(result.totalEnergyJ, soc::power::Joules{0.0});
}

TEST(ChaosServiceSim, DeterministicUnderFaults)
{
    ServiceSimConfig cfg;
    cfg.socialNetServers = 3;
    cfg.mlServers = 1;
    cfg.spareServers = 1;
    cfg.duration = 8 * sim::kMinute;
    cfg.warmup = 2 * sim::kMinute;
    cfg.goaPeriod = 2 * sim::kMinute;
    cfg.faults = sim::FaultConfig::standardChaos();
    cfg.faults.soaCrashesPerServerWeek = 1000.0;

    const auto a = runServiceSim(cfg);
    const auto b = runServiceSim(cfg);
    EXPECT_EQ(a.capEvents, b.capEvents);
    EXPECT_EQ(a.scaleOuts, b.scaleOuts);
    EXPECT_EQ(a.overclockStarts, b.overclockStarts);
    EXPECT_EQ(a.totalEnergyJ, b.totalEnergyJ);
    EXPECT_EQ(a.faults.soaCrashes, b.faults.soaCrashes);
    EXPECT_EQ(a.faults.budgetDrops, b.faults.budgetDrops);
    EXPECT_EQ(a.faults.budgetRejects, b.faults.budgetRejects);
}

TEST(ChaosValidation, TraceSimConfigRejectsNonsense)
{
    const auto expect_throws = [](auto mutate) {
        TraceSimConfig cfg;
        mutate(cfg);
        EXPECT_THROW(cfg.validate(), std::invalid_argument);
    };
    expect_throws([](TraceSimConfig &c) { c.racks = 0; });
    expect_throws([](TraceSimConfig &c) { c.serversPerRack = 0; });
    expect_throws([](TraceSimConfig &c) { c.limitFactor = 0.0; });
    expect_throws([](TraceSimConfig &c) { c.limitFactor = -1.0; });
    expect_throws([](TraceSimConfig &c) { c.controlStep = 0; });
    expect_throws([](TraceSimConfig &c) { c.warmup = -1; });
    expect_throws([](TraceSimConfig &c) {
        c.warmup = 0;
        c.duration = 0;
    });
    expect_throws([](TraceSimConfig &c) { c.recomputePeriod = 0; });
    expect_throws([](TraceSimConfig &c) {
        c.faults.telemetryLossProb = 2.0;
    });
    EXPECT_NO_THROW(TraceSimConfig{}.validate());

    // The entry point itself refuses to run a bad config.
    TraceSimConfig bad;
    bad.racks = 0;
    EXPECT_THROW(runTraceSim(bad), std::invalid_argument);
}

TEST(ChaosValidation, TraceSimValidationMessagesName)
{
    TraceSimConfig cfg;
    cfg.racks = -3;
    try {
        cfg.validate();
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument &error) {
        const std::string what = error.what();
        EXPECT_NE(what.find("TraceSimConfig"), std::string::npos)
            << what;
        EXPECT_NE(what.find("racks"), std::string::npos) << what;
    }
}

TEST(ChaosValidation, ServiceSimConfigRejectsNonsense)
{
    const auto expect_throws = [](auto mutate) {
        ServiceSimConfig cfg;
        mutate(cfg);
        EXPECT_THROW(cfg.validate(), std::invalid_argument);
    };
    expect_throws(
        [](ServiceSimConfig &c) { c.socialNetServers = 0; });
    expect_throws([](ServiceSimConfig &c) { c.mlServers = -1; });
    expect_throws([](ServiceSimConfig &c) { c.spareServers = -2; });
    expect_throws([](ServiceSimConfig &c) {
        c.warmup = c.duration; // nothing left to evaluate
    });
    expect_throws([](ServiceSimConfig &c) { c.controlPeriod = 0; });
    expect_throws([](ServiceSimConfig &c) { c.pollPeriod = 0; });
    expect_throws([](ServiceSimConfig &c) { c.goaPeriod = 0; });
    expect_throws(
        [](ServiceSimConfig &c) { c.rackLimitFactor = 0.0; });
    expect_throws([](ServiceSimConfig &c) { c.maxInstances = 0; });
    expect_throws([](ServiceSimConfig &c) {
        c.faults.budgetLossProb = -0.5;
    });
    EXPECT_NO_THROW(ServiceSimConfig{}.validate());

    ServiceSimConfig bad;
    bad.maxInstances = 0;
    EXPECT_THROW(runServiceSim(bad), std::invalid_argument);
}
