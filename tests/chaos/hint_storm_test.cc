/**
 * @file
 * Hint-storm chaos tests: the adversarial generator catalog poured
 * into the cluster simulators' ingestion boundary.  Acceptance
 * checks: a standard storm never corrupts a run (every malformed
 * class rejected with an attributed counter), the drop policy and
 * flap hysteresis actually engage, storms compose with gOA outages
 * and sOA crash-restarts, and everything stays bit-identical across
 * thread counts and reruns.
 */

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "cluster/service_sim.hh"
#include "cluster/trace_sim.hh"
#include "sim/hint_storm.hh"

using namespace soc;
using namespace soc::cluster;
using core::wire::Reject;
using sim::HintStormConfig;
using sim::HintStormGenerator;
using sim::StormKind;

namespace
{

/** A one-rack run under the standard mixed storm, sized so every
 *  rejection and drop path fires within two simulated days. */
TraceSimConfig
stormConfig()
{
    TraceSimConfig cfg;
    cfg.racks = 1;
    cfg.serversPerRack = 8;
    cfg.warmup = sim::kDay;
    cfg.duration = sim::kDay;
    cfg.controlStep = 60 * sim::kSecond;
    cfg.seed = 202;
    cfg.ingress.enabled = true;
    // Small enough that the flood overflows it every step.
    cfg.ingress.queueCapacity = 64;
    cfg.ingress.maxHintAge = sim::kHour;
    cfg.ingress.flapHoldoff = 10 * sim::kMinute;
    cfg.storm = HintStormConfig::standardStorm();
    // Rate 2 makes each step emit full stop/start flap pairs.
    cfg.storm.flapsPerStep = 2.0;
    return cfg;
}

void
expectIngressIdentical(const core::IngressStats &a,
                       const core::IngressStats &b)
{
    EXPECT_EQ(a.offered, b.offered);
    EXPECT_EQ(a.accepted, b.accepted);
    EXPECT_EQ(a.parseRejects, b.parseRejects);
    for (std::size_t i = 0; i < a.rejectsByReason.size(); ++i)
        EXPECT_EQ(a.rejectsByReason[i], b.rejectsByReason[i])
            << core::wire::rejectName(static_cast<Reject>(i));
    EXPECT_EQ(a.duplicates, b.duplicates);
    EXPECT_EQ(a.overflowEvictions, b.overflowEvictions);
    EXPECT_EQ(a.overflowSuperseded, b.overflowSuperseded);
    EXPECT_EQ(a.sinkDrops, b.sinkDrops);
    EXPECT_EQ(a.drained, b.drained);
    EXPECT_EQ(a.maxDepth, b.maxDepth);
}

} // namespace

TEST(HintStormGenerator, DeterministicAndSeedSeparated)
{
    const auto cfg = HintStormConfig::standardStorm();
    const HintStormGenerator a(cfg, /*seed=*/9, /*rack=*/1, 4, 8);
    const HintStormGenerator b(cfg, 9, 1, 4, 8);
    const HintStormGenerator other_rack(cfg, 9, 2, 4, 8);

    const auto collect = [](const HintStormGenerator &g) {
        std::vector<std::vector<std::uint8_t>> frames;
        for (int server = 0; server < 4; ++server)
            for (sim::Tick t = 0; t < 5 * sim::kMinute;
                 t += sim::kMinute)
                g.generate(server, t,
                           [&](const core::wire::Frame &f) {
                               frames.emplace_back(
                                   f.bytes.begin(),
                                   f.bytes.begin() +
                                       static_cast<std::ptrdiff_t>(
                                           f.size));
                           });
        return frames;
    };

    const auto fa = collect(a);
    EXPECT_FALSE(fa.empty());
    EXPECT_EQ(fa, collect(b));
    EXPECT_NE(fa, collect(other_rack));
}

TEST(HintStormGenerator, FloodFramesAreWellFormed)
{
    // The flood attacks capacity, not the parser: every frame must
    // parse clean so it reaches the queue.
    const auto cfg = HintStormConfig::only(StormKind::HintFlood, 3.0);
    const HintStormGenerator g(cfg, 1, 0, 2, 8);
    std::size_t n = 0;
    g.generate(0, sim::kMinute, [&](const core::wire::Frame &f) {
        core::wire::ParsedHint out;
        EXPECT_EQ(core::wire::parseFrame(f.data(), f.size,
                                         core::wire::WireLimits{},
                                         out),
                  Reject::None);
        EXPECT_EQ(out.kind, core::wire::HintKind::OverclockRequest);
        ++n;
    });
    EXPECT_EQ(n, 3u);
}

TEST(HintStormGenerator, MalformedFramesAllRejected)
{
    // Long enough that the hash covers the whole corpus: every
    // frame must be rejected, across at least five distinct classes.
    const auto cfg =
        HintStormConfig::only(StormKind::MalformedFuzz, 4.0);
    const HintStormGenerator g(cfg, 3, 0, 2, 8);
    std::array<std::uint64_t, core::wire::kRejectReasons> seen{};
    for (sim::Tick t = 0; t < sim::kHour; t += sim::kMinute) {
        g.generate(0, t, [&](const core::wire::Frame &f) {
            core::wire::ParsedHint out;
            const Reject r = core::wire::parseFrame(
                f.data(), f.size, core::wire::WireLimits{}, out);
            EXPECT_NE(r, Reject::None);
            ++seen[static_cast<std::size_t>(r)];
        });
    }
    int classes = 0;
    for (std::size_t i = 1; i < seen.size(); ++i)
        classes += seen[i] > 0 ? 1 : 0;
    EXPECT_GE(classes, 5);
}

TEST(HintStormConfigValidation, RejectsNonsense)
{
    HintStormConfig bad;
    bad.floodPerStep = -1.0;
    EXPECT_THROW(bad.validate(), std::invalid_argument);
    bad = HintStormConfig{};
    bad.staleAge = 0;
    EXPECT_THROW(bad.validate(), std::invalid_argument);

    // A storm without an ingress has no channel to attack.
    TraceSimConfig cfg;
    cfg.storm = HintStormConfig::standardStorm();
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
    ServiceSimConfig svc;
    svc.storm = HintStormConfig::standardStorm();
    EXPECT_THROW(svc.validate(), std::invalid_argument);
}

TEST(HintStormConfigValidation, CatalogIsNamed)
{
    for (std::size_t i = 0; i < sim::kStormKinds; ++i) {
        EXPECT_STRNE(sim::stormCatalog()[i].name, "");
        EXPECT_STRNE(sim::stormCatalog()[i].attacks, "");
    }
}

TEST(ChaosHintStorm, TraceSimSurvivesStandardStorm)
{
    const auto result = runTraceSim(stormConfig());
    const auto &in = result.ingress;

    // The storm actually hit the boundary...
    EXPECT_GT(in.offered, 0u);
    EXPECT_GT(in.accepted, 0u);
    EXPECT_GT(in.parseRejects, 0u);
    // ...and every corruption class was rejected with its own
    // attributed counter (None is index 0).
    for (std::size_t i = 1; i < in.rejectsByReason.size(); ++i)
        EXPECT_GT(in.rejectsByReason[i], 0u)
            << core::wire::rejectName(static_cast<Reject>(i));
    // Dedup, the bounded queue's drop policy, and the sOA flap
    // hysteresis all engaged.
    EXPECT_GT(in.duplicates, 0u);
    EXPECT_GT(in.overflowEvictions, 0u);
    EXPECT_GT(in.overflowSuperseded, 0u);
    EXPECT_GT(result.flapDenied, 0u);
    // The queue never grew past its bound.
    EXPECT_LE(in.maxDepth, stormConfig().ingress.queueCapacity);
    // Accounting closes: accepted hints are either dispatched,
    // evicted, or still queued at the end (< one step's worth).
    EXPECT_LE(in.drained + in.overflowEvictions, in.accepted);

    // And the run itself stayed sane under fire.
    EXPECT_GT(result.requests, 0u);
    EXPECT_GE(result.successRate, 0.0);
    EXPECT_LE(result.successRate, 1.0);
    EXPECT_GT(result.meanRackUtil, 0.0);
    EXPECT_LT(result.meanRackUtil, 1.05);
}

TEST(ChaosHintStorm, StormFreeIngressMatchesCounters)
{
    // Ingress on, storm off: only legitimate hints flow, so nothing
    // is rejected and nothing is dropped.
    auto cfg = stormConfig();
    cfg.storm = HintStormConfig{};
    cfg.ingress.queueCapacity = 4096;
    const auto result = runTraceSim(cfg);
    const auto &in = result.ingress;
    EXPECT_GT(in.offered, 0u);
    EXPECT_EQ(in.parseRejects, 0u);
    EXPECT_EQ(in.duplicates, 0u);
    EXPECT_EQ(in.overflowEvictions, 0u);
    EXPECT_EQ(in.offered, in.accepted);
}

TEST(ChaosHintStorm, StormDuringGoaOutageAndSoaCrashes)
{
    // Compose the storm with the fault harness: gOA outages (stale
    // leases mid-storm) and sOA crash-restarts (ingress keeps
    // dispatching to restarted agents).
    auto cfg = stormConfig();
    cfg.recomputePeriod = 3 * sim::kHour;
    cfg.faults = sim::FaultConfig::standardChaos();
    cfg.faults.goaOutagesPerWeek = 60.0;
    cfg.faults.goaOutageMeanDuration = 6 * sim::kHour;
    cfg.faults.soaCrashesPerServerWeek = 20.0;

    const auto result = runTraceSim(cfg);
    EXPECT_GT(result.faults.goaOutages, 0u);
    EXPECT_GT(result.faults.soaCrashes, 0u);
    EXPECT_GT(result.ingress.offered, 0u);
    EXPECT_GT(result.ingress.parseRejects, 0u);
    // Degraded budgets + storm pressure never broke the rack cap
    // accounting or the hint counters.
    EXPECT_GT(result.staleLeaseTicks, 0u);
    EXPECT_GE(result.successRate, 0.0);
    EXPECT_LE(result.successRate, 1.0);
    EXPECT_LT(result.meanRackUtil, 1.05);
}

TEST(ChaosHintStorm, BitIdenticalAcrossThreadCountsAndReruns)
{
    auto cfg = stormConfig();
    cfg.racks = 3;
    cfg.serversPerRack = 4;
    // Fewer servers per rack offer less per step; shrink the queue
    // so the overflow drop policy still engages.
    cfg.ingress.queueCapacity = 16;
    cfg.faults = sim::FaultConfig::standardChaos();
    const auto run_with = [&cfg](int threads) {
        auto c = cfg;
        c.threads = threads;
        return runTraceSim(c);
    };
    const auto serial = run_with(1);
    const auto two = run_with(2);
    const auto eight = run_with(8);
    const auto again = run_with(1);

    for (const auto *other : {&two, &eight, &again}) {
        EXPECT_EQ(serial.capEvents, other->capEvents);
        EXPECT_EQ(serial.requests, other->requests);
        EXPECT_EQ(serial.wantSteps, other->wantSteps);
        EXPECT_EQ(serial.successSteps, other->successSteps);
        EXPECT_EQ(serial.energyJoules, other->energyJoules);
        EXPECT_EQ(serial.flapDenied, other->flapDenied);
        expectIngressIdentical(serial.ingress, other->ingress);
    }
    // The comparison above covered real storm traffic.
    EXPECT_GT(serial.ingress.parseRejects, 0u);
    EXPECT_GT(serial.ingress.overflowEvictions, 0u);
}

TEST(ChaosHintStorm, ServiceSimStormShieldedAndDeterministic)
{
    ServiceSimConfig cfg;
    cfg.socialNetServers = 4;
    cfg.mlServers = 2;
    cfg.spareServers = 2;
    cfg.duration = 10 * sim::kMinute;
    cfg.warmup = 2 * sim::kMinute;
    cfg.goaPeriod = 2 * sim::kMinute;
    cfg.ingress.enabled = true;
    cfg.ingress.maxHintAge = sim::kHour;
    cfg.storm = HintStormConfig::standardStorm();

    const auto a = runServiceSim(cfg);
    // The storm reached the boundary and died there: lying/stale/
    // malformed telemetry was rejected at the ingress, so the WI
    // agents' own fail-closed check never saw a bad window.
    EXPECT_GT(a.ingress.offered, 0u);
    EXPECT_GT(a.ingress.parseRejects, 0u);
    EXPECT_GT(a.ingress.rejectsByReason[static_cast<std::size_t>(
                  Reject::NonFinite)],
              0u);
    EXPECT_EQ(a.rejectedMetrics, 0u);
    // The cluster still served traffic end to end.
    EXPECT_GT(a.byClass[0].completed, 0u);
    EXPECT_GT(a.totalEnergyJ, soc::power::Joules{0.0});

    const auto b = runServiceSim(cfg);
    EXPECT_EQ(a.capEvents, b.capEvents);
    EXPECT_EQ(a.scaleOuts, b.scaleOuts);
    EXPECT_EQ(a.overclockStarts, b.overclockStarts);
    EXPECT_EQ(a.totalEnergyJ, b.totalEnergyJ);
    expectIngressIdentical(a.ingress, b.ingress);
}

TEST(ChaosHintStorm, DisabledIngressKeepsSeedBehavior)
{
    // The ingress is strictly opt-in: with it off, results must be
    // bit-identical to the seed direct-call path, and all ingestion
    // counters must stay zero.
    TraceSimConfig cfg;
    cfg.racks = 1;
    cfg.serversPerRack = 4;
    cfg.warmup = sim::kDay;
    cfg.duration = sim::kDay;
    cfg.controlStep = 60 * sim::kSecond;
    const auto off = runTraceSim(cfg);
    EXPECT_EQ(off.ingress.offered, 0u);
    EXPECT_EQ(off.ingress.accepted, 0u);
    EXPECT_EQ(off.flapDenied, 0u);
}
