/** @file Determinism and schedule tests for the fault injector. */

#include <gtest/gtest.h>

#include <stdexcept>

#include "sim/fault_injector.hh"

using namespace soc;
using sim::FaultConfig;
using sim::FaultPlan;
using sim::kDay;
using sim::kHour;
using sim::kMinute;
using sim::kWeek;
using sim::Tick;

namespace
{

FaultConfig
busyConfig()
{
    FaultConfig config;
    config.enabled = true;
    config.goaOutagesPerWeek = 6.0;
    config.goaOutageMeanDuration = 4 * kHour;
    config.soaCrashesPerServerWeek = 3.0;
    config.telemetryLossProb = 0.3;
    config.budgetLossProb = 0.2;
    config.budgetDelayProb = 0.3;
    config.budgetCorruptProb = 0.1;
    config.sensorNoiseStd = 0.05;
    config.sensorBias = 0.02;
    return config;
}

} // namespace

TEST(FaultPlan, DefaultConstructedIsInert)
{
    const FaultPlan plan;
    EXPECT_FALSE(plan.enabled());
    EXPECT_TRUE(plan.outages().empty());
    EXPECT_TRUE(plan.crashes().empty());
    for (Tick t = 0; t < kWeek; t += 7 * kHour) {
        EXPECT_FALSE(plan.goaDown(t));
        EXPECT_FALSE(plan.telemetryLost(0, t, 0));
        EXPECT_FALSE(plan.budgetLost(3, t));
        EXPECT_FALSE(plan.budgetCorrupted(1, t));
        EXPECT_EQ(plan.budgetDelay(2, t), 0);
        EXPECT_DOUBLE_EQ(plan.sensorFactor(0, t), 1.0);
    }
}

TEST(FaultConfig, ValidateRejectsBadKnobs)
{
    FaultConfig bad = busyConfig();
    bad.telemetryLossProb = 1.5;
    EXPECT_THROW(bad.validate(), std::invalid_argument);

    bad = busyConfig();
    bad.goaOutagesPerWeek = -1.0;
    EXPECT_THROW(bad.validate(), std::invalid_argument);

    bad = busyConfig();
    bad.telemetryAttempts = 0;
    EXPECT_THROW(bad.validate(), std::invalid_argument);

    bad = busyConfig();
    bad.goaOutageMeanDuration = -kMinute;
    EXPECT_THROW(bad.validate(), std::invalid_argument);

    bad = busyConfig();
    bad.budgetDelayMax = -1;
    EXPECT_THROW(bad.validate(), std::invalid_argument);

    bad = busyConfig();
    bad.sensorNoiseStd = -0.1;
    EXPECT_THROW(bad.validate(), std::invalid_argument);

    EXPECT_NO_THROW(busyConfig().validate());
    EXPECT_NO_THROW(FaultConfig{}.validate());
    EXPECT_NO_THROW(FaultConfig::standardChaos().validate());
}

TEST(FaultPlan, GenerateIsDeterministic)
{
    const FaultConfig config = busyConfig();
    const FaultPlan a =
        FaultPlan::generate(config, 42, 3, 16, 2 * kWeek);
    const FaultPlan b =
        FaultPlan::generate(config, 42, 3, 16, 2 * kWeek);

    ASSERT_EQ(a.outages().size(), b.outages().size());
    for (std::size_t i = 0; i < a.outages().size(); ++i) {
        EXPECT_EQ(a.outages()[i].start, b.outages()[i].start);
        EXPECT_EQ(a.outages()[i].end, b.outages()[i].end);
    }
    ASSERT_EQ(a.crashes().size(), b.crashes().size());
    for (std::size_t i = 0; i < a.crashes().size(); ++i) {
        EXPECT_EQ(a.crashes()[i].server, b.crashes()[i].server);
        EXPECT_EQ(a.crashes()[i].at, b.crashes()[i].at);
    }
}

TEST(FaultPlan, PerEventDecisionsAreCallOrderIndependent)
{
    const FaultConfig config = busyConfig();
    const FaultPlan a =
        FaultPlan::generate(config, 7, 0, 8, kWeek);
    const FaultPlan b =
        FaultPlan::generate(config, 7, 0, 8, kWeek);

    // Query b in reverse order, and with interleaved unrelated
    // queries: stateless hashes must not care.
    for (int s = 7; s >= 0; --s) {
        for (Tick t = kWeek - kHour; t >= 0; t -= 13 * kHour) {
            (void)b.budgetLost((s + 3) % 8, t / 2);
            (void)b.sensorFactor(s, t + kMinute);
            EXPECT_EQ(a.telemetryLost(s, t, 1),
                      b.telemetryLost(s, t, 1));
            EXPECT_EQ(a.budgetLost(s, t), b.budgetLost(s, t));
            EXPECT_EQ(a.budgetDelay(s, t), b.budgetDelay(s, t));
            EXPECT_EQ(a.budgetCorrupted(s, t),
                      b.budgetCorrupted(s, t));
            EXPECT_DOUBLE_EQ(a.sensorFactor(s, t),
                             b.sensorFactor(s, t));
        }
    }
}

TEST(FaultPlan, AdjacentRacksGetIndependentSchedules)
{
    const FaultConfig config = busyConfig();
    const FaultPlan r0 =
        FaultPlan::generate(config, 42, 0, 16, 2 * kWeek);
    const FaultPlan r1 =
        FaultPlan::generate(config, 42, 1, 16, 2 * kWeek);

    // With these rates both racks draw several events; identical
    // schedules would mean the streams are correlated.
    bool differs = r0.outages().size() != r1.outages().size() ||
        r0.crashes().size() != r1.crashes().size();
    for (std::size_t i = 0;
         !differs &&
         i < std::min(r0.outages().size(), r1.outages().size());
         ++i) {
        differs = r0.outages()[i].start != r1.outages()[i].start;
    }
    int decision_diffs = 0;
    for (int s = 0; s < 16; ++s) {
        for (Tick t = 0; t < 2 * kWeek; t += 5 * kHour) {
            if (r0.budgetLost(s, t) != r1.budgetLost(s, t))
                ++decision_diffs;
        }
    }
    EXPECT_TRUE(differs || decision_diffs > 0);
    EXPECT_GT(decision_diffs, 0);
}

TEST(FaultPlan, OutagesSortedMergedAndInRange)
{
    const FaultConfig config = busyConfig();
    const FaultPlan plan =
        FaultPlan::generate(config, 5, 2, 8, 4 * kWeek);
    ASSERT_FALSE(plan.outages().empty());
    Tick prev_end = -1;
    for (const auto &outage : plan.outages()) {
        EXPECT_LT(outage.start, outage.end);
        EXPECT_GE(outage.start, 0);
        EXPECT_LT(outage.start, 4 * kWeek);
        // Sorted and non-overlapping after merging.
        EXPECT_GT(outage.start, prev_end);
        prev_end = outage.end;
    }
}

TEST(FaultPlan, GoaDownMatchesOutageWindows)
{
    const FaultConfig config = busyConfig();
    const FaultPlan plan =
        FaultPlan::generate(config, 5, 2, 8, 4 * kWeek);
    ASSERT_FALSE(plan.outages().empty());
    for (const auto &outage : plan.outages()) {
        EXPECT_TRUE(plan.goaDown(outage.start));
        EXPECT_TRUE(plan.goaDown(outage.end - 1));
        EXPECT_FALSE(plan.goaDown(outage.end));
    }
    EXPECT_FALSE(plan.goaDown(plan.outages().front().start - 1));
}

TEST(FaultPlan, CrashesSortedByTime)
{
    const FaultConfig config = busyConfig();
    const FaultPlan plan =
        FaultPlan::generate(config, 9, 0, 24, 2 * kWeek);
    ASSERT_FALSE(plan.crashes().empty());
    for (std::size_t i = 1; i < plan.crashes().size(); ++i)
        EXPECT_LE(plan.crashes()[i - 1].at, plan.crashes()[i].at);
    for (const auto &crash : plan.crashes()) {
        EXPECT_GE(crash.server, 0);
        EXPECT_LT(crash.server, 24);
        EXPECT_GE(crash.at, 0);
        EXPECT_LT(crash.at, 2 * kWeek);
    }
}

TEST(FaultPlan, SensorFactorCentersOnOnePlusBias)
{
    const FaultConfig config = busyConfig();
    const FaultPlan plan =
        FaultPlan::generate(config, 3, 0, 4, kWeek);
    double sum = 0.0;
    int n = 0;
    for (int s = 0; s < 4; ++s) {
        for (Tick t = 0; t < kWeek; t += 3 * kMinute) {
            const double factor = plan.sensorFactor(s, t);
            EXPECT_GE(factor, 0.05);
            sum += factor;
            ++n;
        }
    }
    const double mean = sum / n;
    EXPECT_NEAR(mean, 1.0 + config.sensorBias, 0.01);
}

TEST(FaultPlan, CorruptionKindsCoverAllThree)
{
    FaultConfig config = busyConfig();
    config.budgetCorruptProb = 1.0;
    const FaultPlan plan =
        FaultPlan::generate(config, 11, 0, 8, kWeek);
    bool seen[3] = {false, false, false};
    for (int s = 0; s < 8; ++s) {
        for (Tick t = 0; t < kWeek; t += kHour) {
            ASSERT_TRUE(plan.budgetCorrupted(s, t));
            const int kind = plan.corruptionKind(s, t);
            ASSERT_GE(kind, 0);
            ASSERT_LE(kind, 2);
            seen[kind] = true;
        }
    }
    EXPECT_TRUE(seen[0] && seen[1] && seen[2]);
}

TEST(FaultStats, MergeAddsFieldwise)
{
    sim::FaultStats a;
    a.goaOutages = 1;
    a.soaCrashes = 2;
    a.budgetDrops = 3;
    sim::FaultStats b;
    b.goaOutages = 10;
    b.telemetryRetries = 4;
    b.budgetRejects = 5;
    a.merge(b);
    EXPECT_EQ(a.goaOutages, 11u);
    EXPECT_EQ(a.soaCrashes, 2u);
    EXPECT_EQ(a.budgetDrops, 3u);
    EXPECT_EQ(a.telemetryRetries, 4u);
    EXPECT_EQ(a.budgetRejects, 5u);
    EXPECT_EQ(a.total(), 11u + 2u + 3u + 5u);
}
