/**
 * @file
 * Degraded-mode agent behavior: budget-assignment validation,
 * lease decay toward the safe floor, crash-restart with wear
 * recovery from the journal, gOA registration preconditions, and
 * the gOA's telemetry-retry / delivery-fault paths.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>
#include <stdexcept>

#include "core/goa.hh"
#include "core/soa.hh"

using namespace soc;
using namespace soc::core;
using sim::kHour;
using sim::kMinute;
using sim::kSecond;
using sim::Tick;

namespace
{

const power::PowerModel &
model()
{
    static const power::PowerModel instance;
    return instance;
}

struct Fixture {
    power::Rack rack{0, power::Watts{2000.0}};
    power::Server *server;
    std::unique_ptr<ServerOverclockingAgent> soa;
    power::GroupId vm;

    explicit Fixture(SoaConfig cfg = {}, double util = 0.6)
    {
        server = &rack.addServer(&model());
        vm = server->addGroup(8, util, power::kTurboMHz, 1);
        soa = std::make_unique<ServerOverclockingAgent>(
            *server, cfg, &rack);
    }

    OverclockRequest
    makeRequest(Tick duration = 20 * kMinute) const
    {
        OverclockRequest r;
        r.groupId = vm;
        r.cores = 8;
        r.desiredMHz = power::kOverclockMHz;
        r.trigger = TriggerKind::Metrics;
        r.duration = duration;
        r.priority = 1;
        return r;
    }

    void
    run(Tick from, Tick to, Tick step = 5 * kSecond)
    {
        for (Tick t = from; t <= to; t += step)
            soa->tick(t);
    }
};

BudgetAssignment
assignment(double watts, Tick issued = 0, Tick lease = 0,
           double rack_limit = 2000.0)
{
    BudgetAssignment out;
    out.budget = ProfileTemplate::flat(watts);
    out.issuedAt = issued;
    out.leaseUntil = lease;
    out.rackLimitWatts = power::Watts{rack_limit};
    return out;
}

} // namespace

TEST(BudgetValidation, AcceptsFiniteInRangeBudget)
{
    Fixture fx;
    EXPECT_TRUE(fx.soa->assignBudget(assignment(300.0), 10));
    EXPECT_EQ(fx.soa->stats().budgetAssignments, 1u);
    EXPECT_EQ(fx.soa->stats().budgetRejects, 0u);
    EXPECT_TRUE(fx.soa->lastBudgetReject().empty());
    EXPECT_EQ(fx.soa->lastAssignmentAt(), 10);
    EXPECT_DOUBLE_EQ(fx.soa->budgetWatts(10).count(), 300.0);
}

TEST(BudgetValidation, RejectsNaNKeepingPreviousBudget)
{
    Fixture fx;
    ASSERT_TRUE(fx.soa->assignBudget(assignment(300.0), 0));
    EXPECT_FALSE(fx.soa->assignBudget(
        assignment(std::numeric_limits<double>::quiet_NaN()), 5));
    EXPECT_EQ(fx.soa->stats().budgetRejects, 1u);
    EXPECT_EQ(fx.soa->lastBudgetReject(), "budget not finite");
    // The poisoned payload did not displace the previous budget.
    EXPECT_DOUBLE_EQ(fx.soa->budgetWatts(5).count(), 300.0);
    EXPECT_EQ(fx.soa->lastAssignmentAt(), 0);
}

TEST(BudgetValidation, RejectsNegative)
{
    Fixture fx;
    EXPECT_FALSE(fx.soa->assignBudget(assignment(-50.0), 0));
    EXPECT_EQ(fx.soa->lastBudgetReject(), "budget negative");
    EXPECT_EQ(fx.soa->stats().budgetRejects, 1u);
}

TEST(BudgetValidation, RejectsBudgetAboveRackLimit)
{
    Fixture fx;
    EXPECT_FALSE(fx.soa->assignBudget(assignment(4000.0), 0));
    EXPECT_EQ(fx.soa->lastBudgetReject(),
              "budget exceeds rack limit");
    // A sender that does not declare its limit cannot be checked
    // against it; the assignment passes the remaining checks.
    EXPECT_TRUE(fx.soa->assignBudget(
        assignment(4000.0, 0, 0, /*rack_limit=*/0.0), 0));
}

TEST(BudgetValidation, RejectsLeaseExpiringBeforeIssue)
{
    Fixture fx;
    EXPECT_FALSE(fx.soa->assignBudget(
        assignment(300.0, /*issued=*/kHour, /*lease=*/kMinute), kHour));
    EXPECT_EQ(fx.soa->lastBudgetReject(),
              "lease expires before issue time");
}

TEST(Lease, LeaselessAssignmentsNeverGoStale)
{
    Fixture fx;
    fx.soa->assignBudget(ProfileTemplate::flat(400.0));
    EXPECT_FALSE(fx.soa->leaseStale(100 * sim::kWeek));
    ASSERT_TRUE(fx.soa->assignBudget(assignment(400.0), 0));
    EXPECT_FALSE(fx.soa->leaseStale(100 * sim::kWeek));
}

TEST(Lease, StaleBudgetDecaysLinearlyToSafeFloor)
{
    SoaConfig cfg;
    cfg.staleDecayTime = 10 * kMinute;
    Fixture fx(cfg);
    fx.soa->setSafeBudgetWatts(power::Watts{100.0});
    const Tick lease = kHour;
    ASSERT_TRUE(fx.soa->assignBudget(
        assignment(400.0, 0, lease), 0));

    EXPECT_FALSE(fx.soa->leaseStale(lease));
    EXPECT_DOUBLE_EQ(fx.soa->budgetWatts(lease).count(), 400.0);

    EXPECT_TRUE(fx.soa->leaseStale(lease + 1));
    EXPECT_DOUBLE_EQ(
        fx.soa->budgetWatts(lease + 5 * kMinute).count(), 250.0);
    EXPECT_DOUBLE_EQ(
        fx.soa->budgetWatts(lease + 10 * kMinute).count(), 100.0);
    // Fully decayed: it never dips below the safe floor.
    EXPECT_DOUBLE_EQ(fx.soa->budgetWatts(lease + kHour).count(),
                     100.0);
}

TEST(Lease, DecayNeverRaisesABudgetBelowTheFloor)
{
    SoaConfig cfg;
    cfg.staleDecayTime = 10 * kMinute;
    Fixture fx(cfg);
    fx.soa->setSafeBudgetWatts(power::Watts{300.0});
    // Assigned budget already below the safe floor: decaying
    // "toward the floor" must not grant power the gOA never gave.
    ASSERT_TRUE(fx.soa->assignBudget(
        assignment(200.0, 0, kHour), 0));
    EXPECT_DOUBLE_EQ(
        fx.soa->budgetWatts(kHour + 5 * kMinute).count(), 200.0);
    EXPECT_DOUBLE_EQ(fx.soa->budgetWatts(kHour + kHour).count(),
                     200.0);
}

TEST(Lease, StaleLeaseFreezesExplorationAndCountsTicks)
{
    SoaConfig cfg;
    cfg.warningWindow = 10 * kSecond;
    Fixture fx(cfg, 0.9);
    fx.soa->setSafeBudgetWatts(power::Watts{100.0});
    const double draw = fx.server->powerWatts().count();
    const Tick lease = 5 * kMinute;
    ASSERT_TRUE(fx.soa->assignBudget(
        assignment(draw + 1.0, 0, lease), 0));

    // Denied for power -> the agent explores and grows a bonus.
    ASSERT_FALSE(
        fx.soa->requestOverclock(fx.makeRequest(), 0).granted);
    fx.run(0, kMinute);
    ASSERT_GT(fx.soa->explorationBonus(), power::Watts{0.0});

    // Once the lease goes stale the bonus is surrendered and no new
    // exploration starts while degraded.
    fx.run(lease + 5 * kSecond, lease + 2 * kMinute);
    EXPECT_DOUBLE_EQ(fx.soa->explorationBonus().count(), 0.0);
    EXPECT_GT(fx.soa->stats().staleLeaseTicks, 0u);
}

TEST(CrashRestart, RevokesGrantsAndResetsVolatileState)
{
    Fixture fx;
    fx.soa->setSafeBudgetWatts(power::Watts{150.0});
    fx.soa->assignBudget(ProfileTemplate::flat(500.0));
    ASSERT_TRUE(
        fx.soa->requestOverclock(fx.makeRequest(), 0).granted);
    fx.run(0, 10 * kMinute);
    ASSERT_EQ(fx.soa->activeOverclocks(), 1u);

    fx.soa->crashRestart(10 * kMinute + kSecond);

    EXPECT_EQ(fx.soa->activeOverclocks(), 0u);
    EXPECT_DOUBLE_EQ(fx.soa->explorationBonus().count(), 0.0);
    EXPECT_EQ(fx.soa->stats().crashRestarts, 1u);
    EXPECT_EQ(fx.soa->lastAssignmentAt(), -1);
    // The in-memory assignment is gone: the agent runs on the safe
    // floor until the gOA pushes again.
    EXPECT_DOUBLE_EQ(
        fx.soa->budgetWatts(10 * kMinute + kSecond).count(), 150.0);
    // The watchdog dropped the group back to turbo.
    const auto *group = fx.server->group(fx.vm);
    ASSERT_NE(group, nullptr);
    EXPECT_EQ(group->targetMHz, power::kTurboMHz);
}

TEST(CrashRestart, WearSurvivesViaJournal)
{
    Fixture fx;
    fx.soa->assignBudget(ProfileTemplate::flat(500.0));
    ASSERT_TRUE(
        fx.soa->requestOverclock(fx.makeRequest(), 0).granted);
    fx.run(0, 10 * kMinute);

    const Tick crash_at = 10 * kMinute + kSecond;
    fx.soa->crashRestart(crash_at);

    const Tick journaled = fx.soa->wearJournal().totalCoreTime();
    EXPECT_GT(journaled, 0);
    // The rebuilt budget charges everything the journal recorded —
    // a crash cannot launder consumed lifetime.
    EXPECT_EQ(fx.soa->lifetimeBudget().totalConsumed(), journaled);
    EXPECT_EQ(fx.soa->lifetimeRemaining(crash_at),
              fx.soa->lifetimeBudget().allowancePerEpoch() -
                  journaled);
}

TEST(CrashRestart, RepeatedCrashesKeepAccumulatingWear)
{
    Fixture fx;
    fx.soa->assignBudget(ProfileTemplate::flat(500.0));
    ASSERT_TRUE(
        fx.soa->requestOverclock(fx.makeRequest(), 0).granted);
    fx.run(0, 5 * kMinute);
    fx.soa->crashRestart(5 * kMinute + kSecond);
    const Tick after_first = fx.soa->wearJournal().totalCoreTime();
    ASSERT_GT(after_first, 0);

    fx.soa->assignBudget(ProfileTemplate::flat(500.0));
    ASSERT_TRUE(fx.soa
                    ->requestOverclock(fx.makeRequest(),
                                       6 * kMinute)
                    .granted);
    fx.run(6 * kMinute, 11 * kMinute);
    fx.soa->crashRestart(11 * kMinute + kSecond);

    const Tick after_second = fx.soa->wearJournal().totalCoreTime();
    EXPECT_GT(after_second, after_first);
    EXPECT_EQ(fx.soa->lifetimeBudget().totalConsumed(),
              after_second);
    EXPECT_EQ(fx.soa->stats().crashRestarts, 2u);
}

TEST(WearJournal, ReplayReproducesCarryOverTrajectory)
{
    const Tick epoch = 1000;
    OverclockBudget live(epoch, 0.5, 2, 1.0);
    WearJournal journal(2, epoch);

    auto spend = [&](int core, Tick amount, Tick at) {
        live.consume(amount, at);
        journal.append(core, amount, at);
    };
    spend(0, 300, 100);
    spend(1, 400, 500);
    spend(0, 900, 1100);  // epoch 1, after carry-over
    spend(1, 100, 3200);  // epoch 3, two rolls in between

    OverclockBudget rebuilt(epoch, 0.5, 2, 1.0);
    std::vector<Tick> used(2, 0);
    journal.replay(rebuilt, used, 3200);

    EXPECT_EQ(rebuilt.remaining(3200), live.remaining(3200));
    EXPECT_EQ(rebuilt.totalConsumed(), live.totalConsumed());
    EXPECT_EQ(rebuilt.overdraft(), live.overdraft());
    // Per-core usage of the epoch containing `now` survives...
    EXPECT_EQ(used[0], 0);
    EXPECT_EQ(used[1], 100);

    // ...and reads as zero when the crash happens in a later epoch
    // than the last journaled activity.
    OverclockBudget rebuilt2(epoch, 0.5, 2, 1.0);
    std::vector<Tick> used2(2, 7);
    journal.replay(rebuilt2, used2, 5500);
    EXPECT_EQ(used2[0], 0);
    EXPECT_EQ(used2[1], 0);
}

TEST(GoaRegistration, RejectsNullAndOutOfOrderAgents)
{
    power::Rack rack(0, power::Watts{1000.0});
    power::Server &s0 = rack.addServer(&model());
    power::Server &s1 = rack.addServer(&model());
    SoaConfig cfg;
    ServerOverclockingAgent a0(s0, cfg, &rack);
    ServerOverclockingAgent a1(s1, cfg, &rack);
    GlobalOverclockingAgent goa(rack, model());

    EXPECT_THROW(goa.addAgent(nullptr), std::invalid_argument);
    // a1 first would pair profile 0 with server 1.
    EXPECT_THROW(goa.addAgent(&a1), std::invalid_argument);
    goa.addAgent(&a0);
    EXPECT_THROW(goa.addAgent(&a0), std::invalid_argument);
    goa.addAgent(&a1);
    // The rack is full; a third agent cannot belong to it.
    ServerOverclockingAgent extra(s0, cfg, &rack);
    EXPECT_THROW(goa.addAgent(&extra), std::invalid_argument);
    EXPECT_EQ(goa.agentCount(), 2u);
}

TEST(GoaRegistration, SeedsSafeBudgetAtEvenSplit)
{
    power::Rack rack(0, power::Watts{1000.0});
    power::Server &s0 = rack.addServer(&model());
    power::Server &s1 = rack.addServer(&model());
    SoaConfig cfg;
    ServerOverclockingAgent a0(s0, cfg, &rack);
    ServerOverclockingAgent a1(s1, cfg, &rack);
    GlobalOverclockingAgent goa(rack, model());
    goa.addAgent(&a0);
    goa.addAgent(&a1);
    EXPECT_DOUBLE_EQ(a0.safeBudgetWatts().count(), 500.0);
    EXPECT_DOUBLE_EQ(a1.safeBudgetWatts().count(), 500.0);
}

namespace
{

/** Rack of two managed sOAs wired to a gOA. */
struct GoaFixture {
    power::Rack rack{0, power::Watts{1000.0}};
    SoaConfig cfg;
    std::unique_ptr<ServerOverclockingAgent> a0;
    std::unique_ptr<ServerOverclockingAgent> a1;
    std::unique_ptr<GlobalOverclockingAgent> goa;

    explicit GoaFixture(GoaConfig goa_cfg = {})
    {
        power::Server &s0 = rack.addServer(&model());
        power::Server &s1 = rack.addServer(&model());
        s0.addGroup(8, 0.5, power::kTurboMHz, 1);
        s1.addGroup(8, 0.7, power::kTurboMHz, 1);
        a0 = std::make_unique<ServerOverclockingAgent>(s0, cfg,
                                                       &rack);
        a1 = std::make_unique<ServerOverclockingAgent>(s1, cfg,
                                                       &rack);
        goa = std::make_unique<GlobalOverclockingAgent>(
            rack, model(), goa_cfg);
        goa->addAgent(a0.get());
        goa->addAgent(a1.get());
        goa->assignEvenSplit();
    }
};

} // namespace

TEST(GoaFaults, TelemetryRetriesThenFallsBackToCache)
{
    GoaFixture fx;
    // Prime the profile cache with one clean recompute.
    fx.goa->recompute(0);
    ASSERT_EQ(fx.goa->stats().staleProfiles, 0u);

    RecomputeFaults rf;
    rf.telemetryAttempts = 3;
    rf.telemetryLost = [](int server, int) { return server == 0; };
    const auto batch = fx.goa->recompute(kHour, rf);

    // Server 0 failed all three pulls; its budget was computed from
    // the cached profile, and it still receives an assignment.
    EXPECT_EQ(fx.goa->stats().telemetryRetries, 3u);
    EXPECT_EQ(fx.goa->stats().staleProfiles, 1u);
    ASSERT_EQ(batch.size(), 2u);
    for (const auto &pending : batch)
        EXPECT_TRUE(fx.goa->deliver(pending, kHour));
}

TEST(GoaFaults, DropsAndDelaysBudgetPushes)
{
    GoaFixture fx;
    RecomputeFaults rf;
    rf.budgetLost = [](int server) { return server == 0; };
    rf.budgetDelay = [](int server) {
        return server == 1 ? kMinute : Tick{0};
    };
    const auto batch = fx.goa->recompute(0, rf);

    ASSERT_EQ(batch.size(), 1u);
    EXPECT_EQ(batch[0].serverIndex, 1);
    EXPECT_EQ(batch[0].deliverAt, kMinute);
    EXPECT_EQ(fx.goa->stats().assignmentsDropped, 1u);
    EXPECT_EQ(fx.goa->stats().assignmentsDelayed, 1u);
}

TEST(GoaFaults, CorruptedPushIsRejectedByTheSoa)
{
    GoaFixture fx;
    for (int kind = 0; kind < 3; ++kind) {
        RecomputeFaults rf;
        rf.budgetCorrupt = [kind](int) { return kind; };
        const auto batch = fx.goa->recompute(kind * kHour, rf);
        ASSERT_EQ(batch.size(), 2u);
        for (const auto &pending : batch) {
            EXPECT_FALSE(
                fx.goa->deliver(pending, kind * kHour));
        }
    }
    EXPECT_EQ(fx.goa->stats().assignmentsRejected, 6u);
    EXPECT_EQ(fx.a0->stats().budgetRejects, 3u);
    // Rejections never displaced the even-split bootstrap budget.
    EXPECT_DOUBLE_EQ(fx.a0->budgetWatts(0).count(), 500.0);
}

TEST(GoaFaults, LeaseTtlStampsDeliveredAssignments)
{
    GoaConfig goa_cfg;
    goa_cfg.leaseTtl = kHour;
    GoaFixture fx(goa_cfg);
    fx.goa->recompute(0);
    EXPECT_FALSE(fx.a0->leaseStale(kHour));
    EXPECT_TRUE(fx.a0->leaseStale(kHour + 1));
    // A later recompute renews the lease.
    fx.goa->recompute(kHour);
    EXPECT_FALSE(fx.a0->leaseStale(kHour + 1));
    EXPECT_TRUE(fx.a0->leaseStale(2 * kHour + 1));
}

TEST(Sensor, DistortedReadingsFeedAdmission)
{
    Fixture honest;
    honest.soa->assignBudget(ProfileTemplate::flat(
        honest.server->powerWatts().count() + 200.0));
    ASSERT_TRUE(
        honest.soa->requestOverclock(honest.makeRequest(), 0)
            .granted);

    Fixture fooled;
    fooled.soa->setPowerSensor(
        [](power::Watts watts, Tick) { return watts * 10.0; });
    fooled.soa->assignBudget(ProfileTemplate::flat(
        fooled.server->powerWatts().count() + 200.0));
    // The same request under the same budget is denied because the
    // sensor reports ten times the draw.
    EXPECT_FALSE(
        fooled.soa->requestOverclock(fooled.makeRequest(), 0)
            .granted);
}
