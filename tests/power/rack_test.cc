/** @file Unit tests for the rack power-delivery model. */

#include <gtest/gtest.h>

#include "power/rack.hh"

using namespace soc::power;

namespace
{

const PowerModel &
model()
{
    static const PowerModel instance;
    return instance;
}

} // namespace

TEST(Rack, ServersGetSequentialIds)
{
    Rack rack(0, Watts{10000.0});
    Server &a = rack.addServer(&model());
    Server &b = rack.addServer(&model());
    EXPECT_EQ(a.id(), 0);
    EXPECT_EQ(b.id(), 1);
    EXPECT_EQ(rack.serverCount(), 2u);
}

TEST(Rack, PowerSumsServers)
{
    Rack rack(0, Watts{10000.0});
    Server &a = rack.addServer(&model());
    Server &b = rack.addServer(&model());
    a.addGroup(32, 0.5);
    b.addGroup(16, 0.8);
    EXPECT_NEAR(rack.powerWatts().count(),
                (a.powerWatts() + b.powerWatts()).count(), 1e-9);
}

TEST(Rack, UtilizationIsFractionOfLimit)
{
    Rack rack(0, Watts{1000.0});
    rack.addServer(&model()); // idles at 120 W
    EXPECT_NEAR(rack.utilization(), 0.12, 1e-9);
}

TEST(Rack, EvenShare)
{
    Rack rack(0, Watts{1200.0});
    rack.addServer(&model());
    rack.addServer(&model());
    rack.addServer(&model());
    EXPECT_NEAR(rack.evenShareWatts().count(), 400.0, 1e-9);
}

TEST(Rack, LimitIsMutable)
{
    Rack rack(0, Watts{1000.0});
    rack.setLimitWatts(Watts{500.0});
    EXPECT_EQ(rack.limitWatts(), Watts{500.0});
}
