/** @file Unit tests for the warning/capping rack manager. */

#include <gtest/gtest.h>

#include "power/rack_manager.hh"

using namespace soc::power;
using soc::sim::Tick;

namespace
{

const PowerModel &
model()
{
    static const PowerModel instance;
    return instance;
}

struct Listener : RackPowerListener {
    int warnings = 0;
    int caps = 0;
    void onWarning(Tick) override { ++warnings; }
    void onCapEvent(Tick) override { ++caps; }
};

} // namespace

TEST(RackManager, QuietBelowWarning)
{
    Rack rack(0, Watts{1000.0});
    rack.addServer(&model()).addGroup(16, 0.3);
    RackManager manager(rack);
    Listener listener;
    manager.addListener(&listener);
    for (Tick t = 0; t < 10; ++t)
        manager.tick(t);
    EXPECT_EQ(listener.warnings, 0);
    EXPECT_EQ(listener.caps, 0);
    EXPECT_EQ(manager.stats().ticks, 10u);
}

TEST(RackManager, WarnsInWarningBand)
{
    Rack rack(0, Watts{1000.0});
    Server &server = rack.addServer(&model());
    server.addGroup(64, 1.0);
    // Draw = TDP = 420 W; set the limit so draw sits in [95%, 100%).
    rack.setLimitWatts(Watts{430.0});
    RackManager manager(rack);
    Listener listener;
    manager.addListener(&listener);
    manager.tick(0);
    EXPECT_EQ(listener.warnings, 1);
    EXPECT_EQ(listener.caps, 0);
    EXPECT_FALSE(manager.capping());
}

TEST(RackManager, CapsAboveLimitAndThrottlesBelowOvershoot)
{
    Rack rack(0, Watts{400.0}); // below the 420 W TDP draw
    Server &server = rack.addServer(&model());
    server.addGroup(64, 1.0);
    RackManager manager(rack);
    Listener listener;
    manager.addListener(&listener);
    manager.tick(0);
    EXPECT_EQ(listener.caps, 1);
    EXPECT_TRUE(manager.capping());
    EXPECT_EQ(manager.stats().capEvents, 1u);
    EXPECT_LE(rack.powerWatts().count(),
              400.0 * manager.config().capOvershootFraction + 1.0);
    EXPECT_TRUE(server.capped());
}

TEST(RackManager, CapEventCountedOncePerExcursion)
{
    Rack rack(0, Watts{400.0});
    Server &server = rack.addServer(&model());
    server.addGroup(64, 1.0);
    RackManagerConfig cfg;
    cfg.releaseStepsPerTick = 0; // hold caps: stay in one excursion
    RackManager manager(rack, cfg);
    manager.tick(0);
    manager.tick(1);
    manager.tick(2);
    EXPECT_EQ(manager.stats().capEvents, 1u);
    EXPECT_GE(manager.stats().cappedTicks, 1u);
}

TEST(RackManager, ReleasesCapsWhenHeadroomReturns)
{
    Rack rack(0, Watts{400.0});
    Server &server = rack.addServer(&model());
    const GroupId g = server.addGroup(64, 1.0);
    RackManager manager(rack);
    manager.tick(0); // capped
    ASSERT_TRUE(server.capped());

    // Load drops: utilization collapses, caps should unwind.
    server.setUtil(g, 0.05);
    for (Tick t = 1; t < 200; ++t)
        manager.tick(t);
    EXPECT_FALSE(server.capped());
    EXPECT_FALSE(manager.capping());
}

TEST(RackManager, PrioritizedVictims)
{
    // Two servers: one runs an overclocked group, one does not.
    // Capping must hit the overclocked server first.
    Rack rack(0, Watts{100.0}); // absurdly low: will cap immediately
    Server &oc = rack.addServer(&model());
    Server &plain = rack.addServer(&model());
    oc.addGroup(16, 0.9, kOverclockMHz, 1);
    plain.addGroup(16, 0.9, kTurboMHz, 1);
    RackManagerConfig cfg;
    cfg.throttleStepsPerTick = 3;
    RackManager manager(rack, cfg);
    manager.tick(0);
    EXPECT_TRUE(oc.capped());
    EXPECT_FALSE(plain.capped());
}

TEST(RackManager, WarningWattsMatchesConfig)
{
    Rack rack(0, Watts{1000.0});
    RackManager manager(rack);
    EXPECT_NEAR(manager.warningWatts().count(), 950.0, 1e-9);
}

TEST(RackManager, PenaltyRecordedWhenNonOverclockersThrottled)
{
    Rack rack(0, Watts{300.0});
    Server &server = rack.addServer(&model());
    server.addGroup(64, 1.0, kTurboMHz, 1);
    RackManager manager(rack);
    manager.tick(0);
    ASSERT_TRUE(manager.capping());
    EXPECT_GT(manager.stats().penalty.count(), 0u);
    EXPECT_GT(manager.stats().penalty.mean(), 0.0);
}
