/** @file Unit tests for the server hardware model. */

#include <gtest/gtest.h>

#include "power/server.hh"

using namespace soc::power;

namespace
{

const PowerModel &
model()
{
    static const PowerModel instance;
    return instance;
}

} // namespace

TEST(Server, CoreAccounting)
{
    Server server(0, &model());
    EXPECT_EQ(server.totalCores(), 64);
    EXPECT_EQ(server.freeCores(), 64);
    const GroupId a = server.addGroup(8, 0.5);
    const GroupId b = server.addGroup(16, 0.2);
    EXPECT_NE(a, b);
    EXPECT_EQ(server.usedCores(), 24);
    EXPECT_EQ(server.freeCores(), 40);
}

TEST(Server, RejectsOversizedGroup)
{
    Server server(0, &model());
    server.addGroup(60, 0.5);
    EXPECT_EQ(server.addGroup(8, 0.5), -1);
    EXPECT_EQ(server.usedCores(), 60);
}

TEST(Server, RemoveGroupFreesCores)
{
    Server server(0, &model());
    const GroupId a = server.addGroup(10, 0.5);
    server.removeGroup(a);
    EXPECT_EQ(server.freeCores(), 64);
    EXPECT_EQ(server.group(a), nullptr);
    server.removeGroup(999); // no-op
}

TEST(Server, UtilClampedToUnit)
{
    Server server(0, &model());
    const GroupId g = server.addGroup(4, 0.5);
    server.setUtil(g, 1.7);
    EXPECT_EQ(server.group(g)->util, 1.0);
    server.setUtil(g, -0.3);
    EXPECT_EQ(server.group(g)->util, 0.0);
}

TEST(Server, TargetClampedToLadder)
{
    Server server(0, &model());
    const GroupId g = server.addGroup(4, 0.5);
    server.setTarget(g, FreqMHz{9999});
    EXPECT_EQ(server.group(g)->targetMHz, kOverclockMHz);
    server.setTarget(g, FreqMHz{100});
    EXPECT_EQ(server.group(g)->targetMHz, kMinMHz);
}

TEST(Server, EffectiveFrequencyIsMinOfTargetAndCap)
{
    CoreGroup g;
    g.targetMHz = FreqMHz{4000};
    g.capMHz = FreqMHz{3500};
    EXPECT_EQ(g.effectiveMHz(), FreqMHz{3500});
    g.capMHz = FreqMHz{4000};
    EXPECT_EQ(g.effectiveMHz(), FreqMHz{4000});
    EXPECT_TRUE(g.overclocked());
    g.targetMHz = FreqMHz{3300};
    EXPECT_FALSE(g.overclocked());
}

TEST(Server, PowerIncreasesWithOverclock)
{
    Server server(0, &model());
    const GroupId g = server.addGroup(16, 0.8);
    const Watts base = server.powerWatts();
    server.setTarget(g, kOverclockMHz);
    EXPECT_GT(server.powerWatts(), base);
}

TEST(Server, RegularPowerStripsOverclockSurcharge)
{
    Server server(0, &model());
    const GroupId g = server.addGroup(16, 0.8);
    const Watts base = server.powerWatts();
    server.setTarget(g, kOverclockMHz);
    EXPECT_NEAR(server.regularPowerWatts().count(), base.count(),
                1e-9);
    EXPECT_LT(server.regularPowerWatts(), server.powerWatts());
}

TEST(Server, PowerWattsIfMatchesActualChange)
{
    Server server(0, &model());
    const GroupId g = server.addGroup(8, 0.6);
    server.addGroup(8, 0.3);
    const Watts predicted = server.powerWattsIf(g, kOverclockMHz);
    server.setTarget(g, kOverclockMHz);
    EXPECT_NEAR(server.powerWatts().count(), predicted.count(),
                1e-9);
}

TEST(Server, UtilizationIsCoreWeighted)
{
    Server server(0, &model());
    server.addGroup(32, 1.0);
    server.addGroup(32, 0.0);
    EXPECT_NEAR(server.utilization(), 0.5, 1e-9);
}

TEST(Server, OverclockedCoreCount)
{
    Server server(0, &model());
    const GroupId a = server.addGroup(8, 0.5);
    server.addGroup(4, 0.5);
    EXPECT_EQ(server.overclockedCores(), 0);
    server.setTarget(a, kOverclockMHz);
    EXPECT_EQ(server.overclockedCores(), 8);
}

TEST(Server, ThrottlePicksLowestPriorityFirst)
{
    Server server(0, &model());
    const GroupId low = server.addGroup(8, 0.5, kTurboMHz, 1);
    const GroupId high = server.addGroup(8, 0.5, kTurboMHz, 2);
    ASSERT_TRUE(server.throttleOneStep());
    EXPECT_LT(server.group(low)->effectiveMHz(), kTurboMHz);
    EXPECT_EQ(server.group(high)->effectiveMHz(), kTurboMHz);
}

TEST(Server, ThrottlePrefersFastestAtSamePriority)
{
    Server server(0, &model());
    const GroupId oc = server.addGroup(8, 0.5, kOverclockMHz, 1);
    const GroupId normal = server.addGroup(8, 0.5, kTurboMHz, 1);
    ASSERT_TRUE(server.throttleOneStep());
    EXPECT_EQ(server.group(oc)->effectiveMHz(),
              kOverclockMHz - kStepMHz);
    EXPECT_EQ(server.group(normal)->effectiveMHz(), kTurboMHz);
}

TEST(Server, ThrottleStopsAtFloor)
{
    Server server(0, &model());
    server.addGroup(4, 0.5);
    int steps = 0;
    while (server.throttleOneStep())
        ++steps;
    EXPECT_EQ(steps, (kTurboMHz - kMinMHz) / kStepMHz);
    EXPECT_FALSE(server.throttleOneStep());
}

TEST(Server, UnthrottleRestoresCaps)
{
    Server server(0, &model());
    const GroupId g = server.addGroup(4, 0.5);
    server.throttleOneStep();
    server.throttleOneStep();
    EXPECT_TRUE(server.capped());
    while (server.unthrottleOneStep()) {
    }
    EXPECT_FALSE(server.capped());
    EXPECT_EQ(server.group(g)->effectiveMHz(), kTurboMHz);
}

TEST(Server, ClearCapsInstant)
{
    Server server(0, &model());
    server.addGroup(4, 0.5);
    server.throttleOneStep();
    server.clearCaps();
    EXPECT_FALSE(server.capped());
}

TEST(Server, CappingPenaltyCountsOnlyAffectedNonOverclockCores)
{
    Server server(0, &model());
    const GroupId normal = server.addGroup(8, 0.5, kTurboMHz, 1);
    server.addGroup(8, 0.5, kOverclockMHz, 1);
    EXPECT_EQ(server.cappingPenalty(), 0.0);
    EXPECT_EQ(server.cappedNonOverclockCores(), 0);

    // Throttling first removes the overclocker's boost: still no
    // penalty on the normal group.
    for (int i = 0; i < 7; ++i)
        server.throttleOneStep();
    EXPECT_EQ(server.cappingPenalty(), 0.0);

    // Next steps dig into the normal group.
    server.throttleOneStep();
    EXPECT_GT(server.cappingPenalty(), 0.0);
    EXPECT_EQ(server.cappedNonOverclockCores(), 8);
    EXPECT_EQ(server.group(normal)->effectiveMHz(),
              kTurboMHz - kStepMHz);
}
