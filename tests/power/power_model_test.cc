/** @file Unit and property tests for the power/voltage/thermal model. */

#include <gtest/gtest.h>

#include "power/power_model.hh"

using namespace soc::power;

TEST(PowerModel, CalibratedToTdpAtTurbo)
{
    const PowerModel model;
    const auto &p = model.params();
    EXPECT_NEAR(model.serverPower(1.0, kTurboMHz).count(),
                p.tdpWatts.count(), 1e-6);
}

TEST(PowerModel, IdleServerDrawsIdlePower)
{
    const PowerModel model;
    EXPECT_NEAR(model.serverPower(0.0, kTurboMHz, 0).count(),
                model.params().idleWatts.count(), 1e-9);
}

TEST(PowerModel, VoltageMonotoneInFrequency)
{
    const PowerModel model;
    double prev = 0.0;
    for (FreqMHz f = kMinMHz; f <= kOverclockMHz; f += kStepMHz) {
        const double v = model.voltage(f);
        EXPECT_GE(v, prev) << "f=" << f;
        prev = v;
    }
}

TEST(PowerModel, VoltageAnchors)
{
    const PowerModel model;
    EXPECT_NEAR(model.voltage(kTurboMHz), 1.10, 1e-9);
    EXPECT_NEAR(model.voltage(kBaseMHz), 0.95, 1e-9);
    // 700 MHz beyond turbo at 0.5 V/GHz = +0.35 V.
    EXPECT_NEAR(model.voltage(kOverclockMHz), 1.45, 1e-9);
}

TEST(PowerModel, VoltageSteeperBeyondTurbo)
{
    const PowerModel model;
    const double below = model.voltage(kTurboMHz) -
        model.voltage(kTurboMHz - FreqMHz{500});
    const double above = model.voltage(kTurboMHz + FreqMHz{500}) -
        model.voltage(kTurboMHz);
    EXPECT_GT(above, below);
}

TEST(PowerModel, CorePowerMonotoneInUtilAndFreq)
{
    const PowerModel model;
    EXPECT_LT(model.corePower(0.2, kTurboMHz),
              model.corePower(0.8, kTurboMHz));
    EXPECT_LT(model.corePower(0.5, kTurboMHz),
              model.corePower(0.5, kOverclockMHz));
}

TEST(PowerModel, ActivityFloorMakesSpreadingCostly)
{
    // Two cores at 50% must draw more than one core at 100% plus one
    // at 0% would *if power were linear*; with the activity floor
    // they draw more than one fully-busy core alone.
    const PowerModel model;
    const Watts spread = 2.0 * model.corePower(0.5, kTurboMHz);
    const Watts packed = model.corePower(1.0, kTurboMHz) +
        model.corePower(0.0, kTurboMHz);
    EXPECT_NEAR(spread.count(), packed.count(),
                1e-9); // linear in util per core...
    // ...but a fully idle core still draws the floor:
    EXPECT_GT(model.corePower(0.0, kTurboMHz), Watts{0.0});
}

TEST(PowerModel, OverclockExtraPowerPositiveAndScalesWithCores)
{
    const PowerModel model;
    const Watts one = model.overclockExtraPower(0.8, kOverclockMHz,
                                                1);
    EXPECT_GT(one, Watts{0.0});
    EXPECT_NEAR(
        model.overclockExtraPower(0.8, kOverclockMHz, 5).count(),
        (5.0 * one).count(), 1e-9);
}

TEST(PowerModel, NoExtraPowerAtOrBelowTurbo)
{
    const PowerModel model;
    EXPECT_EQ(model.overclockExtraPower(0.9, kTurboMHz, 8),
              Watts{0.0});
    EXPECT_EQ(model.overclockExtraPower(0.9, kBaseMHz, 8),
              Watts{0.0});
}

TEST(PowerModel, OverclockExtraPowerPerCoreIsMeaningful)
{
    // §IV-C's example implies a handful of watts per overclocked
    // core; verify the calibration is in that ballpark (2-12 W).
    const PowerModel model;
    const Watts extra =
        model.overclockExtraPower(0.9, kOverclockMHz, 1);
    EXPECT_GT(extra, Watts{2.0});
    EXPECT_LT(extra, Watts{12.0});
}

TEST(PowerModel, TemperatureRisesWithActivity)
{
    const PowerModel model;
    const Celsius idle = model.temperature(0.0, kTurboMHz);
    const Celsius busy = model.temperature(1.0, kTurboMHz);
    const Celsius oc = model.temperature(1.0, kOverclockMHz);
    EXPECT_LT(idle, busy);
    EXPECT_LT(busy, oc);
    EXPECT_NEAR(busy.count(),
                (model.params().ambientCelsius +
                 model.params().thermalRangeCelsius).count(),
                1e-9);
}

TEST(PowerModel, MaxFrequencyWithinBudget)
{
    const PowerModel model;
    const FrequencyLadder ladder;
    // A huge budget allows the ceiling.
    EXPECT_EQ(model.maxFrequencyWithin(0.5, 64, Watts{1e6}, ladder),
              kOverclockMHz);
    // A tiny budget pins at the floor.
    EXPECT_EQ(model.maxFrequencyWithin(1.0, 64, Watts{1.0}, ladder),
              kMinMHz);
    // Budgets in between give something in between and the result
    // actually fits.
    const FreqMHz f = model.maxFrequencyWithin(0.8, 64, Watts{380.0},
                                               ladder);
    EXPECT_GT(f, kMinMHz);
    EXPECT_LT(f, kOverclockMHz);
    EXPECT_LE(model.serverPower(0.8, f, 64), Watts{380.0});
}

TEST(FrequencyLadder, StepAndClamp)
{
    FrequencyLadder ladder;
    EXPECT_EQ(ladder.up(kTurboMHz), kTurboMHz + kStepMHz);
    EXPECT_EQ(ladder.up(kOverclockMHz), kOverclockMHz);
    EXPECT_EQ(ladder.down(kMinMHz), kMinMHz);
    EXPECT_EQ(ladder.clamp(FreqMHz{99999}), kOverclockMHz);
    EXPECT_EQ(ladder.clamp(FreqMHz{1}), kMinMHz);
    EXPECT_TRUE(
        FrequencyLadder::isOverclocked(kTurboMHz + kStepMHz));
    EXPECT_FALSE(FrequencyLadder::isOverclocked(kTurboMHz));
}

/** Property: server power is monotone in utilization for any freq. */
class PowerMonotoneProperty
    : public ::testing::TestWithParam<int>
{
};

TEST_P(PowerMonotoneProperty, MonotoneInUtil)
{
    const PowerModel model;
    const FreqMHz f{GetParam()};
    Watts prev{-1.0};
    for (double u = 0.0; u <= 1.0; u += 0.1) {
        const Watts p = model.serverPower(u, f);
        EXPECT_GT(p, prev);
        prev = p;
    }
}

INSTANTIATE_TEST_SUITE_P(Ladder, PowerMonotoneProperty,
                         ::testing::Values(1600, 2400, 3000, 3300,
                                           3600, 4000));
