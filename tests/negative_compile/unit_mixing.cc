/**
 * @file
 * Negative-compile proofs for the strong unit types.
 *
 * Each SOC_NEG_CASE value enables exactly one forbidden expression;
 * the driver (tests/negative_compile/CMakeLists.txt) compiles this
 * file once per case with -fsyntax-only and asserts the compiler
 * rejects it (ctest WILL_FAIL).  With no case defined the file must
 * compile cleanly — that control run proves a failure comes from the
 * forbidden expression, not from a stale include path.
 */

#include "power/units.hh"

using soc::power::FreqMHz;
using soc::power::Watts;

int
main()
{
    Watts w{100.0};
    FreqMHz f{2400};

#if SOC_NEG_CASE == 1
    // Cross-unit addition: a power budget plus a frequency.
    auto bad = w + f;
    (void)bad;
#elif SOC_NEG_CASE == 2
    // Implicit construction from the raw representation.
    Watts bad = 100.0;
    (void)bad;
#elif SOC_NEG_CASE == 3
    // Unit-squared product: Watts * Watts has no meaning here.
    auto bad = w * w;
    (void)bad;
#elif SOC_NEG_CASE == 4
    // Implicit decay back to the representation (must use count()).
    double bad = w;
    (void)bad;
#elif SOC_NEG_CASE == 5
    // Cross-unit comparison.
    bool bad = w < f;
    (void)bad;
#elif SOC_NEG_CASE == 6
    // Cross-unit compound assignment into a frequency.
    f += w;
#endif

    (void)w;
    (void)f;
    return 0;
}
