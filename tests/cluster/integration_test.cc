/**
 * @file
 * Cross-module integration tests: full SmartOClock stack (WI + sOA +
 * gOA + rack manager) wired by hand on a small rack, exercising the
 * end-to-end flows of Fig. 10/11 without the cluster harness.
 */

#include <gtest/gtest.h>

#include "core/goa.hh"
#include "core/wi.hh"
#include "power/rack_manager.hh"

using namespace soc;
using namespace soc::core;
using sim::kMinute;
using sim::kSecond;
using sim::Tick;

namespace
{

const power::PowerModel &
model()
{
    static const power::PowerModel instance;
    return instance;
}

/** Two servers, one service with a VM on each, full agent stack. */
struct Stack {
    power::Rack rack{0, power::Watts{1100.0}};
    power::RackManager manager{rack};
    GlobalOverclockingAgent goa{rack, model()};
    std::vector<std::unique_ptr<ServerOverclockingAgent>> soas;
    std::vector<power::GroupId> vms;
    std::unique_ptr<GlobalWiAgent> wi;
    int scaleOuts = 0;

    Stack()
    {
        SoaConfig soa_cfg;
        soa_cfg.warningWindow = 10 * kSecond;
        for (int i = 0; i < 2; ++i) {
            power::Server &server = rack.addServer(&model());
            vms.push_back(server.addGroup(8, 0.6, power::kTurboMHz,
                                          1));
            soas.push_back(
                std::make_unique<ServerOverclockingAgent>(
                    server, soa_cfg, &rack));
            manager.addListener(soas.back().get());
            goa.addAgent(soas.back().get());
        }
        goa.assignEvenSplit();

        WiPolicyConfig wi_cfg;
        wi_cfg.sloMs = 100.0;
        wi_cfg.baselineP99Ms = 20.0;
        wi_cfg.scaleCooldown = 0;
        wi = std::make_unique<GlobalWiAgent>("svc", wi_cfg);
        for (int i = 0; i < 2; ++i) {
            wi->addVm(std::make_unique<LocalWiAgent>(
                i, soas[i].get(), vms[i], 8));
            soas[i]->setExhaustionCallback(
                [this](const ExhaustionSignal &signal) {
                wi->onExhaustion(0, signal);
            });
        }
        wi->setScaleOutHandler([this](int n) { scaleOuts += n; });
    }

    void
    run(Tick from, Tick to, Tick step = 5 * kSecond)
    {
        for (Tick t = from; t <= to; t += step) {
            for (auto &soa : soas)
                soa->tick(t);
            manager.tick(t);
        }
    }
};

} // namespace

TEST(Integration, MetricsSpikesOverclockBothVms)
{
    Stack stack;
    VmMetrics slow;
    slow.p99LatencyMs = 85.0;
    slow.utilization = 0.7;
    stack.wi->onMetrics(0, slow);
    EXPECT_TRUE(stack.soas[0]->isOverclockActive(stack.vms[0]));
    EXPECT_TRUE(stack.soas[1]->isOverclockActive(stack.vms[1]));

    stack.run(0, 2 * kMinute);
    for (int i = 0; i < 2; ++i) {
        EXPECT_EQ(stack.rack.server(i)
                      .group(stack.vms[i])
                      ->effectiveMHz(),
                  power::kOverclockMHz);
    }

    VmMetrics fast;
    fast.p99LatencyMs = 10.0;
    stack.wi->onMetrics(3 * kMinute, fast);
    EXPECT_FALSE(stack.soas[0]->isOverclockActive(stack.vms[0]));
}

TEST(Integration, RackPowerStaysUnderLimitWithSmartStack)
{
    Stack stack;
    // Overload: high util plus overclocking everywhere.
    for (int i = 0; i < 2; ++i)
        stack.rack.server(i).setUtil(stack.vms[i], 0.95);
    VmMetrics slow;
    slow.p99LatencyMs = 95.0;
    slow.utilization = 0.95;
    stack.wi->onMetrics(0, slow);
    stack.run(0, 5 * kMinute);
    EXPECT_LE(stack.rack.powerWatts(), stack.rack.limitWatts());
    // The safety valve may have engaged but the system settled.
    EXPECT_LE(stack.manager.stats().capEvents, 3u);
}

TEST(Integration, GoaRecomputeShiftsBudgetTowardDemand)
{
    Stack stack;
    // Only VM 0 overclocks for an hour of telemetry.
    OverclockRequest req;
    req.groupId = stack.vms[0];
    req.cores = 8;
    req.duration = 2 * sim::kHour;
    stack.soas[0]->requestOverclock(req, 0);
    stack.run(0, sim::kHour, 30 * kSecond);
    stack.goa.recompute(sim::kHour);
    EXPECT_GT(stack.soas[0]->budgetWatts(90 * kMinute),
              stack.soas[1]->budgetWatts(90 * kMinute));
}

TEST(Integration, WarningsThrottleExplorationAcrossAgents)
{
    Stack stack;
    // Tight budgets force both agents to explore; the rack manager's
    // warnings must keep the rack below its limit.
    stack.rack.setLimitWatts(stack.rack.powerWatts() +
                             power::Watts{60.0});
    stack.goa.assignEvenSplit();
    for (Tick t = 0; t <= 10 * kMinute; t += 5 * kSecond) {
        for (int i = 0; i < 2; ++i) {
            if (!stack.soas[i]->isOverclockActive(stack.vms[i])) {
                OverclockRequest req;
                req.groupId = stack.vms[i];
                req.cores = 8;
                req.duration = sim::kHour;
                stack.soas[i]->requestOverclock(req, t);
            }
            stack.soas[i]->tick(t);
        }
        stack.manager.tick(t);
    }
    EXPECT_GT(stack.manager.stats().warnings, 0u);
    EXPECT_LE(stack.rack.powerWatts(), stack.rack.limitWatts());
}

TEST(Integration, LifetimeExhaustionSignalsProactiveScaleOut)
{
    Stack stack;
    // Rebuild agents with a tiny lifetime budget so exhaustion is
    // predicted quickly.
    SoaConfig cfg;
    cfg.budgetEpoch = sim::kDay;
    cfg.overclockFraction = 0.003;
    cfg.exhaustionWindow = 15 * kMinute;
    auto soa = std::make_unique<ServerOverclockingAgent>(
        stack.rack.server(0), cfg, &stack.rack);
    soa->assignBudget(ProfileTemplate::flat(800.0));
    bool signalled = false;
    soa->setExhaustionCallback(
        [&](const ExhaustionSignal &) { signalled = true; });

    OverclockRequest req;
    req.groupId = stack.vms[0];
    req.cores = 8;
    req.duration = 4 * sim::kHour;
    ASSERT_TRUE(soa->requestOverclock(req, 0).granted);
    for (Tick t = 0; t < sim::kHour; t += 30 * kSecond)
        soa->tick(t);
    EXPECT_TRUE(signalled);
}
