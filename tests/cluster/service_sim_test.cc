/** @file End-to-end tests for the 36-server cluster experiment. */

#include <gtest/gtest.h>

#include "cluster/service_sim.hh"

using namespace soc;
using namespace soc::cluster;

namespace
{

ServiceSimConfig
quickConfig(Environment environment)
{
    ServiceSimConfig cfg;
    cfg.environment = environment;
    cfg.duration = 6 * sim::kMinute;
    cfg.warmup = sim::kMinute;
    cfg.socialNetServers = 6;
    cfg.mlServers = 4;
    cfg.spareServers = 2;
    cfg.seed = 77;
    return cfg;
}

} // namespace

TEST(ServiceSim, BaselineKeepsOneInstanceEverywhere)
{
    const auto result = runServiceSim(
        quickConfig(Environment::Baseline));
    for (const auto &cls : result.byClass) {
        EXPECT_NEAR(cls.meanInstances, 1.0, 0.05);
        EXPECT_GT(cls.completed, 0u);
    }
    EXPECT_EQ(result.scaleOuts, 0u);
    EXPECT_EQ(result.overclockStarts, 0u);
}

TEST(ServiceSim, ScaleOutAddsInstancesUnderLoad)
{
    const auto result = runServiceSim(
        quickConfig(Environment::ScaleOut));
    EXPECT_GT(result.scaleOuts, 0u);
    EXPECT_GT(result.meanInstancesAll, 1.05);
    EXPECT_EQ(result.overclockStarts, 0u);
}

TEST(ServiceSim, ScaleUpOverclocksWithoutInstances)
{
    const auto result = runServiceSim(
        quickConfig(Environment::ScaleUp));
    EXPECT_GT(result.overclockStarts, 0u);
    EXPECT_EQ(result.scaleOuts, 0u);
    for (const auto &cls : result.byClass)
        EXPECT_NEAR(cls.meanInstances, 1.0, 0.05);
}

TEST(ServiceSim, SmartOClockBeatsBaselineTail)
{
    const auto baseline = runServiceSim(
        quickConfig(Environment::Baseline));
    const auto smart = runServiceSim(
        quickConfig(Environment::SmartOClock));
    // High-load class tail must improve substantially.
    EXPECT_LT(smart.byClass[2].p99Ms,
              baseline.byClass[2].p99Ms);
    EXPECT_LT(smart.byClass[2].violations,
              baseline.byClass[2].violations);
}

TEST(ServiceSim, SmartOClockUsesFewerInstancesThanScaleOutAtHighLoad)
{
    const auto scale_out = runServiceSim(
        quickConfig(Environment::ScaleOut));
    const auto smart = runServiceSim(
        quickConfig(Environment::SmartOClock));
    EXPECT_LT(smart.byClass[2].meanInstances,
              scale_out.byClass[2].meanInstances + 0.05);
}

TEST(ServiceSim, GenerousRackNeverCaps)
{
    const auto result = runServiceSim(
        quickConfig(Environment::SmartOClock));
    EXPECT_EQ(result.capEvents, 0u);
}

TEST(ServiceSim, ReducedRackLimitCausesCapsAndMlSlowdown)
{
    auto cfg = quickConfig(Environment::SmartOClock);
    cfg.soaPolicy = core::PolicyKind::NaiveOClock;
    cfg.rackLimitFactor = 0.50;
    const auto result = runServiceSim(cfg);
    EXPECT_GT(result.capEvents, 0u);
    EXPECT_LT(result.mlThroughputNorm, 1.0);
}

TEST(ServiceSim, SmartPolicyNotWorseUnderReducedLimit)
{
    // The decisive power-constrained comparison runs at full scale
    // in bench_va_power_constrained; at this miniature scale we
    // check SmartOClock is not materially worse than NaiveOClock.
    auto naive_cfg = quickConfig(Environment::SmartOClock);
    naive_cfg.soaPolicy = core::PolicyKind::NaiveOClock;
    naive_cfg.rackLimitFactor = 0.50;
    auto smart_cfg = naive_cfg;
    smart_cfg.soaPolicy = core::PolicyKind::SmartOClock;
    const auto naive = runServiceSim(naive_cfg);
    const auto smart = runServiceSim(smart_cfg);
    EXPECT_LE(smart.capEvents, naive.capEvents + 3);
    EXPECT_GE(smart.mlThroughputNorm,
              naive.mlThroughputNorm - 0.02);
}

TEST(ServiceSim, MlThroughputNearTurboWhenUncapped)
{
    const auto result = runServiceSim(
        quickConfig(Environment::Baseline));
    EXPECT_NEAR(result.mlThroughputNorm, 1.0, 0.02);
}

TEST(ServiceSim, EnergyAccountingIsPositiveAndDecomposes)
{
    const auto result = runServiceSim(
        quickConfig(Environment::SmartOClock));
    EXPECT_GT(result.totalEnergyJ, soc::power::Joules{0.0});
    EXPECT_GT(result.socialEnergyJ, soc::power::Joules{0.0});
    EXPECT_LT(result.socialEnergyJ, result.totalEnergyJ);
}

TEST(ServiceSim, EnvironmentNames)
{
    EXPECT_EQ(environmentName(Environment::Baseline), "Baseline");
    EXPECT_EQ(environmentName(Environment::SmartOClock),
              "SmartOClock");
}

TEST(ServiceSim, ProactiveScaleOutReducesMissedSloTime)
{
    // §V-A overclocking-constrained experiment: with the budget cut
    // to 25%, proactive scale-out should not do worse than the
    // reactive configuration.
    auto reactive = quickConfig(Environment::SmartOClock);
    reactive.overclockBudgetScale = 0.25;
    reactive.proactiveScaleOut = false;
    auto proactive = reactive;
    proactive.proactiveScaleOut = true;
    const auto r = runServiceSim(reactive);
    const auto p = runServiceSim(proactive);
    EXPECT_LE(p.missedSloTimeFrac, r.missedSloTimeFrac + 0.05);
}
