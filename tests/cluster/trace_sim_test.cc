/** @file End-to-end tests for the trace-driven policy simulator. */

#include <gtest/gtest.h>

#include <stdexcept>

#include "cluster/trace_sim.hh"

using namespace soc;
using namespace soc::cluster;

namespace
{

TraceSimConfig
quickConfig(core::PolicyKind policy, double limit_factor)
{
    TraceSimConfig cfg;
    cfg.policy = policy;
    cfg.racks = 1;
    cfg.serversPerRack = 8;
    cfg.warmup = sim::kWeek;
    cfg.duration = sim::kDay;
    cfg.controlStep = 60 * sim::kSecond;
    cfg.limitFactor = limit_factor;
    cfg.seed = 101;
    return cfg;
}

} // namespace

TEST(TraceSim, ProducesActivityAndValidRates)
{
    const auto result = runTraceSim(
        quickConfig(core::PolicyKind::SmartOClock, 1.2));
    EXPECT_GT(result.requests, 0u);
    EXPECT_GT(result.wantSteps, 0u);
    EXPECT_GE(result.successRate, 0.0);
    EXPECT_LE(result.successRate, 1.0);
    EXPECT_GT(result.meanRackUtil, 0.2);
    EXPECT_LT(result.meanRackUtil, 1.05);
    EXPECT_GT(result.energyJoules, soc::power::Joules{0.0});
}

TEST(TraceSim, DeterministicForSameSeed)
{
    const auto cfg = quickConfig(core::PolicyKind::SmartOClock, 1.1);
    const auto a = runTraceSim(cfg);
    const auto b = runTraceSim(cfg);
    EXPECT_EQ(a.capEvents, b.capEvents);
    EXPECT_EQ(a.successSteps, b.successSteps);
    EXPECT_EQ(a.wantSteps, b.wantSteps);
    EXPECT_DOUBLE_EQ(a.normPerformance, b.normPerformance);
}

TEST(TraceSim, AmplePowerMeansNoCapsAndFullSuccess)
{
    const auto result = runTraceSim(
        quickConfig(core::PolicyKind::SmartOClock, 2.0));
    EXPECT_EQ(result.capEvents, 0u);
    EXPECT_GT(result.successRate, 0.97);
    EXPECT_GT(result.normPerformance, 1.15);
}

TEST(TraceSim, NaiveCausesManyMoreCapsThanSmart)
{
    const auto naive = runTraceSim(
        quickConfig(core::PolicyKind::NaiveOClock, 1.05));
    const auto smart = runTraceSim(
        quickConfig(core::PolicyKind::SmartOClock, 1.05));
    EXPECT_GT(naive.capEvents, 5 * std::max<std::uint64_t>(
                                       1, smart.capEvents));
}

TEST(TraceSim, NoFeedbackAvoidsCapsButLosesSuccess)
{
    const auto nofb = runTraceSim(
        quickConfig(core::PolicyKind::NoFeedback, 1.05));
    const auto smart = runTraceSim(
        quickConfig(core::PolicyKind::SmartOClock, 1.05));
    EXPECT_LE(nofb.capEvents, smart.capEvents + 2);
    EXPECT_GE(smart.successRate, nofb.successRate - 0.02);
}

TEST(TraceSim, CentralOracleHasBestSuccess)
{
    const auto central = runTraceSim(
        quickConfig(core::PolicyKind::Central, 1.05));
    for (auto policy :
         {core::PolicyKind::NaiveOClock, core::PolicyKind::NoFeedback,
          core::PolicyKind::SmartOClock}) {
        const auto other = runTraceSim(quickConfig(policy, 1.05));
        EXPECT_GE(central.successRate, other.successRate - 0.03)
            << core::policyName(policy);
    }
}

TEST(TraceSim, TierFactorsAreOrdered)
{
    EXPECT_LT(TraceSimConfig::tierLimitFactor(PowerTier::High),
              TraceSimConfig::tierLimitFactor(PowerTier::Medium));
    EXPECT_LT(TraceSimConfig::tierLimitFactor(PowerTier::Medium),
              TraceSimConfig::tierLimitFactor(PowerTier::Low));
}

TEST(TraceSim, PerformanceAboveTurboWhenOverclockingSucceeds)
{
    const auto result = runTraceSim(
        quickConfig(core::PolicyKind::SmartOClock, 1.5));
    EXPECT_GT(result.normPerformance, 1.0);
    EXPECT_LE(result.normPerformance,
              power::kOverclockMHz / power::kTurboMHz + 1e-9);
}

TEST(TraceSim, ThreadCountDoesNotChangeResults)
{
    // 5 racks across 1/2/8 workers exercises every chunked-dispatch
    // shape: serial, racks split unevenly over workers, and more
    // workers than racks (some stay idle).
    auto cfg = quickConfig(core::PolicyKind::SmartOClock, 1.1);
    cfg.racks = 5;
    cfg.serversPerRack = 3;
    const auto run_with = [&cfg](int threads) {
        auto c = cfg;
        c.threads = threads;
        return runTraceSim(c);
    };
    const auto serial = run_with(1);
    for (const int threads : {2, 8}) {
        const auto parallel = run_with(threads);
        // Bit-identical, not merely close: every rack owns its RNG
        // stream and accumulators, merged in rack order.
        EXPECT_EQ(serial.capEvents, parallel.capEvents);
        EXPECT_EQ(serial.cappedTicks, parallel.cappedTicks);
        EXPECT_EQ(serial.warnings, parallel.warnings);
        EXPECT_EQ(serial.requests, parallel.requests);
        EXPECT_EQ(serial.wantSteps, parallel.wantSteps);
        EXPECT_EQ(serial.successSteps, parallel.successSteps);
        EXPECT_EQ(serial.successRate, parallel.successRate);
        EXPECT_EQ(serial.cappingPenalty, parallel.cappingPenalty);
        EXPECT_EQ(serial.normPerformance, parallel.normPerformance);
        EXPECT_EQ(serial.meanRackUtil, parallel.meanRackUtil);
        EXPECT_EQ(serial.energyJoules, parallel.energyJoules);
    }
}

TEST(TraceSim, TemplateWindowBitIdenticalAcrossThreadCounts)
{
    // The paper-faithful prior-week window must preserve the
    // thread-count invariance: window eviction happens inside each
    // sOA's own aggregator, so rack independence is untouched.
    auto cfg = quickConfig(core::PolicyKind::SmartOClock, 1.1);
    cfg.racks = 4;
    cfg.serversPerRack = 3;
    cfg.templateWindow = sim::kWeek;
    const auto run_with = [&cfg](int threads) {
        auto c = cfg;
        c.threads = threads;
        return runTraceSim(c);
    };
    const auto serial = run_with(1);
    const auto parallel = run_with(4);
    EXPECT_EQ(serial.capEvents, parallel.capEvents);
    EXPECT_EQ(serial.cappedTicks, parallel.cappedTicks);
    EXPECT_EQ(serial.warnings, parallel.warnings);
    EXPECT_EQ(serial.requests, parallel.requests);
    EXPECT_EQ(serial.wantSteps, parallel.wantSteps);
    EXPECT_EQ(serial.successSteps, parallel.successSteps);
    EXPECT_EQ(serial.successRate, parallel.successRate);
    EXPECT_EQ(serial.cappingPenalty, parallel.cappingPenalty);
    EXPECT_EQ(serial.normPerformance, parallel.normPerformance);
    EXPECT_EQ(serial.meanRackUtil, parallel.meanRackUtil);
    EXPECT_EQ(serial.energyJoules, parallel.energyJoules);
}

TEST(TraceSim, RejectsMisalignedTemplateWindow)
{
    auto cfg = quickConfig(core::PolicyKind::SmartOClock, 1.1);
    cfg.templateWindow = sim::kSlot + 1;
    EXPECT_THROW(runTraceSim(cfg), std::invalid_argument);
    cfg.templateWindow = -sim::kWeek;
    EXPECT_THROW(runTraceSim(cfg), std::invalid_argument);
    cfg.templateWindow = sim::kWeek;
    EXPECT_NO_THROW(cfg.validate());
}

TEST(TraceSim, BatchMatchesIndividualRuns)
{
    std::vector<TraceSimConfig> configs;
    auto a = quickConfig(core::PolicyKind::SmartOClock, 1.1);
    a.racks = 2;
    a.serversPerRack = 3;
    configs.push_back(a);
    auto b = quickConfig(core::PolicyKind::NaiveOClock, 1.3);
    b.racks = 2;
    b.serversPerRack = 3;
    b.seed = 202;
    configs.push_back(b);

    const auto batch = runTraceSimBatch(configs, 2);
    ASSERT_EQ(batch.size(), configs.size());
    for (std::size_t i = 0; i < configs.size(); ++i) {
        const auto direct = runTraceSim(configs[i]);
        EXPECT_EQ(batch[i].capEvents, direct.capEvents);
        EXPECT_EQ(batch[i].requests, direct.requests);
        EXPECT_EQ(batch[i].wantSteps, direct.wantSteps);
        EXPECT_EQ(batch[i].successSteps, direct.successSteps);
        EXPECT_EQ(batch[i].energyJoules, direct.energyJoules);
    }
}

namespace
{

/** Short two-recompute horizon for the budget-path tests. */
TraceSimConfig
hierarchyConfig()
{
    auto cfg = quickConfig(core::PolicyKind::SmartOClock, 1.1);
    cfg.racks = 4;
    cfg.serversPerRack = 3;
    cfg.warmup = 6 * sim::kHour;
    cfg.duration = 6 * sim::kHour;
    cfg.controlStep = 5 * sim::kMinute;
    cfg.recomputePeriod = 3 * sim::kHour;
    cfg.racksPerRow = 2;
    return cfg;
}

void
expectSameSimState(const TraceSimResult &a, const TraceSimResult &b)
{
    EXPECT_EQ(a.capEvents, b.capEvents);
    EXPECT_EQ(a.cappedTicks, b.cappedTicks);
    EXPECT_EQ(a.warnings, b.warnings);
    EXPECT_EQ(a.requests, b.requests);
    EXPECT_EQ(a.wantSteps, b.wantSteps);
    EXPECT_EQ(a.successSteps, b.successSteps);
    EXPECT_EQ(a.successRate, b.successRate);
    EXPECT_EQ(a.cappingPenalty, b.cappingPenalty);
    EXPECT_EQ(a.normPerformance, b.normPerformance);
    EXPECT_EQ(a.meanRackUtil, b.meanRackUtil);
    EXPECT_EQ(a.energyJoules, b.energyJoules);
}

} // namespace

TEST(TraceSimHierarchy, EquivalenceModeMatchesPerRackBitIdentically)
{
    // HierarchyEquivalence routes every recompute through the
    // two-phase pull + splitWeeklyInto path over a constant usable
    // row; the allocator guarantee (ConstantRowMatchesScalarSplit)
    // lifts to the whole simulation: bit-identical metrics.
    auto flat = hierarchyConfig();
    flat.budgetPath = BudgetPath::PerRack;
    auto equiv = hierarchyConfig();
    equiv.budgetPath = BudgetPath::HierarchyEquivalence;
    const auto a = runTraceSim(flat);
    const auto b = runTraceSim(equiv);
    EXPECT_GT(a.requests, 0u);
    expectSameSimState(a, b);
}

TEST(TraceSimHierarchy, ZonePathProducesActivity)
{
    auto cfg = hierarchyConfig();
    cfg.budgetPath = BudgetPath::HierarchyZone;
    const auto result = runTraceSim(cfg);
    EXPECT_GT(result.requests, 0u);
    EXPECT_GT(result.wantSteps, 0u);
    EXPECT_GE(result.hierarchyRecomputes, 2u);
    EXPECT_EQ(result.hierarchyStats.splits,
              result.hierarchyRecomputes * (1 + 2));
    EXPECT_GE(result.successRate, 0.0);
    EXPECT_LE(result.successRate, 1.0);
    EXPECT_GT(result.meanRackUtil, 0.1);
}

TEST(TraceSimHierarchy, ZonePathBitIdenticalAcrossThreadCounts)
{
    // The lockstep orchestrator must preserve the determinism
    // contract: racks advance in parallel between boundaries, but
    // the hierarchy is only written by the serial exchange phase (in
    // rack order), so 1/2/8 workers agree bit for bit.
    auto cfg = hierarchyConfig();
    cfg.racks = 5;
    cfg.budgetPath = BudgetPath::HierarchyZone;
    const auto run_with = [&cfg](int threads) {
        auto c = cfg;
        c.threads = threads;
        return runTraceSim(c);
    };
    const auto serial = run_with(1);
    EXPECT_GT(serial.requests, 0u);
    for (const int threads : {2, 8}) {
        const auto parallel = run_with(threads);
        expectSameSimState(serial, parallel);
        EXPECT_EQ(serial.hierarchyRecomputes,
                  parallel.hierarchyRecomputes);
    }
}

TEST(TraceSimHierarchy, StreamWindowSizeDoesNotChangeResults)
{
    // Chunking the trace stream differently must not perturb replay:
    // the cursors produce the same samples however the windows land.
    auto cfg = hierarchyConfig();
    const auto run_with = [&cfg](sim::Tick window) {
        auto c = cfg;
        c.streamWindow = window;
        return runTraceSim(c);
    };
    const auto daily = run_with(sim::kDay);
    const auto odd = run_with(7 * sim::kSlot);
    const auto whole = run_with(0);
    expectSameSimState(daily, odd);
    expectSameSimState(daily, whole);
}

TEST(TraceSimHierarchy, RejectsFaultsAndBadWindows)
{
    auto cfg = hierarchyConfig();
    cfg.budgetPath = BudgetPath::HierarchyZone;
    cfg.faults.enabled = true;
    EXPECT_THROW(runTraceSim(cfg), std::invalid_argument);
    cfg.faults.enabled = false;
    cfg.streamWindow = sim::kSlot + 1;
    EXPECT_THROW(runTraceSim(cfg), std::invalid_argument);
    cfg.streamWindow = -sim::kDay;
    EXPECT_THROW(runTraceSim(cfg), std::invalid_argument);
    cfg.streamWindow = sim::kDay;
    cfg.racksPerRow = 0;
    EXPECT_THROW(runTraceSim(cfg), std::invalid_argument);
    cfg.racksPerRow = 8;
    EXPECT_NO_THROW(cfg.validate());
}
