/** Known-bad fixture: PERF-001 must flag per-step allocation inside
 *  a declared replay hot region. */

#include <vector>

void
replayStep(std::vector<double> &samples, double value)
{
    // soclint:hot-begin(PERF-001)
    // Growing a vector once per control step: allocator traffic on
    // the hot path.
    samples.push_back(value);
    // soclint:hot-end(PERF-001)
}
