/** Known-good fixture: preallocated buffers inside a hot region,
 *  allocation only in setup, annotated amortized growth allowed. */

#include <cstddef>
#include <vector>

void
replayLoop(std::size_t steps)
{
    // Setup: allocation outside the region is fine.
    std::vector<double> samples;
    samples.resize(steps);

    // soclint:hot-begin(PERF-001)
    for (std::size_t i = 0; i < steps; ++i) {
        // Indexed writes into the preallocated buffer: no
        // allocator traffic.  push_back in this comment is prose,
        // not a finding.
        samples[i] = static_cast<double>(i);
        if (i == 0) {
            // Amortized one-time growth, justified and annotated:
            // soclint:allow(PERF-001)
            samples.reserve(steps + 1);
        }
    }
    // soclint:hot-end(PERF-001)
}
