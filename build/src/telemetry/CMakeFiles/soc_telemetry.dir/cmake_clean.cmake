file(REMOVE_RECURSE
  "CMakeFiles/soc_telemetry.dir/table.cc.o"
  "CMakeFiles/soc_telemetry.dir/table.cc.o.d"
  "CMakeFiles/soc_telemetry.dir/time_series.cc.o"
  "CMakeFiles/soc_telemetry.dir/time_series.cc.o.d"
  "libsoc_telemetry.a"
  "libsoc_telemetry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/soc_telemetry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
