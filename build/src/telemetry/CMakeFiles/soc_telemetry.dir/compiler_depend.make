# Empty compiler generated dependencies file for soc_telemetry.
# This may be replaced when dependencies are built.
