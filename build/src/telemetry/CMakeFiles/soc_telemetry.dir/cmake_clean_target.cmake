file(REMOVE_RECURSE
  "libsoc_telemetry.a"
)
