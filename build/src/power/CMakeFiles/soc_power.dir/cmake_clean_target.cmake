file(REMOVE_RECURSE
  "libsoc_power.a"
)
