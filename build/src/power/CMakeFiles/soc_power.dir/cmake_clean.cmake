file(REMOVE_RECURSE
  "CMakeFiles/soc_power.dir/power_model.cc.o"
  "CMakeFiles/soc_power.dir/power_model.cc.o.d"
  "CMakeFiles/soc_power.dir/rack.cc.o"
  "CMakeFiles/soc_power.dir/rack.cc.o.d"
  "CMakeFiles/soc_power.dir/rack_manager.cc.o"
  "CMakeFiles/soc_power.dir/rack_manager.cc.o.d"
  "CMakeFiles/soc_power.dir/server.cc.o"
  "CMakeFiles/soc_power.dir/server.cc.o.d"
  "libsoc_power.a"
  "libsoc_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/soc_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
