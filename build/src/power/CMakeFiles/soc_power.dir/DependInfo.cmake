
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/power/power_model.cc" "src/power/CMakeFiles/soc_power.dir/power_model.cc.o" "gcc" "src/power/CMakeFiles/soc_power.dir/power_model.cc.o.d"
  "/root/repo/src/power/rack.cc" "src/power/CMakeFiles/soc_power.dir/rack.cc.o" "gcc" "src/power/CMakeFiles/soc_power.dir/rack.cc.o.d"
  "/root/repo/src/power/rack_manager.cc" "src/power/CMakeFiles/soc_power.dir/rack_manager.cc.o" "gcc" "src/power/CMakeFiles/soc_power.dir/rack_manager.cc.o.d"
  "/root/repo/src/power/server.cc" "src/power/CMakeFiles/soc_power.dir/server.cc.o" "gcc" "src/power/CMakeFiles/soc_power.dir/server.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/soc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/telemetry/CMakeFiles/soc_telemetry.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
