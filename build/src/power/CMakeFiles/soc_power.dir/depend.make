# Empty dependencies file for soc_power.
# This may be replaced when dependencies are built.
