# Empty compiler generated dependencies file for soc_cluster.
# This may be replaced when dependencies are built.
