file(REMOVE_RECURSE
  "CMakeFiles/soc_cluster.dir/service_sim.cc.o"
  "CMakeFiles/soc_cluster.dir/service_sim.cc.o.d"
  "CMakeFiles/soc_cluster.dir/trace_sim.cc.o"
  "CMakeFiles/soc_cluster.dir/trace_sim.cc.o.d"
  "libsoc_cluster.a"
  "libsoc_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/soc_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
