file(REMOVE_RECURSE
  "libsoc_cluster.a"
)
