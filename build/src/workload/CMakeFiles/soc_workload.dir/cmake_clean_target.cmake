file(REMOVE_RECURSE
  "libsoc_workload.a"
)
