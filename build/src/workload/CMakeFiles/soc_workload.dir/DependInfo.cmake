
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/archetype.cc" "src/workload/CMakeFiles/soc_workload.dir/archetype.cc.o" "gcc" "src/workload/CMakeFiles/soc_workload.dir/archetype.cc.o.d"
  "/root/repo/src/workload/mltrain.cc" "src/workload/CMakeFiles/soc_workload.dir/mltrain.cc.o" "gcc" "src/workload/CMakeFiles/soc_workload.dir/mltrain.cc.o.d"
  "/root/repo/src/workload/queueing_service.cc" "src/workload/CMakeFiles/soc_workload.dir/queueing_service.cc.o" "gcc" "src/workload/CMakeFiles/soc_workload.dir/queueing_service.cc.o.d"
  "/root/repo/src/workload/trace_generator.cc" "src/workload/CMakeFiles/soc_workload.dir/trace_generator.cc.o" "gcc" "src/workload/CMakeFiles/soc_workload.dir/trace_generator.cc.o.d"
  "/root/repo/src/workload/webconf.cc" "src/workload/CMakeFiles/soc_workload.dir/webconf.cc.o" "gcc" "src/workload/CMakeFiles/soc_workload.dir/webconf.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/soc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/telemetry/CMakeFiles/soc_telemetry.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/soc_power.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
