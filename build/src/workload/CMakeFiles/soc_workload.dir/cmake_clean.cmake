file(REMOVE_RECURSE
  "CMakeFiles/soc_workload.dir/archetype.cc.o"
  "CMakeFiles/soc_workload.dir/archetype.cc.o.d"
  "CMakeFiles/soc_workload.dir/mltrain.cc.o"
  "CMakeFiles/soc_workload.dir/mltrain.cc.o.d"
  "CMakeFiles/soc_workload.dir/queueing_service.cc.o"
  "CMakeFiles/soc_workload.dir/queueing_service.cc.o.d"
  "CMakeFiles/soc_workload.dir/trace_generator.cc.o"
  "CMakeFiles/soc_workload.dir/trace_generator.cc.o.d"
  "CMakeFiles/soc_workload.dir/webconf.cc.o"
  "CMakeFiles/soc_workload.dir/webconf.cc.o.d"
  "libsoc_workload.a"
  "libsoc_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/soc_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
