file(REMOVE_RECURSE
  "CMakeFiles/soc_core.dir/admission.cc.o"
  "CMakeFiles/soc_core.dir/admission.cc.o.d"
  "CMakeFiles/soc_core.dir/budget_allocator.cc.o"
  "CMakeFiles/soc_core.dir/budget_allocator.cc.o.d"
  "CMakeFiles/soc_core.dir/goa.cc.o"
  "CMakeFiles/soc_core.dir/goa.cc.o.d"
  "CMakeFiles/soc_core.dir/lifetime.cc.o"
  "CMakeFiles/soc_core.dir/lifetime.cc.o.d"
  "CMakeFiles/soc_core.dir/profile_template.cc.o"
  "CMakeFiles/soc_core.dir/profile_template.cc.o.d"
  "CMakeFiles/soc_core.dir/soa.cc.o"
  "CMakeFiles/soc_core.dir/soa.cc.o.d"
  "CMakeFiles/soc_core.dir/wi.cc.o"
  "CMakeFiles/soc_core.dir/wi.cc.o.d"
  "libsoc_core.a"
  "libsoc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/soc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
