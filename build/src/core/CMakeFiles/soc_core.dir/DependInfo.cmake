
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/admission.cc" "src/core/CMakeFiles/soc_core.dir/admission.cc.o" "gcc" "src/core/CMakeFiles/soc_core.dir/admission.cc.o.d"
  "/root/repo/src/core/budget_allocator.cc" "src/core/CMakeFiles/soc_core.dir/budget_allocator.cc.o" "gcc" "src/core/CMakeFiles/soc_core.dir/budget_allocator.cc.o.d"
  "/root/repo/src/core/goa.cc" "src/core/CMakeFiles/soc_core.dir/goa.cc.o" "gcc" "src/core/CMakeFiles/soc_core.dir/goa.cc.o.d"
  "/root/repo/src/core/lifetime.cc" "src/core/CMakeFiles/soc_core.dir/lifetime.cc.o" "gcc" "src/core/CMakeFiles/soc_core.dir/lifetime.cc.o.d"
  "/root/repo/src/core/profile_template.cc" "src/core/CMakeFiles/soc_core.dir/profile_template.cc.o" "gcc" "src/core/CMakeFiles/soc_core.dir/profile_template.cc.o.d"
  "/root/repo/src/core/soa.cc" "src/core/CMakeFiles/soc_core.dir/soa.cc.o" "gcc" "src/core/CMakeFiles/soc_core.dir/soa.cc.o.d"
  "/root/repo/src/core/wi.cc" "src/core/CMakeFiles/soc_core.dir/wi.cc.o" "gcc" "src/core/CMakeFiles/soc_core.dir/wi.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/soc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/telemetry/CMakeFiles/soc_telemetry.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/soc_power.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
