file(REMOVE_RECURSE
  "CMakeFiles/soc_sim.dir/event_queue.cc.o"
  "CMakeFiles/soc_sim.dir/event_queue.cc.o.d"
  "CMakeFiles/soc_sim.dir/rng.cc.o"
  "CMakeFiles/soc_sim.dir/rng.cc.o.d"
  "CMakeFiles/soc_sim.dir/simulator.cc.o"
  "CMakeFiles/soc_sim.dir/simulator.cc.o.d"
  "CMakeFiles/soc_sim.dir/stats.cc.o"
  "CMakeFiles/soc_sim.dir/stats.cc.o.d"
  "CMakeFiles/soc_sim.dir/time.cc.o"
  "CMakeFiles/soc_sim.dir/time.cc.o.d"
  "libsoc_sim.a"
  "libsoc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/soc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
