file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/admission_test.cc.o"
  "CMakeFiles/test_core.dir/core/admission_test.cc.o.d"
  "CMakeFiles/test_core.dir/core/budget_allocator_test.cc.o"
  "CMakeFiles/test_core.dir/core/budget_allocator_test.cc.o.d"
  "CMakeFiles/test_core.dir/core/goa_test.cc.o"
  "CMakeFiles/test_core.dir/core/goa_test.cc.o.d"
  "CMakeFiles/test_core.dir/core/lifetime_test.cc.o"
  "CMakeFiles/test_core.dir/core/lifetime_test.cc.o.d"
  "CMakeFiles/test_core.dir/core/profile_template_test.cc.o"
  "CMakeFiles/test_core.dir/core/profile_template_test.cc.o.d"
  "CMakeFiles/test_core.dir/core/soa_test.cc.o"
  "CMakeFiles/test_core.dir/core/soa_test.cc.o.d"
  "CMakeFiles/test_core.dir/core/wi_test.cc.o"
  "CMakeFiles/test_core.dir/core/wi_test.cc.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
