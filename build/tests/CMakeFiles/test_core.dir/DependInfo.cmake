
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/admission_test.cc" "tests/CMakeFiles/test_core.dir/core/admission_test.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/core/admission_test.cc.o.d"
  "/root/repo/tests/core/budget_allocator_test.cc" "tests/CMakeFiles/test_core.dir/core/budget_allocator_test.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/core/budget_allocator_test.cc.o.d"
  "/root/repo/tests/core/goa_test.cc" "tests/CMakeFiles/test_core.dir/core/goa_test.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/core/goa_test.cc.o.d"
  "/root/repo/tests/core/lifetime_test.cc" "tests/CMakeFiles/test_core.dir/core/lifetime_test.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/core/lifetime_test.cc.o.d"
  "/root/repo/tests/core/profile_template_test.cc" "tests/CMakeFiles/test_core.dir/core/profile_template_test.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/core/profile_template_test.cc.o.d"
  "/root/repo/tests/core/soa_test.cc" "tests/CMakeFiles/test_core.dir/core/soa_test.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/core/soa_test.cc.o.d"
  "/root/repo/tests/core/wi_test.cc" "tests/CMakeFiles/test_core.dir/core/wi_test.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/core/wi_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cluster/CMakeFiles/soc_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/soc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/soc_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/soc_power.dir/DependInfo.cmake"
  "/root/repo/build/src/telemetry/CMakeFiles/soc_telemetry.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/soc_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
