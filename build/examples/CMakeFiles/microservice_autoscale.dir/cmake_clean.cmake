file(REMOVE_RECURSE
  "CMakeFiles/microservice_autoscale.dir/microservice_autoscale.cpp.o"
  "CMakeFiles/microservice_autoscale.dir/microservice_autoscale.cpp.o.d"
  "microservice_autoscale"
  "microservice_autoscale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/microservice_autoscale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
