# Empty compiler generated dependencies file for microservice_autoscale.
# This may be replaced when dependencies are built.
