file(REMOVE_RECURSE
  "../bench/bench_va_power_constrained"
  "../bench/bench_va_power_constrained.pdb"
  "CMakeFiles/bench_va_power_constrained.dir/va_power_constrained.cc.o"
  "CMakeFiles/bench_va_power_constrained.dir/va_power_constrained.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_va_power_constrained.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
