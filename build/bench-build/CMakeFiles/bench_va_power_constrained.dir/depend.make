# Empty dependencies file for bench_va_power_constrained.
# This may be replaced when dependencies are built.
