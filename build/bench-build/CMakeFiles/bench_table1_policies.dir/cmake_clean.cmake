file(REMOVE_RECURSE
  "../bench/bench_table1_policies"
  "../bench/bench_table1_policies.pdb"
  "CMakeFiles/bench_table1_policies.dir/table1_policies.cc.o"
  "CMakeFiles/bench_table1_policies.dir/table1_policies.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
