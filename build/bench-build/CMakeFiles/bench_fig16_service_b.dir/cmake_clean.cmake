file(REMOVE_RECURSE
  "../bench/bench_fig16_service_b"
  "../bench/bench_fig16_service_b.pdb"
  "CMakeFiles/bench_fig16_service_b.dir/fig16_service_b.cc.o"
  "CMakeFiles/bench_fig16_service_b.dir/fig16_service_b.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_service_b.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
