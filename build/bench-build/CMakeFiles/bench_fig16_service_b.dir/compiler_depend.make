# Empty compiler generated dependencies file for bench_fig16_service_b.
# This may be replaced when dependencies are built.
