file(REMOVE_RECURSE
  "../bench/bench_fig02_03_microservices"
  "../bench/bench_fig02_03_microservices.pdb"
  "CMakeFiles/bench_fig02_03_microservices.dir/fig02_03_microservices.cc.o"
  "CMakeFiles/bench_fig02_03_microservices.dir/fig02_03_microservices.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig02_03_microservices.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
