# Empty dependencies file for bench_fig15_prediction_cdf.
# This may be replaced when dependencies are built.
