file(REMOVE_RECURSE
  "../bench/bench_fig15_prediction_cdf"
  "../bench/bench_fig15_prediction_cdf.pdb"
  "CMakeFiles/bench_fig15_prediction_cdf.dir/fig15_prediction_cdf.cc.o"
  "CMakeFiles/bench_fig15_prediction_cdf.dir/fig15_prediction_cdf.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_prediction_cdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
