file(REMOVE_RECURSE
  "../bench/bench_fig08_rmse_cdf"
  "../bench/bench_fig08_rmse_cdf.pdb"
  "CMakeFiles/bench_fig08_rmse_cdf.dir/fig08_rmse_cdf.cc.o"
  "CMakeFiles/bench_fig08_rmse_cdf.dir/fig08_rmse_cdf.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_rmse_cdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
