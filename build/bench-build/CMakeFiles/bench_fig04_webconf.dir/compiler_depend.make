# Empty compiler generated dependencies file for bench_fig04_webconf.
# This may be replaced when dependencies are built.
