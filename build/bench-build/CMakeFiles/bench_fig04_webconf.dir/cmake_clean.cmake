file(REMOVE_RECURSE
  "../bench/bench_fig04_webconf"
  "../bench/bench_fig04_webconf.pdb"
  "CMakeFiles/bench_fig04_webconf.dir/fig04_webconf.cc.o"
  "CMakeFiles/bench_fig04_webconf.dir/fig04_webconf.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig04_webconf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
