# Empty compiler generated dependencies file for bench_fig01_load_patterns.
# This may be replaced when dependencies are built.
