file(REMOVE_RECURSE
  "../bench/bench_fig01_load_patterns"
  "../bench/bench_fig01_load_patterns.pdb"
  "CMakeFiles/bench_fig01_load_patterns.dir/fig01_load_patterns.cc.o"
  "CMakeFiles/bench_fig01_load_patterns.dir/fig01_load_patterns.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig01_load_patterns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
