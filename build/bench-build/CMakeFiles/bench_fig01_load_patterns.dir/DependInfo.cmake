
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig01_load_patterns.cc" "bench-build/CMakeFiles/bench_fig01_load_patterns.dir/fig01_load_patterns.cc.o" "gcc" "bench-build/CMakeFiles/bench_fig01_load_patterns.dir/fig01_load_patterns.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cluster/CMakeFiles/soc_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/soc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/soc_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/soc_power.dir/DependInfo.cmake"
  "/root/repo/build/src/telemetry/CMakeFiles/soc_telemetry.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/soc_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
