file(REMOVE_RECURSE
  "../bench/bench_fig17_service_c"
  "../bench/bench_fig17_service_c.pdb"
  "CMakeFiles/bench_fig17_service_c.dir/fig17_service_c.cc.o"
  "CMakeFiles/bench_fig17_service_c.dir/fig17_service_c.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_service_c.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
