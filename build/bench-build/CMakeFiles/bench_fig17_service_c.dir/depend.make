# Empty dependencies file for bench_fig17_service_c.
# This may be replaced when dependencies are built.
