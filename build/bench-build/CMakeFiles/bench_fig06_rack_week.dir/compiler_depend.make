# Empty compiler generated dependencies file for bench_fig06_rack_week.
# This may be replaced when dependencies are built.
