file(REMOVE_RECURSE
  "../bench/bench_fig06_rack_week"
  "../bench/bench_fig06_rack_week.pdb"
  "CMakeFiles/bench_fig06_rack_week.dir/fig06_rack_week.cc.o"
  "CMakeFiles/bench_fig06_rack_week.dir/fig06_rack_week.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig06_rack_week.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
