# Empty compiler generated dependencies file for bench_fig05_rack_power_cdf.
# This may be replaced when dependencies are built.
