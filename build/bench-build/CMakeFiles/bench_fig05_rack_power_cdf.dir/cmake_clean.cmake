file(REMOVE_RECURSE
  "../bench/bench_fig05_rack_power_cdf"
  "../bench/bench_fig05_rack_power_cdf.pdb"
  "CMakeFiles/bench_fig05_rack_power_cdf.dir/fig05_rack_power_cdf.cc.o"
  "CMakeFiles/bench_fig05_rack_power_cdf.dir/fig05_rack_power_cdf.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig05_rack_power_cdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
