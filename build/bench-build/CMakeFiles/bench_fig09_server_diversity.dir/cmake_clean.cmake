file(REMOVE_RECURSE
  "../bench/bench_fig09_server_diversity"
  "../bench/bench_fig09_server_diversity.pdb"
  "CMakeFiles/bench_fig09_server_diversity.dir/fig09_server_diversity.cc.o"
  "CMakeFiles/bench_fig09_server_diversity.dir/fig09_server_diversity.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_server_diversity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
