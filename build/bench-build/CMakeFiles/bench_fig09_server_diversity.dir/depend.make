# Empty dependencies file for bench_fig09_server_diversity.
# This may be replaced when dependencies are built.
