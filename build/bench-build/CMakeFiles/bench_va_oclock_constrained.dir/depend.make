# Empty dependencies file for bench_va_oclock_constrained.
# This may be replaced when dependencies are built.
