file(REMOVE_RECURSE
  "../bench/bench_micro_primitives"
  "../bench/bench_micro_primitives.pdb"
  "CMakeFiles/bench_micro_primitives.dir/micro_primitives.cc.o"
  "CMakeFiles/bench_micro_primitives.dir/micro_primitives.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_primitives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
