file(REMOVE_RECURSE
  "../bench/bench_fig07_aging"
  "../bench/bench_fig07_aging.pdb"
  "CMakeFiles/bench_fig07_aging.dir/fig07_aging.cc.o"
  "CMakeFiles/bench_fig07_aging.dir/fig07_aging.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_aging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
