# Empty dependencies file for bench_fig07_aging.
# This may be replaced when dependencies are built.
