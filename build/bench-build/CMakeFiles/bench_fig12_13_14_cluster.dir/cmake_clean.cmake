file(REMOVE_RECURSE
  "../bench/bench_fig12_13_14_cluster"
  "../bench/bench_fig12_13_14_cluster.pdb"
  "CMakeFiles/bench_fig12_13_14_cluster.dir/fig12_13_14_cluster.cc.o"
  "CMakeFiles/bench_fig12_13_14_cluster.dir/fig12_13_14_cluster.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_13_14_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
