/**
 * @file
 * soclint rule registry: each rule is a small pass over one file's
 * token stream (lexer.hh), guarded by a per-rule scope predicate on
 * the file path.  Rules append Findings; suppression via
 * soclint:allow(RULE-ID) is checked inside each rule so the rules
 * that are deliberately unsuppressible (DET-003 range-for, PERF-001
 * marker imbalance) can opt out.
 */

#ifndef SOC_TOOLS_SOCLINT_RULES_HH
#define SOC_TOOLS_SOCLINT_RULES_HH

#include "lexer.hh"

#include <string>
#include <vector>

namespace soclint
{

struct Finding {
    std::string file;    ///< display path (root-relative if possible)
    std::size_t line;    ///< 1-based
    std::string rule;    ///< e.g. "DET-004"
    std::string message;
    std::string context; ///< normalized source line (baseline key)
    bool baselined = false;
};

struct FileCtx {
    std::string display; ///< path used in findings and scope checks
    const LexedFile *lex = nullptr;
    bool allPaths = false; ///< widen every scope predicate (fixtures)
};

struct Rule {
    const char *id;
    const char *brief; ///< one-line description (SARIF metadata)
    void (*run)(const FileCtx &, std::vector<Finding> &);
};

/** All rules, in catalog order (DESIGN.md §15). */
const std::vector<Rule> &ruleRegistry();

/** Run every registered rule over @p ctx. */
void runAllRules(const FileCtx &ctx, std::vector<Finding> &out);

} // namespace soclint

#endif // SOC_TOOLS_SOCLINT_RULES_HH
