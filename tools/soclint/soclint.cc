/**
 * @file
 * soclint — determinism and unit-safety linter for the SmartOClock
 * tree.
 *
 * The simulators must be bit-reproducible (§VII experiments rely on
 * seed-for-seed identical reruns) and the budget arithmetic must not
 * smuggle raw doubles past the power::Watts / power::FreqMHz strong
 * types.  The compiler enforces the types; this checker enforces the
 * conventions the compiler cannot see:
 *
 *   DET-001  no wall-clock or libc randomness in simulation code
 *            (time(), gettimeofday(), clock(), std::chrono clocks,
 *            std::rand/srand) — all time comes from sim::Tick, all
 *            randomness from sim::Rng.
 *   DET-002  no unseeded RNG construction (std::random_device,
 *            default-constructed std engines) — every stream must be
 *            derived from the experiment seed.
 *   DET-003  no std::unordered_map / std::unordered_set in the
 *            deterministic merge/recompute paths (src/core,
 *            src/cluster, src/sim) unless the declaration is proven
 *            lookup-only and annotated; iterating one with a
 *            range-for is never excusable — hash order is not part
 *            of the contract.
 *   UNIT-001 no raw `double ...Watts` declarations in the public
 *            headers of src/power and src/core — power quantities
 *            cross module boundaries as power::Watts.
 *   PERF-001 no per-step heap allocation inside a declared replay
 *            hot region.  Regions are opt-in: code between
 *            `soclint:hot-begin(PERF-001)` and
 *            `soclint:hot-end(PERF-001)` marker comments (the
 *            replay inner loops that run once per control step per
 *            rack — millions of times at paper scale) must not
 *            allocate: no new / make_unique / make_shared, no
 *            push_back / emplace_back, no resize / reserve /
 *            assign.  Amortized or setup-time allocations inside a
 *            region carry an annotated justification.  Unbalanced
 *            markers are themselves findings (fail-closed).
 *
 * A finding is suppressed when the offending line, or one of the two
 * lines above it, carries `soclint:allow(RULE-ID)` in a comment.
 * Range-for iteration over an unordered container (DET-003) ignores
 * the annotation: annotate the declaration only after proving the
 * container is never iterated.
 *
 * Usage:  soclint [--all-paths] <file-or-dir>...
 *   --all-paths  apply the path-scoped rules (DET-003, UNIT-001) to
 *                every scanned file; used by the lint self-tests so
 *                fixtures outside src/ still trip the rules.
 *
 * Exit status: 0 clean, 1 findings, 2 usage/IO error.
 */

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <regex>
#include <string>
#include <vector>

namespace
{

namespace fs = std::filesystem;

struct Finding {
    std::string file;
    std::size_t line; // 1-based
    std::string rule;
    std::string message;
};

struct Options {
    bool allPaths = false;
    std::vector<std::string> roots;
};

/** Strip line and block comments plus string/char literals so rule
 *  regexes never fire on prose.  Block comments are tracked across
 *  lines via @p in_block. */
std::string
stripCommentsAndStrings(const std::string &line, bool &in_block)
{
    std::string out;
    out.reserve(line.size());
    for (std::size_t i = 0; i < line.size(); ++i) {
        if (in_block) {
            if (line[i] == '*' && i + 1 < line.size() &&
                line[i + 1] == '/') {
                in_block = false;
                ++i;
            }
            continue;
        }
        const char c = line[i];
        if (c == '/' && i + 1 < line.size()) {
            if (line[i + 1] == '/')
                break; // rest of line is a comment
            if (line[i + 1] == '*') {
                in_block = true;
                ++i;
                continue;
            }
        }
        if (c == '"' || c == '\'') {
            const char quote = c;
            ++i;
            while (i < line.size()) {
                if (line[i] == '\\')
                    ++i;
                else if (line[i] == quote)
                    break;
                ++i;
            }
            continue;
        }
        out.push_back(c);
    }
    return out;
}

/** True when line i (0-based) or one of the two lines above carries
 *  the allow annotation for @p rule. */
bool
allowed(const std::vector<std::string> &lines, std::size_t i,
        const std::string &rule)
{
    const std::string tag = "soclint:allow(" + rule + ")";
    const std::size_t first = i >= 2 ? i - 2 : 0;
    for (std::size_t k = first; k <= i; ++k) {
        if (lines[k].find(tag) != std::string::npos)
            return true;
    }
    return false;
}

bool
pathContains(const fs::path &p, const std::string &segment)
{
    for (const auto &part : p)
        if (part.string() == segment)
            return true;
    return false;
}

/** Files where libc/chrono time and raw engines are the point. */
bool
isRngImplementation(const fs::path &p)
{
    const std::string stem = p.stem().string();
    return stem == "rng" || stem.rfind("rng_", 0) == 0;
}

/** DET-003 / UNIT-001 scope: the deterministic merge paths and the
 *  unit-safe public headers, respectively. */
bool
inMergePath(const fs::path &p, const Options &opt)
{
    if (opt.allPaths)
        return true;
    return pathContains(p, "core") || pathContains(p, "cluster") ||
        pathContains(p, "sim");
}

bool
isUnitScopedHeader(const fs::path &p, const Options &opt)
{
    const std::string ext = p.extension().string();
    if (ext != ".hh" && ext != ".hpp" && ext != ".h")
        return false;
    if (opt.allPaths)
        return true;
    return pathContains(p, "power") || pathContains(p, "core");
}

const std::regex kWallClock(
    R"((\btime\s*\(|\bgettimeofday\b|\bclock\s*\(|\bclock_gettime\b|)"
    R"(system_clock|steady_clock|high_resolution_clock|)"
    R"(\bstd\s*::\s*rand\b|\bsrand\s*\(|[^_\w]rand\s*\(\s*\)))");

const std::regex kRandomDevice(R"(\bstd\s*::\s*random_device\b)");

// Default-constructed standard engines: `mt19937 g;`, `mt19937 g{};`,
// `std::default_random_engine e();` — anything without a seed token
// between the parens/braces.
const std::regex kUnseededEngine(
    R"(\b(mt19937(_64)?|default_random_engine|minstd_rand0?|)"
    R"(ranlux(24|48)(_base)?|knuth_b)\b\s*(\w+)?\s*(\(\s*\)|\{\s*\})?\s*;)");

const std::regex kUnorderedDecl(
    R"(\bunordered_(map|set)\s*<)");

// Declaration that binds an unordered container to a variable name:
// the last identifier before ;, {, = or ( on a line that closed the
// template argument list.
const std::regex kUnorderedVar(
    R"(\bunordered_(?:map|set)\s*<.*>\s*&?\s*(\w+)\s*[;{=(])");

const std::regex kRawWattsDouble(
    R"(\bdouble\s+&?\s*\w*[Ww]atts\w*)");

// Heap-allocation-bearing calls that must not run once per control
// step: allocator hits dominate the replay inner loop long before
// the arithmetic does at fleet scale.
const std::regex kHeapAlloc(
    R"((\bnew\b|\bmake_unique\b|\bmake_shared\b|)"
    R"(\bpush_back\s*\(|\bemplace_back\s*\(|)"
    R"(\.\s*resize\s*\(|\.\s*reserve\s*\(|\.\s*assign\s*\())");

void
scanFile(const fs::path &path, const Options &opt,
         std::vector<Finding> &findings)
{
    std::ifstream in(path);
    std::vector<std::string> lines;
    for (std::string line; std::getline(in, line);)
        lines.push_back(line);

    const bool rng_impl = isRngImplementation(path);
    const bool merge_path = inMergePath(path, opt);
    const bool unit_header = isUnitScopedHeader(path, opt);
    const std::string file = path.string();

    // Pass 1: strip comments/strings; collect names of variables
    // declared as unordered containers for the range-for check.
    std::vector<std::string> code(lines.size());
    std::vector<std::string> unordered_vars;
    bool in_block = false;
    for (std::size_t i = 0; i < lines.size(); ++i) {
        code[i] = stripCommentsAndStrings(lines[i], in_block);
        std::smatch m;
        if (std::regex_search(code[i], m, kUnorderedVar))
            unordered_vars.push_back(m[1].str());
    }

    // Pass 2: rule checks on the stripped code.  The PERF-001
    // region markers live in comments, so they are matched against
    // the raw line before the empty-code skip.
    bool in_hot = false;
    for (std::size_t i = 0; i < lines.size(); ++i) {
        const std::string &text = code[i];
        const std::size_t ln = i + 1;

        if (lines[i].find("soclint:hot-begin(PERF-001)") !=
            std::string::npos) {
            if (in_hot) {
                findings.push_back(
                    {file, ln, "PERF-001",
                     "nested hot-begin marker; close the previous "
                     "region first"});
            }
            in_hot = true;
        }
        if (lines[i].find("soclint:hot-end(PERF-001)") !=
            std::string::npos) {
            if (!in_hot) {
                findings.push_back(
                    {file, ln, "PERF-001",
                     "hot-end marker without a matching "
                     "hot-begin"});
            }
            in_hot = false;
        }

        if (text.empty())
            continue;

        if (in_hot && std::regex_search(text, kHeapAlloc) &&
            !allowed(lines, i, "PERF-001")) {
            findings.push_back(
                {file, ln, "PERF-001",
                 "heap allocation inside a replay hot region; hoist "
                 "it to setup or annotate the amortization"});
        }

        if (!rng_impl && std::regex_search(text, kWallClock) &&
            !allowed(lines, i, "DET-001")) {
            findings.push_back(
                {file, ln, "DET-001",
                 "wall-clock or libc randomness in simulation code; "
                 "use sim::Tick / sim::Rng"});
        }

        if (!rng_impl &&
            (std::regex_search(text, kRandomDevice) ||
             std::regex_search(text, kUnseededEngine)) &&
            !allowed(lines, i, "DET-002")) {
            findings.push_back(
                {file, ln, "DET-002",
                 "unseeded RNG construction; derive every stream "
                 "from the experiment seed"});
        }

        if (merge_path && std::regex_search(text, kUnorderedDecl) &&
            text.find("include") == std::string::npos &&
            !allowed(lines, i, "DET-003")) {
            findings.push_back(
                {file, ln, "DET-003",
                 "unordered container in a deterministic merge path; "
                 "use std::map/std::set or prove lookup-only and "
                 "annotate"});
        }

        if (merge_path) {
            for (const auto &var : unordered_vars) {
                const std::regex range_for(
                    R"(\bfor\s*\(.*:\s*\*?)" + var + R"(\s*\))");
                if (std::regex_search(text, range_for)) {
                    // Deliberately not suppressible: hash order is
                    // never a deterministic iteration order.
                    findings.push_back(
                        {file, ln, "DET-003",
                         "range-for over unordered container '" +
                             var + "'; iteration order depends on "
                                   "the hash"});
                }
            }
        }

        if (unit_header &&
            std::regex_search(text, kRawWattsDouble) &&
            !allowed(lines, i, "UNIT-001")) {
            findings.push_back(
                {file, ln, "UNIT-001",
                 "raw double watts in a public header; use "
                 "power::Watts"});
        }
    }

    if (in_hot) {
        findings.push_back(
            {file, lines.size(), "PERF-001",
             "hot region never closed (missing hot-end marker)"});
    }
}

bool
isSourceFile(const fs::path &p)
{
    const std::string ext = p.extension().string();
    return ext == ".cc" || ext == ".cpp" || ext == ".hh" ||
        ext == ".hpp" || ext == ".h";
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--all-paths")
            opt.allPaths = true;
        else if (arg == "--help" || arg == "-h") {
            std::puts("usage: soclint [--all-paths] <file-or-dir>...");
            return 0;
        } else
            opt.roots.push_back(arg);
    }
    if (opt.roots.empty()) {
        std::fputs("soclint: no inputs (try --help)\n", stderr);
        return 2;
    }

    std::vector<Finding> findings;
    for (const auto &root : opt.roots) {
        const fs::path p(root);
        std::error_code ec;
        if (fs::is_directory(p, ec)) {
            for (const auto &entry :
                 fs::recursive_directory_iterator(p)) {
                if (entry.is_regular_file() &&
                    isSourceFile(entry.path()))
                    scanFile(entry.path(), opt, findings);
            }
        } else if (fs::is_regular_file(p, ec)) {
            scanFile(p, opt, findings);
        } else {
            std::fprintf(stderr, "soclint: cannot read %s\n",
                         root.c_str());
            return 2;
        }
    }

    for (const auto &f : findings) {
        std::fprintf(stdout, "%s:%zu: %s: %s\n", f.file.c_str(),
                     f.line, f.rule.c_str(), f.message.c_str());
    }
    if (!findings.empty()) {
        std::fprintf(stdout, "soclint: %zu finding(s)\n",
                     findings.size());
        return 1;
    }
    return 0;
}
