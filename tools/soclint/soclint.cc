/**
 * @file
 * soclint v2 driver.
 *
 * The simulators must be bit-reproducible (§VII experiments rely on
 * seed-for-seed identical reruns), the wire parsers must fail
 * closed, and the budget arithmetic must not smuggle raw doubles
 * past the strong unit types.  The compiler enforces the types;
 * this checker enforces the conventions the compiler cannot see —
 * see DESIGN.md §15 for the rule catalog (rules.cc implements it).
 *
 * Driver shape: collect source files in deterministic sorted
 * order, lex and run every registered rule across a pool of worker
 * threads (atomic cursor over the file list, one result slot per
 * file, merged in file order — the same own-slot discipline
 * sim::ThreadPool users follow, so output is byte-identical at any
 * --jobs value), apply the checked-in baseline, report as human
 * text and/or SARIF 2.1.
 *
 * Exit codes: 0 clean, 1 findings (new, or stale baseline
 * entries), 2 usage or I/O error.  Unreadable files are fatal
 * (exit 2) with the path in the message — a linter that silently
 * skips a file is a gate that silently stopped gating.
 */

#include "baseline.hh"
#include "lexer.hh"
#include "rules.hh"
#include "sarif.hh"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace fs = std::filesystem;

namespace
{

struct Options {
    std::vector<std::string> paths; ///< roots; default set if empty
    std::string root = ".";   ///< display paths made relative to it
    std::string baselinePath;
    std::string sarifPath;
    std::string checkSarifPath;
    std::string baselineUpdatePath;
    bool allPaths = false;
    unsigned jobs = 0; ///< 0 = hardware concurrency
};

void
usage(std::ostream &os)
{
    os << "usage: soclint [options] [path...]\n"
          "\n"
          "Token-aware lint for the SmartOClock tree.  With no "
          "paths, scans\n"
          "<root>/src <root>/bench <root>/tools <root>/examples.\n"
          "\n"
          "  --root DIR             repo root for display paths and "
          "default roots (default .)\n"
          "  --all-paths            widen per-rule scope predicates "
          "to every scanned file\n"
          "  --jobs N               worker threads (default: "
          "hardware concurrency)\n"
          "  --baseline FILE        accepted findings; stale "
          "entries fail the gate\n"
          "  --baseline-update FILE rewrite FILE from current "
          "findings and exit 0\n"
          "  --sarif FILE           also write a SARIF 2.1 log\n"
          "  --check-sarif FILE     validate a SARIF file "
          "(fail-closed) and exit\n"
          "  -h, --help             this text\n";
}

/** Fail-closed argv handling: everything lands in a local Options
 *  first; @p out is assigned only once the whole line is valid. */
bool
parseArgs(int argc, char **argv, Options &out)
{
    Options o;
    bool ok = true;
    for (int i = 1; i < argc && ok; ++i) {
        const std::string arg = argv[i];
        auto needValue = [&](const char *flag,
                             std::string &slot) -> bool {
            if (i + 1 >= argc) {
                std::cerr << "soclint: " << flag
                          << " needs a value\n";
                return false;
            }
            slot = argv[++i];
            return true;
        };
        if (arg == "-h" || arg == "--help") {
            usage(std::cout);
            std::exit(0);
        } else if (arg == "--all-paths") {
            o.allPaths = true;
        } else if (arg == "--root") {
            ok = needValue("--root", o.root);
        } else if (arg == "--baseline") {
            ok = needValue("--baseline", o.baselinePath);
        } else if (arg == "--baseline-update") {
            ok = needValue("--baseline-update",
                           o.baselineUpdatePath);
        } else if (arg == "--sarif") {
            ok = needValue("--sarif", o.sarifPath);
        } else if (arg == "--check-sarif") {
            ok = needValue("--check-sarif", o.checkSarifPath);
        } else if (arg == "--jobs") {
            std::string v;
            ok = needValue("--jobs", v);
            if (ok) {
                char *end = nullptr;
                const long n = std::strtol(v.c_str(), &end, 10);
                if (end == nullptr || *end != '\0' || n < 1 ||
                    n > 256) {
                    std::cerr << "soclint: bad --jobs value '"
                              << v << "'\n";
                    ok = false;
                } else {
                    o.jobs = static_cast<unsigned>(n);
                }
            }
        } else if (!arg.empty() && arg[0] == '-') {
            std::cerr << "soclint: unknown option '" << arg
                      << "'\n";
            ok = false;
        } else {
            o.paths.push_back(arg);
        }
    }
    if (!ok)
        return false;
    out = std::move(o);
    return true;
}

bool
isSourceExt(const fs::path &p)
{
    const std::string ext = p.extension().string();
    return ext == ".cc" || ext == ".cpp" || ext == ".cxx" ||
           ext == ".hh" || ext == ".hpp" || ext == ".h" ||
           ext == ".ipp";
}

/** Subdirectories never descended into during recursion: build
 *  trees, hidden dirs, and fixture corpora (which hold deliberate
 *  violations).  A fixtures directory passed explicitly as a root
 *  IS scanned — that is how the engine self-tests run. */
bool
skipDirName(const std::string &name)
{
    return name.empty() || name[0] == '.' ||
           name.rfind("build", 0) == 0 || name == "fixtures";
}

bool
walkDir(const fs::path &dir, std::vector<fs::path> &out,
        std::string &error)
{
    std::error_code ec;
    std::vector<fs::path> entries;
    for (fs::directory_iterator
             it(dir, fs::directory_options::skip_permission_denied,
                ec),
         end;
         it != end; it.increment(ec)) {
        if (ec) {
            error = "cannot read directory '" + dir.string() +
                    "': " + ec.message();
            return false;
        }
        entries.push_back(it->path());
    }
    std::sort(entries.begin(), entries.end());
    for (const fs::path &p : entries) {
        const fs::file_status st = fs::status(p, ec);
        if (fs::is_directory(st)) {
            if (skipDirName(p.filename().string()))
                continue;
            if (!walkDir(p, out, error))
                return false;
            continue;
        }
        if (!isSourceExt(p))
            continue;
        if (ec || st.type() == fs::file_type::not_found) {
            // A source-named entry we cannot stat (e.g. a dangling
            // symlink) must not be silently skipped.
            error = "cannot read '" + p.string() + "': " +
                    (ec ? ec.message() : "broken link");
            return false;
        }
        if (fs::is_regular_file(st))
            out.push_back(p);
    }
    return true;
}

bool
collectFrom(const fs::path &p, std::vector<fs::path> &out,
            std::string &error)
{
    std::error_code ec;
    const fs::file_status st = fs::status(p, ec);
    if (ec || st.type() == fs::file_type::not_found) {
        error = "cannot read '" + p.string() + "': " +
                (ec ? ec.message() : "no such file");
        return false;
    }
    if (fs::is_regular_file(st)) {
        out.push_back(p);
        return true;
    }
    if (!fs::is_directory(st)) {
        error = "cannot read '" + p.string() +
                "': not a file or directory";
        return false;
    }
    return walkDir(p, out, error);
}

std::string
displayFor(const fs::path &p, const fs::path &root)
{
    std::error_code ec;
    const fs::path abs = fs::weakly_canonical(p, ec);
    if (ec)
        return p.generic_string();
    const fs::path rabs = fs::weakly_canonical(root, ec);
    if (ec)
        return p.generic_string();
    const fs::path rel = abs.lexically_relative(rabs);
    if (rel.empty() || rel.generic_string().rfind("..", 0) == 0)
        return p.generic_string();
    return rel.generic_string();
}

bool
readFile(const fs::path &p, std::string &out, std::string &error)
{
    std::ifstream in(p, std::ios::binary);
    if (!in.is_open()) {
        error = "cannot read '" + p.string() + "'";
        return false;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    if (in.bad()) {
        error = "I/O error while reading '" + p.string() + "'";
        return false;
    }
    out = buf.str();
    return true;
}

/** The source line @p lineno (1-based) of @p content, normalized
 *  for use as a baseline key component. */
std::string
contextLine(const std::string &content, std::size_t lineno)
{
    std::size_t begin = 0;
    for (std::size_t ln = 1; ln < lineno; ++ln) {
        begin = content.find('\n', begin);
        if (begin == std::string::npos)
            return "";
        ++begin;
    }
    std::size_t end = content.find('\n', begin);
    if (end == std::string::npos)
        end = content.size();
    return soclint::normalizeContext(
        content.substr(begin, end - begin));
}

int
runCheckSarif(const std::string &path)
{
    std::string text, err;
    if (!readFile(path, text, err)) {
        std::cerr << "soclint: " << err << "\n";
        return 2;
    }
    if (!soclint::checkSarifText(text, err)) {
        std::cerr << "soclint: invalid SARIF in '" << path
                  << "': " << err << "\n";
        return 2;
    }
    std::cout << "soclint: SARIF OK: " << path << "\n";
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    if (!parseArgs(argc, argv, opt)) {
        usage(std::cerr);
        return 2;
    }
    if (!opt.checkSarifPath.empty())
        return runCheckSarif(opt.checkSarifPath);

    const fs::path root = opt.root;
    std::vector<fs::path> roots;
    if (opt.paths.empty()) {
        roots = {root / "src", root / "bench", root / "tools",
                 root / "examples"};
    } else {
        roots.assign(opt.paths.begin(), opt.paths.end());
    }

    std::vector<fs::path> files;
    for (const fs::path &r : roots) {
        std::string err;
        if (!collectFrom(r, files, err)) {
            std::cerr << "soclint: error: " << err << "\n";
            return 2;
        }
    }
    std::sort(files.begin(), files.end());
    files.erase(std::unique(files.begin(), files.end()),
                files.end());

    std::vector<std::string> displays(files.size());
    for (std::size_t i = 0; i < files.size(); ++i)
        displays[i] = displayFor(files[i], root);

    // Parallel scan: atomic cursor, one slot per file, merged in
    // file order below — byte-identical output at any --jobs.
    std::vector<std::vector<soclint::Finding>> slots(files.size());
    std::vector<std::string> errors(files.size());
    std::atomic<std::size_t> cursor{0};
    auto work = [&]() {
        for (;;) {
            const std::size_t idx =
                cursor.fetch_add(1, std::memory_order_relaxed);
            if (idx >= files.size())
                return;
            std::string content, err;
            if (!readFile(files[idx], content, err)) {
                errors[idx] = err;
                continue;
            }
            const soclint::LexedFile lexed = soclint::lex(content);
            const soclint::FileCtx ctx{displays[idx], &lexed,
                                       opt.allPaths};
            soclint::runAllRules(ctx, slots[idx]);
            for (soclint::Finding &f : slots[idx])
                f.context = contextLine(content, f.line);
        }
    };
    unsigned jobs = opt.jobs != 0
                        ? opt.jobs
                        : std::max(1u,
                                   std::thread::hardware_concurrency());
    jobs = std::min<unsigned>(
        jobs, std::max<std::size_t>(1, files.size()));
    if (jobs <= 1) {
        work();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(jobs);
        for (unsigned t = 0; t < jobs; ++t)
            pool.emplace_back(work);
        for (std::thread &t : pool)
            t.join();
    }

    bool io_failed = false;
    for (std::size_t i = 0; i < files.size(); ++i) {
        if (!errors[i].empty()) {
            std::cerr << "soclint: error: " << errors[i] << "\n";
            io_failed = true;
        }
    }
    if (io_failed)
        return 2;

    std::vector<soclint::Finding> findings;
    for (std::vector<soclint::Finding> &slot : slots)
        for (soclint::Finding &f : slot)
            findings.push_back(std::move(f));

    if (!opt.baselineUpdatePath.empty()) {
        std::ofstream bout(opt.baselineUpdatePath,
                           std::ios::trunc);
        if (!bout.is_open()) {
            std::cerr << "soclint: error: cannot write '"
                      << opt.baselineUpdatePath << "'\n";
            return 2;
        }
        soclint::writeBaseline(bout, findings);
        std::cout << "soclint: baseline updated: "
                  << findings.size() << " entr"
                  << (findings.size() == 1 ? "y" : "ies")
                  << " -> " << opt.baselineUpdatePath << "\n";
        return 0;
    }

    std::vector<std::string> stale;
    std::size_t baseline_size = 0;
    if (!opt.baselinePath.empty()) {
        soclint::Baseline bl;
        std::string err;
        if (!bl.load(opt.baselinePath, err)) {
            std::cerr << "soclint: error: " << err << "\n";
            return 2;
        }
        baseline_size = bl.size();
        stale = bl.apply(findings);
    }

    std::size_t fresh = 0;
    for (const soclint::Finding &f : findings) {
        if (f.baselined)
            continue;
        ++fresh;
        std::cout << f.file << ":" << f.line << ": [" << f.rule
                  << "] " << f.message << "\n";
        if (!f.context.empty())
            std::cout << "    " << f.context << "\n";
    }
    for (const std::string &key : stale)
        std::cout << "stale baseline entry (fix the baseline): "
                  << key << "\n";

    if (!opt.sarifPath.empty()) {
        std::ofstream sout(opt.sarifPath, std::ios::trunc);
        if (!sout.is_open()) {
            std::cerr << "soclint: error: cannot write '"
                      << opt.sarifPath << "'\n";
            return 2;
        }
        soclint::writeSarif(sout, findings);
        if (!sout.good()) {
            std::cerr << "soclint: error: short write to '"
                      << opt.sarifPath << "'\n";
            return 2;
        }
    }

    std::cout << "soclint summary: total=" << findings.size()
              << " baselined=" << (findings.size() - fresh)
              << " new=" << fresh << " stale=" << stale.size()
              << " baseline=" << baseline_size
              << " files=" << files.size() << " jobs=" << jobs
              << "\n";
    return (fresh > 0 || !stale.empty()) ? 1 : 0;
}
