/**
 * @file
 * soclint baseline: a checked-in list of accepted findings so a new
 * rule family can land strict without a flag-day cleanup.  Keys are
 * `RULE-ID|root-relative-path|normalized source line` — no line
 * numbers, so unrelated edits above a baselined finding do not
 * invalidate the key.  A baseline entry that no longer matches any
 * finding is *stale* and fails the gate: the baseline may only
 * shrink silently, never rot.
 */

#ifndef SOC_TOOLS_SOCLINT_BASELINE_HH
#define SOC_TOOLS_SOCLINT_BASELINE_HH

#include "rules.hh"

#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace soclint
{

/** Collapse whitespace runs to single spaces and trim the ends;
 *  the normalized text is the third baseline key component. */
std::string normalizeContext(const std::string &line);

/** Baseline key for @p f (f.context must be normalized already). */
std::string baselineKey(const Finding &f);

class Baseline
{
  public:
    /** Load from @p path.  Fail-closed: an entry that is not
     *  `RULE|path|context` (or a comment/blank line) is an error.
     *  Returns false with @p error set; *this is untouched. */
    bool load(const std::string &path, std::string &error);

    /** Mark matching findings baselined (consuming one entry per
     *  match) and return the stale keys left over. */
    std::vector<std::string>
    apply(std::vector<Finding> &findings) const;

    std::size_t size() const;

  private:
    std::map<std::string, std::size_t> entries_; ///< key -> count
};

/** Write a fresh baseline covering every finding in @p findings. */
void writeBaseline(std::ostream &os,
                   const std::vector<Finding> &findings);

} // namespace soclint

#endif // SOC_TOOLS_SOCLINT_BASELINE_HH
