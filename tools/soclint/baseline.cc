#include "baseline.hh"

#include <algorithm>
#include <cctype>
#include <fstream>

namespace soclint
{

std::string
normalizeContext(const std::string &line)
{
    std::string out;
    bool pending_space = false;
    for (const char c : line) {
        if (std::isspace(static_cast<unsigned char>(c))) {
            pending_space = !out.empty();
            continue;
        }
        if (pending_space) {
            out.push_back(' ');
            pending_space = false;
        }
        out.push_back(c);
    }
    return out;
}

std::string
baselineKey(const Finding &f)
{
    return f.rule + "|" + f.file + "|" + f.context;
}

bool
Baseline::load(const std::string &path, std::string &error)
{
    std::ifstream in(path);
    if (!in.is_open()) {
        error = "cannot open baseline file '" + path + "'";
        return false;
    }
    std::map<std::string, std::size_t> fresh;
    std::string line;
    std::size_t lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        if (!line.empty() && line.back() == '\r')
            line.pop_back();
        const std::string trimmed = normalizeContext(line);
        if (trimmed.empty() || trimmed[0] == '#')
            continue;
        // RULE|path|context — exactly two structural pipes minimum
        // (context may itself contain pipes).
        const std::size_t p1 = trimmed.find('|');
        const std::size_t p2 = p1 == std::string::npos
                                   ? std::string::npos
                                   : trimmed.find('|', p1 + 1);
        if (p1 == std::string::npos || p2 == std::string::npos ||
            p1 == 0 || p2 == p1 + 1) {
            error = "malformed baseline entry at " + path + ":" +
                    std::to_string(lineno) +
                    " (want RULE|path|context)";
            return false;
        }
        ++fresh[trimmed];
    }
    if (in.bad()) {
        error = "I/O error reading baseline file '" + path + "'";
        return false;
    }
    entries_ = std::move(fresh);
    return true;
}

std::vector<std::string>
Baseline::apply(std::vector<Finding> &findings) const
{
    std::map<std::string, std::size_t> remaining = entries_;
    for (Finding &f : findings) {
        auto it = remaining.find(baselineKey(f));
        if (it != remaining.end() && it->second > 0) {
            --it->second;
            f.baselined = true;
        }
    }
    std::vector<std::string> stale;
    for (const auto &[key, count] : remaining)
        for (std::size_t i = 0; i < count; ++i)
            stale.push_back(key);
    return stale;
}

std::size_t
Baseline::size() const
{
    std::size_t n = 0;
    for (const auto &[key, count] : entries_)
        n += count;
    return n;
}

void
writeBaseline(std::ostream &os,
              const std::vector<Finding> &findings)
{
    os << "# soclint baseline - accepted findings, one per line:\n"
       << "#   RULE-ID|root-relative-path|normalized source line\n"
       << "# Regenerate with scripts/static_check.sh "
          "--baseline-update (clean tree only).\n"
       << "# Stale entries fail the gate; keep this file shrinking."
       << "\n";
    std::vector<std::string> keys;
    keys.reserve(findings.size());
    for (const Finding &f : findings)
        keys.push_back(baselineKey(f));
    std::sort(keys.begin(), keys.end());
    for (const std::string &k : keys)
        os << k << "\n";
}

} // namespace soclint
