#include "sarif.hh"

#include <cctype>
#include <cstdio>

namespace soclint
{

namespace
{

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 8);
    for (const char c : s) {
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\b':
            out += "\\b";
            break;
        case '\f':
            out += "\\f";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\r':
            out += "\\r";
            break;
        case '\t':
            out += "\\t";
            break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out.push_back(c);
            }
        }
    }
    return out;
}

} // namespace

void
writeSarif(std::ostream &os, const std::vector<Finding> &findings)
{
    os << "{\n"
       << "  \"version\": \"2.1.0\",\n"
       << "  \"$schema\": "
          "\"https://json.schemastore.org/sarif-2.1.0.json\",\n"
       << "  \"runs\": [\n"
       << "    {\n"
       << "      \"tool\": {\n"
       << "        \"driver\": {\n"
       << "          \"name\": \"soclint\",\n"
       << "          \"rules\": [\n";
    const auto &rules = ruleRegistry();
    for (std::size_t i = 0; i < rules.size(); ++i) {
        os << "            {\"id\": \"" << jsonEscape(rules[i].id)
           << "\", \"shortDescription\": {\"text\": \""
           << jsonEscape(rules[i].brief) << "\"}}"
           << (i + 1 < rules.size() ? "," : "") << "\n";
    }
    os << "          ]\n"
       << "        }\n"
       << "      },\n"
       << "      \"results\": [\n";
    for (std::size_t i = 0; i < findings.size(); ++i) {
        const Finding &f = findings[i];
        os << "        {\"ruleId\": \"" << jsonEscape(f.rule)
           << "\", \"level\": \"error\", \"baselineState\": \""
           << (f.baselined ? "unchanged" : "new")
           << "\", \"message\": {\"text\": \""
           << jsonEscape(f.message)
           << "\"}, \"locations\": [{\"physicalLocation\": "
              "{\"artifactLocation\": {\"uri\": \""
           << jsonEscape(f.file)
           << "\"}, \"region\": {\"startLine\": " << f.line
           << "}}}]}" << (i + 1 < findings.size() ? "," : "")
           << "\n";
    }
    os << "      ]\n"
       << "    }\n"
       << "  ]\n"
       << "}\n";
}

namespace
{

/**
 * Strict single-pass JSON scanner.  Build-into-locals, report at
 * the end: a malformed document can never look "partially valid".
 */
class JsonScan
{
  public:
    explicit JsonScan(const std::string &text) : s_(text) {}

    bool
    run(std::string &error)
    {
        ws();
        if (!readValue(0)) {
            error = err_;
            return false;
        }
        ws();
        if (i_ != s_.size()) {
            error = "trailing content after JSON document";
            return false;
        }
        if (version_ != "2.1.0") {
            error = "missing or wrong \"version\" (want 2.1.0)";
            return false;
        }
        if (!saw_runs_) {
            error = "missing \"runs\" array";
            return false;
        }
        if (!saw_driver_soclint_) {
            error = "driver name \"soclint\" not found";
            return false;
        }
        if (!saw_results_) {
            error = "missing \"results\" key";
            return false;
        }
        return true;
    }

  private:
    bool eof() const { return i_ >= s_.size(); }
    char peek() const { return eof() ? '\0' : s_[i_]; }

    void
    ws()
    {
        while (!eof() &&
               (s_[i_] == ' ' || s_[i_] == '\t' ||
                s_[i_] == '\n' || s_[i_] == '\r'))
            ++i_;
    }

    bool
    fail(const char *why)
    {
        if (err_.empty())
            err_ = why;
        return false;
    }

    bool
    readValue(int depth)
    {
        if (depth > 64)
            return fail("nesting too deep");
        ws();
        const char c = peek();
        if (c == '{')
            return readObject(depth);
        if (c == '[')
            return readArray(depth);
        if (c == '"') {
            std::string ignored;
            return readString(ignored);
        }
        if (c == 't')
            return readLiteral("true");
        if (c == 'f')
            return readLiteral("false");
        if (c == 'n')
            return readLiteral("null");
        if (c == '-' ||
            std::isdigit(static_cast<unsigned char>(c)))
            return readNumber();
        return fail("unexpected character in value");
    }

    bool
    readObject(int depth)
    {
        ++i_; // '{'
        ws();
        if (peek() == '}') {
            ++i_;
            return true;
        }
        for (;;) {
            ws();
            std::string key;
            if (peek() != '"' || !readString(key))
                return fail("expected object key string");
            ws();
            if (peek() != ':')
                return fail("expected ':' after key");
            ++i_;
            ws();
            if (key == "version" && depth == 0 &&
                peek() == '"') {
                std::string v;
                if (!readString(v))
                    return false;
                version_ = v;
            } else {
                if (key == "runs" && depth == 0 &&
                    peek() == '[')
                    saw_runs_ = true;
                if (key == "results")
                    saw_results_ = true;
                if (key == "name" && peek() == '"') {
                    std::string v;
                    if (!readString(v))
                        return false;
                    if (v == "soclint")
                        saw_driver_soclint_ = true;
                } else if (!readValue(depth + 1)) {
                    return false;
                }
            }
            ws();
            if (peek() == ',') {
                ++i_;
                continue;
            }
            if (peek() == '}') {
                ++i_;
                return true;
            }
            return fail("expected ',' or '}' in object");
        }
    }

    bool
    readArray(int depth)
    {
        ++i_; // '['
        ws();
        if (peek() == ']') {
            ++i_;
            return true;
        }
        for (;;) {
            if (!readValue(depth + 1))
                return false;
            ws();
            if (peek() == ',') {
                ++i_;
                continue;
            }
            if (peek() == ']') {
                ++i_;
                return true;
            }
            return fail("expected ',' or ']' in array");
        }
    }

    bool
    readString(std::string &out)
    {
        std::string v;
        ++i_; // '"'
        while (!eof()) {
            const char c = s_[i_];
            if (c == '"') {
                ++i_;
                out = std::move(v);
                return true;
            }
            if (static_cast<unsigned char>(c) < 0x20)
                return fail("raw control character in string");
            if (c == '\\') {
                ++i_;
                if (eof())
                    break;
                const char e = s_[i_];
                if (e == 'u') {
                    for (int k = 0; k < 4; ++k) {
                        ++i_;
                        if (eof() ||
                            !std::isxdigit(
                                static_cast<unsigned char>(
                                    s_[i_])))
                            return fail("bad \\u escape");
                    }
                } else if (e != '"' && e != '\\' && e != '/' &&
                           e != 'b' && e != 'f' && e != 'n' &&
                           e != 'r' && e != 't') {
                    return fail("bad escape in string");
                }
                v.push_back('?');
                ++i_;
                continue;
            }
            v.push_back(c);
            ++i_;
        }
        return fail("unterminated string");
    }

    bool
    readNumber()
    {
        if (peek() == '-')
            ++i_;
        if (!std::isdigit(static_cast<unsigned char>(peek())))
            return fail("bad number");
        while (std::isdigit(static_cast<unsigned char>(peek())))
            ++i_;
        if (peek() == '.') {
            ++i_;
            if (!std::isdigit(static_cast<unsigned char>(peek())))
                return fail("bad number fraction");
            while (std::isdigit(
                static_cast<unsigned char>(peek())))
                ++i_;
        }
        if (peek() == 'e' || peek() == 'E') {
            ++i_;
            if (peek() == '+' || peek() == '-')
                ++i_;
            if (!std::isdigit(static_cast<unsigned char>(peek())))
                return fail("bad number exponent");
            while (std::isdigit(
                static_cast<unsigned char>(peek())))
                ++i_;
        }
        return true;
    }

    bool
    readLiteral(const char *lit)
    {
        for (const char *p = lit; *p != '\0'; ++p, ++i_) {
            if (eof() || s_[i_] != *p)
                return fail("bad literal");
        }
        return true;
    }

    const std::string &s_;
    std::size_t i_ = 0;
    std::string err_;
    std::string version_;
    bool saw_runs_ = false;
    bool saw_results_ = false;
    bool saw_driver_soclint_ = false;
};

} // namespace

bool
checkSarifText(const std::string &text, std::string &error)
{
    return JsonScan(text).run(error);
}

} // namespace soclint
