/**
 * @file
 * The soclint rule families (see DESIGN.md §15 for the catalog):
 *
 *   DET-001  wall-clock / libc randomness in simulation code
 *   DET-002  unseeded RNG construction
 *   DET-003  unordered containers in deterministic merge paths
 *   DET-004  order-dependent accumulation inside parallelFor lambdas
 *   FC-001   a parse- or from-prefixed function writes its
 *            out-parameter before the last validation return
 *            (fail-closed parsing discipline)
 *   UNIT-001 raw double watts in power/core public headers
 *   UNIT-002 raw double/float MHz / Celsius / Joules in src headers
 *   UNIT-003 strong-type .count() escaping into a named raw double
 *   PERF-001 heap allocation inside a declared replay hot region
 *
 * Every pass works on the token stream; none of them re-reads raw
 * text, so string literals, comments and preprocessor lines can
 * never produce findings.
 */

#include "rules.hh"

#include <algorithm>
#include <cctype>
#include <set>
#include <string>

namespace soclint
{

namespace
{

// --------------------------------------------------------------
// Path scope helpers
// --------------------------------------------------------------

bool
hasSegment(const std::string &path, const char *segment)
{
    std::size_t begin = 0;
    while (begin <= path.size()) {
        std::size_t end = path.find_first_of("/\\", begin);
        if (end == std::string::npos)
            end = path.size();
        if (path.compare(begin, end - begin, segment) == 0)
            return true;
        begin = end + 1;
    }
    return false;
}

std::string
fileStem(const std::string &path)
{
    const std::size_t slash = path.find_last_of("/\\");
    const std::size_t begin =
        slash == std::string::npos ? 0 : slash + 1;
    const std::size_t dot = path.find_last_of('.');
    const std::size_t end =
        (dot == std::string::npos || dot < begin) ? path.size()
                                                  : dot;
    return path.substr(begin, end - begin);
}

bool
isHeaderPath(const std::string &path)
{
    const std::size_t dot = path.find_last_of('.');
    if (dot == std::string::npos)
        return false;
    const std::string ext = path.substr(dot);
    return ext == ".hh" || ext == ".hpp" || ext == ".h";
}

/** Files where libc/chrono time and raw engines are the point. */
bool
isRngImplementation(const std::string &path)
{
    const std::string stem = fileStem(path);
    return stem == "rng" || stem.rfind("rng_", 0) == 0;
}

std::string
toLower(std::string s)
{
    for (char &c : s)
        c = static_cast<char>(
            std::tolower(static_cast<unsigned char>(c)));
    return s;
}

// --------------------------------------------------------------
// Token helpers
// --------------------------------------------------------------

using Toks = std::vector<Tok>;

bool
isIdent(const Tok &t, const char *text)
{
    return t.kind == Tk::Ident && t.text == text;
}

bool
isPunct(const Tok &t, const char *text)
{
    return t.kind == Tk::Punct && t.text == text;
}

bool
identAmong(const Tok &t, std::initializer_list<const char *> names)
{
    if (t.kind != Tk::Ident)
        return false;
    for (const char *n : names)
        if (t.text == n)
            return true;
    return false;
}

/** Index of the punctuator matching the opener at @p open
 *  ("(", "[" or "{"); T.size() when unbalanced. */
std::size_t
matchDelim(const Toks &T, std::size_t open)
{
    const std::string &o = T[open].text;
    const char *close = o == "(" ? ")" : o == "[" ? "]" : "}";
    int depth = 0;
    for (std::size_t i = open; i < T.size(); ++i) {
        if (T[i].kind != Tk::Punct)
            continue;
        if (T[i].text == o)
            ++depth;
        else if (T[i].text == close && --depth == 0)
            return i;
    }
    return T.size();
}

/** Index just past the template argument list opened by a `<` at
 *  @p open; handles `>>` closing two levels.  T.size() on bail. */
std::size_t
matchTemplateArgs(const Toks &T, std::size_t open)
{
    int depth = 0;
    for (std::size_t i = open; i < T.size(); ++i) {
        if (T[i].kind != Tk::Punct)
            continue;
        if (T[i].text == "<")
            ++depth;
        else if (T[i].text == ">")
            --depth;
        else if (T[i].text == ">>")
            depth -= 2;
        else if (T[i].text == ";")
            return T.size(); // not a template arg list after all
        if (depth <= 0)
            return i + 1;
    }
    return T.size();
}

void
emit(const FileCtx &ctx, std::vector<Finding> &out, std::size_t line,
     const char *rule, std::string msg, bool suppressible = true)
{
    if (suppressible && allowedAt(*ctx.lex, line, rule))
        return;
    out.push_back({ctx.display, line, rule, std::move(msg), "",
                   false});
}

// --------------------------------------------------------------
// DET-001 — wall-clock / libc randomness in simulation code.
// Scope: src/ and examples/ (bench and tools measure wall time by
// design); rng implementation files are exempt.
// --------------------------------------------------------------

void
runDet001(const FileCtx &ctx, std::vector<Finding> &out)
{
    if (!ctx.allPaths && !hasSegment(ctx.display, "src") &&
        !hasSegment(ctx.display, "examples"))
        return;
    if (isRngImplementation(ctx.display))
        return;
    const Toks &T = ctx.lex->toks;
    for (std::size_t i = 0; i < T.size(); ++i) {
        if (T[i].kind != Tk::Ident)
            continue;
        const std::string &s = T[i].text;
        const bool member_access =
            i > 0 && (isPunct(T[i - 1], ".") ||
                      isPunct(T[i - 1], "->"));
        bool hit = false;
        if (s == "gettimeofday" || s == "clock_gettime" ||
            s == "system_clock" || s == "steady_clock" ||
            s == "high_resolution_clock") {
            hit = !member_access;
        } else if ((s == "time" || s == "clock") &&
                   i + 1 < T.size() && isPunct(T[i + 1], "(")) {
            hit = !member_access;
        } else if (s == "rand" || s == "srand") {
            const bool called =
                i + 1 < T.size() && isPunct(T[i + 1], "(");
            const bool qualified = i > 0 && isPunct(T[i - 1], "::");
            hit = !member_access && (called || qualified);
        }
        if (hit)
            emit(ctx, out, T[i].line, "DET-001",
                 "wall-clock or libc randomness in simulation "
                 "code; use sim::Tick / sim::Rng");
    }
}

// --------------------------------------------------------------
// DET-002 — unseeded RNG construction.  Scope: everywhere (rng
// implementation files exempt).
// --------------------------------------------------------------

void
runDet002(const FileCtx &ctx, std::vector<Finding> &out)
{
    if (isRngImplementation(ctx.display))
        return;
    const Toks &T = ctx.lex->toks;
    for (std::size_t i = 0; i < T.size(); ++i) {
        if (T[i].kind != Tk::Ident)
            continue;
        if (isIdent(T[i], "random_device")) {
            emit(ctx, out, T[i].line, "DET-002",
                 "unseeded RNG construction; derive every stream "
                 "from the experiment seed");
            continue;
        }
        if (!identAmong(T[i],
                        {"mt19937", "mt19937_64",
                         "default_random_engine", "minstd_rand",
                         "minstd_rand0", "ranlux24", "ranlux48",
                         "ranlux24_base", "ranlux48_base",
                         "knuth_b"}))
            continue;
        std::size_t j = i + 1;
        if (j < T.size() && T[j].kind == Tk::Ident)
            ++j;
        bool unseeded = false;
        if (j < T.size() && isPunct(T[j], ";"))
            unseeded = true;
        else if (j + 1 < T.size() && isPunct(T[j], "(") &&
                 isPunct(T[j + 1], ")"))
            unseeded = true;
        else if (j + 1 < T.size() && isPunct(T[j], "{") &&
                 isPunct(T[j + 1], "}"))
            unseeded = true;
        if (unseeded)
            emit(ctx, out, T[i].line, "DET-002",
                 "unseeded RNG construction; derive every stream "
                 "from the experiment seed");
    }
}

// --------------------------------------------------------------
// DET-003 — unordered containers in the deterministic merge paths.
// Scope: src/core, src/cluster, src/sim.  The declaration finding
// is suppressible after proving the container lookup-only; range-
// for iteration never is.
// --------------------------------------------------------------

void
runDet003(const FileCtx &ctx, std::vector<Finding> &out)
{
    if (!ctx.allPaths && !hasSegment(ctx.display, "core") &&
        !hasSegment(ctx.display, "cluster") &&
        !hasSegment(ctx.display, "sim"))
        return;
    const Toks &T = ctx.lex->toks;

    // Pass A: declarations, collecting bound variable names.
    std::vector<std::string> uvars;
    for (std::size_t i = 0; i < T.size(); ++i) {
        if (!identAmong(T[i], {"unordered_map", "unordered_set"}) ||
            i + 1 >= T.size() || !isPunct(T[i + 1], "<"))
            continue;
        emit(ctx, out, T[i].line, "DET-003",
             "unordered container in a deterministic merge path; "
             "use std::map/std::set or prove lookup-only and "
             "annotate");
        std::size_t j = matchTemplateArgs(T, i + 1);
        while (j < T.size() &&
               (isPunct(T[j], "&") || isPunct(T[j], "*")))
            ++j;
        if (j + 1 < T.size() && T[j].kind == Tk::Ident &&
            (isPunct(T[j + 1], ";") || isPunct(T[j + 1], "{") ||
             isPunct(T[j + 1], "=") || isPunct(T[j + 1], "(") ||
             isPunct(T[j + 1], ",")))
            uvars.push_back(T[j].text);
    }
    if (uvars.empty())
        return;

    // Pass B: range-for over a declared unordered container.
    for (std::size_t i = 0; i + 1 < T.size(); ++i) {
        if (!isIdent(T[i], "for") || !isPunct(T[i + 1], "("))
            continue;
        const std::size_t close = matchDelim(T, i + 1);
        if (close == T.size())
            continue;
        // The range-for colon sits at parenthesis depth 1 ("::" is
        // a distinct token, so a bare ":" is unambiguous).
        int depth = 0;
        for (std::size_t j = i + 1; j < close; ++j) {
            if (isPunct(T[j], "("))
                ++depth;
            else if (isPunct(T[j], ")"))
                --depth;
            else if (depth == 1 && isPunct(T[j], ":")) {
                std::size_t k = j + 1;
                while (k < close && (isPunct(T[k], "*") ||
                                     isPunct(T[k], "&")))
                    ++k;
                if (k + 1 == close && T[k].kind == Tk::Ident &&
                    std::find(uvars.begin(), uvars.end(),
                              T[k].text) != uvars.end()) {
                    // Deliberately not suppressible: hash order is
                    // never a deterministic iteration order.
                    emit(ctx, out, T[k].line, "DET-003",
                         "range-for over unordered container '" +
                             T[k].text +
                             "'; iteration order depends on the "
                             "hash",
                         /*suppressible=*/false);
                }
                break;
            }
        }
    }
}

// --------------------------------------------------------------
// DET-004 — order-dependent accumulation on shared state inside a
// parallelFor / parallelForChunked lambda.  Scope: everywhere.
//
// A compound assignment inside the lambda body is flagged when its
// base object is captured by reference and the left-hand side is
// not indexed by a lambda parameter or body-local variable (the
// own-slot pattern the thread pool's contract requires: every index
// writes only its own output slot, merged in rack order
// afterwards).  std::fma calls are flagged unconditionally: fused
// contraction inside a reduction is order- and hardware-dependent.
// Proven rack-ordered merges annotate soclint:allow(DET-004).
// --------------------------------------------------------------

const std::set<std::string> &
declKeywords()
{
    static const std::set<std::string> kw = {
        "return", "else",   "if",     "while", "do",     "for",
        "case",   "break",  "continue", "new", "delete", "goto",
        "switch", "sizeof", "throw",  "co_return", "co_await"};
    return kw;
}

void
runDet004(const FileCtx &ctx, std::vector<Finding> &out)
{
    const Toks &T = ctx.lex->toks;
    for (std::size_t i = 0; i + 1 < T.size(); ++i) {
        if (!identAmong(T[i], {"parallelFor", "parallelForChunked"}) ||
            !isPunct(T[i + 1], "("))
            continue;
        const std::size_t call_close = matchDelim(T, i + 1);
        if (call_close == T.size())
            continue;

        for (std::size_t j = i + 2; j < call_close; ++j) {
            // A lambda introducer follows "(" or "," — a "[" after
            // an identifier or closing bracket is a subscript.
            if (!isPunct(T[j], "[") ||
                !(isPunct(T[j - 1], "(") || isPunct(T[j - 1], ",")))
                continue;
            const std::size_t cap_close = matchDelim(T, j);
            if (cap_close >= call_close)
                break;

            bool ref_default = false;
            std::set<std::string> ref_caps;
            for (std::size_t k = j + 1; k < cap_close; ++k) {
                if (isPunct(T[k], "&")) {
                    if (k + 1 < cap_close &&
                        T[k + 1].kind == Tk::Ident) {
                        ref_caps.insert(T[k + 1].text);
                        ++k;
                    } else {
                        ref_default = true;
                    }
                }
            }
            std::size_t k = cap_close + 1;
            std::set<std::string> locals;
            if (k < call_close && isPunct(T[k], "(")) {
                const std::size_t p_close = matchDelim(T, k);
                int depth = 0;
                for (std::size_t m = k; m < p_close; ++m) {
                    if (isPunct(T[m], "("))
                        ++depth;
                    else if (isPunct(T[m], ")"))
                        --depth;
                    else if (depth == 1 &&
                             T[m].kind == Tk::Ident &&
                             (isPunct(T[m + 1], ",") ||
                              m + 1 == p_close))
                        locals.insert(T[m].text);
                }
                k = p_close + 1;
            }
            while (k < call_close && !isPunct(T[k], "{"))
                ++k;
            if (k >= call_close)
                break;
            const std::size_t body_close = matchDelim(T, k);
            if (body_close > call_close) {
                j = cap_close;
                continue;
            }

            // Body-local declarations: `Type name` / `auto name`
            // followed by ; = { or ( — name shadows shared state.
            for (std::size_t m = k + 2; m < body_close; ++m) {
                if (T[m].kind != Tk::Ident ||
                    m + 1 >= body_close)
                    continue;
                const Tok &prev = T[m - 1];
                const Tok &next = T[m + 1];
                const bool decl_prev =
                    (prev.kind == Tk::Ident &&
                     declKeywords().count(prev.text) == 0) ||
                    isPunct(prev, "&") || isPunct(prev, "*") ||
                    isPunct(prev, ">");
                const bool decl_next =
                    isPunct(next, ";") || isPunct(next, "=") ||
                    isPunct(next, "{") || isPunct(next, "(");
                if (decl_prev && decl_next)
                    locals.insert(T[m].text);
            }

            for (std::size_t m = k + 1; m < body_close; ++m) {
                if (isIdent(T[m], "fma") && m + 1 < body_close &&
                    isPunct(T[m + 1], "(")) {
                    emit(ctx, out, T[m].line, "DET-004",
                         "fma inside a parallel loop lambda: fused "
                         "contraction is order-dependent; merge in "
                         "rack order outside the loop");
                    continue;
                }
                if (T[m].kind != Tk::Punct ||
                    (T[m].text != "+=" && T[m].text != "-=" &&
                     T[m].text != "*=" && T[m].text != "/="))
                    continue;
                // Statement start of the left-hand side.
                std::size_t s = m;
                while (s > k + 1 &&
                       !(isPunct(T[s - 1], ";") ||
                         isPunct(T[s - 1], "{") ||
                         isPunct(T[s - 1], "}") ||
                         isPunct(T[s - 1], ")")))
                    --s;
                std::string base;
                for (std::size_t q = s; q < m; ++q) {
                    if (T[q].kind == Tk::Ident) {
                        base = T[q].text;
                        break;
                    }
                }
                if (base.empty() || locals.count(base))
                    continue;
                if (!ref_default && !ref_caps.count(base))
                    continue;
                // Own-slot exemption: a subscript on the LHS whose
                // index mentions a lambda param or body local.
                bool own_slot = false;
                for (std::size_t q = s; q < m && !own_slot; ++q) {
                    if (!isPunct(T[q], "["))
                        continue;
                    const std::size_t b_close = matchDelim(T, q);
                    for (std::size_t r = q + 1;
                         r < b_close && r < m; ++r)
                        if (T[r].kind == Tk::Ident &&
                            locals.count(T[r].text)) {
                            own_slot = true;
                            break;
                        }
                }
                if (!own_slot)
                    emit(ctx, out, T[m].line, "DET-004",
                         "accumulation on by-reference shared state "
                         "'" + base +
                             "' inside a parallel loop lambda; "
                             "write per-index slots and merge in "
                             "rack order");
            }
            j = body_close;
        }
        i = call_close;
    }
}

// --------------------------------------------------------------
// FC-001 — fail-closed parsing: a function named parse*/from* that
// takes a non-const reference or pointer out-parameter must not
// write it before the last validation (early) return.  The
// conforming shape is core::wire::parseFrame: validate everything
// into locals, assign the out-parameter once, then return success.
// Scope: everywhere.
// --------------------------------------------------------------

struct OutParam {
    std::string name;
};

void
runFc001(const FileCtx &ctx, std::vector<Finding> &out)
{
    const Toks &T = ctx.lex->toks;
    for (std::size_t i = 0; i + 1 < T.size(); ++i) {
        if (T[i].kind != Tk::Ident || !isPunct(T[i + 1], "("))
            continue;
        const std::string low = toLower(T[i].text);
        if (low.rfind("parse", 0) != 0 && low.rfind("from", 0) != 0)
            continue;
        if (i > 0 &&
            (isPunct(T[i - 1], ".") || isPunct(T[i - 1], "->")))
            continue; // member call, not a definition
        const std::size_t params_close = matchDelim(T, i + 1);
        if (params_close == T.size())
            continue;

        // Definition?  Scan past cv/noexcept/trailing-return until
        // we hit "{" (definition) or a token that ends the idea.
        std::size_t k = params_close + 1;
        bool is_def = false;
        while (k < T.size()) {
            if (isPunct(T[k], "{")) {
                is_def = true;
                break;
            }
            if (isPunct(T[k], ";") || isPunct(T[k], ")") ||
                isPunct(T[k], ",") || isPunct(T[k], "}") ||
                isPunct(T[k], "="))
                break;
            ++k;
        }
        if (!is_def)
            continue;

        // Out-parameters: non-const & or * params.
        std::vector<OutParam> outs;
        {
            std::size_t begin = i + 2;
            int depth = 1;
            for (std::size_t m = i + 2; m <= params_close; ++m) {
                if (isPunct(T[m], "(") || isPunct(T[m], "<"))
                    ++depth;
                else if (isPunct(T[m], ")") || isPunct(T[m], ">"))
                    --depth;
                const bool at_split =
                    (depth == 1 && isPunct(T[m], ",")) ||
                    m == params_close;
                if (!at_split)
                    continue;
                bool has_const = false, has_ref = false;
                std::string name;
                for (std::size_t q = begin; q < m; ++q) {
                    if (isIdent(T[q], "const"))
                        has_const = true;
                    else if (isPunct(T[q], "&") ||
                             isPunct(T[q], "*"))
                        has_ref = true;
                    else if (isPunct(T[q], "="))
                        break; // default arg: name already seen
                    else if (T[q].kind == Tk::Ident)
                        name = T[q].text;
                }
                if (!has_const && has_ref && !name.empty())
                    outs.push_back({name});
                begin = m + 1;
            }
        }
        if (outs.empty()) {
            i = params_close;
            continue;
        }

        const std::size_t body_open = k;
        const std::size_t body_close = matchDelim(T, body_open);
        if (body_close == T.size())
            continue;

        // Early returns: every `return` except the last one in the
        // body.  Writes may only happen after the last of them.
        std::size_t last_return = 0, prev_return = 0;
        for (std::size_t m = body_open + 1; m < body_close; ++m) {
            if (isIdent(T[m], "return")) {
                prev_return = last_return;
                last_return = m;
            }
        }
        if (prev_return == 0) {
            i = body_close;
            continue; // zero or one return: nothing to order
        }
        const std::size_t guard = prev_return;

        for (std::size_t m = body_open + 1; m < guard; ++m) {
            if (T[m].kind != Tk::Ident)
                continue;
            bool is_out = false;
            for (const auto &o : outs)
                if (o.name == T[m].text)
                    is_out = true;
            if (!is_out)
                continue;
            // Statement start: preceded by ; { } ) else/do, or a
            // leading '*' deref of the same shape.
            std::size_t start = m;
            if (start > body_open && isPunct(T[start - 1], "*"))
                --start;
            const Tok &prev = T[start - 1];
            const bool stmt_start =
                isPunct(prev, ";") || isPunct(prev, "{") ||
                isPunct(prev, "}") || isPunct(prev, ")") ||
                isIdent(prev, "else") || isIdent(prev, "do");
            if (!stmt_start)
                continue;
            // Does the statement assign or call into the object?
            bool writes = false;
            int depth = 0;
            for (std::size_t q = m; q < guard; ++q) {
                if (isPunct(T[q], "("))
                    ++depth;
                else if (isPunct(T[q], ")"))
                    --depth;
                else if (depth == 0 && isPunct(T[q], ";"))
                    break;
                else if (depth == 0 && T[q].kind == Tk::Punct &&
                         (T[q].text == "=" || T[q].text == "+=" ||
                          T[q].text == "-=" || T[q].text == "*=" ||
                          T[q].text == "/=" || T[q].text == "%=" ||
                          T[q].text == "&=" || T[q].text == "|=" ||
                          T[q].text == "^=" ||
                          T[q].text == "<<=" ||
                          T[q].text == ">>="))
                    writes = true;
                else if (depth == 0 && q + 2 < guard &&
                         (isPunct(T[q], ".") ||
                          isPunct(T[q], "->")) &&
                         T[q + 1].kind == Tk::Ident &&
                         isPunct(T[q + 2], "("))
                    writes = true; // member call on the out-param
            }
            if (writes)
                emit(ctx, out, T[m].line, "FC-001",
                     "out-parameter '" + T[m].text +
                         "' written before the last validation "
                         "return; parse into a local and assign "
                         "only on full success (fail-closed)");
        }
        i = body_close;
    }
}

// --------------------------------------------------------------
// UNIT-001 — raw double watts in power/core public headers.
// --------------------------------------------------------------

void
runUnit001(const FileCtx &ctx, std::vector<Finding> &out)
{
    if (!isHeaderPath(ctx.display))
        return;
    if (!ctx.allPaths && !hasSegment(ctx.display, "power") &&
        !hasSegment(ctx.display, "core"))
        return;
    const Toks &T = ctx.lex->toks;
    for (std::size_t i = 0; i + 1 < T.size(); ++i) {
        if (!isIdent(T[i], "double"))
            continue;
        std::size_t j = i + 1;
        if (isPunct(T[j], "&") && j + 1 < T.size())
            ++j;
        if (T[j].kind == Tk::Ident &&
            toLower(T[j].text).find("watts") != std::string::npos)
            emit(ctx, out, T[i].line, "UNIT-001",
                 "raw double watts in a public header; use "
                 "power::Watts");
    }
}

// --------------------------------------------------------------
// UNIT-002 — raw double/float MHz / Celsius / Joules declarations
// in any public header under src/: these quantities cross module
// boundaries as power::FreqMHz / power::Celsius / power::Joules.
// --------------------------------------------------------------

void
runUnit002(const FileCtx &ctx, std::vector<Finding> &out)
{
    if (!isHeaderPath(ctx.display))
        return;
    if (!ctx.allPaths && !hasSegment(ctx.display, "src"))
        return;
    const Toks &T = ctx.lex->toks;
    for (std::size_t i = 0; i + 1 < T.size(); ++i) {
        if (!isIdent(T[i], "double") && !isIdent(T[i], "float"))
            continue;
        std::size_t j = i + 1;
        if (isPunct(T[j], "&") && j + 1 < T.size())
            ++j;
        if (T[j].kind != Tk::Ident)
            continue;
        const std::string low = toLower(T[j].text);
        const char *unit = nullptr;
        if (low.find("mhz") != std::string::npos)
            unit = "power::FreqMHz";
        else if (low.find("celsius") != std::string::npos)
            unit = "power::Celsius";
        else if (low.find("joules") != std::string::npos)
            unit = "power::Joules";
        if (unit != nullptr)
            emit(ctx, out, T[i].line, "UNIT-002",
                 "raw " + T[i].text + " '" + T[j].text +
                     "' in a public header; use " + unit);
    }
}

// --------------------------------------------------------------
// UNIT-003 — a strong type's .count() escaping into a named raw
// double that lives across statement boundaries: either a
// double/float local initialized from a .count() expression, or a
// compound accumulation of .count() values into a raw double.
// std::chrono durations also spell .count(), so statements that
// mention chrono vocabulary are exempt.  Scope: everywhere.
// --------------------------------------------------------------

bool
hasCountCall(const Toks &T, std::size_t begin, std::size_t end)
{
    for (std::size_t q = begin; q + 3 <= end && q + 3 < T.size();
         ++q) {
        if ((isPunct(T[q], ".") || isPunct(T[q], "->")) &&
            isIdent(T[q + 1], "count") &&
            isPunct(T[q + 2], "(") && isPunct(T[q + 3], ")"))
            return true;
    }
    return false;
}

bool
chronoExempt(const Toks &T, std::size_t begin, std::size_t end)
{
    for (std::size_t q = begin; q < end && q < T.size(); ++q) {
        if (identAmong(T[q],
                       {"chrono", "duration", "time_point",
                        "nanoseconds", "microseconds",
                        "milliseconds", "seconds", "minutes",
                        "hours"}))
            return true;
    }
    return false;
}

/** End (index of ';') of the statement starting at @p begin. */
std::size_t
statementEnd(const Toks &T, std::size_t begin)
{
    int depth = 0;
    for (std::size_t q = begin; q < T.size(); ++q) {
        if (T[q].kind != Tk::Punct)
            continue;
        if (T[q].text == "(" || T[q].text == "[" ||
            T[q].text == "{")
            ++depth;
        else if (T[q].text == ")" || T[q].text == "]" ||
                 T[q].text == "}")
            --depth;
        else if (depth <= 0 && T[q].text == ";")
            return q;
    }
    return T.size();
}

void
runUnit003(const FileCtx &ctx, std::vector<Finding> &out)
{
    const Toks &T = ctx.lex->toks;

    // Raw double/float names declared anywhere in this file.
    std::set<std::string> raw_doubles;
    for (std::size_t i = 0; i + 1 < T.size(); ++i) {
        if (!isIdent(T[i], "double") && !isIdent(T[i], "float"))
            continue;
        if (i > 0 && isPunct(T[i - 1], "<"))
            continue; // template argument, e.g. static_cast<double>
        std::size_t j = i + 1;
        if (isPunct(T[j], "&") && j + 1 < T.size())
            ++j;
        if (T[j].kind == Tk::Ident)
            raw_doubles.insert(T[j].text);
    }

    for (std::size_t i = 0; i + 1 < T.size(); ++i) {
        // Pattern A: double NAME = ...count()...;
        if ((isIdent(T[i], "double") || isIdent(T[i], "float")) &&
            !(i > 0 && isPunct(T[i - 1], "<"))) {
            std::size_t j = i + 1;
            if (isPunct(T[j], "&") && j + 1 < T.size())
                ++j;
            if (T[j].kind == Tk::Ident && j + 1 < T.size() &&
                (isPunct(T[j + 1], "=") ||
                 isPunct(T[j + 1], "{"))) {
                const std::size_t end = statementEnd(T, j + 1);
                if (hasCountCall(T, j + 1, end) &&
                    !chronoExempt(T, i, end))
                    emit(ctx, out, T[i].line, "UNIT-003",
                         "strong-type .count() bound to raw " +
                             T[i].text + " '" + T[j].text +
                             "'; keep the quantity typed and call "
                             ".count() at the use site");
            }
            continue;
        }
        // Pattern B: NAME += ...count()...;  (NAME a raw double)
        if (T[i].kind == Tk::Punct &&
            (T[i].text == "+=" || T[i].text == "-=") && i > 0 &&
            T[i - 1].kind == Tk::Ident &&
            raw_doubles.count(T[i - 1].text)) {
            const std::size_t end = statementEnd(T, i);
            if (hasCountCall(T, i, end) &&
                !chronoExempt(T, i, end))
                emit(ctx, out, T[i].line, "UNIT-003",
                     "accumulating .count() values into raw "
                     "double '" +
                         T[i - 1].text +
                         "'; accumulate in the strong type and "
                         "convert once");
        }
    }
}

// --------------------------------------------------------------
// PERF-001 — heap allocation inside a declared replay hot region
// (between hot-begin / hot-end marker comments).  Marker imbalance
// is itself a finding and never suppressible (fail-closed).
// --------------------------------------------------------------

void
runPerf001(const FileCtx &ctx, std::vector<Finding> &out)
{
    const LexedFile &L = *ctx.lex;
    const Toks &T = L.toks;
    std::size_t t = 0; // token cursor, advanced line by line
    bool in_hot = false;
    for (std::size_t ln = 1; ln <= L.lines.size(); ++ln) {
        const LineFacts &f = L.lines[ln - 1];
        if (f.hotBegin) {
            if (in_hot)
                emit(ctx, out, ln, "PERF-001",
                     "nested hot-begin marker; close the previous "
                     "region first",
                     /*suppressible=*/false);
            in_hot = true;
        }
        if (f.hotEnd) {
            if (!in_hot)
                emit(ctx, out, ln, "PERF-001",
                     "hot-end marker without a matching hot-begin",
                     /*suppressible=*/false);
            in_hot = false;
            // Allocations on the hot-end line are already outside.
        }
        for (; t < T.size() && T[t].line == ln; ++t) {
            if (!in_hot)
                continue;
            bool alloc = false;
            if (isIdent(T[t], "new") ||
                identAmong(T[t], {"make_unique", "make_shared"}))
                alloc = true;
            else if (identAmong(T[t],
                                {"push_back", "emplace_back"}) &&
                     t + 1 < T.size() && isPunct(T[t + 1], "("))
                alloc = true;
            else if (identAmong(T[t],
                                {"resize", "reserve", "assign"}) &&
                     t > 0 &&
                     (isPunct(T[t - 1], ".") ||
                      isPunct(T[t - 1], "->")) &&
                     t + 1 < T.size() && isPunct(T[t + 1], "("))
                alloc = true;
            if (alloc)
                emit(ctx, out, T[t].line, "PERF-001",
                     "heap allocation inside a replay hot region; "
                     "hoist it to setup or annotate the "
                     "amortization");
        }
    }
    if (in_hot)
        emit(ctx, out, L.lineCount, "PERF-001",
             "hot region never closed (missing hot-end marker)",
             /*suppressible=*/false);
}

} // namespace

const std::vector<Rule> &
ruleRegistry()
{
    static const std::vector<Rule> rules = {
        {"DET-001",
         "No wall-clock or libc randomness in simulation code",
         runDet001},
        {"DET-002", "No unseeded RNG construction", runDet002},
        {"DET-003",
         "No unordered containers in deterministic merge paths",
         runDet003},
        {"DET-004",
         "No order-dependent accumulation in parallel loop lambdas",
         runDet004},
        {"FC-001",
         "parse*/from* must not write out-parameters before the "
         "last validation return",
         runFc001},
        {"UNIT-001",
         "No raw double watts in power/core public headers",
         runUnit001},
        {"UNIT-002",
         "No raw double/float MHz, Celsius or Joules in src "
         "headers",
         runUnit002},
        {"UNIT-003",
         "No strong-type .count() escaping into named raw doubles",
         runUnit003},
        {"PERF-001",
         "No heap allocation inside declared replay hot regions",
         runPerf001},
    };
    return rules;
}

void
runAllRules(const FileCtx &ctx, std::vector<Finding> &out)
{
    const std::size_t first = out.size();
    for (const Rule &r : ruleRegistry())
        r.run(ctx, out);
    std::stable_sort(out.begin() + static_cast<std::ptrdiff_t>(first),
                     out.end(),
                     [](const Finding &a, const Finding &b) {
                         if (a.line != b.line)
                             return a.line < b.line;
                         return a.rule < b.rule;
                     });
}

} // namespace soclint
