/**
 * @file
 * soclint lexer implementation.  See lexer.hh for the contract.
 *
 * The cursor resolves backslash-newline splices transparently
 * (counting physical lines), except inside raw string literals,
 * whose content is consumed verbatim off the underlying buffer.
 */

#include "lexer.hh"

#include <cctype>

namespace soclint
{

namespace
{

bool
isIdentStart(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool
isIdentChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

class Lexer
{
  public:
    explicit Lexer(const std::string &src) : src_(src) {}

    LexedFile
    run()
    {
        bool line_start = true;
        while (!eof()) {
            const char c = peek();
            if (eof())
                break;
            if (c == '\n') {
                bump();
                line_start = true;
                continue;
            }
            if (std::isspace(static_cast<unsigned char>(c))) {
                bump();
                continue;
            }
            if (c == '/' && peek2() == '/') {
                lineComment();
                continue;
            }
            if (c == '/' && peek2() == '*') {
                blockComment();
                continue;
            }
            if (c == '#' && line_start) {
                ppDirective();
                line_start = true;
                continue;
            }
            line_start = false;
            if (isIdentStart(c)) {
                identifier();
                continue;
            }
            if (std::isdigit(static_cast<unsigned char>(c)) ||
                (c == '.' &&
                 std::isdigit(static_cast<unsigned char>(peek2())))) {
                number();
                continue;
            }
            if (c == '"') {
                stringLit();
                continue;
            }
            if (c == '\'') {
                charLit();
                continue;
            }
            punct();
        }
        out_.lineCount = line_;
        noteLine(line_);
        return std::move(out_);
    }

  private:
    bool eof() const { return i_ >= src_.size(); }

    /** Skip backslash-newline splices at the current position. */
    void
    skipSplices()
    {
        while (i_ + 1 < src_.size() && src_[i_] == '\\') {
            if (src_[i_ + 1] == '\n') {
                i_ += 2;
                ++line_;
            } else if (src_[i_ + 1] == '\r' && i_ + 2 < src_.size() &&
                       src_[i_ + 2] == '\n') {
                i_ += 3;
                ++line_;
            } else {
                break;
            }
        }
    }

    char
    peek()
    {
        skipSplices();
        return eof() ? '\0' : src_[i_];
    }

    /** The logical character after peek(). */
    char
    peek2()
    {
        skipSplices();
        if (eof())
            return '\0';
        const std::size_t save_i = i_;
        const std::size_t save_line = line_;
        ++i_; // the current char cannot itself start a splice here
        const char c = peek();
        i_ = save_i;
        line_ = save_line;
        return c;
    }

    /** Consume one logical character. */
    void
    bump()
    {
        skipSplices();
        if (eof())
            return;
        if (src_[i_] == '\n')
            ++line_;
        ++i_;
    }

    void
    noteLine(std::size_t ln)
    {
        if (out_.lines.size() < ln)
            out_.lines.resize(ln);
    }

    LineFacts &
    facts(std::size_t ln)
    {
        noteLine(ln);
        return out_.lines[ln - 1];
    }

    void
    emit(Tk kind, std::string text, std::size_t ln)
    {
        out_.toks.push_back({kind, std::move(text), ln});
    }

    /** Scan @p text (a comment body) for soclint control markers;
     *  @p char_lines gives the physical line of each character so a
     *  marker in a multi-line block comment lands on its own line. */
    void
    scanMarkers(const std::string &text,
                const std::vector<std::size_t> &char_lines)
    {
        static const std::string kAllow = "soclint:allow(";
        static const std::string kHotBegin =
            "soclint:hot-begin(PERF-001)";
        static const std::string kHotEnd =
            "soclint:hot-end(PERF-001)";

        for (std::size_t pos = text.find(kAllow);
             pos != std::string::npos;
             pos = text.find(kAllow, pos + 1)) {
            const std::size_t id_begin = pos + kAllow.size();
            const std::size_t id_end = text.find(')', id_begin);
            if (id_end == std::string::npos)
                continue;
            facts(char_lines[pos])
                .allows.push_back(
                    text.substr(id_begin, id_end - id_begin));
        }
        for (std::size_t pos = text.find(kHotBegin);
             pos != std::string::npos;
             pos = text.find(kHotBegin, pos + 1))
            facts(char_lines[pos]).hotBegin = true;
        for (std::size_t pos = text.find(kHotEnd);
             pos != std::string::npos;
             pos = text.find(kHotEnd, pos + 1))
            facts(char_lines[pos]).hotEnd = true;
    }

    /** `//` comment; a trailing backslash splices the next physical
     *  line into the comment (bump() resolves the splice), so code
     *  behind a spliced line comment stays comment. */
    void
    lineComment()
    {
        bump(); // '/'
        bump(); // '/'
        std::string text;
        std::vector<std::size_t> char_lines;
        while (!eof() && peek() != '\n') {
            text.push_back(peek());
            char_lines.push_back(line_);
            bump();
        }
        scanMarkers(text, char_lines);
    }

    void
    blockComment()
    {
        bump(); // '/'
        bump(); // '*'
        std::string text;
        std::vector<std::size_t> char_lines;
        while (!eof()) {
            if (peek() == '*' && peek2() == '/') {
                bump();
                bump();
                break;
            }
            text.push_back(peek());
            char_lines.push_back(line_);
            bump();
        }
        scanMarkers(text, char_lines);
    }

    /** Whole preprocessor directive (splice-aware) as one token. */
    void
    ppDirective()
    {
        const std::size_t ln = line_;
        std::string text;
        while (!eof() && peek() != '\n') {
            // A comment ends the directive's interesting text.
            if (peek() == '/' &&
                (peek2() == '/' || peek2() == '*'))
                break;
            text.push_back(peek());
            bump();
        }
        emit(Tk::PP, std::move(text), ln);
    }

    void
    identifier()
    {
        const std::size_t ln = line_;
        std::string text;
        while (!eof() && isIdentChar(peek())) {
            text.push_back(peek());
            bump();
        }
        // Raw-string prefix?  R"delim(...)delim" with optional
        // encoding prefix; the content is consumed verbatim.
        if ((text == "R" || text == "u8R" || text == "uR" ||
             text == "UR" || text == "LR") &&
            peek() == '"') {
            rawString(ln);
            return;
        }
        // Encoded ordinary string (u8"...", L"...") — the literal
        // is lexed on the next loop iteration; keep the prefix as an
        // identifier token, which no rule matches.
        emit(Tk::Ident, std::move(text), ln);
    }

    void
    number()
    {
        const std::size_t ln = line_;
        std::string text;
        char prev = '\0';
        while (!eof()) {
            const char c = peek();
            const bool expo_sign =
                (c == '+' || c == '-') &&
                (prev == 'e' || prev == 'E' || prev == 'p' ||
                 prev == 'P');
            if (!(isIdentChar(c) || c == '.' || c == '\'' ||
                  expo_sign))
                break;
            text.push_back(c);
            prev = c;
            bump();
        }
        emit(Tk::Number, std::move(text), ln);
    }

    void
    stringLit()
    {
        const std::size_t ln = line_;
        bump(); // '"'
        while (!eof()) {
            const char c = peek();
            if (c == '\\') {
                bump();
                bump(); // escaped char
                continue;
            }
            bump();
            if (c == '"')
                break;
        }
        emit(Tk::Str, "", ln);
    }

    void
    charLit()
    {
        const std::size_t ln = line_;
        bump(); // '\''
        while (!eof()) {
            const char c = peek();
            if (c == '\\') {
                bump();
                bump();
                continue;
            }
            bump();
            if (c == '\'')
                break;
        }
        emit(Tk::Char, "", ln);
    }

    /** Raw string: splice processing suspended, content verbatim.
     *  The cursor sits on the opening '"'. */
    void
    rawString(std::size_t ln)
    {
        ++i_; // '"' — raw buffer from here on
        std::string delim;
        while (i_ < src_.size() && src_[i_] != '(' &&
               delim.size() < 16) {
            delim.push_back(src_[i_]);
            ++i_;
        }
        if (i_ < src_.size())
            ++i_; // '('
        const std::string closer = ")" + delim + "\"";
        while (i_ < src_.size()) {
            if (src_[i_] == '\n')
                ++line_;
            if (src_.compare(i_, closer.size(), closer) == 0) {
                i_ += closer.size();
                break;
            }
            ++i_;
        }
        emit(Tk::Str, "", ln);
    }

    void
    punct()
    {
        const std::size_t ln = line_;
        const char c1 = peek();
        bump();
        const char c2 = peek();
        std::string t(1, c1);

        // "..." needs a 3-char lookahead of its own.
        if (c1 == '.' && c2 == '.') {
            const std::size_t save_i = i_;
            const std::size_t save_line = line_;
            bump();
            if (peek() == '.') {
                bump();
                emit(Tk::Punct, "...", ln);
                return;
            }
            i_ = save_i;
            line_ = save_line;
            emit(Tk::Punct, ".", ln);
            return;
        }

        static const char *kTwo[] = {
            "->", "::", "++", "--", "+=", "-=", "*=", "/=", "%=",
            "&=", "|=", "^=", "<<", ">>", "<=", ">=", "==", "!=",
            "&&", "||"};
        for (const char *two : kTwo) {
            if (two[0] == c1 && two[1] == c2) {
                t.push_back(c2);
                bump();
                // <<= >>= ->*
                const char c3 = peek();
                if ((t == "<<" || t == ">>") && c3 == '=') {
                    t.push_back(c3);
                    bump();
                } else if (t == "->" && c3 == '*') {
                    t.push_back(c3);
                    bump();
                }
                break;
            }
        }
        emit(Tk::Punct, std::move(t), ln);
    }

    const std::string &src_;
    std::size_t i_ = 0;
    std::size_t line_ = 1;
    LexedFile out_;
};

} // namespace

LexedFile
lex(const std::string &source)
{
    return Lexer(source).run();
}

bool
allowedAt(const LexedFile &lexed, std::size_t line,
          const std::string &rule)
{
    const std::size_t first = line >= 3 ? line - 2 : 1;
    for (std::size_t ln = first; ln <= line; ++ln) {
        if (ln > lexed.lines.size())
            break;
        for (const auto &id : lexed.lines[ln - 1].allows)
            if (id == rule)
                return true;
    }
    return false;
}

} // namespace soclint
