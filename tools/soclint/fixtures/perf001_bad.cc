/** Known-bad fixture: PERF-001 must flag per-step allocation inside
 *  a declared replay hot region. */

#include <cstddef>
#include <vector>

void
replayStep(std::vector<double> &samples, double value)
{
    // soclint:hot-begin(PERF-001)
    // Growing a vector once per control step: allocator traffic on
    // the hot path.
    samples.push_back(value);
    // soclint:hot-end(PERF-001)
}

/** A window refill that allocates its scratch per call instead of
 *  keeping it on the stack: allocator traffic once per streamed
 *  window of every rack. */
void
refillWindow(std::size_t n, unsigned short *util, std::size_t stride)
{
    // soclint:hot-begin(PERF-001)
    std::vector<double> column;
    column.resize(n);
    for (std::size_t k = 0; k < n; ++k)
        util[k * stride] =
            static_cast<unsigned short>(column[k] * 65535.0);
    // soclint:hot-end(PERF-001)
}
