/** Known-good fixture: DET-004 — workers write only their own
 *  output slot; the reduction happens after the join, in index
 *  (rack) order, so the result is bit-identical at any thread
 *  count.  Locals inside the lambda may accumulate freely. */

#include <cstddef>
#include <vector>

struct Pool {
    template <class F>
    void
    parallelFor(std::size_t n, F &&f)
    {
        for (std::size_t i = 0; i < n; ++i)
            f(i);
    }
};

double
sumRackPower(Pool &pool, const std::vector<double> &watts,
             std::vector<double> &slots)
{
    pool.parallelFor(watts.size(), [&](std::size_t i) {
        // Body-local accumulation is fine: it never leaves the
        // worker's own iteration.
        double local = 0.0;
        local += watts[i];
        // Own-slot write: indexed by the lambda parameter.
        slots[i] += local;
    });
    // Deterministic merge: fixed order, single thread.
    double total = 0.0;
    for (const double s : slots)
        total += s;
    return total;
}
