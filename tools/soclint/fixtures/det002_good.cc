/** Known-good fixture: engines constructed from an explicit seed. */

#include <cstdint>
#include <random>

int
roll(std::uint64_t seed)
{
    std::mt19937 gen(seed);
    std::uniform_int_distribution<int> d(1, 6);
    return d(gen);
}
