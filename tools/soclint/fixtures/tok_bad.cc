/** Known-bad fixture: violations only a token-aware scanner can
 *  see — each one spans physical lines, so a line-at-a-time regex
 *  (the v1 linter) misses all of them. */

struct Watts {
    double v = 0.0;
    double count() const { return v; }
};

int
spliced()
{
    // The identifier is split by a backslash-newline splice; after
    // lexing it is a single 'rand' token followed by '('.
    return ra\
nd();
}

double
crossLine(Watts w)
{
    // Declaration, initializer and the count call sit on three
    // different physical lines; the statement is one token run.
    const double escaped =
        w
            .count();
    return escaped;
}
