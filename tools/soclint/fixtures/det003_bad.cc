/** Known-bad fixture: DET-003 must flag unordered containers on the
 *  merge path — both the unannotated declaration and the range-for. */

#include <unordered_map>

double
mergeBudgets()
{
    std::unordered_map<int, double> budgets;
    budgets[3] = 100.0;
    budgets[1] = 50.0;
    double total = 0.0;
    // Hash-order iteration: FP addition order differs across runs.
    for (const auto &[id, watts] : budgets)
        total += watts + id;
    return total;
}
