/** Known-bad fixture: DET-002 must flag unseeded RNG construction. */

#include <random>

int
roll()
{
    std::random_device rd; // entropy source: never reproducible
    std::mt19937 gen;      // default seed, shared across runs
    std::uniform_int_distribution<int> d(1, 6);
    (void)rd;
    return d(gen);
}
