/** Known-good fixture: UNIT-002 — quantities cross the header
 *  boundary as strong types; dimensionless ratios may stay raw. */

#ifndef SOC_TOOLS_SOCLINT_FIXTURES_UNIT002_GOOD_HH
#define SOC_TOOLS_SOCLINT_FIXTURES_UNIT002_GOOD_HH

// Stand-ins for power::Celsius / power::FreqMHz / power::Joules so
// the fixture compiles standalone.
struct Celsius {
    double v = 0.0;
};
struct FreqMHz {
    int v = 0;
};
struct Joules {
    double v = 0.0;
};

struct ThermalReport {
    Celsius dieTemp;
    FreqMHz target;
    Joules weekEnergy;
    double utilization = 0.0; // dimensionless: raw double is fine
};

FreqMHz deriveLimit(FreqMHz base, Celsius headroom);

#endif
