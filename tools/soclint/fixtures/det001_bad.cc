/** Known-bad fixture: DET-001 must flag wall-clock and libc rand. */

#include <cstdlib>
#include <ctime>

double
jitteredDelay()
{
    // Wall-clock time in simulation code: nondeterministic reruns.
    const long now = time(nullptr);
    // libc PRNG: unseeded global stream.
    const int noise = std::rand() % 100;
    return static_cast<double>(now % 7) + noise;
}
