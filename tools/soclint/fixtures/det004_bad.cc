/** Known-bad fixture: DET-004 must flag order-dependent floating
 *  point accumulation on shared state inside a parallelFor lambda
 *  (the merge order depends on thread scheduling), and fma use
 *  (fused contraction is hardware-dependent). */

#include <cmath>
#include <cstddef>
#include <vector>

struct Pool {
    template <class F>
    void
    parallelFor(std::size_t n, F &&f)
    {
        for (std::size_t i = 0; i < n; ++i)
            f(i);
    }
};

double
sumRackPower(Pool &pool, const std::vector<double> &watts)
{
    double total = 0.0;
    pool.parallelFor(watts.size(), [&](std::size_t i) {
        // Shared accumulator mutated from worker threads: the
        // addition order (and thus the bits) depends on timing.
        total += watts[i];
    });
    return total;
}

double
dotProduct(Pool &pool, const std::vector<double> &a,
           const std::vector<double> &b,
           std::vector<double> &partial)
{
    pool.parallelFor(a.size(), [&](std::size_t i) {
        // Own-slot write, but fused multiply-add contracts the
        // rounding step: results differ across hardware.
        partial[i] = std::fma(a[i], b[i], 0.0);
    });
    double total = 0.0;
    for (const double p : partial)
        total += p;
    return total;
}
