/** Known-good fixture: text that LOOKS like violations but is not
 *  code — raw strings, a line-spliced comment — plus a properly
 *  suppressed finding.  Must scan clean even with --all-paths. */

#include <cstdlib>

const char *
docText()
{
    // Rule-tripping spellings inside a raw string are data, not
    // code; the lexer must consume them verbatim.
    return R"(rand() srand(7) double dieCelsius = t.count();)";
}

int
splicedComment()
{
    int live = 1;
    // this whole comment continues onto the next physical line \
    live = rand();
    return live;
}

int
suppressed()
{
    // The deliberate exception: documented and suppressed on the
    // preceding line.
    // soclint:allow(DET-001)
    return std::rand();
}
