/** Known-bad fixture: UNIT-003 — a strong type's raw count bound
 *  to a named double that lives across statement boundaries, and a
 *  raw-double accumulator fed from counts. */

struct Watts {
    double v = 0.0;
    double count() const { return v; }
    Watts operator+(Watts o) const { return Watts{v + o.v}; }
};

struct Server {
    Watts power() const { return Watts{120.0}; }
};

double
rackPower(const Server *servers, int n)
{
    // The unit escapes into a named raw double: every later use of
    // `first` has lost the type the header promised.
    const double first = servers[0].power().count();
    double total = first;
    for (int i = 1; i < n; ++i) {
        // Accumulating raw counts: the sum silently leaves the
        // unit system instead of staying Watts until the boundary.
        total += servers[i].power().count();
    }
    return total;
}
