/** Known-bad fixture: FC-001 — a parse function that mutates its
 *  out-parameter before the last validation return leaves the
 *  caller holding half-parsed state on rejection. */

#include <string>

struct Limits {
    double watts = 0.0;
    int servers = 0;
};

bool
parseLimits(const std::string &text, Limits &out)
{
    if (text.empty())
        return false;
    // Writing through the out-parameter before validation is done:
    // a later reject leaves the caller's object half-mutated.
    out.watts = 42.0;
    if (text.size() > 64)
        return false;
    out.servers = static_cast<int>(text.size());
    return true;
}
