/** Known-good fixture: power crosses the boundary as a strong type;
 *  a documented raw-double telemetry slot carries the annotation. */

#ifndef SOC_TESTS_LINT_UNIT001_GOOD_HH
#define SOC_TESTS_LINT_UNIT001_GOOD_HH

#include "power/units.hh"

struct CapRequest {
    soc::power::Watts target{0.0};
    // Unit-agnostic telemetry storage, consumed via .count() sums.
    // soclint:allow(UNIT-001)
    double slotSumWatts = 0.0;
};

soc::power::Watts scaleBudget(soc::power::Watts budget,
                              double factor);

#endif
