/** Known-good fixture: FC-001 — the core::wire shape: validate
 *  everything into a local, assign the out-parameter once after
 *  the last validation return, so rejection never mutates the
 *  caller's state. */

#include <string>

struct Limits {
    double watts = 0.0;
    int servers = 0;
};

bool
parseLimits(const std::string &text, Limits &out)
{
    Limits parsed;
    if (text.empty())
        return false;
    parsed.watts = 42.0;
    if (text.size() > 64)
        return false;
    parsed.servers = static_cast<int>(text.size());
    out = parsed;
    return true;
}
