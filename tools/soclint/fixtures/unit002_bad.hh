/** Known-bad fixture: UNIT-002 must flag raw double/float MHz,
 *  Celsius and Joules declarations in a public header. */

#ifndef SOC_TOOLS_SOCLINT_FIXTURES_UNIT002_BAD_HH
#define SOC_TOOLS_SOCLINT_FIXTURES_UNIT002_BAD_HH

struct ThermalReport {
    double dieCelsius = 45.0;   // should be power::Celsius
    float targetMhz = 3500.0f;  // should be power::FreqMHz
    double weekJoules = 0.0;    // should be power::Joules
};

double deriveLimitMhz(double baseMhz, double headroomCelsius);

#endif
