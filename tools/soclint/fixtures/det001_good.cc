/** Known-good fixture: simulation time and seeded randomness. */

#include <cstdint>

namespace fixture
{

using Tick = long;

struct Rng {
    explicit Rng(std::uint64_t seed) : state(seed) {}
    std::uint64_t state;
};

double
jitteredDelay(Tick now, Rng &rng)
{
    // Mentioning time() or rand() in a comment is not a finding.
    return static_cast<double>(now % 7) +
        static_cast<double>(rng.state % 100);
}

} // namespace fixture
