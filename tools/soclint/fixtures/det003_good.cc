/** Known-good fixture: ordered container for iteration; a proven
 *  lookup-only unordered index carries the allow annotation. */

#include <map>
#include <string>
#include <unordered_map>

struct Registry {
    // Iterated by the merge loop: must be ordered.
    std::map<int, double> budgets;
    // Lookup only — indexed by id, never iterated.
    // soclint:allow(DET-003)
    std::unordered_map<int, std::string> names;
};

double
mergeBudgets(const Registry &reg)
{
    double total = 0.0;
    for (const auto &[id, watts] : reg.budgets)
        total += watts + id;
    return total;
}
