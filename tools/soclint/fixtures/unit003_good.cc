/** Known-good fixture: UNIT-003 — quantities stay strongly typed
 *  across statements; the raw count appears only at the boundary
 *  where a plain double is genuinely required.  chrono durations
 *  also spell .count() and must not be flagged. */

#include <chrono>
#include <cstdio>

struct Watts {
    double v = 0.0;
    double count() const { return v; }
    Watts &operator+=(Watts o)
    {
        v += o.v;
        return *this;
    }
};

struct Server {
    Watts power() const { return Watts{120.0}; }
};

void
report(const Server *servers, int n)
{
    // Accumulate in the strong type; .count() only at the sink.
    Watts total{0.0};
    for (int i = 0; i < n; ++i)
        total += servers[i].power();
    std::printf("%.1f\n", total.count());

    // chrono exemption: a duration's .count() into a double is the
    // idiomatic way to get fractional seconds.
    const auto dt = std::chrono::milliseconds{1500};
    const double seconds =
        std::chrono::duration<double>(dt).count();
    std::printf("%.3f\n", seconds);
}
