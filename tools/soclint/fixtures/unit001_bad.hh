/** Known-bad fixture: UNIT-001 must flag raw double watts in a
 *  public header. */

#ifndef SOC_TESTS_LINT_UNIT001_BAD_HH
#define SOC_TESTS_LINT_UNIT001_BAD_HH

struct CapRequest {
    double targetWatts = 0.0; // raw double crossing an API boundary
};

double scaleBudget(double budgetWatts, double factor);

#endif
