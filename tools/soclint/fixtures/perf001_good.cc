/** Known-good fixture: preallocated buffers inside a hot region,
 *  allocation only in setup, annotated amortized growth allowed. */

#include <cstddef>
#include <vector>

void
replayLoop(std::size_t steps)
{
    // Setup: allocation outside the region is fine.
    std::vector<double> samples;
    samples.resize(steps);

    // soclint:hot-begin(PERF-001)
    for (std::size_t i = 0; i < steps; ++i) {
        // Indexed writes into the preallocated buffer: no
        // allocator traffic.  push_back in this comment is prose,
        // not a finding.
        samples[i] = static_cast<double>(i);
        if (i == 0) {
            // Amortized one-time growth, justified and annotated:
            // soclint:allow(PERF-001)
            samples.reserve(steps + 1);
        }
    }
    // soclint:hot-end(PERF-001)
}

/** The window-refill shape (ServerTraceStream fill loop): batch
 *  scratch on the stack, strided scatter into caller-owned window
 *  columns — allocation-free by construction. */
void
refillWindow(std::size_t n, unsigned short *util, float *watts,
             std::size_t stride)
{
    // soclint:hot-begin(PERF-001)
    double column[288];
    for (std::size_t done = 0; done < n;) {
        const std::size_t m = n - done < 288 ? n - done : 288;
        for (std::size_t k = 0; k < m; ++k)
            column[k] = static_cast<double>(done + k) / n;
        for (std::size_t k = 0; k < m; ++k) {
            const std::size_t at = (done + k) * stride;
            util[at] =
                static_cast<unsigned short>(column[k] * 65535.0);
            watts[at] = static_cast<float>(column[k] * 40.0);
        }
        done += m;
    }
    // soclint:hot-end(PERF-001)
}
