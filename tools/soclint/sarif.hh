/**
 * @file
 * SARIF 2.1.0 output for soclint, plus a fail-closed validator used
 * by `--check-sarif`: scripts/static_check.sh re-reads the artifact
 * it just wrote and fails the gate when the JSON is malformed or
 * missing required SARIF structure, mirroring bench_check.sh's
 * treatment of benchmark output.
 */

#ifndef SOC_TOOLS_SOCLINT_SARIF_HH
#define SOC_TOOLS_SOCLINT_SARIF_HH

#include "rules.hh"

#include <ostream>
#include <string>
#include <vector>

namespace soclint
{

/** Write all @p findings (baselined ones carry baselineState
 *  "unchanged", fresh ones "new") as a SARIF 2.1.0 log. */
void writeSarif(std::ostream &os,
                const std::vector<Finding> &findings);

/** Fail-closed check of a SARIF document: strict JSON
 *  well-formedness plus the fields the gate depends on (version
 *  2.1.0, a runs array, driver name "soclint", a results key).
 *  Returns true when valid; otherwise @p error says why. */
bool checkSarifText(const std::string &text, std::string &error);

} // namespace soclint

#endif // SOC_TOOLS_SOCLINT_SARIF_HH
