/**
 * @file
 * Token stream for soclint: a small C++ lexer that strips comments,
 * string/char literals and preprocessor directives once, so the rule
 * passes never re-parse raw text with regexes.
 *
 * Design points the rules rely on:
 *
 *  - Every token carries the 1-based physical line it starts on, so
 *    findings point at real source locations even when a statement
 *    spans lines (the v1 line-regex checker could not see those).
 *  - Backslash-newline splices are resolved at the character level,
 *    so a spliced identifier, string, or line comment lexes as one
 *    unit while physical line numbers stay correct.  In particular a
 *    line comment ending in a backslash swallows the next line —
 *    code "hidden" behind a spliced comment is comment, not code.
 *  - Raw strings (R"delim(...)delim", with encoding prefixes) are
 *    skipped verbatim: splice processing is suspended inside them
 *    and their content never reaches the token stream, so rule text
 *    quoted in a raw string cannot trip a rule.
 *  - Preprocessor directives become a single Tk::PP token holding
 *    the directive's (spliced) text; `#include <unordered_map>`
 *    therefore never looks like a container declaration.
 *  - soclint control comments are not tokens; the lexer records them
 *    per physical line in LineFacts: `soclint:allow(RULE-ID)` tags
 *    and the PERF-001 hot-begin/hot-end region markers.  Markers in
 *    string literals deliberately do not count: only comments carry
 *    suppressions.
 */

#ifndef SOC_TOOLS_SOCLINT_LEXER_HH
#define SOC_TOOLS_SOCLINT_LEXER_HH

#include <cstddef>
#include <string>
#include <vector>

namespace soclint
{

enum class Tk {
    Ident,  ///< identifier or keyword
    Number, ///< numeric literal (integer or floating)
    Str,    ///< string literal (content dropped)
    Char,   ///< character literal (content dropped)
    Punct,  ///< operator / punctuator (maximal munch, e.g. "+=")
    PP,     ///< whole preprocessor directive, text preserved
};

struct Tok {
    Tk kind;
    std::string text; ///< spelling; empty for Str/Char
    std::size_t line; ///< 1-based physical line the token starts on
};

/** Per-physical-line lint facts extracted from comments. */
struct LineFacts {
    std::vector<std::string> allows; ///< rule ids from soclint:allow()
    bool hotBegin = false; ///< soclint:hot-begin(PERF-001)
    bool hotEnd = false;   ///< soclint:hot-end(PERF-001)
};

struct LexedFile {
    std::vector<Tok> toks;
    std::vector<LineFacts> lines; ///< index i = line i+1
    std::size_t lineCount = 0;
};

/** Lex @p source; never throws on malformed input — an unterminated
 *  literal or comment simply ends at EOF (lint must not die on the
 *  code it is judging). */
LexedFile lex(const std::string &source);

/** True when @p line (1-based) or one of the two lines above it
 *  carries soclint:allow(@p rule) in a comment. */
bool allowedAt(const LexedFile &lex, std::size_t line,
               const std::string &rule);

} // namespace soclint

#endif // SOC_TOOLS_SOCLINT_LEXER_HH
