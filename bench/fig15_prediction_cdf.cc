/**
 * @file
 * Figure 15 — CDF of mean power-prediction error for the five
 * template-construction techniques of §IV-B / §V-B:
 *
 *   FlatMed  - constant median: opportunistic, underpredicts; large
 *              positive errors at high percentiles
 *   FlatMax  - constant max: conservative, overpredicts; negative
 *              errors at low percentiles
 *   Weekly   - replays last week: sensitive to outlier days
 *   DailyMed - per-slot weekday median: the paper's choice, most
 *              accurate
 *   DailyMax - per-slot weekday max: accurate but conservative
 */

#include <iostream>

#include "core/profile_template.hh"
#include "telemetry/table.hh"
#include "workload/trace_generator.hh"

using namespace soc;
using namespace soc::core;
using telemetry::fmt;

int
main()
{
    constexpr int kRacks = 60;
    constexpr int kServersPerRack = 8;
    const power::PowerModel model;

    const TemplateStrategy strategies[5] = {
        TemplateStrategy::FlatMed, TemplateStrategy::FlatMax,
        TemplateStrategy::Weekly, TemplateStrategy::DailyMed,
        TemplateStrategy::DailyMax};

    sim::Percentiles rmse[5];
    sim::Percentiles bias[5];

    sim::Rng seeder(31337);
    for (int r = 0; r < kRacks; ++r) {
        workload::TraceConfig cfg;
        cfg.end = 3 * sim::kWeek;
        cfg.outlierDayProb = 0.03; // stress outlier robustness
        workload::TraceGenerator gen(seeder(), cfg);
        std::vector<workload::ServerTrace> traces;
        for (int s = 0; s < kServersPerRack; ++s) {
            traces.push_back(gen.serverTrace(
                gen.randomVmMix(model.params().cores), model));
        }
        const auto rack =
            workload::TraceGenerator::rackPower(traces);
        const auto history = rack.slice(0, 2 * sim::kWeek);
        const auto future =
            rack.slice(2 * sim::kWeek, 3 * sim::kWeek);
        for (int i = 0; i < 5; ++i) {
            const auto tmpl =
                ProfileTemplate::build(strategies[i], history);
            rmse[i].add(tmpl.rmseAgainst(future));
            bias[i].add(tmpl.biasAgainst(future));
        }
    }

    telemetry::Table table(
        "Fig. 15 - prediction error per technique across 60 racks "
        "(W); bias > 0 = overprediction",
        {"technique", "RMSE P50", "RMSE P90", "RMSE P99",
         "bias P50"});
    for (int i = 0; i < 5; ++i) {
        table.addRow({strategyName(strategies[i]),
                      fmt(rmse[i].p50(), 1), fmt(rmse[i].p90(), 1),
                      fmt(rmse[i].p99(), 1), fmt(bias[i].p50(), 1)});
    }
    table.print(std::cout);

    // The paper's ranking: DailyMed has the highest accuracy.
    int best = 0;
    for (int i = 1; i < 5; ++i)
        if (rmse[i].p50() < rmse[best].p50())
            best = i;
    std::cout << "Most accurate technique (median RMSE): "
              << strategyName(strategies[best])
              << "  (paper: DailyMed)\n";
    std::cout << "FlatMed bias " << fmt(bias[0].p50(), 1)
              << " W (paper: underpredicts), FlatMax bias "
              << fmt(bias[1].p50(), 1)
              << " W (paper: overpredicts)\n";
    return 0;
}
