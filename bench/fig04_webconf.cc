/**
 * @file
 * Figure 4 — WebConf VM-level vs deployment-level CPU utilization
 * with and without overclocking.
 *
 * Two VMs: VM1 at 10% load, VM2 at 80%.  Overclocking VM2 lowers
 * its utilization, but the deployment-level goal (mean util <= 50%)
 * is already met without it, so the overclock is wasted — the
 * deployment-level insight of §III-Q1.
 */

#include <iostream>

#include "telemetry/table.hh"
#include "workload/archetype.hh"
#include "workload/webconf.hh"

using namespace soc;
using telemetry::fmtPercent;

int
main()
{
    telemetry::Table table(
        "Fig. 4 - WebConf utilization timeline (VM1=10%, VM2=80%)",
        {"minute", "VM1", "VM2", "deploy", "VM2+OC", "deploy+OC",
         "goal met?"});

    // Drive the two VMs with a gently varying call load over an
    // hour so the timeline isn't a flat line.
    workload::Archetype wobble;
    wobble.kind = workload::ShapeKind::Diurnal;
    wobble.baseUtil = 0.93;
    wobble.peakUtil = 1.03;

    bool oc_ever_needed = false;
    for (int minute = 0; minute <= 60; minute += 5) {
        const sim::Tick t = 12 * sim::kHour +
            static_cast<sim::Tick>(minute) * sim::kMinute;
        const double scale = wobble.utilAt(t) / 0.98;

        workload::WebConfDeployment base(0.5);
        base.addVm(4, 0.4 * scale);
        const int hot = base.addVm(4, 3.2 * scale);

        workload::WebConfDeployment boosted(0.5);
        boosted.addVm(4, 0.4 * scale);
        const int hot2 = boosted.addVm(4, 3.2 * scale);
        boosted.setFrequency(hot2, power::kOverclockMHz);

        oc_ever_needed |=
            base.overclockUseful(hot, power::kOverclockMHz);

        table.addRow({std::to_string(minute),
                      fmtPercent(base.vmUtil(0)),
                      fmtPercent(base.vmUtil(hot)),
                      fmtPercent(base.deploymentUtil()),
                      fmtPercent(boosted.vmUtil(hot2)),
                      fmtPercent(boosted.deploymentUtil()),
                      base.meetsTarget() ? "yes" : "no"});
    }
    table.print(std::cout);

    std::cout << "Deployment-level reasoning flags the overclock as "
              << (oc_ever_needed ? "USEFUL" : "unnecessary")
              << " (paper: unnecessary - the 50% goal is already "
                 "met).\n";
    return 0;
}
