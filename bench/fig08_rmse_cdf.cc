/**
 * @file
 * Figure 8 — CDF of the RMSE of rack power predictions (DailyMed
 * templates trained on two weeks, evaluated on the following week)
 * across racks in four "regions" (fleets with different workload
 * mixes/noise levels).
 *
 * Paper numbers (Region 3): 50% / 99% of racks have RMSE below
 * 1.95 W / 5.11 W on production racks.  Absolute watts depend on
 * rack size and sensor granularity; the reproduction checks the
 * *predictability* claim — RMSE small relative to rack power even
 * at high fleet percentiles.
 */

#include <iostream>

#include "core/profile_template.hh"
#include "telemetry/table.hh"
#include "workload/trace_generator.hh"

using namespace soc;
using telemetry::fmt;
using telemetry::fmtPercent;

int
main()
{
    constexpr int kRacksPerRegion = 40;
    constexpr int kServersPerRack = 8;
    const power::PowerModel model;

    telemetry::Table table(
        "Fig. 8 - CDF of DailyMed rack-power RMSE per region "
        "(absolute W and % of mean rack power)",
        {"region", "P50", "P90", "P99", "P50 rel", "P99 rel"});

    const double noise_levels[4] = {0.020, 0.028, 0.035, 0.045};
    for (int region = 0; region < 4; ++region) {
        sim::Percentiles rmse_w, rmse_rel;
        sim::Rng seeder(9000 + region);
        for (int r = 0; r < kRacksPerRegion; ++r) {
            workload::TraceConfig cfg;
            cfg.end = 3 * sim::kWeek;
            cfg.dailyAmplitudeSigma = noise_levels[region];
            workload::TraceGenerator gen(seeder(), cfg);
            std::vector<workload::ServerTrace> traces;
            for (int s = 0; s < kServersPerRack; ++s) {
                traces.push_back(gen.serverTrace(
                    gen.randomVmMix(model.params().cores), model));
            }
            const auto rack =
                workload::TraceGenerator::rackPower(traces);
            const auto history = rack.slice(0, 2 * sim::kWeek);
            const auto future =
                rack.slice(2 * sim::kWeek, 3 * sim::kWeek);
            const auto tmpl = core::ProfileTemplate::build(
                core::TemplateStrategy::DailyMed, history);
            const double err = tmpl.rmseAgainst(future);
            rmse_w.add(err);
            rmse_rel.add(err / future.stats().mean());
        }
        table.addRow({"Region " + std::to_string(region + 1),
                      fmt(rmse_w.p50(), 1) + " W",
                      fmt(rmse_w.p90(), 1) + " W",
                      fmt(rmse_w.p99(), 1) + " W",
                      fmtPercent(rmse_rel.p50()),
                      fmtPercent(rmse_rel.p99())});
    }
    table.print(std::cout);

    std::cout <<
        "Paper: RMSE low even at high percentiles (Region 3: "
        "P50 1.95 W, P99 5.11 W on production\nracks) - rack power "
        "is highly predictable thanks to long-lived VMs and "
        "statistical\nmultiplexing.  The reproduced relative errors "
        "(a few % of mean rack power) carry the\nsame conclusion.\n";
    return 0;
}
