/**
 * @file
 * Figure 6 — power consumption of one rack over five weekdays, with
 * and without overclocking, against the rack power limit.
 *
 * Paper findings: the baseline stays below the limit; naively
 * overclocking the candidate workloads exceeds it during peaks, but
 * ~85% of the time the headroom suffices; at the 99th percentile the
 * available headroom covers ~75% of the requisite.
 */

#include <algorithm>
#include <iostream>

#include "telemetry/table.hh"
#include "workload/trace_generator.hh"

using namespace soc;
using telemetry::fmt;
using telemetry::fmtPercent;

int
main()
{
    constexpr int kServers = 12;
    workload::TraceConfig cfg;
    cfg.end = 5 * sim::kDay; // Monday-Friday
    workload::TraceGenerator gen(77, cfg);
    const power::PowerModel model;

    std::vector<workload::ServerTrace> traces;
    for (int s = 0; s < kServers; ++s) {
        traces.push_back(gen.serverTrace(
            gen.randomVmMix(model.params().cores), model));
    }
    const auto baseline = workload::TraceGenerator::rackPower(traces);

    // Overclock demand: every VM whose utilization crosses 0.55
    // would run at 4.0 GHz.  Compute the overclocked rack series.
    telemetry::TimeSeries boosted(0, sim::kSlot);
    for (std::size_t i = 0; i < baseline.size(); ++i) {
        power::Watts watts{0.0};
        for (const auto &trace : traces) {
            watts += model.params().idleWatts;
            for (std::size_t v = 0; v < trace.mix.size(); ++v) {
                const double util = trace.vmUtil[v].at(i);
                // Candidates: the user-facing spiky services the
                // paper selects (~45% of cores), overclocked while
                // their load is at its peak.
                const auto kind = trace.mix[v].archetype.kind;
                const bool candidate =
                    kind == workload::ShapeKind::TopOfHour ||
                    kind == workload::ShapeKind::MorningPeak ||
                    kind == workload::ShapeKind::Diurnal;
                const bool oc = candidate && util >= 0.55;
                watts += trace.mix[v].cores *
                    model.corePower(util,
                                    oc ? power::kOverclockMHz
                                       : power::kTurboMHz);
            }
        }
        boosted.append(watts.count());
    }

    const double limit = baseline.quantile(0.995) * 1.10;

    telemetry::Table table(
        "Fig. 6 - rack power over 5 weekdays (watts)",
        {"time", "baseline", "overclocked", "limit", "over?"});
    for (sim::Tick t = 0; t < 5 * sim::kDay; t += 4 * sim::kHour) {
        const double b = baseline.atTime(t);
        const double o = boosted.atTime(t);
        table.addRow({sim::formatTick(t).substr(0, 8), fmt(b, 0),
                      fmt(o, 0), fmt(limit, 0),
                      o > limit ? "CAP" : ""});
    }
    table.print(std::cout);

    int over = 0;
    double shortfall_sum = 0.0;
    sim::Percentiles deficit_ratio;
    for (std::size_t i = 0; i < baseline.size(); ++i) {
        const double need = boosted.at(i) - baseline.at(i);
        const double headroom = limit - baseline.at(i);
        if (boosted.at(i) > limit) {
            ++over;
            shortfall_sum += boosted.at(i) - limit;
        }
        if (need > 0.0)
            deficit_ratio.add(std::min(1.0, headroom / need));
    }
    const double frac_ok = 1.0 -
        static_cast<double>(over) /
            static_cast<double>(baseline.size());
    std::cout << "Time with full overclocking headroom: "
              << fmtPercent(frac_ok)
              << "  (paper: ~85% of the time)\n";
    std::cout << "Headroom covers "
              << fmtPercent(deficit_ratio.quantile(0.01))
              << " of the requisite at the 99th percentile of "
                 "constrained slots (paper: ~75%)\n";
    (void)shortfall_sum;
    return 0;
}
