/**
 * @file
 * Shared microharness for the hint-ingestion benchmarks: pours a
 * HintStormGenerator straight into a HintIngress (offer + batched
 * drain per step, trivial sink) and reports sustained ingestion
 * throughput.  Used by bench_hint_storm (per-stressor isolation)
 * and bench_trace_sim (the gated hints_per_s figure).
 */

#ifndef SOC_BENCH_HINT_STORM_COMMON_HH
#define SOC_BENCH_HINT_STORM_COMMON_HH

#include <chrono>
#include <cstdint>

#include "core/hint_ingress.hh"
#include "sim/hint_storm.hh"
#include "sim/time.hh"

namespace soc
{
namespace benchutil
{

struct IngressBenchResult {
    std::uint64_t offered = 0;
    double wallSeconds = 0.0;
    /** Sustained frames/s through offer + drain. */
    double hintsPerS = 0.0;
    core::IngressStats stats;
};

/**
 * Drive @p storm into one ingress for @p steps control steps of
 * @p stepLen simulated time across @p servers, draining after each
 * step.  Wall time covers the full offer/parse/dedup/drop/drain
 * path — the figure the storm actually stresses.
 */
inline IngressBenchResult
runIngressStorm(const sim::HintStormConfig &storm,
                const core::HintIngressConfig &ingress_cfg,
                int servers, int vms_per_server, int steps,
                sim::Tick step_len = sim::kMinute,
                std::uint64_t seed = 11)
{
    core::HintIngress ingress(ingress_cfg);
    const sim::HintStormGenerator generator(storm, seed, /*rack=*/0,
                                            servers, vms_per_server);
    IngressBenchResult result;

    const auto start = std::chrono::steady_clock::now();
    sim::Tick now = 0;
    for (int step = 0; step < steps; ++step, now += step_len) {
        for (int s = 0; s < servers; ++s)
            generator.generate(s, now,
                               [&](const core::wire::Frame &f) {
                                   ingress.offer(f, now);
                                   ++result.offered;
                               });
        ingress.drain(now, [](const core::wire::ParsedHint &) {
            return true;
        });
    }
    result.wallSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    result.stats = ingress.stats();
    result.hintsPerS = result.wallSeconds > 0.0
        ? static_cast<double>(result.offered) / result.wallSeconds
        : 0.0;
    return result;
}

} // namespace benchutil
} // namespace soc

#endif // SOC_BENCH_HINT_STORM_COMMON_HH
