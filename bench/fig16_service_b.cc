/**
 * @file
 * Figure 16 — impact of overclocking Service B under production
 * load: average VM CPU utilization per request-rate bucket, at max
 * turbo vs overclocked.
 *
 * Paper numbers: overclocking cuts CPU utilization by ~23% at the
 * 1.8k RPS peak; equivalently, for the same utilization the VMs
 * serve ~28% more RPS (1.8k vs 1.4k).
 */

#include <iostream>

#include "sim/simulator.hh"
#include "telemetry/table.hh"
#include "workload/queueing_service.hh"

using namespace soc;
using telemetry::fmt;
using telemetry::fmtPercent;

namespace
{

/** Mean busy-core utilization at a given offered rate. */
double
utilAt(double rps, power::FreqMHz freq)
{
    workload::MicroserviceParams params;
    params.name = "ServiceB";
    params.meanServiceMs = 4.0;   // chat/call signalling op
    params.serviceCv = 0.7;
    params.memBoundFrac = 0.05;
    params.workersPerVm = 8;

    sim::Simulator simulator;
    workload::QueueingService service(simulator, params, 99);
    service.addInstance(freq);
    service.setArrivalRate(rps);
    simulator.runUntil(30 * sim::kSecond);
    service.setArrivalRate(0.0);
    simulator.runUntil(31 * sim::kSecond);
    return service.meanBusyCores() / params.workersPerVm;
}

} // namespace

int
main()
{
    telemetry::Table table(
        "Fig. 16 - Service B CPU utilization vs request rate",
        {"RPS", "turbo util", "overclocked util", "reduction"});

    double peak_reduction = 0.0;
    double turbo_at_1400 = 0.0, oc_at_1800 = 0.0;
    for (double rps = 200.0; rps <= 1800.0; rps += 200.0) {
        const double turbo = utilAt(rps, power::kTurboMHz);
        const double oc = utilAt(rps, power::kOverclockMHz);
        table.addRow({fmt(rps, 0), fmtPercent(turbo),
                      fmtPercent(oc),
                      fmtPercent(1.0 - oc / turbo)});
        if (rps == 1800.0) {
            peak_reduction = 1.0 - oc / turbo;
            oc_at_1800 = oc;
        }
        if (rps == 1400.0)
            turbo_at_1400 = turbo;
    }
    table.print(std::cout);

    std::cout << "Utilization reduction at 1.8k RPS: "
              << fmtPercent(peak_reduction)
              << "  (paper: ~23%)\n";
    std::cout << "Overclocked VM at 1.8k RPS runs at "
              << fmtPercent(oc_at_1800)
              << " vs turbo VM at 1.4k RPS at "
              << fmtPercent(turbo_at_1400)
              << " - same utilization buys ~29% more load "
                 "(paper: 28%)\n";
    return 0;
}
