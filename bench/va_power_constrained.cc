/**
 * @file
 * §V-A "Power-constrained environments" — the cluster experiment
 * with a reduced rack limit, comparing NaiveOClock (grant all,
 * even split on capping) against SmartOClock (admission control +
 * heterogeneous budgets).
 *
 * Paper: SmartOClock reduces SocialNet tail latency by 6.7% / 8.4%
 * at medium/high load and improves MLTrain throughput by 10.4%.
 */

#include <cstdlib>
#include <iostream>
#include <vector>

#include "cluster/service_sim.hh"
#include "telemetry/table.hh"

using namespace soc;
using namespace soc::cluster;
using telemetry::fmt;
using telemetry::fmtPercent;

int
main(int argc, char **argv)
{
    // Usage: bench_va_power_constrained [threads]
    //   threads: worker-pool size for the 2 policies x 3 seeds
    //            runs; 0 / omitted = hardware concurrency.
    const int threads = argc > 1 ? std::atoi(argv[1]) : 0;

    // Average three seeds per policy: the constrained regime is
    // noisy at this cluster size.  All six runs are independent, so
    // they share one worker pool.
    const core::PolicyKind policies[2] = {
        core::PolicyKind::NaiveOClock,
        core::PolicyKind::SmartOClock};
    std::vector<ServiceSimConfig> configs;
    for (auto policy : policies) {
        for (std::uint64_t seed : {7, 8, 9}) {
            ServiceSimConfig cfg;
            cfg.environment = Environment::SmartOClock;
            cfg.soaPolicy = policy;
            // Constrained configuration: lighter ML tenants so the
            // latency-critical services' overclocking demand is
            // large relative to the rack headroom, then a limit
            // that leaves less headroom than the full demand (the
            // SS V-A setup).
            cfg.mlCoresPerServer = 24;
            cfg.rackLimitFactor = 0.42;
            cfg.duration = 10 * sim::kMinute;
            cfg.warmup = 2 * sim::kMinute;
            cfg.seed = seed;
            configs.push_back(cfg);
        }
    }
    const auto runs = runServiceSimBatch(configs, threads);

    auto average = [&](int first) {
        ServiceSimResult sum;
        for (int i = first; i < first + 3; ++i) {
            const auto &r = runs[i];
            for (int c = 0; c < 3; ++c) {
                sum.byClass[c].p99Ms += r.byClass[c].p99Ms / 3.0;
                sum.byClass[c].meanMs += r.byClass[c].meanMs / 3.0;
            }
            sum.capEvents += r.capEvents;
            sum.mlThroughputNorm += r.mlThroughputNorm / 3.0;
        }
        return sum;
    };

    const auto naive = average(0);
    const auto smart = average(3);

    telemetry::Table table(
        "SS V-A power-constrained: NaiveOClock vs SmartOClock "
        "(reduced rack limit)",
        {"metric", "NaiveOClock", "SmartOClock", "improvement"});
    const char *class_names[3] = {"low", "medium", "high"};
    for (int c = 1; c < 3; ++c) {
        table.addRow(
            {std::string("P99 ms (") + class_names[c] + ")",
             fmt(naive.byClass[c].p99Ms, 1),
             fmt(smart.byClass[c].p99Ms, 1),
             fmtPercent(1.0 - smart.byClass[c].p99Ms /
                                  naive.byClass[c].p99Ms)});
    }
    table.addRow({"capping events",
                  std::to_string(naive.capEvents),
                  std::to_string(smart.capEvents), ""});
    table.addRow({"MLTrain throughput (norm.)",
                  fmt(naive.mlThroughputNorm, 3),
                  fmt(smart.mlThroughputNorm, 3),
                  fmtPercent(smart.mlThroughputNorm /
                                 naive.mlThroughputNorm -
                             1.0)});
    table.print(std::cout);

    std::cout << "Paper: SmartOClock cuts tail latency by "
                 "6.7%/8.4% (medium/high) and lifts MLTrain "
                 "throughput by 10.4% under the reduced limit.\n";
    return 0;
}
