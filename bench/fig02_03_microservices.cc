/**
 * @file
 * Figures 2 and 3 — per-microservice P99 tail latency and CPU
 * utilization under low/medium/high load in three environments:
 *
 *   Baseline  - one VM at max turbo (3.3 GHz)
 *   Overclock - one VM overclocked (4.0 GHz)
 *   ScaleOut  - two VMs at max turbo
 *
 * The SLO of each service is 5x its execution time on an unloaded
 * system.  Expected shape (paper): Overclock keeps many services
 * under the SLO without the cost of a second VM; Usr tolerates high
 * utilization; UrlShort violates its SLO even at low utilization;
 * memory-bound Media benefits little from overclocking.
 */

#include <iostream>

#include "sim/simulator.hh"
#include "telemetry/table.hh"
#include "workload/queueing_service.hh"

using namespace soc;
using telemetry::fmt;
using telemetry::fmtPercent;

namespace
{

struct Cell {
    double p99Ms;
    double util;
    bool meetsSlo;
};

Cell
run(const workload::MicroserviceParams &params, double load_frac,
    power::FreqMHz freq, int instances, std::uint64_t seed)
{
    sim::Simulator simulator;
    workload::QueueingService service(simulator, params, seed);
    for (int i = 0; i < instances; ++i)
        service.addInstance(freq);
    service.setArrivalRate(
        load_frac * service.instanceCapacity(power::kTurboMHz));
    simulator.runUntil(40 * sim::kSecond);
    service.setArrivalRate(0.0);
    simulator.runUntil(41 * sim::kSecond);

    Cell cell;
    const auto window = service.drainWindow();
    (void)window;
    cell.p99Ms = service.latencies().p99();
    // Busy-core utilization over the run.
    cell.util = service.meanBusyCores() /
        (params.workersPerVm * instances);
    cell.meetsSlo = cell.p99Ms <= service.sloMs();
    return cell;
}

} // namespace

int
main()
{
    const auto catalog = workload::socialNetCatalog();
    const double loads[3] = {0.35, 0.60, 0.80};
    const char *load_names[3] = {"low", "med", "high"};

    telemetry::Table fig2(
        "Fig. 2 - P99 latency (ms); '*' = exceeds SLO (5x unloaded "
        "exec time)",
        {"service", "SLO", "load", "Baseline", "Overclock",
         "ScaleOut"});
    telemetry::Table fig3(
        "Fig. 3 - CPU utilization",
        {"service", "load", "Baseline", "Overclock", "ScaleOut"});

    for (const auto &params : catalog) {
        for (int l = 0; l < 3; ++l) {
            const auto base =
                run(params, loads[l], power::kTurboMHz, 1, 11 + l);
            const auto oc = run(params, loads[l],
                                power::kOverclockMHz, 1, 11 + l);
            const auto out =
                run(params, loads[l], power::kTurboMHz, 2, 11 + l);
            auto mark = [](const Cell &c) {
                return fmt(c.p99Ms, 1) + (c.meetsSlo ? "" : "*");
            };
            fig2.addRow({params.name,
                         fmt(params.sloMultiplier *
                                 params.meanServiceMs,
                             0),
                         load_names[l], mark(base), mark(oc),
                         mark(out)});
            fig3.addRow({params.name, load_names[l],
                         fmtPercent(base.util),
                         fmtPercent(oc.util),
                         fmtPercent(out.util)});
        }
    }
    fig2.print(std::cout);
    fig3.print(std::cout);

    std::cout <<
        "Paper reference (qualitative): Overclock keeps tails under "
        "the SLO in many cases\nwithout a second VM; Usr tolerates "
        "high utilization; UrlShort misses its SLO even\nat low "
        "utilization; ScaleOut halves utilization at double the "
        "cost.\n";
    return 0;
}
