/**
 * @file
 * Figure 17 — impact of overclocking Service C: the 5-minute CPU
 * utilization peaks over a weekday shrink by ~16% when the VMs are
 * overclocked during their top/bottom-of-hour spikes.
 *
 * The weekday is compressed: each 5-minute telemetry slot is
 * simulated for two seconds at that slot's request rate, which
 * preserves the utilization statistics while keeping the run fast.
 */

#include <algorithm>
#include <iostream>

#include "sim/simulator.hh"
#include "telemetry/table.hh"
#include "workload/archetype.hh"
#include "workload/queueing_service.hh"

using namespace soc;
using telemetry::fmt;
using telemetry::fmtPercent;

namespace
{

workload::MicroserviceParams
serviceCParams()
{
    workload::MicroserviceParams params;
    params.name = "ServiceC";
    params.meanServiceMs = 5.0;
    params.serviceCv = 0.8;
    params.memBoundFrac = 0.25;
    params.workersPerVm = 8;
    return params;
}

/** Per-slot utilization over a weekday at the given policy. */
std::vector<double>
dayUtil(bool overclock_spikes)
{
    const auto params = serviceCParams();
    const auto arch = workload::serviceC();

    sim::Simulator simulator;
    workload::QueueingService service(simulator, params, 2718);
    const auto inst = service.addInstance();
    const double peak_rps =
        0.85 * service.instanceCapacity(power::kTurboMHz);

    std::vector<double> utils;
    sim::Tick clock = 0;
    for (int slot = 0; slot < sim::kSlotsPerDay; ++slot) {
        const sim::Tick t =
            static_cast<sim::Tick>(slot) * sim::kSlot;
        const double load = arch.utilAt(t); // in [0,1]
        const bool spike = load > 0.5;
        service.setFrequency(inst,
                             overclock_spikes && spike
                                 ? power::kOverclockMHz
                                 : power::kTurboMHz);
        service.setArrivalRate(load * peak_rps);
        clock += 2 * sim::kSecond;
        simulator.runUntil(clock);
        utils.push_back(service.drainWindow().utilization);
    }
    return utils;
}

} // namespace

int
main()
{
    const auto turbo = dayUtil(false);
    const auto boosted = dayUtil(true);

    telemetry::Table table(
        "Fig. 17 - Service C utilization around hourly spikes "
        "(selected slots)",
        {"time", "turbo", "overclocked"});
    for (int hour : {9, 12, 15}) {
        for (int offset : {-1, 0, 1, 6}) {
            const int slot = hour * 12 + offset;
            table.addRow({sim::formatTick(
                              static_cast<sim::Tick>(slot) *
                              sim::kSlot)
                              .substr(3, 5),
                          fmtPercent(turbo[slot]),
                          fmtPercent(boosted[slot])});
        }
    }
    table.print(std::cout);

    // The figure's metric: reduction of the 5-minute peaks.
    sim::Percentiles turbo_peaks, boosted_peaks;
    for (int slot = 0; slot < sim::kSlotsPerDay; ++slot) {
        if (turbo[slot] > 0.5) { // spike slots
            turbo_peaks.add(turbo[slot]);
            boosted_peaks.add(boosted[slot]);
        }
    }
    const double reduction =
        1.0 - boosted_peaks.mean() / turbo_peaks.mean();
    std::cout << "Mean 5-minute peak utilization: turbo "
              << fmtPercent(turbo_peaks.mean()) << " -> overclocked "
              << fmtPercent(boosted_peaks.mean()) << " ("
              << fmtPercent(reduction)
              << " lower; paper: ~16%)\n";
    return 0;
}
