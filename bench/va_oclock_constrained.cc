/**
 * @file
 * §V-A "Overclocking-constrained environments" — the cluster
 * experiment with the overclocking (lifetime) budget restricted to
 * 75% / 50% / 25% of its initial value, comparing reactive
 * scale-out against SmartOClock's proactive scale-out (exhaustion
 * prediction, §IV-D).
 *
 * Paper: reactive scale-out misses the SLO for 5.0% / 6.1% / 7.2%
 * of the time; proactive scaling eliminates all SLO violations.
 */

#include <cstdlib>
#include <iostream>
#include <vector>

#include "cluster/service_sim.hh"
#include "telemetry/table.hh"

using namespace soc;
using namespace soc::cluster;
using telemetry::fmtPercent;

int
main(int argc, char **argv)
{
    // Usage: bench_va_oclock_constrained [threads]
    //   threads: worker-pool size for the 4 budgets x 2 modes
    //            runs; 0 / omitted = hardware concurrency.
    const int threads = argc > 1 ? std::atoi(argv[1]) : 0;

    const double scales[4] = {1.0, 0.75, 0.50, 0.25};
    std::vector<ServiceSimConfig> configs;
    for (double scale : scales) {
        for (bool proactive : {false, true}) {
            ServiceSimConfig cfg;
            cfg.environment = Environment::SmartOClock;
            cfg.overclockBudgetScale = scale;
            cfg.proactiveScaleOut = proactive;
            // A tight lifetime budget so the restriction binds
            // within the run.
            cfg.overclockFraction = 0.05;
            cfg.duration = 16 * sim::kMinute;
            cfg.warmup = 2 * sim::kMinute;
            cfg.seed = 7;
            configs.push_back(cfg);
        }
    }
    const auto runs = runServiceSimBatch(configs, threads);

    telemetry::Table table(
        "SS V-A overclocking-constrained: missed-SLO time vs "
        "remaining overclock budget",
        {"budget", "reactive missed-SLO time",
         "proactive missed-SLO time", "proactive scale-outs"});
    for (int s = 0; s < 4; ++s) {
        const auto &reactive = runs[s * 2];
        const auto &proactive = runs[s * 2 + 1];
        table.addRow({fmtPercent(scales[s], 0),
                      fmtPercent(reactive.missedSloTimeFrac),
                      fmtPercent(proactive.missedSloTimeFrac),
                      std::to_string(
                          proactive.proactiveScaleOuts)});
    }
    table.print(std::cout);

    std::cout <<
        "Paper: with the budget cut to 75%/50%/25%, reactive "
        "scale-out misses the SLO for\n5.0%/6.1%/7.2% of the time; "
        "proactive scale-out driven by the sOAs' exhaustion\n"
        "predictions eliminates the violations.\n";
    return 0;
}
