/**
 * @file
 * §V-A "Overclocking-constrained environments" — the cluster
 * experiment with the overclocking (lifetime) budget restricted to
 * 75% / 50% / 25% of its initial value, comparing reactive
 * scale-out against SmartOClock's proactive scale-out (exhaustion
 * prediction, §IV-D).
 *
 * Paper: reactive scale-out misses the SLO for 5.0% / 6.1% / 7.2%
 * of the time; proactive scaling eliminates all SLO violations.
 */

#include <iostream>

#include "cluster/service_sim.hh"
#include "telemetry/table.hh"

using namespace soc;
using namespace soc::cluster;
using telemetry::fmtPercent;

int
main()
{
    auto run = [](double budget_scale, bool proactive) {
        ServiceSimConfig cfg;
        cfg.environment = Environment::SmartOClock;
        cfg.overclockBudgetScale = budget_scale;
        cfg.proactiveScaleOut = proactive;
        // A tight lifetime budget so the restriction binds within
        // the run.
        cfg.overclockFraction = 0.05;
        cfg.duration = 16 * sim::kMinute;
        cfg.warmup = 2 * sim::kMinute;
        cfg.seed = 7;
        return runServiceSim(cfg);
    };

    telemetry::Table table(
        "SS V-A overclocking-constrained: missed-SLO time vs "
        "remaining overclock budget",
        {"budget", "reactive missed-SLO time",
         "proactive missed-SLO time", "proactive scale-outs"});
    for (double scale : {1.0, 0.75, 0.50, 0.25}) {
        const auto reactive = run(scale, false);
        const auto proactive = run(scale, true);
        table.addRow({fmtPercent(scale, 0),
                      fmtPercent(reactive.missedSloTimeFrac),
                      fmtPercent(proactive.missedSloTimeFrac),
                      std::to_string(
                          proactive.proactiveScaleOuts)});
    }
    table.print(std::cout);

    std::cout <<
        "Paper: with the budget cut to 75%/50%/25%, reactive "
        "scale-out misses the SLO for\n5.0%/6.1%/7.2% of the time; "
        "proactive scale-out driven by the sOAs' exhaustion\n"
        "predictions eliminates the violations.\n";
    return 0;
}
