/**
 * @file
 * Figure 5 — CDF of average, median (P50) and peak (P99) rack power
 * utilization across a fleet of racks.
 *
 * Paper numbers (7.1k production racks, 6 weeks): half the racks
 * average below 66% utilization; 50% / 90% of racks have a P99
 * below 73% / 89%.  We regenerate the distribution over a synthetic
 * fleet whose rack limits follow the provider's oversubscription
 * practice.
 */

#include <iostream>

#include "sim/stats.hh"
#include "telemetry/table.hh"
#include "workload/trace_generator.hh"

using namespace soc;
using telemetry::fmt;
using telemetry::fmtPercent;

int
main()
{
    constexpr int kRacks = 120;
    constexpr int kServersPerRack = 8;

    workload::TraceConfig cfg;
    cfg.end = 3 * sim::kWeek;
    const power::PowerModel model;

    sim::Percentiles avg_util, p50_util, p99_util;
    sim::Rng seeder(555);
    for (int r = 0; r < kRacks; ++r) {
        workload::TraceGenerator gen(seeder(), cfg);
        std::vector<workload::ServerTrace> traces;
        for (int s = 0; s < kServersPerRack; ++s) {
            traces.push_back(gen.serverTrace(
                gen.randomVmMix(model.params().cores), model));
        }
        const auto rack_power =
            workload::TraceGenerator::rackPower(traces);
        // Provisioned limit: oversubscribed relative to nameplate
        // (sum of TDPs), varied across the fleet like real racks.
        const power::Watts limit = model.params().tdpWatts *
            (kServersPerRack * (0.78 + 0.47 * (r % 10) / 10.0));
        avg_util.add(rack_power.stats().mean() / limit.count());
        p50_util.add(rack_power.quantile(0.50) / limit.count());
        p99_util.add(rack_power.quantile(0.99) / limit.count());
    }

    telemetry::Table table(
        "Fig. 5 - CDF of rack power utilization (120 synthetic "
        "racks, 3 weeks)",
        {"fleet percentile", "avg util", "P50 util", "P99 util"});
    for (double q : {0.10, 0.25, 0.50, 0.75, 0.90, 0.99}) {
        table.addRow({fmtPercent(q, 0),
                      fmtPercent(avg_util.quantile(q)),
                      fmtPercent(p50_util.quantile(q)),
                      fmtPercent(p99_util.quantile(q))});
    }
    table.print(std::cout);

    std::cout << "Measured: half the racks average below "
              << fmtPercent(avg_util.p50())
              << "; 50%/90% of racks have P99 below "
              << fmtPercent(p99_util.p50()) << "/"
              << fmtPercent(p99_util.p90()) << "\n";
    std::cout << "Paper:    half the racks average below 66%; "
                 "50%/90% of racks have P99 below 73%/89%\n";
    return 0;
}
