/**
 * @file
 * Figure 7 — CPU aging over 5 days of a diurnal production workload
 * under four policies:
 *
 *   Expected ageing  - the vendor's rated wall-clock reference
 *   Non-overclocked  - actual aging at max turbo (< 2 days)
 *   Always overclock - 4.0 GHz whenever the VM is busy (> 10 days)
 *   Overclock-aware  - overclocks only while the accumulated credit
 *                      covers the extra wear (~25% of the time),
 *                      tracking the expected-ageing line
 *
 * Aging is integrated with the gate-oxide wear-out model calibrated
 * in core/lifetime.hh.
 */

#include <iostream>

#include "core/lifetime.hh"
#include "telemetry/table.hh"
#include "workload/trace_generator.hh"

using namespace soc;
using telemetry::fmt;
using telemetry::fmtPercent;

int
main()
{
    const power::PowerModel model;
    const core::LifetimeModel lifetime(model);

    // 5-day diurnal utilization trace (daily midday peaks > 50%,
    // night valleys < 20%), as in the paper's production workload.
    workload::Archetype arch;
    arch.kind = workload::ShapeKind::Diurnal;
    arch.baseUtil = 0.12;
    arch.peakUtil = 0.62;
    workload::TraceConfig cfg;
    cfg.end = 5 * sim::kDay;
    workload::TraceGenerator gen(31, cfg);
    const auto util = gen.utilSeries(arch);

    double aging_base = 0.0;   // rated-days of wear
    double aging_always = 0.0;
    double aging_aware = 0.0;
    sim::Tick aware_oc_time = 0;

    telemetry::Table table(
        "Fig. 7 - cumulative aging (days of rated wear)",
        {"day", "expected", "non-overclocked", "always-OC",
         "OC-aware"});

    const double slot_days =
        static_cast<double>(sim::kSlot) / sim::kDay;
    int day = 0;
    for (std::size_t i = 0; i < util.size(); ++i) {
        const double u = util.at(i);
        aging_base +=
            lifetime.agingRate(u, power::kTurboMHz) * slot_days;
        aging_always +=
            lifetime.agingRate(u, power::kOverclockMHz) * slot_days;

        // Overclock-aware: spend wear credit only while cumulative
        // aging stays below the expected (wall-clock) line.
        const double expected_now =
            static_cast<double>(i + 1) * slot_days;
        const double oc_rate =
            lifetime.agingRate(u, power::kOverclockMHz);
        const bool boost = u >= 0.18 &&
            aging_aware + oc_rate * slot_days <= expected_now;
        if (boost) {
            aging_aware += oc_rate * slot_days;
            aware_oc_time += sim::kSlot;
        } else {
            aging_aware +=
                lifetime.agingRate(u, power::kTurboMHz) * slot_days;
        }

        const sim::Tick t = util.timeOf(i);
        if (static_cast<int>(t / sim::kDay) != day ||
            i + 1 == util.size()) {
            ++day;
            table.addRow({std::to_string(day),
                          fmt(expected_now, 2), fmt(aging_base, 2),
                          fmt(aging_always, 2),
                          fmt(aging_aware, 2)});
        }
    }
    table.print(std::cout);

    const double oc_frac = static_cast<double>(aware_oc_time) /
        static_cast<double>(5 * sim::kDay);
    std::cout << "Non-overclocked total: " << fmt(aging_base, 2)
              << " days over 5 (paper: < 2 days)\n";
    std::cout << "Always-overclock total: " << fmt(aging_always, 2)
              << " days over 5 (paper: > 10 days)\n";
    std::cout << "Overclock-aware: aged " << fmt(aging_aware, 2)
              << " days (expected 5.00) while overclocking "
              << fmtPercent(oc_frac)
              << " of the time (paper: ~25%)\n";
    return 0;
}
