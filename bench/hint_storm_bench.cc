/**
 * @file
 * Hint-storm benchmark driver (ROADMAP item 5).
 *
 * Two measurements, written as JSON (argv[1], default
 * BENCH_hint_storm.json):
 *
 *  1. Per-stressor isolation: each catalog entry poured alone into
 *     a HintIngress microharness (stress-ng style), reporting the
 *     sustained hints/s the boundary absorbs and the counters the
 *     stressor is supposed to move (rejects, duplicates, drops).
 *  2. The combined standard storm through the full trace simulator,
 *     reporting hints/s alongside replay racks/s — the ingestion
 *     boundary must not buy robustness by wrecking replay
 *     throughput.
 */

#include <cstdio>

#include "cluster/trace_sim.hh"
#include "hint_storm_common.hh"

using namespace soc;

int
main(int argc, char **argv)
{
    const char *out_path =
        argc > 1 ? argv[1] : "BENCH_hint_storm.json";

    std::FILE *out = std::fopen(out_path, "w");
    if (out == nullptr) {
        std::fprintf(stderr, "cannot open %s\n", out_path);
        return 1;
    }
    std::fprintf(out, "{\n  \"stressors\": [\n");

    // 1. Each stressor in isolation: 8 servers x 32 frames/step x
    //    1500 steps ~= 384k frames per catalog entry.
    constexpr int kServers = 8;
    constexpr int kVms = 16;
    constexpr int kSteps = 1500;
    constexpr double kRate = 32.0;
    core::HintIngressConfig icfg;
    icfg.maxHintAge = sim::kHour;
    // Half a step's flood: the capacity stressors must actually hit
    // the drop policy, not just fill and drain.
    icfg.queueCapacity = 128;
    for (std::size_t k = 0; k < sim::kStormKinds; ++k) {
        const auto kind = static_cast<sim::StormKind>(k);
        const auto r = benchutil::runIngressStorm(
            sim::HintStormConfig::only(kind, kRate), icfg, kServers,
            kVms, kSteps);
        std::fprintf(
            out,
            "    {\"name\": \"%s\", \"offered\": %llu, "
            "\"hints_per_s\": %.0f, \"accepted\": %llu, "
            "\"parse_rejects\": %llu, \"duplicates\": %llu, "
            "\"overflow_evictions\": %llu}%s\n",
            sim::stormName(kind),
            static_cast<unsigned long long>(r.offered), r.hintsPerS,
            static_cast<unsigned long long>(r.stats.accepted),
            static_cast<unsigned long long>(r.stats.parseRejects),
            static_cast<unsigned long long>(r.stats.duplicates),
            static_cast<unsigned long long>(
                r.stats.overflowEvictions),
            k + 1 < sim::kStormKinds ? "," : "");
        std::printf("%-18s %8.2f Mhints/s  accepted=%llu "
                    "rejects=%llu dups=%llu evictions=%llu\n",
                    sim::stormName(kind), r.hintsPerS / 1e6,
                    static_cast<unsigned long long>(r.stats.accepted),
                    static_cast<unsigned long long>(
                        r.stats.parseRejects),
                    static_cast<unsigned long long>(
                        r.stats.duplicates),
                    static_cast<unsigned long long>(
                        r.stats.overflowEvictions));
    }
    std::fprintf(out, "  ],\n");

    // 2. Combined storm through the trace simulator: the bounded
    //    boundary under full control-loop load.
    cluster::TraceSimConfig cfg;
    cfg.racks = 16;
    cfg.serversPerRack = 8;
    cfg.warmup = 6 * sim::kHour;
    cfg.duration = 6 * sim::kHour;
    cfg.controlStep = 300 * sim::kSecond;
    cfg.requestChunk = sim::kHour;
    cfg.seed = 101;
    cfg.ingress.enabled = true;
    cfg.ingress.maxHintAge = sim::kHour;
    cfg.ingress.flapHoldoff = 10 * sim::kMinute;
    cfg.storm = sim::HintStormConfig::standardStorm();
    const auto result = cluster::runTraceSim(cfg);
    const double racks_per_s = result.simSeconds > 0.0
        ? cfg.racks / result.simSeconds
        : 0.0;
    const double hints_per_s = result.simSeconds > 0.0
        ? static_cast<double>(result.ingress.offered) /
            result.simSeconds
        : 0.0;

    std::fprintf(
        out,
        "  \"combined_trace_sim\": {\n"
        "    \"racks\": %d,\n"
        "    \"servers_per_rack\": %d,\n"
        "    \"offered\": %llu,\n"
        "    \"parse_rejects\": %llu,\n"
        "    \"overflow_evictions\": %llu,\n"
        "    \"flap_denied\": %llu,\n"
        "    \"hints_per_s\": %.0f,\n"
        "    \"racks_per_s\": %.3f\n"
        "  }\n"
        "}\n",
        cfg.racks, cfg.serversPerRack,
        static_cast<unsigned long long>(result.ingress.offered),
        static_cast<unsigned long long>(result.ingress.parseRejects),
        static_cast<unsigned long long>(
            result.ingress.overflowEvictions),
        static_cast<unsigned long long>(result.flapDenied),
        hints_per_s, racks_per_s);
    std::fclose(out);
    std::printf("combined storm: offered=%llu hints_per_s=%.0f "
                "racks_per_s=%.3f -> %s\n",
                static_cast<unsigned long long>(
                    result.ingress.offered),
                hints_per_s, racks_per_s, out_path);
    return 0;
}
