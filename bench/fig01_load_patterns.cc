/**
 * @file
 * Figure 1 — load pattern of three communication/collaboration
 * services on a typical weekday, utilization normalized to each
 * service's peak.
 *
 * Paper shape: Service A peaks between 10am and noon; Services B
 * and C spike for ~5 minutes at the top and bottom of each hour.
 */

#include <iostream>

#include "telemetry/table.hh"
#include "workload/trace_generator.hh"

using namespace soc;
using telemetry::fmt;

int
main()
{
    workload::TraceConfig cfg;
    cfg.start = 0;
    cfg.end = sim::kDay; // Monday
    workload::TraceGenerator gen(2024, cfg);

    const auto a = gen.utilSeries(workload::serviceA());
    const auto b = gen.utilSeries(workload::serviceB());
    const auto c = gen.utilSeries(workload::serviceC());

    auto normalize = [](const telemetry::TimeSeries &s, double t) {
        const double peak = s.stats().max();
        return peak > 0.0 ? s.atTime(static_cast<sim::Tick>(t)) / peak
                          : 0.0;
    };

    telemetry::Table table(
        "Fig. 1 - weekday load, normalized to each service's peak",
        {"time", "ServiceA", "ServiceB", "ServiceC"});
    // Sample at :02 (inside the top-of-hour spike) and :17 (calm)
    // so the spiky services' structure is visible in the table.
    for (int hour = 0; hour < 24; ++hour) {
        for (int minute : {2, 17}) {
            const sim::Tick t = hour * sim::kHour +
                minute * sim::kMinute;
            table.addRow({sim::formatTick(t).substr(3, 5),
                          fmt(normalize(a, t)), fmt(normalize(b, t)),
                          fmt(normalize(c, t))});
        }
    }
    table.print(std::cout);

    // Quantify the paper's qualitative claims.
    double a_peak_window = 0.0;
    for (sim::Tick t = 10 * sim::kHour; t < 12 * sim::kHour;
         t += sim::kSlot) {
        a_peak_window = std::max(a_peak_window, a.atTime(t));
    }
    std::cout << "Service A peak falls in 10am-noon: "
              << (a_peak_window >= 0.95 * a.stats().max() ? "yes"
                                                          : "NO")
              << "\n";
    std::cout << "Paper reference: A peaks 10am-noon; B/C spike ~5 "
                 "min at top/bottom of each hour.\n";
    return 0;
}
