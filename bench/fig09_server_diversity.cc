/**
 * @file
 * Figure 9 — normalized power consumption over one week of six
 * randomly chosen servers in the same rack.
 *
 * Paper findings: servers' profiles differ materially (some draw
 * 30% less than others) and the identity of the power-dominant
 * server changes over time — the motivation for heterogeneous
 * budget assignment (§III-Q4).
 */

#include <algorithm>
#include <iostream>

#include "telemetry/table.hh"
#include "workload/trace_generator.hh"

using namespace soc;
using telemetry::fmt;
using telemetry::fmtPercent;

int
main()
{
    constexpr int kServers = 6;
    workload::TraceConfig cfg;
    cfg.end = sim::kWeek;
    workload::TraceGenerator gen(404, cfg);
    const power::PowerModel model;

    // Servers in a production rack host different roles: some are
    // packed with hot service VMs, some carry batch or mostly idle
    // tenants.  Build six role-diverse mixes (the paper's six
    // randomly chosen servers show up to ~30% spread).
    auto role_mix = [&](workload::ShapeKind kind, double base,
                        double peak) {
        std::vector<workload::VmMix> mix;
        for (int v = 0; v < 7; ++v) {
            workload::Archetype arch;
            arch.kind = kind;
            arch.baseUtil = base;
            arch.peakUtil = peak;
            arch.phaseShift =
                static_cast<sim::Tick>(v - 3) * 20 * sim::kMinute;
            mix.push_back({arch, 8});
        }
        return mix;
    };
    std::vector<workload::ServerTrace> traces;
    traces.push_back(gen.serverTrace(
        role_mix(workload::ShapeKind::BusinessHours, 0.15, 0.85),
        model));
    traces.push_back(gen.serverTrace(
        role_mix(workload::ShapeKind::LowIdle, 0.05, 0.25), model));
    traces.push_back(gen.serverTrace(
        role_mix(workload::ShapeKind::Diurnal, 0.15, 0.80), model));
    traces.push_back(gen.serverTrace(
        role_mix(workload::ShapeKind::MorningPeak, 0.15, 0.95),
        model));
    traces.push_back(gen.serverTrace(
        role_mix(workload::ShapeKind::NightBatch, 0.10, 0.90),
        model));
    traces.push_back(gen.serverTrace(
        gen.randomVmMix(model.params().cores), model));

    // Normalize to the largest instantaneous draw in the group.
    double peak = 0.0;
    for (const auto &t : traces)
        peak = std::max(peak, t.powerWatts.stats().max());

    telemetry::Table table(
        "Fig. 9 - normalized per-server power over one week",
        {"time", "A", "B", "C", "D", "E", "F", "dominant"});
    int dominant_changes = 0;
    int last_dominant = -1;
    for (sim::Tick t = 0; t < sim::kWeek; t += 6 * sim::kHour) {
        std::vector<std::string> row{sim::formatTick(t).substr(0, 8)};
        int dominant = 0;
        double best = 0.0;
        for (int s = 0; s < kServers; ++s) {
            const double w = traces[s].powerWatts.atTime(t);
            row.push_back(fmt(w / peak, 2));
            if (w > best) {
                best = w;
                dominant = s;
            }
        }
        row.push_back(std::string(1, static_cast<char>('A' +
                                                        dominant)));
        if (last_dominant >= 0 && dominant != last_dominant)
            ++dominant_changes;
        last_dominant = dominant;
        table.addRow(std::move(row));
    }
    table.print(std::cout);

    // Spread between the hottest and coolest server on average.
    double lo = 1e18, hi = 0.0;
    for (const auto &t : traces) {
        const double mean = t.powerWatts.stats().mean();
        lo = std::min(lo, mean);
        hi = std::max(hi, mean);
    }
    std::cout << "Mean-draw spread (coolest vs hottest server): "
              << fmtPercent(1.0 - lo / hi)
              << "  (paper: up to ~30% less)\n";
    std::cout << "Power-dominant server changed " << dominant_changes
              << " times across the sampled week (paper: the "
                 "dominant server changes over time)\n";
    return 0;
}
