/**
 * @file
 * Simulator-throughput and recompute-cost benchmark driver.
 *
 * Two measurements, written as JSON (argv[1], default
 * BENCH_trace_sim.json) so scripts/bench_check.sh and CI can track
 * regressions:
 *
 *  1. End-to-end wall time of a multi-rack trace-simulator run
 *     (racks/sec of simulated fleet).
 *  2. gOA recompute latency after 1 day vs after 6 weeks of
 *     telemetry.  With the incremental slot aggregators the cost is
 *     O(slots-per-week) regardless of history length, so the 6-week
 *     figure must stay within ~2x of the 1-day figure; the batch
 *     builder it replaced scaled linearly (42x the history).
 */

#include <chrono>
#include <cstdio>
#include <memory>
#include <vector>

#include "cluster/trace_sim.hh"
#include "core/budget_hierarchy.hh"
#include "core/goa.hh"
#include "hint_storm_common.hh"
#include "sim/time.hh"

using namespace soc;
using Clock = std::chrono::steady_clock;

namespace
{

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start)
        .count();
}

/** One rack of idle-ish servers streaming telemetry into their
 *  sOAs, with the gOA recomputed on demand. */
struct RecomputeHarness {
    static constexpr int kServers = 8;

    power::PowerModel model;
    power::Rack rack{0, power::Watts{4000.0}};
    std::vector<std::unique_ptr<core::ServerOverclockingAgent>> soas;
    core::GlobalOverclockingAgent goa;
    sim::Tick now = 0;

    RecomputeHarness() : goa(rack, model)
    {
        core::SoaConfig cfg;
        // One control tick per telemetry slot: every tick closes
        // exactly one 5-minute sample, the cheapest way to stream
        // weeks of history.
        cfg.controlPeriod = sim::kSlot;
        for (int i = 0; i < kServers; ++i) {
            power::Server &server = rack.addServer(&model);
            server.addGroup(8, 0.3 + 0.05 * i, power::kTurboMHz, 1);
            soas.push_back(
                std::make_unique<core::ServerOverclockingAgent>(
                    server, cfg, &rack));
            goa.addAgent(soas.back().get());
        }
        goa.assignEvenSplit();
    }

    /** Stream telemetry until @p until (exclusive of recomputes). */
    void advanceTo(sim::Tick until)
    {
        for (; now < until; now += sim::kSlot)
            for (auto &soa : soas)
                soa->tick(now);
    }

    /**
     * Mean recompute latency in microseconds over @p reps, each
     * preceded by one fresh telemetry slot so every recompute does
     * real incremental work (otherwise the aggregator caches make
     * all but the first recompute trivial).
     */
    double measureRecomputeUs(int reps)
    {
        goa.recompute(now); // warm scratch buffers, not timed
        double total_s = 0.0;
        for (int r = 0; r < reps; ++r) {
            advanceTo(now + sim::kSlot);
            const auto start = Clock::now();
            goa.recompute(now);
            total_s += secondsSince(start);
        }
        return total_s / reps * 1e6;
    }
};

/** Synthetic per-server profiles for the hierarchy benchmark, with
 *  deterministic per-rack/server variation. */
std::vector<core::ServerProfile>
syntheticRack(int rack, int servers)
{
    std::vector<core::ServerProfile> out;
    for (int s = 0; s < servers; ++s) {
        core::ServerProfile p;
        p.power =
            core::ProfileTemplate::flat(300.0 + 10.0 * (rack % 5));
        p.utilization =
            core::ProfileTemplate::flat(0.4 + 0.05 * (s % 4));
        p.overclockedCores =
            core::ProfileTemplate::flat(static_cast<double>(s % 3));
        p.requestedCores =
            core::ProfileTemplate::flat(4.0 + (rack + s) % 6);
        out.push_back(std::move(p));
    }
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    const char *out_path =
        argc > 1 ? argv[1] : "BENCH_trace_sim.json";

    // 1. Simulator throughput at fleet-bench scale (ROADMAP item
    //    1).  racks_per_s is *replay* throughput — racks over the
    //    control-loop seconds summed across racks — with one-time
    //    trace synthesis reported separately, since a fleet study
    //    amortizes generation across many policy runs.
    // 6h warmup + 6h eval keeps the bench CI-sized while still
    // crossing warmup snapshots, recomputes, slot rollovers and
    // several grant chunks per VM; long-horizon behaviour is covered
    // by the recompute harness below and the EXPERIMENTS.md recipes.
    cluster::TraceSimConfig cfg;
    cfg.racks = 64;
    cfg.serversPerRack = 8;
    cfg.warmup = 6 * sim::kHour;
    cfg.duration = 6 * sim::kHour;
    cfg.controlStep = 300 * sim::kSecond;
    cfg.requestChunk = sim::kHour;
    cfg.seed = 101;
    const auto wall_start = Clock::now();
    const auto result = cluster::runTraceSim(cfg);
    const double wall_s = secondsSince(wall_start);
    const double racks_per_s = result.simSeconds > 0.0
        ? cfg.racks / result.simSeconds
        : 0.0;

    // 2. Recompute latency vs telemetry horizon.
    RecomputeHarness harness;
    harness.advanceTo(sim::kDay);
    const double us_1d = harness.measureRecomputeUs(64);
    harness.advanceTo(6 * sim::kWeek);
    const double us_6w = harness.measureRecomputeUs(64);
    const double ratio = us_1d > 0.0 ? us_6w / us_1d : 0.0;

    // 3. Hierarchical budget tier at the same fleet scale.  The
    //    flat split prices the zone at O(servers x slots) every
    //    time; the rack->row->zone tier re-splits at
    //    O((rows + racks) x slots) and, in steady state (one rack's
    //    telemetry changed), re-aggregates only that rack.
    std::vector<core::ServerProfile> zone_profiles;
    core::BudgetHierarchy hierarchy(harness.model, {});
    for (int r = 0; r < cfg.racks; ++r) {
        auto rack_profiles = syntheticRack(r, cfg.serversPerRack);
        for (const auto &p : rack_profiles)
            zone_profiles.push_back(p);
        hierarchy.addRack(std::move(rack_profiles));
    }
    const power::Watts zone_limit{cfg.racks * cfg.serversPerRack *
                                  450.0};
    constexpr int kHierReps = 16;

    core::BudgetAllocator flat_alloc(harness.model);
    core::BudgetAllocator::SplitScratch flat_scratch;
    std::vector<core::ProfileTemplate> flat_out;
    auto start = Clock::now();
    for (int rep = 0; rep < kHierReps; ++rep)
        flat_alloc.splitInto(zone_limit, zone_profiles, flat_scratch,
                             flat_out);
    const double flat_us = secondsSince(start) / kHierReps * 1e6;

    hierarchy.recompute(zone_limit); // build aggregates, not timed
    start = Clock::now();
    for (int rep = 0; rep < kHierReps; ++rep) {
        // Steady state: one rack's telemetry pull changed.
        hierarchy.setRackProfiles(rep % cfg.racks,
                                  syntheticRack(rep % cfg.racks,
                                                cfg.serversPerRack));
        hierarchy.recompute(zone_limit);
    }
    const double hier_us = secondsSince(start) / kHierReps * 1e6;

    // 4. Hint-ingestion throughput under the standard adversarial
    //    storm (offer + parse + dedup + drop policy + drain).  The
    //    gated hints_per_s figure: scripts/bench_check.sh fails if
    //    the boundary can no longer absorb storms at rate.
    core::HintIngressConfig ingress_cfg;
    ingress_cfg.maxHintAge = sim::kHour;
    auto storm_cfg = sim::HintStormConfig::standardStorm();
    const auto ingress_bench = benchutil::runIngressStorm(
        storm_cfg, ingress_cfg, /*servers=*/8, /*vms_per_server=*/16,
        /*steps=*/2000);

    std::FILE *out = std::fopen(out_path, "w");
    if (out == nullptr) {
        std::fprintf(stderr, "cannot open %s\n", out_path);
        return 1;
    }
    std::fprintf(out,
                 "{\n"
                 "  \"trace_sim\": {\n"
                 "    \"racks\": %d,\n"
                 "    \"servers_per_rack\": %d,\n"
                 "    \"simulated\": \"6h warmup + 6h eval\",\n"
                 "    \"wall_s\": %.3f,\n"
                 "    \"gen_s\": %.3f,\n"
                 "    \"sim_s\": %.3f,\n"
                 "    \"racks_per_s\": %.3f,\n"
                 "    \"requests\": %llu\n"
                 "  },\n"
                 "  \"goa_recompute\": {\n"
                 "    \"servers\": %d,\n"
                 "    \"recompute_us_1d\": %.2f,\n"
                 "    \"recompute_us_6w\": %.2f,\n"
                 "    \"ratio_6w_over_1d\": %.3f\n"
                 "  },\n"
                 "  \"budget_hierarchy\": {\n"
                 "    \"racks\": %d,\n"
                 "    \"rows\": %d,\n"
                 "    \"flat_zone_split_us\": %.2f,\n"
                 "    \"incremental_recompute_us\": %.2f\n"
                 "  },\n"
                 "  \"hint_ingress\": {\n"
                 "    \"storm\": \"standard\",\n"
                 "    \"offered\": %llu,\n"
                 "    \"accepted\": %llu,\n"
                 "    \"parse_rejects\": %llu,\n"
                 "    \"hints_per_s\": %.0f\n"
                 "  }\n"
                 "}\n",
                 cfg.racks, cfg.serversPerRack, wall_s,
                 result.genSeconds, result.simSeconds, racks_per_s,
                 static_cast<unsigned long long>(result.requests),
                 RecomputeHarness::kServers, us_1d, us_6w, ratio,
                 cfg.racks, static_cast<int>(hierarchy.rows()),
                 flat_us, hier_us,
                 static_cast<unsigned long long>(
                     ingress_bench.offered),
                 static_cast<unsigned long long>(
                     ingress_bench.stats.accepted),
                 static_cast<unsigned long long>(
                     ingress_bench.stats.parseRejects),
                 ingress_bench.hintsPerS);
    std::fclose(out);
    std::printf("wall_s=%.3f gen_s=%.3f sim_s=%.3f "
                "racks_per_s=%.3f "
                "recompute_us_1d=%.2f recompute_us_6w=%.2f "
                "ratio=%.3f flat_zone_split_us=%.2f "
                "hier_incremental_us=%.2f hints_per_s=%.0f -> %s\n",
                wall_s, result.genSeconds, result.simSeconds,
                racks_per_s, us_1d, us_6w, ratio, flat_us, hier_us,
                ingress_bench.hintsPerS, out_path);
    return 0;
}
