/**
 * @file
 * Simulator-throughput and recompute-cost benchmark driver.
 *
 * Measurements, written as JSON (default BENCH_trace_sim.json) so
 * scripts/bench_check.sh and CI can track regressions:
 *
 *  1. End-to-end wall time of a multi-rack trace-simulator run
 *     (racks/sec of simulated fleet).
 *  2. gOA recompute latency after 1 day vs after 6 weeks of
 *     telemetry.  With the incremental slot aggregators the cost is
 *     O(slots-per-week) regardless of history length, so the 6-week
 *     figure must stay within ~2x of the 1-day figure; the batch
 *     builder it replaced scaled linearly (42x the history).  The
 *     gated ratio uses min-of-N (the distribution floor): means mix
 *     in scheduler noise that once pushed the ratio to ~0.96 of
 *     pure jitter.
 *  3. Hierarchical budget tier vs the flat zone split.
 *  4. Hint-ingestion throughput under the standard storm.
 *  5. Batch vs scalar normal generation: Rng::normalFill against
 *     the scalar normal() loop it replaced in the window refill,
 *     chunked at the trace generator's day-batch size.  The gated
 *     speedup keeps the batch path from silently regressing to
 *     scalar cost.
 *  6. Paper-scale streaming replay: the full 7,104-rack fleet of
 *     the paper (§III) through the HierarchyZone budget path,
 *     reporting replay throughput, the serial hierarchy-recompute
 *     share, and peak RSS (the streaming-window design holds it to
 *     racks x window, not racks x horizon).
 *
 * Usage:
 *   trace_sim_bench [out.json] [--paper-scale] [--six-weeks]
 *                   [--racks N] [--servers N] [--threads N]
 *
 *   --paper-scale  run *only* the paper-scale section (CI smoke uses
 *                  this with --racks 512); by default every section
 *                  runs, paper-scale included.
 *   --six-weeks    paper-scale horizon: 1 week warmup + 5 weeks eval
 *                  with weekly recomputes (the paper's full study)
 *                  instead of the default 6h + 6h.
 *   --racks N      paper-scale rack count   (default 7104)
 *   --servers N    paper-scale servers/rack (default 8)
 *   --threads N    worker threads, all sections (default 0 = auto)
 *
 * Unknown flags and malformed numbers are usage errors (exit 2):
 * a bench invoked with a typo must not silently measure the wrong
 * fleet.
 */

#include <sys/resource.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <utility>
#include <vector>

#include "cluster/trace_sim.hh"
#include "core/budget_hierarchy.hh"
#include "core/goa.hh"
#include "hint_storm_common.hh"
#include "sim/rng.hh"
#include "sim/time.hh"
#include "workload/trace_generator.hh"

using namespace soc;
using Clock = std::chrono::steady_clock;

namespace
{

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start)
        .count();
}

/** Peak resident set of this process in MiB (Linux ru_maxrss is
 *  KiB).  The paper-scale gate tracks it: the streaming replay
 *  must keep 7.1k racks x 6 weeks out of memory. */
double
peakRssMb()
{
    struct rusage usage {};
    if (getrusage(RUSAGE_SELF, &usage) != 0)
        return 0.0;
    return static_cast<double>(usage.ru_maxrss) / 1024.0;
}

struct Args {
    const char *outPath = "BENCH_trace_sim.json";
    bool paperScaleOnly = false;
    bool sixWeeks = false;
    int racks = 7104;
    int servers = 8;
    int threads = 0;
};

int
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [out.json] [--paper-scale] "
                 "[--six-weeks] [--racks N] [--servers N] "
                 "[--threads N]\n",
                 argv0);
    return 2;
}

/** Strict int parse: the whole token, in [min, max]. */
bool
parseInt(const char *text, long min, long max, int &out)
{
    if (text == nullptr || *text == '\0')
        return false;
    errno = 0;
    char *end = nullptr;
    const long value = std::strtol(text, &end, 10);
    if (errno != 0 || end == nullptr || *end != '\0' ||
        value < min || value > max)
        return false;
    out = static_cast<int>(value);
    return true;
}

bool
parseArgs(int argc, char **argv, Args &out)
{
    // Fail-closed (FC-001): build into a local and assign only on
    // success, so bad argv never leaves half-applied options.
    Args args;
    bool have_path = false;
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strcmp(arg, "--paper-scale") == 0) {
            args.paperScaleOnly = true;
        } else if (std::strcmp(arg, "--six-weeks") == 0) {
            args.sixWeeks = true;
        } else if (std::strcmp(arg, "--racks") == 0) {
            if (++i >= argc ||
                !parseInt(argv[i], 1, 1000000, args.racks))
                return false;
        } else if (std::strcmp(arg, "--servers") == 0) {
            if (++i >= argc ||
                !parseInt(argv[i], 1, 1024, args.servers))
                return false;
        } else if (std::strcmp(arg, "--threads") == 0) {
            if (++i >= argc ||
                !parseInt(argv[i], 0, 4096, args.threads))
                return false;
        } else if (arg[0] == '-') {
            return false; // unknown flag: fail closed
        } else if (!have_path) {
            args.outPath = arg;
            have_path = true;
        } else {
            return false; // second positional
        }
    }
    out = args;
    return true;
}

/** One rack of idle-ish servers streaming telemetry into their
 *  sOAs, with the gOA recomputed on demand. */
struct RecomputeHarness {
    static constexpr int kServers = 8;

    power::PowerModel model;
    power::Rack rack{0, power::Watts{4000.0}};
    std::vector<std::unique_ptr<core::ServerOverclockingAgent>> soas;
    core::GlobalOverclockingAgent goa;
    sim::Tick now = 0;

    RecomputeHarness() : goa(rack, model)
    {
        core::SoaConfig cfg;
        // One control tick per telemetry slot: every tick closes
        // exactly one 5-minute sample, the cheapest way to stream
        // weeks of history.
        cfg.controlPeriod = sim::kSlot;
        for (int i = 0; i < kServers; ++i) {
            power::Server &server = rack.addServer(&model);
            server.addGroup(8, 0.3 + 0.05 * i, power::kTurboMHz, 1);
            soas.push_back(
                std::make_unique<core::ServerOverclockingAgent>(
                    server, cfg, &rack));
            goa.addAgent(soas.back().get());
        }
        goa.assignEvenSplit();
    }

    /** Stream telemetry until @p until (exclusive of recomputes). */
    void advanceTo(sim::Tick until)
    {
        for (; now < until; now += sim::kSlot)
            for (auto &soa : soas)
                soa->tick(now);
    }

    struct Latency {
        double meanUs = 0.0;
        double minUs = 0.0;
    };

    /**
     * Recompute latency over @p reps, each preceded by one fresh
     * telemetry slot so every recompute does real incremental work
     * (otherwise the aggregator caches make all but the first
     * recompute trivial).  Reports the mean (context) and the min
     * (the gated figure: the distribution floor is the cost of the
     * work; everything above it is scheduler noise).
     */
    Latency measureRecompute(int reps)
    {
        goa.recompute(now); // warm scratch buffers, not timed
        Latency lat;
        double total_s = 0.0;
        double min_s = 0.0;
        for (int r = 0; r < reps; ++r) {
            advanceTo(now + sim::kSlot);
            const auto start = Clock::now();
            goa.recompute(now);
            const double s = secondsSince(start);
            total_s += s;
            if (r == 0 || s < min_s)
                min_s = s;
        }
        lat.meanUs = total_s / reps * 1e6;
        lat.minUs = min_s * 1e6;
        return lat;
    }
};

/** Synthetic per-server profiles for the hierarchy benchmark, with
 *  deterministic per-rack/server variation. */
std::vector<core::ServerProfile>
syntheticRack(int rack, int servers)
{
    std::vector<core::ServerProfile> out;
    for (int s = 0; s < servers; ++s) {
        core::ServerProfile p;
        p.power =
            core::ProfileTemplate::flat(300.0 + 10.0 * (rack % 5));
        p.utilization =
            core::ProfileTemplate::flat(0.4 + 0.05 * (s % 4));
        p.overclockedCores =
            core::ProfileTemplate::flat(static_cast<double>(s % 3));
        p.requestedCores =
            core::ProfileTemplate::flat(4.0 + (rack + s) % 6);
        out.push_back(std::move(p));
    }
    return out;
}

/** Batch-vs-scalar normal generation (section 5).  Both sides draw
 *  the same count from identically seeded streams; the batch side is
 *  chunked at VmUtilCursor::kBatch, the granularity the window
 *  refill actually uses, so the measured speedup is the one the
 *  replay sees.  Best-of-N to shed scheduler noise. */
struct GenBatchResult {
    double scalarPerS = 0.0;
    double batchPerS = 0.0;
    double speedup = 0.0;
};

GenBatchResult
runGenBatchVsScalar()
{
    constexpr std::size_t kNormals = std::size_t{1} << 21;
    constexpr std::size_t kChunk = workload::VmUtilCursor::kBatch;
    constexpr int kReps = 5;
    std::vector<double> buf(kChunk);
    double scalar_s = 0.0;
    double batch_s = 0.0;
    double sink = 0.0;
    for (int rep = 0; rep < kReps; ++rep) {
        sim::Rng scalar_rng(9000 + rep);
        auto start = Clock::now();
        for (std::size_t i = 0; i < kNormals; i += kChunk) {
            for (std::size_t k = 0; k < kChunk; ++k)
                buf[k] = scalar_rng.normal();
            sink += buf[kChunk - 1];
        }
        const double s = secondsSince(start);
        if (rep == 0 || s < scalar_s)
            scalar_s = s;

        sim::Rng batch_rng(9000 + rep);
        start = Clock::now();
        for (std::size_t i = 0; i < kNormals; i += kChunk) {
            batch_rng.normalFill(buf.data(), kChunk);
            sink += buf[kChunk - 1];
        }
        const double b = secondsSince(start);
        if (rep == 0 || b < batch_s)
            batch_s = b;
    }
    // The streams are pinned identical by test; the checksum only
    // keeps the loops observable.
    if (sink == 12345.678)
        std::fprintf(stderr, "(checksum coincidence)\n");
    GenBatchResult out;
    out.scalarPerS =
        scalar_s > 0.0 ? static_cast<double>(kNormals) / scalar_s : 0.0;
    out.batchPerS =
        batch_s > 0.0 ? static_cast<double>(kNormals) / batch_s : 0.0;
    out.speedup =
        out.scalarPerS > 0.0 ? out.batchPerS / out.scalarPerS : 0.0;
    return out;
}

/** The paper-scale streaming replay (section 6). */
struct PaperScaleResult {
    cluster::TraceSimConfig cfg;
    cluster::TraceSimResult result;
    double wallS = 0.0;
    double racksPerS = 0.0;
    double hierShare = 0.0;
    double peakRssMb = 0.0;
};

PaperScaleResult
runPaperScale(const Args &args)
{
    PaperScaleResult out;
    cluster::TraceSimConfig &cfg = out.cfg;
    cfg.racks = args.racks;
    cfg.serversPerRack = args.servers;
    if (args.sixWeeks) {
        cfg.warmup = sim::kWeek;
        cfg.duration = 5 * sim::kWeek;
        cfg.recomputePeriod = sim::kWeek;
    } else {
        cfg.warmup = 6 * sim::kHour;
        cfg.duration = 6 * sim::kHour;
        cfg.recomputePeriod = 3 * sim::kHour;
    }
    cfg.controlStep = 300 * sim::kSecond;
    cfg.requestChunk = sim::kHour;
    cfg.templateWindow = sim::kWeek;
    cfg.streamWindow = sim::kDay;
    cfg.budgetPath = cluster::BudgetPath::HierarchyZone;
    cfg.racksPerRow = 8;
    cfg.threads = args.threads;
    cfg.seed = 101;

    const auto start = Clock::now();
    out.result = cluster::runTraceSim(cfg);
    out.wallS = secondsSince(start);
    // Replay throughput charges the hierarchy's serial recompute
    // phase too — it is on the critical path at paper scale.
    const double replay_s =
        out.result.simSeconds + out.result.hierSeconds;
    out.racksPerS = replay_s > 0.0 ? cfg.racks / replay_s : 0.0;
    out.hierShare =
        replay_s > 0.0 ? out.result.hierSeconds / replay_s : 0.0;
    out.peakRssMb = peakRssMb();
    return out;
}

void
printPaperScaleJson(std::FILE *out, const Args &args,
                    const PaperScaleResult &paper)
{
    std::fprintf(
        out,
        "  \"paper_scale\": {\n"
        "    \"paper_racks\": %d,\n"
        "    \"paper_servers_per_rack\": %d,\n"
        "    \"paper_horizon\": \"%s\",\n"
        "    \"paper_wall_s\": %.3f,\n"
        "    \"paper_gen_s\": %.3f,\n"
        "    \"paper_sim_s\": %.3f,\n"
        "    \"paper_hier_s\": %.4f,\n"
        "    \"paper_hier_share\": %.4f,\n"
        "    \"paper_hier_recomputes\": %llu,\n"
        "    \"paper_racks_per_s\": %.1f,\n"
        "    \"paper_peak_rss_mb\": %.1f,\n"
        "    \"paper_requests\": %llu\n"
        "  }\n",
        paper.cfg.racks, paper.cfg.serversPerRack,
        args.sixWeeks ? "1w warmup + 5w eval" : "6h warmup + 6h eval",
        paper.wallS, paper.result.genSeconds,
        paper.result.simSeconds, paper.result.hierSeconds,
        paper.hierShare,
        static_cast<unsigned long long>(
            paper.result.hierarchyRecomputes),
        paper.racksPerS, paper.peakRssMb,
        static_cast<unsigned long long>(paper.result.requests));
}

} // namespace

int
main(int argc, char **argv)
{
    Args args;
    if (!parseArgs(argc, argv, args))
        return usage(argv[0]);

    if (args.paperScaleOnly) {
        const auto paper = runPaperScale(args);
        std::FILE *out = std::fopen(args.outPath, "w");
        if (out == nullptr) {
            std::fprintf(stderr, "cannot open %s\n", args.outPath);
            return 1;
        }
        std::fprintf(out, "{\n");
        printPaperScaleJson(out, args, paper);
        std::fprintf(out, "}\n");
        std::fclose(out);
        std::printf("paper_racks=%d paper_sim_s=%.3f "
                    "paper_hier_s=%.4f paper_racks_per_s=%.1f "
                    "paper_peak_rss_mb=%.1f -> %s\n",
                    paper.cfg.racks, paper.result.simSeconds,
                    paper.result.hierSeconds, paper.racksPerS,
                    paper.peakRssMb, args.outPath);
        return 0;
    }

    // 1. Simulator throughput at fleet-bench scale (ROADMAP item
    //    1).  racks_per_s is *replay* throughput — racks over the
    //    control-loop seconds summed across racks — with one-time
    //    trace synthesis reported separately, since a fleet study
    //    amortizes generation across many policy runs.
    // 6h warmup + 6h eval keeps the bench CI-sized while still
    // crossing warmup snapshots, recomputes, slot rollovers and
    // several grant chunks per VM; long-horizon behaviour is covered
    // by the recompute harness below and the EXPERIMENTS.md recipes.
    cluster::TraceSimConfig cfg;
    cfg.racks = 64;
    cfg.serversPerRack = 8;
    cfg.warmup = 6 * sim::kHour;
    cfg.duration = 6 * sim::kHour;
    cfg.controlStep = 300 * sim::kSecond;
    cfg.requestChunk = sim::kHour;
    cfg.seed = 101;
    cfg.threads = args.threads;
    // Best-of-N, like the recompute min: the run is short enough
    // (~0.2s) that one page-reclaim stall or scheduler preemption
    // otherwise dominates the gated figure.
    constexpr int kReplayReps = 3;
    cluster::TraceSimResult result;
    double wall_s = 0.0;
    for (int rep = 0; rep < kReplayReps; ++rep) {
        const auto wall_start = Clock::now();
        auto r = cluster::runTraceSim(cfg);
        const double w = secondsSince(wall_start);
        if (rep == 0 || r.simSeconds < result.simSeconds) {
            result = std::move(r);
            wall_s = w;
        }
    }
    const double racks_per_s = result.simSeconds > 0.0
        ? cfg.racks / result.simSeconds
        : 0.0;

    // 2. Recompute latency vs telemetry horizon (min-of-N gated).
    constexpr int kRecomputeReps = 64;
    RecomputeHarness harness;
    harness.advanceTo(sim::kDay);
    const auto lat_1d = harness.measureRecompute(kRecomputeReps);
    harness.advanceTo(6 * sim::kWeek);
    const auto lat_6w = harness.measureRecompute(kRecomputeReps);
    const double ratio =
        lat_1d.minUs > 0.0 ? lat_6w.minUs / lat_1d.minUs : 0.0;

    // 3. Hierarchical budget tier at the same fleet scale.  The
    //    flat split prices the zone at O(servers x slots) every
    //    time; the rack->row->zone tier re-splits at
    //    O((rows + racks) x slots) and, in steady state (one rack's
    //    telemetry changed), re-aggregates only that rack.
    std::vector<core::ServerProfile> zone_profiles;
    core::BudgetHierarchy hierarchy(harness.model, {});
    for (int r = 0; r < cfg.racks; ++r) {
        auto rack_profiles = syntheticRack(r, cfg.serversPerRack);
        for (const auto &p : rack_profiles)
            zone_profiles.push_back(p);
        hierarchy.addRack(std::move(rack_profiles));
    }
    const power::Watts zone_limit{cfg.racks * cfg.serversPerRack *
                                  450.0};
    constexpr int kHierReps = 16;

    core::BudgetAllocator flat_alloc(harness.model);
    core::BudgetAllocator::SplitScratch flat_scratch;
    std::vector<core::ProfileTemplate> flat_out;
    auto start = Clock::now();
    for (int rep = 0; rep < kHierReps; ++rep)
        flat_alloc.splitInto(zone_limit, zone_profiles, flat_scratch,
                             flat_out);
    const double flat_us = secondsSince(start) / kHierReps * 1e6;

    hierarchy.recompute(zone_limit); // build aggregates, not timed
    start = Clock::now();
    for (int rep = 0; rep < kHierReps; ++rep) {
        // Steady state: one rack's telemetry pull changed.
        hierarchy.setRackProfiles(rep % cfg.racks,
                                  syntheticRack(rep % cfg.racks,
                                                cfg.serversPerRack));
        hierarchy.recompute(zone_limit);
    }
    const double hier_us = secondsSince(start) / kHierReps * 1e6;

    // 4. Hint-ingestion throughput under the standard adversarial
    //    storm (offer + parse + dedup + drop policy + drain).  The
    //    gated hints_per_s figure: scripts/bench_check.sh fails if
    //    the boundary can no longer absorb storms at rate.
    core::HintIngressConfig ingress_cfg;
    ingress_cfg.maxHintAge = sim::kHour;
    auto storm_cfg = sim::HintStormConfig::standardStorm();
    const auto ingress_bench = benchutil::runIngressStorm(
        storm_cfg, ingress_cfg, /*servers=*/8, /*vms_per_server=*/16,
        /*steps=*/2000);

    // 5. Batch-vs-scalar normal generation (gated speedup).
    const auto gen_batch = runGenBatchVsScalar();

    // 6. Paper-scale streaming replay (gated racks/s + peak RSS).
    const auto paper = runPaperScale(args);

    std::FILE *out = std::fopen(args.outPath, "w");
    if (out == nullptr) {
        std::fprintf(stderr, "cannot open %s\n", args.outPath);
        return 1;
    }
    std::fprintf(out,
                 "{\n"
                 "  \"trace_sim\": {\n"
                 "    \"racks\": %d,\n"
                 "    \"servers_per_rack\": %d,\n"
                 "    \"simulated\": \"6h warmup + 6h eval\",\n"
                 "    \"wall_s\": %.3f,\n"
                 "    \"gen_s\": %.3f,\n"
                 "    \"sim_s\": %.3f,\n"
                 "    \"racks_per_s\": %.3f,\n"
                 "    \"requests\": %llu\n"
                 "  },\n"
                 "  \"goa_recompute\": {\n"
                 "    \"servers\": %d,\n"
                 "    \"iterations\": %d,\n"
                 "    \"recompute_us_1d\": %.2f,\n"
                 "    \"recompute_us_1d_min\": %.2f,\n"
                 "    \"recompute_us_6w\": %.2f,\n"
                 "    \"recompute_us_6w_min\": %.2f,\n"
                 "    \"ratio_6w_over_1d\": %.3f\n"
                 "  },\n"
                 "  \"budget_hierarchy\": {\n"
                 "    \"racks\": %d,\n"
                 "    \"rows\": %d,\n"
                 "    \"flat_zone_split_us\": %.2f,\n"
                 "    \"incremental_recompute_us\": %.2f\n"
                 "  },\n"
                 "  \"hint_ingress\": {\n"
                 "    \"storm\": \"standard\",\n"
                 "    \"offered\": %llu,\n"
                 "    \"accepted\": %llu,\n"
                 "    \"parse_rejects\": %llu,\n"
                 "    \"hints_per_s\": %.0f\n"
                 "  },\n"
                 "  \"gen_batch_vs_scalar\": {\n"
                 "    \"gen_scalar_normals_per_s\": %.0f,\n"
                 "    \"gen_batch_normals_per_s\": %.0f,\n"
                 "    \"gen_batch_speedup\": %.3f\n"
                 "  },\n",
                 cfg.racks, cfg.serversPerRack, wall_s,
                 result.genSeconds, result.simSeconds, racks_per_s,
                 static_cast<unsigned long long>(result.requests),
                 RecomputeHarness::kServers, kRecomputeReps,
                 lat_1d.meanUs, lat_1d.minUs, lat_6w.meanUs,
                 lat_6w.minUs, ratio, cfg.racks,
                 static_cast<int>(hierarchy.rows()), flat_us,
                 hier_us,
                 static_cast<unsigned long long>(
                     ingress_bench.offered),
                 static_cast<unsigned long long>(
                     ingress_bench.stats.accepted),
                 static_cast<unsigned long long>(
                     ingress_bench.stats.parseRejects),
                 ingress_bench.hintsPerS, gen_batch.scalarPerS,
                 gen_batch.batchPerS, gen_batch.speedup);
    printPaperScaleJson(out, args, paper);
    std::fprintf(out, "}\n");
    std::fclose(out);
    std::printf("wall_s=%.3f gen_s=%.3f sim_s=%.3f "
                "racks_per_s=%.3f "
                "recompute_us_1d_min=%.2f recompute_us_6w_min=%.2f "
                "ratio=%.3f flat_zone_split_us=%.2f "
                "hier_incremental_us=%.2f hints_per_s=%.0f "
                "gen_batch_speedup=%.3f "
                "paper_racks_per_s=%.1f paper_peak_rss_mb=%.1f "
                "-> %s\n",
                wall_s, result.genSeconds, result.simSeconds,
                racks_per_s, lat_1d.minUs, lat_6w.minUs, ratio,
                flat_us, hier_us, ingress_bench.hintsPerS,
                gen_batch.speedup, paper.racksPerS, paper.peakRssMb,
                args.outPath);
    return 0;
}
