/**
 * @file
 * Table I — comparison of SmartOClock against Central (oracle),
 * NaiveOClock, NoFeedback and NoWarning on trace-driven simulations
 * of High-, Medium- and Low-power clusters.
 *
 * Columns, as in the paper: power-capping events normalized to
 * Central, overclocking-request success rate, capping penalty on
 * non-overclocked VMs, and performance normalized to the
 * non-overclocked baseline (max turbo).
 *
 * Paper reference (High-power clusters):
 *   Central 1.0 / 92% / 21% / 1.186      NoWarning 27.4 / 81% / ...
 *   NaiveOClock 118.6 / 55% / 34% / .963 SmartOClock 6.3 / 89% / 1.164
 *   NoFeedback 5.5 / 72% / ...
 */

#include <cstdlib>
#include <iostream>
#include <vector>

#include "cluster/trace_sim.hh"
#include "telemetry/table.hh"

using namespace soc;
using namespace soc::cluster;
using telemetry::fmt;
using telemetry::fmtPercent;

int
main(int argc, char **argv)
{
    // Usage: bench_table1_policies [threads]
    //   threads: worker-pool size for the independent (tier,
    //            policy) runs; 0 / omitted = hardware concurrency.
    const int threads = argc > 1 ? std::atoi(argv[1]) : 0;

    const PowerTier tiers[3] = {PowerTier::High, PowerTier::Medium,
                                PowerTier::Low};
    const char *tier_names[3] = {"High-Power", "Medium-Power",
                                 "Low-Power"};
    const core::PolicyKind policies[5] = {
        core::PolicyKind::Central, core::PolicyKind::NaiveOClock,
        core::PolicyKind::NoFeedback, core::PolicyKind::NoWarning,
        core::PolicyKind::SmartOClock};

    telemetry::Table table(
        "Table I - policy comparison (2 racks x 16 servers, "
        "1 week warm-up + 1 week evaluation)",
        {"cluster", "system", "norm. caps", "success", "penalty",
         "norm. perf"});

    // All 15 (tier, policy) runs are independent: run them on one
    // worker pool and read the results back in order.
    std::vector<TraceSimConfig> configs;
    for (int t = 0; t < 3; ++t) {
        for (int p = 0; p < 5; ++p) {
            TraceSimConfig cfg;
            cfg.policy = policies[p];
            cfg.racks = 2;
            cfg.serversPerRack = 16;
            cfg.warmup = sim::kWeek;
            cfg.duration = sim::kWeek;
            cfg.limitFactor =
                TraceSimConfig::tierLimitFactor(tiers[t]);
            cfg.seed = 11;
            configs.push_back(cfg);
        }
    }
    const auto results = runTraceSimBatch(configs, threads);

    for (int t = 0; t < 3; ++t) {
        const TraceSimResult *row = &results[t * 5];
        const double central_caps = std::max<double>(
            1.0, static_cast<double>(row[0].capEvents));
        for (int p = 0; p < 5; ++p) {
            table.addRow(
                {tier_names[t], core::policyName(policies[p]),
                 fmt(row[p].capEvents / central_caps, 1),
                 fmtPercent(row[p].successRate, 0),
                 fmtPercent(row[p].cappingPenalty, 0),
                 fmt(row[p].normPerformance, 3)});
        }
    }
    table.print(std::cout);

    std::cout <<
        "Paper shape to compare against: NaiveOClock causes orders "
        "of magnitude more capping\nevents than Central; warnings "
        "cut NoWarning's events by ~4x; SmartOClock grants most\n"
        "requests (within a few points of the oracle at Medium/Low "
        "power) with near-oracle\nperformance, while NoFeedback "
        "avoids caps but loses success to rigid budgets.\n";
    return 0;
}
