/**
 * @file
 * Chaos table — the Table I policies re-run under the standard
 * fault load (§III-Q5 robustness study).
 *
 * Every policy sees the identical deterministic fault plan: gOA
 * outages, sOA crash-restarts, lost/delayed/corrupted gOA<->sOA
 * messages and a noisy power sensor.  The recompute period is
 * shortened to a day so outages and leases matter inside a two-week
 * run.  Columns: the usual capping/success/performance metrics plus
 * the injected-fault count, the cap events attributable to faults,
 * the time sOAs spent enforcing stale (decayed) budgets, and the
 * mean fault recovery time.
 *
 * The shape to look for: SmartOClock's decentralized enforcement
 * degrades gracefully — success rate dips while budgets are stale
 * but capping stays orders of magnitude below NaiveOClock, which
 * has no feedback to contain fault fallout.
 */

#include <cstdlib>
#include <iostream>
#include <vector>

#include "cluster/trace_sim.hh"
#include "telemetry/table.hh"

using namespace soc;
using namespace soc::cluster;
using telemetry::fmt;
using telemetry::fmtPercent;

int
main(int argc, char **argv)
{
    // Usage: bench_table_faults [threads]
    //   threads: worker-pool size for the independent policy runs;
    //            0 / omitted = hardware concurrency.
    const int threads = argc > 1 ? std::atoi(argv[1]) : 0;

    const core::PolicyKind policies[5] = {
        core::PolicyKind::Central, core::PolicyKind::NaiveOClock,
        core::PolicyKind::NoFeedback, core::PolicyKind::NoWarning,
        core::PolicyKind::SmartOClock};

    telemetry::Table table(
        "Policies under the standard fault load (2 racks x 16 "
        "servers, 1 week warm-up + 1 week evaluation, daily "
        "recompute)",
        {"system", "caps", "fault caps", "success", "norm. perf",
         "faults", "stale min", "recovery s"});

    std::vector<TraceSimConfig> configs;
    for (int p = 0; p < 5; ++p) {
        TraceSimConfig cfg;
        cfg.policy = policies[p];
        cfg.racks = 2;
        cfg.serversPerRack = 16;
        cfg.warmup = sim::kWeek;
        cfg.duration = sim::kWeek;
        cfg.limitFactor =
            TraceSimConfig::tierLimitFactor(PowerTier::Medium);
        cfg.seed = 11;
        // Daily budget refresh so multi-hour outages actually
        // starve the sOAs of updates mid-evaluation.
        cfg.recomputePeriod = sim::kDay;
        cfg.faults = sim::FaultConfig::standardChaos();
        configs.push_back(cfg);
    }
    const auto results = runTraceSimBatch(configs, threads);

    for (int p = 0; p < 5; ++p) {
        const TraceSimResult &row = results[p];
        // Stale-lease tick counts are per control step (30 s).
        const double stale_minutes =
            static_cast<double>(row.staleLeaseTicks) * 30.0 / 60.0;
        table.addRow(
            {core::policyName(policies[p]),
             fmt(static_cast<double>(row.capEvents), 0),
             fmt(static_cast<double>(row.capEventsFaultAttributed),
                 0),
             fmtPercent(row.successRate, 0),
             fmt(row.normPerformance, 3),
             fmt(static_cast<double>(row.faults.total()), 0),
             fmt(stale_minutes, 0),
             fmt(row.meanRecoveryS, 0)});
    }
    table.print(std::cout);

    const TraceSimResult &smart = results[4];
    std::cout << "Injected into the SmartOClock run: "
              << smart.faults.goaOutages << " gOA outages ("
              << smart.faults.recomputesSkipped
              << " recomputes skipped), " << smart.faults.soaCrashes
              << " sOA crash-restarts, " << smart.faults.budgetDrops
              << " budget pushes lost, " << smart.faults.budgetDelays
              << " delayed, " << smart.faults.budgetRejects
              << " rejected by validation, "
              << smart.faults.telemetryDrops
              << " telemetry pulls served from cache.\n"
              << "Enforcement is decentralized: every policy "
                 "completes under this load; the sOAs ride out\n"
                 "outages on stale-then-decayed budgets instead of "
                 "overclocking unboundedly or crashing.\n";
    return 0;
}
