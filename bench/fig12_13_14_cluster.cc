/**
 * @file
 * Figures 12, 13 and 14 — the 36-server cluster experiment: tail
 * latency, cost (mean active instances) and energy of SocialNet
 * deployments under Baseline / ScaleOut / ScaleUp / SmartOClock.
 *
 * Paper headline numbers: at high load SmartOClock cuts P99 by
 * 19.0% / 10.5% / 8.9% vs Baseline / ScaleOut / ScaleUp, reduces
 * missed SLOs by 26x / 4.8x / 2.3x, needs 30.4% fewer instances
 * than ScaleOut, and lowers total energy by ~10% vs ScaleOut.
 */

#include <cstdlib>
#include <iostream>
#include <vector>

#include "cluster/service_sim.hh"
#include "telemetry/table.hh"

using namespace soc;
using namespace soc::cluster;
using telemetry::fmt;
using telemetry::fmtPercent;

int
main(int argc, char **argv)
{
    // Usage: bench_fig12_13_14_cluster [threads]
    //   threads: worker-pool size for the four environment runs;
    //            0 / omitted = hardware concurrency.
    const int threads = argc > 1 ? std::atoi(argv[1]) : 0;

    const Environment envs[4] = {
        Environment::Baseline, Environment::ScaleOut,
        Environment::ScaleUp, Environment::SmartOClock};

    std::vector<ServiceSimConfig> configs;
    for (int e = 0; e < 4; ++e) {
        ServiceSimConfig cfg;
        cfg.environment = envs[e];
        cfg.duration = 20 * sim::kMinute;
        cfg.warmup = 2 * sim::kMinute;
        configs.push_back(cfg);
    }
    const auto results = runServiceSimBatch(configs, threads);

    const char *class_names[3] = {"low", "medium", "high"};

    telemetry::Table fig12(
        "Fig. 12 - P99 / mean latency (ms) and missed SLOs by load "
        "class",
        {"load", "metric", "Baseline", "ScaleOut", "ScaleUp",
         "SmartOClock"});
    for (int c = 0; c < 3; ++c) {
        fig12.addRow({class_names[c], "P99 ms",
                      fmt(results[0].byClass[c].p99Ms, 1),
                      fmt(results[1].byClass[c].p99Ms, 1),
                      fmt(results[2].byClass[c].p99Ms, 1),
                      fmt(results[3].byClass[c].p99Ms, 1)});
        fig12.addRow({class_names[c], "mean ms",
                      fmt(results[0].byClass[c].meanMs, 1),
                      fmt(results[1].byClass[c].meanMs, 1),
                      fmt(results[2].byClass[c].meanMs, 1),
                      fmt(results[3].byClass[c].meanMs, 1)});
        fig12.addRow(
            {class_names[c], "missed SLOs",
             std::to_string(results[0].byClass[c].violations),
             std::to_string(results[1].byClass[c].violations),
             std::to_string(results[2].byClass[c].violations),
             std::to_string(results[3].byClass[c].violations)});
    }
    fig12.print(std::cout);

    const auto &high_base = results[0].byClass[2];
    const auto &high_out = results[1].byClass[2];
    const auto &high_up = results[2].byClass[2];
    const auto &high_smart = results[3].byClass[2];
    auto pct_better = [](double ref, double ours) {
        return fmtPercent(1.0 - ours / ref);
    };
    std::cout << "High-load P99 reduction vs "
              << "Baseline/ScaleOut/ScaleUp: "
              << pct_better(high_base.p99Ms, high_smart.p99Ms) << "/"
              << pct_better(high_out.p99Ms, high_smart.p99Ms) << "/"
              << pct_better(high_up.p99Ms, high_smart.p99Ms)
              << "  (paper: 19.0%/10.5%/8.9%)\n";
    auto ratio = [](std::uint64_t a, std::uint64_t b) {
        return fmt(static_cast<double>(a) /
                       std::max<std::uint64_t>(1, b),
                   1) + "x";
    };
    std::cout << "High-load missed-SLO reduction vs "
              << "Baseline/ScaleOut/ScaleUp: "
              << ratio(high_base.violations, high_smart.violations)
              << "/"
              << ratio(high_out.violations, high_smart.violations)
              << "/"
              << ratio(high_up.violations, high_smart.violations)
              << "  (paper: 26x/4.8x/2.3x)\n\n";

    telemetry::Table fig13(
        "Fig. 13 - mean concurrently active VM instances (cost)",
        {"load", "Baseline", "ScaleOut", "ScaleUp", "SmartOClock"});
    for (int c = 0; c < 3; ++c) {
        fig13.addRow({class_names[c],
                      fmt(results[0].byClass[c].meanInstances),
                      fmt(results[1].byClass[c].meanInstances),
                      fmt(results[2].byClass[c].meanInstances),
                      fmt(results[3].byClass[c].meanInstances)});
    }
    fig13.print(std::cout);
    std::cout << "High-load instance reduction vs ScaleOut: "
              << fmtPercent(1.0 - high_smart.meanInstances /
                                      high_out.meanInstances)
              << "  (paper: 30.4%)\n\n";

    telemetry::Table fig14(
        "Fig. 14 - energy, normalized to Baseline",
        {"metric", "Baseline", "ScaleOut", "ScaleUp",
         "SmartOClock"});
    for (int c = 0; c < 3; ++c) {
        const double ref = results[0].byClass[c].energyPerServerJ;
        fig14.addRow(
            {std::string("per-server (") + class_names[c] + ")",
             fmt(1.0),
             fmt(results[1].byClass[c].energyPerServerJ / ref),
             fmt(results[2].byClass[c].energyPerServerJ / ref),
             fmt(results[3].byClass[c].energyPerServerJ / ref)});
    }
    const soc::power::Joules total_ref = results[0].totalEnergyJ;
    fig14.addRow({"total", fmt(1.0),
                  fmt(results[1].totalEnergyJ / total_ref),
                  fmt(results[2].totalEnergyJ / total_ref),
                  fmt(results[3].totalEnergyJ / total_ref)});
    const soc::power::Joules social_ref = results[0].socialEnergyJ;
    fig14.addRow({"latency-critical servers", fmt(1.0),
                  fmt(results[1].socialEnergyJ / social_ref),
                  fmt(results[2].socialEnergyJ / social_ref),
                  fmt(results[3].socialEnergyJ / social_ref)});
    fig14.print(std::cout);
    std::cout << "Total-energy change vs ScaleOut: "
              << fmtPercent(results[3].totalEnergyJ /
                                results[1].totalEnergyJ - 1.0)
              << "  (paper: -10%)\n";
    return 0;
}
