/**
 * @file
 * Google-benchmark microbenchmarks of the hot library primitives:
 * the event queue, the power model, template construction and the
 * admission decision.  These bound the simulator's throughput and
 * the per-request cost of the control plane.
 */

#include <benchmark/benchmark.h>

#include "core/admission.hh"
#include "core/profile_template.hh"
#include "power/server.hh"
#include "sim/event_queue.hh"
#include "sim/rng.hh"
#include "workload/trace_generator.hh"

using namespace soc;

namespace
{

const power::PowerModel &
model()
{
    static const power::PowerModel instance;
    return instance;
}

void
BM_EventQueueScheduleRun(benchmark::State &state)
{
    for (auto _ : state) {
        sim::EventQueue queue;
        for (int i = 0; i < state.range(0); ++i)
            queue.schedule((i * 7919) % 100000, [](sim::Tick) {});
        queue.run();
        benchmark::DoNotOptimize(queue.executedCount());
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EventQueueScheduleRun)->Arg(1000)->Arg(100000);

void
BM_RngNormal(benchmark::State &state)
{
    sim::Rng rng(1);
    double sink = 0.0;
    for (auto _ : state)
        sink += rng.normal();
    benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_RngNormal);

void
BM_ServerPower(benchmark::State &state)
{
    power::Server server(0, &model());
    for (int i = 0; i < 8; ++i)
        server.addGroup(8, 0.1 * i, power::kTurboMHz, 1);
    for (auto _ : state)
        benchmark::DoNotOptimize(server.powerWatts());
}
BENCHMARK(BM_ServerPower);

void
BM_TemplateBuildDailyMed(benchmark::State &state)
{
    workload::TraceConfig cfg;
    cfg.end = 2 * sim::kWeek;
    workload::TraceGenerator gen(5, cfg);
    const auto series = gen.utilSeries(workload::serviceA());
    for (auto _ : state) {
        benchmark::DoNotOptimize(core::ProfileTemplate::build(
            core::TemplateStrategy::DailyMed, series));
    }
}
BENCHMARK(BM_TemplateBuildDailyMed);

void
BM_TemplatePredict(benchmark::State &state)
{
    workload::TraceConfig cfg;
    cfg.end = 2 * sim::kWeek;
    workload::TraceGenerator gen(5, cfg);
    const auto tmpl = core::ProfileTemplate::build(
        core::TemplateStrategy::DailyMed,
        gen.utilSeries(workload::serviceA()));
    sim::Tick t = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(tmpl.predict(t));
        t += sim::kMinute;
    }
}
BENCHMARK(BM_TemplatePredict);

void
BM_AdmissionDecision(benchmark::State &state)
{
    core::AdmissionController admission(model());
    core::OverclockBudget lifetime(sim::kWeek, 0.25, 64);
    core::ProfileTemplate budget =
        core::ProfileTemplate::flat(500.0);
    core::OverclockRequest request;
    request.groupId = 1;
    request.cores = 8;
    core::AdmissionInputs in;
    in.measuredWatts = 300.0;
    in.budget = &budget;
    in.lifetime = &lifetime;
    for (auto _ : state) {
        in.now += sim::kSecond;
        benchmark::DoNotOptimize(admission.decide(request, in));
        lifetime.release(1 << 30, in.now); // undo reservations
    }
}
BENCHMARK(BM_AdmissionDecision);

} // namespace
