/**
 * @file
 * Google-benchmark microbenchmarks of the hot library primitives:
 * the event queue, the power model, template construction and the
 * admission decision.  These bound the simulator's throughput and
 * the per-request cost of the control plane.
 */

#include <benchmark/benchmark.h>

#include "core/admission.hh"
#include "core/budget_allocator.hh"
#include "core/profile_template.hh"
#include "core/slot_aggregator.hh"
#include "power/server.hh"
#include "sim/event_queue.hh"
#include "sim/rng.hh"
#include "workload/trace_generator.hh"

using namespace soc;

namespace
{

const power::PowerModel &
model()
{
    static const power::PowerModel instance;
    return instance;
}

void
BM_EventQueueScheduleRun(benchmark::State &state)
{
    for (auto _ : state) {
        sim::EventQueue queue;
        for (int i = 0; i < state.range(0); ++i)
            queue.schedule((i * 7919) % 100000, [](sim::Tick) {});
        queue.run();
        benchmark::DoNotOptimize(queue.executedCount());
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EventQueueScheduleRun)->Arg(1000)->Arg(100000);

void
BM_RngNormal(benchmark::State &state)
{
    sim::Rng rng(1);
    double sink = 0.0;
    for (auto _ : state)
        sink += rng.normal();
    benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_RngNormal);

/*
 * gen_batch_vs_scalar: the scalar normal() loop vs the batch
 * normalFill over the same window size the trace generator fills
 * (one day of slots).  items_processed counts normals, so the
 * per-second rates of the two benches are directly comparable; the
 * gated speedup figure lives in BENCH_trace_sim.json
 * (gen_batch_speedup, scripts/bench_check.sh).
 */

void
BM_RngNormalScalarWindow(benchmark::State &state)
{
    sim::Rng rng(2);
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    std::vector<double> out(n);
    for (auto _ : state) {
        for (std::size_t i = 0; i < n; ++i)
            out[i] = rng.normal();
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RngNormalScalarWindow)->Arg(288);

void
BM_RngNormalFillWindow(benchmark::State &state)
{
    sim::Rng rng(2);
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    std::vector<double> out(n);
    for (auto _ : state) {
        rng.normalFill(out.data(), n);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RngNormalFillWindow)->Arg(288);

void
BM_ServerPower(benchmark::State &state)
{
    power::Server server(0, &model());
    for (int i = 0; i < 8; ++i)
        server.addGroup(8, 0.1 * i, power::kTurboMHz, 1);
    for (auto _ : state)
        benchmark::DoNotOptimize(server.powerWatts());
}
BENCHMARK(BM_ServerPower);

void
BM_TemplateBuildDailyMed(benchmark::State &state)
{
    workload::TraceConfig cfg;
    cfg.end = 2 * sim::kWeek;
    workload::TraceGenerator gen(5, cfg);
    const auto series = gen.utilSeries(workload::serviceA());
    for (auto _ : state) {
        benchmark::DoNotOptimize(core::ProfileTemplate::build(
            core::TemplateStrategy::DailyMed, series));
    }
}
BENCHMARK(BM_TemplateBuildDailyMed);

/** Random-walk power telemetry of @p slots 5-minute samples. */
telemetry::TimeSeries
walkHistory(int slots)
{
    sim::Rng rng(17);
    telemetry::TimeSeries s(0, sim::kSlot);
    double level = 250.0;
    for (int i = 0; i < slots; ++i) {
        level += rng.uniform(-4.0, 4.0);
        s.append(level);
    }
    return s;
}

/**
 * Batch template construction: one ProfileTemplate::build over the
 * whole history.  Arg = history length in days; cost grows linearly
 * with it (this is the per-recompute cost the slot aggregator
 * replaces).
 */
void
BM_TemplateBuildBatch(benchmark::State &state)
{
    const auto history = walkHistory(
        static_cast<int>(state.range(0)) * sim::kSlotsPerDay);
    for (auto _ : state) {
        benchmark::DoNotOptimize(core::ProfileTemplate::build(
            core::TemplateStrategy::DailyMed, history));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TemplateBuildBatch)->Arg(1)->Arg(7)->Arg(42);

/**
 * Incremental steady state: one closed slot arrives, then the
 * template is rebuilt from the aggregator.  Arg = retained history
 * in days (the aggregator's window, so the working set stays pinned
 * while the benchmark streams new slots); cost is O(slots-per-day),
 * independent of the window.
 */
void
BM_TemplateBuildIncremental(benchmark::State &state)
{
    const sim::Tick window = state.range(0) * sim::kDay;
    const auto history = walkHistory(
        static_cast<int>(state.range(0)) * sim::kSlotsPerDay);
    core::SlotAggregator agg(window);
    for (std::size_t i = 0; i < history.size(); ++i)
        agg.add(history.timeOf(i), history.at(i));
    sim::Tick t = history.end();
    sim::Rng rng(18);
    double level = 250.0;
    for (auto _ : state) {
        level += rng.uniform(-4.0, 4.0);
        agg.add(t, level);
        t += sim::kSlot;
        benchmark::DoNotOptimize(
            agg.build(core::TemplateStrategy::DailyMed));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TemplateBuildIncremental)->Arg(1)->Arg(7)->Arg(42);

core::ServerProfile
syntheticProfile(int seed)
{
    const auto history =
        walkHistory(7 * sim::kSlotsPerDay + 31 * seed);
    core::ServerProfile profile;
    profile.power = core::ProfileTemplate::build(
        core::TemplateStrategy::DailyMed, history);
    profile.utilization = core::ProfileTemplate::flat(0.4);
    profile.overclockedCores = core::ProfileTemplate::flat(2.0);
    profile.requestedCores =
        core::ProfileTemplate::flat(2.0 + seed % 3);
    return profile;
}

/** Allocating split: fresh scratch + output vectors per call. */
void
BM_BudgetSplit(benchmark::State &state)
{
    const core::BudgetAllocator allocator(model());
    std::vector<core::ServerProfile> profiles;
    for (int i = 0; i < state.range(0); ++i)
        profiles.push_back(syntheticProfile(i));
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            allocator.split(
                power::Watts{1000.0 * state.range(0)}, profiles));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BudgetSplit)->Arg(8)->Arg(28);

/** Steady-state split: scratch and output buffers reused. */
void
BM_BudgetSplitInto(benchmark::State &state)
{
    const core::BudgetAllocator allocator(model());
    std::vector<core::ServerProfile> profiles;
    for (int i = 0; i < state.range(0); ++i)
        profiles.push_back(syntheticProfile(i));
    core::BudgetAllocator::SplitScratch scratch;
    std::vector<core::ProfileTemplate> out;
    for (auto _ : state) {
        allocator.splitInto(
            power::Watts{1000.0 * state.range(0)}, profiles,
                            scratch, out);
        benchmark::DoNotOptimize(out);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BudgetSplitInto)->Arg(8)->Arg(28);

void
BM_TemplatePredict(benchmark::State &state)
{
    workload::TraceConfig cfg;
    cfg.end = 2 * sim::kWeek;
    workload::TraceGenerator gen(5, cfg);
    const auto tmpl = core::ProfileTemplate::build(
        core::TemplateStrategy::DailyMed,
        gen.utilSeries(workload::serviceA()));
    sim::Tick t = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(tmpl.predict(t));
        t += sim::kMinute;
    }
}
BENCHMARK(BM_TemplatePredict);

void
BM_AdmissionDecision(benchmark::State &state)
{
    core::AdmissionController admission(model());
    core::OverclockBudget lifetime(sim::kWeek, 0.25, 64);
    core::ProfileTemplate budget =
        core::ProfileTemplate::flat(500.0);
    core::OverclockRequest request;
    request.groupId = 1;
    request.cores = 8;
    core::AdmissionInputs in;
    in.measuredWatts = power::Watts{300.0};
    in.budget = &budget;
    in.lifetime = &lifetime;
    for (auto _ : state) {
        in.now += sim::kSecond;
        benchmark::DoNotOptimize(admission.decide(request, in));
        lifetime.release(1 << 30, in.now); // undo reservations
    }
}
BENCHMARK(BM_AdmissionDecision);

} // namespace
