/**
 * @file
 * Console table and CSV output used by every bench binary to print
 * the rows/series the paper's tables and figures report.
 */

#ifndef SOC_TELEMETRY_TABLE_HH
#define SOC_TELEMETRY_TABLE_HH

#include <iosfwd>
#include <string>
#include <vector>

namespace soc
{
namespace telemetry
{

/** Format a double with @p precision digits after the decimal point. */
std::string fmt(double value, int precision = 2);

/** Format a fraction (0.093) as a percentage string ("9.3%"). */
std::string fmtPercent(double fraction, int precision = 1);

/**
 * A simple titled table with aligned console rendering and CSV
 * export.  All cells are strings; use fmt()/fmtPercent() to build
 * them.
 */
class Table
{
  public:
    Table(std::string title, std::vector<std::string> headers);

    /** Append a row; must match the header count. */
    void addRow(std::vector<std::string> cells);

    std::size_t rows() const { return rows_.size(); }
    std::size_t columns() const { return headers_.size(); }
    const std::string &title() const { return title_; }

    /** Render with aligned columns and a title banner. */
    void print(std::ostream &os) const;

    /** Write "header...\nrow..." CSV (no title) to @p os. */
    void writeCsv(std::ostream &os) const;

  private:
    std::string title_;
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace telemetry
} // namespace soc

#endif // SOC_TELEMETRY_TABLE_HH
