/**
 * @file
 * Fixed-interval time series: the storage format for all telemetry
 * the agents collect (power draw, CPU utilization, overclocked-core
 * counts).  Matches the paper's production data: 5-minute samples
 * over multi-week horizons.
 */

#ifndef SOC_TELEMETRY_TIME_SERIES_HH
#define SOC_TELEMETRY_TIME_SERIES_HH

#include <cstddef>
#include <vector>

#include "sim/stats.hh"
#include "sim/time.hh"

namespace soc
{
namespace telemetry
{

/**
 * A uniformly sampled series of doubles.
 *
 * Sample i covers the half-open window
 * [start + i*interval, start + (i+1)*interval).
 */
class TimeSeries
{
  public:
    /** Empty series starting at @p start with @p interval spacing. */
    explicit TimeSeries(sim::Tick start = 0,
                        sim::Tick interval = sim::kSlot);

    /** Series initialized from existing values. */
    TimeSeries(sim::Tick start, sim::Tick interval,
               std::vector<double> values);

    sim::Tick start() const { return start_; }
    sim::Tick interval() const { return interval_; }

    /** End of the last sample's window (== start for empty series). */
    sim::Tick end() const;

    std::size_t size() const { return values_.size(); }
    bool empty() const { return values_.empty(); }

    /** Append the next sample. */
    void append(double value);

    /** Value of sample @p idx (bounds-checked by assert). */
    double at(std::size_t idx) const;

    /** Overwrite sample @p idx. */
    void set(std::size_t idx, double value);

    /**
     * Value of the sample whose window contains @p t.  Ticks before
     * start() clamp to the first sample.  Ticks at/after end() are
     * out of range: they assert in debug builds (a trace shorter
     * than the simulation horizon is a caller bug, not a sampling
     * policy), and clamp to the last sample in release builds so
     * production replays degrade gracefully rather than reading
     * past the buffer.  Sampling an empty series returns 0.
     */
    double atTime(sim::Tick t) const;

    /** Index of the sample containing @p t (same out-of-range
     *  policy as atTime: debug assert, release clamp). */
    std::size_t indexOf(sim::Tick t) const;

    /** Start tick of sample @p idx. */
    sim::Tick timeOf(std::size_t idx) const;

    /** Copy of the samples with windows inside [from, to). */
    TimeSeries slice(sim::Tick from, sim::Tick to) const;

    const std::vector<double> &values() const { return values_; }

    /** Mean/extrema/variance over all samples. */
    sim::OnlineStats stats() const;

    /** Exact quantile over all samples. */
    double quantile(double q) const;

    /** Element-wise addition; series must be aligned and equal size. */
    TimeSeries &operator+=(const TimeSeries &other);

    /** Multiply every sample by @p factor. */
    void scale(double factor);

    /** Clamp every sample into [lo, hi]. */
    void clamp(double lo, double hi);

    /**
     * Element-wise sum of aligned series.  All inputs must share
     * start/interval/size; the result does too.
     */
    static TimeSeries sum(const std::vector<const TimeSeries *> &parts);

  private:
    sim::Tick start_;
    sim::Tick interval_;
    std::vector<double> values_;
};

} // namespace telemetry
} // namespace soc

#endif // SOC_TELEMETRY_TIME_SERIES_HH
