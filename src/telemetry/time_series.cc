#include "telemetry/time_series.hh"

#include <algorithm>
#include <cassert>

namespace soc
{
namespace telemetry
{

TimeSeries::TimeSeries(sim::Tick start, sim::Tick interval)
    : start_(start), interval_(interval)
{
    assert(interval_ > 0);
}

TimeSeries::TimeSeries(sim::Tick start, sim::Tick interval,
                       std::vector<double> values)
    : start_(start), interval_(interval), values_(std::move(values))
{
    assert(interval_ > 0);
}

sim::Tick
TimeSeries::end() const
{
    return start_ +
        static_cast<sim::Tick>(values_.size()) * interval_;
}

void
TimeSeries::append(double value)
{
    values_.push_back(value);
}

double
TimeSeries::at(std::size_t idx) const
{
    assert(idx < values_.size());
    return values_[idx];
}

void
TimeSeries::set(std::size_t idx, double value)
{
    assert(idx < values_.size());
    values_[idx] = value;
}

std::size_t
TimeSeries::indexOf(sim::Tick t) const
{
    if (values_.empty())
        return 0;
    if (t <= start_)
        return 0;
    const auto idx =
        static_cast<std::size_t>((t - start_) / interval_);
    return std::min(idx, values_.size() - 1);
}

double
TimeSeries::atTime(sim::Tick t) const
{
    if (values_.empty())
        return 0.0;
    return values_[indexOf(t)];
}

sim::Tick
TimeSeries::timeOf(std::size_t idx) const
{
    return start_ + static_cast<sim::Tick>(idx) * interval_;
}

TimeSeries
TimeSeries::slice(sim::Tick from, sim::Tick to) const
{
    TimeSeries out(std::max(from, start_), interval_);
    for (std::size_t i = 0; i < values_.size(); ++i) {
        const sim::Tick t = timeOf(i);
        if (t >= from && t + interval_ <= to)
            out.append(values_[i]);
    }
    return out;
}

sim::OnlineStats
TimeSeries::stats() const
{
    sim::OnlineStats out;
    for (double v : values_)
        out.add(v);
    return out;
}

double
TimeSeries::quantile(double q) const
{
    sim::Percentiles pct;
    for (double v : values_)
        pct.add(v);
    return pct.quantile(q);
}

TimeSeries &
TimeSeries::operator+=(const TimeSeries &other)
{
    assert(start_ == other.start_ && interval_ == other.interval_);
    assert(values_.size() == other.values_.size());
    for (std::size_t i = 0; i < values_.size(); ++i)
        values_[i] += other.values_[i];
    return *this;
}

void
TimeSeries::scale(double factor)
{
    for (double &v : values_)
        v *= factor;
}

void
TimeSeries::clamp(double lo, double hi)
{
    for (double &v : values_)
        v = std::clamp(v, lo, hi);
}

TimeSeries
TimeSeries::sum(const std::vector<const TimeSeries *> &parts)
{
    assert(!parts.empty());
    TimeSeries out = *parts.front();
    for (std::size_t i = 1; i < parts.size(); ++i)
        out += *parts[i];
    return out;
}

} // namespace telemetry
} // namespace soc
