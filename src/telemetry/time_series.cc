#include "telemetry/time_series.hh"

#include <algorithm>
#include <cassert>

namespace soc
{
namespace telemetry
{

TimeSeries::TimeSeries(sim::Tick start, sim::Tick interval)
    : start_(start), interval_(interval)
{
    assert(interval_ > 0);
}

TimeSeries::TimeSeries(sim::Tick start, sim::Tick interval,
                       std::vector<double> values)
    : start_(start), interval_(interval), values_(std::move(values))
{
    assert(interval_ > 0);
}

sim::Tick
TimeSeries::end() const
{
    return start_ +
        static_cast<sim::Tick>(values_.size()) * interval_;
}

void
TimeSeries::append(double value)
{
    values_.push_back(value);
}

double
TimeSeries::at(std::size_t idx) const
{
    assert(idx < values_.size());
    return values_[idx];
}

void
TimeSeries::set(std::size_t idx, double value)
{
    assert(idx < values_.size());
    values_[idx] = value;
}

std::size_t
TimeSeries::indexOf(sim::Tick t) const
{
    if (values_.empty())
        return 0;
    // Ticks at/after end() have no covering sample: loud in debug
    // (the caller's trace is shorter than its horizon), clamped to
    // the last sample in release so replays degrade gracefully.
    assert(t < end() && "TimeSeries: tick at/after end()");
    if (t <= start_)
        return 0;
    const auto idx =
        static_cast<std::size_t>((t - start_) / interval_);
    return std::min(idx, values_.size() - 1);
}

double
TimeSeries::atTime(sim::Tick t) const
{
    if (values_.empty())
        return 0.0;
    return values_[indexOf(t)];
}

sim::Tick
TimeSeries::timeOf(std::size_t idx) const
{
    return start_ + static_cast<sim::Tick>(idx) * interval_;
}

TimeSeries
TimeSeries::slice(sim::Tick from, sim::Tick to) const
{
    TimeSeries out(std::max(from, start_), interval_);
    if (values_.empty() || to - start_ < interval_)
        return out;
    // The kept samples are a contiguous index range on a uniform
    // grid, so compute its bounds arithmetically and copy once
    // instead of testing every sample:
    //   timeOf(i) >= from           <=> i >= ceil((from-start)/iv)
    //   timeOf(i) + iv <= to        <=> i <  floor((to-start)/iv)
    std::size_t first = 0;
    if (from > start_) {
        first = static_cast<std::size_t>(
            (from - start_ + interval_ - 1) / interval_);
    }
    const std::size_t last = std::min<std::size_t>(
        values_.size(),
        static_cast<std::size_t>((to - start_) / interval_));
    if (first >= last)
        return out;
    out.values_.assign(
        values_.begin() + static_cast<std::ptrdiff_t>(first),
        values_.begin() + static_cast<std::ptrdiff_t>(last));
    return out;
}

sim::OnlineStats
TimeSeries::stats() const
{
    sim::OnlineStats out;
    for (double v : values_)
        out.add(v);
    return out;
}

double
TimeSeries::quantile(double q) const
{
    if (values_.empty())
        return 0.0;
    // One quantile needs only the two order statistics straddling
    // the rank; selecting them (O(n) expected) beats building and
    // sorting a Percentiles reservoir.  Same closest-rank
    // interpolation as Percentiles::quantile, bit for bit.
    std::vector<double> scratch = values_;
    q = std::clamp(q, 0.0, 1.0);
    const double rank = q * static_cast<double>(scratch.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, scratch.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    const auto lo_it =
        scratch.begin() + static_cast<std::ptrdiff_t>(lo);
    std::nth_element(scratch.begin(), lo_it, scratch.end());
    const double lo_val = *lo_it;
    const double hi_val = hi == lo
        ? lo_val
        : *std::min_element(lo_it + 1, scratch.end());
    return lo_val * (1.0 - frac) + hi_val * frac;
}

TimeSeries &
TimeSeries::operator+=(const TimeSeries &other)
{
    assert(start_ == other.start_ && interval_ == other.interval_);
    assert(values_.size() == other.values_.size());
    for (std::size_t i = 0; i < values_.size(); ++i)
        values_[i] += other.values_[i];
    return *this;
}

void
TimeSeries::scale(double factor)
{
    for (double &v : values_)
        v *= factor;
}

void
TimeSeries::clamp(double lo, double hi)
{
    for (double &v : values_)
        v = std::clamp(v, lo, hi);
}

TimeSeries
TimeSeries::sum(const std::vector<const TimeSeries *> &parts)
{
    assert(!parts.empty());
    TimeSeries out = *parts.front();
    for (std::size_t i = 1; i < parts.size(); ++i)
        out += *parts[i];
    return out;
}

} // namespace telemetry
} // namespace soc
