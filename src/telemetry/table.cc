#include "telemetry/table.hh"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <ostream>

namespace soc
{
namespace telemetry
{

std::string
fmt(double value, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
    return buf;
}

std::string
fmtPercent(double fraction, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", precision,
                  fraction * 100.0);
    return buf;
}

Table::Table(std::string title, std::vector<std::string> headers)
    : title_(std::move(title)), headers_(std::move(headers))
{
}

void
Table::addRow(std::vector<std::string> cells)
{
    assert(cells.size() == headers_.size());
    rows_.push_back(std::move(cells));
}

void
Table::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    std::size_t total = widths.size() >= 1 ? 3 * (widths.size() - 1) : 0;
    for (auto w : widths)
        total += w;

    os << "== " << title_ << " ==\n";

    auto emitRow = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            if (c > 0)
                os << " | ";
            os << cells[c];
            for (std::size_t pad = cells[c].size(); pad < widths[c];
                 ++pad) {
                os << ' ';
            }
        }
        os << '\n';
    };

    emitRow(headers_);
    os << std::string(total, '-') << '\n';
    for (const auto &row : rows_)
        emitRow(row);
    os << '\n';
}

void
Table::writeCsv(std::ostream &os) const
{
    auto emitCsvRow = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            if (c > 0)
                os << ',';
            os << cells[c];
        }
        os << '\n';
    };
    emitCsvRow(headers_);
    for (const auto &row : rows_)
        emitCsvRow(row);
}

} // namespace telemetry
} // namespace soc
