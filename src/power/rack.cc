#include "power/rack.hh"

#include <cassert>

namespace soc
{
namespace power
{

Rack::Rack(int id, Watts limit)
    : id_(id), limitWatts_(limit)
{
    assert(limitWatts_ > Watts{0.0});
}

Server &
Rack::addServer(const PowerModel *model, FrequencyLadder ladder)
{
    servers_.push_back(
        std::make_unique<Server>(nextServerId_++, model, ladder));
    return *servers_.back();
}

Watts
Rack::powerWatts() const
{
    Watts watts{0.0};
    for (const auto &server : servers_)
        watts += server->powerWatts();
    return watts;
}

double
Rack::utilization() const
{
    return powerWatts() / limitWatts_;
}

Watts
Rack::evenShareWatts() const
{
    return servers_.empty()
        ? limitWatts_
        : limitWatts_ / static_cast<double>(servers_.size());
}

} // namespace power
} // namespace soc
