#include "power/rack.hh"

#include <cassert>

namespace soc
{
namespace power
{

Rack::Rack(int id, double limitWatts)
    : id_(id), limitWatts_(limitWatts)
{
    assert(limitWatts_ > 0.0);
}

Server &
Rack::addServer(const PowerModel *model, FrequencyLadder ladder)
{
    servers_.push_back(
        std::make_unique<Server>(nextServerId_++, model, ladder));
    return *servers_.back();
}

double
Rack::powerWatts() const
{
    double watts = 0.0;
    for (const auto &server : servers_)
        watts += server->powerWatts();
    return watts;
}

double
Rack::utilization() const
{
    return powerWatts() / limitWatts_;
}

double
Rack::evenShareWatts() const
{
    return servers_.empty() ? limitWatts_
                            : limitWatts_ / servers_.size();
}

} // namespace power
} // namespace soc
