/**
 * @file
 * Core-frequency ladder for the evaluation platform.
 *
 * The paper's overclockable servers run AMD 64-core CPUs whose max
 * turbo is 3.3 GHz and whose overclocking ceiling is 4.0 GHz; the
 * sOA feedback loop moves frequencies in discrete 100 MHz steps
 * (Section IV-D).  Power capping may throttle below turbo: the paper
 * reports 30-50% frequency degradation for capped workloads, which
 * bounds the ladder floor.
 *
 * FreqMHz is a unit-safe strong type (power/units.hh): construction
 * from a raw int is explicit, and mixing it with Watts is a compile
 * error.
 */

#ifndef SOC_POWER_FREQUENCY_HH
#define SOC_POWER_FREQUENCY_HH

#include <algorithm>

#include "power/units.hh"

namespace soc
{
namespace power
{

/** Deep-throttle floor used by power capping (~50% of turbo). */
constexpr FreqMHz kMinMHz{1600};

/** Guaranteed base (P1) frequency. */
constexpr FreqMHz kBaseMHz{2400};

/** Max all-core turbo: the normal operating point (§V-A). */
constexpr FreqMHz kTurboMHz{3300};

/** Overclocking ceiling validated with the CPU vendor (§V-A). */
constexpr FreqMHz kOverclockMHz{4000};

/** Feedback-loop step size (§IV-D). */
constexpr FreqMHz kStepMHz{100};

/**
 * The discrete frequency ladder an sOA walks.
 */
struct FrequencyLadder {
    FreqMHz minMHz = kMinMHz;
    FreqMHz maxMHz = kOverclockMHz;
    FreqMHz stepMHz = kStepMHz;

    /** Clamp @p f into the ladder's range (not snapped to steps). */
    FreqMHz
    clamp(FreqMHz f) const
    {
        return std::clamp(f, minMHz, maxMHz);
    }

    /** One step up, saturating at the ceiling. */
    FreqMHz
    up(FreqMHz f) const
    {
        return clamp(f + stepMHz);
    }

    /** One step down, saturating at the floor. */
    FreqMHz
    down(FreqMHz f) const
    {
        return clamp(f - stepMHz);
    }

    /** @return true when @p f is beyond max turbo, i.e. overclocked. */
    static bool
    isOverclocked(FreqMHz f)
    {
        return f > kTurboMHz;
    }
};

} // namespace power
} // namespace soc

#endif // SOC_POWER_FREQUENCY_HH
