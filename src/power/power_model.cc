#include "power/power_model.hh"

#include <cassert>
#include <cmath>

namespace soc
{
namespace power
{

PowerModel::PowerModel(const PowerModelParams &params)
    : params_(params)
{
    assert(params_.cores > 0);
    assert(params_.tdpWatts > params_.idleWatts);

    // Per-core budget at TDP (util = 1, turbo frequency).
    const Watts core_budget =
        (params_.tdpWatts - params_.idleWatts) /
        static_cast<double>(params_.cores);
    const Watts leak_budget = core_budget * params_.leakageFraction;
    const Watts dyn_budget = core_budget - leak_budget;

    const double v_turbo = params_.turboVolts;
    dynCoeff_ = dyn_budget.count() /
        (static_cast<double>(kTurboMHz.count()) * v_turbo * v_turbo);
    leakCoeff_ = leak_budget.count() / v_turbo;
}

double
PowerModel::voltage(FreqMHz f) const
{
    // The V/f-curve coefficients are genuinely mixed-unit (volts
    // per GHz / per MHz); frequency deltas drop to raw counts at
    // this audited boundary, hence the UNIT-003 waivers.
    if (f >= kTurboMHz) {
        // soclint:allow(UNIT-003)
        const double ghz_over =
            static_cast<double>((f - kTurboMHz).count()) / 1000.0;
        return params_.turboVolts +
            params_.overclockVoltsPerGHz * ghz_over;
    }
    // Linear between base and turbo; clamp at the base voltage for
    // deep-throttle frequencies.
    // soclint:allow(UNIT-003)
    const double slope = (params_.turboVolts - params_.baseVolts) /
        static_cast<double>((kTurboMHz - kBaseMHz).count());
    // soclint:allow(UNIT-003)
    const double v = params_.turboVolts +
        slope * static_cast<double>((f - kTurboMHz).count());
    return std::max(v, params_.baseVolts);
}

Watts
PowerModel::corePower(double util, FreqMHz f) const
{
    const double v = voltage(f);
    const double activity = params_.activityFloor +
        (1.0 - params_.activityFloor) * util;
    // dynCoeff_ carries the units (W per MHz per V^2), so the
    // frequency drops to a raw count inside the CMOS formula.
    // soclint:allow(UNIT-003)
    const double dynamic =
        dynCoeff_ * activity * static_cast<double>(f.count()) * v * v;
    const double leakage = leakCoeff_ * v;
    return Watts{dynamic + leakage};
}

Watts
PowerModel::serverPower(double util, FreqMHz f, int cores) const
{
    assert(cores >= 0 && cores <= params_.cores);
    return params_.idleWatts + cores * corePower(util, f);
}

Watts
PowerModel::serverPower(double util, FreqMHz f) const
{
    return serverPower(util, f, params_.cores);
}

Watts
PowerModel::overclockExtraPower(double util, FreqMHz f,
                                int cores) const
{
    if (f <= kTurboMHz)
        return Watts{0.0};
    return cores * (corePower(util, f) - corePower(util, kTurboMHz));
}

Celsius
PowerModel::temperature(double util, FreqMHz f) const
{
    // Relative activity compared to a fully utilized turbo core.
    const Watts ref = corePower(1.0, kTurboMHz);
    const double rel =
        ref > Watts{0.0} ? corePower(util, f) / ref : 0.0;
    return params_.ambientCelsius + params_.thermalRangeCelsius * rel;
}

FreqMHz
PowerModel::maxFrequencyWithin(double util, int activeCores,
                               Watts budget,
                               const FrequencyLadder &ladder) const
{
    FreqMHz best = ladder.minMHz;
    for (FreqMHz f = ladder.minMHz; f <= ladder.maxMHz;
         f += ladder.stepMHz) {
        if (serverPower(util, f, activeCores) <= budget)
            best = f;
        else
            break;
    }
    return best;
}

} // namespace power
} // namespace soc
