/**
 * @file
 * Physical server model: a set of cores grouped into allocations
 * (one group per VM at the cluster layer), each with a utilization,
 * a *target* frequency chosen by the software agents, and a *cap*
 * imposed by the rack's power-capping mechanism.  The effective
 * frequency of a group is min(target, cap).
 */

#ifndef SOC_POWER_SERVER_HH
#define SOC_POWER_SERVER_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "power/frequency.hh"
#include "power/power_model.hh"

namespace soc
{
namespace power
{

/** Identifier of a core group (VM slot) within a server. */
using GroupId = int;

/**
 * A contiguous allocation of cores sharing frequency and utilization.
 */
struct CoreGroup {
    GroupId id = -1;
    int cores = 0;
    /** Per-core utilization in [0, 1]. */
    double util = 0.0;
    /** Frequency requested by the managing agent. */
    FreqMHz targetMHz = kTurboMHz;
    /** Frequency ceiling imposed by power capping. */
    FreqMHz capMHz = kOverclockMHz;
    /** Larger values are throttled last during capping (§II). */
    int priority = 0;

    /** Frequency the cores actually run at. */
    FreqMHz
    effectiveMHz() const
    {
        return std::min(targetMHz, capMHz);
    }

    /** @return true when the group currently runs beyond turbo. */
    bool
    overclocked() const
    {
        return FrequencyLadder::isOverclocked(effectiveMHz());
    }
};

/**
 * Server hardware model.  Owns its core groups; power is computed
 * from the shared PowerModel.  Thread-unsafe by design: each
 * simulation runs single-threaded over the event queue.
 */
class Server
{
  public:
    /**
     * @param id     Stable identifier within the cluster.
     * @param model  Shared hardware power model (not owned).
     * @param ladder Frequency ladder of this hardware generation.
     */
    Server(int id, const PowerModel *model,
           FrequencyLadder ladder = {});

    int id() const { return id_; }
    const PowerModel &model() const { return *model_; }
    const FrequencyLadder &ladder() const { return ladder_; }

    int totalCores() const { return model_->params().cores; }
    int usedCores() const;
    int freeCores() const { return totalCores() - usedCores(); }

    /**
     * Allocate a core group.
     *
     * @return the new group's id, or -1 if not enough free cores.
     */
    GroupId addGroup(int cores, double util,
                     FreqMHz target = kTurboMHz, int priority = 0);

    /** Remove a group; invalid ids are ignored. */
    void removeGroup(GroupId id);

    /** @return the group, or nullptr when absent. */
    CoreGroup *group(GroupId id);
    const CoreGroup *group(GroupId id) const;

    const std::vector<CoreGroup> &groups() const { return groups_; }

    /** Set a group's utilization (clamped to [0, 1]). */
    void setUtil(GroupId id, double util);

    /**
     * Batch utilization update by group *position* (not id), the
     * fleet-replay fast path.  @p count must equal groups().size();
     * utils[i] is groups()[i]'s new utilization and turboWatts[i]
     * its precomputed turbo-frequency power contribution,
     * (cores * corePower(utils[i], kTurboMHz)).count() — exactly
     * what TraceGenerator emits alongside each utilization sample.
     * Groups whose effective frequency is turbo (the common case)
     * reuse the hint and cost zero corePower evaluations here;
     * overclocked or capped groups cost one.
     */
    void setUtilsAndTurboWatts(std::size_t count, const double *utils,
                               const double *turboWatts);

    /**
     * Compact-column form of the batch update: utilizations arrive
     * as uint16 fixed point (sim/quant.hh) and the turbo-watts
     * hints as float, dequantized exactly once here — the only
     * place a stored window sample is widened back to double.  The
     * hint must have been computed from the *dequantized*
     * utilization (ServerTraceStream::generateQuantized does), so
     * it remains the exact turbo-power summand for the group.
     */
    void setUtilsAndTurboWatts(std::size_t count,
                               const std::uint16_t *utilsQ,
                               const float *turboWatts);

    /** Set a group's target frequency (clamped to the ladder). */
    void setTarget(GroupId id, FreqMHz f);

    /** Set every group's target frequency. */
    void setAllTargets(FreqMHz f);

    /** Current server power draw. */
    Watts powerWatts() const;

    /**
     * Power the server would draw if every group ran at min(turbo,
     * effective frequency) — i.e. the draw with all overclocking
     * surcharge removed.  The sOA records this "regular power" for
     * its own look-ahead templates.
     */
    Watts regularPowerWatts() const;

    /**
     * Hypothetical power if the given group ran at @p f instead of
     * its effective frequency.  Used by admission control.
     */
    Watts powerWattsIf(GroupId id, FreqMHz f) const;

    /** Core-weighted average utilization (unallocated cores = 0). */
    double utilization() const;

    /** Number of cores currently running beyond turbo. */
    int overclockedCores() const;

    /**
     * Throttle one step for capping: lower the cap of the
     * lowest-priority group whose cap is above the ladder floor.
     *
     * @return true if any group was throttled.
     */
    bool throttleOneStep();

    /**
     * Release capping one step: raise the cap of the
     * highest-priority capped group.
     *
     * @return true if any cap was raised.
     */
    bool unthrottleOneStep();

    /** @return true when any group is capped below the ladder max. */
    bool capped() const;

    /** Remove all caps instantly. */
    void clearCaps();

    /**
     * Mean frequency degradation, relative to turbo, of the
     * non-overclock-target cores that are currently being throttled
     * below their target.  0 when no such core exists.  This is the
     * "penalty on power cap" metric of Table I.
     */
    double cappingPenalty() const;

    /** Cores of non-overclock groups currently throttled below
     *  their target (the cores cappingPenalty() averages over). */
    int cappedNonOverclockCores() const;

  private:
    /** Position of the group with @p id, or groups_.size(). */
    std::size_t groupIndex(GroupId id) const;

    /** Recompute groups_[pos]'s cached power contributions. */
    void refreshContrib(std::size_t pos);

    /** Write groups_[pos].capMHz, keeping cappedGroups_ exact. */
    void setCap(std::size_t pos, FreqMHz cap);

    /** Re-fold the cached sums from the per-group contributions,
     *  always in group order so results are deterministic and free
     *  of incremental-update drift. */
    void refreshSums();

    int id_;
    const PowerModel *model_;
    FrequencyLadder ladder_;
    GroupId nextGroup_ = 0;
    std::vector<CoreGroup> groups_;

    /**
     * Struct-of-arrays cache, parallel to groups_: each group's
     * power contribution at its effective frequency and at
     * min(effective, turbo), plus their folds and the core-weighted
     * utilization sum.  Every mutator routes through
     * refreshContrib/refreshSums, making powerWatts(),
     * regularPowerWatts() and utilization() O(1) reads — the hot
     * queries of the per-tick rack loop.
     */
    std::vector<double> powerContrib_;
    std::vector<double> regularContrib_;
    double powerSum_ = 0.0;
    double regularSum_ = 0.0;
    double utilWeighted_ = 0.0;

    /** Groups with capMHz below the ladder max, maintained at every
     *  cap mutation so the per-step "is anything capped?" checks of
     *  the rack manager are O(1) instead of a group scan. */
    int cappedGroups_ = 0;
};

} // namespace power
} // namespace soc

#endif // SOC_POWER_SERVER_HH
