/**
 * @file
 * Rack manager: the safety mechanism of §II and §IV-D.
 *
 * Each control tick it compares the rack's draw against two
 * thresholds:
 *
 *  - warning threshold (default 95% of the limit): broadcast a
 *    warning message to all subscribed listeners (the sOAs).  An sOA
 *    ignores it unless it is exploring beyond its budget.
 *  - the limit itself: a *power capping event*.  The manager
 *    broadcasts the event and forcibly throttles servers
 *    (prioritized, lowest priority first) until the draw is back
 *    under the limit.
 *
 * When the draw is comfortably below the warning threshold the
 * manager gradually releases existing caps.
 */

#ifndef SOC_POWER_RACK_MANAGER_HH
#define SOC_POWER_RACK_MANAGER_HH

#include <cstdint>
#include <vector>

#include "power/rack.hh"
#include "sim/stats.hh"
#include "sim/time.hh"

namespace soc
{
namespace power
{

/** Receiver of rack power-safety messages (implemented by sOAs). */
class RackPowerListener
{
  public:
    virtual ~RackPowerListener() = default;

    /** Rack draw crossed the warning threshold this tick. */
    virtual void onWarning(sim::Tick now) { (void)now; }

    /** Rack draw exceeded the limit; capping is being enforced. */
    virtual void onCapEvent(sim::Tick now) { (void)now; }
};

/** Knobs for the rack safety mechanism. */
struct RackManagerConfig {
    /** Warning threshold as a fraction of the limit (§IV-D: 95%). */
    double warningFraction = 0.95;
    /** Release caps while the draw is below this fraction of the
     *  limit.  Nearly no hysteresis: the post-cap overshoot supplies
     *  the recovery penalty, and fast release lets a misbehaving
     *  policy (NaiveOClock) thrash its way to many capping events,
     *  as in Table I. */
    double releaseFraction = 0.99;
    /** Capping overshoots down to this fraction of the limit, so a
     *  capped rack leaves the danger zone decisively (the penalty
     *  that makes capping events costly, Table I column 3). */
    double capOvershootFraction = 0.93;
    /** Max throttle steps applied per tick (capping actuates fast). */
    int throttleStepsPerTick = 256;
    /** Cap-release steps per tick. */
    int releaseStepsPerTick = 32;
};

/** Counters exported for the evaluation tables. */
struct RackManagerStats {
    std::uint64_t warnings = 0;
    std::uint64_t capEvents = 0;       // excursion entries (Table I)
    std::uint64_t cappedTicks = 0;     // ticks spent enforcing
    std::uint64_t ticks = 0;
    /** Mean capping penalty over capped ticks (Table I column 3). */
    sim::OnlineStats penalty;
};

/**
 * Per-rack power safety controller.
 */
class RackManager
{
  public:
    RackManager(Rack &rack, RackManagerConfig config = {});

    Rack &rack() { return rack_; }
    const RackManagerConfig &config() const { return config_; }

    /** Subscribe to warnings/cap events; caller keeps ownership. */
    void addListener(RackPowerListener *listener);

    /**
     * Run one control step at simulated time @p now.  Reads the
     * rack's instantaneous power and enforces the protocol above.
     */
    void tick(sim::Tick now);

    const RackManagerStats &stats() const { return stats_; }

    /** @return true while the rack is inside a capping excursion. */
    bool capping() const { return inCap_; }

    Watts warningWatts() const
    {
        return rack_.limitWatts() * config_.warningFraction;
    }

  private:
    void broadcastWarning(sim::Tick now);
    void broadcastCapEvent(sim::Tick now);

    /** Prioritized throttling across all servers in the rack. */
    void enforceCap();

    /** Gradual cap release when headroom is back. */
    void releaseCaps();

    Rack &rack_;
    RackManagerConfig config_;
    std::vector<RackPowerListener *> listeners_;
    RackManagerStats stats_;
    bool inCap_ = false;
};

} // namespace power
} // namespace soc

#endif // SOC_POWER_RACK_MANAGER_HH
