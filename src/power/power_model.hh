/**
 * @file
 * Analytical CPU power, voltage and temperature model.
 *
 * The large-scale evaluation in the paper uses exactly this kind of
 * model: "Models are used to estimate the power impact of
 * overclocking; CPU utilization and core frequency are the input.
 * We validate the model for each server generation." (§V-B).
 *
 * Structure:
 *   - V(f): piecewise-linear voltage/frequency curve, steeper beyond
 *     max turbo (overclocking pushes the upper end of the V/f curve).
 *   - Core dynamic power: c_dyn * util * f * V^2 (classic CMOS).
 *   - Core leakage: grows linearly with voltage.
 *   - Server power: idle + sum over cores.
 *   - T(util, f): linear in the core's relative dynamic power — feeds
 *     the lifetime model's thermal acceleration.
 *
 * Default calibration: a 64-core server idles at 120 W and reaches
 * its 420 W TDP at 100% utilization at max turbo.
 *
 * All power values are the unit-safe power::Watts strong type; raw
 * doubles never cross this interface.
 */

#ifndef SOC_POWER_POWER_MODEL_HH
#define SOC_POWER_POWER_MODEL_HH

#include "power/frequency.hh"
#include "power/units.hh"

namespace soc
{
namespace power
{

/** Tunable parameters; defaults model the paper's AMD 64-core SKU. */
struct PowerModelParams {
    int cores = 64;
    Watts idleWatts{120.0};
    Watts tdpWatts{420.0};

    /** Voltage at the base frequency. */
    double baseVolts = 0.95;
    /** Voltage at max turbo. */
    double turboVolts = 1.10;
    /** Extra volts per GHz beyond turbo (steep end of the curve). */
    double overclockVoltsPerGHz = 0.50;

    /** Fraction of the per-core budget that is leakage at turbo. */
    double leakageFraction = 0.15;

    /**
     * Fraction of a core's dynamic power drawn even when the core
     * is allocated but idle.  Servers are not energy-proportional
     * (clock trees, uncore activity): two half-utilized VMs draw
     * more than one fully utilized VM.  This is what makes
     * scale-out cost energy relative to overclocking (Fig. 14).
     */
    double activityFloor = 0.25;

    /** Ambient-equivalent die temperature at idle. */
    Celsius ambientCelsius{45.0};
    /** Temperature rise from idle to TDP-level activity. */
    Celsius thermalRangeCelsius{35.0};
};

/**
 * Immutable power model; one instance is shared by every server of a
 * hardware generation.
 */
class PowerModel
{
  public:
    explicit PowerModel(const PowerModelParams &params = {});

    const PowerModelParams &params() const { return params_; }

    /** Supply voltage for a core running at @p f. */
    double voltage(FreqMHz f) const;

    /**
     * Power of one core.
     *
     * @param util Core utilization in [0, 1].
     * @param f    Core frequency.
     */
    Watts corePower(double util, FreqMHz f) const;

    /**
     * Whole-server power: idle + per-core power where all @p cores
     * share the same utilization and frequency.
     */
    Watts serverPower(double util, FreqMHz f, int cores) const;

    /** serverPower() with the model's full core count. */
    Watts serverPower(double util, FreqMHz f) const;

    /**
     * Additional watts drawn by overclocking @p cores cores from
     * turbo to @p f at utilization @p util.  This is the quantity
     * the sOA reserves during admission control.
     */
    Watts overclockExtraPower(double util, FreqMHz f, int cores) const;

    /**
     * Estimated die temperature of a core (feeds the aging model).
     */
    Celsius temperature(double util, FreqMHz f) const;

    /**
     * Largest ladder frequency such that a server at utilization
     * @p util with @p activeCores stays within @p budget.
     * Returns the ladder floor when even that exceeds the budget.
     */
    FreqMHz maxFrequencyWithin(double util, int activeCores,
                               Watts budget,
                               const FrequencyLadder &ladder) const;

  private:
    PowerModelParams params_;
    /** Dynamic-power coefficient calibrated so that serverPower
     *  (1.0, turbo) == TDP. */
    double dynCoeff_;
    /** Leakage coefficient (watts per volt per core). */
    double leakCoeff_;
};

} // namespace power
} // namespace soc

#endif // SOC_POWER_POWER_MODEL_HH
