/**
 * @file
 * Rack: a power-delivery unit aggregating servers under a shared
 * power limit (§II).  The rack owns its servers; the RackManager
 * (separate class) implements the warning/capping protocol.
 */

#ifndef SOC_POWER_RACK_HH
#define SOC_POWER_RACK_HH

#include <memory>
#include <vector>

#include "power/server.hh"

namespace soc
{
namespace power
{

/**
 * A rack of servers with a provisioned power limit.
 */
class Rack
{
  public:
    /**
     * @param id    Rack identifier.
     * @param limit Provisioned (possibly oversubscribed) limit.
     */
    Rack(int id, Watts limit);

    int id() const { return id_; }

    Watts limitWatts() const { return limitWatts_; }
    void setLimitWatts(Watts watts) { limitWatts_ = watts; }

    /** Create and own a server using @p model. */
    Server &addServer(const PowerModel *model,
                      FrequencyLadder ladder = {});

    std::size_t serverCount() const { return servers_.size(); }

    Server &server(std::size_t idx) { return *servers_[idx]; }
    const Server &server(std::size_t idx) const
    {
        return *servers_[idx];
    }

    std::vector<std::unique_ptr<Server>> &servers()
    {
        return servers_;
    }
    const std::vector<std::unique_ptr<Server>> &servers() const
    {
        return servers_;
    }

    /** Instantaneous rack power draw: sum over servers. */
    Watts powerWatts() const;

    /** Power draw as a fraction of the limit. */
    double utilization() const;

    /** Even per-server share of the limit (the naive split, §III-Q4). */
    Watts evenShareWatts() const;

  private:
    int id_;
    Watts limitWatts_;
    int nextServerId_ = 0;
    std::vector<std::unique_ptr<Server>> servers_;
};

} // namespace power
} // namespace soc

#endif // SOC_POWER_RACK_HH
