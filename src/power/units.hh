/**
 * @file
 * Unit-safe strong types for the physical quantities the budget
 * arithmetic of §IV-C mixes freely: watts, megahertz, degrees
 * Celsius and joules.
 *
 * The paper's control loops transpose exactly these scalars when
 * everything is a bare double — a power budget added to a frequency
 * compiles and silently produces garbage.  Quantity<Tag, Rep> makes
 * that a compile error:
 *
 *  - construction from the raw representation is explicit;
 *  - there is no implicit conversion back to the representation
 *    (use count());
 *  - arithmetic is closed within one unit: adding two Watts is a
 *    Watts, adding Watts to FreqMHz does not compile;
 *  - scaling by a dimensionless factor stays in the unit;
 *  - dividing two quantities of the same unit yields a plain double
 *    (a dimensionless ratio).
 *
 * The tag types carry no state; they only separate the instantiated
 * types.  tests/negative_compile proves the forbidden mixes really
 * do not build.
 */

#ifndef SOC_POWER_UNITS_HH
#define SOC_POWER_UNITS_HH

#include <compare>
#include <ostream>

namespace soc
{
namespace power
{

/**
 * A value of unit @p Tag stored as @p Rep.  Arithmetic never leaves
 * the unit; cross-unit expressions fail to compile.
 */
template <class Tag, class Rep>
class Quantity
{
  public:
    using rep = Rep;

    constexpr Quantity() = default;
    constexpr explicit Quantity(Rep value) : value_(value) {}

    /** The raw representation; the only way out of the unit. */
    constexpr Rep count() const { return value_; }

    constexpr auto operator<=>(const Quantity &) const = default;

    constexpr Quantity operator+() const { return *this; }
    constexpr Quantity operator-() const
    {
        return Quantity{static_cast<Rep>(-value_)};
    }

    friend constexpr Quantity
    operator+(Quantity a, Quantity b)
    {
        return Quantity{static_cast<Rep>(a.value_ + b.value_)};
    }

    friend constexpr Quantity
    operator-(Quantity a, Quantity b)
    {
        return Quantity{static_cast<Rep>(a.value_ - b.value_)};
    }

    constexpr Quantity &
    operator+=(Quantity other)
    {
        value_ = static_cast<Rep>(value_ + other.value_);
        return *this;
    }

    constexpr Quantity &
    operator-=(Quantity other)
    {
        value_ = static_cast<Rep>(value_ - other.value_);
        return *this;
    }

    /** Dimensionless scaling stays within the unit. */
    friend constexpr Quantity
    operator*(Quantity a, double factor)
    {
        return Quantity{
            static_cast<Rep>(static_cast<double>(a.value_) * factor)};
    }

    friend constexpr Quantity
    operator*(double factor, Quantity a)
    {
        return a * factor;
    }

    friend constexpr Quantity
    operator/(Quantity a, double divisor)
    {
        return Quantity{static_cast<Rep>(
            static_cast<double>(a.value_) / divisor)};
    }

    constexpr Quantity &
    operator*=(double factor)
    {
        value_ =
            static_cast<Rep>(static_cast<double>(value_) * factor);
        return *this;
    }

    /** Ratio of two same-unit quantities is dimensionless. */
    friend constexpr double
    operator/(Quantity a, Quantity b)
    {
        return static_cast<double>(a.value_) /
            static_cast<double>(b.value_);
    }

    /** Diagnostics only (gtest failure messages, logging). */
    friend std::ostream &
    operator<<(std::ostream &os, Quantity q)
    {
        return os << q.value_;
    }

  private:
    Rep value_ = Rep{};
};

struct WattTag;
struct MHzTag;
struct CelsiusTag;
struct JouleTag;

/** Electrical power in watts. */
using Watts = Quantity<WattTag, double>;

/** Core frequency in MHz (integral: the ladder is discrete). */
using FreqMHz = Quantity<MHzTag, int>;

/** Temperature in degrees Celsius (§IV-B thermal model). */
using Celsius = Quantity<CelsiusTag, double>;

/** Energy in joules (integrated rack power over sim time). */
using Joules = Quantity<JouleTag, double>;

/** Energy accumulated by holding @p power for @p seconds.  A named
 *  function rather than an operator: Quantity's operator* is
 *  reserved for dimensionless scaling, and watts-times-seconds is
 *  the one cross-unit product the replay loop needs. */
constexpr Joules
energyOver(Watts power, double seconds)
{
    return Joules{power.count() * seconds};
}

inline namespace unit_literals
{

constexpr Watts
operator""_W(long double w)
{
    return Watts{static_cast<double>(w)};
}

constexpr Watts
operator""_W(unsigned long long w)
{
    return Watts{static_cast<double>(w)};
}

constexpr FreqMHz
operator""_MHz(unsigned long long f)
{
    return FreqMHz{static_cast<int>(f)};
}

constexpr Celsius
operator""_C(long double t)
{
    return Celsius{static_cast<double>(t)};
}

constexpr Joules
operator""_J(long double e)
{
    return Joules{static_cast<double>(e)};
}

} // namespace unit_literals

} // namespace power
} // namespace soc

#endif // SOC_POWER_UNITS_HH
