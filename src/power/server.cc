#include "power/server.hh"

#include <algorithm>
#include <cassert>

#include "sim/quant.hh"

namespace soc
{
namespace power
{

Server::Server(int id, const PowerModel *model, FrequencyLadder ladder)
    : id_(id), model_(model), ladder_(ladder)
{
    assert(model_ != nullptr);
}

int
Server::usedCores() const
{
    int used = 0;
    for (const auto &g : groups_)
        used += g.cores;
    return used;
}

std::size_t
Server::groupIndex(GroupId id) const
{
    // Ids are handed out sequentially, so in the common case (no
    // removals) a group sits at position == id; fall back to the
    // linear scan only when removals have shifted positions.
    const auto pos = static_cast<std::size_t>(id);
    if (id >= 0 && pos < groups_.size() && groups_[pos].id == id)
        return pos;
    for (std::size_t i = 0; i < groups_.size(); ++i)
        if (groups_[i].id == id)
            return i;
    return groups_.size();
}

void
Server::refreshContrib(std::size_t pos)
{
    const CoreGroup &g = groups_[pos];
    const FreqMHz eff = g.effectiveMHz();
    const Watts power = g.cores * model_->corePower(g.util, eff);
    powerContrib_[pos] = power.count();
    if (eff <= kTurboMHz) {
        regularContrib_[pos] = power.count();
    } else {
        regularContrib_[pos] =
            (g.cores * model_->corePower(g.util, kTurboMHz)).count();
    }
}

void
Server::refreshSums()
{
    double power = 0.0;
    double regular = 0.0;
    double weighted = 0.0;
    for (std::size_t i = 0; i < groups_.size(); ++i) {
        power += powerContrib_[i];
        regular += regularContrib_[i];
        weighted += groups_[i].cores * groups_[i].util;
    }
    powerSum_ = power;
    regularSum_ = regular;
    utilWeighted_ = weighted;
}

GroupId
Server::addGroup(int cores, double util, FreqMHz target, int priority)
{
    assert(cores > 0);
    if (cores > freeCores())
        return -1;
    CoreGroup g;
    g.id = nextGroup_++;
    g.cores = cores;
    g.util = std::clamp(util, 0.0, 1.0);
    g.targetMHz = ladder_.clamp(target);
    g.capMHz = ladder_.maxMHz;
    g.priority = priority;
    groups_.push_back(g);
    powerContrib_.push_back(0.0);
    regularContrib_.push_back(0.0);
    refreshContrib(groups_.size() - 1);
    refreshSums();
    return g.id;
}

void
Server::removeGroup(GroupId id)
{
    const std::size_t pos = groupIndex(id);
    if (pos >= groups_.size())
        return;
    const auto at = static_cast<std::ptrdiff_t>(pos);
    if (groups_[pos].capMHz < ladder_.maxMHz)
        --cappedGroups_;
    groups_.erase(groups_.begin() + at);
    powerContrib_.erase(powerContrib_.begin() + at);
    regularContrib_.erase(regularContrib_.begin() + at);
    refreshSums();
}

CoreGroup *
Server::group(GroupId id)
{
    const std::size_t pos = groupIndex(id);
    return pos < groups_.size() ? &groups_[pos] : nullptr;
}

const CoreGroup *
Server::group(GroupId id) const
{
    const std::size_t pos = groupIndex(id);
    return pos < groups_.size() ? &groups_[pos] : nullptr;
}

void
Server::setUtil(GroupId id, double util)
{
    const std::size_t pos = groupIndex(id);
    if (pos >= groups_.size())
        return;
    groups_[pos].util = std::clamp(util, 0.0, 1.0);
    refreshContrib(pos);
    refreshSums();
}

void
Server::setUtilsAndTurboWatts(std::size_t count, const double *utils,
                              const double *turboWatts)
{
    assert(count == groups_.size());
    double power = 0.0;
    double regular = 0.0;
    double weighted = 0.0;
    for (std::size_t i = 0; i < count; ++i) {
        CoreGroup &g = groups_[i];
        g.util = std::clamp(utils[i], 0.0, 1.0);
        const FreqMHz eff = g.effectiveMHz();
        if (eff == kTurboMHz) {
            // The hint is exactly corePower(util, turbo) scaled by
            // the core count — the value refreshContrib would
            // compute — so the model is not consulted at all.
            powerContrib_[i] = turboWatts[i];
            regularContrib_[i] = turboWatts[i];
        } else if (eff > kTurboMHz) {
            powerContrib_[i] =
                (g.cores * model_->corePower(g.util, eff)).count();
            regularContrib_[i] = turboWatts[i];
        } else {
            const Watts capped =
                g.cores * model_->corePower(g.util, eff);
            powerContrib_[i] = capped.count();
            regularContrib_[i] = capped.count();
        }
        power += powerContrib_[i];
        regular += regularContrib_[i];
        weighted += g.cores * g.util;
    }
    powerSum_ = power;
    regularSum_ = regular;
    utilWeighted_ = weighted;
}

void
Server::setUtilsAndTurboWatts(std::size_t count,
                              const std::uint16_t *utilsQ,
                              const float *turboWatts)
{
    // Mirror of the double overload above; the only differences are
    // the one-time dequantization (already in [0, 1], so the clamp
    // is unnecessary) and the float->double widening of the hint.
    assert(count == groups_.size());
    double power = 0.0;
    double regular = 0.0;
    double weighted = 0.0;
    for (std::size_t i = 0; i < count; ++i) {
        CoreGroup &g = groups_[i];
        g.util = sim::dequantUtil(utilsQ[i]);
        const double hint = static_cast<double>(turboWatts[i]);
        const FreqMHz eff = g.effectiveMHz();
        if (eff == kTurboMHz) {
            powerContrib_[i] = hint;
            regularContrib_[i] = hint;
        } else if (eff > kTurboMHz) {
            powerContrib_[i] =
                (g.cores * model_->corePower(g.util, eff)).count();
            regularContrib_[i] = hint;
        } else {
            const Watts capped =
                g.cores * model_->corePower(g.util, eff);
            powerContrib_[i] = capped.count();
            regularContrib_[i] = capped.count();
        }
        power += powerContrib_[i];
        regular += regularContrib_[i];
        weighted += g.cores * g.util;
    }
    powerSum_ = power;
    regularSum_ = regular;
    utilWeighted_ = weighted;
}

void
Server::setTarget(GroupId id, FreqMHz f)
{
    const std::size_t pos = groupIndex(id);
    if (pos >= groups_.size())
        return;
    groups_[pos].targetMHz = ladder_.clamp(f);
    refreshContrib(pos);
    refreshSums();
}

void
Server::setAllTargets(FreqMHz f)
{
    for (std::size_t i = 0; i < groups_.size(); ++i) {
        groups_[i].targetMHz = ladder_.clamp(f);
        refreshContrib(i);
    }
    refreshSums();
}

Watts
Server::powerWatts() const
{
    return model_->params().idleWatts + Watts{powerSum_};
}

Watts
Server::regularPowerWatts() const
{
    return model_->params().idleWatts + Watts{regularSum_};
}

Watts
Server::powerWattsIf(GroupId id, FreqMHz f) const
{
    const std::size_t pos = groupIndex(id);
    if (pos >= groups_.size())
        return powerWatts();
    const CoreGroup &g = groups_[pos];
    const Watts swapped =
        g.cores * model_->corePower(g.util, ladder_.clamp(f));
    return model_->params().idleWatts +
        Watts{powerSum_ - powerContrib_[pos]} + swapped;
}

double
Server::utilization() const
{
    return utilWeighted_ / totalCores();
}

int
Server::overclockedCores() const
{
    int cores = 0;
    for (const auto &g : groups_)
        if (g.overclocked())
            cores += g.cores;
    return cores;
}

bool
Server::throttleOneStep()
{
    // Pick the lowest-priority group whose *effective* frequency can
    // still go down; ties broken towards the fastest group so the
    // overclocked ones lose their boost first.
    std::size_t victim = groups_.size();
    for (std::size_t i = 0; i < groups_.size(); ++i) {
        const CoreGroup &g = groups_[i];
        const FreqMHz eff = g.effectiveMHz();
        if (eff <= ladder_.minMHz)
            continue;
        if (victim == groups_.size() ||
            g.priority < groups_[victim].priority ||
            (g.priority == groups_[victim].priority &&
             eff > groups_[victim].effectiveMHz())) {
            victim = i;
        }
    }
    if (victim == groups_.size())
        return false;
    setCap(victim, ladder_.down(groups_[victim].effectiveMHz()));
    refreshContrib(victim);
    refreshSums();
    return true;
}

bool
Server::unthrottleOneStep()
{
    if (cappedGroups_ == 0)
        return false;
    std::size_t candidate = groups_.size();
    for (std::size_t i = 0; i < groups_.size(); ++i) {
        const CoreGroup &g = groups_[i];
        if (g.capMHz >= ladder_.maxMHz)
            continue;
        // Only useful to raise caps that actually bind.
        if (g.capMHz >= g.targetMHz)
            continue;
        if (candidate == groups_.size() ||
            g.priority > groups_[candidate].priority) {
            candidate = i;
        }
    }
    if (candidate == groups_.size()) {
        // Raise any remaining (non-binding) caps so state converges
        // back to uncapped.
        for (std::size_t i = 0; i < groups_.size(); ++i) {
            if (groups_[i].capMHz < ladder_.maxMHz) {
                setCap(i, ladder_.up(groups_[i].capMHz));
                refreshContrib(i);
                refreshSums();
                return true;
            }
        }
        return false;
    }
    setCap(candidate, ladder_.up(groups_[candidate].capMHz));
    refreshContrib(candidate);
    refreshSums();
    return true;
}

void
Server::setCap(std::size_t pos, FreqMHz cap)
{
    cappedGroups_ += (cap < ladder_.maxMHz ? 1 : 0) -
        (groups_[pos].capMHz < ladder_.maxMHz ? 1 : 0);
    groups_[pos].capMHz = cap;
}

bool
Server::capped() const
{
    return cappedGroups_ > 0;
}

void
Server::clearCaps()
{
    if (cappedGroups_ == 0)
        return; // every cap already at the ladder max
    for (std::size_t i = 0; i < groups_.size(); ++i) {
        groups_[i].capMHz = ladder_.maxMHz;
        refreshContrib(i);
    }
    cappedGroups_ = 0;
    refreshSums();
}

double
Server::cappingPenalty() const
{
    double penalty = 0.0;
    int affected = 0;
    for (const auto &g : groups_) {
        if (FrequencyLadder::isOverclocked(g.targetMHz))
            continue; // overclock seekers are not "penalized"
        const FreqMHz eff = g.effectiveMHz();
        const FreqMHz base = std::min(g.targetMHz, kTurboMHz);
        if (base > FreqMHz{0} && eff < base) {
            // Quantity / Quantity yields the dimensionless ratio.
            penalty += g.cores * ((base - eff) / base);
            affected += g.cores;
        }
    }
    return affected > 0 ? penalty / affected : 0.0;
}

int
Server::cappedNonOverclockCores() const
{
    int affected = 0;
    for (const auto &g : groups_) {
        if (FrequencyLadder::isOverclocked(g.targetMHz))
            continue;
        const FreqMHz base = std::min(g.targetMHz, kTurboMHz);
        if (base > FreqMHz{0} && g.effectiveMHz() < base)
            affected += g.cores;
    }
    return affected;
}

} // namespace power
} // namespace soc
