#include "power/server.hh"

#include <algorithm>
#include <cassert>

namespace soc
{
namespace power
{

Server::Server(int id, const PowerModel *model, FrequencyLadder ladder)
    : id_(id), model_(model), ladder_(ladder)
{
    assert(model_ != nullptr);
}

int
Server::usedCores() const
{
    int used = 0;
    for (const auto &g : groups_)
        used += g.cores;
    return used;
}

GroupId
Server::addGroup(int cores, double util, FreqMHz target, int priority)
{
    assert(cores > 0);
    if (cores > freeCores())
        return -1;
    CoreGroup g;
    g.id = nextGroup_++;
    g.cores = cores;
    g.util = std::clamp(util, 0.0, 1.0);
    g.targetMHz = ladder_.clamp(target);
    g.capMHz = ladder_.maxMHz;
    g.priority = priority;
    groups_.push_back(g);
    return g.id;
}

void
Server::removeGroup(GroupId id)
{
    std::erase_if(groups_,
                  [id](const CoreGroup &g) { return g.id == id; });
}

CoreGroup *
Server::group(GroupId id)
{
    for (auto &g : groups_)
        if (g.id == id)
            return &g;
    return nullptr;
}

const CoreGroup *
Server::group(GroupId id) const
{
    for (const auto &g : groups_)
        if (g.id == id)
            return &g;
    return nullptr;
}

void
Server::setUtil(GroupId id, double util)
{
    if (auto *g = group(id))
        g->util = std::clamp(util, 0.0, 1.0);
}

void
Server::setTarget(GroupId id, FreqMHz f)
{
    if (auto *g = group(id))
        g->targetMHz = ladder_.clamp(f);
}

void
Server::setAllTargets(FreqMHz f)
{
    for (auto &g : groups_)
        g.targetMHz = ladder_.clamp(f);
}

Watts
Server::powerWatts() const
{
    Watts watts = model_->params().idleWatts;
    for (const auto &g : groups_)
        watts += g.cores * model_->corePower(g.util, g.effectiveMHz());
    return watts;
}

Watts
Server::regularPowerWatts() const
{
    Watts watts = model_->params().idleWatts;
    for (const auto &g : groups_) {
        const FreqMHz f = std::min(g.effectiveMHz(), kTurboMHz);
        watts += g.cores * model_->corePower(g.util, f);
    }
    return watts;
}

Watts
Server::powerWattsIf(GroupId id, FreqMHz f) const
{
    Watts watts = model_->params().idleWatts;
    for (const auto &g : groups_) {
        const FreqMHz freq =
            g.id == id ? ladder_.clamp(f) : g.effectiveMHz();
        watts += g.cores * model_->corePower(g.util, freq);
    }
    return watts;
}

double
Server::utilization() const
{
    double weighted = 0.0;
    for (const auto &g : groups_)
        weighted += g.cores * g.util;
    return weighted / totalCores();
}

int
Server::overclockedCores() const
{
    int cores = 0;
    for (const auto &g : groups_)
        if (g.overclocked())
            cores += g.cores;
    return cores;
}

bool
Server::throttleOneStep()
{
    // Pick the lowest-priority group whose *effective* frequency can
    // still go down; ties broken towards the fastest group so the
    // overclocked ones lose their boost first.
    CoreGroup *victim = nullptr;
    for (auto &g : groups_) {
        const FreqMHz eff = g.effectiveMHz();
        if (eff <= ladder_.minMHz)
            continue;
        if (victim == nullptr || g.priority < victim->priority ||
            (g.priority == victim->priority &&
             eff > victim->effectiveMHz())) {
            victim = &g;
        }
    }
    if (victim == nullptr)
        return false;
    victim->capMHz = ladder_.down(victim->effectiveMHz());
    return true;
}

bool
Server::unthrottleOneStep()
{
    CoreGroup *candidate = nullptr;
    for (auto &g : groups_) {
        if (g.capMHz >= ladder_.maxMHz)
            continue;
        // Only useful to raise caps that actually bind.
        if (g.capMHz >= g.targetMHz)
            continue;
        if (candidate == nullptr || g.priority > candidate->priority) {
            candidate = &g;
        }
    }
    if (candidate == nullptr) {
        // Raise any remaining (non-binding) caps so state converges
        // back to uncapped.
        for (auto &g : groups_) {
            if (g.capMHz < ladder_.maxMHz) {
                g.capMHz = ladder_.up(g.capMHz);
                return true;
            }
        }
        return false;
    }
    candidate->capMHz = ladder_.up(candidate->capMHz);
    return true;
}

bool
Server::capped() const
{
    for (const auto &g : groups_)
        if (g.capMHz < ladder_.maxMHz)
            return true;
    return false;
}

void
Server::clearCaps()
{
    for (auto &g : groups_)
        g.capMHz = ladder_.maxMHz;
}

double
Server::cappingPenalty() const
{
    double penalty = 0.0;
    int affected = 0;
    for (const auto &g : groups_) {
        if (FrequencyLadder::isOverclocked(g.targetMHz))
            continue; // overclock seekers are not "penalized"
        const FreqMHz eff = g.effectiveMHz();
        const FreqMHz base = std::min(g.targetMHz, kTurboMHz);
        if (base > FreqMHz{0} && eff < base) {
            // Quantity / Quantity yields the dimensionless ratio.
            penalty += g.cores * ((base - eff) / base);
            affected += g.cores;
        }
    }
    return affected > 0 ? penalty / affected : 0.0;
}

int
Server::cappedNonOverclockCores() const
{
    int affected = 0;
    for (const auto &g : groups_) {
        if (FrequencyLadder::isOverclocked(g.targetMHz))
            continue;
        const FreqMHz base = std::min(g.targetMHz, kTurboMHz);
        if (base > FreqMHz{0} && g.effectiveMHz() < base)
            affected += g.cores;
    }
    return affected;
}

} // namespace power
} // namespace soc
