#include "power/rack_manager.hh"

namespace soc
{
namespace power
{

RackManager::RackManager(Rack &rack, RackManagerConfig config)
    : rack_(rack), config_(config)
{
}

void
RackManager::addListener(RackPowerListener *listener)
{
    listeners_.push_back(listener);
}

void
RackManager::broadcastWarning(sim::Tick now)
{
    ++stats_.warnings;
    for (auto *listener : listeners_)
        listener->onWarning(now);
}

void
RackManager::broadcastCapEvent(sim::Tick now)
{
    for (auto *listener : listeners_)
        listener->onCapEvent(now);
}

void
RackManager::tick(sim::Tick now)
{
    ++stats_.ticks;
    const Watts draw = rack_.powerWatts();
    const Watts limit = rack_.limitWatts();

    if (draw > limit) {
        if (!inCap_) {
            inCap_ = true;
            ++stats_.capEvents;
        }
        broadcastCapEvent(now);
        enforceCap();
        ++stats_.cappedTicks;
        // Record the penalty the enforced caps impose on the rack's
        // non-overclocked workloads (averaged over affected cores).
        double penalty = 0.0;
        int affected = 0;
        for (const auto &server : rack_.servers()) {
            const int cores = server->cappedNonOverclockCores();
            penalty += server->cappingPenalty() * cores;
            affected += cores;
        }
        if (affected > 0)
            stats_.penalty.add(penalty / affected);
        return;
    }

    if (draw >= warningWatts()) {
        broadcastWarning(now);
    } else {
        inCap_ = false;
    }
    if (draw < rack_.limitWatts() * config_.releaseFraction)
        releaseCaps();
}

void
RackManager::enforceCap()
{
    // Throttle with overshoot: real capping controllers push the
    // rack decisively out of the danger zone instead of hovering at
    // the limit.
    const Watts target =
        rack_.limitWatts() * config_.capOvershootFraction;
    int budget = config_.throttleStepsPerTick;
    while (budget-- > 0 && rack_.powerWatts() > target) {
        // Prioritized victim choice: servers still running
        // overclocked groups lose their boost first (overclocking is
        // opportunistic); among equals, the hottest server yields.
        Server *victim = nullptr;
        bool victim_oc = false;
        Watts victim_power{0.0};
        for (const auto &server : rack_.servers()) {
            bool can = false;
            bool overclocked = false;
            for (const auto &g : server->groups()) {
                if (g.effectiveMHz() > server->ladder().minMHz)
                    can = true;
                if (g.overclocked())
                    overclocked = true;
            }
            if (!can)
                continue;
            const Watts power = server->powerWatts();
            const bool better = victim == nullptr ||
                (overclocked && !victim_oc) ||
                (overclocked == victim_oc && power > victim_power);
            if (better) {
                victim = server.get();
                victim_oc = overclocked;
                victim_power = power;
            }
        }
        if (victim == nullptr || !victim->throttleOneStep())
            break;
    }
}

void
RackManager::releaseCaps()
{
    int budget = config_.releaseStepsPerTick;
    const Watts headroom =
        rack_.limitWatts() * config_.releaseFraction;
    while (budget-- > 0 && rack_.powerWatts() < headroom) {
        bool released = false;
        for (const auto &server : rack_.servers()) {
            if (server->unthrottleOneStep()) {
                released = true;
                break;
            }
        }
        if (!released)
            break;
    }
}

} // namespace power
} // namespace soc
