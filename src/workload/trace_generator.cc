#include "workload/trace_generator.hh"

#include <algorithm>
#include <cassert>

#include "sim/quant.hh"

namespace soc
{
namespace workload
{

TraceGenerator::TraceGenerator(std::uint64_t seed, TraceConfig cfg)
    : rng_(seed), cfg_(cfg)
{
    assert(cfg_.end > cfg_.start);
    assert(cfg_.interval > 0);
}

VmUtilCursor::VmUtilCursor(sim::Rng rng, const Archetype &archetype,
                           const TraceConfig &cfg)
    : rng_(rng),
      initialRng_(rng),
      archetype_(archetype),
      cfg_(cfg),
      next_(cfg.start)
{
}

void
VmUtilCursor::generate(std::size_t n, double *out, std::size_t stride)
{
    // Mirrors TraceGenerator::utilSeries sample for sample (pinned
    // bit-identical by test), but batched: the horizon is cut into
    // same-day segments so the per-day amplitude draws interleave
    // with the noise normals in exactly the scalar order, and within
    // a segment the shape terms (Archetype::utilFill) and the noise
    // normals (Rng::normalFill) fill contiguous arrays the combine
    // loop below consumes straight-line.
    double shaped[kBatch];
    double noise[kBatch];
    std::size_t i = 0;
    while (i < n) {
        assert(next_ < cfg_.end &&
               "VmUtilCursor: generated past the trace horizon");
        const long day = static_cast<long>(next_ / sim::kDay);
        if (day != currentDay_) {
            currentDay_ = day;
            dayAmplitude_ = std::max(
                0.0, rng_.normal(1.0, cfg_.dailyAmplitudeSigma));
            if (rng_.chance(cfg_.outlierDayProb))
                dayAmplitude_ *= cfg_.outlierScale;
            else if (rng_.chance(cfg_.surgeDayProb))
                dayAmplitude_ *= cfg_.surgeScale;
        }
        // Samples of this batch: same day, capped by the request
        // and the scratch size.
        const sim::Tick day_end =
            static_cast<sim::Tick>(day + 1) * sim::kDay;
        const std::size_t to_day_end = static_cast<std::size_t>(
            (day_end - next_ + cfg_.interval - 1) / cfg_.interval);
        const std::size_t seg =
            std::min({n - i, to_day_end, kBatch});
        assert(next_ + static_cast<sim::Tick>(seg - 1) *
                   cfg_.interval < cfg_.end &&
               "VmUtilCursor: generated past the trace horizon");

        archetype_.utilFill(next_, cfg_.interval, seg, shaped);
        rng_.normalFill(noise, seg);
        const double base = archetype_.baseUtil;
        const double amp = dayAmplitude_;
        const double sigma = archetype_.noiseSigma;
        double *dst = out + i * stride;
        for (std::size_t k = 0; k < seg; ++k) {
            // Exactly utilSeries' per-sample expression:
            // base + (shaped - base) * amp, then += normal(0, sigma)
            // = 0.0 + sigma * n, then clamp.
            double util = base + (shaped[k] - base) * amp;
            util += 0.0 + sigma * noise[k];
            dst[k * stride] = std::clamp(util, 0.0, 1.0);
        }
        next_ += static_cast<sim::Tick>(seg) * cfg_.interval;
        i += seg;
    }
    produced_ += n;
}

void
VmUtilCursor::reset()
{
    rng_ = initialRng_;
    next_ = cfg_.start;
    produced_ = 0;
    currentDay_ = -1;
    dayAmplitude_ = 1.0;
}

void
ServerTraceStream::generate(std::size_t n, double *util,
                            double *watts, std::size_t stride)
{
    // Column-at-a-time: VM v's samples fill before its watts hints,
    // fusing the turbo-watts pass into the same cache-warm sweep.
    // RNG draw order is unchanged (each cursor owns a split stream).
    for (std::size_t v = 0; v < cursors_.size(); ++v) {
        cursors_[v].generate(n, util + v, stride);
        const int cores = mix_[v].cores;
        for (std::size_t i = 0; i < n; ++i) {
            // The exact vmTurboWatts summand of serverTrace().
            const power::Watts contrib = cores *
                model_->corePower(util[i * stride + v],
                                  power::kTurboMHz);
            watts[i * stride + v] = contrib.count();
        }
    }
}

void
ServerTraceStream::generateQuantized(std::size_t n,
                                     std::uint16_t *util,
                                     float *watts,
                                     std::size_t stride)
{
    // soclint:hot-begin(PERF-001) — the window-refill path: every
    // streamed slot of every rack funnels through this fill loop,
    // so it must stay allocation-free (the batch scratch lives on
    // the stack).
    double col[VmUtilCursor::kBatch];
    for (std::size_t v = 0; v < cursors_.size(); ++v) {
        const int cores = mix_[v].cores;
        std::size_t done = 0;
        while (done < n) {
            const std::size_t m =
                std::min(n - done, VmUtilCursor::kBatch);
            cursors_[v].generate(m, col, 1);
            for (std::size_t k = 0; k < m; ++k) {
                const std::uint16_t q = sim::quantizeUtil(col[k]);
                const double uq = sim::dequantUtil(q);
                const power::Watts contrib = cores *
                    model_->corePower(uq, power::kTurboMHz);
                const std::size_t at = (done + k) * stride + v;
                util[at] = q;
                watts[at] = static_cast<float>(contrib.count());
            }
            done += m;
        }
    }
    // soclint:hot-end(PERF-001)
}

void
ServerTraceStream::reset()
{
    for (auto &cursor : cursors_)
        cursor.reset();
}

telemetry::TimeSeries
TraceGenerator::utilSeries(const Archetype &archetype)
{
    sim::Rng rng = rng_.split();
    telemetry::TimeSeries series(cfg_.start, cfg_.interval);

    long current_day = -1;
    double day_amplitude = 1.0;
    for (sim::Tick t = cfg_.start; t < cfg_.end; t += cfg_.interval) {
        const long day = static_cast<long>(t / sim::kDay);
        if (day != current_day) {
            current_day = day;
            day_amplitude =
                std::max(0.0,
                         rng.normal(1.0, cfg_.dailyAmplitudeSigma));
            if (rng.chance(cfg_.outlierDayProb))
                day_amplitude *= cfg_.outlierScale;
            else if (rng.chance(cfg_.surgeDayProb))
                day_amplitude *= cfg_.surgeScale;
        }
        const double base = archetype.baseUtil;
        const double shaped = archetype.utilAt(t);
        // Scale only the dynamic part so idle VMs stay idle.
        double util = base + (shaped - base) * day_amplitude;
        util += rng.normal(0.0, archetype.noiseSigma);
        series.append(std::clamp(util, 0.0, 1.0));
    }
    return series;
}

ServerTrace
TraceGenerator::serverTrace(const std::vector<VmMix> &mix,
                            const power::PowerModel &model)
{
    ServerTrace trace;
    trace.mix = mix;

    int used_cores = 0;
    for (const auto &vm : mix) {
        trace.vmUtil.push_back(utilSeries(vm.archetype));
        trace.vmTurboWatts.emplace_back(cfg_.start, cfg_.interval);
        used_cores += vm.cores;
    }
    assert(used_cores <= model.params().cores);

    const std::size_t slots = trace.vmUtil.empty()
        ? 0
        : trace.vmUtil.front().size();
    trace.serverUtil =
        telemetry::TimeSeries(cfg_.start, cfg_.interval);
    trace.powerWatts =
        telemetry::TimeSeries(cfg_.start, cfg_.interval);

    const int total_cores = model.params().cores;
    for (std::size_t i = 0; i < slots; ++i) {
        double weighted = 0.0;
        power::Watts watts = model.params().idleWatts;
        for (std::size_t v = 0; v < mix.size(); ++v) {
            const double util = trace.vmUtil[v].at(i);
            weighted += mix[v].cores * util;
            const power::Watts contrib = mix[v].cores *
                model.corePower(util, power::kTurboMHz);
            watts += contrib;
            trace.vmTurboWatts[v].append(contrib.count());
        }
        trace.serverUtil.append(weighted / total_cores);
        trace.powerWatts.append(watts.count());
    }
    return trace;
}

ServerTraceStream
TraceGenerator::serverTraceStream(const std::vector<VmMix> &mix,
                                 const power::PowerModel &model)
{
    ServerTraceStream stream;
    stream.mix_ = mix;
    stream.model_ = &model;
    stream.cursors_.reserve(mix.size());

    int used_cores = 0;
    for (const auto &vm : mix) {
        // One split per VM in mix order: the same parent-stream
        // consumption as serverTrace's utilSeries calls, so a run
        // may mix the two APIs and stay bit-identical.
        stream.cursors_.emplace_back(rng_.split(), vm.archetype,
                                     cfg_);
        used_cores += vm.cores;
    }
    assert(used_cores <= model.params().cores);
    return stream;
}

std::vector<VmMix>
TraceGenerator::randomVmMix(int server_cores)
{
    // Weighted catalog reflecting §III: mostly long-lived service
    // VMs with diverse peak times; a minority of hot batch VMs.
    struct CatalogEntry {
        ShapeKind kind;
        double weight;
        double base_lo, base_hi;
        double peak_lo, peak_hi;
    };
    static const CatalogEntry catalog[] = {
        {ShapeKind::Diurnal, 0.28, 0.08, 0.20, 0.45, 0.85},
        {ShapeKind::BusinessHours, 0.16, 0.08, 0.18, 0.50, 0.85},
        {ShapeKind::MorningPeak, 0.10, 0.10, 0.20, 0.55, 0.90},
        {ShapeKind::TopOfHour, 0.10, 0.08, 0.15, 0.55, 0.95},
        {ShapeKind::NightBatch, 0.11, 0.05, 0.15, 0.45, 0.80},
        {ShapeKind::LowIdle, 0.20, 0.03, 0.10, 0.15, 0.30},
        {ShapeKind::ConstantHigh, 0.05, 0.55, 0.70, 0.70, 0.90},
    };

    std::vector<VmMix> mix;
    int free_cores = server_cores;
    // Leave a little headroom: schedulers rarely pack to 100%.
    const int reserve = std::max(2, server_cores / 16);
    while (free_cores > reserve) {
        const int vm_cores = static_cast<int>(
            std::min<std::int64_t>(rng_.uniformInt(2, 8), free_cores));

        double pick = rng_.uniform();
        const CatalogEntry *chosen = &catalog[0];
        for (const auto &entry : catalog) {
            if (pick < entry.weight) {
                chosen = &entry;
                break;
            }
            pick -= entry.weight;
        }

        Archetype arch;
        arch.kind = chosen->kind;
        arch.baseUtil = rng_.uniform(chosen->base_lo, chosen->base_hi);
        arch.peakUtil = std::max(
            arch.baseUtil,
            rng_.uniform(chosen->peak_lo, chosen->peak_hi));
        arch.weekendFactor = rng_.uniform(0.2, 0.6);
        arch.noiseSigma = rng_.uniform(0.015, 0.05);
        arch.phaseShift = static_cast<sim::Tick>(
            rng_.uniformInt(-3 * 60, 3 * 60)) * sim::kMinute;

        mix.push_back({arch, vm_cores});
        free_cores -= vm_cores;
    }
    return mix;
}

std::vector<VmMix>
TraceGenerator::mlHeavyMix(int server_cores)
{
    std::vector<VmMix> mix;
    int free_cores = server_cores;
    while (free_cores >= 16) {
        Archetype arch = mlTraining();
        arch.baseUtil = rng_.uniform(0.78, 0.88);
        arch.peakUtil = std::min(1.0, arch.baseUtil + 0.08);
        mix.push_back({arch, 16});
        free_cores -= 16;
    }
    if (free_cores >= 2) {
        Archetype arch;
        arch.kind = ShapeKind::LowIdle;
        arch.baseUtil = 0.05;
        arch.peakUtil = 0.15;
        mix.push_back({arch, free_cores});
    }
    return mix;
}

telemetry::TimeSeries
TraceGenerator::rackPower(const std::vector<ServerTrace> &servers)
{
    assert(!servers.empty());
    std::vector<const telemetry::TimeSeries *> parts;
    parts.reserve(servers.size());
    for (const auto &server : servers)
        parts.push_back(&server.powerWatts);
    return telemetry::TimeSeries::sum(parts);
}

} // namespace workload
} // namespace soc
