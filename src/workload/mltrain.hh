/**
 * @file
 * Throughput-optimized ML-training workload (§V-A's MLTrain from
 * FunctionBench).  MLTrain VMs are never overclocked; they matter to
 * the evaluation because (1) they keep their servers hot, consuming
 * rack power headroom, and (2) power capping throttles them, which
 * the "MLTrain throughput" metric of the power-constrained
 * experiment measures.
 */

#ifndef SOC_WORKLOAD_MLTRAIN_HH
#define SOC_WORKLOAD_MLTRAIN_HH

#include "power/frequency.hh"
#include "sim/time.hh"

namespace soc
{
namespace workload
{

/**
 * A long-running training job whose instantaneous throughput scales
 * with effective core frequency through a memory-bound fraction.
 */
class MlTrainJob
{
  public:
    /**
     * @param base_throughput Samples/s at max turbo.
     * @param mem_bound_frac  Fraction of step time that is memory
     *                        bound (does not scale with frequency).
     */
    explicit MlTrainJob(double base_throughput = 1000.0,
                        double mem_bound_frac = 0.3);

    /** Instantaneous throughput at frequency @p f (samples/s). */
    double throughput(power::FreqMHz f) const;

    /** Integrate progress over @p span at frequency @p f. */
    void advance(sim::Tick span, power::FreqMHz f);

    /** Total samples processed so far. */
    double progress() const { return progress_; }

    /** Wall-clock-normalized throughput achieved so far. */
    double meanThroughput() const;

  private:
    double baseThroughput_;
    double memBoundFrac_;
    double progress_ = 0.0;
    sim::Tick elapsed_ = 0;
};

} // namespace workload
} // namespace soc

#endif // SOC_WORKLOAD_MLTRAIN_HH
