#include "workload/mltrain.hh"

namespace soc
{
namespace workload
{

MlTrainJob::MlTrainJob(double base_throughput, double mem_bound_frac)
    : baseThroughput_(base_throughput), memBoundFrac_(mem_bound_frac)
{
}

double
MlTrainJob::throughput(power::FreqMHz f) const
{
    // Step time = compute part (scales with 1/f) + memory part.
    const double freq_ratio = power::kTurboMHz / f;
    const double rel_step = (1.0 - memBoundFrac_) * freq_ratio +
        memBoundFrac_;
    return baseThroughput_ / rel_step;
}

void
MlTrainJob::advance(sim::Tick span, power::FreqMHz f)
{
    progress_ += throughput(f) *
        (static_cast<double>(span) / sim::kSecond);
    elapsed_ += span;
}

double
MlTrainJob::meanThroughput() const
{
    if (elapsed_ <= 0)
        return 0.0;
    return progress_ /
        (static_cast<double>(elapsed_) / sim::kSecond);
}

} // namespace workload
} // namespace soc
