/**
 * @file
 * Deployment-level model of the WebConf web-conferencing workload
 * (§III-Q1, Fig. 4).
 *
 * WebConf provisions VMs across availability zones and keeps the
 * *deployment-level* average CPU utilization below a target (50%)
 * so one AZ can absorb another's failover load.  Each VM hosts
 * conference calls; its utilization is work / (cores * speed), so
 * overclocking a VM lowers its utilization by the frequency speedup.
 * The model demonstrates why instance-level overclocking triggers
 * are wasteful when the deployment-level goal is already met.
 */

#ifndef SOC_WORKLOAD_WEBCONF_HH
#define SOC_WORKLOAD_WEBCONF_HH

#include <vector>

#include "power/frequency.hh"

namespace soc
{
namespace workload
{

/**
 * A WebConf deployment: a set of VMs with load expressed in
 * call-processing units.
 */
class WebConfDeployment
{
  public:
    /**
     * @param target_util Deployment-level utilization goal (0.5 in
     *                    the paper).
     * @param mem_bound_frac Fraction of call processing insensitive
     *                    to frequency.
     */
    explicit WebConfDeployment(double target_util = 0.5,
                               double mem_bound_frac = 0.2);

    /**
     * Add a VM.
     *
     * @param cores     VM core count.
     * @param load_units Work such that utilization at turbo equals
     *                  load_units / cores.
     * @return VM index.
     */
    int addVm(int cores, double load_units);

    std::size_t vmCount() const { return vms_.size(); }

    void setLoad(int vm, double load_units);
    void setFrequency(int vm, power::FreqMHz f);

    /** Utilization of @p vm at its current frequency, in [0, 1]. */
    double vmUtil(int vm) const;

    /** Core-weighted mean utilization across the deployment. */
    double deploymentUtil() const;

    double targetUtil() const { return targetUtil_; }

    /** @return true when the deployment-level goal is met. */
    bool meetsTarget() const { return deploymentUtil() <= targetUtil_; }

    /**
     * Would overclocking @p vm to @p f be *useful* under
     * deployment-level reasoning?  True only if the goal is
     * currently missed and the overclock brings the deployment
     * utilization closer to (or under) the target.
     */
    bool overclockUseful(int vm, power::FreqMHz f) const;

  private:
    struct Vm {
        int cores;
        double loadUnits;
        power::FreqMHz freq = power::kTurboMHz;
    };

    double utilOf(const Vm &vm, power::FreqMHz f) const;

    double targetUtil_;
    double memBoundFrac_;
    std::vector<Vm> vms_;
};

} // namespace workload
} // namespace soc

#endif // SOC_WORKLOAD_WEBCONF_HH
