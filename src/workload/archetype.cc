#include "workload/archetype.hh"

#include <algorithm>
#include <cmath>

namespace soc
{
namespace workload
{

namespace
{

constexpr double kPi = 3.14159265358979323846;

/** Smooth bump centered at @p center hours, half-width @p width. */
double
bump(double hour, double center, double width)
{
    const double dist = std::abs(hour - center);
    if (dist >= width)
        return 0.0;
    return 0.5 * (1.0 + std::cos(kPi * dist / width));
}

/*
 * Per-kind shape kernels.  shapeValue dispatches to these per
 * sample; Archetype::utilFill hoists the dispatch out of its fill
 * loop and runs one kernel over the whole batch.  Sharing the
 * kernels keeps the two paths bit-identical by construction.
 */

double
shapeMorningPeak(double hour)
{
    // Ramp from 8am, flat top 10am-noon, decay into afternoon.
    if (hour >= 10.0 && hour <= 12.0)
        return 1.0;
    return std::max(bump(hour, 11.0, 3.5),
                    0.15 * bump(hour, 15.0, 4.0));
}

double
shapeTopOfHour(double hour)
{
    const double minute = (hour - std::floor(hour)) * 60.0;
    const bool spike = minute < 5.0 ||
        (minute >= 30.0 && minute < 35.0);
    // Spikes ride on a business-hours plateau.
    const double plateau = 0.35 * bump(hour, 13.0, 7.0);
    return spike ? std::min(1.0, plateau + 0.65) : plateau;
}

double
shapeBusinessHours(double hour)
{
    if (hour >= 9.0 && hour <= 17.0)
        return 0.85 + 0.15 * bump(hour, 13.0, 4.0);
    return bump(hour, 13.0, 6.5) * 0.5;
}

double
shapeDiurnal(double hour)
{
    return bump(hour, 13.5, 9.0);
}

double
shapeConstantHigh(double)
{
    return 1.0;
}

double
shapeNightBatch(double hour)
{
    return std::max(bump(hour, 2.0, 4.0), bump(hour, 23.5, 2.0));
}

double
shapeLowIdle(double hour)
{
    return 0.2 * bump(hour, 12.0, 8.0);
}

/**
 * The shared fill loop of Archetype::utilFill, instantiated once
 * per shape kernel so the per-sample switch disappears and the
 * compiler can vectorize across the batch.  Expression order mirrors
 * Archetype::utilAt exactly (bit-identity is pinned by test).
 */
template <typename ShapeFn>
void
fillShaped(const Archetype &a, bool weekend_scales, sim::Tick start,
           sim::Tick interval, std::size_t n, double *out,
           ShapeFn shape)
{
    const double base = a.baseUtil;
    const double full_amplitude = a.peakUtil - a.baseUtil;
    for (std::size_t k = 0; k < n; ++k) {
        const sim::Tick shifted =
            start + static_cast<sim::Tick>(k) * interval +
            a.phaseShift;
        double amplitude = full_amplitude;
        if (weekend_scales && sim::isWeekend(shifted))
            amplitude *= a.weekendFactor;
        const double util =
            base + amplitude * shape(sim::hourOfDay(shifted));
        out[k] = std::clamp(util, 0.0, 1.0);
    }
}

} // namespace

std::string
shapeName(ShapeKind kind)
{
    switch (kind) {
      case ShapeKind::MorningPeak: return "morning-peak";
      case ShapeKind::TopOfHour: return "top-of-hour";
      case ShapeKind::BusinessHours: return "business-hours";
      case ShapeKind::Diurnal: return "diurnal";
      case ShapeKind::ConstantHigh: return "constant-high";
      case ShapeKind::NightBatch: return "night-batch";
      case ShapeKind::LowIdle: return "low-idle";
    }
    return "unknown";
}

double
shapeValue(ShapeKind kind, sim::Tick t)
{
    const double hour = sim::hourOfDay(t);
    switch (kind) {
      case ShapeKind::MorningPeak: return shapeMorningPeak(hour);
      case ShapeKind::TopOfHour: return shapeTopOfHour(hour);
      case ShapeKind::BusinessHours: return shapeBusinessHours(hour);
      case ShapeKind::Diurnal: return shapeDiurnal(hour);
      case ShapeKind::ConstantHigh: return shapeConstantHigh(hour);
      case ShapeKind::NightBatch: return shapeNightBatch(hour);
      case ShapeKind::LowIdle: return shapeLowIdle(hour);
    }
    return 0.0;
}

double
Archetype::utilAt(sim::Tick t) const
{
    const sim::Tick shifted = t + phaseShift;
    double amplitude = peakUtil - baseUtil;
    if (sim::isWeekend(shifted) && kind != ShapeKind::ConstantHigh)
        amplitude *= weekendFactor;
    const double util =
        baseUtil + amplitude * shapeValue(kind, shifted);
    return std::clamp(util, 0.0, 1.0);
}

void
Archetype::utilFill(sim::Tick start, sim::Tick interval,
                    std::size_t n, double *out) const
{
    const bool weekend_scales = kind != ShapeKind::ConstantHigh;
    switch (kind) {
      case ShapeKind::MorningPeak:
        fillShaped(*this, weekend_scales, start, interval, n, out,
                   shapeMorningPeak);
        return;
      case ShapeKind::TopOfHour:
        fillShaped(*this, weekend_scales, start, interval, n, out,
                   shapeTopOfHour);
        return;
      case ShapeKind::BusinessHours:
        fillShaped(*this, weekend_scales, start, interval, n, out,
                   shapeBusinessHours);
        return;
      case ShapeKind::Diurnal:
        fillShaped(*this, weekend_scales, start, interval, n, out,
                   shapeDiurnal);
        return;
      case ShapeKind::ConstantHigh:
        fillShaped(*this, weekend_scales, start, interval, n, out,
                   shapeConstantHigh);
        return;
      case ShapeKind::NightBatch:
        fillShaped(*this, weekend_scales, start, interval, n, out,
                   shapeNightBatch);
        return;
      case ShapeKind::LowIdle:
        fillShaped(*this, weekend_scales, start, interval, n, out,
                   shapeLowIdle);
        return;
    }
}

Archetype
serviceA()
{
    Archetype a;
    a.kind = ShapeKind::MorningPeak;
    a.baseUtil = 0.18;
    a.peakUtil = 0.88;
    a.noiseSigma = 0.025;
    return a;
}

Archetype
serviceB()
{
    Archetype a;
    a.kind = ShapeKind::TopOfHour;
    a.baseUtil = 0.12;
    a.peakUtil = 0.92;
    a.noiseSigma = 0.035;
    return a;
}

Archetype
serviceC()
{
    Archetype a;
    a.kind = ShapeKind::TopOfHour;
    a.baseUtil = 0.10;
    a.peakUtil = 0.80;
    a.noiseSigma = 0.030;
    a.phaseShift = 7 * sim::kMinute; // staggered spike alignment
    return a;
}

Archetype
mlTraining()
{
    Archetype a;
    a.kind = ShapeKind::ConstantHigh;
    a.baseUtil = 0.82;
    a.peakUtil = 0.92;
    a.weekendFactor = 1.0;
    a.noiseSigma = 0.02;
    return a;
}

} // namespace workload
} // namespace soc
