/**
 * @file
 * Service utilization archetypes.
 *
 * The paper's characterization (Figs. 1, 6, 9) rests on production
 * services with distinct, repeatable load shapes: a morning-peak
 * service (Service A), top/bottom-of-hour spiky services (B and C),
 * business-hours services, constant-high ML training, and nearly
 * idle VMs.  The archetypes below generate those shapes
 * deterministically as a function of time-of-day/day-of-week, with
 * configurable stochastic perturbations layered on by the
 * TraceGenerator.
 */

#ifndef SOC_WORKLOAD_ARCHETYPE_HH
#define SOC_WORKLOAD_ARCHETYPE_HH

#include <cstddef>
#include <string>

#include "sim/time.hh"

namespace soc
{
namespace workload
{

/** Load-shape families observed in the paper's production traces. */
enum class ShapeKind {
    MorningPeak,  ///< Service A: ramp from 8am, peak 10am-noon.
    TopOfHour,    ///< Services B/C: 5-min spikes at :00 and :30.
    BusinessHours,///< Elevated 9am-5pm plateau.
    Diurnal,      ///< Smooth day/night cosine, midday peak.
    ConstantHigh, ///< Throughput ML training: flat and hot.
    NightBatch,   ///< Batch work peaking around 2am.
    LowIdle,      ///< Mostly idle long-lived VM.
};

/** Printable name for tables and traces. */
std::string shapeName(ShapeKind kind);

/**
 * Deterministic base shape in [0, 1] for @p kind at time @p t.
 * 0 maps to the archetype's valley, 1 to its peak.
 */
double shapeValue(ShapeKind kind, sim::Tick t);

/**
 * An archetype: a shape plus the scaling that turns it into CPU
 * utilization.
 */
struct Archetype {
    ShapeKind kind = ShapeKind::Diurnal;
    /** Utilization at the shape's valley. */
    double baseUtil = 0.15;
    /** Utilization at the shape's peak. */
    double peakUtil = 0.75;
    /** Weekend peak amplitude relative to weekdays. */
    double weekendFactor = 0.35;
    /** Std-dev of per-slot multiplicative noise. */
    double noiseSigma = 0.03;
    /** Phase shift applied to the shape (models time zones). */
    sim::Tick phaseShift = 0;

    /**
     * Deterministic utilization (no noise) at time @p t.
     * Clamped to [0, 1].
     */
    double utilAt(sim::Tick t) const;

    /**
     * Batch form of utilAt: out[k] = utilAt(start + k * interval)
     * for k in [0, n), bit-identical to the scalar calls (pinned by
     * test).  The per-sample shape dispatch is hoisted out of the
     * loop so window fills run one straight-line kernel per VM.
     */
    void utilFill(sim::Tick start, sim::Tick interval, std::size_t n,
                  double *out) const;
};

/** The three services of Fig. 1, as archetypes. */
Archetype serviceA();
Archetype serviceB();
Archetype serviceC();

/** Constant-high ML-training archetype (§V-A's MLTrain servers). */
Archetype mlTraining();

} // namespace workload
} // namespace soc

#endif // SOC_WORKLOAD_ARCHETYPE_HH
