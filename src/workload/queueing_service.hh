/**
 * @file
 * Queueing model of a latency-critical microservice.
 *
 * Substitutes for DeathStarBench's SocialNet services in the cluster
 * experiments (Figs. 2, 3, 12-14).  Each service is an open-loop
 * M/G/c system: Poisson arrivals are dispatched join-shortest-queue
 * across VM instances; each instance has `workersPerVm` worker cores
 * and lognormal service times whose mean scales with core frequency
 * through a memory-bound fraction:
 *
 *   S(f) = S_turbo * ((1 - memBoundFrac) * f_turbo / f + memBoundFrac)
 *
 * The SLO follows the paper's rule: 5x the service's execution time
 * on an unloaded system [26], [60], [73].
 */

#ifndef SOC_WORKLOAD_QUEUEING_SERVICE_HH
#define SOC_WORKLOAD_QUEUEING_SERVICE_HH

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "power/frequency.hh"
#include "sim/rng.hh"
#include "sim/simulator.hh"
#include "sim/stats.hh"

namespace soc
{
namespace workload
{

/** Tunable description of one microservice. */
struct MicroserviceParams {
    std::string name;
    /** Mean service (execution) time at max turbo, unloaded. */
    double meanServiceMs = 1.0;
    /** Coefficient of variation of the service-time distribution. */
    double serviceCv = 1.0;
    /** Fraction of execution unaffected by core frequency. */
    double memBoundFrac = 0.25;
    /** Worker cores per VM instance. */
    int workersPerVm = 4;
    /** SLO = sloMultiplier * meanServiceMs (the paper uses 5x). */
    double sloMultiplier = 5.0;
    /** Queue bound per instance; overflow counts as a violation. */
    std::size_t maxQueue = 200000;
};

/**
 * The eight SocialNet-like services used throughout the evaluation,
 * tuned so the characterization findings hold: some services (Usr)
 * tolerate high utilization, others (UrlShort) violate their SLO
 * even at low utilization, and memory-bound ones (Media) benefit
 * little from overclocking.
 */
std::vector<MicroserviceParams> socialNetCatalog();

/** Mean service time at frequency @p f per the scaling rule above. */
double scaledServiceMs(const MicroserviceParams &params,
                       power::FreqMHz f);

/**
 * Analytic P99 of the service-time distribution at max turbo with no
 * queueing: the "execution time on an unloaded system" operators
 * profile when tuning WI thresholds (§IV-A).
 */
double unloadedP99Ms(const MicroserviceParams &params);

/**
 * Open-loop queueing simulation of one microservice deployment
 * (1..N VM instances) on the shared discrete-event simulator.
 */
class QueueingService
{
  public:
    /** Stable identifier of a VM instance within this service. */
    using InstanceId = int;

    QueueingService(sim::Simulator &simulator,
                    MicroserviceParams params, std::uint64_t seed);

    ~QueueingService();

    QueueingService(const QueueingService &) = delete;
    QueueingService &operator=(const QueueingService &) = delete;

    const MicroserviceParams &params() const { return params_; }
    const std::string &name() const { return params_.name; }

    /** SLO threshold in milliseconds. */
    double sloMs() const
    {
        return params_.sloMultiplier * params_.meanServiceMs;
    }

    /** Offered-load capacity (req/s) of one instance at @p f. */
    double instanceCapacity(power::FreqMHz f) const;

    /** Add a VM instance running at @p freq. @return its id. */
    InstanceId addInstance(power::FreqMHz freq = power::kTurboMHz);

    /**
     * Retire the most recently added live instance (scale-in); it
     * finishes queued work but receives no new requests.
     *
     * @return false when only one live instance remains.
     */
    bool retireInstance();

    /** Number of live (non-retired) instances. */
    std::size_t instanceCount() const;

    /** Set one instance's frequency (affects new request starts). */
    void setFrequency(InstanceId id, power::FreqMHz f);

    /** Set all live instances' frequency. */
    void setAllFrequencies(power::FreqMHz f);

    power::FreqMHz frequency(InstanceId id) const;

    /** Current offered load in requests/second; 0 pauses arrivals. */
    void setArrivalRate(double per_second);
    double arrivalRate() const { return ratePerSecond_; }

    /** Cumulative end-to-end latency distribution (ms). */
    const sim::Percentiles &latencies() const { return allLatency_; }

    std::uint64_t completedCount() const { return completed_; }
    std::uint64_t violationCount() const { return violations_; }
    std::uint64_t droppedCount() const { return dropped_; }

    /** Instantaneous utilization (busy workers / workers) of @p id. */
    double instantUtilization(InstanceId id) const;

    /** Metrics accumulated since the previous drainWindow() call. */
    struct WindowStats {
        sim::Percentiles latencyMs;
        double utilization = 0.0; ///< busy-core fraction
        std::uint64_t completed = 0;
        std::uint64_t violations = 0;
        std::uint64_t dropped = 0;
    };

    /** Return-and-reset the observation window (WI agent polls). */
    WindowStats drainWindow();

    /** Mean busy-core count integrated since construction. */
    double meanBusyCores() const;

  private:
    struct Instance {
        InstanceId id;
        power::FreqMHz freq;
        int busy = 0;
        std::deque<sim::Tick> queue; // arrival ticks of waiting reqs
        bool retired = false;
    };

    Instance *find(InstanceId id);
    const Instance *find(InstanceId id) const;

    void scheduleNextArrival();
    void onArrival(sim::Tick now);
    void beginService(Instance &inst, sim::Tick arrival,
                      sim::Tick now);
    void onCompletion(Instance *inst, sim::Tick arrival,
                      sim::Tick now);
    void accrueBusyTime(sim::Tick now);
    double sampleServiceMs(power::FreqMHz f);

    sim::Simulator &sim_;
    MicroserviceParams params_;
    sim::Rng rng_;

    std::vector<std::unique_ptr<Instance>> instances_;
    InstanceId nextInstance_ = 0;

    double ratePerSecond_ = 0.0;
    sim::EventId pendingArrival_ = sim::kInvalidEvent;

    // Cumulative metrics.
    sim::Percentiles allLatency_;
    std::uint64_t completed_ = 0;
    std::uint64_t violations_ = 0;
    std::uint64_t dropped_ = 0;

    // Busy-core integral (for utilization).
    sim::Tick lastBusyUpdate_ = 0;
    double busyCoreTicks_ = 0.0;
    sim::Tick startTick_ = 0;

    // Window metrics.
    WindowStats window_;
    sim::Tick windowStart_ = 0;
    double windowBusyCoreTicks_ = 0.0;
};

} // namespace workload
} // namespace soc

#endif // SOC_WORKLOAD_QUEUEING_SERVICE_HH
