#include "workload/webconf.hh"

#include <algorithm>
#include <cassert>

namespace soc
{
namespace workload
{

WebConfDeployment::WebConfDeployment(double target_util,
                                     double mem_bound_frac)
    : targetUtil_(target_util), memBoundFrac_(mem_bound_frac)
{
}

int
WebConfDeployment::addVm(int cores, double load_units)
{
    assert(cores > 0);
    vms_.push_back({cores, load_units, power::kTurboMHz});
    return static_cast<int>(vms_.size()) - 1;
}

void
WebConfDeployment::setLoad(int vm, double load_units)
{
    vms_.at(vm).loadUnits = load_units;
}

void
WebConfDeployment::setFrequency(int vm, power::FreqMHz f)
{
    vms_.at(vm).freq = f;
}

double
WebConfDeployment::utilOf(const Vm &vm, power::FreqMHz f) const
{
    // Per-core speed relative to turbo; memory-bound work does not
    // accelerate.
    const double speedup = 1.0 /
        ((1.0 - memBoundFrac_) * (power::kTurboMHz / f) +
         memBoundFrac_);
    const double util = vm.loadUnits / (vm.cores * speedup);
    return std::clamp(util, 0.0, 1.0);
}

double
WebConfDeployment::vmUtil(int vm) const
{
    const Vm &v = vms_.at(vm);
    return utilOf(v, v.freq);
}

double
WebConfDeployment::deploymentUtil() const
{
    double weighted = 0.0;
    int cores = 0;
    for (const auto &vm : vms_) {
        weighted += vm.cores * utilOf(vm, vm.freq);
        cores += vm.cores;
    }
    return cores > 0 ? weighted / cores : 0.0;
}

bool
WebConfDeployment::overclockUseful(int vm, power::FreqMHz f) const
{
    if (meetsTarget())
        return false; // goal already met: overclocking is wasted
    const Vm &v = vms_.at(vm);
    return utilOf(v, f) < utilOf(v, v.freq);
}

} // namespace workload
} // namespace soc
