/**
 * @file
 * Synthetic production-trace generator.
 *
 * Substitutes for the paper's 6 weeks of 5-minute telemetry from
 * 7.1k dedicated racks (§III).  The generator reproduces the
 * structural properties those analyses rely on:
 *
 *  - long-lived VMs with archetype-driven, week-over-week repeatable
 *    utilization (power predictability, Fig. 8);
 *  - heterogeneous VM mixes per server, so servers in a rack have
 *    diverse power profiles (Fig. 9) while the rack total is smooth
 *    (statistical multiplexing, Fig. 6);
 *  - day-to-day amplitude wobble plus rare outlier days (holidays)
 *    that stress template robustness (§IV-B).
 */

#ifndef SOC_WORKLOAD_TRACE_GENERATOR_HH
#define SOC_WORKLOAD_TRACE_GENERATOR_HH

#include <cstdint>
#include <vector>

#include "power/power_model.hh"
#include "sim/rng.hh"
#include "sim/time.hh"
#include "telemetry/time_series.hh"
#include "workload/archetype.hh"

namespace soc
{
namespace workload
{

/** One VM of a server's mix. */
struct VmMix {
    Archetype archetype;
    int cores = 4;
};

/** Generated telemetry for one server. */
struct ServerTrace {
    std::vector<VmMix> mix;
    /** Per-VM utilization series. */
    std::vector<telemetry::TimeSeries> vmUtil;
    /**
     * Per-VM power contribution at max turbo: sample i equals
     * (mix[v].cores * corePower(vmUtil[v].at(i), kTurboMHz)).count()
     * — precisely the summand of powerWatts and the hint
     * Server::setUtilsAndTurboWatts consumes, so replay never
     * re-evaluates the power model for uncapped groups.
     */
    std::vector<telemetry::TimeSeries> vmTurboWatts;
    /** Core-weighted server utilization (all cores). */
    telemetry::TimeSeries serverUtil;
    /** Server power at max turbo given serverUtil. */
    telemetry::TimeSeries powerWatts;
};

/** Knobs controlling trace realism. */
struct TraceConfig {
    sim::Tick start = 0;
    sim::Tick end = 6 * sim::kWeek;
    sim::Tick interval = sim::kSlot;
    /** Std-dev of the per-day amplitude factor (day-to-day wobble). */
    double dailyAmplitudeSigma = 0.04;
    /** Probability that a day is an outlier (e.g. holiday). */
    double outlierDayProb = 0.01;
    /** Amplitude multiplier on outlier days. */
    double outlierScale = 0.45;
    /** Probability that a day surges above its usual amplitude
     *  (e.g. a viral event) - the underprediction case that stresses
     *  prediction-based admission. */
    double surgeDayProb = 0.01;
    /** Amplitude multiplier on surge days. */
    double surgeScale = 1.30;
};

/**
 * Resumable generator state for one VM's utilization series.
 *
 * Holds a private split of the parent generator's stream plus the
 * per-day amplitude state, so the series can be produced window by
 * window: concatenating generate() calls of any sizes yields exactly
 * the samples TraceGenerator::utilSeries materializes in one shot
 * (bit-identical — same Rng copy, same draw order, including the
 * polar method's cached spare normal carried across windows).
 */
class VmUtilCursor
{
  public:
    /** Batch-fill scratch size: one day of 5-minute slots, so a
     *  same-day segment is almost always a single batch. */
    static constexpr std::size_t kBatch = sim::kSlotsPerDay;

    VmUtilCursor(sim::Rng rng, const Archetype &archetype,
                 const TraceConfig &cfg);

    /**
     * Produce the next @p n samples of the series into
     * out[0], out[stride], ..., out[(n-1)*stride] — a column of a
     * slot-major buffer when @p stride is the fleet's VM count.
     * Must not run past cfg.end (asserted).
     */
    void generate(std::size_t n, double *out, std::size_t stride);

    /** Rewind to the first sample (replays the same series). */
    void reset();

    /** Samples produced since construction / reset(). */
    std::size_t position() const { return produced_; }

  private:
    sim::Rng rng_;
    sim::Rng initialRng_;
    Archetype archetype_;
    TraceConfig cfg_;
    sim::Tick next_;
    std::size_t produced_ = 0;
    long currentDay_ = -1;
    double dayAmplitude_ = 1.0;
};

/**
 * Streaming telemetry source for one server: the windowed
 * counterpart of ServerTrace.  Each generate() call fills the next
 * window of per-VM utilization and turbo-watts columns of a
 * slot-major buffer, so replay never holds more than one window of
 * samples per rack (peak RSS scales with racks x window instead of
 * racks x horizon).  Created by TraceGenerator::serverTraceStream,
 * which consumes the parent stream exactly like serverTrace does —
 * the two are interchangeable draw-for-draw.
 */
class ServerTraceStream
{
  public:
    ServerTraceStream() = default;

    const std::vector<VmMix> &mix() const { return mix_; }
    std::size_t vms() const { return cursors_.size(); }

    /**
     * Fill the next @p n slots.  VM v's sample for the window's
     * slot i lands at util[i * stride + v] (likewise watts):
     * the caller passes pointers already offset to this server's
     * first VM column of a slot-major window with row width
     * @p stride.  Watts columns hold the per-VM turbo power
     * contribution (mix[v].cores * corePower(util, kTurboMHz)), the
     * exact summand ServerTrace::vmTurboWatts stores.
     */
    void generate(std::size_t n, double *util, double *watts,
                  std::size_t stride);

    /**
     * Compact-column counterpart of generate(): fills the next @p n
     * slots of quantized slot-major windows — uint16 fixed-point
     * utilization (sim::quantizeUtil) and float turbo-watts hints.
     * Consumes the RNG streams exactly like generate(), so the two
     * forms are interchangeable window by window; the stored sample
     * pair is (q, float(cores * corePower(dequantUtil(q), turbo))),
     * i.e. the watts hint is computed from the *dequantized*
     * utilization — exactly the summand the replay's batch server
     * update consumes, so uncapped groups never re-evaluate the
     * power model (DESIGN.md §14).
     */
    void generateQuantized(std::size_t n, std::uint16_t *util,
                           float *watts, std::size_t stride);

    /** Rewind every VM cursor to slot 0. */
    void reset();

  private:
    friend class TraceGenerator;
    std::vector<VmMix> mix_;
    const power::PowerModel *model_ = nullptr;
    std::vector<VmUtilCursor> cursors_;
};

/**
 * Deterministic trace generator; a given (seed, config) pair always
 * produces the same traces.
 */
class TraceGenerator
{
  public:
    explicit TraceGenerator(std::uint64_t seed, TraceConfig cfg = {});

    const TraceConfig &config() const { return cfg_; }

    /** Utilization series for one VM of the given archetype. */
    telemetry::TimeSeries utilSeries(const Archetype &archetype);

    /**
     * Full telemetry for a server hosting @p mix, powered per
     * @p model (power evaluated at max turbo).
     */
    ServerTrace serverTrace(const std::vector<VmMix> &mix,
                            const power::PowerModel &model);

    /**
     * Streaming counterpart of serverTrace: same parent-stream
     * consumption (one split per VM, in mix order), but samples are
     * produced lazily through ServerTraceStream::generate instead of
     * being materialized.  A run that calls serverTraceStream where
     * another called serverTrace leaves this generator in an
     * identical state, and the streamed samples are bit-identical to
     * the materialized ones.  @p model must outlive the stream.
     */
    ServerTraceStream
    serverTraceStream(const std::vector<VmMix> &mix,
                      const power::PowerModel &model);

    /**
     * A realistic multi-tenant VM mix for a server with
     * @p server_cores cores: several small (2-8 core) VMs drawn from
     * a weighted archetype catalog with randomized phases.
     */
    std::vector<VmMix> randomVmMix(int server_cores);

    /** Mix dominated by constant-high ML training (§V-A servers). */
    std::vector<VmMix> mlHeavyMix(int server_cores);

    /**
     * Sum of per-server power traces: the rack-level power series
     * used by the rack template experiments.
     */
    static telemetry::TimeSeries
    rackPower(const std::vector<ServerTrace> &servers);

  private:
    sim::Rng rng_;
    TraceConfig cfg_;
};

} // namespace workload
} // namespace soc

#endif // SOC_WORKLOAD_TRACE_GENERATOR_HH
