#include "workload/queueing_service.hh"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace soc
{
namespace workload
{

std::vector<MicroserviceParams>
socialNetCatalog()
{
    // Tuned so the characterization findings of §III hold.  Columns:
    // name, mean ms, cv, mem-bound frac, workers/VM.
    std::vector<MicroserviceParams> catalog;
    auto add = [&](const char *name, double mean_ms, double cv,
                   double mem_frac, int workers) {
        MicroserviceParams params;
        params.name = name;
        params.meanServiceMs = mean_ms;
        params.serviceCv = cv;
        params.memBoundFrac = mem_frac;
        params.workersPerVm = workers;
        catalog.push_back(params);
    };
    add("UniqueId", 3.0, 0.50, 0.10, 4);
    add("UrlShort", 5.0, 2.20, 0.15, 2);   // heavy tail: misses SLO
                                           // even at low util
    add("Text", 12.0, 0.65, 0.10, 4);
    add("Media", 25.0, 0.75, 0.55, 4);    // memory-bound
    add("Usr", 4.0, 0.40, 0.20, 8);        // tolerates high util
    add("SocialGraph", 15.0, 0.70, 0.35, 4);
    add("ComposePost", 30.0, 0.70, 0.25, 6);
    add("HomeTimeline", 20.0, 0.75, 0.40, 6);
    return catalog;
}

double
scaledServiceMs(const MicroserviceParams &params, power::FreqMHz f)
{
    const double freq_ratio = power::kTurboMHz / f;
    return params.meanServiceMs *
        ((1.0 - params.memBoundFrac) * freq_ratio +
         params.memBoundFrac);
}

double
unloadedP99Ms(const MicroserviceParams &params)
{
    const double cv = params.serviceCv;
    if (cv <= 0.0)
        return params.meanServiceMs;
    const double sigma2 = std::log(1.0 + cv * cv);
    const double mu = std::log(params.meanServiceMs) - 0.5 * sigma2;
    // z(0.99) = 2.326
    return std::exp(mu + 2.326 * std::sqrt(sigma2));
}

QueueingService::QueueingService(sim::Simulator &simulator,
                                 MicroserviceParams params,
                                 std::uint64_t seed)
    : sim_(simulator), params_(std::move(params)), rng_(seed)
{
    startTick_ = sim_.now();
    lastBusyUpdate_ = startTick_;
    windowStart_ = startTick_;
}

QueueingService::~QueueingService()
{
    if (pendingArrival_ != sim::kInvalidEvent)
        sim_.queue().cancel(pendingArrival_);
}

double
QueueingService::instanceCapacity(power::FreqMHz f) const
{
    const double service_s = scaledServiceMs(params_, f) / 1000.0;
    return params_.workersPerVm / service_s;
}

QueueingService::InstanceId
QueueingService::addInstance(power::FreqMHz freq)
{
    auto inst = std::make_unique<Instance>();
    inst->id = nextInstance_++;
    inst->freq = freq;
    instances_.push_back(std::move(inst));
    return instances_.back()->id;
}

bool
QueueingService::retireInstance()
{
    if (instanceCount() <= 1)
        return false;
    for (auto it = instances_.rbegin(); it != instances_.rend();
         ++it) {
        if (!(*it)->retired) {
            (*it)->retired = true;
            return true;
        }
    }
    return false;
}

std::size_t
QueueingService::instanceCount() const
{
    std::size_t live = 0;
    for (const auto &inst : instances_)
        if (!inst->retired)
            ++live;
    return live;
}

QueueingService::Instance *
QueueingService::find(InstanceId id)
{
    for (auto &inst : instances_)
        if (inst->id == id)
            return inst.get();
    return nullptr;
}

const QueueingService::Instance *
QueueingService::find(InstanceId id) const
{
    for (const auto &inst : instances_)
        if (inst->id == id)
            return inst.get();
    return nullptr;
}

void
QueueingService::setFrequency(InstanceId id, power::FreqMHz f)
{
    if (auto *inst = find(id))
        inst->freq = f;
}

void
QueueingService::setAllFrequencies(power::FreqMHz f)
{
    for (auto &inst : instances_)
        if (!inst->retired)
            inst->freq = f;
}

power::FreqMHz
QueueingService::frequency(InstanceId id) const
{
    const auto *inst = find(id);
    return inst != nullptr ? inst->freq : power::kTurboMHz;
}

void
QueueingService::setArrivalRate(double per_second)
{
    ratePerSecond_ = std::max(0.0, per_second);
    if (pendingArrival_ != sim::kInvalidEvent) {
        sim_.queue().cancel(pendingArrival_);
        pendingArrival_ = sim::kInvalidEvent;
    }
    if (ratePerSecond_ > 0.0)
        scheduleNextArrival();
}

void
QueueingService::scheduleNextArrival()
{
    if (ratePerSecond_ <= 0.0) {
        pendingArrival_ = sim::kInvalidEvent;
        return;
    }
    const double gap_s = rng_.exponential(1.0 / ratePerSecond_);
    const auto gap = std::max<sim::Tick>(
        1, static_cast<sim::Tick>(gap_s * sim::kSecond));
    pendingArrival_ = sim_.queue().scheduleAfter(gap,
                                                 [this](sim::Tick t) {
        pendingArrival_ = sim::kInvalidEvent;
        onArrival(t);
        scheduleNextArrival();
    });
}

void
QueueingService::onArrival(sim::Tick now)
{
    // Join-shortest-queue dispatch over live instances, measured in
    // outstanding work per worker.
    Instance *best = nullptr;
    double best_load = 0.0;
    for (auto &inst : instances_) {
        if (inst->retired)
            continue;
        const double load =
            (inst->busy + static_cast<double>(inst->queue.size())) /
            params_.workersPerVm;
        if (best == nullptr || load < best_load) {
            best = inst.get();
            best_load = load;
        }
    }
    if (best == nullptr)
        return; // no capacity deployed; drop silently

    if (best->busy < params_.workersPerVm) {
        beginService(*best, now, now);
    } else if (best->queue.size() < params_.maxQueue) {
        best->queue.push_back(now);
    } else {
        ++dropped_;
        ++window_.dropped;
        ++violations_;
        ++window_.violations;
    }
}

double
QueueingService::sampleServiceMs(power::FreqMHz f)
{
    const double mean = scaledServiceMs(params_, f);
    const double cv = params_.serviceCv;
    if (cv <= 0.0)
        return mean;
    const double sigma2 = std::log(1.0 + cv * cv);
    const double mu = std::log(mean) - 0.5 * sigma2;
    return rng_.lognormal(mu, std::sqrt(sigma2));
}

void
QueueingService::accrueBusyTime(sim::Tick now)
{
    int busy = 0;
    for (const auto &inst : instances_)
        busy += inst->busy;
    const double delta =
        static_cast<double>(now - lastBusyUpdate_) * busy;
    busyCoreTicks_ += delta;
    windowBusyCoreTicks_ += delta;
    lastBusyUpdate_ = now;
}

void
QueueingService::beginService(Instance &inst, sim::Tick arrival,
                              sim::Tick now)
{
    accrueBusyTime(now);
    ++inst.busy;
    const double service_ms = sampleServiceMs(inst.freq);
    const auto service = std::max<sim::Tick>(
        1, static_cast<sim::Tick>(service_ms * sim::kMillisecond));
    Instance *inst_ptr = &inst;
    sim_.queue().scheduleAfter(service,
                               [this, inst_ptr, arrival](sim::Tick t) {
        onCompletion(inst_ptr, arrival, t);
    });
}

void
QueueingService::onCompletion(Instance *inst, sim::Tick arrival,
                              sim::Tick now)
{
    accrueBusyTime(now);
    --inst->busy;

    const double latency_ms = static_cast<double>(now - arrival) /
        sim::kMillisecond;
    allLatency_.add(latency_ms);
    window_.latencyMs.add(latency_ms);
    ++completed_;
    ++window_.completed;
    if (latency_ms > sloMs()) {
        ++violations_;
        ++window_.violations;
    }

    if (!inst->queue.empty()) {
        const sim::Tick queued_arrival = inst->queue.front();
        inst->queue.pop_front();
        beginService(*inst, queued_arrival, now);
    }
}

double
QueueingService::instantUtilization(InstanceId id) const
{
    const auto *inst = find(id);
    if (inst == nullptr)
        return 0.0;
    return static_cast<double>(inst->busy) / params_.workersPerVm;
}

QueueingService::WindowStats
QueueingService::drainWindow()
{
    accrueBusyTime(sim_.now());
    WindowStats out = std::move(window_);
    window_ = WindowStats{};

    const sim::Tick elapsed = sim_.now() - windowStart_;
    const double worker_ticks = static_cast<double>(elapsed) *
        params_.workersPerVm *
        std::max<std::size_t>(1, instanceCount());
    out.utilization = worker_ticks > 0.0
        ? windowBusyCoreTicks_ / worker_ticks
        : 0.0;

    windowBusyCoreTicks_ = 0.0;
    windowStart_ = sim_.now();
    return out;
}

double
QueueingService::meanBusyCores() const
{
    const sim::Tick elapsed = sim_.now() - startTick_;
    if (elapsed <= 0)
        return 0.0;
    // busyCoreTicks_ lags by the time since the last update; callers
    // use this for coarse energy accounting only.
    return busyCoreTicks_ / static_cast<double>(elapsed);
}

} // namespace workload
} // namespace soc
