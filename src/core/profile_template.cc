#include "core/profile_template.hh"

#include <algorithm>
#include <cassert>
#include <limits>

#include "sim/stats.hh"

namespace soc
{
namespace core
{

std::string
strategyName(TemplateStrategy strategy)
{
    switch (strategy) {
      case TemplateStrategy::FlatMed: return "FlatMed";
      case TemplateStrategy::FlatMax: return "FlatMax";
      case TemplateStrategy::Weekly: return "Weekly";
      case TemplateStrategy::DailyMed: return "DailyMed";
      case TemplateStrategy::DailyMax: return "DailyMax";
    }
    return "unknown";
}

ProfileTemplate::ProfileTemplate() = default;

ProfileTemplate
ProfileTemplate::flat(double value)
{
    ProfileTemplate out;
    out.strategy_ = TemplateStrategy::FlatMed;
    out.flatValue_ = value;
    return out;
}

ProfileTemplate
ProfileTemplate::fromWeekly(std::vector<double> values)
{
    assert(values.size() ==
           static_cast<std::size_t>(sim::kSlotsPerWeek));
    ProfileTemplate out;
    out.strategy_ = TemplateStrategy::Weekly;
    out.weekly_ = std::move(values);
    return out;
}

void
ProfileTemplate::assignWeekly(const std::vector<double> &values)
{
    assert(values.size() ==
           static_cast<std::size_t>(sim::kSlotsPerWeek));
    strategy_ = TemplateStrategy::Weekly;
    flatValue_ = 0.0;
    weekday_.clear();
    weekend_.clear();
    weekly_ = values;
}

bool
ProfileTemplate::operator==(const ProfileTemplate &other) const
{
    return strategy_ == other.strategy_ &&
        flatValue_ == other.flatValue_ &&
        weekday_ == other.weekday_ && weekend_ == other.weekend_ &&
        weekly_ == other.weekly_;
}

ProfileTemplate
ProfileTemplate::build(TemplateStrategy strategy,
                       const telemetry::TimeSeries &history)
{
    assert(history.interval() == sim::kSlot &&
           "templates require 5-minute telemetry");
    ProfileTemplate out;
    out.strategy_ = strategy;

    const auto &values = history.values();
    if (values.empty())
        return out;

    switch (strategy) {
      case TemplateStrategy::FlatMed:
        out.flatValue_ = sim::median(values);
        return out;
      case TemplateStrategy::FlatMax:
        out.flatValue_ = *std::max_element(values.begin(),
                                           values.end());
        return out;
      case TemplateStrategy::Weekly: {
        // Replay the most recent week, aligned by slot-of-week.
        out.weekly_.assign(sim::kSlotsPerWeek, 0.0);
        std::vector<bool> filled(sim::kSlotsPerWeek, false);
        for (std::size_t i = history.size(); i-- > 0;) {
            const sim::Tick t = history.timeOf(i);
            const int slot = static_cast<int>(
                (t % sim::kWeek) / sim::kSlot);
            if (!filled[slot]) {
                out.weekly_[slot] = history.at(i);
                filled[slot] = true;
            }
        }
        // Backfill any gap with the history median.
        const double fallback = sim::median(values);
        for (int s = 0; s < sim::kSlotsPerWeek; ++s)
            if (!filled[s])
                out.weekly_[s] = fallback;
        return out;
      }
      case TemplateStrategy::DailyMed:
      case TemplateStrategy::DailyMax: {
        // Aggregate per slot-of-day, weekdays and weekends apart.
        std::vector<std::vector<double>> weekday(sim::kSlotsPerDay);
        std::vector<std::vector<double>> weekend(sim::kSlotsPerDay);
        for (std::size_t i = 0; i < history.size(); ++i) {
            const sim::Tick t = history.timeOf(i);
            auto &bucket = sim::isWeekend(t)
                ? weekend[sim::slotOfDay(t)]
                : weekday[sim::slotOfDay(t)];
            bucket.push_back(history.at(i));
        }
        const bool use_max = strategy == TemplateStrategy::DailyMax;
        auto aggregate = [use_max](std::vector<double> &bucket,
                                   double fallback) {
            if (bucket.empty())
                return fallback;
            if (use_max)
                return *std::max_element(bucket.begin(), bucket.end());
            return sim::median(bucket);
        };
        const double fallback = sim::median(values);
        out.weekday_.resize(sim::kSlotsPerDay);
        out.weekend_.resize(sim::kSlotsPerDay);
        for (int s = 0; s < sim::kSlotsPerDay; ++s) {
            out.weekday_[s] = aggregate(weekday[s], fallback);
            // Weekends fall back to the weekday value when the
            // history covers no weekend yet.
            out.weekend_[s] = aggregate(weekend[s], out.weekday_[s]);
        }
        return out;
      }
    }
    return out;
}

double
ProfileTemplate::predict(sim::Tick t) const
{
    switch (strategy_) {
      case TemplateStrategy::FlatMed:
      case TemplateStrategy::FlatMax:
        return flatValue_;
      case TemplateStrategy::Weekly: {
        if (weekly_.empty())
            return flatValue_;
        const int slot = static_cast<int>(
            ((t % sim::kWeek) + sim::kWeek) % sim::kWeek / sim::kSlot);
        return weekly_[slot];
      }
      case TemplateStrategy::DailyMed:
      case TemplateStrategy::DailyMax: {
        if (weekday_.empty())
            return flatValue_;
        const auto &day = sim::isWeekend(t) ? weekend_ : weekday_;
        return day[sim::slotOfDay(t)];
      }
    }
    return 0.0;
}

void
ProfileTemplate::fillWeek(double *out) const
{
    const auto slots = static_cast<std::size_t>(sim::kSlotsPerWeek);
    switch (strategy_) {
      case TemplateStrategy::FlatMed:
      case TemplateStrategy::FlatMax:
        std::fill(out, out + slots, flatValue_);
        return;
      case TemplateStrategy::Weekly:
        if (weekly_.empty()) {
            std::fill(out, out + slots, flatValue_);
            return;
        }
        std::copy(weekly_.begin(), weekly_.end(), out);
        return;
      case TemplateStrategy::DailyMed:
      case TemplateStrategy::DailyMax: {
        if (weekday_.empty()) {
            std::fill(out, out + slots, flatValue_);
            return;
        }
        // Monday-first week: days 5 and 6 are the weekend
        // (sim::isWeekend), matching predict's per-tick test.
        for (int day = 0; day < 7; ++day) {
            const auto &src = day >= 5 ? weekend_ : weekday_;
            std::copy(src.begin(), src.end(),
                      out + static_cast<std::size_t>(day) *
                          static_cast<std::size_t>(sim::kSlotsPerDay));
        }
        return;
      }
    }
    std::fill(out, out + slots, 0.0);
}

std::vector<double>
ProfileTemplate::predictSeries(const telemetry::TimeSeries &actual)
    const
{
    std::vector<double> out;
    out.reserve(actual.size());
    for (std::size_t i = 0; i < actual.size(); ++i)
        out.push_back(predict(actual.timeOf(i)));
    return out;
}

double
ProfileTemplate::rmseAgainst(const telemetry::TimeSeries &actual) const
{
    return sim::rmse(actual.values(), predictSeries(actual));
}

double
ProfileTemplate::biasAgainst(const telemetry::TimeSeries &actual) const
{
    return sim::meanSignedError(actual.values(),
                                predictSeries(actual));
}

double
ProfileTemplate::peak() const
{
    double best = flatValue_;
    for (double v : weekday_)
        best = std::max(best, v);
    for (double v : weekend_)
        best = std::max(best, v);
    for (double v : weekly_)
        best = std::max(best, v);
    return best;
}

double
ProfileTemplate::trough() const
{
    if (weekday_.empty() && weekend_.empty() && weekly_.empty())
        return flatValue_;
    double worst = std::numeric_limits<double>::infinity();
    for (double v : weekday_)
        worst = std::min(worst, v);
    for (double v : weekend_)
        worst = std::min(worst, v);
    for (double v : weekly_)
        worst = std::min(worst, v);
    return worst;
}

} // namespace core
} // namespace soc
