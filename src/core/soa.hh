/**
 * @file
 * Server Overclocking Agent (sOA) — §IV-B and §IV-D, Fig. 11.
 *
 * One sOA runs per server.  It:
 *
 *  - admits/denies overclocking requests against the assigned power
 *    budget and the lifetime budget (AdmissionController);
 *  - runs a prioritized frequency feedback loop every control tick
 *    to keep the server's draw within its budget while overclocked
 *    VMs ramp between turbo and the requested frequency in 100 MHz
 *    steps;
 *  - explores beyond its assigned budget in +20 W steps, retreating
 *    with exponential back-off on rack warning messages and
 *    resetting to the assigned budget on capping events
 *    (exploration/exploitation, §IV-D);
 *  - tracks per-core overclocked time-in-state, enforces the epoch
 *    overclocking budget, and reschedules overclocked VMs onto
 *    cores with remaining budget when theirs run out;
 *  - predicts power/lifetime exhaustion and signals the workload's
 *    global WI agent `exhaustionWindow` ahead so scale-out can
 *    happen before overclocking disappears (Fig. 11);
 *  - collects the power/utilization/overclock telemetry the gOA
 *    aggregates into templates and heterogeneous budgets.
 */

#ifndef SOC_CORE_SOA_HH
#define SOC_CORE_SOA_HH

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "core/admission.hh"
#include "core/budget_allocator.hh"
#include "core/lifetime.hh"
#include "core/messages.hh"
#include "core/policy.hh"
#include "core/profile_template.hh"
#include "core/slot_aggregator.hh"
#include "power/rack.hh"
#include "power/rack_manager.hh"
#include "power/server.hh"
#include "telemetry/time_series.hh"

namespace soc
{
namespace core
{

/** sOA tunables; flag combinations implement the Table I policies. */
struct SoaConfig {
    /** Feedback-loop period. */
    sim::Tick controlPeriod = 5 * sim::kSecond;
    /** threshold = budget - buffer (§IV-D feedback loop). */
    power::Watts bufferWatts{15.0};
    /** Exploration budget increment (§IV-D: e.g. 20 W). */
    power::Watts exploreStepWatts{20.0};
    /** Quiet time that must pass before raising the bonus again. */
    sim::Tick warningWindow = 30 * sim::kSecond;
    /** Exploitation phase length before re-exploring. */
    sim::Tick exploitTime = 10 * sim::kMinute;
    /** Base of the exponential back-off after a warning. */
    sim::Tick backoffBase = 1 * sim::kMinute;
    int maxBackoffExp = 4;
    /** Ceiling on the exploration bonus. */
    power::Watts maxBonusWatts{200.0};
    /** Exhaustion look-ahead (§IV-D: e.g. 15 minutes). */
    sim::Tick exhaustionWindow = 15 * sim::kMinute;
    /** Max feedback-loop frequency steps applied per control tick
     *  (the real loop runs at millisecond scale, far faster than
     *  the simulated control period). */
    int stepsPerTick = 8;

    /** Admission flags (power/lifetime checks). */
    AdmissionConfig admission;
    /** Allow exploring beyond the assigned budget. */
    bool exploreEnabled = true;
    /** React to rack warning messages while exploring. */
    bool respectWarnings = true;
    /** Enforce the power budget with the feedback loop at all. */
    bool enforceBudget = true;
    /** Oracle mode (Central): admission and enforcement use the
     *  actual rack draw instead of local budgets/predictions. */
    bool oracleMode = false;

    /** Lifetime budget: fraction of each epoch per core. */
    double overclockFraction = 0.10;
    sim::Tick budgetEpoch = sim::kWeek;
    double carryoverCap = 1.0;

    /**
     * Degraded mode (§III-Q5): once a budget lease is stale, the
     * effective budget decays linearly from the last assigned
     * prediction down to the guaranteed-safe floor over this window.
     * Enforcement never stops — it just gets conservative.
     */
    sim::Tick staleDecayTime = 10 * sim::kMinute;

    /**
     * Hint-flap hysteresis (DESIGN.md §12): after a group stops
     * overclocking, re-requests for the same group within this
     * window are denied ("flap hysteresis") before they touch
     * admission or the requested-core telemetry — a flapping WI
     * agent can neither thrash grants nor inflate apparent demand.
     * 0 (default) disables the window, preserving prior behavior.
     */
    sim::Tick flapHoldoff = 0;

    /**
     * Telemetry horizon the power/utilization templates aggregate
     * over.  0 (default) keeps the full history — bit-identical to
     * the original batch builder.  The paper-faithful setting is
     * sim::kWeek: templates from the prior week only, with older
     * samples evicted from the slot aggregators.  Must be a
     * multiple of sim::kSlot when non-zero.
     */
    sim::Tick templateWindow = 0;

    /** Build the config for one of the Table I policy variants. */
    static SoaConfig forPolicy(PolicyKind kind);
};

/** Counters exported to the evaluation harnesses. */
struct SoaStats {
    std::uint64_t requests = 0;
    std::uint64_t grants = 0;
    std::uint64_t rejects = 0;
    std::uint64_t revocations = 0;   // grants cut short
    std::uint64_t warningsHeeded = 0;
    std::uint64_t capResets = 0;
    std::uint64_t explorationsStarted = 0;
    std::uint64_t exhaustionSignals = 0;
    std::uint64_t coreReschedules = 0;
    /** Integrated overclocked core-time (lifetime consumption). */
    sim::Tick overclockedCoreTime = 0;
    /** Budget assignments received (valid or not). */
    std::uint64_t budgetAssignments = 0;
    /** Assignments rejected by validation (NaN/negative/over-limit). */
    std::uint64_t budgetRejects = 0;
    /** Crash-restarts survived (wear restored from the journal). */
    std::uint64_t crashRestarts = 0;
    /** Control ticks spent with a stale budget lease. */
    std::uint64_t staleLeaseTicks = 0;
    /** Template rebuilds actually performed (aggregator cache
     *  misses) vs requests answered from the cache. */
    std::uint64_t templateRebuilds = 0;
    std::uint64_t templateCacheHits = 0;
    /** Requests denied by the flap-hysteresis window. */
    std::uint64_t flapDenied = 0;
};

/**
 * The per-server overclocking agent.
 */
class ServerOverclockingAgent : public power::RackPowerListener
{
  public:
    /**
     * @param server      The managed server (not owned).
     * @param config      Policy/tuning knobs.
     * @param oracle_rack Rack handle for oracleMode (Central); may
     *                    be null otherwise.
     */
    ServerOverclockingAgent(power::Server &server, SoaConfig config,
                            const power::Rack *oracle_rack = nullptr);

    power::Server &server() { return server_; }
    const SoaConfig &config() const { return config_; }
    const SoaStats &stats() const { return stats_; }

    /** Receive a leaseless budget directly (bootstrap/tests); never
     *  rejected — the caller vouches for the template. */
    void assignBudget(ProfileTemplate budget);

    /**
     * Receive a budget assignment message from the gOA.  The payload
     * is validated — peak/trough must be finite, non-negative and
     * within the sender's rack limit — and invalid assignments are
     * rejected (counted in stats, reason in lastBudgetReject()),
     * keeping the previous budget and lease.
     *
     * @return true when accepted.
     */
    bool assignBudget(const BudgetAssignment &assignment,
                      sim::Tick now);

    /** Reason the most recent assignment was rejected ("" if none). */
    const std::string &lastBudgetReject() const
    {
        return lastBudgetReject_;
    }

    /** When the current budget was received (-1 before the first). */
    sim::Tick lastAssignmentAt() const { return lastAssignmentAt_; }

    /** Is the current budget's lease expired (degraded mode)? */
    bool leaseStale(sim::Tick now) const
    {
        return budgetAssigned_ && leaseUntil_ > 0 && now > leaseUntil_;
    }

    /**
     * Guaranteed-safe fallback budget (the even-split share of the
     * rack limit; every sOA staying within it keeps the rack under
     * its limit with no coordination).  Set by the gOA at
     * registration time; semantically static configuration that
     * survives crash-restarts.  0 disables the floor: stale budgets
     * then decay all the way to zero (no overclocking).
     */
    void setSafeBudgetWatts(power::Watts watts)
    {
        safeBudgetWatts_ = watts;
    }
    power::Watts safeBudgetWatts() const { return safeBudgetWatts_; }

    /**
     * Effective budget + current exploration bonus.  While the
     * lease is fresh (or leaseless) this is the assigned
     * prediction; once stale it decays toward the safe floor over
     * config().staleDecayTime.
     */
    power::Watts budgetWatts(sim::Tick now) const;

    /**
     * Install a power-sensor distortion: every read the agent takes
     * of its server's draw (feedback loop, admission, telemetry)
     * goes through @p sensor(true_watts, now).  The chaos harness
     * uses this for noise/bias injection; null restores the perfect
     * sensor.
     */
    void setPowerSensor(
        std::function<power::Watts(power::Watts, sim::Tick)> sensor)
    {
        sensor_ = std::move(sensor);
    }

    /**
     * Simulate an sOA process crash followed by an immediate
     * restart at @p now.  Volatile state is lost: in-flight grants
     * are revoked (targets fall back to turbo, as the platform
     * watchdog would enforce), exploration bonus/back-off reset, the
     * budget assignment and its lease are forgotten (the agent runs
     * on the safe floor until the gOA's next push), and telemetry
     * accumulators restart empty.  Accrued wear survives: the final
     * partial interval is charged, then the lifetime budget and
     * per-core epoch usage are rebuilt from the crash-safe wear
     * journal.
     */
    void crashRestart(sim::Tick now);

    /** Durable wear journal backing crash recovery. */
    const WearJournal &wearJournal() const { return journal_; }

    /** Current exploration bonus. */
    power::Watts explorationBonus() const { return bonusWatts_; }

    /**
     * WI-facing: request overclocking for a core group.  On grant
     * the group's target ramps toward the desired frequency under
     * the feedback loop.
     */
    AdmissionDecision
    requestOverclock(const OverclockRequest &request, sim::Tick now);

    /** WI-facing: stop overclocking a group (scale-down trigger). */
    void stopOverclock(int group_id, sim::Tick now);

    bool isOverclockActive(int group_id) const;

    /** Number of groups currently holding an overclock grant. */
    std::size_t activeOverclocks() const { return active_.size(); }

    /** Register the exhaustion-signal sink (global WI agent). */
    void
    setExhaustionCallback(
        std::function<void(const ExhaustionSignal &)> callback)
    {
        exhaustionCallback_ = std::move(callback);
    }

    /** Control tick: feedback loop, exploration, accounting. */
    void tick(sim::Tick now);

    // RackPowerListener interface.
    void onWarning(sim::Tick now) override;
    void onCapEvent(sim::Tick now) override;

    /** Telemetry collected for the gOA (5-minute slots). */
    const telemetry::TimeSeries &powerHistory() const
    {
        return powerHistory_;
    }
    const telemetry::TimeSeries &utilHistory() const
    {
        return utilHistory_;
    }
    const telemetry::TimeSeries &grantedCoreHistory() const
    {
        return grantedCoresHistory_;
    }
    const telemetry::TimeSeries &requestedCoreHistory() const
    {
        return requestedCoresHistory_;
    }

    /**
     * Build this server's profile from the collected telemetry.
     * Served from the slot aggregators: O(kSlotsPerDay) per
     * template on a cache miss, O(kSlotsPerDay) copies on a hit
     * (no history scan either way).
     */
    ServerProfile buildProfile(TemplateStrategy strategy =
                                   TemplateStrategy::DailyMed);

    /**
     * Snapshot read of this server's profile for the gOA recompute
     * (DESIGN.md §12): refreshes the own template, then serves a
     * cached ServerProfile keyed by the telemetry aggregators'
     * versions — bit-identical to buildProfile(), but recomputes
     * that land between slot closes are answered without assembling
     * (or allocating) anything, so budget recompute never contends
     * with hint ingestion for the telemetry state.
     */
    const ServerProfile &profileSnapshot(
        TemplateStrategy strategy = TemplateStrategy::DailyMed);

    /**
     * Rebuild the agent's own power template from its history; used
     * for admission look-ahead and exhaustion prediction.  The gOA
     * triggers this on its periodic recompute.  When no slot has
     * closed since the last refresh with the same strategy, the
     * cached template is kept untouched (counted in
     * stats().templateCacheHits).
     */
    void refreshOwnTemplate(TemplateStrategy strategy =
                                TemplateStrategy::DailyMed);

    /** Remaining lifetime budget (core-time) in this epoch. */
    sim::Tick lifetimeRemaining(sim::Tick now)
    {
        return lifetime_.remaining(now);
    }

    OverclockBudget &lifetimeBudget() { return lifetime_; }

    /** Per-core overclocked time-in-state tracker. */
    const TimeInState &timeInState() const { return tis_; }

  private:
    struct ActiveOverclock {
        OverclockRequest request;
        sim::Tick grantedUntil = 0;
        sim::Tick startedAt = 0;
        /** Core indices currently carrying this overclock. */
        std::vector<int> coreSet;
        bool exhaustionSignaled = false;
    };

    enum class ExploreState { Normal, Exploring, Exploiting };

    /** Frequency feedback loop against budget/bonus (§IV-D). */
    void feedbackLoop(sim::Tick now);

    /** Exploration / exploitation state machine. */
    void explorationStep(sim::Tick now);

    /** Accrue per-core time-in-state, enforce lifetime budget. */
    void lifetimeAccounting(sim::Tick now);

    /**
     * Charge the wear of @p oc over [from, until), truncated to the
     * grant's live range [startedAt, grantedUntil).  Returns the
     * charged interval length (0 if the group was not actually
     * running above turbo).
     */
    sim::Tick chargeWear(ActiveOverclock &oc, sim::Tick from,
                         sim::Tick until, sim::Tick now);

    /** Predict power/lifetime exhaustion and signal WI (§IV-D). */
    void exhaustionPrediction(sim::Tick now);

    /** Flush per-slot telemetry when a 5-minute boundary passes. */
    void telemetryCollection(sim::Tick now);

    /** Append one closed-slot sample to a history and mirror it
     *  into the series' slot aggregator. */
    static void pushSample(telemetry::TimeSeries &series,
                           SlotAggregator &aggregator, double value);

    /** Is any granted group held below its desired frequency, or
     *  was a request recently denied for lack of power budget?
     *  Either way the assigned budget is binding and exploration
     *  beyond it is warranted (§IV-D). */
    bool constrained(sim::Tick now) const;

    /** Pick cores with the most remaining per-epoch budget. */
    std::vector<int> pickCores(int count, sim::Tick now);

    /** Server draw as seen through the (possibly faulty) sensor. */
    power::Watts measuredWatts(sim::Tick now) const;

    /** Per-epoch used overclock time of a core. */
    sim::Tick coreUsed(int core, sim::Tick now);
    void rollCoreEpoch(sim::Tick now);

    void revoke(ActiveOverclock &oc, sim::Tick now,
                const char *reason);

    power::Server &server_;
    SoaConfig config_;
    const power::Rack *oracleRack_;
    AdmissionController admission_;
    OverclockBudget lifetime_;
    TimeInState tis_;

    ProfileTemplate budget_;
    bool budgetAssigned_ = false;
    /** Lease expiry of the current budget (0 = no lease). */
    sim::Tick leaseUntil_ = 0;
    sim::Tick lastAssignmentAt_ = -1;
    power::Watts safeBudgetWatts_{0.0};
    std::string lastBudgetReject_;
    ProfileTemplate ownPower_;
    bool ownTemplateValid_ = false;
    /** Aggregator version/strategy ownPower_ was assembled from. */
    std::uint64_t ownPowerVersion_ = 0;
    TemplateStrategy ownPowerStrategy_ = TemplateStrategy::DailyMed;
    std::function<power::Watts(power::Watts, sim::Tick)> sensor_;
    WearJournal journal_;

    /**
     * Ordered containers on purpose (DET-003): the feedback loop,
     * wear accounting, exhaustion signaling and telemetry sums all
     * iterate these, and priority ties, FP addition order and
     * callback order must not depend on a hash function.  active_
     * is a group-id-sorted flat vector rather than a std::map: it
     * is walked several times per control tick (feedback victim
     * scans, wear accounting, telemetry sums) and holds only a
     * handful of grants, so contiguous iteration beats node hops;
     * activeFind() keeps the map's lookup semantics.
     */
    std::vector<std::pair<int, ActiveOverclock>> active_;
    /** Iterator to the entry for @p group_id, or active_.end(). */
    std::vector<std::pair<int, ActiveOverclock>>::iterator
    activeFind(int group_id);
    /** Recently denied requests: groupId -> (cores, expiry). */
    std::map<int, std::pair<int, sim::Tick>> recentDenied_;
    /** Last stopOverclock time per group, for the flap-hysteresis
     *  window (ordered per DET-003; empty while flapHoldoff == 0). */
    std::map<int, sim::Tick> lastStopAt_;
    /** profileSnapshot cache: the assembled profile plus the
     *  (strategy, aggregator-version) key it was built under. */
    ServerProfile profileSnapshot_;
    bool profileSnapshotValid_ = false;
    TemplateStrategy profileSnapshotStrategy_ =
        TemplateStrategy::DailyMed;
    std::uint64_t profileSnapshotVersion_ = 0;
    /** Until when a power-based denial keeps the agent "constrained"
     *  for exploration purposes. */
    sim::Tick powerDenialUntil_ = 0;

    // Exploration state.
    ExploreState state_ = ExploreState::Normal;
    power::Watts bonusWatts_{0.0};
    sim::Tick stateDeadline_ = 0;
    sim::Tick nextExploreAllowed_ = 0;
    int backoffExp_ = 0;
    bool warnedThisWindow_ = false;

    // Lifetime accounting.
    std::vector<sim::Tick> coreUsedEpoch_;
    /** pickCores scratch, reused across grants (hot path). */
    std::vector<char> pickBusy_;
    std::int64_t coreEpochIndex_ = 0;
    sim::Tick lastAccounting_ = 0;
    sim::Tick allowancePerCore_ = 0;

    // Telemetry accumulation (current slot).
    telemetry::TimeSeries regularHistory_;
    telemetry::TimeSeries powerHistory_;
    telemetry::TimeSeries utilHistory_;
    telemetry::TimeSeries grantedCoresHistory_;
    telemetry::TimeSeries requestedCoresHistory_;
    // Incremental template state shadowing each history (fed one
    // sample per closed slot; templates come from here, O(slots)
    // instead of an O(history) rescan per recompute).
    SlotAggregator regularAgg_;
    SlotAggregator powerAgg_;
    SlotAggregator utilAgg_;
    SlotAggregator grantedCoresAgg_;
    SlotAggregator requestedCoresAgg_;
    std::int64_t currentSlot_ = -1;
    double slotRegularSum_ = 0.0;
    double slotPowerSum_ = 0.0;
    double slotUtilSum_ = 0.0;
    double slotGrantedSum_ = 0.0;
    double slotRequestedSum_ = 0.0;
    int slotSamples_ = 0;
    /** Requested cores seen this tick (granted or not). */
    int requestedCoresNow_ = 0;

    std::function<void(const ExhaustionSignal &)> exhaustionCallback_;
    SoaStats stats_;
};

} // namespace core
} // namespace soc

#endif // SOC_CORE_SOA_HH
