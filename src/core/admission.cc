#include "core/admission.hh"

#include <algorithm>

namespace soc
{
namespace core
{

AdmissionController::AdmissionController(const power::PowerModel &model,
                                         AdmissionConfig config)
    : model_(model), config_(config)
{
}

power::Watts
AdmissionController::surchargeWatts(const OverclockRequest &request)
    const
{
    return model_.overclockExtraPower(config_.worstCaseUtil,
                                      request.desiredMHz,
                                      request.cores);
}

sim::Tick
AdmissionController::firstPowerViolation(const AdmissionInputs &in,
                                         power::Watts extra,
                                         sim::Tick horizon) const
{
    const sim::Tick end = in.now + horizon;

    // Instantaneous check against the current budget.  Templates
    // store raw doubles (unit-agnostic telemetry); re-enter the unit
    // at the boundary.
    const power::Watts budget_now = in.budget != nullptr
        ? power::Watts{in.budget->predict(in.now)} + in.bonusWatts
        : power::Watts{0.0};
    if (in.budget != nullptr &&
        in.measuredWatts + extra > budget_now) {
        return in.now;
    }

    // Look-ahead over template slots when a server template exists.
    if (in.serverPower != nullptr && in.budget != nullptr) {
        for (sim::Tick t = in.now; t < end; t += sim::kSlot) {
            const power::Watts predicted{in.serverPower->predict(t)};
            const power::Watts budget =
                power::Watts{in.budget->predict(t)} + in.bonusWatts;
            if (predicted + extra > budget)
                return t;
        }
    }
    return end;
}

AdmissionDecision
AdmissionController::decide(const OverclockRequest &request,
                            const AdmissionInputs &in) const
{
    AdmissionDecision decision;
    decision.grantedMHz = request.desiredMHz;

    sim::Tick granted_until = in.now + request.duration;

    if (config_.checkPower && in.budget != nullptr) {
        const power::Watts extra = surchargeWatts(request);
        const sim::Tick violation =
            firstPowerViolation(in, extra, request.duration);
        if (violation <= in.now + config_.minGrant) {
            decision.granted = false;
            decision.reason = "power budget insufficient";
            return decision;
        }
        granted_until = std::min(granted_until, violation);
    }

    if (config_.checkLifetime && in.lifetime != nullptr) {
        const sim::Tick span = granted_until - in.now;
        const sim::Tick core_time =
            span * static_cast<sim::Tick>(request.cores);
        if (request.trigger == TriggerKind::Schedule) {
            if (!in.lifetime->tryReserve(core_time, in.now)) {
                decision.granted = false;
                decision.reason = "overclock budget insufficient";
                return decision;
            }
        } else {
            // Metrics-based: grant only as long as the remaining
            // budget sustains these cores.
            const sim::Tick remaining =
                in.lifetime->remaining(in.now);
            const sim::Tick sustain = request.cores > 0
                ? remaining / request.cores
                : 0;
            if (sustain < config_.minGrant) {
                decision.granted = false;
                decision.reason = "overclock budget exhausted";
                return decision;
            }
            granted_until =
                std::min(granted_until, in.now + sustain);
        }
    }

    decision.granted = true;
    decision.grantedUntil = granted_until;
    decision.reason = "ok";
    return decision;
}

} // namespace core
} // namespace soc
