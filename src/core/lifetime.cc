#include "core/lifetime.hh"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace soc
{
namespace core
{

LifetimeModel::LifetimeModel(const power::PowerModel &power,
                             LifetimeParams params)
    : power_(power), params_(params)
{
    // Reference point: a fully utilized core at max turbo ages at
    // exactly the rated rate (vendors assume near-100% usage when
    // qualifying parts, §III-Q2).
    refVolts_ = power_.voltage(power::kTurboMHz);
    refTempC_ = power_.temperature(1.0, power::kTurboMHz);
}

double
LifetimeModel::agingRate(double util, power::FreqMHz f) const
{
    util = std::clamp(util, 0.0, 1.0);
    const double activity =
        params_.utilFloor + (1.0 - params_.utilFloor) * util;
    const double volt_accel = std::exp(
        params_.betaVolts * (power_.voltage(f) - refVolts_));
    // The Celsius delta degenerates to a dimensionless exponent
    // argument here; .count() is the audited use site.
    // soclint:allow(UNIT-003)
    const double temp_accel = std::exp(
        params_.betaTemp *
        (power_.temperature(util, f) - refTempC_).count());
    return activity * volt_accel * temp_accel;
}

double
LifetimeModel::agingOver(sim::Tick span, double util,
                         power::FreqMHz f) const
{
    return agingRate(util, f) * static_cast<double>(span);
}

double
LifetimeModel::maxOverclockDuty(double util, power::FreqMHz f_oc,
                                double budget_rate) const
{
    const double base = agingRate(util, power::kTurboMHz);
    const double boosted = agingRate(util, f_oc);
    if (boosted <= base)
        return 1.0;
    const double duty = (budget_rate - base) / (boosted - base);
    return std::clamp(duty, 0.0, 1.0);
}

OverclockBudget::OverclockBudget(sim::Tick epoch, double fraction,
                                 int cores, double carryover_cap)
    : epoch_(epoch), fraction_(fraction)
{
    assert(epoch_ > 0);
    assert(fraction_ >= 0.0 && fraction_ <= 1.0);
    assert(cores > 0);
    allowance_ = static_cast<sim::Tick>(
        fraction_ * static_cast<double>(epoch_) * cores);
    carryCap_ = static_cast<sim::Tick>(
        carryover_cap * static_cast<double>(allowance_));
    available_ = allowance_;
}

void
OverclockBudget::rollTo(sim::Tick now)
{
    const std::int64_t target = now / epoch_;
    while (currentEpoch_ < target) {
        ++currentEpoch_;
        // Carry over unused (non-reserved) budget, capped.
        const sim::Tick carry =
            std::min(std::max<sim::Tick>(available_, 0), carryCap_);
        available_ = allowance_ + carry;
        // Reservations do not survive epochs: schedule-based
        // reservations are per-epoch (§IV-B).
        reserved_ = 0;
    }
}

sim::Tick
OverclockBudget::remaining(sim::Tick now)
{
    rollTo(now);
    return std::max<sim::Tick>(0, available_ - reserved_);
}

void
OverclockBudget::consume(sim::Tick core_time, sim::Tick now)
{
    rollTo(now);
    // Consumption first eats any reservation of the caller's; the
    // budget does not track per-owner reservations, so treat the
    // consumed amount as drawing down reservations first.
    const sim::Tick from_reserved = std::min(reserved_, core_time);
    reserved_ -= from_reserved;
    available_ -= core_time;
    totalConsumed_ += core_time;
    if (available_ < 0) {
        overdraft_ += -available_;
        available_ = 0;
    }
}

bool
OverclockBudget::tryReserve(sim::Tick core_time, sim::Tick now)
{
    rollTo(now);
    if (available_ - reserved_ < core_time)
        return false;
    reserved_ += core_time;
    return true;
}

void
OverclockBudget::release(sim::Tick core_time, sim::Tick now)
{
    rollTo(now);
    reserved_ = std::max<sim::Tick>(0, reserved_ - core_time);
}

sim::Tick
OverclockBudget::reserved(sim::Tick now)
{
    rollTo(now);
    return reserved_;
}

sim::Tick
OverclockBudget::timeToExhaustion(sim::Tick now, double burn_rate)
{
    rollTo(now);
    if (burn_rate <= 0.0)
        return std::numeric_limits<sim::Tick>::max();
    const sim::Tick left = remaining(now);
    return static_cast<sim::Tick>(
        static_cast<double>(left) / burn_rate);
}

WearJournal::WearJournal(int cores, sim::Tick epoch_len)
    : epochLen_(epoch_len), coreUsedLatest_(cores, 0)
{
    assert(cores > 0);
    assert(epoch_len > 0);
}

void
WearJournal::append(int core, sim::Tick core_time, sim::Tick at)
{
    assert(core >= 0 &&
           core < static_cast<int>(coreUsedLatest_.size()));
    if (core_time <= 0)
        return;
    const std::int64_t epoch = at / epochLen_;
    if (epochs_.empty() || epoch != latestEpoch_) {
        std::fill(coreUsedLatest_.begin(), coreUsedLatest_.end(), 0);
        latestEpoch_ = epoch;
    }
    if (epochs_.empty() || epochs_.back().epoch != epoch)
        epochs_.push_back({epoch, 0});
    epochs_.back().coreTime += core_time;
    coreUsedLatest_[core] += core_time;
    ++appends_;
}

sim::Tick
WearJournal::totalCoreTime() const
{
    sim::Tick total = 0;
    for (const auto &record : epochs_)
        total += record.coreTime;
    return total;
}

void
WearJournal::replay(OverclockBudget &budget,
                    std::vector<sim::Tick> &core_used,
                    sim::Tick now) const
{
    // Applying each epoch's total at that epoch's start reproduces
    // the live carry-over trajectory: the carry at each roll depends
    // only on the epoch's total consumption, not on when within the
    // epoch it happened.
    for (const auto &record : epochs_)
        budget.consume(record.coreTime, record.epoch * epochLen_);
    std::fill(core_used.begin(), core_used.end(), 0);
    if (!epochs_.empty() && latestEpoch_ == now / epochLen_) {
        for (std::size_t core = 0;
             core < core_used.size() &&
             core < coreUsedLatest_.size();
             ++core) {
            core_used[core] = coreUsedLatest_[core];
        }
    }
}

TimeInState::TimeInState(int cores)
    : accumulated_(cores, 0), sinceTick_(cores, -1)
{
    assert(cores > 0);
}

void
TimeInState::startOverclock(int core, sim::Tick now)
{
    assert(core >= 0 && core < cores());
    if (sinceTick_[core] < 0)
        sinceTick_[core] = now;
}

void
TimeInState::stopOverclock(int core, sim::Tick now)
{
    assert(core >= 0 && core < cores());
    if (sinceTick_[core] >= 0) {
        accumulated_[core] += now - sinceTick_[core];
        sinceTick_[core] = -1;
    }
}

bool
TimeInState::overclocked(int core) const
{
    assert(core >= 0 && core < cores());
    return sinceTick_[core] >= 0;
}

int
TimeInState::overclockedCores() const
{
    int count = 0;
    for (sim::Tick since : sinceTick_)
        if (since >= 0)
            ++count;
    return count;
}

sim::Tick
TimeInState::overclockedTime(int core, sim::Tick now) const
{
    assert(core >= 0 && core < cores());
    sim::Tick total = accumulated_[core];
    if (sinceTick_[core] >= 0)
        total += now - sinceTick_[core];
    return total;
}

sim::Tick
TimeInState::totalOverclockedTime(sim::Tick now) const
{
    sim::Tick total = 0;
    for (int core = 0; core < cores(); ++core)
        total += overclockedTime(core, now);
    return total;
}

} // namespace core
} // namespace soc
