/**
 * @file
 * Heterogeneous power-budget computation (§IV-C).
 *
 * The gOA combines the power and overclock templates reported by
 * each sOA and splits the rack limit per telemetry slot in three
 * phases:
 *
 *  1. separate each server's draw into regular and overclock power
 *     (the overclock-template core counts discriminate the two);
 *  2. assign each server an initial budget equal to its regular
 *     draw;
 *  3. distribute the remaining headroom proportionally to each
 *     server's historical overclock power demand.
 *
 * Worked example from the paper (two servers, 1.3 kW limit, regular
 * 400 W / 300 W, overclock demand 50 W / 100 W):
 * budgets = 400 + 50/150 * 600 = 600 W and 300 + 100/150 * 600
 * = 700 W.
 */

#ifndef SOC_CORE_BUDGET_ALLOCATOR_HH
#define SOC_CORE_BUDGET_ALLOCATOR_HH

#include <vector>

#include "core/profile_template.hh"
#include "power/power_model.hh"

namespace soc
{
namespace core
{

/** Per-server inputs to the budget computation. */
struct ServerProfile {
    /** Predicted total power draw (includes past overclocking). */
    ProfileTemplate power;
    /** Predicted CPU utilization in [0, 1]. */
    ProfileTemplate utilization;
    /** Predicted number of cores granted overclocking. */
    ProfileTemplate overclockedCores;
    /** Predicted number of cores that *requested* overclocking. */
    ProfileTemplate requestedCores;
};

/** Configuration of the split. */
struct BudgetConfig {
    /** Fraction of the limit withheld as a safety margin. */
    double safetyFraction = 0.005;
    /**
     * Overclock frequency assumed when estimating a server's
     * overclock power demand from its requested-core template.
     */
    power::FreqMHz demandFreq = power::kOverclockMHz;
};

/**
 * The gOA's budget allocator.  Stateless; one call produces a full
 * week of per-slot budgets for every server.
 */
class BudgetAllocator
{
  public:
    /**
     * Reusable working memory for splitInto.  A caller that keeps
     * one instance across recomputes (the gOA does) makes the split
     * allocation-free in steady state: the per-slot regular/demand
     * scratch and the per-server weekly buffers retain their
     * capacity between calls.
     */
    struct SplitScratch {
        std::vector<double> regular;
        std::vector<double> demand;
        std::vector<std::vector<double>> budgets;
        /** Materialized per-profile weeks (n x kSlotsPerWeek,
         *  profile-major): regular power and overclock demand,
         *  filled once per split instead of predicted per slot. */
        std::vector<double> regularRows;
        std::vector<double> demandRows;
        /** One profile's template weeks (fillWeek scratch);
         *  perCoreRow holds the surcharge model mapped over the
         *  utilization week (fillWeekMapped). */
        std::vector<double> powerRow;
        std::vector<double> perCoreRow;
        std::vector<double> ocRow;
        std::vector<double> reqRow;
    };

    BudgetAllocator(const power::PowerModel &model,
                    BudgetConfig config = {});

    /**
     * Split @p limit across servers for every slot of a week.
     *
     * @param limit    Rack power limit.
     * @param profiles One profile per server.
     * @return one weekly budget template per server, same order.
     */
    std::vector<ProfileTemplate>
    split(power::Watts limit,
          const std::vector<ServerProfile> &profiles) const;

    /**
     * Same split, writing into caller-owned buffers.  @p out is
     * resized to profiles.size(); its templates are overwritten in
     * place (assignWeekly), so repeated calls with the same scratch
     * and output vectors perform no steady-state allocation.
     * Results are identical to split().
     */
    void splitInto(power::Watts limit,
                   const std::vector<ServerProfile> &profiles,
                   SplitScratch &scratch,
                   std::vector<ProfileTemplate> &out) const;

    /**
     * Split a *per-slot* limit across members.  @p usablePerSlot
     * holds one usable-watts value per slot of the week
     * (sim::kSlotsPerWeek entries) and is consumed as-is — no
     * safety fraction is re-applied, so a hierarchy applying the
     * margin once at the top level can pass intermediate budgets
     * down unchanged (see core/budget_hierarchy.hh).  With a
     * constant row equal to limit * (1 - safetyFraction) this is
     * bit-identical to splitInto.
     */
    void splitWeeklyInto(const std::vector<double> &usablePerSlot,
                         const std::vector<ServerProfile> &profiles,
                         SplitScratch &scratch,
                         std::vector<ProfileTemplate> &out) const;

    /**
     * Regular (non-overclock) power of a server at @p t: predicted
     * total draw minus the modelled overclock surcharge of the cores
     * that were overclocked.
     */
    power::Watts regularPower(const ServerProfile &profile,
                              sim::Tick t) const;

    /**
     * Overclock power demand of a server at @p t, from the
     * requested-core template (phase 3 weights).
     */
    power::Watts overclockDemand(const ServerProfile &profile,
                                 sim::Tick t) const;

  private:
    /** Shared split loop: per-slot usable watts come from
     *  @p usablePerSlot when non-null, else @p usableFlat. */
    void splitImpl(const double *usablePerSlot, double usableFlat,
                   const std::vector<ServerProfile> &profiles,
                   SplitScratch &scratch,
                   std::vector<ProfileTemplate> &out) const;

    const power::PowerModel &model_;
    BudgetConfig config_;
};

} // namespace core
} // namespace soc

#endif // SOC_CORE_BUDGET_ALLOCATOR_HH
