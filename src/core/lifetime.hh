/**
 * @file
 * Component-lifetime management (§II, §III-Q2, §IV-B, Fig. 7).
 *
 * Three pieces:
 *
 *  - LifetimeModel: substitutes for the TSMC 7nm composite
 *    reliability model.  Aging rate is exponential in voltage and
 *    temperature (gate-oxide breakdown, refs [27],[92],[95]) and
 *    proportional to activity.  Rate 1.0 == the vendor's rated
 *    wall-clock aging at 100% utilization at max turbo; the fleet's
 *    under-utilization accrues "lifetime credits" that overclocking
 *    consumes.  Calibration anchors (§III-Q2 / Fig. 7) are recorded
 *    in DESIGN.md.
 *
 *  - OverclockBudget: the epoch-divided overclocking time budget
 *    (e.g. 10% of a 5-year horizon, split into weekly epochs with
 *    per-weekday allowances and carry-over of unused budget).
 *
 *  - TimeInState: per-core overclocked time-in-state tracking, the
 *    simulated analogue of Intel PMT / AMD HSMP counters.
 */

#ifndef SOC_CORE_LIFETIME_HH
#define SOC_CORE_LIFETIME_HH

#include <vector>

#include "power/power_model.hh"
#include "sim/time.hh"

namespace soc
{
namespace core
{

/** Calibration constants of the wear-out model. */
struct LifetimeParams {
    /** Voltage acceleration (1/V) of gate-oxide wear-out.
     *  Calibrated so the Fig. 7 anchors hold: always-overclocking a
     *  diurnal workload ages >2x wall clock, and the overclock-aware
     *  duty that meets the rated budget lands near 25%. */
    double betaVolts = 5.5;
    /** Thermal acceleration (1/degC). */
    double betaTemp = 0.02;
    /** Aging of an idle-but-powered core relative to a busy one. */
    double utilFloor = 0.10;
};

/**
 * Voltage/temperature/activity wear-out model.
 */
class LifetimeModel
{
  public:
    /**
     * @param power Hardware power model supplying V(f) and T(u, f).
     * @param params Acceleration constants.
     */
    explicit LifetimeModel(const power::PowerModel &power,
                           LifetimeParams params = {});

    const LifetimeParams &params() const { return params_; }

    /**
     * Instantaneous aging rate; 1.0 means one second of wall time
     * ages the part by one rated second.
     *
     * @param util Core utilization in [0, 1].
     * @param f    Core frequency.
     */
    double agingRate(double util, power::FreqMHz f) const;

    /**
     * Aging accumulated over @p span at constant (util, f),
     * expressed in rated time (same unit as @p span).
     */
    double agingOver(sim::Tick span, double util,
                     power::FreqMHz f) const;

    /**
     * Largest overclocking duty cycle d such that
     * d*rate(util, f_oc) + (1-d)*rate(util, turbo) <= budget_rate.
     * This is the "Overclock-aware" policy of Fig. 7.
     *
     * @return duty in [0, 1].
     */
    double maxOverclockDuty(double util, power::FreqMHz f_oc,
                            double budget_rate) const;

  private:
    const power::PowerModel &power_;
    LifetimeParams params_;
    double refVolts_;
    power::Celsius refTempC_;
};

/**
 * Epoch-divided overclocking time budget (core-time accounting).
 *
 * The total allowance is `fraction` of each epoch times the managed
 * core count; unused budget carries over to the next epoch up to
 * `carryoverCap` extra epochs' worth (§IV-B: weekend budget flows to
 * weekdays via week-long epochs, and unused budgets carry to the
 * next epoch).
 */
class OverclockBudget
{
  public:
    /**
     * @param epoch     Epoch length (the paper uses one week).
     * @param fraction  Fraction of time each core may overclock.
     * @param cores     Number of cores covered by this budget.
     * @param carryover_cap Max carried-over budget, in epochs.
     */
    OverclockBudget(sim::Tick epoch, double fraction, int cores,
                    double carryover_cap = 1.0);

    sim::Tick epoch() const { return epoch_; }
    double fraction() const { return fraction_; }

    /** Core-time allowance granted per epoch. */
    sim::Tick allowancePerEpoch() const { return allowance_; }

    /** Remaining core-time in the epoch containing @p now. */
    sim::Tick remaining(sim::Tick now);

    /**
     * Consume @p core_time of budget (cores x wall time).  Clamps
     * at zero; over-consumption indicates an enforcement bug and is
     * reported by overdraft().
     */
    void consume(sim::Tick core_time, sim::Tick now);

    /**
     * Try to reserve @p core_time ahead of time (schedule-based
     * admission).  Reservations reduce remaining() but can be
     * released if unused.
     */
    bool tryReserve(sim::Tick core_time, sim::Tick now);

    /** Return unused reserved core-time to the budget. */
    void release(sim::Tick core_time, sim::Tick now);

    /** Reserved-but-unconsumed core-time in the current epoch. */
    sim::Tick reserved(sim::Tick now);

    /**
     * Predicted time until exhaustion at @p burn_rate cores
     * overclocking continuously; returns a very large value when
     * the budget outlives the epoch at that rate.
     */
    sim::Tick timeToExhaustion(sim::Tick now, double burn_rate);

    /** Core-time consumed beyond the allowance (should stay 0). */
    sim::Tick overdraft() const { return overdraft_; }

    /** Total core-time consumed over all epochs. */
    sim::Tick totalConsumed() const { return totalConsumed_; }

  private:
    /** Roll into the epoch containing @p now, applying carry-over. */
    void rollTo(sim::Tick now);

    sim::Tick epoch_;
    double fraction_;
    sim::Tick allowance_;
    sim::Tick carryCap_;

    std::int64_t currentEpoch_ = 0;
    sim::Tick available_ = 0;
    sim::Tick reserved_ = 0;
    sim::Tick overdraft_ = 0;
    sim::Tick totalConsumed_ = 0;
};

/**
 * Crash-safe wear journal: the durable record of consumed
 * overclocking budget.  The sOA writes an entry behind every wear
 * charge — the simulated analogue of an append log on NVRAM/flash
 * that survives an agent crash.  After a crash-restart the agent
 * replays the journal to reconstruct its OverclockBudget and its
 * per-core epoch usage; everything not journaled (exploration
 * state, in-flight grants, budget leases) is lost by design.
 *
 * The journal is stored compacted — per-epoch consumption totals
 * plus the per-core breakdown of the latest epoch — which is exactly
 * the information replay needs (carry-over depends only on per-epoch
 * totals), so it stays O(epochs + cores) regardless of run length.
 */
class WearJournal
{
  public:
    /**
     * @param cores     Cores covered (width of the per-core record).
     * @param epoch_len Epoch length of the budget being journaled.
     */
    WearJournal(int cores, sim::Tick epoch_len);

    /** Record @p core consuming @p core_time of wear at @p at.
     *  Appends must be in non-decreasing time order. */
    void append(int core, sim::Tick core_time, sim::Tick at);

    /** Number of append() calls recorded (tests/diagnostics). */
    std::uint64_t appends() const { return appends_; }

    /** Total journaled core-time over all epochs. */
    sim::Tick totalCoreTime() const;

    /**
     * Crash recovery: replay the journal into a freshly constructed
     * budget and a zeroed per-core usage array, reproducing the
     * carry-over trajectory the live budget followed.  @p core_used
     * receives the usage of the epoch containing @p now (zeros when
     * the journal's last activity is from an older epoch).
     */
    void replay(OverclockBudget &budget,
                std::vector<sim::Tick> &core_used,
                sim::Tick now) const;

  private:
    struct EpochRecord {
        std::int64_t epoch = 0;
        sim::Tick coreTime = 0;
    };

    sim::Tick epochLen_;
    std::vector<EpochRecord> epochs_;
    std::vector<sim::Tick> coreUsedLatest_;
    std::int64_t latestEpoch_ = 0;
    std::uint64_t appends_ = 0;
};

/**
 * Per-core overclocked time-in-state tracker (Intel PMT analogue).
 */
class TimeInState
{
  public:
    explicit TimeInState(int cores);

    int cores() const
    {
        return static_cast<int>(sinceTick_.size());
    }

    /** Mark @p core as overclocked starting at @p now. */
    void startOverclock(int core, sim::Tick now);

    /** Mark @p core as back at/below turbo at @p now. */
    void stopOverclock(int core, sim::Tick now);

    bool overclocked(int core) const;

    /** Number of cores currently overclocked. */
    int overclockedCores() const;

    /** Accumulated overclocked time of @p core up to @p now. */
    sim::Tick overclockedTime(int core, sim::Tick now) const;

    /** Sum of overclocked core-time up to @p now. */
    sim::Tick totalOverclockedTime(sim::Tick now) const;

  private:
    std::vector<sim::Tick> accumulated_;
    std::vector<sim::Tick> sinceTick_; // -1 when not overclocked
};

} // namespace core
} // namespace soc

#endif // SOC_CORE_LIFETIME_HH
