/**
 * @file
 * Message types exchanged between the SmartOClock agents (Fig. 10):
 * WI agent -> sOA overclocking requests, sOA -> WI exhaustion and
 * rejection signals, and gOA -> sOA budget assignments.
 */

#ifndef SOC_CORE_MESSAGES_HH
#define SOC_CORE_MESSAGES_HH

#include <cstdint>
#include <string>

#include "core/profile_template.hh"
#include "power/frequency.hh"
#include "power/units.hh"
#include "sim/time.hh"

namespace soc
{
namespace core
{

/** How an overclocking request was triggered (§IV-A). */
enum class TriggerKind {
    Metrics,  ///< reactive: latency/utilization threshold crossed
    Schedule, ///< proactive: pre-declared high-traffic window
};

/**
 * Metrics a local WI agent reports for its VM (one poll window).
 * Crosses the WI hint channel as a wire::MetricsWindow frame, so
 * every consumer (GlobalWiAgent::onMetrics, the ingress parser)
 * validates it fail-closed: NaN/negative fields are rejected and
 * counted, never clamped.
 */
struct VmMetrics {
    double p99LatencyMs = 0.0;
    double meanLatencyMs = 0.0;
    /** Busy-core fraction in [0, 1]. */
    double utilization = 0.0;
    std::uint64_t completed = 0;
};

/** A schedule-based overclocking window (§IV-A), declarable over
 *  the hint channel as a wire::ScheduleDeclaration frame. */
struct ScheduleWindow {
    /** Bitmask of days, bit 0 = Monday; 0x1F = weekdays. */
    int dayMask = 0x1f;
    /** Window start/end, minutes since midnight. */
    int startMinute = 0;
    int endMinute = 0;

    bool contains(sim::Tick t) const;
};

/**
 * A request from a VM's local WI agent to its server's sOA to run
 * the VM's cores beyond turbo.
 */
struct OverclockRequest {
    /** Core group (VM) on the server. */
    int groupId = -1;
    /** Cores the VM wants overclocked. */
    int cores = 0;
    /** Desired frequency; the sOA may grant less and ramp. */
    power::FreqMHz desiredMHz = power::kOverclockMHz;
    TriggerKind trigger = TriggerKind::Metrics;
    /**
     * Requested duration.  Schedule-based requests reserve power and
     * lifetime budget for this span; metrics-based requests use it
     * as the admission horizon and are re-evaluated continuously.
     */
    sim::Tick duration = 15 * sim::kMinute;
    /** Enforcement priority (higher throttled last). */
    int priority = 1;
};

/** sOA's answer to an OverclockRequest. */
struct AdmissionDecision {
    bool granted = false;
    /** Initially granted frequency (feedback loop may raise it). */
    power::FreqMHz grantedMHz = power::kTurboMHz;
    /** Time at which the grant expires and must be re-admitted. */
    sim::Tick grantedUntil = 0;
    /** Human-readable denial/grant reason for logs and tests. */
    std::string reason;
};

/**
 * gOA -> sOA budget assignment (the weekly recompute push of
 * Fig. 10), carried as a message so the chaos harness can lose,
 * delay or corrupt it in flight.  The sOA validates the payload on
 * receipt (finite, non-negative, within the rack limit) and rejects
 * anything else, keeping its previous budget.
 */
struct BudgetAssignment {
    ProfileTemplate budget;
    /** When the gOA computed this budget. */
    sim::Tick issuedAt = 0;
    /**
     * Lease expiry.  0 means no lease: the budget stays valid until
     * replaced (the paper's steady-state behavior).  When set and
     * the lease goes stale — the gOA failed to refresh in time — the
     * sOA decays its effective budget toward the guaranteed-safe
     * even-split floor (degraded mode, §III-Q5).
     */
    sim::Tick leaseUntil = 0;
    /** Issuing rack's total power limit, for receiver-side sanity
     *  validation (one server's budget can never exceed it). */
    power::Watts rackLimitWatts{0.0};
};

/** Why an sOA predicts it cannot keep overclocking (§IV-D). */
enum class ExhaustionKind {
    PowerBudget,     ///< predicted draw will exceed power budget
    OverclockBudget, ///< per-core lifetime budget running out
};

/**
 * Proactive signal from the sOA to the global WI agent: within
 * `eta`, overclocking for this VM will no longer be possible, so
 * corrective action (scale-out) should start now.
 */
struct ExhaustionSignal {
    int groupId = -1;
    ExhaustionKind kind = ExhaustionKind::PowerBudget;
    /** Predicted time of exhaustion. */
    sim::Tick eta = 0;
};

} // namespace core
} // namespace soc

#endif // SOC_CORE_MESSAGES_HH
