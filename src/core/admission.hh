/**
 * @file
 * Prediction-based overclocking admission control (§IV-B).
 *
 * Before granting an overclocking request the sOA checks:
 *
 *  1. POWER — will the server's predicted draw plus the overclock
 *     surcharge stay within the server's (heterogeneously assigned)
 *     power budget over the requested horizon?  The surcharge is
 *     estimated at worst-case utilization, per the paper.
 *  2. LIFETIME — does the epoch's remaining overclocking core-time
 *     budget cover the request?  Schedule-based requests *reserve*
 *     budget; metrics-based requests are granted only up to the
 *     time the remaining budget can sustain.
 *
 * The controller is stateless w.r.t. the server; the sOA passes in
 * current measurements, templates, and the budget ledger so that
 * the logic stays unit-testable in isolation.
 */

#ifndef SOC_CORE_ADMISSION_HH
#define SOC_CORE_ADMISSION_HH

#include "core/lifetime.hh"
#include "core/messages.hh"
#include "core/profile_template.hh"
#include "power/power_model.hh"

namespace soc
{
namespace core
{

/** Admission knobs; the flags implement the baseline policies. */
struct AdmissionConfig {
    /** Enable the power check (off in NaiveOClock). */
    bool checkPower = true;
    /** Enable the lifetime check (off in NaiveOClock). */
    bool checkLifetime = true;
    /** Utilization assumed for the overclock surcharge (§IV-D:
     *  worst-case CPU utilization). */
    double worstCaseUtil = 0.75;
    /** Smallest useful grant; shorter grants are rejected. */
    sim::Tick minGrant = 30 * sim::kSecond;
};

/** Everything the admission decision needs to observe. */
struct AdmissionInputs {
    sim::Tick now = 0;
    /** Measured server power draw right now. */
    power::Watts measuredWatts{0.0};
    /** The server's power budget over time (assigned by the gOA).
     *  Templates are unit-agnostic storage; this one holds watts. */
    const ProfileTemplate *budget = nullptr;
    /** Exploration bonus currently added to the budget. */
    power::Watts bonusWatts{0.0};
    /** The server's own power template for look-ahead (nullable). */
    const ProfileTemplate *serverPower = nullptr;
    /** Lifetime ledger (consumed/reserved core-time). */
    OverclockBudget *lifetime = nullptr;
};

/**
 * Stateless admission logic shared by all sOA policy variants.
 */
class AdmissionController
{
  public:
    AdmissionController(const power::PowerModel &model,
                        AdmissionConfig config = {});

    const AdmissionConfig &config() const { return config_; }

    /**
     * Decide an overclocking request.
     *
     * On a granted Schedule request the lifetime budget has been
     * reserved; the caller must consume or release it.
     */
    AdmissionDecision decide(const OverclockRequest &request,
                             const AdmissionInputs &in) const;

    /** Watts the request would add at worst-case utilization. */
    power::Watts surchargeWatts(const OverclockRequest &request) const;

  private:
    /**
     * Earliest tick in [now, now+horizon) where predicted power
     * plus @p extra exceeds the budget; returns now+horizon when
     * the whole horizon fits.
     */
    sim::Tick firstPowerViolation(const AdmissionInputs &in,
                                  power::Watts extra,
                                  sim::Tick horizon) const;

    const power::PowerModel &model_;
    AdmissionConfig config_;
};

} // namespace core
} // namespace soc

#endif // SOC_CORE_ADMISSION_HH
