/**
 * @file
 * Wire format for WI hint messages (DESIGN.md §12).
 *
 * At fleet scale the gOA/sOA boundary must survive millions of VMs'
 * hints arriving malformed, late, duplicated, or in storms.  This
 * header defines the serialized frame every hint crosses that
 * boundary as, plus a fail-closed parser: a frame is either decoded
 * completely and validated field-by-field, or rejected with a
 * specific `Reject` reason — never silently clamped or partially
 * applied.
 *
 * Layout (all little-endian, fixed offsets, no padding games):
 *
 *     offset  size  field
 *     0       2     magic      0x5c0c ("SoC")
 *     2       1     version    1
 *     3       1     tag        HintKind
 *     4       2     payloadLen bytes after the header
 *     6       2     server     rack-scoped server index
 *     8       4     vmId       server-scoped VM / group id (i32)
 *     12      8     seq        per-(server,vm,kind) sequence (u64)
 *     20      8     issuedAt   sender timestamp, sim::Tick (i64)
 *     28      ...   payload    per-kind, see encode functions
 *
 * The header is intentionally header-only: `sim::HintStormGenerator`
 * lives in soc_sim, which soc_core links against (not vice versa),
 * so the generator forges frames through these same inline helpers
 * without a link dependency on soc_core.
 */

#ifndef SOC_CORE_WIRE_HH
#define SOC_CORE_WIRE_HH

#include <array>
#include <cmath>
#include <cstdint>
#include <cstring>

#include "core/messages.hh"
#include "power/frequency.hh"
#include "sim/time.hh"

namespace soc
{
namespace core
{
namespace wire
{

constexpr std::uint16_t kMagic = 0x5c0c;
constexpr std::uint8_t kVersion = 1;
constexpr std::size_t kHeaderBytes = 28;
/** Upper bound on any frame; the ingress refuses longer input. */
constexpr std::size_t kMaxFrameBytes = 64;

/** Hint kinds that cross the WI -> control-plane channel. */
enum class HintKind : std::uint8_t {
    OverclockRequest = 1,    ///< start/extend overclocking a VM
    StopRequest = 2,         ///< stop overclocking a VM
    MetricsWindow = 3,       ///< one VmMetrics poll window
    ScheduleDeclaration = 4, ///< declare a ScheduleWindow
    ExhaustionSignal = 5,    ///< sOA -> WI exhaustion forecast
};

/** Per-kind payload sizes (bytes after the header). */
constexpr std::uint16_t kOverclockPayloadBytes = 21;
constexpr std::uint16_t kStopPayloadBytes = 0;
constexpr std::uint16_t kMetricsPayloadBytes = 32;
constexpr std::uint16_t kSchedulePayloadBytes = 12;
constexpr std::uint16_t kExhaustionPayloadBytes = 9;

/** A serialized hint: fixed storage, actual length in `size`. */
struct Frame {
    std::array<std::uint8_t, kMaxFrameBytes> bytes{};
    std::size_t size = 0;

    const std::uint8_t *data() const { return bytes.data(); }
};

/**
 * Why a frame was rejected.  Ordered roughly by how early in the
 * parse the check fires; `kCount` sizes per-reason counter arrays.
 */
enum class Reject : std::uint8_t {
    None = 0,       ///< accepted
    Truncated,      ///< shorter than header, or payload cut short
    BadMagic,       ///< first two bytes are not kMagic
    BadVersion,     ///< unknown protocol version
    UnknownTag,     ///< tag is not a HintKind
    LengthMismatch, ///< payloadLen disagrees with the tag's size
    NonFinite,      ///< NaN/inf in a floating-point field
    Negative,       ///< negative count/latency/duration field
    OutOfRange,     ///< finite but outside configured WireLimits
    Stale,          ///< issuedAt too old (or from the future)
    kCount,
};

constexpr std::size_t kRejectReasons =
    static_cast<std::size_t>(Reject::kCount);

inline const char *
rejectName(Reject r)
{
    switch (r) {
    case Reject::None: return "none";
    case Reject::Truncated: return "truncated";
    case Reject::BadMagic: return "bad_magic";
    case Reject::BadVersion: return "bad_version";
    case Reject::UnknownTag: return "unknown_tag";
    case Reject::LengthMismatch: return "length_mismatch";
    case Reject::NonFinite: return "non_finite";
    case Reject::Negative: return "negative";
    case Reject::OutOfRange: return "out_of_range";
    case Reject::Stale: return "stale";
    case Reject::kCount: break;
    }
    return "invalid";
}

/**
 * Field bounds the parser enforces.  Everything finite and
 * non-negative must *also* fall inside these before a hint is
 * accepted — a lying agent claiming 10^6 cores is as rejected as a
 * NaN one.
 */
struct WireLimits {
    std::int32_t maxVmId = 1 << 20;
    std::int32_t maxCores = 1024;
    power::FreqMHz minDesiredMHz = power::kTurboMHz;
    power::FreqMHz maxDesiredMHz = power::kOverclockMHz;
    sim::Tick maxDuration = sim::kDay;
    std::int32_t maxPriority = 100;
    /** Latency fields above this are treated as lying telemetry. */
    double maxLatencyMs = 1e6;
};

// ---------------------------------------------------------------
// Byte-level put/get helpers.  All little-endian, memcpy-based so
// they are alignment- and strict-aliasing-safe; explicit casts keep
// -Wconversion quiet.
// ---------------------------------------------------------------

inline void
putU16(std::uint8_t *p, std::uint16_t v)
{
    p[0] = static_cast<std::uint8_t>(v & 0xff);
    p[1] = static_cast<std::uint8_t>((v >> 8) & 0xff);
}

inline void
putU32(std::uint8_t *p, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        p[i] = static_cast<std::uint8_t>((v >> (8 * i)) & 0xff);
}

inline void
putU64(std::uint8_t *p, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        p[i] = static_cast<std::uint8_t>((v >> (8 * i)) & 0xff);
}

inline void
putI32(std::uint8_t *p, std::int32_t v)
{
    putU32(p, static_cast<std::uint32_t>(v));
}

inline void
putI64(std::uint8_t *p, std::int64_t v)
{
    putU64(p, static_cast<std::uint64_t>(v));
}

inline void
putF64(std::uint8_t *p, double v)
{
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof bits);
    putU64(p, bits);
}

inline std::uint16_t
getU16(const std::uint8_t *p)
{
    return static_cast<std::uint16_t>(
        static_cast<std::uint16_t>(p[0]) |
        static_cast<std::uint16_t>(static_cast<std::uint16_t>(p[1])
                                   << 8));
}

inline std::uint32_t
getU32(const std::uint8_t *p)
{
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
    return v;
}

inline std::uint64_t
getU64(const std::uint8_t *p)
{
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
    return v;
}

inline std::int32_t
getI32(const std::uint8_t *p)
{
    return static_cast<std::int32_t>(getU32(p));
}

inline std::int64_t
getI64(const std::uint8_t *p)
{
    return static_cast<std::int64_t>(getU64(p));
}

inline double
getF64(const std::uint8_t *p)
{
    const std::uint64_t bits = getU64(p);
    double v = 0.0;
    std::memcpy(&v, &bits, sizeof v);
    return v;
}

// ---------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------

/** Header shared by every hint kind. */
struct HintHeader {
    HintKind kind = HintKind::OverclockRequest;
    /** Rack-scoped server index the hint concerns. */
    int server = 0;
    /** Server-scoped VM / core-group id. */
    std::int32_t vmId = 0;
    /** Per-(server, vm, kind) monotonic sequence number. */
    std::uint64_t seq = 0;
    /** Sender-stamped issue time. */
    sim::Tick issuedAt = 0;
};

inline void
encodeHeader(Frame &f, const HintHeader &h, std::uint16_t payload_len)
{
    std::uint8_t *p = f.bytes.data();
    putU16(p + 0, kMagic);
    p[2] = kVersion;
    p[3] = static_cast<std::uint8_t>(h.kind);
    putU16(p + 4, payload_len);
    putU16(p + 6, static_cast<std::uint16_t>(h.server));
    putI32(p + 8, h.vmId);
    putU64(p + 12, h.seq);
    putI64(p + 20, h.issuedAt);
    f.size = kHeaderBytes + payload_len;
}

inline Frame
encodeOverclockRequest(const HintHeader &h,
                       const OverclockRequest &req)
{
    Frame f;
    HintHeader hdr = h;
    hdr.kind = HintKind::OverclockRequest;
    encodeHeader(f, hdr, kOverclockPayloadBytes);
    std::uint8_t *p = f.bytes.data() + kHeaderBytes;
    putI32(p + 0, req.cores);
    putI32(p + 4, static_cast<std::int32_t>(req.desiredMHz.count()));
    p[8] = static_cast<std::uint8_t>(req.trigger);
    putI32(p + 9, req.priority);
    putI64(p + 13, req.duration);
    return f;
}

inline Frame
encodeStopRequest(const HintHeader &h)
{
    Frame f;
    HintHeader hdr = h;
    hdr.kind = HintKind::StopRequest;
    encodeHeader(f, hdr, kStopPayloadBytes);
    return f;
}

inline Frame
encodeMetricsWindow(const HintHeader &h, const VmMetrics &m)
{
    Frame f;
    HintHeader hdr = h;
    hdr.kind = HintKind::MetricsWindow;
    encodeHeader(f, hdr, kMetricsPayloadBytes);
    std::uint8_t *p = f.bytes.data() + kHeaderBytes;
    putF64(p + 0, m.p99LatencyMs);
    putF64(p + 8, m.meanLatencyMs);
    putF64(p + 16, m.utilization);
    putU64(p + 24, m.completed);
    return f;
}

inline Frame
encodeScheduleDeclaration(const HintHeader &h,
                          const ScheduleWindow &w)
{
    Frame f;
    HintHeader hdr = h;
    hdr.kind = HintKind::ScheduleDeclaration;
    encodeHeader(f, hdr, kSchedulePayloadBytes);
    std::uint8_t *p = f.bytes.data() + kHeaderBytes;
    putI32(p + 0, w.dayMask);
    putI32(p + 4, w.startMinute);
    putI32(p + 8, w.endMinute);
    return f;
}

inline Frame
encodeExhaustionSignal(const HintHeader &h,
                       const ExhaustionSignal &s)
{
    Frame f;
    HintHeader hdr = h;
    hdr.kind = HintKind::ExhaustionSignal;
    encodeHeader(f, hdr, kExhaustionPayloadBytes);
    std::uint8_t *p = f.bytes.data() + kHeaderBytes;
    p[0] = static_cast<std::uint8_t>(s.kind);
    putI64(p + 1, s.eta);
    return f;
}

// ---------------------------------------------------------------
// Decoding (fail-closed)
// ---------------------------------------------------------------

/**
 * A fully decoded, validated hint.  Only the member matching `kind`
 * is meaningful.  (groupId inside `request` / `exhaustion` mirrors
 * the header's vmId — the wire keeps one copy.)
 */
struct ParsedHint {
    HintKind kind = HintKind::OverclockRequest;
    int server = 0;
    std::int32_t vmId = 0;
    std::uint64_t seq = 0;
    sim::Tick issuedAt = 0;

    OverclockRequest request;
    VmMetrics metrics;
    ScheduleWindow window;
    ExhaustionSignal exhaustion;
};

inline std::uint16_t
payloadBytesFor(HintKind kind)
{
    switch (kind) {
    case HintKind::OverclockRequest: return kOverclockPayloadBytes;
    case HintKind::StopRequest: return kStopPayloadBytes;
    case HintKind::MetricsWindow: return kMetricsPayloadBytes;
    case HintKind::ScheduleDeclaration: return kSchedulePayloadBytes;
    case HintKind::ExhaustionSignal: return kExhaustionPayloadBytes;
    }
    return 0;
}

/**
 * Parse and validate one frame.  Decodes into locals, validates
 * everything, and only on full success copies into `out` — a
 * rejected frame provably mutates nothing.
 */
inline Reject
parseFrame(const std::uint8_t *data, std::size_t len,
           const WireLimits &limits, ParsedHint &out)
{
    if (len < kHeaderBytes || len > kMaxFrameBytes)
        return Reject::Truncated;
    if (getU16(data + 0) != kMagic)
        return Reject::BadMagic;
    if (data[2] != kVersion)
        return Reject::BadVersion;
    const std::uint8_t tag = data[3];
    if (tag < static_cast<std::uint8_t>(HintKind::OverclockRequest) ||
        tag > static_cast<std::uint8_t>(HintKind::ExhaustionSignal))
        return Reject::UnknownTag;
    const HintKind kind = static_cast<HintKind>(tag);
    const std::uint16_t payload_len = getU16(data + 4);
    if (payload_len != payloadBytesFor(kind))
        return Reject::LengthMismatch;
    if (len != kHeaderBytes + payload_len)
        return Reject::Truncated;

    ParsedHint h;
    h.kind = kind;
    h.server = getU16(data + 6);
    h.vmId = getI32(data + 8);
    h.seq = getU64(data + 12);
    h.issuedAt = getI64(data + 20);
    if (h.vmId < 0)
        return Reject::Negative;
    if (h.vmId > limits.maxVmId)
        return Reject::OutOfRange;
    if (h.issuedAt < 0)
        return Reject::Negative;

    const std::uint8_t *p = data + kHeaderBytes;
    switch (kind) {
    case HintKind::OverclockRequest: {
        OverclockRequest req;
        req.groupId = h.vmId;
        req.cores = getI32(p + 0);
        req.desiredMHz = power::FreqMHz{getI32(p + 4)};
        const std::uint8_t trig = p[8];
        req.priority = getI32(p + 9);
        req.duration = getI64(p + 13);
        if (req.cores < 0 || req.priority < 0 || req.duration < 0)
            return Reject::Negative;
        if (trig > static_cast<std::uint8_t>(TriggerKind::Schedule))
            return Reject::OutOfRange;
        req.trigger = static_cast<TriggerKind>(trig);
        if (req.cores == 0 || req.cores > limits.maxCores ||
            req.desiredMHz < limits.minDesiredMHz ||
            req.desiredMHz > limits.maxDesiredMHz ||
            req.duration == 0 ||
            req.duration > limits.maxDuration ||
            req.priority > limits.maxPriority)
            return Reject::OutOfRange;
        h.request = req;
        break;
    }
    case HintKind::StopRequest:
        break;
    case HintKind::MetricsWindow: {
        VmMetrics m;
        m.p99LatencyMs = getF64(p + 0);
        m.meanLatencyMs = getF64(p + 8);
        m.utilization = getF64(p + 16);
        m.completed = getU64(p + 24);
        if (!std::isfinite(m.p99LatencyMs) ||
            !std::isfinite(m.meanLatencyMs) ||
            !std::isfinite(m.utilization))
            return Reject::NonFinite;
        if (m.p99LatencyMs < 0.0 || m.meanLatencyMs < 0.0 ||
            m.utilization < 0.0)
            return Reject::Negative;
        if (m.p99LatencyMs > limits.maxLatencyMs ||
            m.meanLatencyMs > limits.maxLatencyMs ||
            m.utilization > 1.0)
            return Reject::OutOfRange;
        h.metrics = m;
        break;
    }
    case HintKind::ScheduleDeclaration: {
        ScheduleWindow w;
        w.dayMask = getI32(p + 0);
        w.startMinute = getI32(p + 4);
        w.endMinute = getI32(p + 8);
        if (w.dayMask < 0 || w.startMinute < 0 || w.endMinute < 0)
            return Reject::Negative;
        if (w.dayMask == 0 || w.dayMask > 0x7f ||
            w.startMinute >= 24 * 60 || w.endMinute > 24 * 60 ||
            w.endMinute <= w.startMinute)
            return Reject::OutOfRange;
        h.window = w;
        break;
    }
    case HintKind::ExhaustionSignal: {
        ExhaustionSignal s;
        s.groupId = h.vmId;
        const std::uint8_t ek = p[0];
        s.eta = getI64(p + 1);
        if (s.eta < 0)
            return Reject::Negative;
        if (ek > static_cast<std::uint8_t>(
                     ExhaustionKind::OverclockBudget))
            return Reject::OutOfRange;
        s.kind = static_cast<ExhaustionKind>(ek);
        h.exhaustion = s;
        break;
    }
    }

    out = h;
    return Reject::None;
}

} // namespace wire
} // namespace core
} // namespace soc

#endif // SOC_CORE_WIRE_HH
