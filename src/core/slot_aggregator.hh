/**
 * @file
 * Incremental, exact power-template maintenance (§IV-B DailyMed
 * aggregation made an always-on path).
 *
 * ProfileTemplate::build scans a server's *entire* telemetry history
 * on every call: with weekly recomputes over an unbounded history
 * the per-recompute cost grows O(t) and the whole-run cost O(t²) per
 * rack.  SlotAggregator bounds both the rebuild cost and the
 * resident footprint with a two-mode representation:
 *
 *  - **Ring mode** (small retained sets, the fleet-replay steady
 *    state): the only per-sample state is a window-bounded
 *    arrival-order ring; build(strategy) scatters it into
 *    thread-local bucket scratch and sorts at build time.  An
 *    earlier design maintained per-(weekday|weekend)×slot sorted
 *    buckets plus a global sorted bag incrementally on every add();
 *    at fleet scale that cost ~1.5 KB of resident bucket state per
 *    retained slot per server (280k+ aggregators resident),
 *    dominating the paper-scale footprint, while build() only runs
 *    at recompute boundaries — a handful of times per run.
 *  - **Indexed mode** (retention beyond kIndexThreshold slots —
 *    unbounded or multi-week windows): the ring is replayed once
 *    into the classic incremental structures (sorted bag per
 *    bucket, global sorted bag, latest-per-slot-of-week), and
 *    add()/evictions maintain them from then on, so build() stays
 *    O(slots) no matter how long the history grows — the
 *    recompute-vs-horizon bench gates this.
 *
 * Both modes assemble templates **bit-identical** to
 * ProfileTemplate::build over the retained history for all five
 * strategies — enforced by test, so the mode switch is a pure
 * representation change, never a behavior change.
 *
 * A version counter increments on every accepted sample (and every
 * eviction); build() caches the assembled template per strategy and
 * returns it untouched while the version is unchanged, which makes
 * back-to-back gOA recomputes with no newly closed slot O(1).
 *
 * An optional window (0 = unbounded, the default) evicts samples
 * older than the window behind the newest sample, bounding memory
 * and matching the paper's prior-week semantics when set to
 * sim::kWeek.  With a window W, the retained set after adding the
 * sample at tick t is exactly the samples whose slot start lies in
 * [t + kSlot - W, t] — i.e. build() equals the batch builder over
 * history.slice(end - W, end).
 */

#ifndef SOC_CORE_SLOT_AGGREGATOR_HH
#define SOC_CORE_SLOT_AGGREGATOR_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <utility>
#include <vector>

#include "core/profile_template.hh"
#include "sim/time.hh"

namespace soc
{
namespace core
{

/**
 * Exact incremental slot aggregation with per-strategy template
 * caching.  Not thread-safe; each sOA owns its aggregators, like
 * the telemetry series they shadow.  (Ring-mode assembly uses
 * thread-local scratch, so distinct aggregators may build
 * concurrently from distinct threads.)
 */
class SlotAggregator
{
  public:
    /**
     * Retained-sample count past which the aggregator switches from
     * the ring-only representation to incremental index
     * maintenance.  Three weeks: comfortably above the one-week
     * window the fleet replay uses (those aggregators never pay for
     * the index), comfortably below the multi-week histories where
     * an O(retained) rebuild would start to dominate recomputes.
     */
    static constexpr std::size_t kIndexThreshold =
        static_cast<std::size_t>(3 * sim::kSlotsPerWeek);

    /**
     * @param window Eviction horizon; 0 keeps every sample forever
     *               (bit-identical to the unbounded batch builder).
     *               Must otherwise be a positive multiple of
     *               sim::kSlot.
     */
    explicit SlotAggregator(sim::Tick window = 0);

    /**
     * Fold in the sample of the slot starting at @p t.  Ticks must
     * be strictly increasing across calls (the sOA feeds slots in
     * the order they close).  @p value must be finite: NaN/Inf
     * telemetry would corrupt the sort-based bucket aggregation
     * (ordering comparisons stop meaning anything), so it is
     * rejected here with std::invalid_argument (the aggregator is
     * left unchanged).  Same fail-at-ingestion stance as
     * BudgetAssignment validation.
     */
    void add(sim::Tick t, double value);

    /** Forget everything (sOA crash-restart). */
    void clear();

    sim::Tick window() const { return window_; }
    bool empty() const { return samples_.empty(); }
    std::size_t sampleCount() const { return samples_.size(); }

    /** Monotonic counter bumped by every add() and eviction. */
    std::uint64_t version() const { return version_; }

    /**
     * Template over the retained samples, bit-identical to
     * ProfileTemplate::build(strategy, retained history).  Cached:
     * repeated calls at an unchanged version return the same object
     * without rebuilding.
     */
    const ProfileTemplate &build(TemplateStrategy strategy) const;

    /** Cache misses so far (tests assert cache-hit behavior). */
    std::uint64_t rebuildCount() const { return rebuilds_; }

  private:
    /**
     * Sorted multiset on a vector with a lazily merged unsorted
     * tail (indexed mode only).  insert() is an O(1) append; the
     * tail is folded into the sorted body when it grows past
     * kMaxPending (amortizing the memmove-heavy sorted insertion
     * that used to cost O(bag) per sample) or when an ordered read
     * needs it.  The vectors are mutable because flushing is a pure
     * representation change: the multiset the bag denotes — and
     * thus every median()/max() — is identical before and after.
     */
    struct SortedBag {
        /** Sorted body. */
        mutable std::vector<double> values;
        /** Unsorted recent tail, bounded by kMaxPending. */
        mutable std::vector<double> pending;

        static constexpr std::size_t kMaxPending = 128;

        void insert(double v)
        {
            pending.push_back(v);
            if (pending.size() >= kMaxPending)
                flushPending();
        }
        void erase(double v);
        bool empty() const
        {
            return values.empty() && pending.empty();
        }
        /** Merge the pending tail into the sorted body.  Inline
         *  no-op when the tail is empty (template assembly reads
         *  every bucket, most of which have nothing pending). */
        void flush() const
        {
            if (!pending.empty())
                flushPending();
        }
        /** Matches sim::median bit for bit. */
        double median() const;
        /** Matches *std::max_element over the same multiset. */
        double max() const
        {
            flush();
            return values.back();
        }

      private:
        void flushPending() const;
    };

    void evictOlderThan(sim::Tick cutoff);
    /** Feed one retained sample into the indexed structures. */
    void indexSample(sim::Tick t, double value);
    /** Replay the ring into the indexed structures (mode switch). */
    void buildIndex();
    ProfileTemplate assemble(TemplateStrategy strategy) const;
    ProfileTemplate assembleFromRing(TemplateStrategy strategy) const;
    ProfileTemplate assembleFromIndex(TemplateStrategy strategy)
        const;

    sim::Tick window_;
    std::uint64_t version_ = 0;

    /** Last accepted tick (strict monotonicity check). */
    sim::Tick lastTick_ = -1;
    /** Retained samples in arrival (= tick) order — the complete
     *  per-sample state in ring mode, and the eviction log in
     *  indexed mode. */
    std::deque<std::pair<sim::Tick, double>> samples_;

    /** True once the retained set crossed kIndexThreshold and the
     *  incremental structures below took over (sticky until
     *  clear()). */
    bool indexed_ = false;
    /*
     * The indexed stores below stay unallocated until buildIndex()
     * runs, so ring-mode aggregators (all of them at fleet scale)
     * pay nothing for the indexed path.
     */
    SortedBag all_;
    std::vector<SortedBag> weekday_; // kSlotsPerDay buckets
    std::vector<SortedBag> weekend_; // kSlotsPerDay buckets
    /** Most recent retained value per slot-of-week (Weekly). */
    std::vector<double> weeklyLatest_; // kSlotsPerWeek
    /** Tick that wrote weeklyLatest_[s]; -1 when unfilled. */
    std::vector<sim::Tick> weeklyTick_; // kSlotsPerWeek

    struct CacheEntry {
        ProfileTemplate tmpl;
        std::uint64_t version = 0;
        bool valid = false;
    };
    mutable std::array<CacheEntry, 5> cache_;
    mutable std::uint64_t rebuilds_ = 0;
};

} // namespace core
} // namespace soc

#endif // SOC_CORE_SLOT_AGGREGATOR_HH
