/**
 * @file
 * Incremental, exact power-template maintenance (§IV-B DailyMed
 * aggregation made an always-on path).
 *
 * ProfileTemplate::build scans a server's *entire* telemetry history
 * on every call: with weekly recomputes over an unbounded history
 * the per-recompute cost grows O(t) and the whole-run cost O(t²) per
 * rack.  SlotAggregator maintains the same aggregates incrementally:
 * the sOA feeds it one sample per closed 5-minute slot, and it keeps
 *
 *  - one sorted bag per (weekday|weekend) × slot-of-day bucket
 *    (exact per-bucket median and max in O(1) after an O(bucket)
 *    sorted insertion),
 *  - a global sorted bag over all retained samples (the FlatMed /
 *    FlatMax values and the empty-bucket median fallback),
 *  - the most recent value per slot-of-week (the Weekly replay).
 *
 * build(strategy) then assembles a template in O(kSlotsPerDay) (or
 * O(kSlotsPerWeek) for Weekly) regardless of history length, and is
 * **bit-identical** to ProfileTemplate::build over the retained
 * history for all five strategies — enforced by test, so the
 * incremental path is a pure optimization, never a behavior change.
 *
 * A version counter increments on every accepted sample (and every
 * eviction); build() caches the assembled template per strategy and
 * returns it untouched while the version is unchanged, which makes
 * back-to-back gOA recomputes with no newly closed slot O(1).
 *
 * An optional window (0 = unbounded, the default) evicts samples
 * older than the window behind the newest sample, bounding memory
 * and matching the paper's prior-week semantics when set to
 * sim::kWeek.  With a window W, the retained set after adding the
 * sample at tick t is exactly the samples whose slot start lies in
 * [t + kSlot - W, t] — i.e. build() equals the batch builder over
 * history.slice(end - W, end).
 */

#ifndef SOC_CORE_SLOT_AGGREGATOR_HH
#define SOC_CORE_SLOT_AGGREGATOR_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <vector>

#include "core/profile_template.hh"
#include "sim/time.hh"

namespace soc
{
namespace core
{

/**
 * Exact incremental slot aggregation with per-strategy template
 * caching.  Not thread-safe; each sOA owns its aggregators, like
 * the telemetry series they shadow.
 */
class SlotAggregator
{
  public:
    /**
     * @param window Eviction horizon; 0 keeps every sample forever
     *               (bit-identical to the unbounded batch builder).
     *               Must otherwise be a positive multiple of
     *               sim::kSlot.
     */
    explicit SlotAggregator(sim::Tick window = 0);

    /**
     * Fold in the sample of the slot starting at @p t.  Ticks must
     * be strictly increasing across calls (the sOA feeds slots in
     * the order they close).  @p value must be finite: NaN/Inf
     * telemetry would corrupt the sorted buckets' ordering
     * invariant, so it is rejected here with std::invalid_argument
     * (the aggregator is left unchanged).
     */
    void add(sim::Tick t, double value);

    /** Forget everything (sOA crash-restart). */
    void clear();

    sim::Tick window() const { return window_; }
    bool empty() const { return count_ == 0; }
    std::size_t sampleCount() const
    {
        return static_cast<std::size_t>(count_);
    }

    /** Monotonic counter bumped by every add() and eviction. */
    std::uint64_t version() const { return version_; }

    /**
     * Template over the retained samples, bit-identical to
     * ProfileTemplate::build(strategy, retained history).  Cached:
     * repeated calls at an unchanged version return the same object
     * without rebuilding.
     */
    const ProfileTemplate &build(TemplateStrategy strategy) const;

    /** Cache misses so far (tests assert cache-hit behavior). */
    std::uint64_t rebuildCount() const { return rebuilds_; }

  private:
    /**
     * Sorted multiset on a vector with a lazily merged unsorted
     * tail.  insert() is an O(1) append; the tail is folded into
     * the sorted body when it grows past kMaxPending (amortizing
     * the memmove-heavy sorted insertion that used to cost O(bag)
     * per sample) or when an ordered read needs it.  The vectors
     * are mutable because flushing is a pure representation change:
     * the multiset the bag denotes — and thus every median()/max()
     * — is identical before and after.
     */
    struct SortedBag {
        /** Sorted body. */
        mutable std::vector<double> values;
        /** Unsorted recent tail, bounded by kMaxPending. */
        mutable std::vector<double> pending;

        static constexpr std::size_t kMaxPending = 128;

        void insert(double v)
        {
            pending.push_back(v);
            if (pending.size() >= kMaxPending)
                flushPending();
        }
        void erase(double v);
        bool empty() const
        {
            return values.empty() && pending.empty();
        }
        /** Merge the pending tail into the sorted body.  Inline
         *  no-op when the tail is empty (template assembly reads
         *  every bucket, most of which have nothing pending). */
        void flush() const
        {
            if (!pending.empty())
                flushPending();
        }
        /** Matches sim::median bit for bit. */
        double median() const;
        /** Matches *std::max_element over the same multiset. */
        double max() const
        {
            flush();
            return values.back();
        }

      private:
        void flushPending() const;
    };

    void evictOlderThan(sim::Tick cutoff);
    ProfileTemplate assemble(TemplateStrategy strategy) const;

    sim::Tick window_;
    std::uint64_t version_ = 0;

    /** Retained-sample count and last accepted tick (strict
     *  monotonicity check); kept separately from samples_ because
     *  the unbounded (window_ == 0) mode never evicts and so never
     *  needs the per-sample arrival log at all. */
    std::uint64_t count_ = 0;
    sim::Tick lastTick_ = -1;
    /** Retained samples in arrival (= tick) order, for eviction.
     *  Only populated when window_ > 0. */
    std::deque<std::pair<sim::Tick, double>> samples_;
    SortedBag all_;
    std::vector<SortedBag> weekday_; // kSlotsPerDay buckets
    std::vector<SortedBag> weekend_; // kSlotsPerDay buckets
    /** Most recent retained value per slot-of-week (Weekly). */
    std::vector<double> weeklyLatest_;
    /** Tick that wrote weeklyLatest_[s]; -1 when unfilled. */
    std::vector<sim::Tick> weeklyTick_;

    struct CacheEntry {
        ProfileTemplate tmpl;
        std::uint64_t version = 0;
        bool valid = false;
    };
    mutable std::array<CacheEntry, 5> cache_;
    mutable std::uint64_t rebuilds_ = 0;
};

} // namespace core
} // namespace soc

#endif // SOC_CORE_SLOT_AGGREGATOR_HH
