/**
 * @file
 * Incremental, exact power-template maintenance (§IV-B DailyMed
 * aggregation made an always-on path).
 *
 * ProfileTemplate::build scans a server's *entire* telemetry history
 * on every call: with weekly recomputes over an unbounded history
 * the per-recompute cost grows O(t) and the whole-run cost O(t²) per
 * rack.  SlotAggregator maintains the same aggregates incrementally:
 * the sOA feeds it one sample per closed 5-minute slot, and it keeps
 *
 *  - one sorted bag per (weekday|weekend) × slot-of-day bucket
 *    (exact per-bucket median and max in O(1) after an O(bucket)
 *    sorted insertion),
 *  - a global sorted bag over all retained samples (the FlatMed /
 *    FlatMax values and the empty-bucket median fallback),
 *  - the most recent value per slot-of-week (the Weekly replay).
 *
 * build(strategy) then assembles a template in O(kSlotsPerDay) (or
 * O(kSlotsPerWeek) for Weekly) regardless of history length, and is
 * **bit-identical** to ProfileTemplate::build over the retained
 * history for all five strategies — enforced by test, so the
 * incremental path is a pure optimization, never a behavior change.
 *
 * A version counter increments on every accepted sample (and every
 * eviction); build() caches the assembled template per strategy and
 * returns it untouched while the version is unchanged, which makes
 * back-to-back gOA recomputes with no newly closed slot O(1).
 *
 * An optional window (0 = unbounded, the default) evicts samples
 * older than the window behind the newest sample, bounding memory
 * and matching the paper's prior-week semantics when set to
 * sim::kWeek.  With a window W, the retained set after adding the
 * sample at tick t is exactly the samples whose slot start lies in
 * [t + kSlot - W, t] — i.e. build() equals the batch builder over
 * history.slice(end - W, end).
 */

#ifndef SOC_CORE_SLOT_AGGREGATOR_HH
#define SOC_CORE_SLOT_AGGREGATOR_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <vector>

#include "core/profile_template.hh"
#include "sim/time.hh"

namespace soc
{
namespace core
{

/**
 * Exact incremental slot aggregation with per-strategy template
 * caching.  Not thread-safe; each sOA owns its aggregators, like
 * the telemetry series they shadow.
 */
class SlotAggregator
{
  public:
    /**
     * @param window Eviction horizon; 0 keeps every sample forever
     *               (bit-identical to the unbounded batch builder).
     *               Must otherwise be a positive multiple of
     *               sim::kSlot.
     */
    explicit SlotAggregator(sim::Tick window = 0);

    /**
     * Fold in the sample of the slot starting at @p t.  Ticks must
     * be strictly increasing across calls (the sOA feeds slots in
     * the order they close).
     */
    void add(sim::Tick t, double value);

    /** Forget everything (sOA crash-restart). */
    void clear();

    sim::Tick window() const { return window_; }
    bool empty() const { return samples_.empty(); }
    std::size_t sampleCount() const { return samples_.size(); }

    /** Monotonic counter bumped by every add() and eviction. */
    std::uint64_t version() const { return version_; }

    /**
     * Template over the retained samples, bit-identical to
     * ProfileTemplate::build(strategy, retained history).  Cached:
     * repeated calls at an unchanged version return the same object
     * without rebuilding.
     */
    const ProfileTemplate &build(TemplateStrategy strategy) const;

    /** Cache misses so far (tests assert cache-hit behavior). */
    std::uint64_t rebuildCount() const { return rebuilds_; }

  private:
    /** Sorted multiset on a vector: O(bucket) insert/erase via
     *  binary search + memmove, O(1) exact median/max. */
    struct SortedBag {
        std::vector<double> values;

        void insert(double v);
        void erase(double v);
        bool empty() const { return values.empty(); }
        /** Matches sim::median bit for bit. */
        double median() const;
        /** Matches *std::max_element over the same multiset. */
        double max() const { return values.back(); }
    };

    void evictOlderThan(sim::Tick cutoff);
    ProfileTemplate assemble(TemplateStrategy strategy) const;

    sim::Tick window_;
    std::uint64_t version_ = 0;

    /** Retained samples in arrival (= tick) order, for eviction. */
    std::deque<std::pair<sim::Tick, double>> samples_;
    SortedBag all_;
    std::vector<SortedBag> weekday_; // kSlotsPerDay buckets
    std::vector<SortedBag> weekend_; // kSlotsPerDay buckets
    /** Most recent retained value per slot-of-week (Weekly). */
    std::vector<double> weeklyLatest_;
    /** Tick that wrote weeklyLatest_[s]; -1 when unfilled. */
    std::vector<sim::Tick> weeklyTick_;

    struct CacheEntry {
        ProfileTemplate tmpl;
        std::uint64_t version = 0;
        bool valid = false;
    };
    mutable std::array<CacheEntry, 5> cache_;
    mutable std::uint64_t rebuilds_ = 0;
};

} // namespace core
} // namespace soc

#endif // SOC_CORE_SLOT_AGGREGATOR_HH
