/**
 * @file
 * Power/utilization profile templates (§IV-B, Figs. 8 and 15).
 *
 * A template predicts a server's or rack's telemetry (power draw,
 * CPU utilization, overclocked-core count) at a future instant from
 * the prior week's history.  SmartOClock's production choice is
 * *DailyMed*: aggregate all weekdays of the prior week into one
 * typical day by taking the per-slot median, with a separate
 * template for weekends.  The alternative strategies evaluated in
 * Fig. 15 are implemented for comparison:
 *
 *  - FlatMed / FlatMax — constant prediction (median / max of all
 *    prior measurements);
 *  - Weekly — replay last week's series slot for slot;
 *  - DailyMed / DailyMax — per-slot median / max across the week's
 *    weekdays (weekends aggregated separately).
 */

#ifndef SOC_CORE_PROFILE_TEMPLATE_HH
#define SOC_CORE_PROFILE_TEMPLATE_HH

#include <algorithm>
#include <cstddef>
#include <string>
#include <vector>

#include "sim/time.hh"
#include "telemetry/time_series.hh"

namespace soc
{
namespace core
{

/** Template-construction strategies compared in Fig. 15. */
enum class TemplateStrategy {
    FlatMed,
    FlatMax,
    Weekly,
    DailyMed,
    DailyMax,
};

/** Printable strategy name. */
std::string strategyName(TemplateStrategy strategy);

class SlotAggregator;

/**
 * An immutable prediction function over time-of-week.
 */
class ProfileTemplate
{
  public:
    /** Zero template (predicts 0 everywhere). */
    ProfileTemplate();

    /**
     * Build a template of the given strategy from history.
     *
     * @param strategy Aggregation strategy.
     * @param history  Telemetry sampled at the 5-minute slot width;
     *                 typically the prior week(s).
     */
    static ProfileTemplate build(TemplateStrategy strategy,
                                 const telemetry::TimeSeries &history);

    /** Constant template. */
    static ProfileTemplate flat(double value);

    /**
     * Template directly from one week of per-slot values
     * (sim::kSlotsPerWeek entries, Monday 00:00 first).  Used by the
     * budget allocator to hand per-slot budgets to the sOAs.
     */
    static ProfileTemplate fromWeekly(std::vector<double> values);

    /**
     * Overwrite this template in place with one week of per-slot
     * values (same semantics as fromWeekly).  Copy-assigns into the
     * existing weekly storage, so a template that is rebuilt every
     * recompute (the budget allocator's steady state) reuses its
     * allocation instead of producing a fresh 2016-entry vector.
     */
    void assignWeekly(const std::vector<double> &values);

    TemplateStrategy strategy() const { return strategy_; }

    /** Predicted value at simulated time @p t. */
    double predict(sim::Tick t) const;

    /**
     * Write one full week of predictions into @p out
     * (sim::kSlotsPerWeek values, Monday 00:00 first), equal to
     * predict(slot * sim::kSlot) at every slot.  The bulk accessor
     * the recompute paths use: a slot loop over predict() re-derives
     * the slot-of-week from the tick 2016 times per template, which
     * dominated paper-scale boundary recomputes.
     */
    void fillWeek(double *out) const;

    /**
     * Like fillWeek, but writes fn(prediction) instead of the raw
     * prediction: out[slot] == fn(predict(slot * sim::kSlot)) for
     * every slot of the week, with @p fn invoked once per *distinct
     * stored value* and the result reused wherever that value
     * repeats.  For a pure @p fn this is exact — same double in,
     * same double out — while evaluating a DailyMed template costs
     * 576 calls instead of 2016 and a flat one costs a single call.
     * The budget allocator maps its per-core overclock surcharge
     * model over utilization templates this way; the model
     * evaluation per (server, slot) dominated recompute cost.
     */
    template <typename Fn>
    void fillWeekMapped(double *out, Fn fn) const
    {
        const auto slots =
            static_cast<std::size_t>(sim::kSlotsPerWeek);
        switch (strategy_) {
          case TemplateStrategy::FlatMed:
          case TemplateStrategy::FlatMax: {
            std::fill(out, out + slots, fn(flatValue_));
            return;
          }
          case TemplateStrategy::Weekly: {
            if (weekly_.empty()) {
                std::fill(out, out + slots, fn(flatValue_));
                return;
            }
            for (std::size_t slot = 0; slot < slots; ++slot)
                out[slot] = fn(weekly_[slot]);
            return;
          }
          case TemplateStrategy::DailyMed:
          case TemplateStrategy::DailyMax: {
            if (weekday_.empty()) {
                std::fill(out, out + slots, fn(flatValue_));
                return;
            }
            const auto day_slots =
                static_cast<std::size_t>(sim::kSlotsPerDay);
            // Map each day-shape once, then copy per day: days 5-6
            // are the weekend (sim::isWeekend), as in fillWeek.
            double *monday = out;
            for (std::size_t s = 0; s < day_slots; ++s)
                monday[s] = fn(weekday_[s]);
            for (int day = 1; day < 5; ++day)
                std::copy(monday, monday + day_slots,
                          out + day * day_slots);
            double *saturday = out + 5 * day_slots;
            for (std::size_t s = 0; s < day_slots; ++s)
                saturday[s] = fn(weekend_[s]);
            std::copy(saturday, saturday + day_slots,
                      out + 6 * day_slots);
            return;
          }
        }
        std::fill(out, out + slots, 0.0);
    }

    /** Predictions aligned with @p actual's sampling grid. */
    std::vector<double>
    predictSeries(const telemetry::TimeSeries &actual) const;

    /** Root-mean-squared prediction error against @p actual. */
    double rmseAgainst(const telemetry::TimeSeries &actual) const;

    /** Mean signed error (positive = overprediction). */
    double biasAgainst(const telemetry::TimeSeries &actual) const;

    /** Largest value the template ever predicts. */
    double peak() const;

    /** Smallest value the template ever predicts. */
    double trough() const;

    /**
     * Exact structural equality (strategy and every stored value).
     * Two templates that compare equal predict identically at every
     * tick; the incremental-maintenance tests use this to enforce
     * bit-identical agreement with the batch builder.
     */
    bool operator==(const ProfileTemplate &other) const;
    bool operator!=(const ProfileTemplate &other) const
    {
        return !(*this == other);
    }

  private:
    /** SlotAggregator mirrors build() incrementally and must fill
     *  the same representation the batch builder produces. */
    friend class SlotAggregator;
    TemplateStrategy strategy_ = TemplateStrategy::FlatMed;
    double flatValue_ = 0.0;
    /** Per slot-of-day values for weekdays (DailyMed/DailyMax). */
    std::vector<double> weekday_;
    /** Per slot-of-day values for weekends (DailyMed/DailyMax). */
    std::vector<double> weekend_;
    /** Per slot-of-week values (Weekly / fromWeekly). */
    std::vector<double> weekly_;
};

} // namespace core
} // namespace soc

#endif // SOC_CORE_PROFILE_TEMPLATE_HH
