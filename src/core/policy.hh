/**
 * @file
 * Overclocking-management policy variants compared in Table I.
 *
 *  - Central     : oracle with a global, instantaneous view of the
 *                  rack's power; admits exactly the requests that
 *                  will not cause capping.
 *  - NaiveOClock : grants every request, no budget enforcement.
 *  - NoFeedback  : SmartOClock without exploration beyond the
 *                  assigned per-server budgets.
 *  - NoWarning   : SmartOClock whose exploration ignores warning
 *                  messages (only capping events stop it).
 *  - SmartOClock : the full system.
 */

#ifndef SOC_CORE_POLICY_HH
#define SOC_CORE_POLICY_HH

#include <string>

namespace soc
{
namespace core
{

enum class PolicyKind {
    Central,
    NaiveOClock,
    NoFeedback,
    NoWarning,
    SmartOClock,
};

inline std::string
policyName(PolicyKind kind)
{
    switch (kind) {
      case PolicyKind::Central: return "Central";
      case PolicyKind::NaiveOClock: return "NaiveOClock";
      case PolicyKind::NoFeedback: return "NoFeedback";
      case PolicyKind::NoWarning: return "NoWarning";
      case PolicyKind::SmartOClock: return "SmartOClock";
    }
    return "unknown";
}

} // namespace core
} // namespace soc

#endif // SOC_CORE_POLICY_HH
