#include "core/hint_ingress.hh"

#include <algorithm>
#include <cassert>

namespace soc
{
namespace core
{

HintIngress::HintIngress(HintIngressConfig config)
    : config_(config)
{
    config_.validate();
}

std::size_t
HintIngress::depth() const
{
    return pending_.size() + draining_.size();
}

HintIngress::FlowKey
HintIngress::flowKey(const wire::ParsedHint &h)
{
    return FlowKey{h.server, h.vmId,
                   static_cast<std::uint8_t>(h.kind)};
}

HintIngress::DupKey
HintIngress::dupKey(const wire::ParsedHint &h)
{
    return DupKey{h.server, h.vmId,
                  static_cast<std::uint8_t>(h.kind), h.seq};
}

void
HintIngress::noteDepth()
{
    const std::uint64_t d = static_cast<std::uint64_t>(depth());
    if (d > stats_.maxDepth)
        stats_.maxDepth = d;
}

/**
 * Oldest-duplicate-first: scan pending_ front-to-back for the first
 * entry whose flow has >= 2 queued entries and evict it (a newer
 * hint of the same flow supersedes it).  If every flow is unique,
 * evict the overall front.  Front-to-back scan order makes the
 * choice deterministic; the supersedable-flow counter makes the
 * common no-duplicate case O(1).
 */
void
HintIngress::evictForOverflow()
{
    assert(!pending_.empty());
    std::size_t victim = 0;
    bool superseded = false;
    if (supersedableFlows_ > 0) {
        for (std::size_t i = 0; i < pending_.size(); ++i) {
            const auto it =
                flowCounts_.find(flowKey(pending_[i].hint));
            assert(it != flowCounts_.end());
            if (it->second >= 2) {
                victim = i;
                superseded = true;
                break;
            }
        }
    }

    const wire::ParsedHint &h = pending_[victim].hint;
    const auto fit = flowCounts_.find(flowKey(h));
    assert(fit != flowCounts_.end());
    if (fit->second == 2)
        --supersedableFlows_;
    if (--fit->second == 0)
        flowCounts_.erase(fit);
    const auto dit = dupCounts_.find(dupKey(h));
    if (dit != dupCounts_.end() && --dit->second == 0)
        dupCounts_.erase(dit);

    pending_.erase(pending_.begin() +
                   static_cast<std::ptrdiff_t>(victim));
    ++stats_.overflowEvictions;
    if (superseded)
        ++stats_.overflowSuperseded;
}

wire::Reject
HintIngress::offer(const std::uint8_t *data, std::size_t len,
                   sim::Tick now)
{
    ++stats_.offered;

    wire::ParsedHint hint;
    const wire::Reject reject =
        wire::parseFrame(data, len, config_.limits, hint);
    if (reject != wire::Reject::None) {
        ++stats_.parseRejects;
        ++stats_.rejectsByReason[static_cast<std::size_t>(reject)];
        return reject;
    }

    // Staleness is an ingress property (it needs "now"), not a wire
    // property: too old, or claiming to be from the future.
    if (config_.maxHintAge > 0 &&
        (hint.issuedAt > now ||
         now - hint.issuedAt > config_.maxHintAge)) {
        ++stats_.parseRejects;
        ++stats_.rejectsByReason[static_cast<std::size_t>(
            wire::Reject::Stale)];
        return wire::Reject::Stale;
    }

    // Exact duplicates (retransmits) are suppressed, not queued
    // twice.  Not a rejection: the original is still in flight.
    const auto dup = dupCounts_.find(dupKey(hint));
    if (dup != dupCounts_.end()) {
        ++stats_.duplicates;
        return wire::Reject::None;
    }

    if (pending_.size() >= config_.queueCapacity)
        evictForOverflow();

    Entry entry;
    entry.hint = hint;
    entry.stamp = nextStamp_++;
    pending_.push_back(entry);
    dupCounts_[dupKey(hint)] = 1;
    const auto fit = flowCounts_.emplace(flowKey(hint), 0u).first;
    if (++fit->second == 2)
        ++supersedableFlows_;
    ++stats_.accepted;
    noteDepth();
    return wire::Reject::None;
}

std::size_t
HintIngress::drain(sim::Tick now, const Sink &sink)
{
    (void)now;
    if (draining_.empty()) {
        // Snapshot swap: everything queued so far becomes this
        // batch; offers made while the sink runs go to the fresh
        // pending_ and wait for the next drain.
        draining_.swap(pending_);
        dupCounts_.clear();
        flowCounts_.clear();
        supersedableFlows_ = 0;
    }
    if (draining_.empty())
        return 0;

    const std::size_t limit = config_.drainMax == 0
        ? draining_.size()
        : std::min(config_.drainMax, draining_.size());

    std::size_t dispatched = 0;
    for (; dispatched < limit; ++dispatched) {
        const Entry entry = draining_.front();
        draining_.pop_front();
        ++stats_.drained;
        if (!sink(entry.hint))
            ++stats_.sinkDrops;
    }
    if (dispatched > 0)
        ++stats_.drainBatches;
    return dispatched;
}

void
HintIngress::clear()
{
    pending_.clear();
    draining_.clear();
    dupCounts_.clear();
    flowCounts_.clear();
    supersedableFlows_ = 0;
}

} // namespace core
} // namespace soc
