#include "core/goa.hh"

#include <cassert>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace soc
{
namespace core
{

GlobalOverclockingAgent::GlobalOverclockingAgent(
    power::Rack &rack, const power::PowerModel &model,
    GoaConfig config)
    : rack_(rack),
      model_(model),
      config_(config),
      allocator_(model, config.budget)
{
}

void
GlobalOverclockingAgent::addAgent(ServerOverclockingAgent *agent)
{
    if (agent == nullptr)
        throw std::invalid_argument("gOA: null sOA registered");
    if (agents_.size() >= rack_.serverCount()) {
        throw std::invalid_argument(
            "gOA: more sOAs than rack servers");
    }
    // Budget recomputes pair profile i with server i; enforce the
    // pairing at registration instead of mis-assigning later.
    if (&agent->server() != &rack_.server(agents_.size())) {
        throw std::invalid_argument(
            "gOA: sOA registered out of rack server order");
    }
    // The even split of the rack limit is safe with no coordination:
    // it is the degraded-mode floor stale leases decay toward.
    agent->setSafeBudgetWatts(
        rack_.limitWatts() /
        static_cast<double>(rack_.serverCount()));
    agents_.push_back(agent);
}

void
GlobalOverclockingAgent::assignEvenSplit()
{
    if (agents_.empty())
        throw std::logic_error("gOA: assignEvenSplit with no sOAs");
    const power::Watts share =
        rack_.limitWatts() / static_cast<double>(agents_.size());
    for (auto *agent : agents_)
        agent->assignBudget(ProfileTemplate::flat(share.count()));
    lastBudgets_.assign(agents_.size(),
                        ProfileTemplate::flat(share.count()));
}

void
GlobalOverclockingAgent::collectProfiles(
    const RecomputeFaults &faults)
{
    lastProfiles_.resize(agents_.size());
    lastProfileValid_.resize(agents_.size(), false);

    for (std::size_t i = 0; i < agents_.size(); ++i) {
        auto *agent = agents_[i];
        const int server = static_cast<int>(i);
        bool reached = true;
        if (faults.telemetryLost) {
            reached = false;
            for (int attempt = 0;
                 attempt < std::max(1, faults.telemetryAttempts);
                 ++attempt) {
                if (!faults.telemetryLost(server, attempt)) {
                    reached = true;
                    break;
                }
                ++stats_.telemetryRetries;
            }
        }
        if (reached) {
            // Snapshot read (DESIGN.md §12): the sOA serves a
            // cached profile keyed by its aggregator versions —
            // bit-identical to buildProfile(), but a recompute
            // landing between slot closes copies into the existing
            // allocation and assembles nothing, so recompute never
            // contends with hint ingestion.
            lastProfiles_[i] =
                agent->profileSnapshot(config_.strategy);
            lastProfileValid_[i] = true;
        } else if (lastProfileValid_[i]) {
            // Unreachable server: budget from its last known
            // profile rather than nothing (§III-Q5 degraded mode).
            ++stats_.staleProfiles;
        } else {
            // Never heard from this server at all; assume an idle
            // profile so the split stays conservative for it.
            ++stats_.staleProfiles;
            lastProfiles_[i] = ServerProfile{};
        }
    }
}

void
GlobalOverclockingAgent::fillAssignment(BudgetAssignment &assignment,
                                        std::size_t i,
                                        sim::Tick now) const
{
    assignment.budget = lastBudgets_[i];
    assignment.issuedAt = now;
    assignment.leaseUntil =
        config_.leaseTtl > 0 ? now + config_.leaseTtl : 0;
    assignment.rackLimitWatts = rack_.limitWatts();
}

void
GlobalOverclockingAgent::recompute(sim::Tick now)
{
    if (agents_.empty())
        throw std::logic_error("gOA: recompute with no sOAs");

    collectProfiles(RecomputeFaults{});
    allocator_.splitInto(rack_.limitWatts(), lastProfiles_,
                         splitScratch_, lastBudgets_);

    // Perfect network: apply each assignment directly through one
    // reused payload instead of materializing a pending batch.
    for (std::size_t i = 0; i < agents_.size(); ++i) {
        fillAssignment(assignScratch_, i, now);
        if (!agents_[i]->assignBudget(assignScratch_, now))
            ++stats_.assignmentsRejected;
    }
    ++recomputes_;
}

const std::vector<ServerProfile> &
GlobalOverclockingAgent::pullProfiles()
{
    if (agents_.empty())
        throw std::logic_error("gOA: pullProfiles with no sOAs");
    collectProfiles(RecomputeFaults{});
    return lastProfiles_;
}

void
GlobalOverclockingAgent::recomputeWithBudget(
    sim::Tick now, const std::vector<double> &usablePerSlot)
{
    if (agents_.empty())
        throw std::logic_error("gOA: recompute with no sOAs");
    assert(lastProfiles_.size() == agents_.size() &&
           "gOA: recomputeWithBudget before pullProfiles");
    assert(usablePerSlot.size() ==
           static_cast<std::size_t>(sim::kSlotsPerWeek));

    allocator_.splitWeeklyInto(usablePerSlot, lastProfiles_,
                               splitScratch_, lastBudgets_);
    for (std::size_t i = 0; i < agents_.size(); ++i) {
        fillAssignment(assignScratch_, i, now);
        if (!agents_[i]->assignBudget(assignScratch_, now))
            ++stats_.assignmentsRejected;
    }
    ++recomputes_;
}

void
GlobalOverclockingAgent::releaseProfiles()
{
    lastProfiles_.clear();
    lastProfiles_.shrink_to_fit();
    // The validity flags must shrink with the storage: a later
    // collectProfiles resizes both in lockstep.
    lastProfileValid_.clear();
    lastProfileValid_.shrink_to_fit();
}

std::vector<PendingAssignment>
GlobalOverclockingAgent::recompute(sim::Tick now,
                                   const RecomputeFaults &faults)
{
    if (agents_.empty())
        throw std::logic_error("gOA: recompute with no sOAs");

    collectProfiles(faults);
    allocator_.splitInto(rack_.limitWatts(), lastProfiles_,
                         splitScratch_, lastBudgets_);

    std::vector<PendingAssignment> pending;
    pending.reserve(agents_.size());
    for (std::size_t i = 0; i < agents_.size(); ++i) {
        const int server = static_cast<int>(i);
        if (faults.budgetLost && faults.budgetLost(server)) {
            ++stats_.assignmentsDropped;
            continue;
        }
        PendingAssignment out;
        out.agent = agents_[i];
        out.serverIndex = server;
        out.deliverAt = now;
        if (faults.budgetDelay) {
            const sim::Tick delay =
                std::max<sim::Tick>(0, faults.budgetDelay(server));
            if (delay > 0) {
                out.deliverAt += delay;
                ++stats_.assignmentsDelayed;
            }
        }
        fillAssignment(out.assignment, i, now);
        if (faults.budgetCorrupt) {
            switch (faults.budgetCorrupt(server)) {
              case 0:
                out.assignment.budget = ProfileTemplate::flat(
                    std::numeric_limits<double>::quiet_NaN());
                break;
              case 1:
                out.assignment.budget = ProfileTemplate::flat(-50.0);
                break;
              case 2:
                out.assignment.budget = ProfileTemplate::flat(
                    (2.0 * rack_.limitWatts()).count());
                break;
              default:
                break;
            }
        }
        pending.push_back(std::move(out));
    }
    ++recomputes_;
    return pending;
}

bool
GlobalOverclockingAgent::deliver(const PendingAssignment &pending,
                                 sim::Tick now)
{
    const bool accepted =
        pending.agent->assignBudget(pending.assignment, now);
    if (!accepted)
        ++stats_.assignmentsRejected;
    return accepted;
}

} // namespace core
} // namespace soc
