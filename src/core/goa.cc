#include "core/goa.hh"

#include <cassert>

namespace soc
{
namespace core
{

GlobalOverclockingAgent::GlobalOverclockingAgent(
    power::Rack &rack, const power::PowerModel &model,
    GoaConfig config)
    : rack_(rack),
      model_(model),
      config_(config),
      allocator_(model, config.budget)
{
}

void
GlobalOverclockingAgent::addAgent(ServerOverclockingAgent *agent)
{
    assert(agent != nullptr);
    agents_.push_back(agent);
}

void
GlobalOverclockingAgent::assignEvenSplit()
{
    assert(!agents_.empty());
    const double share =
        rack_.limitWatts() / static_cast<double>(agents_.size());
    for (auto *agent : agents_)
        agent->assignBudget(ProfileTemplate::flat(share));
    lastBudgets_.assign(agents_.size(),
                        ProfileTemplate::flat(share));
}

void
GlobalOverclockingAgent::recompute(sim::Tick now)
{
    (void)now;
    assert(!agents_.empty());

    std::vector<ServerProfile> profiles;
    profiles.reserve(agents_.size());
    for (auto *agent : agents_) {
        agent->refreshOwnTemplate(config_.strategy);
        profiles.push_back(agent->buildProfile(config_.strategy));
    }

    lastBudgets_ = allocator_.split(rack_.limitWatts(), profiles);
    for (std::size_t i = 0; i < agents_.size(); ++i)
        agents_[i]->assignBudget(lastBudgets_[i]);
    ++recomputes_;
}

} // namespace core
} // namespace soc
