#include "core/budget_allocator.hh"

#include <algorithm>
#include <cassert>

namespace soc
{
namespace core
{

BudgetAllocator::BudgetAllocator(const power::PowerModel &model,
                                 BudgetConfig config)
    : model_(model), config_(config)
{
}

power::Watts
BudgetAllocator::regularPower(const ServerProfile &profile,
                              sim::Tick t) const
{
    const power::Watts total{profile.power.predict(t)};
    const double oc_cores = profile.overclockedCores.predict(t);
    const double util = profile.utilization.predict(t);
    const power::Watts surcharge = model_.overclockExtraPower(
        util, config_.demandFreq, 1) * std::max(0.0, oc_cores);
    return std::max(power::Watts{0.0}, total - surcharge);
}

power::Watts
BudgetAllocator::overclockDemand(const ServerProfile &profile,
                                 sim::Tick t) const
{
    const double requested = profile.requestedCores.predict(t);
    const double util = profile.utilization.predict(t);
    return model_.overclockExtraPower(util, config_.demandFreq, 1) *
        std::max(0.0, requested);
}

std::vector<ProfileTemplate>
BudgetAllocator::split(power::Watts limit,
                       const std::vector<ServerProfile> &profiles)
    const
{
    SplitScratch scratch;
    std::vector<ProfileTemplate> out;
    splitInto(limit, profiles, scratch, out);
    return out;
}

void
BudgetAllocator::splitInto(power::Watts limit,
                           const std::vector<ServerProfile> &profiles,
                           SplitScratch &scratch,
                           std::vector<ProfileTemplate> &out) const
{
    // Scratch buffers feed ProfileTemplate::assignWeekly, which
    // stores raw doubles; the unit drops to a raw count only at
    // the splitImpl boundary below.
    const power::Watts usable =
        limit * (1.0 - config_.safetyFraction);
    splitImpl(nullptr, usable.count(), profiles, scratch, out);
}

void
BudgetAllocator::splitWeeklyInto(
    const std::vector<double> &usablePerSlot,
    const std::vector<ServerProfile> &profiles,
    SplitScratch &scratch,
    std::vector<ProfileTemplate> &out) const
{
    assert(usablePerSlot.size() ==
           static_cast<std::size_t>(sim::kSlotsPerWeek));
    splitImpl(usablePerSlot.data(), 0.0, profiles, scratch, out);
}

void
BudgetAllocator::splitImpl(const double *usablePerSlot,
                           double usableFlat,
                           const std::vector<ServerProfile> &profiles,
                           SplitScratch &scratch,
                           std::vector<ProfileTemplate> &out) const
{
    assert(!profiles.empty());
    const std::size_t n = profiles.size();
    const auto slots = static_cast<std::size_t>(sim::kSlotsPerWeek);

    // Per-slot scratch hoisted out of the 2016-iteration loop, and
    // per-server weekly buffers reused call to call (assign keeps
    // capacity).
    scratch.regular.assign(n, 0.0);
    scratch.demand.assign(n, 0.0);
    scratch.budgets.resize(n);
    for (auto &weekly : scratch.budgets)
        weekly.assign(sim::kSlotsPerWeek, 0.0);

    // Phase 1: materialize each profile's regular-power and
    // overclock-demand weeks up front (profile-outer, bulk
    // fillWeek), instead of 5 predict() calls per (slot, server).
    // The expressions mirror regularPower()/overclockDemand()
    // exactly — including computing the per-core surcharge once
    // from the same utilization both share — so every stored value
    // is bit-identical to the per-tick calls this replaces.  The
    // surcharge model is mapped over the utilization template with
    // fillWeekMapped: a pure function of the utilization value, so
    // evaluating it per distinct stored value (576 for DailyMed
    // instead of 2016) changes nothing, while the model evaluation
    // per (server, slot) dominated recompute cost.
    scratch.regularRows.resize(n * slots);
    scratch.demandRows.resize(n * slots);
    scratch.powerRow.resize(slots);
    scratch.perCoreRow.resize(slots);
    scratch.ocRow.resize(slots);
    scratch.reqRow.resize(slots);
    for (std::size_t i = 0; i < n; ++i) {
        profiles[i].power.fillWeek(scratch.powerRow.data());
        profiles[i].utilization.fillWeekMapped(
            scratch.perCoreRow.data(), [this](double util) {
                return model_
                    .overclockExtraPower(util, config_.demandFreq, 1)
                    .count();
            });
        profiles[i].overclockedCores.fillWeek(scratch.ocRow.data());
        profiles[i].requestedCores.fillWeek(scratch.reqRow.data());
        double *regular_row = &scratch.regularRows[i * slots];
        double *demand_row = &scratch.demandRows[i * slots];
        for (std::size_t slot = 0; slot < slots; ++slot) {
            const power::Watts per_core{scratch.perCoreRow[slot]};
            const power::Watts surcharge =
                per_core * std::max(0.0, scratch.ocRow[slot]);
            regular_row[slot] =
                std::max(power::Watts{0.0},
                         power::Watts{scratch.powerRow[slot]} -
                             surcharge)
                    .count();
            demand_row[slot] =
                (per_core * std::max(0.0, scratch.reqRow[slot]))
                    .count();
        }
    }

    for (int slot = 0; slot < sim::kSlotsPerWeek; ++slot) {
        const double usable = usablePerSlot != nullptr
            ? usablePerSlot[slot]
            : usableFlat;

        // Phase 2: regular power is the initial budget.
        double regular_sum = 0.0;
        double demand_sum = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
            scratch.regular[i] =
                scratch.regularRows[i * slots + slot];
            regular_sum += scratch.regular[i];
            scratch.demand[i] = scratch.demandRows[i * slots + slot];
            demand_sum += scratch.demand[i];
        }

        const double headroom = usable - regular_sum;
        if (headroom <= 0.0) {
            // Predicted overload even without overclocking: scale
            // regular budgets to fit so enforcement remains safe.
            const double scale =
                regular_sum > 0.0 ? usable / regular_sum : 0.0;
            for (std::size_t i = 0; i < n; ++i)
                scratch.budgets[i][slot] =
                    scratch.regular[i] * scale;
            continue;
        }

        // Phase 3: split headroom by overclock demand; with no
        // recorded demand anywhere, fall back to an even split so
        // fresh servers can still explore.
        for (std::size_t i = 0; i < n; ++i) {
            const double share = demand_sum > 0.0
                ? headroom * (scratch.demand[i] / demand_sum)
                : headroom / static_cast<double>(n);
            scratch.budgets[i][slot] = scratch.regular[i] + share;
        }
    }

    out.resize(n);
    for (std::size_t i = 0; i < n; ++i)
        out[i].assignWeekly(scratch.budgets[i]);
}

} // namespace core
} // namespace soc
