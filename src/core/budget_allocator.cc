#include "core/budget_allocator.hh"

#include <algorithm>
#include <cassert>

namespace soc
{
namespace core
{

BudgetAllocator::BudgetAllocator(const power::PowerModel &model,
                                 BudgetConfig config)
    : model_(model), config_(config)
{
}

power::Watts
BudgetAllocator::regularPower(const ServerProfile &profile,
                              sim::Tick t) const
{
    const power::Watts total{profile.power.predict(t)};
    const double oc_cores = profile.overclockedCores.predict(t);
    const double util = profile.utilization.predict(t);
    const power::Watts surcharge = model_.overclockExtraPower(
        util, config_.demandFreq, 1) * std::max(0.0, oc_cores);
    return std::max(power::Watts{0.0}, total - surcharge);
}

power::Watts
BudgetAllocator::overclockDemand(const ServerProfile &profile,
                                 sim::Tick t) const
{
    const double requested = profile.requestedCores.predict(t);
    const double util = profile.utilization.predict(t);
    return model_.overclockExtraPower(util, config_.demandFreq, 1) *
        std::max(0.0, requested);
}

std::vector<ProfileTemplate>
BudgetAllocator::split(power::Watts limit,
                       const std::vector<ServerProfile> &profiles)
    const
{
    SplitScratch scratch;
    std::vector<ProfileTemplate> out;
    splitInto(limit, profiles, scratch, out);
    return out;
}

void
BudgetAllocator::splitInto(power::Watts limit,
                           const std::vector<ServerProfile> &profiles,
                           SplitScratch &scratch,
                           std::vector<ProfileTemplate> &out) const
{
    // Scratch buffers feed ProfileTemplate::assignWeekly, which
    // stores raw doubles; leave the unit at this boundary.
    const double usable =
        limit.count() * (1.0 - config_.safetyFraction);
    splitImpl(nullptr, usable, profiles, scratch, out);
}

void
BudgetAllocator::splitWeeklyInto(
    const std::vector<double> &usablePerSlot,
    const std::vector<ServerProfile> &profiles,
    SplitScratch &scratch,
    std::vector<ProfileTemplate> &out) const
{
    assert(usablePerSlot.size() ==
           static_cast<std::size_t>(sim::kSlotsPerWeek));
    splitImpl(usablePerSlot.data(), 0.0, profiles, scratch, out);
}

void
BudgetAllocator::splitImpl(const double *usablePerSlot,
                           double usableFlat,
                           const std::vector<ServerProfile> &profiles,
                           SplitScratch &scratch,
                           std::vector<ProfileTemplate> &out) const
{
    assert(!profiles.empty());
    const std::size_t n = profiles.size();

    // Per-slot scratch hoisted out of the 2016-iteration loop, and
    // per-server weekly buffers reused call to call (assign keeps
    // capacity).
    scratch.regular.assign(n, 0.0);
    scratch.demand.assign(n, 0.0);
    scratch.budgets.resize(n);
    for (auto &weekly : scratch.budgets)
        weekly.assign(sim::kSlotsPerWeek, 0.0);

    for (int slot = 0; slot < sim::kSlotsPerWeek; ++slot) {
        const sim::Tick t =
            static_cast<sim::Tick>(slot) * sim::kSlot;
        const double usable = usablePerSlot != nullptr
            ? usablePerSlot[slot]
            : usableFlat;

        // Phase 1+2: regular power is the initial budget.
        double regular_sum = 0.0;
        double demand_sum = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
            scratch.regular[i] = regularPower(profiles[i], t).count();
            regular_sum += scratch.regular[i];
            scratch.demand[i] =
                overclockDemand(profiles[i], t).count();
            demand_sum += scratch.demand[i];
        }

        const double headroom = usable - regular_sum;
        if (headroom <= 0.0) {
            // Predicted overload even without overclocking: scale
            // regular budgets to fit so enforcement remains safe.
            const double scale =
                regular_sum > 0.0 ? usable / regular_sum : 0.0;
            for (std::size_t i = 0; i < n; ++i)
                scratch.budgets[i][slot] =
                    scratch.regular[i] * scale;
            continue;
        }

        // Phase 3: split headroom by overclock demand; with no
        // recorded demand anywhere, fall back to an even split so
        // fresh servers can still explore.
        for (std::size_t i = 0; i < n; ++i) {
            const double share = demand_sum > 0.0
                ? headroom * (scratch.demand[i] / demand_sum)
                : headroom / static_cast<double>(n);
            scratch.budgets[i][slot] = scratch.regular[i] + share;
        }
    }

    out.resize(n);
    for (std::size_t i = 0; i < n; ++i)
        out[i].assignWeekly(scratch.budgets[i]);
}

} // namespace core
} // namespace soc
