/**
 * @file
 * Bounded, batched hint ingestion boundary (DESIGN.md §12).
 *
 * `HintIngress` sits between the WI agents and the gOA/sOA control
 * loop.  Hints arrive as serialized `wire` frames, are parsed
 * fail-closed (every rejection attributed to a `wire::Reject`
 * counter, zero state mutation), deduplicated, and enqueued into a
 * fixed-capacity queue with an explicit, deterministic drop policy.
 * The control loop drains hints in batches from a snapshot, so
 * ingestion never blocks — or reorders — a recompute in flight.
 *
 * Determinism: the queue is plain FIFO storage plus ordered-map
 * bookkeeping; given the same offer sequence it accepts, drops and
 * drains the same hints in the same order regardless of how many
 * worker threads the surrounding sim uses (each rack owns its own
 * ingress, and racks are merged in rack order).
 *
 * Drop policy on overflow (oldest-duplicate-first): evict the
 * front-most queued entry belonging to any flow (server, vm, kind)
 * with at least two entries queued — the newer entry supersedes it —
 * otherwise evict the queue front (oldest overall).  Ties are broken
 * by queue position, which is seed-stable.
 */

#ifndef SOC_CORE_HINT_INGRESS_HH
#define SOC_CORE_HINT_INGRESS_HH

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <stdexcept>
#include <tuple>

#include "core/wire.hh"
#include "sim/time.hh"

namespace soc
{
namespace core
{

/** Tunables for one ingress instance (typically one per rack). */
struct HintIngressConfig {
    /** Master switch; disabled ingress rejects nothing and the sims
     *  keep their direct call path, preserving seed behavior. */
    bool enabled = false;

    /** Fixed queue capacity; offers beyond it trigger the drop
     *  policy, they never grow the queue. */
    std::size_t queueCapacity = 4096;

    /** Max hints dispatched per drain() call; 0 = drain the whole
     *  snapshot.  Bounds the control loop's per-step work under a
     *  storm (explicit backpressure). */
    std::size_t drainMax = 0;

    /**
     * Hysteresis window the sims copy into SoaConfig::flapHoldoff:
     * after a VM stops overclocking, re-requests within this window
     * are denied (rate-limits per-VM hint flapping).
     */
    sim::Tick flapHoldoff = 0;

    /**
     * Reject hints whose issuedAt is older than this relative to
     * the offer time, or from the future; 0 disables the check.
     */
    sim::Tick maxHintAge = 0;

    /** Field bounds enforced by the fail-closed parser. */
    wire::WireLimits limits;

    void
    validate() const
    {
        if (queueCapacity == 0)
            throw std::invalid_argument(
                "HintIngressConfig: queueCapacity must be > 0");
        if (flapHoldoff < 0 || maxHintAge < 0)
            throw std::invalid_argument(
                "HintIngressConfig: negative window");
    }
};

/** Counters for the evaluation harnesses; merged in rack order. */
struct IngressStats {
    /** Frames offered, valid or not. */
    std::uint64_t offered = 0;
    /** Frames that passed parsing and were enqueued. */
    std::uint64_t accepted = 0;
    /** Frames rejected by the parser (sum of rejectsByReason). */
    std::uint64_t parseRejects = 0;
    /** Per-reason rejection counters, indexed by wire::Reject. */
    std::array<std::uint64_t, wire::kRejectReasons> rejectsByReason{};
    /** Exact duplicates (same server/vm/kind/seq) suppressed. */
    std::uint64_t duplicates = 0;
    /** Queue-overflow evictions, total. */
    std::uint64_t overflowEvictions = 0;
    /** ...of which evicted an older entry of the same flow. */
    std::uint64_t overflowSuperseded = 0;
    /** Hints dropped by the drain sink (e.g. unknown server). */
    std::uint64_t sinkDrops = 0;
    /** Hints dispatched to the sink. */
    std::uint64_t drained = 0;
    /** drain() calls that dispatched at least one hint. */
    std::uint64_t drainBatches = 0;
    /** High-water mark of the pending queue. */
    std::uint64_t maxDepth = 0;

    void
    merge(const IngressStats &other)
    {
        offered += other.offered;
        accepted += other.accepted;
        parseRejects += other.parseRejects;
        for (std::size_t i = 0; i < rejectsByReason.size(); ++i)
            rejectsByReason[i] += other.rejectsByReason[i];
        duplicates += other.duplicates;
        overflowEvictions += other.overflowEvictions;
        overflowSuperseded += other.overflowSuperseded;
        sinkDrops += other.sinkDrops;
        drained += other.drained;
        drainBatches += other.drainBatches;
        if (other.maxDepth > maxDepth)
            maxDepth = other.maxDepth;
    }

    std::uint64_t
    rejects(wire::Reject r) const
    {
        return rejectsByReason[static_cast<std::size_t>(r)];
    }
};

/**
 * The bounded ingestion queue.  Single-threaded by design: each
 * rack's sim step owns its ingress exclusively (same model as the
 * rest of the per-rack state), so determinism comes from ordering,
 * not locks.
 */
class HintIngress
{
  public:
    /** Drain callback; return false to count the hint as a sink
     *  drop (e.g. it names a server this rack doesn't host). */
    using Sink = std::function<bool(const wire::ParsedHint &)>;

    explicit HintIngress(HintIngressConfig config);

    const HintIngressConfig &config() const { return config_; }
    const IngressStats &stats() const { return stats_; }

    /** Hints currently queued (pending + still draining). */
    std::size_t depth() const;

    /**
     * Offer one serialized frame.  Parses fail-closed, checks
     * staleness and duplicates, then enqueues — applying the drop
     * policy if the queue is full.  Returns the rejection reason
     * (None when the hint was enqueued or deduplicated).
     */
    wire::Reject offer(const std::uint8_t *data, std::size_t len,
                       sim::Tick now);

    wire::Reject
    offer(const wire::Frame &frame, sim::Tick now)
    {
        return offer(frame.data(), frame.size, now);
    }

    /**
     * Dispatch up to config().drainMax hints (all, when 0) to
     * `sink`, oldest first.  Works from a snapshot: the pending
     * queue is swapped out first, so offers made *during* the drain
     * (re-entrancy) land in the next batch and can never starve or
     * reorder the one in flight.  Returns hints dispatched.
     */
    std::size_t drain(sim::Tick now, const Sink &sink);

    /** Drop all queued hints (e.g. across a crash restart). */
    void clear();

  private:
    struct Entry {
        wire::ParsedHint hint;
        /** Arrival order stamp, for deterministic diagnostics. */
        std::uint64_t stamp = 0;
    };

    /** Flow identity: hints of one kind for one VM supersede each
     *  other under overflow. */
    using FlowKey = std::tuple<int, std::int32_t, std::uint8_t>;
    /** Exact-duplicate identity adds the sequence number. */
    using DupKey =
        std::tuple<int, std::int32_t, std::uint8_t, std::uint64_t>;

    static FlowKey flowKey(const wire::ParsedHint &h);
    static DupKey dupKey(const wire::ParsedHint &h);

    void evictForOverflow();
    void noteDepth();

    HintIngressConfig config_;
    IngressStats stats_;

    /** Hints accepted but not yet snapshotted for drain. */
    std::deque<Entry> pending_;
    /** The drain-in-progress snapshot. */
    std::deque<Entry> draining_;

    /** Exact-duplicate suppression over pending_ only (ordered
     *  containers per DET-003). */
    std::map<DupKey, std::uint32_t> dupCounts_;
    /** Entries per flow over pending_, for O(log n) drop policy. */
    std::map<FlowKey, std::uint32_t> flowCounts_;
    /** Flows with >= 2 pending entries (supersede candidates). */
    std::size_t supersedableFlows_ = 0;

    std::uint64_t nextStamp_ = 0;
};

} // namespace core
} // namespace soc

#endif // SOC_CORE_HINT_INGRESS_HH
