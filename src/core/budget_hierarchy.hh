/**
 * @file
 * Hierarchical gOA budget tier: rack -> row -> zone.
 *
 * A flat BudgetAllocator split prices a zone at O(servers x slots)
 * per recompute.  At fleet scale (thousands of racks) the gOA
 * instead splits in two coarse stages over *aggregated* profiles:
 *
 *   zone limit --(split over row aggregates)--> row budgets
 *   row budget --(split over rack aggregates)--> rack budgets
 *
 * where a rack aggregate sums its servers' power / overclocked-core
 * / requested-core templates (utilization is averaged) and a row
 * aggregate does the same over its racks.  Each per-rack gOA then
 * splits its own rack budget across its servers exactly as today,
 * on its own (staggered) schedule.
 *
 * Costs per recompute, with R racks of s servers grouped into rows
 * of k racks:
 *
 *  - aggregation: O(s x slots) per rack whose profiles changed
 *    since the last recompute (dirty tracking — unchanged racks
 *    reuse their aggregate);
 *  - splits: O((R/k + R) x slots), independent of the server count.
 *
 * The safety margin is applied once, at the zone level; the
 * intermediate splits use BudgetAllocator::splitWeeklyInto, which
 * consumes per-slot limits as-is.  Everything is a pure function of
 * the registered profiles and the zone limit: recompute(), run
 * incrementally after any sequence of setRackProfiles calls, yields
 * budgets bit-identical to a freshly built hierarchy over the same
 * inputs (enforced by tests/core/budget_hierarchy_test.cc).
 */

#ifndef SOC_CORE_BUDGET_HIERARCHY_HH
#define SOC_CORE_BUDGET_HIERARCHY_HH

#include <cstdint>
#include <vector>

#include "core/budget_allocator.hh"

namespace soc
{
namespace core
{

/** Shape and pricing knobs of the rack/row/zone tier. */
struct HierarchyConfig {
    /** Racks per row; the zone splits across ceil(racks / this). */
    int racksPerRow = 8;
    /** Allocator knobs; safetyFraction is applied once, zone-level. */
    BudgetConfig budget;
};

/**
 * Sums member profiles' predictions slot by slot into one weekly
 * aggregate profile: power and core counts add, utilization is the
 * members' mean.  The reduction both hierarchy tiers use, exposed so
 * a per-rack gOA can pre-aggregate its own servers where the
 * profiles live (trace sim hot path) and hand the hierarchy one
 * profile per rack instead of servers-per-rack of them.
 * Allocation-free after the first aggregate() (scratch retained).
 */
class ProfileAggregator
{
  public:
    /** Aggregate @p count member profiles into @p out (whose weekly
     *  templates are overwritten in place). */
    void aggregate(const ServerProfile *members, std::size_t count,
                   ServerProfile &out);

  private:
    std::vector<double> power_;
    std::vector<double> util_;
    std::vector<double> oc_;
    std::vector<double> req_;
    /** One template's week, reused across members (fillWeek). */
    std::vector<double> row_;
};

/**
 * Fleet-scale budget splitter over rack/row aggregates; see the
 * file comment.  Deterministic: no clocks, no RNG, iteration in
 * rack-id order.
 */
class BudgetHierarchy
{
  public:
    /** Recompute-cost counters, for tests and the bench driver. */
    struct Stats {
        /** Rack aggregates rebuilt (== dirty racks seen). */
        std::uint64_t rackAggregations = 0;
        /** Row aggregates rebuilt. */
        std::uint64_t rowAggregations = 0;
        /** Allocator splits performed (zone + per-row). */
        std::uint64_t splits = 0;
    };

    BudgetHierarchy(const power::PowerModel &model,
                    HierarchyConfig config = {});

    /**
     * Register a rack with its per-server profiles; returns the
     * rack id (sequential).  Racks fill rows in id order: rack r
     * belongs to row r / racksPerRow.
     */
    int addRack(std::vector<ServerProfile> profiles);

    /** Replace one rack's server profiles (after a telemetry pull);
     *  marks the rack dirty for the next recompute. */
    void setRackProfiles(int rack,
                         std::vector<ServerProfile> profiles);

    /**
     * Register a rack by its pre-built aggregate profile (one
     * ProfileAggregator reduction over its servers) instead of the
     * per-server profiles; returns the rack id.  The externally
     * aggregated form the trace sim uses: the per-rack gOAs own the
     * server profiles and push fresh aggregates each recompute tick
     * through exchangeRackAggregate, so the hierarchy never stores
     * per-server state.  A default-constructed aggregate is allowed
     * at registration (it reads as an idle rack until the first
     * exchange).  Aggregate racks and addRack racks must not be
     * mixed in one hierarchy (asserted).
     */
    int addRackAggregate(ServerProfile aggregate);

    /**
     * Swap in @p aggregate as rack @p rack's current aggregate
     * profile (the previous one is swapped out into @p aggregate for
     * the caller to reuse — zero steady-state allocation) and mark
     * its row dirty.  Only valid for addRackAggregate racks.
     */
    void exchangeRackAggregate(int rack, ServerProfile &aggregate);

    /**
     * Rebuild dirty aggregates and re-split @p zoneLimit down to
     * per-rack budgets.  Splits always rerun (the limit may have
     * changed); aggregation cost scales with the dirty racks only.
     */
    void recompute(power::Watts zoneLimit);

    /** Weekly budget template of @p rack (valid after recompute). */
    const ProfileTemplate &rackBudget(int rack) const
    {
        const auto r = static_cast<std::size_t>(rack);
        const auto k = static_cast<std::size_t>(config_.racksPerRow);
        return rackBudgets_[r / k][r % k];
    }

    std::size_t racks() const { return rackProfiles_.size(); }
    std::size_t rows() const { return rowCount_; }
    const Stats &stats() const { return stats_; }

  private:
    const power::PowerModel &model_;
    HierarchyConfig config_;
    BudgetAllocator allocator_;

    /** Per-rack server profiles, by rack id. */
    std::vector<std::vector<ServerProfile>> rackProfiles_;
    /** Racks whose aggregate is stale. */
    std::vector<bool> rackDirty_;
    /** True once addRackAggregate was used (aggregates are pushed
     *  from outside; step 1 of recompute never runs). */
    bool externalAggregates_ = false;
    /** Rack-level aggregates, grouped by row (rack r sits at
     *  [r / racksPerRow][r % racksPerRow]) so each row's members
     *  feed the allocator contiguously, copy-free. */
    std::vector<std::vector<ServerProfile>> rackAggregates_;
    /** Row-level aggregates, by row id. */
    std::vector<ServerProfile> rowAggregates_;
    /** Rows whose aggregate is stale. */
    std::vector<bool> rowDirty_;
    std::size_t rowCount_ = 0;

    /** Outputs of the last recompute (rack budgets grouped like
     *  rackAggregates_). */
    std::vector<ProfileTemplate> rowBudgets_;
    std::vector<std::vector<ProfileTemplate>> rackBudgets_;

    /** Scratch reused across recomputes (allocation-free steady
     *  state, mirroring BudgetAllocator::SplitScratch). */
    BudgetAllocator::SplitScratch scratch_;
    ProfileAggregator aggregator_;
    std::vector<double> limitRow_;

    Stats stats_;
};

} // namespace core
} // namespace soc

#endif // SOC_CORE_BUDGET_HIERARCHY_HH
