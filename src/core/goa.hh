/**
 * @file
 * Global Overclocking Agent (gOA) — the per-rack coordinator of
 * Fig. 10.  It periodically (weekly in production) collects each
 * sOA's power/overclock telemetry, rebuilds templates, splits the
 * rack's power limit heterogeneously (BudgetAllocator), and pushes
 * the resulting weekly budget templates back to the sOAs.  Budgets
 * are used locally until the next recompute, so a gOA outage only
 * freezes budget *updates* — decentralized enforcement continues
 * (§III-Q5).
 *
 * Messages between the gOA and its sOAs traverse a real network, so
 * the recompute path is split in two: recompute() produces a batch
 * of PendingAssignment deliveries (each with a delivery time), and
 * deliver() applies one to its sOA.  The fault-injection harness
 * drops, delays and corrupts deliveries between the two halves;
 * telemetry pulls retry a bounded number of times and fall back to
 * the profile cached from the previous recompute when a server
 * stays unreachable.
 */

#ifndef SOC_CORE_GOA_HH
#define SOC_CORE_GOA_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "core/budget_allocator.hh"
#include "core/soa.hh"
#include "power/rack.hh"

namespace soc
{
namespace core
{

/** gOA knobs. */
struct GoaConfig {
    /** Template strategy (the paper ships DailyMed). */
    TemplateStrategy strategy = TemplateStrategy::DailyMed;
    /** How often budgets are recomputed. */
    sim::Tick recomputePeriod = sim::kWeek;
    /**
     * Lease attached to pushed budgets: an sOA that has not heard
     * from the gOA for leaseTtl decays toward its guaranteed-safe
     * floor instead of trusting an arbitrarily old prediction.
     * 0 disables leases (assignments never expire, the seed
     * behavior).  When enabled it should comfortably exceed
     * recomputePeriod so healthy operation never goes stale.
     */
    sim::Tick leaseTtl = 0;
    BudgetConfig budget;
};

/** gOA-side fault/robustness counters. */
struct GoaStats {
    /** Telemetry pull attempts that failed (per retry). */
    std::uint64_t telemetryRetries = 0;
    /** Recomputes where a server's profile came from the cache
     *  because every pull attempt failed. */
    std::uint64_t staleProfiles = 0;
    /** Budget assignments lost in flight (never delivered). */
    std::uint64_t assignmentsDropped = 0;
    /** Budget assignments delivered late. */
    std::uint64_t assignmentsDelayed = 0;
    /** Deliveries the receiving sOA rejected as invalid. */
    std::uint64_t assignmentsRejected = 0;
};

/**
 * Fault hooks threaded through one recompute.  All hooks are
 * optional; a default-constructed instance is a perfect network.
 * Hooks must be pure functions of their arguments (the chaos
 * harness backs them with stateless hashes) so recomputes stay
 * deterministic under any thread interleaving.
 */
struct RecomputeFaults {
    /** Does the telemetry pull from @p server fail on @p attempt? */
    std::function<bool(int server, int attempt)> telemetryLost;
    /** Pull attempts before falling back to the cached profile. */
    int telemetryAttempts = 3;
    /** Is the budget push to @p server lost outright? */
    std::function<bool(int server)> budgetLost;
    /** Extra delivery latency for @p server's push (0 = on time). */
    std::function<sim::Tick(int server)> budgetDelay;
    /**
     * Payload corruption of @p server's push: -1 = clean, otherwise
     * a corruption kind (0 = NaN, 1 = negative, 2 = over the rack
     * limit) the receiving sOA's validation must catch.
     */
    std::function<int(int server)> budgetCorrupt;
};

/** One budget push in flight from the gOA to an sOA. */
struct PendingAssignment {
    ServerOverclockingAgent *agent = nullptr;
    int serverIndex = -1;
    /** Simulated arrival time (>= issue time when delayed). */
    sim::Tick deliverAt = 0;
    BudgetAssignment assignment;
};

/**
 * Per-rack global agent.  Does not own the sOAs.
 */
class GlobalOverclockingAgent
{
  public:
    GlobalOverclockingAgent(power::Rack &rack,
                            const power::PowerModel &model,
                            GoaConfig config = {});

    const GoaConfig &config() const { return config_; }
    const GoaStats &stats() const { return stats_; }

    /**
     * Register a managed sOA.  Agents must be registered in the
     * same order as the rack's servers — budget recomputes pair
     * profile i with server i, so a scrambled registration silently
     * assigns every server its neighbor's budget.  Violations throw
     * std::invalid_argument immediately instead of corrupting
     * budgets later:
     *  - @p agent must be non-null,
     *  - at most rack.serverCount() agents can be registered,
     *  - agent->server() must be the rack's server at the next
     *    registration index.
     *
     * Registration also seeds the agent's guaranteed-safe fallback
     * budget (the even split of the rack limit) used in degraded
     * mode.
     */
    void addAgent(ServerOverclockingAgent *agent);

    std::size_t agentCount() const { return agents_.size(); }

    /**
     * Bootstrap assignment before any telemetry exists: every
     * server gets an even share of the rack limit (§III-Q4's naive
     * split, which the first recompute replaces).
     */
    void assignEvenSplit();

    /**
     * Periodic recompute: profiles -> heterogeneous weekly budgets
     * -> push to sOAs (also refreshes each sOA's own template).
     * Deliveries happen immediately (perfect network).  This is the
     * steady-state hot path: templates come from the sOAs' slot
     * aggregators (O(slots), cached when no slot closed), the split
     * reuses scratch buffers, and no PendingAssignment batch is
     * materialized — allocation-free once the buffers are warm.
     */
    void recompute(sim::Tick now);

    /**
     * Fault-aware recompute: telemetry pulls go through
     * @p faults.telemetryLost with bounded retry (falling back to
     * the cached profile from the previous recompute when a server
     * stays unreachable), and the resulting budget pushes are
     * returned as PendingAssignment batches instead of being
     * applied — lost pushes are omitted (counted in stats), delayed
     * pushes carry a later deliverAt, corrupted pushes carry a
     * poisoned payload for the sOA's validation to reject.  The
     * caller (simulator) applies each entry with deliver() at its
     * deliverAt time.
     */
    std::vector<PendingAssignment>
    recompute(sim::Tick now, const RecomputeFaults &faults);

    /**
     * Pull fresh telemetry from every sOA (perfect network) and
     * return the per-server profiles, without splitting or pushing
     * budgets.  The first half of recompute(now), exposed so a
     * hierarchical tier (core::BudgetHierarchy) can aggregate the
     * rack's profiles before deciding its budget; the pulled
     * profiles stay cached for recomputeWithBudget.  Pulling twice
     * without an intervening slot close is a cache hit with no
     * observable effect — the two-phase sequence
     * pullProfiles() + recomputeWithBudget(now, flat usable row)
     * is bit-identical to recompute(now) (see splitWeeklyInto).
     */
    const std::vector<ServerProfile> &pullProfiles();

    /**
     * Second half of a hierarchical recompute: split the externally
     * decided per-slot usable watts (@p usablePerSlot, one entry per
     * slot of the week, consumed as-is — the hierarchy applies the
     * safety margin once at the zone) across the profiles pulled by
     * pullProfiles(), and push the budgets to the sOAs exactly like
     * recompute(now) does.  Counts as one recompute.
     */
    void recomputeWithBudget(sim::Tick now,
                             const std::vector<double> &usablePerSlot);

    /**
     * Drop the cached profile storage (fleet-scale footprint trim
     * between recomputes).  Only safe when no degraded-mode fallback
     * relies on cached profiles — i.e. fault injection is off; the
     * next pull repopulates everything.
     */
    void releaseProfiles();

    /**
     * Apply one pending assignment to its sOA at @p now.
     * @return true when the sOA accepted it (rejections are counted
     * in stats().assignmentsRejected).
     */
    bool deliver(const PendingAssignment &pending, sim::Tick now);

    /** Budgets from the last recompute (empty before the first). */
    const std::vector<ProfileTemplate> &lastBudgets() const
    {
        return lastBudgets_;
    }

    std::uint64_t recomputeCount() const { return recomputes_; }

  private:
    /**
     * Pull telemetry (through @p faults when hooked) and refresh
     * lastProfiles_/lastProfileValid_; unreachable servers keep
     * their cached profile.
     */
    void collectProfiles(const RecomputeFaults &faults);

    /** Fill @p assignment for server @p i's budget at @p now. */
    void fillAssignment(BudgetAssignment &assignment, std::size_t i,
                        sim::Tick now) const;

    power::Rack &rack_;
    const power::PowerModel &model_;
    GoaConfig config_;
    BudgetAllocator allocator_;
    std::vector<ServerOverclockingAgent *> agents_;
    std::vector<ProfileTemplate> lastBudgets_;
    /** Profiles from the last successful pull per server; the
     *  stale-telemetry fallback, and (in place) the split input. */
    std::vector<ServerProfile> lastProfiles_;
    std::vector<bool> lastProfileValid_;
    /** Reused split working memory (see SplitScratch). */
    BudgetAllocator::SplitScratch splitScratch_;
    /** Reused assignment payload for the perfect-network path. */
    BudgetAssignment assignScratch_;
    std::uint64_t recomputes_ = 0;
    GoaStats stats_;
};

} // namespace core
} // namespace soc

#endif // SOC_CORE_GOA_HH
