/**
 * @file
 * Global Overclocking Agent (gOA) — the per-rack coordinator of
 * Fig. 10.  It periodically (weekly in production) collects each
 * sOA's power/overclock telemetry, rebuilds templates, splits the
 * rack's power limit heterogeneously (BudgetAllocator), and pushes
 * the resulting weekly budget templates back to the sOAs.  Budgets
 * are used locally until the next recompute, so a gOA outage only
 * freezes budget *updates* — decentralized enforcement continues
 * (§III-Q5).
 */

#ifndef SOC_CORE_GOA_HH
#define SOC_CORE_GOA_HH

#include <cstdint>
#include <vector>

#include "core/budget_allocator.hh"
#include "core/soa.hh"
#include "power/rack.hh"

namespace soc
{
namespace core
{

/** gOA knobs. */
struct GoaConfig {
    /** Template strategy (the paper ships DailyMed). */
    TemplateStrategy strategy = TemplateStrategy::DailyMed;
    /** How often budgets are recomputed. */
    sim::Tick recomputePeriod = sim::kWeek;
    BudgetConfig budget;
};

/**
 * Per-rack global agent.  Does not own the sOAs.
 */
class GlobalOverclockingAgent
{
  public:
    GlobalOverclockingAgent(power::Rack &rack,
                            const power::PowerModel &model,
                            GoaConfig config = {});

    const GoaConfig &config() const { return config_; }

    /** Register a managed sOA (same order as the rack's servers). */
    void addAgent(ServerOverclockingAgent *agent);

    std::size_t agentCount() const { return agents_.size(); }

    /**
     * Bootstrap assignment before any telemetry exists: every
     * server gets an even share of the rack limit (§III-Q4's naive
     * split, which the first recompute replaces).
     */
    void assignEvenSplit();

    /**
     * Periodic recompute: profiles -> heterogeneous weekly budgets
     * -> push to sOAs (also refreshes each sOA's own template).
     */
    void recompute(sim::Tick now);

    /** Budgets from the last recompute (empty before the first). */
    const std::vector<ProfileTemplate> &lastBudgets() const
    {
        return lastBudgets_;
    }

    std::uint64_t recomputeCount() const { return recomputes_; }

  private:
    power::Rack &rack_;
    const power::PowerModel &model_;
    GoaConfig config_;
    BudgetAllocator allocator_;
    std::vector<ServerOverclockingAgent *> agents_;
    std::vector<ProfileTemplate> lastBudgets_;
    std::uint64_t recomputes_ = 0;
};

} // namespace core
} // namespace soc

#endif // SOC_CORE_GOA_HH
