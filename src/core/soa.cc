#include "core/soa.hh"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <numeric>

namespace soc
{
namespace core
{

SoaConfig
SoaConfig::forPolicy(PolicyKind kind)
{
    SoaConfig config;
    switch (kind) {
      case PolicyKind::Central:
        config.oracleMode = true;
        config.admission.checkLifetime = false;
        config.exploreEnabled = false;
        break;
      case PolicyKind::NaiveOClock:
        config.admission.checkPower = false;
        config.admission.checkLifetime = false;
        config.exploreEnabled = false;
        config.enforceBudget = false;
        break;
      case PolicyKind::NoFeedback:
        config.exploreEnabled = false;
        break;
      case PolicyKind::NoWarning:
        config.respectWarnings = false;
        break;
      case PolicyKind::SmartOClock:
        break;
    }
    return config;
}

ServerOverclockingAgent::ServerOverclockingAgent(
    power::Server &server, SoaConfig config,
    const power::Rack *oracle_rack)
    : server_(server),
      config_(config),
      oracleRack_(oracle_rack),
      admission_(server.model(), config.admission),
      lifetime_(config.budgetEpoch, config.overclockFraction,
                server.totalCores(), config.carryoverCap),
      tis_(server.totalCores()),
      journal_(server.totalCores(), config.budgetEpoch),
      coreUsedEpoch_(server.totalCores(), 0),
      regularHistory_(0, sim::kSlot),
      powerHistory_(0, sim::kSlot),
      utilHistory_(0, sim::kSlot),
      grantedCoresHistory_(0, sim::kSlot),
      requestedCoresHistory_(0, sim::kSlot),
      regularAgg_(config.templateWindow),
      powerAgg_(config.templateWindow),
      utilAgg_(config.templateWindow),
      grantedCoresAgg_(config.templateWindow),
      requestedCoresAgg_(config.templateWindow)
{
    assert(!config_.oracleMode || oracleRack_ != nullptr);
    allowancePerCore_ = static_cast<sim::Tick>(
        config_.overclockFraction *
        static_cast<double>(config_.budgetEpoch));
}

void
ServerOverclockingAgent::assignBudget(ProfileTemplate budget)
{
    budget_ = std::move(budget);
    budgetAssigned_ = true;
    leaseUntil_ = 0;
}

bool
ServerOverclockingAgent::assignBudget(
    const BudgetAssignment &assignment, sim::Tick now)
{
    ++stats_.budgetAssignments;
    const double peak = assignment.budget.peak();
    const double trough = assignment.budget.trough();
    const char *reason = nullptr;
    if (!std::isfinite(peak) || !std::isfinite(trough))
        reason = "budget not finite";
    else if (trough < 0.0)
        reason = "budget negative";
    else if (assignment.rackLimitWatts > power::Watts{0.0} &&
             power::Watts{peak} > assignment.rackLimitWatts)
        reason = "budget exceeds rack limit";
    else if (assignment.leaseUntil != 0 &&
             assignment.leaseUntil < assignment.issuedAt)
        reason = "lease expires before issue time";
    if (reason != nullptr) {
        ++stats_.budgetRejects;
        lastBudgetReject_ = reason;
        return false;
    }
    lastBudgetReject_.clear();
    budget_ = assignment.budget;
    budgetAssigned_ = true;
    leaseUntil_ = assignment.leaseUntil;
    lastAssignmentAt_ = now;
    return true;
}

power::Watts
ServerOverclockingAgent::measuredWatts(sim::Tick now) const
{
    const power::Watts watts = server_.powerWatts();
    return sensor_ ? sensor_(watts, now) : watts;
}

power::Watts
ServerOverclockingAgent::budgetWatts(sim::Tick now) const
{
    if (!budgetAssigned_) {
        // No assignment at all: run on the safe floor if the gOA
        // declared one, else behave as if granted the server's TDP
        // until real budgets arrive (agent-only bootstrap).
        const power::Watts base = safeBudgetWatts_ > power::Watts{0.0}
            ? safeBudgetWatts_
            : server_.model().params().tdpWatts;
        return base + bonusWatts_;
    }
    const power::Watts fresh{budget_.predict(now)};
    if (!leaseStale(now))
        return fresh + bonusWatts_;
    // Degraded mode: the gOA failed to refresh the lease.  Keep
    // enforcing, but decay the stale prediction linearly toward the
    // guaranteed-safe floor; after staleDecayTime the agent is fully
    // conservative no matter how wrong the stale budget was.
    const double frac = std::min(
        1.0, static_cast<double>(now - leaseUntil_) /
                 static_cast<double>(
                     std::max<sim::Tick>(1, config_.staleDecayTime)));
    const power::Watts base =
        fresh + (std::min(safeBudgetWatts_, fresh) - fresh) * frac;
    return base + bonusWatts_;
}

AdmissionDecision
ServerOverclockingAgent::requestOverclock(
    const OverclockRequest &request, sim::Tick now)
{
    ++stats_.requests;

    // Re-requests for an already-granted group just extend it.  The
    // group's cores are already counted through the granted side of
    // the telemetry, so they must not also be counted as fresh
    // demand (requested = granted + requestedCoresNow_).
    auto it = activeFind(request.groupId);
    if (it != active_.end()) {
        AdmissionDecision decision;
        decision.granted = true;
        decision.grantedMHz = it->second.request.desiredMHz;
        decision.grantedUntil = std::max(it->second.grantedUntil,
                                         now + request.duration);
        it->second.grantedUntil = decision.grantedUntil;
        decision.reason = "extended";
        return decision;
    }

    // Flap hysteresis (DESIGN.md §12): a group that just stopped
    // must sit out the holdoff window before re-requesting.  Checked
    // before the requested-core accounting so a flap storm cannot
    // inflate apparent demand and steal budget from steady groups.
    if (config_.flapHoldoff > 0) {
        const auto stop = lastStopAt_.find(request.groupId);
        if (stop != lastStopAt_.end() &&
            now - stop->second < config_.flapHoldoff) {
            ++stats_.rejects;
            ++stats_.flapDenied;
            AdmissionDecision denied;
            denied.granted = false;
            denied.reason = "flap hysteresis";
            return denied;
        }
    }

    requestedCoresNow_ += request.cores;

    AdmissionDecision decision;
    if (config_.oracleMode) {
        // Central: perfect knowledge of the rack's current draw.
        const power::Watts extra = admission_.surchargeWatts(request);
        if (oracleRack_->powerWatts() + extra >
            oracleRack_->limitWatts()) {
            decision.granted = false;
            decision.reason = "oracle: rack would cap";
        } else {
            decision.granted = true;
            decision.grantedMHz = request.desiredMHz;
            decision.grantedUntil = now + request.duration;
            decision.reason = "oracle: fits";
        }
    } else {
        AdmissionInputs in;
        in.now = now;
        in.measuredWatts = measuredWatts(now);
        in.budget = budgetAssigned_ ? &budget_ : nullptr;
        in.bonusWatts = bonusWatts_;
        in.serverPower = ownTemplateValid_ ? &ownPower_ : nullptr;
        in.lifetime = &lifetime_;
        decision = admission_.decide(request, in);
    }

    if (!decision.granted) {
        ++stats_.rejects;
        recentDenied_[request.groupId] = {request.cores,
                                          now + 2 *
                                              config_.controlPeriod};
        if (decision.reason == "power budget insufficient") {
            powerDenialUntil_ = now + 2 * config_.warningWindow;
        }
        return decision;
    }

    ++stats_.grants;
    ActiveOverclock oc;
    oc.request = request;
    oc.grantedUntil = decision.grantedUntil;
    oc.startedAt = now;
    oc.coreSet = pickCores(request.cores, now);
    for (int core : oc.coreSet)
        tis_.startOverclock(core, now);
    active_.emplace(
        std::lower_bound(active_.begin(), active_.end(),
                         request.groupId,
                         [](const auto &e, int id) {
                             return e.first < id;
                         }),
        request.groupId, std::move(oc));

    // Begin the ramp one step above turbo; the feedback loop takes
    // it the rest of the way.
    server_.setTarget(request.groupId,
                      server_.ladder().up(power::kTurboMHz));
    if (!config_.enforceBudget) {
        // Naive policy: jump straight to the desired frequency.
        server_.setTarget(request.groupId, request.desiredMHz);
    }
    return decision;
}

sim::Tick
ServerOverclockingAgent::chargeWear(ActiveOverclock &oc,
                                    sim::Tick from, sim::Tick until,
                                    sim::Tick now)
{
    // Wear accrues only while the grant is live.
    const sim::Tick delta = std::min(until, oc.grantedUntil) -
        std::max(from, oc.startedAt);
    if (delta <= 0)
        return 0;
    const auto *group = server_.group(oc.request.groupId);
    if (group == nullptr || !group->overclocked())
        return 0; // held at/below turbo: no wear consumed
    rollCoreEpoch(now);
    const auto cores = static_cast<sim::Tick>(oc.coreSet.size());
    stats_.overclockedCoreTime += delta * cores;
    lifetime_.consume(delta * cores, now);
    for (int core : oc.coreSet) {
        coreUsedEpoch_[core] += delta;
        // Durable record: wear must survive an agent crash.
        journal_.append(core, delta, now);
    }
    return delta;
}

void
ServerOverclockingAgent::stopOverclock(int group_id, sim::Tick now)
{
    auto it = activeFind(group_id);
    if (it == active_.end())
        return;

    ActiveOverclock &oc = it->second;
    // Charge the partial interval since the last accounting tick;
    // without this, a group stopped between ticks never pays for
    // its final stretch of overclocked time.
    chargeWear(oc, lastAccounting_, now, now);
    // Release any still-reserved schedule budget.
    if (oc.request.trigger == TriggerKind::Schedule &&
        oc.grantedUntil > now) {
        lifetime_.release(
            (oc.grantedUntil - now) * oc.request.cores, now);
    }
    for (int core : oc.coreSet)
        tis_.stopOverclock(core, now);
    server_.setTarget(group_id, power::kTurboMHz);
    active_.erase(it);
    if (config_.flapHoldoff > 0)
        lastStopAt_[group_id] = now;
}

bool
ServerOverclockingAgent::isOverclockActive(int group_id) const
{
    // Sorted and small: a linear scan with early exit beats a
    // binary search for a handful of grants.
    for (const auto &e : active_) {
        if (e.first >= group_id)
            return e.first == group_id;
    }
    return false;
}

std::vector<std::pair<int, ServerOverclockingAgent::ActiveOverclock>>
    ::iterator
ServerOverclockingAgent::activeFind(int group_id)
{
    const auto it = std::lower_bound(
        active_.begin(), active_.end(), group_id,
        [](const auto &e, int id) { return e.first < id; });
    return it != active_.end() && it->first == group_id
        ? it
        : active_.end();
}

void
ServerOverclockingAgent::revoke(ActiveOverclock &oc, sim::Tick now,
                                const char *reason)
{
    (void)reason;
    ++stats_.revocations;
    stopOverclock(oc.request.groupId, now);
}

bool
ServerOverclockingAgent::constrained(sim::Tick now) const
{
    if (now < powerDenialUntil_)
        return true;
    for (const auto &[group_id, oc] : active_) {
        const auto *group = server_.group(group_id);
        if (group != nullptr &&
            group->targetMHz < oc.request.desiredMHz) {
            return true;
        }
    }
    return false;
}

std::vector<int>
ServerOverclockingAgent::pickCores(int count, sim::Tick now)
{
    rollCoreEpoch(now);
    // Reused member scratch: this runs once per grant, which under
    // short request chunks is the hottest allocation site in the
    // whole control loop.
    auto &busy = pickBusy_;
    busy.assign(server_.totalCores(), 0);
    for (const auto &[group_id, oc] : active_)
        for (int core : oc.coreSet)
            busy[core] = 1;

    // (wear, index) is a strict total order equal to the historical
    // stable_sort by wear alone (stable = index tie-break).
    auto before = [this](int a, int b) {
        return coreUsedEpoch_[a] != coreUsedEpoch_[b]
            ? coreUsedEpoch_[a] < coreUsedEpoch_[b]
            : a < b;
    };

    // k-selection instead of sorting all cores per grant: keep the
    // `count` least-worn cores of the wanted busy-state, maintained
    // in (wear, index) order — bit-identical to filtering a full
    // sort, and O(cores) when wear is uniform (the common case,
    // since we scan in index order and ties never displace).
    std::vector<int> picked;
    picked.reserve(static_cast<std::size_t>(count));
    const int total = server_.totalCores();
    auto selectInto = [&](char want_busy) {
        const std::size_t base = picked.size();
        if (static_cast<int>(base) >= count)
            return;
        const std::size_t room =
            static_cast<std::size_t>(count) - base;
        for (int core = 0; core < total; ++core) {
            if (busy[core] != want_busy)
                continue;
            if (picked.size() - base < room) {
                picked.push_back(core);
            } else if (before(core, picked.back())) {
                picked.back() = core;
            } else {
                continue;
            }
            for (std::size_t i = picked.size() - 1;
                 i > base && before(picked[i], picked[i - 1]); --i)
                std::swap(picked[i], picked[i - 1]);
        }
    };
    selectInto(0);
    // If the server is fully busy with overclocks, reuse cores (the
    // request would have been capacity-checked at the cluster layer).
    selectInto(1);
    return picked;
}

void
ServerOverclockingAgent::rollCoreEpoch(sim::Tick now)
{
    const std::int64_t epoch = now / config_.budgetEpoch;
    if (epoch != coreEpochIndex_) {
        coreEpochIndex_ = epoch;
        std::fill(coreUsedEpoch_.begin(), coreUsedEpoch_.end(), 0);
    }
}

sim::Tick
ServerOverclockingAgent::coreUsed(int core, sim::Tick now)
{
    rollCoreEpoch(now);
    return coreUsedEpoch_[core];
}

void
ServerOverclockingAgent::tick(sim::Tick now)
{
    // Expire stale denial records.
    std::erase_if(recentDenied_, [now](const auto &entry) {
        return entry.second.second <= now;
    });

    if (leaseStale(now)) {
        // Degraded mode: the budget can no longer be trusted, so
        // exploring beyond it is off the table and any banked bonus
        // is surrendered.  budgetWatts() handles the decay itself.
        ++stats_.staleLeaseTicks;
        if (bonusWatts_ > power::Watts{0.0} ||
            state_ != ExploreState::Normal) {
            bonusWatts_ = power::Watts{0.0};
            state_ = ExploreState::Normal;
        }
    }

    lifetimeAccounting(now);
    feedbackLoop(now);
    explorationStep(now);
    exhaustionPrediction(now);
    telemetryCollection(now);
    requestedCoresNow_ = 0;
}

void
ServerOverclockingAgent::feedbackLoop(sim::Tick now)
{
    if (active_.empty())
        return;

    if (!config_.enforceBudget) {
        // NaiveOClock: hold every grant at its desired frequency.
        for (auto &[group_id, oc] : active_)
            server_.setTarget(group_id, oc.request.desiredMHz);
        return;
    }

    power::Watts draw;
    power::Watts limit;
    if (config_.oracleMode) {
        draw = oracleRack_->powerWatts();
        limit = oracleRack_->limitWatts() * 0.995;
    } else {
        draw = measuredWatts(now);
        limit = budgetWatts(now);
    }
    const power::Watts threshold = limit - config_.bufferWatts;

    if (draw > limit) {
        // Step down, lowest priority first, multiple steps per tick
        // so abrupt budget cuts converge quickly.
        for (int step = 0; step < config_.stepsPerTick; ++step) {
            ActiveOverclock *victim = nullptr;
            power::CoreGroup *victim_group = nullptr;
            for (auto &[group_id, oc] : active_) {
                auto *group = server_.group(group_id);
                if (group == nullptr ||
                    group->targetMHz <= power::kTurboMHz) {
                    continue;
                }
                if (victim == nullptr ||
                    oc.request.priority < victim->request.priority) {
                    victim = &oc;
                    victim_group = group;
                }
            }
            if (victim == nullptr)
                break;
            server_.setTarget(victim->request.groupId,
                              server_.ladder().down(
                                  victim_group->targetMHz));
            const power::Watts new_draw = config_.oracleMode
                ? oracleRack_->powerWatts()
                : measuredWatts(now);
            if (new_draw <= limit)
                break;
        }
    } else if (draw < threshold) {
        // Step up constrained groups, highest priority first, while
        // the predicted draw stays under the limit.
        for (int step = 0; step < config_.stepsPerTick; ++step) {
            ActiveOverclock *best = nullptr;
            power::CoreGroup *best_group = nullptr;
            for (auto &[group_id, oc] : active_) {
                auto *group = server_.group(group_id);
                if (group == nullptr ||
                    group->targetMHz >= oc.request.desiredMHz) {
                    continue;
                }
                if (best == nullptr ||
                    oc.request.priority > best->request.priority) {
                    best = &oc;
                    best_group = group;
                }
            }
            if (best == nullptr)
                break;
            const power::FreqMHz next =
                server_.ladder().up(best_group->targetMHz);
            const power::Watts predicted = server_.powerWattsIf(
                best->request.groupId, next);
            const bool fits = config_.oracleMode
                ? (oracleRack_->powerWatts() +
                   (predicted - server_.powerWatts())) <= limit
                : predicted <= limit;
            if (!fits)
                break;
            server_.setTarget(best->request.groupId, next);
        }
    }
}

void
ServerOverclockingAgent::explorationStep(sim::Tick now)
{
    if (!config_.exploreEnabled || leaseStale(now))
        return;

    switch (state_) {
      case ExploreState::Normal:
        if (constrained(now) && now >= nextExploreAllowed_ &&
            bonusWatts_ < config_.maxBonusWatts) {
            state_ = ExploreState::Exploring;
            bonusWatts_ += config_.exploreStepWatts;
            stateDeadline_ = now + config_.warningWindow;
            ++stats_.explorationsStarted;
        }
        break;
      case ExploreState::Exploring:
        if (now >= stateDeadline_) {
            if (!constrained(now)) {
                // Everyone reached the desired frequency: bank the
                // discovered budget and exploit it.
                state_ = ExploreState::Exploiting;
                stateDeadline_ = now + config_.exploitTime;
                backoffExp_ = 0;
            } else if (bonusWatts_ < config_.maxBonusWatts) {
                bonusWatts_ += config_.exploreStepWatts;
                stateDeadline_ = now + config_.warningWindow;
            } else {
                state_ = ExploreState::Exploiting;
                stateDeadline_ = now + config_.exploitTime;
            }
        }
        break;
      case ExploreState::Exploiting:
        if (now >= stateDeadline_)
            state_ = ExploreState::Normal;
        break;
    }
}

void
ServerOverclockingAgent::onWarning(sim::Tick now)
{
    if (!config_.respectWarnings)
        return;
    if (state_ != ExploreState::Exploring)
        return; // §IV-D: ignore unless exploring
    ++stats_.warningsHeeded;
    bonusWatts_ = std::max(power::Watts{0.0},
                           bonusWatts_ - config_.exploreStepWatts);
    backoffExp_ = std::min(backoffExp_ + 1, config_.maxBackoffExp);
    nextExploreAllowed_ = now +
        config_.backoffBase * (sim::Tick{1} << backoffExp_);
    state_ = ExploreState::Normal;
}

void
ServerOverclockingAgent::onCapEvent(sim::Tick now)
{
    // §IV-D: a capping event resets the sOA to its initial budget.
    if (bonusWatts_ > power::Watts{0.0} ||
        state_ != ExploreState::Normal)
        ++stats_.capResets;
    bonusWatts_ = power::Watts{0.0};
    state_ = ExploreState::Normal;
    backoffExp_ = std::min(backoffExp_ + 1, config_.maxBackoffExp);
    nextExploreAllowed_ = std::max(
        nextExploreAllowed_,
        now + config_.backoffBase * (sim::Tick{1} << backoffExp_));
}

void
ServerOverclockingAgent::lifetimeAccounting(sim::Tick now)
{
    const sim::Tick prev = lastAccounting_;
    lastAccounting_ = now;
    if (now - prev <= 0)
        return;
    rollCoreEpoch(now);

    std::vector<int> expired;
    for (auto &[group_id, oc] : active_) {
        // Natural expiry of the grant: charge the final partial
        // interval [prev, grantedUntil) before letting it go, or
        // the last stretch of wear is never accounted.
        if (now >= oc.grantedUntil) {
            chargeWear(oc, prev, now, now);
            expired.push_back(group_id);
            continue;
        }

        if (chargeWear(oc, prev, now, now) <= 0)
            continue; // held at/below turbo: no wear consumed

        bool exhausted_core = false;
        for (int core : oc.coreSet) {
            if (coreUsedEpoch_[core] >= allowancePerCore_)
                exhausted_core = true;
        }
        if (!exhausted_core)
            continue;

        if (!config_.admission.checkLifetime)
            continue; // policies without lifetime enforcement

        // §IV-D: explore whether other cores still have budget and
        // reschedule the VM there; otherwise revoke.
        for (int core : oc.coreSet)
            tis_.stopOverclock(core, now);
        std::vector<int> fresh =
            pickCores(static_cast<int>(oc.coreSet.size()), now);
        bool viable = true;
        for (int core : fresh)
            if (coreUsedEpoch_[core] >= allowancePerCore_)
                viable = false;
        if (viable && fresh.size() == oc.coreSet.size()) {
            oc.coreSet = std::move(fresh);
            for (int core : oc.coreSet)
                tis_.startOverclock(core, now);
            ++stats_.coreReschedules;
        } else {
            expired.push_back(group_id);
        }
    }

    for (int group_id : expired) {
        auto it = activeFind(group_id);
        if (it != active_.end())
            revoke(it->second, now, "budget exhausted/expired");
    }
}

void
ServerOverclockingAgent::exhaustionPrediction(sim::Tick now)
{
    if (!exhaustionCallback_ || active_.empty())
        return;

    // Lifetime exhaustion: shared budget divided by the burn rate.
    int burning_cores = 0;
    for (const auto &[group_id, oc] : active_)
        burning_cores += static_cast<int>(oc.coreSet.size());
    const sim::Tick lifetime_eta = burning_cores > 0
        ? lifetime_.timeToExhaustion(now, burning_cores)
        : std::numeric_limits<sim::Tick>::max();

    for (auto &[group_id, oc] : active_) {
        if (oc.exhaustionSignaled)
            continue;

        if (config_.admission.checkLifetime &&
            lifetime_eta < config_.exhaustionWindow) {
            ExhaustionSignal signal;
            signal.groupId = group_id;
            signal.kind = ExhaustionKind::OverclockBudget;
            signal.eta = now + lifetime_eta;
            oc.exhaustionSignaled = true;
            ++stats_.exhaustionSignals;
            exhaustionCallback_(signal);
            continue;
        }

        if (config_.admission.checkPower && budgetAssigned_ &&
            ownTemplateValid_) {
            const power::Watts extra = admission_.surchargeWatts(
                oc.request);
            for (sim::Tick t = now;
                 t < now + config_.exhaustionWindow;
                 t += sim::kSlot) {
                if (power::Watts{ownPower_.predict(t)} + extra >
                    power::Watts{budget_.predict(t)}) {
                    ExhaustionSignal signal;
                    signal.groupId = group_id;
                    signal.kind = ExhaustionKind::PowerBudget;
                    signal.eta = t;
                    oc.exhaustionSignaled = true;
                    ++stats_.exhaustionSignals;
                    exhaustionCallback_(signal);
                    break;
                }
            }
        }
    }
}

void
ServerOverclockingAgent::pushSample(telemetry::TimeSeries &series,
                                    SlotAggregator &aggregator,
                                    double value)
{
    // series.end() is the tick the new sample will cover; feeding
    // the aggregator the series' own tick (rather than wall time)
    // keeps it bit-identical to a batch build over the series even
    // after a crash-restart resets the history origin.
    aggregator.add(series.end(), value);
    series.append(value);
}

void
ServerOverclockingAgent::telemetryCollection(sim::Tick now)
{
    const std::int64_t slot = now / sim::kSlot;
    if (currentSlot_ < 0)
        currentSlot_ = slot;

    if (slot != currentSlot_) {
        const double n = std::max(1, slotSamples_);
        pushSample(regularHistory_, regularAgg_, slotRegularSum_ / n);
        pushSample(powerHistory_, powerAgg_, slotPowerSum_ / n);
        pushSample(utilHistory_, utilAgg_, slotUtilSum_ / n);
        pushSample(grantedCoresHistory_, grantedCoresAgg_,
                   slotGrantedSum_ / n);
        pushSample(requestedCoresHistory_, requestedCoresAgg_,
                   slotRequestedSum_ / n);
        slotRegularSum_ = slotPowerSum_ = slotUtilSum_ = 0.0;
        slotGrantedSum_ = slotRequestedSum_ = 0.0;
        slotSamples_ = 0;
        // Gaps (no ticks during a slot) replay the last averages so
        // the series stays contiguous.
        while (++currentSlot_ < slot) {
            pushSample(regularHistory_, regularAgg_,
                       regularHistory_.values().back());
            pushSample(powerHistory_, powerAgg_,
                       powerHistory_.values().back());
            pushSample(utilHistory_, utilAgg_,
                       utilHistory_.values().back());
            pushSample(grantedCoresHistory_, grantedCoresAgg_,
                       grantedCoresHistory_.values().back());
            pushSample(requestedCoresHistory_, requestedCoresAgg_,
                       requestedCoresHistory_.values().back());
        }
    }

    int granted = 0;
    for (const auto &[group_id, oc] : active_)
        granted += oc.request.cores;
    int requested = granted + requestedCoresNow_;
    for (const auto &[group_id, entry] : recentDenied_)
        requested += entry.first;

    slotRegularSum_ += server_.regularPowerWatts().count();
    slotPowerSum_ += measuredWatts(now).count();
    slotUtilSum_ += server_.utilization();
    slotGrantedSum_ += granted;
    slotRequestedSum_ += requested;
    ++slotSamples_;
}

void
ServerOverclockingAgent::crashRestart(sim::Tick now)
{
    // Wear up to the crash instant is physically real: charge the
    // final partial interval so the journal is complete before the
    // volatile state is discarded.  The platform watchdog drops all
    // frequencies back to turbo when the agent dies.
    for (auto &[group_id, oc] : active_) {
        chargeWear(oc, lastAccounting_, now, now);
        for (int core : oc.coreSet)
            tis_.stopOverclock(core, now);
        server_.setTarget(group_id, power::kTurboMHz);
    }
    stats_.revocations += active_.size();
    active_.clear();
    recentDenied_.clear();
    lastStopAt_.clear();
    powerDenialUntil_ = 0;

    // Volatile exploration/back-off state is lost.
    state_ = ExploreState::Normal;
    bonusWatts_ = power::Watts{0.0};
    stateDeadline_ = 0;
    nextExploreAllowed_ = 0;
    backoffExp_ = 0;
    warnedThisWindow_ = false;

    // The budget assignment and its lease lived in process memory:
    // until the gOA pushes again, the agent runs on the safe floor
    // (budgetWatts falls back to safeBudgetWatts_, which is static
    // per-rack configuration and survives).
    budget_ = ProfileTemplate();
    budgetAssigned_ = false;
    leaseUntil_ = 0;
    lastAssignmentAt_ = -1;
    lastBudgetReject_.clear();
    ownPower_ = ProfileTemplate();
    ownTemplateValid_ = false;
    ownPowerVersion_ = 0;
    // Aggregator versions restart from zero below, so the snapshot
    // key would collide with the pre-crash one; invalidate it.
    profileSnapshotValid_ = false;

    // Telemetry accumulators restart empty (history is agent-local;
    // the next recompute sees a short history, which is the real
    // cost of a crash).
    regularHistory_ = telemetry::TimeSeries(0, sim::kSlot);
    powerHistory_ = telemetry::TimeSeries(0, sim::kSlot);
    utilHistory_ = telemetry::TimeSeries(0, sim::kSlot);
    grantedCoresHistory_ = telemetry::TimeSeries(0, sim::kSlot);
    requestedCoresHistory_ = telemetry::TimeSeries(0, sim::kSlot);
    regularAgg_.clear();
    powerAgg_.clear();
    utilAgg_.clear();
    grantedCoresAgg_.clear();
    requestedCoresAgg_.clear();
    currentSlot_ = -1;
    slotRegularSum_ = slotPowerSum_ = slotUtilSum_ = 0.0;
    slotGrantedSum_ = slotRequestedSum_ = 0.0;
    slotSamples_ = 0;
    requestedCoresNow_ = 0;

    // Wear state is rebuilt from the durable journal — the
    // in-memory budget is deliberately discarded so recovery is
    // exercised for real, not faked by object survival.
    lifetime_ = OverclockBudget(config_.budgetEpoch,
                                config_.overclockFraction,
                                server_.totalCores(),
                                config_.carryoverCap);
    std::fill(coreUsedEpoch_.begin(), coreUsedEpoch_.end(), 0);
    coreEpochIndex_ = now / config_.budgetEpoch;
    journal_.replay(lifetime_, coreUsedEpoch_, now);
    lastAccounting_ = now;
    ++stats_.crashRestarts;
}

void
ServerOverclockingAgent::refreshOwnTemplate(TemplateStrategy strategy)
{
    if (regularAgg_.empty())
        return;
    if (ownTemplateValid_ && strategy == ownPowerStrategy_ &&
        regularAgg_.version() == ownPowerVersion_) {
        // No slot closed since the last refresh: the template is
        // already current, leave it untouched.
        ++stats_.templateCacheHits;
        return;
    }
    ownPower_ = regularAgg_.build(strategy);
    ownPowerStrategy_ = strategy;
    ownPowerVersion_ = regularAgg_.version();
    ownTemplateValid_ = true;
    ++stats_.templateRebuilds;
}

ServerProfile
ServerOverclockingAgent::buildProfile(TemplateStrategy strategy)
{
    const std::uint64_t misses_before = powerAgg_.rebuildCount() +
        utilAgg_.rebuildCount() + grantedCoresAgg_.rebuildCount() +
        requestedCoresAgg_.rebuildCount();
    ServerProfile profile;
    profile.power = powerAgg_.build(strategy);
    profile.utilization = utilAgg_.build(strategy);
    profile.overclockedCores = grantedCoresAgg_.build(strategy);
    profile.requestedCores = requestedCoresAgg_.build(strategy);
    const std::uint64_t misses = powerAgg_.rebuildCount() +
        utilAgg_.rebuildCount() + grantedCoresAgg_.rebuildCount() +
        requestedCoresAgg_.rebuildCount() - misses_before;
    stats_.templateRebuilds += misses;
    stats_.templateCacheHits += 4 - misses;
    return profile;
}

const ServerProfile &
ServerOverclockingAgent::profileSnapshot(TemplateStrategy strategy)
{
    refreshOwnTemplate(strategy);
    // Versions only ever increment, so their sum is a monotone key
    // for "any telemetry slot closed since the last snapshot".
    const std::uint64_t version = powerAgg_.version() +
        utilAgg_.version() + grantedCoresAgg_.version() +
        requestedCoresAgg_.version();
    if (!profileSnapshotValid_ ||
        strategy != profileSnapshotStrategy_ ||
        version != profileSnapshotVersion_) {
        profileSnapshot_ = buildProfile(strategy);
        profileSnapshotStrategy_ = strategy;
        profileSnapshotVersion_ = version;
        profileSnapshotValid_ = true;
    }
    return profileSnapshot_;
}

} // namespace core
} // namespace soc
