#include "core/wi.hh"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace soc
{
namespace core
{

bool
ScheduleWindow::contains(sim::Tick t) const
{
    const int day = sim::dayOfWeek(t);
    if (((dayMask >> day) & 1) == 0)
        return false;
    const int minute =
        static_cast<int>(sim::timeOfDay(t) / sim::kMinute);
    return minute >= startMinute && minute < endMinute;
}

LocalWiAgent::LocalWiAgent(int vm_id, ServerOverclockingAgent *soa,
                           int group_id, int cores)
    : vmId_(vm_id), soa_(soa), groupId_(group_id), cores_(cores)
{
    assert(soa_ != nullptr);
}

AdmissionDecision
LocalWiAgent::start(sim::Tick now, TriggerKind trigger,
                    sim::Tick duration, power::FreqMHz f,
                    int priority)
{
    OverclockRequest request;
    request.groupId = groupId_;
    request.cores = cores_;
    request.desiredMHz = f;
    request.trigger = trigger;
    request.duration = duration;
    request.priority = priority;
    return soa_->requestOverclock(request, now);
}

void
LocalWiAgent::stop(sim::Tick now)
{
    soa_->stopOverclock(groupId_, now);
}

bool
LocalWiAgent::overclocked() const
{
    return soa_->isOverclockActive(groupId_);
}

GlobalWiAgent::GlobalWiAgent(std::string service,
                             WiPolicyConfig config)
    : service_(std::move(service)), config_(config)
{
}

LocalWiAgent &
GlobalWiAgent::addVm(std::unique_ptr<LocalWiAgent> vm)
{
    assert(vm != nullptr);
    vms_.push_back(std::move(vm));
    return *vms_.back();
}

std::unique_ptr<LocalWiAgent>
GlobalWiAgent::removeLastVm(sim::Tick now)
{
    if (vms_.empty())
        return nullptr;
    std::unique_ptr<LocalWiAgent> vm = std::move(vms_.back());
    vms_.pop_back();
    vm->stop(now);
    return vm;
}

double
GlobalWiAgent::deploymentUtil() const
{
    if (vms_.empty())
        return 0.0;
    double sum = 0.0;
    for (const auto &vm : vms_)
        sum += vm->lastMetrics.utilization;
    return sum / static_cast<double>(vms_.size());
}

bool
GlobalWiAgent::scheduleActive(sim::Tick now) const
{
    for (const auto &window : config_.windows)
        if (window.contains(now))
            return true;
    return false;
}

void
GlobalWiAgent::startOverclockAll(sim::Tick now, TriggerKind trigger)
{
    if (!config_.enableOverclock)
        return;

    // Deployment-level gate (§III-Q1, WebConf): if the deployment
    // already meets its utilization goal, overclocking is wasted.
    if (config_.deploymentUtilTarget > 0.0 &&
        deploymentUtil() <= config_.deploymentUtilTarget) {
        ++stats_.suppressedByDeploymentGoal;
        return;
    }

    const sim::Tick chunk = trigger == TriggerKind::Schedule
        ? config_.scheduleChunk
        : config_.metricsChunk;

    int denials = 0;
    bool any_granted = false;
    for (auto &vm : vms_) {
        if (vm->overclocked()) {
            any_granted = true;
            continue;
        }
        const AdmissionDecision decision =
            vm->start(now, trigger, chunk, config_.desiredMHz,
                      config_.priority);
        if (decision.granted) {
            any_granted = true;
            ++stats_.overclockStarts;
        } else {
            ++denials;
            ++stats_.denials;
        }
    }

    if (any_granted && !overclockActive_)
        overclockSince_ = now;
    overclockActive_ = any_granted;
    activeTrigger_ = trigger;

    // Corrective action: "create x new VMs if y existing VMs cannot
    // be overclocked" (§IV-D).
    pendingDenials_ += denials;
    if (pendingDenials_ >= config_.denialsPerScaleOut) {
        pendingDenials_ = 0;
        maybeScaleOut(now, config_.scaleOutStep, false);
    }
}

void
GlobalWiAgent::stopOverclockAll(sim::Tick now)
{
    for (auto &vm : vms_) {
        if (vm->overclocked()) {
            vm->stop(now);
            ++stats_.overclockStops;
        }
    }
    overclockActive_ = false;
}

bool
GlobalWiAgent::cooldownElapsed(sim::Tick now) const
{
    // kNeverTick is INT64_MIN, so `now - lastScaleAction_` would
    // overflow; check the sentinel explicitly instead.
    if (lastScaleAction_ == kNeverTick)
        return true;
    return now - lastScaleAction_ >= config_.scaleCooldown;
}

void
GlobalWiAgent::maybeScaleOut(sim::Tick now, int step, bool proactive)
{
    if (!config_.enableScaleOut || !scaleOutHandler_)
        return;
    if (!cooldownElapsed(now))
        return;
    const int room = config_.maxInstances -
        static_cast<int>(vms_.size());
    const int n = std::min(step, room);
    if (n <= 0)
        return;
    lastScaleAction_ = now;
    ++stats_.scaleOuts;
    if (proactive)
        ++stats_.proactiveScaleOuts;
    scaleOutHandler_(n);
}

void
GlobalWiAgent::maybeScaleIn(sim::Tick now)
{
    if (!config_.enableScaleOut || !scaleInHandler_)
        return;
    if (!cooldownElapsed(now))
        return;
    if (static_cast<int>(vms_.size()) <= config_.minInstances)
        return;
    lastScaleAction_ = now;
    ++stats_.scaleIns;
    scaleInHandler_(1);
}

double
GlobalWiAgent::latencyThresholdMs(double frac) const
{
    const double slo = config_.sloMs;
    const double base = config_.baselineP99Ms;
    if (base > 0.0 && base < slo) {
        // Interpolate inside the profiled headroom.
        return base + frac * (slo - base);
    }
    return slo * frac;
}

void
GlobalWiAgent::onMetrics(sim::Tick now, const VmMetrics &metrics)
{
    // Fail-closed validation: a window with non-finite or negative
    // fields is rejected whole, before any trigger state changes.
    if (!std::isfinite(metrics.p99LatencyMs) ||
        !std::isfinite(metrics.meanLatencyMs) ||
        !std::isfinite(metrics.utilization) ||
        metrics.p99LatencyMs < 0.0 || metrics.meanLatencyMs < 0.0 ||
        metrics.utilization < 0.0) {
        ++stats_.rejectedMetrics;
        return;
    }

    const double slo = config_.sloMs;
    const bool latency_triggers = slo > 0.0;
    const bool util_triggers = config_.overclockUpUtil > 0.0;

    bool want_up = false;
    bool want_down = true;
    if (latency_triggers) {
        want_up = metrics.p99LatencyMs >
            latencyThresholdMs(config_.overclockUpFrac);
        want_down = metrics.p99LatencyMs <
            latencyThresholdMs(config_.overclockDownFrac);
    }
    if (util_triggers) {
        want_up = want_up ||
            metrics.utilization > config_.overclockUpUtil;
        want_down = want_down &&
            metrics.utilization < config_.overclockDownUtil;
    }

    if (want_up) {
        startOverclockAll(now, TriggerKind::Metrics);
    } else if (want_down && overclockActive_ &&
               activeTrigger_ == TriggerKind::Metrics &&
               !scheduleActive(now)) {
        stopOverclockAll(now);
    }

    // Horizontal fallback runs on its own (later) threshold, so
    // overclocking gets the first chance to absorb the spike.
    if (latency_triggers && config_.enableScaleOut) {
        severeWindows_ = metrics.p99LatencyMs > slo
            ? severeWindows_ + 1
            : 0;
        if (metrics.p99LatencyMs >
            latencyThresholdMs(config_.scaleOutFrac)) {
            // Overclocking gets a grace period to absorb the spike
            // before the horizontal fallback kicks in; a sustained
            // outright SLO breach (two consecutive windows) cuts
            // the grace short.
            const bool exhausted_vertical =
                !config_.enableOverclock || pendingDenials_ > 0 ||
                (overclockActive_ &&
                 now - overclockSince_ >= config_.overclockGrace) ||
                severeWindows_ >= 2;
            if (exhausted_vertical)
                maybeScaleOut(now, config_.scaleOutStep, false);
        } else if (metrics.p99LatencyMs <
                   latencyThresholdMs(config_.scaleInFrac)) {
            maybeScaleIn(now);
        }
    }
}

void
GlobalWiAgent::tick(sim::Tick now)
{
    const bool in_window = scheduleActive(now);
    if (in_window && !overclockActive_) {
        startOverclockAll(now, TriggerKind::Schedule);
    } else if (!in_window && overclockActive_ &&
               activeTrigger_ == TriggerKind::Schedule) {
        stopOverclockAll(now);
    } else if (in_window && overclockActive_) {
        // Renew grants that are about to expire.
        startOverclockAll(now, TriggerKind::Schedule);
    }
}

void
GlobalWiAgent::onExhaustion(sim::Tick now,
                            const ExhaustionSignal &signal)
{
    (void)signal;
    if (config_.proactiveScaleOut)
        maybeScaleOut(now, config_.scaleOutStep, true);
}

} // namespace core
} // namespace soc
