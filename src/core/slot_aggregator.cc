#include "core/slot_aggregator.hh"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>
#include <string>
#include <vector>

namespace soc
{
namespace core
{

namespace
{

/**
 * Mirrors sim::median() over an already sorted range: the mid
 * element for odd sizes, the same 0.5 * (lower + upper) expression
 * for even sizes.
 */
double
sortedMedian(const std::vector<double> &sorted)
{
    assert(!sorted.empty());
    const std::size_t mid = sorted.size() / 2;
    if (sorted.size() % 2 == 1)
        return sorted[mid];
    return 0.5 * (sorted[mid - 1] + sorted[mid]);
}

} // namespace

void
SlotAggregator::SortedBag::erase(double v)
{
    // Evictions leave in arrival order, so the victim is as likely
    // to sit in the unsorted tail as in the body; try the cheap
    // unordered removal first.
    const auto pit = std::find(pending.begin(), pending.end(), v);
    if (pit != pending.end()) {
        pending.erase(pit);
        return;
    }
    const auto it = std::lower_bound(values.begin(), values.end(), v);
    assert(it != values.end() && *it == v);
    values.erase(it);
}

void
SlotAggregator::SortedBag::flushPending() const
{
    std::sort(pending.begin(), pending.end());
    const std::size_t mid = values.size();
    values.insert(values.end(), pending.begin(), pending.end());
    std::inplace_merge(
        values.begin(),
        values.begin() + static_cast<std::ptrdiff_t>(mid),
        values.end());
    pending.clear();
}

double
SlotAggregator::SortedBag::median() const
{
    flush();
    return sortedMedian(values);
}

SlotAggregator::SlotAggregator(sim::Tick window)
    : window_(window)
{
    assert(window_ == 0 ||
           (window_ >= sim::kSlot && window_ % sim::kSlot == 0));
}

void
SlotAggregator::add(sim::Tick t, double value)
{
    assert(t >= 0);
    assert(t > lastTick_);
    // Reject non-finite telemetry before it is retained: a NaN
    // breaks the ordering comparisons every bucket sort relies on,
    // silently corrupting every median far from the cause.
    if (!std::isfinite(value)) {
        throw std::invalid_argument(
            "SlotAggregator: non-finite sample " +
            std::to_string(value) + " at tick " + std::to_string(t));
    }
    lastTick_ = t;
    samples_.emplace_back(t, value);
    if (indexed_)
        indexSample(t, value);
    else if (samples_.size() > kIndexThreshold)
        buildIndex();
    ++version_;
    if (window_ > 0)
        evictOlderThan(t + sim::kSlot - window_);
}

void
SlotAggregator::indexSample(sim::Tick t, double value)
{
    all_.insert(value);
    auto &bucket = sim::isWeekend(t) ? weekend_[sim::slotOfDay(t)]
                                     : weekday_[sim::slotOfDay(t)];
    bucket.insert(value);
    const int slot_of_week =
        static_cast<int>((t % sim::kWeek) / sim::kSlot);
    weeklyLatest_[slot_of_week] = value;
    weeklyTick_[slot_of_week] = t;
}

void
SlotAggregator::buildIndex()
{
    indexed_ = true;
    all_.values.clear();
    all_.pending.clear();
    weekday_.assign(static_cast<std::size_t>(sim::kSlotsPerDay),
                    SortedBag{});
    weekend_.assign(static_cast<std::size_t>(sim::kSlotsPerDay),
                    SortedBag{});
    weeklyLatest_.assign(
        static_cast<std::size_t>(sim::kSlotsPerWeek), 0.0);
    weeklyTick_.assign(static_cast<std::size_t>(sim::kSlotsPerWeek),
                       sim::Tick{-1});
    // Replaying the ring in tick order leaves the indexed
    // structures exactly as if they had been maintained from the
    // retained samples all along: bag contents are multisets (the
    // sorted-body/pending split is representation only), and
    // latest-wins per slot-of-week matches the arrival order.
    for (const auto &[t, value] : samples_)
        indexSample(t, value);
}

void
SlotAggregator::evictOlderThan(sim::Tick cutoff)
{
    while (!samples_.empty() && samples_.front().first < cutoff) {
        const auto [t, value] = samples_.front();
        samples_.pop_front();
        if (indexed_) {
            all_.erase(value);
            auto &bucket = sim::isWeekend(t)
                ? weekend_[sim::slotOfDay(t)]
                : weekday_[sim::slotOfDay(t)];
            bucket.erase(value);
            const int slot_of_week =
                static_cast<int>((t % sim::kWeek) / sim::kSlot);
            // Samples leave in tick order, so when the latest value
            // of a slot-of-week is evicted no older one can remain.
            if (weeklyTick_[slot_of_week] == t)
                weeklyTick_[slot_of_week] = -1;
        }
        ++version_;
    }
}

void
SlotAggregator::clear()
{
    // Release everything outright (crash-restart forgets the shape
    // of the history too); storage regrows on demand.
    samples_.clear();
    samples_.shrink_to_fit();
    lastTick_ = -1;
    indexed_ = false;
    all_.values = {};
    all_.pending = {};
    weekday_ = {};
    weekend_ = {};
    weeklyLatest_ = {};
    weeklyTick_ = {};
    ++version_;
}

const ProfileTemplate &
SlotAggregator::build(TemplateStrategy strategy) const
{
    auto &entry = cache_[static_cast<std::size_t>(strategy)];
    if (!entry.valid || entry.version != version_) {
        entry.tmpl = assemble(strategy);
        entry.version = version_;
        entry.valid = true;
        ++rebuilds_;
    }
    return entry.tmpl;
}

ProfileTemplate
SlotAggregator::assemble(TemplateStrategy strategy) const
{
    return indexed_ ? assembleFromIndex(strategy)
                    : assembleFromRing(strategy);
}

ProfileTemplate
SlotAggregator::assembleFromRing(TemplateStrategy strategy) const
{
    // Field-for-field mirror of ProfileTemplate::build over the
    // retained samples; the equivalence tests hold the two
    // bit-identical for every strategy.
    //
    // Scratch is thread-local: contents are fully rewritten on
    // every assemble, so the result is a pure function of samples_
    // (deterministic across thread counts), and aggregators owned
    // by different racks can build concurrently.  build() runs only
    // at recompute boundaries, so sorting here instead of
    // maintaining sorted buckets on every add() trades a few
    // microseconds per rebuild for ~1.5 KB of resident state per
    // retained slot per aggregator — the dominant share of the
    // paper-scale footprint before this layout.
    ProfileTemplate out;
    out.strategy_ = strategy;
    if (empty())
        return out;

    // All retained values, sorted: FlatMed/FlatMax directly, and
    // the empty-bucket fallback median of Weekly/Daily*.
    thread_local std::vector<double> all_sorted;
    all_sorted.clear();
    all_sorted.reserve(samples_.size());
    for (const auto &[t, value] : samples_) {
        (void)t;
        all_sorted.push_back(value);
    }
    std::sort(all_sorted.begin(), all_sorted.end());

    switch (strategy) {
      case TemplateStrategy::FlatMed:
        out.flatValue_ = sortedMedian(all_sorted);
        return out;
      case TemplateStrategy::FlatMax:
        out.flatValue_ = all_sorted.back();
        return out;
      case TemplateStrategy::Weekly: {
        // Latest retained value per slot-of-week: samples_ is in
        // tick order, so a forward scan leaves each slot holding
        // its newest retained sample.
        thread_local std::vector<double> latest;
        thread_local std::vector<signed char> filled;
        latest.assign(static_cast<std::size_t>(sim::kSlotsPerWeek),
                      0.0);
        filled.assign(static_cast<std::size_t>(sim::kSlotsPerWeek),
                      0);
        for (const auto &[t, value] : samples_) {
            const auto slot = static_cast<std::size_t>(
                (t % sim::kWeek) / sim::kSlot);
            latest[slot] = value;
            filled[slot] = 1;
        }
        const double fallback = sortedMedian(all_sorted);
        out.weekly_.assign(sim::kSlotsPerWeek, 0.0);
        for (int s = 0; s < sim::kSlotsPerWeek; ++s) {
            out.weekly_[s] = filled[static_cast<std::size_t>(s)]
                ? latest[static_cast<std::size_t>(s)]
                : fallback;
        }
        return out;
      }
      case TemplateStrategy::DailyMed:
      case TemplateStrategy::DailyMax: {
        const bool use_max = strategy == TemplateStrategy::DailyMax;
        // Scatter the ring into per-(weekday|weekend)×slot buckets
        // in arrival order, then sort each bucket: the same sorted
        // arrays the batch builder derives, at build time instead
        // of incrementally.
        thread_local std::vector<std::vector<double>> weekday;
        thread_local std::vector<std::vector<double>> weekend;
        weekday.resize(static_cast<std::size_t>(sim::kSlotsPerDay));
        weekend.resize(static_cast<std::size_t>(sim::kSlotsPerDay));
        for (auto &bucket : weekday)
            bucket.clear();
        for (auto &bucket : weekend)
            bucket.clear();
        for (const auto &[t, value] : samples_) {
            const auto slot =
                static_cast<std::size_t>(sim::slotOfDay(t));
            (sim::isWeekend(t) ? weekend : weekday)[slot].push_back(
                value);
        }
        const double fallback = sortedMedian(all_sorted);
        auto aggregate = [use_max](std::vector<double> &bucket,
                                   double fb) {
            if (bucket.empty())
                return fb;
            std::sort(bucket.begin(), bucket.end());
            return use_max ? bucket.back() : sortedMedian(bucket);
        };
        out.weekday_.resize(sim::kSlotsPerDay);
        out.weekend_.resize(sim::kSlotsPerDay);
        for (int s = 0; s < sim::kSlotsPerDay; ++s) {
            const auto slot = static_cast<std::size_t>(s);
            out.weekday_[s] = aggregate(weekday[slot], fallback);
            out.weekend_[s] =
                aggregate(weekend[slot], out.weekday_[s]);
        }
        return out;
      }
    }
    return out;
}

ProfileTemplate
SlotAggregator::assembleFromIndex(TemplateStrategy strategy) const
{
    // Same mirror of ProfileTemplate::build, read from the
    // incrementally maintained bags: every bag read flushes first,
    // so medians/maxes come off the same sorted multisets the
    // ring-mode scatter would produce.
    ProfileTemplate out;
    out.strategy_ = strategy;
    if (empty())
        return out;

    switch (strategy) {
      case TemplateStrategy::FlatMed:
        out.flatValue_ = all_.median();
        return out;
      case TemplateStrategy::FlatMax:
        out.flatValue_ = all_.max();
        return out;
      case TemplateStrategy::Weekly: {
        out.weekly_.assign(sim::kSlotsPerWeek, 0.0);
        const double fallback = all_.median();
        for (int s = 0; s < sim::kSlotsPerWeek; ++s) {
            out.weekly_[s] =
                weeklyTick_[s] >= 0 ? weeklyLatest_[s] : fallback;
        }
        return out;
      }
      case TemplateStrategy::DailyMed:
      case TemplateStrategy::DailyMax: {
        const bool use_max = strategy == TemplateStrategy::DailyMax;
        auto aggregate = [use_max](const SortedBag &bucket,
                                   double fallback) {
            if (bucket.empty())
                return fallback;
            return use_max ? bucket.max() : bucket.median();
        };
        const double fallback = all_.median();
        out.weekday_.resize(sim::kSlotsPerDay);
        out.weekend_.resize(sim::kSlotsPerDay);
        for (int s = 0; s < sim::kSlotsPerDay; ++s) {
            out.weekday_[s] = aggregate(weekday_[s], fallback);
            out.weekend_[s] =
                aggregate(weekend_[s], out.weekday_[s]);
        }
        return out;
      }
    }
    return out;
}

} // namespace core
} // namespace soc
