#include "core/slot_aggregator.hh"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>
#include <string>

namespace soc
{
namespace core
{

void
SlotAggregator::SortedBag::erase(double v)
{
    // Evictions leave in arrival order, so the victim is as likely
    // to sit in the unsorted tail as in the body; try the cheap
    // unordered removal first.
    const auto pit =
        std::find(pending.begin(), pending.end(), v);
    if (pit != pending.end()) {
        pending.erase(pit);
        return;
    }
    const auto it =
        std::lower_bound(values.begin(), values.end(), v);
    assert(it != values.end() && *it == v);
    values.erase(it);
}

void
SlotAggregator::SortedBag::flushPending() const
{
    std::sort(pending.begin(), pending.end());
    const std::size_t mid = values.size();
    values.insert(values.end(), pending.begin(), pending.end());
    std::inplace_merge(values.begin(),
                       values.begin() + static_cast<std::ptrdiff_t>(mid),
                       values.end());
    pending.clear();
}

double
SlotAggregator::SortedBag::median() const
{
    // Mirrors sim::median(): the mid element for odd sizes, the
    // same 0.5 * (lower + upper) expression for even sizes.
    flush();
    assert(!values.empty());
    const std::size_t mid = values.size() / 2;
    if (values.size() % 2 == 1)
        return values[mid];
    return 0.5 * (values[mid - 1] + values[mid]);
}

SlotAggregator::SlotAggregator(sim::Tick window)
    : window_(window),
      weekday_(sim::kSlotsPerDay),
      weekend_(sim::kSlotsPerDay),
      weeklyLatest_(sim::kSlotsPerWeek, 0.0),
      weeklyTick_(sim::kSlotsPerWeek, -1)
{
    assert(window_ == 0 ||
           (window_ >= sim::kSlot && window_ % sim::kSlot == 0));
}

void
SlotAggregator::add(sim::Tick t, double value)
{
    assert(t >= 0);
    assert(t > lastTick_);
    // Reject non-finite telemetry before it touches any bucket: a
    // NaN breaks SortedBag's ordering invariant (upper_bound /
    // lower_bound stop meaning anything), silently corrupting every
    // median until erase() asserts far from the cause.  Same
    // fail-at-ingestion stance as BudgetAssignment validation.
    if (!std::isfinite(value)) {
        throw std::invalid_argument(
            "SlotAggregator: non-finite sample " +
            std::to_string(value) + " at tick " + std::to_string(t));
    }
    lastTick_ = t;
    ++count_;
    if (window_ > 0)
        samples_.emplace_back(t, value);
    all_.insert(value);
    auto &bucket = sim::isWeekend(t) ? weekend_[sim::slotOfDay(t)]
                                     : weekday_[sim::slotOfDay(t)];
    bucket.insert(value);
    const int slot_of_week =
        static_cast<int>((t % sim::kWeek) / sim::kSlot);
    weeklyLatest_[slot_of_week] = value;
    weeklyTick_[slot_of_week] = t;
    ++version_;
    if (window_ > 0)
        evictOlderThan(t + sim::kSlot - window_);
}

void
SlotAggregator::evictOlderThan(sim::Tick cutoff)
{
    while (!samples_.empty() && samples_.front().first < cutoff) {
        const auto [t, value] = samples_.front();
        samples_.pop_front();
        --count_;
        all_.erase(value);
        auto &bucket = sim::isWeekend(t)
            ? weekend_[sim::slotOfDay(t)]
            : weekday_[sim::slotOfDay(t)];
        bucket.erase(value);
        const int slot_of_week =
            static_cast<int>((t % sim::kWeek) / sim::kSlot);
        // Samples leave in tick order, so when the latest value of
        // a slot-of-week is evicted no older one can remain.
        if (weeklyTick_[slot_of_week] == t)
            weeklyTick_[slot_of_week] = -1;
        ++version_;
    }
}

void
SlotAggregator::clear()
{
    samples_.clear();
    count_ = 0;
    lastTick_ = -1;
    all_.values.clear();
    all_.pending.clear();
    for (auto &bucket : weekday_) {
        bucket.values.clear();
        bucket.pending.clear();
    }
    for (auto &bucket : weekend_) {
        bucket.values.clear();
        bucket.pending.clear();
    }
    std::fill(weeklyTick_.begin(), weeklyTick_.end(),
              sim::Tick{-1});
    ++version_;
}

const ProfileTemplate &
SlotAggregator::build(TemplateStrategy strategy) const
{
    auto &entry = cache_[static_cast<std::size_t>(strategy)];
    if (!entry.valid || entry.version != version_) {
        entry.tmpl = assemble(strategy);
        entry.version = version_;
        entry.valid = true;
        ++rebuilds_;
    }
    return entry.tmpl;
}

ProfileTemplate
SlotAggregator::assemble(TemplateStrategy strategy) const
{
    // Field-for-field mirror of ProfileTemplate::build over the
    // retained samples; the equivalence tests hold the two
    // bit-identical for every strategy.
    ProfileTemplate out;
    out.strategy_ = strategy;
    if (empty())
        return out;

    switch (strategy) {
      case TemplateStrategy::FlatMed:
        out.flatValue_ = all_.median();
        return out;
      case TemplateStrategy::FlatMax:
        out.flatValue_ = all_.max();
        return out;
      case TemplateStrategy::Weekly: {
        out.weekly_.assign(sim::kSlotsPerWeek, 0.0);
        const double fallback = all_.median();
        for (int s = 0; s < sim::kSlotsPerWeek; ++s) {
            out.weekly_[s] =
                weeklyTick_[s] >= 0 ? weeklyLatest_[s] : fallback;
        }
        return out;
      }
      case TemplateStrategy::DailyMed:
      case TemplateStrategy::DailyMax: {
        const bool use_max = strategy == TemplateStrategy::DailyMax;
        auto aggregate = [use_max](const SortedBag &bucket,
                                   double fallback) {
            if (bucket.empty())
                return fallback;
            return use_max ? bucket.max() : bucket.median();
        };
        const double fallback = all_.median();
        out.weekday_.resize(sim::kSlotsPerDay);
        out.weekend_.resize(sim::kSlotsPerDay);
        for (int s = 0; s < sim::kSlotsPerDay; ++s) {
            out.weekday_[s] = aggregate(weekday_[s], fallback);
            out.weekend_[s] =
                aggregate(weekend_[s], out.weekday_[s]);
        }
        return out;
      }
    }
    return out;
}

} // namespace core
} // namespace soc
