/**
 * @file
 * Workload Intelligence (WI) agents — §IV-A and Fig. 10.
 *
 * SmartOClock extends the autoscaling interface with vertical
 * scaling (overclocking).  Each VM carries a Local WI agent bound
 * to its server's sOA; the service's Global WI agent aggregates
 * VM metrics, evaluates the workload's metrics- and schedule-based
 * thresholds, triggers per-VM overclocking, and falls back to
 * horizontal scale-out when overclocking is denied or an sOA
 * predicts exhaustion (§IV-D "Managing resource exhaustion").
 *
 * The same class also implements the plain autoscaling baselines of
 * §V-A: disabling overclocking yields the ScaleOut environment,
 * disabling scale-out yields ScaleUp, disabling both yields
 * Baseline.
 */

#ifndef SOC_CORE_WI_HH
#define SOC_CORE_WI_HH

#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "core/messages.hh"
#include "core/soa.hh"

namespace soc
{
namespace core
{

/**
 * Sentinel for "this action has never happened": far enough in the
 * past that any cooldown has elapsed, but compared explicitly (see
 * GlobalWiAgent::cooldownElapsed) rather than subtracted, so the
 * arithmetic can never overflow.  Replaces the old -(1 << 30) magic
 * number, which silently broke cooldowns longer than ~18 simulated
 * minutes (now - sentinel was already positive).
 */
constexpr sim::Tick kNeverTick =
    std::numeric_limits<sim::Tick>::min();

/** Thresholds and fallback policy for one service. */
struct WiPolicyConfig {
    /** Enable vertical scaling (overclock). */
    bool enableOverclock = true;
    /** Enable horizontal scaling (scale-out/in fallback). */
    bool enableScaleOut = true;

    /** SLO used by latency triggers; <= 0 disables them. */
    double sloMs = 0.0;
    /** Profiled unloaded P99 of the service.  When set (> 0 and
     *  below the SLO), latency thresholds interpolate between it
     *  and the SLO instead of being plain SLO fractions, the way
     *  operators tune thresholds after profiling (§IV-A). */
    double baselineP99Ms = 0.0;
    /** Overclock when P99 exceeds this fraction of the SLO. */
    double overclockUpFrac = 0.70;
    /** Stop overclocking when P99 falls below this fraction. */
    double overclockDownFrac = 0.35;
    /** Scale out when P99 exceeds this fraction of the SLO. */
    double scaleOutFrac = 0.90;
    /** Scale in when P99 falls below this fraction of the SLO. */
    double scaleInFrac = 0.45;

    /** Utilization triggers; <= 0 disables them. */
    double overclockUpUtil = 0.0;
    double overclockDownUtil = 0.0;

    /** Deployment-level utilization goal (WebConf); <= 0 disables.
     *  While the deployment meets the goal, overclocking is
     *  suppressed even if individual VMs run hot (§III-Q1). */
    double deploymentUtilTarget = 0.0;

    /** Schedule-based windows (may combine with metrics). */
    std::vector<ScheduleWindow> windows;
    /** Duration requested per schedule window grant. */
    sim::Tick scheduleChunk = 30 * sim::kMinute;
    /** Horizon requested per metrics-based grant. */
    sim::Tick metricsChunk = 15 * sim::kMinute;

    power::FreqMHz desiredMHz = power::kOverclockMHz;
    int priority = 1;

    /** Corrective scale-out: create this many VMs per action... */
    int scaleOutStep = 1;
    /** ...once this many VMs cannot be overclocked (§IV-D). */
    int denialsPerScaleOut = 1;
    int minInstances = 1;
    int maxInstances = 64;
    sim::Tick scaleCooldown = 60 * sim::kSecond;
    /** How long overclocking gets to absorb a spike before the
     *  horizontal fallback may fire (§IV-A: scale-out is the
     *  fallback, not a parallel action). */
    sim::Tick overclockGrace = 60 * sim::kSecond;
    /** Scale out ahead of predicted exhaustion (proactive, §IV-D). */
    bool proactiveScaleOut = true;
};

/**
 * Local WI agent: the per-VM shim between the VM's metrics source
 * and the server's sOA.
 */
class LocalWiAgent
{
  public:
    /**
     * @param vm_id    Service-scoped VM identifier.
     * @param soa      The sOA of the server hosting this VM.
     * @param group_id The VM's core group on that server.
     * @param cores    Cores the VM overclocks.
     */
    LocalWiAgent(int vm_id, ServerOverclockingAgent *soa,
                 int group_id, int cores);

    int vmId() const { return vmId_; }
    int groupId() const { return groupId_; }
    ServerOverclockingAgent *soa() { return soa_; }

    /** Forward an overclocking request to the sOA. */
    AdmissionDecision start(sim::Tick now, TriggerKind trigger,
                            sim::Tick duration, power::FreqMHz f,
                            int priority);

    /** Stop overclocking this VM. */
    void stop(sim::Tick now);

    bool overclocked() const;

    /** Latest metrics sample (set by the metric pump). */
    VmMetrics lastMetrics;

  private:
    int vmId_;
    ServerOverclockingAgent *soa_;
    int groupId_;
    int cores_;
};

/** Counters for the evaluation harnesses. */
struct WiStats {
    std::uint64_t overclockStarts = 0;
    std::uint64_t overclockStops = 0;
    std::uint64_t denials = 0;
    std::uint64_t scaleOuts = 0;
    std::uint64_t scaleIns = 0;
    std::uint64_t proactiveScaleOuts = 0;
    std::uint64_t suppressedByDeploymentGoal = 0;
    /** Metric windows rejected fail-closed (NaN/negative fields)
     *  before touching any trigger state. */
    std::uint64_t rejectedMetrics = 0;
};

/**
 * Global WI agent for one service deployment.
 */
class GlobalWiAgent
{
  public:
    GlobalWiAgent(std::string service, WiPolicyConfig config);

    const std::string &service() const { return service_; }
    const WiPolicyConfig &config() const { return config_; }
    WiPolicyConfig &mutableConfig() { return config_; }
    const WiStats &stats() const { return stats_; }

    /**
     * Register a VM.  The agent wires itself as the sOA's
     * exhaustion callback sink for this VM.
     */
    LocalWiAgent &addVm(std::unique_ptr<LocalWiAgent> vm);

    /** Deregister the most recently added VM (scale-in). */
    std::unique_ptr<LocalWiAgent> removeLastVm(sim::Tick now);

    std::size_t vmCount() const { return vms_.size(); }
    LocalWiAgent &vm(std::size_t idx) { return *vms_[idx]; }

    /** Actuators, wired by the cluster harness. */
    void setScaleOutHandler(std::function<void(int)> handler)
    {
        scaleOutHandler_ = std::move(handler);
    }
    void setScaleInHandler(std::function<void(int)> handler)
    {
        scaleInHandler_ = std::move(handler);
    }

    /**
     * Push one service-level metric window (aggregated across VM
     * instances) and run the trigger logic.  The sample is
     * validated fail-closed first: a window with NaN/infinite or
     * negative latency/utilization fields is rejected whole
     * (stats().rejectedMetrics) without touching any trigger or
     * scaling state — consistent with the SlotAggregator::add NaN
     * policy.
     */
    void onMetrics(sim::Tick now, const VmMetrics &metrics);

    /**
     * Evaluate schedule windows and grant expiry; call at least
     * once per minute of simulated time.
     */
    void tick(sim::Tick now);

    /** Exhaustion signal from an sOA (proactive scale-out). */
    void onExhaustion(sim::Tick now, const ExhaustionSignal &signal);

    /** Is the service currently in an overclock episode? */
    bool overclocking() const { return overclockActive_; }

    /** Current deployment-level utilization estimate. */
    double deploymentUtil() const;

  private:
    double latencyThresholdMs(double frac) const;
    bool scheduleActive(sim::Tick now) const;
    /** Overflow-safe cooldown check against lastScaleAction_. */
    bool cooldownElapsed(sim::Tick now) const;
    void startOverclockAll(sim::Tick now, TriggerKind trigger);
    void stopOverclockAll(sim::Tick now);
    void maybeScaleOut(sim::Tick now, int step, bool proactive);
    void maybeScaleIn(sim::Tick now);

    std::string service_;
    WiPolicyConfig config_;
    std::vector<std::unique_ptr<LocalWiAgent>> vms_;

    bool overclockActive_ = false;
    sim::Tick overclockSince_ = 0;
    /** Consecutive poll windows with P99 beyond the SLO itself. */
    int severeWindows_ = 0;
    TriggerKind activeTrigger_ = TriggerKind::Metrics;
    sim::Tick lastScaleAction_ = kNeverTick;
    int pendingDenials_ = 0;

    std::function<void(int)> scaleOutHandler_;
    std::function<void(int)> scaleInHandler_;
    WiStats stats_;
};

} // namespace core
} // namespace soc

#endif // SOC_CORE_WI_HH
