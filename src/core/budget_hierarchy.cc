#include "core/budget_hierarchy.hh"

#include <cassert>

namespace soc
{
namespace core
{

BudgetHierarchy::BudgetHierarchy(const power::PowerModel &model,
                                 HierarchyConfig config)
    : model_(model), config_(config), allocator_(model, config.budget)
{
    assert(config_.racksPerRow > 0);
}

int
BudgetHierarchy::addRack(std::vector<ServerProfile> profiles)
{
    assert(!profiles.empty());
    const int id = static_cast<int>(rackProfiles_.size());
    rackProfiles_.push_back(std::move(profiles));
    rackDirty_.push_back(true);

    const auto row = static_cast<std::size_t>(id) /
        static_cast<std::size_t>(config_.racksPerRow);
    if (row >= rowCount_) {
        rowCount_ = row + 1;
        rackAggregates_.emplace_back();
        rackBudgets_.emplace_back();
        rowAggregates_.emplace_back();
        rowDirty_.push_back(true);
    }
    rackAggregates_[row].emplace_back();
    rowDirty_[row] = true;
    return id;
}

void
BudgetHierarchy::setRackProfiles(int rack,
                                 std::vector<ServerProfile> profiles)
{
    assert(!profiles.empty());
    const auto r = static_cast<std::size_t>(rack);
    rackProfiles_[r] = std::move(profiles);
    rackDirty_[r] = true;
    rowDirty_[r / static_cast<std::size_t>(config_.racksPerRow)] =
        true;
}

void
BudgetHierarchy::aggregate(const ServerProfile *members,
                           std::size_t count, ServerProfile &out)
{
    assert(count > 0);
    const auto slots = static_cast<std::size_t>(sim::kSlotsPerWeek);
    aggPower_.assign(slots, 0.0);
    aggUtil_.assign(slots, 0.0);
    aggOc_.assign(slots, 0.0);
    aggReq_.assign(slots, 0.0);
    for (std::size_t m = 0; m < count; ++m) {
        const ServerProfile &p = members[m];
        for (std::size_t slot = 0; slot < slots; ++slot) {
            const sim::Tick t =
                static_cast<sim::Tick>(slot) * sim::kSlot;
            aggPower_[slot] += p.power.predict(t);
            aggUtil_[slot] += p.utilization.predict(t);
            aggOc_[slot] += p.overclockedCores.predict(t);
            aggReq_[slot] += p.requestedCores.predict(t);
        }
    }
    // Power and core counts add; utilization is the members' mean
    // (it only feeds the allocator's per-core surcharge model, where
    // a representative utilization is what the flat split uses too).
    for (std::size_t slot = 0; slot < slots; ++slot)
        aggUtil_[slot] /= static_cast<double>(count);
    out.power.assignWeekly(aggPower_);
    out.utilization.assignWeekly(aggUtil_);
    out.overclockedCores.assignWeekly(aggOc_);
    out.requestedCores.assignWeekly(aggReq_);
}

void
BudgetHierarchy::recompute(power::Watts zoneLimit)
{
    if (rackProfiles_.empty())
        return;
    const auto k = static_cast<std::size_t>(config_.racksPerRow);

    // 1. Rebuild stale rack aggregates (dirty racks only).
    for (std::size_t r = 0; r < rackProfiles_.size(); ++r) {
        if (!rackDirty_[r])
            continue;
        aggregate(rackProfiles_[r].data(), rackProfiles_[r].size(),
                  rackAggregates_[r / k][r % k]);
        rackDirty_[r] = false;
        ++stats_.rackAggregations;
    }

    // 2. Rebuild stale row aggregates from their rack aggregates.
    for (std::size_t row = 0; row < rowCount_; ++row) {
        if (!rowDirty_[row])
            continue;
        aggregate(rackAggregates_[row].data(),
                  rackAggregates_[row].size(), rowAggregates_[row]);
        rowDirty_[row] = false;
        ++stats_.rowAggregations;
    }

    // 3. Zone -> rows.  The safety margin is applied here, once.
    const auto slots = static_cast<std::size_t>(sim::kSlotsPerWeek);
    const double usable = zoneLimit.count() *
        (1.0 - config_.budget.safetyFraction);
    limitRow_.assign(slots, usable);
    allocator_.splitWeeklyInto(limitRow_, rowAggregates_, scratch_,
                               rowBudgets_);
    ++stats_.splits;

    // 4. Row -> racks, per row, over the row's per-slot budget.
    for (std::size_t row = 0; row < rowCount_; ++row) {
        for (std::size_t slot = 0; slot < slots; ++slot) {
            limitRow_[slot] = rowBudgets_[row].predict(
                static_cast<sim::Tick>(slot) * sim::kSlot);
        }
        allocator_.splitWeeklyInto(limitRow_, rackAggregates_[row],
                                   scratch_, rackBudgets_[row]);
        ++stats_.splits;
    }
}

} // namespace core
} // namespace soc
