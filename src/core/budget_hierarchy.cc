#include "core/budget_hierarchy.hh"

#include <cassert>
#include <utility>

namespace soc
{
namespace core
{

BudgetHierarchy::BudgetHierarchy(const power::PowerModel &model,
                                 HierarchyConfig config)
    : model_(model), config_(config), allocator_(model, config.budget)
{
    assert(config_.racksPerRow > 0);
}

void
ProfileAggregator::aggregate(const ServerProfile *members,
                             std::size_t count, ServerProfile &out)
{
    assert(count > 0);
    const auto slots = static_cast<std::size_t>(sim::kSlotsPerWeek);
    power_.assign(slots, 0.0);
    util_.assign(slots, 0.0);
    oc_.assign(slots, 0.0);
    req_.assign(slots, 0.0);
    // Member-outer with a bulk fillWeek per template: each slot
    // still accumulates members in index order, so the sums are
    // bit-identical to the per-tick predict loop this replaces —
    // without re-deriving slot-of-week 2016 times per template.
    row_.resize(slots);
    const auto accumulate = [&](const ProfileTemplate &tmpl,
                                std::vector<double> &acc) {
        tmpl.fillWeek(row_.data());
        for (std::size_t slot = 0; slot < slots; ++slot)
            acc[slot] += row_[slot];
    };
    for (std::size_t m = 0; m < count; ++m) {
        const ServerProfile &p = members[m];
        accumulate(p.power, power_);
        accumulate(p.utilization, util_);
        accumulate(p.overclockedCores, oc_);
        accumulate(p.requestedCores, req_);
    }
    // Power and core counts add; utilization is the members' mean
    // (it only feeds the allocator's per-core surcharge model, where
    // a representative utilization is what the flat split uses too).
    for (std::size_t slot = 0; slot < slots; ++slot)
        util_[slot] /= static_cast<double>(count);
    out.power.assignWeekly(power_);
    out.utilization.assignWeekly(util_);
    out.overclockedCores.assignWeekly(oc_);
    out.requestedCores.assignWeekly(req_);
}

int
BudgetHierarchy::addRack(std::vector<ServerProfile> profiles)
{
    assert(!profiles.empty());
    assert(!externalAggregates_ &&
           "BudgetHierarchy: addRack mixed with addRackAggregate");
    const int id = static_cast<int>(rackProfiles_.size());
    rackProfiles_.push_back(std::move(profiles));
    rackDirty_.push_back(true);

    const auto row = static_cast<std::size_t>(id) /
        static_cast<std::size_t>(config_.racksPerRow);
    if (row >= rowCount_) {
        rowCount_ = row + 1;
        rackAggregates_.emplace_back();
        rackBudgets_.emplace_back();
        rowAggregates_.emplace_back();
        rowDirty_.push_back(true);
    }
    rackAggregates_[row].emplace_back();
    rowDirty_[row] = true;
    return id;
}

int
BudgetHierarchy::addRackAggregate(ServerProfile aggregate)
{
    assert((rackProfiles_.empty() || externalAggregates_) &&
           "BudgetHierarchy: addRackAggregate mixed with addRack");
    externalAggregates_ = true;
    const int id = static_cast<int>(rackProfiles_.size());
    // The per-server slot stays empty: aggregates are pushed from
    // outside, the hierarchy never aggregates this rack itself.
    rackProfiles_.emplace_back();
    rackDirty_.push_back(false);

    const auto row = static_cast<std::size_t>(id) /
        static_cast<std::size_t>(config_.racksPerRow);
    if (row >= rowCount_) {
        rowCount_ = row + 1;
        rackAggregates_.emplace_back();
        rackBudgets_.emplace_back();
        rowAggregates_.emplace_back();
        rowDirty_.push_back(true);
    }
    rackAggregates_[row].push_back(std::move(aggregate));
    rowDirty_[row] = true;
    return id;
}

void
BudgetHierarchy::setRackProfiles(int rack,
                                 std::vector<ServerProfile> profiles)
{
    assert(!profiles.empty());
    assert(!externalAggregates_ &&
           "BudgetHierarchy: setRackProfiles on an aggregate rack");
    const auto r = static_cast<std::size_t>(rack);
    rackProfiles_[r] = std::move(profiles);
    rackDirty_[r] = true;
    rowDirty_[r / static_cast<std::size_t>(config_.racksPerRow)] =
        true;
}

void
BudgetHierarchy::exchangeRackAggregate(int rack,
                                       ServerProfile &aggregate)
{
    assert(externalAggregates_ &&
           "BudgetHierarchy: exchangeRackAggregate on addRack racks");
    const auto r = static_cast<std::size_t>(rack);
    const auto k = static_cast<std::size_t>(config_.racksPerRow);
    std::swap(rackAggregates_[r / k][r % k], aggregate);
    rowDirty_[r / k] = true;
}

void
BudgetHierarchy::recompute(power::Watts zoneLimit)
{
    if (rackProfiles_.empty())
        return;
    const auto k = static_cast<std::size_t>(config_.racksPerRow);

    // 1. Rebuild stale rack aggregates (dirty racks only; racks
    //    registered through addRackAggregate are never dirty — their
    //    aggregates arrive pre-built via exchangeRackAggregate).
    for (std::size_t r = 0; r < rackProfiles_.size(); ++r) {
        if (!rackDirty_[r])
            continue;
        aggregator_.aggregate(rackProfiles_[r].data(),
                              rackProfiles_[r].size(),
                              rackAggregates_[r / k][r % k]);
        rackDirty_[r] = false;
        ++stats_.rackAggregations;
    }

    // 2. Rebuild stale row aggregates from their rack aggregates.
    for (std::size_t row = 0; row < rowCount_; ++row) {
        if (!rowDirty_[row])
            continue;
        aggregator_.aggregate(rackAggregates_[row].data(),
                              rackAggregates_[row].size(),
                              rowAggregates_[row]);
        rowDirty_[row] = false;
        ++stats_.rowAggregations;
    }

    // 3. Zone -> rows.  The safety margin is applied here, once.
    const auto slots = static_cast<std::size_t>(sim::kSlotsPerWeek);
    const power::Watts usable =
        zoneLimit * (1.0 - config_.budget.safetyFraction);
    limitRow_.assign(slots, usable.count());
    allocator_.splitWeeklyInto(limitRow_, rowAggregates_, scratch_,
                               rowBudgets_);
    ++stats_.splits;

    // 4. Row -> racks, per row, over the row's per-slot budget.
    for (std::size_t row = 0; row < rowCount_; ++row) {
        rowBudgets_[row].fillWeek(limitRow_.data());
        allocator_.splitWeeklyInto(limitRow_, rackAggregates_[row],
                                   scratch_, rackBudgets_[row]);
        ++stats_.splits;
    }
}

} // namespace core
} // namespace soc
