/**
 * @file
 * Fixed-point utilization quantization for compact replay columns.
 *
 * The fleet replay stores windowed utilization samples as uint16
 * fixed point (steps of 1/65535 over [0, 1]) and turbo-watts hints
 * as float, cutting the slot-major window memory 2.7x versus double
 * columns and making the per-slot walk cache-resident (DESIGN.md
 * §14).  The contract:
 *
 *  - quantizeUtil rounds to the nearest step, so the round trip
 *    satisfies |dequantUtil(quantizeUtil(u)) - u| <= 0.5/65535 for
 *    every u in [0, 1] (enforced by test);
 *  - out-of-range inputs clamp (utilization is defined on [0, 1];
 *    the generator clamps before quantizing anyway) and NaN maps to
 *    0 — the same fail-low stance as telemetry ingest, which rejects
 *    non-finite samples before they reach any consumer;
 *  - dequantUtil is the single dequantization expression: every
 *    reader (want-mask thresholds, Server::setUtilsAndTurboWatts,
 *    the turbo-watts hint computation) goes through it, so a stored
 *    q always denotes exactly q * (1/65535).
 */

#ifndef SOC_SIM_QUANT_HH
#define SOC_SIM_QUANT_HH

#include <cstdint>

namespace soc
{
namespace sim
{

/** One utilization quantization step. */
constexpr double kUtilQuantStep = 1.0 / 65535.0;

/** Largest quantized utilization (denotes exactly 1.0). */
constexpr std::uint16_t kUtilQuantMax = 65535;

/** Nearest-step fixed-point encoding of a utilization in [0, 1];
 *  clamps out-of-range inputs, maps NaN to 0. */
inline std::uint16_t
quantizeUtil(double u)
{
    if (!(u > 0.0))
        return 0; // negative, zero, or NaN
    if (u >= 1.0)
        return kUtilQuantMax;
    return static_cast<std::uint16_t>(u * 65535.0 + 0.5);
}

/** Exact value a quantized utilization denotes. */
inline double
dequantUtil(std::uint16_t q)
{
    return static_cast<double>(q) * kUtilQuantStep;
}

} // namespace sim
} // namespace soc

#endif // SOC_SIM_QUANT_HH
