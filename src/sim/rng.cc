#include "sim/rng.hh"

#include <cmath>

namespace soc
{
namespace sim
{

namespace
{

/** SplitMix64 step, used only for seeding. */
std::uint64_t
splitMix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t s = seed;
    for (auto &word : state_)
        word = splitMix64(s);
}

Rng::result_type
Rng::operator()()
{
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;

    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);

    return result;
}

double
Rng::uniform()
{
    // 53 high bits give a uniform double in [0, 1).
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

std::int64_t
Rng::uniformInt(std::int64_t lo, std::int64_t hi)
{
    const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>((*this)() % span);
}

double
Rng::normal()
{
    if (hasSpare_) {
        hasSpare_ = false;
        return spareNormal_;
    }
    double u, v, s;
    do {
        u = uniform(-1.0, 1.0);
        v = uniform(-1.0, 1.0);
        s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double factor = std::sqrt(-2.0 * std::log(s) / s);
    spareNormal_ = v * factor;
    hasSpare_ = true;
    return u * factor;
}

double
Rng::normal(double mean, double stddev)
{
    return mean + stddev * normal();
}

void
Rng::normalFill(double *out, std::size_t n)
{
    std::size_t i = 0;
    if (i < n && hasSpare_) {
        hasSpare_ = false;
        out[i++] = spareNormal_;
    }
    // Accepted polar pairs land as consecutive samples; this is the
    // same draw order as the scalar path, which returns u*factor and
    // caches v*factor for the immediately following call.
    while (i + 1 < n) {
        double u, v, s;
        do {
            u = uniform(-1.0, 1.0);
            v = uniform(-1.0, 1.0);
            s = u * u + v * v;
        } while (s >= 1.0 || s == 0.0);
        const double factor = std::sqrt(-2.0 * std::log(s) / s);
        out[i++] = u * factor;
        out[i++] = v * factor;
    }
    if (i < n)
        out[i] = normal(); // odd tail: caches the pair's spare
}

void
Rng::uniformFill(double *out, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        out[i] = static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double
Rng::exponential(double mean)
{
    // 1 - uniform() is in (0, 1], so the log is finite.
    return -mean * std::log(1.0 - uniform());
}

double
Rng::lognormal(double mu, double sigma)
{
    return std::exp(normal(mu, sigma));
}

std::int64_t
Rng::poisson(double mean)
{
    if (mean <= 0.0)
        return 0;
    if (mean < 30.0) {
        // Knuth's method for small means.
        const double limit = std::exp(-mean);
        double product = uniform();
        std::int64_t count = 0;
        while (product > limit) {
            ++count;
            product *= uniform();
        }
        return count;
    }
    // Normal approximation for large means; adequate for load gen.
    const double draw = normal(mean, std::sqrt(mean));
    return draw < 0.0 ? 0 : static_cast<std::int64_t>(draw + 0.5);
}

bool
Rng::chance(double p)
{
    return uniform() < p;
}

Rng
Rng::split()
{
    return Rng((*this)());
}

std::uint64_t
deriveSeed(std::uint64_t seed, std::uint64_t stream)
{
    // Two finalizer rounds so that nearby (seed, stream) pairs land
    // far apart even when both differ in only a few low bits.
    std::uint64_t x = seed ^ (stream * 0x9e3779b97f4a7c15ULL);
    (void)splitMix64(x);
    return splitMix64(x);
}

} // namespace sim
} // namespace soc
