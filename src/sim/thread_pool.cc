#include "sim/thread_pool.hh"

#include <algorithm>
#include <memory>

namespace soc
{
namespace sim
{

int
ThreadPool::defaultThreads()
{
    const unsigned hc = std::thread::hardware_concurrency();
    return hc == 0 ? 1 : static_cast<int>(hc);
}

ThreadPool::ThreadPool(int threads)
{
    const int total = threads < 1 ? 1 : threads;
    workers_.reserve(static_cast<std::size_t>(total - 1));
    for (int i = 0; i < total - 1; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    wake_.notify_all();
    for (auto &worker : workers_)
        worker.join();
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            wake_.wait(lock,
                       [this] { return stop_ || !tasks_.empty(); });
            if (tasks_.empty()) {
                if (stop_)
                    return;
                continue;
            }
            task = std::move(tasks_.front());
            tasks_.pop_front();
        }
        task();
    }
}

void
ThreadPool::parallelFor(std::size_t n,
                        const std::function<void(std::size_t)> &fn)
{
    // One index per chunk: identical semantics to the historical
    // per-index dispatch, now expressed over the chunked scheduler.
    parallelForChunked(n, 1,
                       [&fn](std::size_t begin, std::size_t end) {
                           for (std::size_t i = begin; i < end; ++i)
                               fn(i);
                       });
}

void
ThreadPool::parallelForChunked(
    std::size_t n, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)> &fn)
{
    if (n == 0)
        return;
    grain = std::max<std::size_t>(grain, 1);
    const std::size_t chunks = (n + grain - 1) / grain;
    if (workers_.empty() || chunks == 1) {
        for (std::size_t c = 0; c < chunks; ++c)
            fn(c * grain, std::min(n, (c + 1) * grain));
        return;
    }

    /** Work-sharing state for one parallelForChunked call.  Chunk
     *  indices are claimed through an atomic cursor; `completed`
     *  (guarded by `mutex`) tracks finished chunks so the caller
     *  can block until stragglers on worker threads drain. */
    struct Batch {
        Batch(std::size_t total, std::size_t chunk_count,
              std::size_t grain_size,
              const std::function<void(std::size_t, std::size_t)> &f)
            : n(total), chunks(chunk_count), grain(grain_size), fn(f)
        {
        }

        std::size_t n;
        std::size_t chunks;
        std::size_t grain;
        const std::function<void(std::size_t, std::size_t)> &fn;
        std::atomic<std::size_t> next{0};
        std::mutex mutex;
        std::condition_variable done;
        std::size_t completed = 0;
        std::exception_ptr error;

        void run()
        {
            for (;;) {
                const std::size_t c =
                    next.fetch_add(1, std::memory_order_relaxed);
                if (c >= chunks)
                    return;
                std::exception_ptr thrown;
                try {
                    fn(c * grain, std::min(n, (c + 1) * grain));
                } catch (...) {
                    thrown = std::current_exception();
                }
                std::lock_guard<std::mutex> lock(mutex);
                if (thrown && !error)
                    error = thrown;
                if (++completed == chunks)
                    done.notify_all();
            }
        }
    };

    // The batch must outlive the caller's wait, and the enqueued
    // tasks may still hold a reference while they observe an empty
    // chunk range, hence shared ownership.
    auto batch = std::make_shared<Batch>(n, chunks, grain, fn);

    const std::size_t helpers =
        std::min(workers_.size(), chunks - 1);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (std::size_t i = 0; i < helpers; ++i)
            tasks_.emplace_back([batch] { batch->run(); });
    }
    if (helpers == 1)
        wake_.notify_one();
    else
        wake_.notify_all();

    batch->run();

    std::unique_lock<std::mutex> lock(batch->mutex);
    batch->done.wait(lock, [&batch] {
        return batch->completed == batch->chunks;
    });
    if (batch->error)
        std::rethrow_exception(batch->error);
}

} // namespace sim
} // namespace soc
