/**
 * @file
 * Deterministic random-number generation for reproducible experiments.
 *
 * Every experiment binary seeds its own `Rng` explicitly, so runs are
 * bit-reproducible regardless of scheduling.  The generator is
 * xoshiro256** seeded through SplitMix64, the combination recommended
 * by the xoshiro authors; it is far faster than std::mt19937_64 and
 * has no observable bias for our sample counts.
 */

#ifndef SOC_SIM_RNG_HH
#define SOC_SIM_RNG_HH

#include <array>
#include <cstdint>

namespace soc
{
namespace sim
{

/**
 * Deterministic pseudo-random generator (xoshiro256**).
 *
 * Satisfies UniformRandomBitGenerator, so it can also feed the
 * <random> distributions, though the member samplers below are what
 * the code base uses.
 */
class Rng
{
  public:
    using result_type = std::uint64_t;

    /** Seed through SplitMix64 so nearby seeds diverge immediately. */
    explicit Rng(std::uint64_t seed = 0x5eed5eed5eedULL);

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~0ULL; }

    /** Next raw 64-bit draw. */
    result_type operator()();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t uniformInt(std::int64_t lo, std::int64_t hi);

    /** Standard normal via Marsaglia polar method. */
    double normal();

    /** Normal with the given mean and standard deviation. */
    double normal(double mean, double stddev);

    /**
     * Fill out[0..n) with standard normals, consuming the stream
     * exactly like n successive normal() calls: a cached spare from
     * a previous call is emitted first, accepted polar pairs land in
     * order, and an odd tail leaves its second draw cached for the
     * *next* call (scalar or batch).  Pinned bit-identical to the
     * scalar loop by test, so generators may switch freely between
     * the two shapes mid-stream.  The batch form hoists the
     * spare-cache bookkeeping and call overhead out of the per-sample
     * path — the trace generator's window fills run on it.
     */
    void normalFill(double *out, std::size_t n);

    /** Fill out[0..n) with uniforms in [0, 1): bit-identical to n
     *  successive uniform() calls. */
    void uniformFill(double *out, std::size_t n);

    /** Exponential with the given mean (not rate). */
    double exponential(double mean);

    /** Lognormal parameterized by the underlying normal's mu/sigma. */
    double lognormal(double mu, double sigma);

    /** Poisson-distributed count with the given mean. */
    std::int64_t poisson(double mean);

    /** Bernoulli draw. */
    bool chance(double p);

    /**
     * Derive an independent child generator.  Used to give each
     * server/VM its own stream so adding one entity does not perturb
     * the draws of the others.
     */
    Rng split();

  private:
    std::array<std::uint64_t, 4> state_;

    /** Cached second draw of the polar method. */
    double spareNormal_ = 0.0;
    bool hasSpare_ = false;
};

/**
 * Derive the seed of an independent stream from a base seed
 * (SplitMix64 finalizer over seed and stream index).
 *
 * Parallel entities (e.g. the racks of the trace simulator) each
 * seed their own generator with `deriveSeed(seed, index)` so their
 * draws neither overlap nor depend on the order in which the other
 * entities consume randomness.
 */
std::uint64_t deriveSeed(std::uint64_t seed, std::uint64_t stream);

} // namespace sim
} // namespace soc

#endif // SOC_SIM_RNG_HH
