#include "sim/stats.hh"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

namespace soc
{
namespace sim
{

void
OnlineStats::add(double x)
{
    if (count_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
}

void
OnlineStats::merge(const OnlineStats &other)
{
    if (other.count_ == 0)
        return;
    if (count_ == 0) {
        *this = other;
        return;
    }
    const double na = static_cast<double>(count_);
    const double nb = static_cast<double>(other.count_);
    const double delta = other.mean_ - mean_;
    const double total = na + nb;
    mean_ += delta * nb / total;
    m2_ += other.m2_ + delta * delta * na * nb / total;
    count_ += other.count_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

double
OnlineStats::variance() const
{
    if (count_ == 0)
        return 0.0;
    return m2_ / static_cast<double>(count_);
}

double
OnlineStats::stddev() const
{
    return std::sqrt(variance());
}

void
Percentiles::add(double x)
{
    samples_.push_back(x);
    sorted_ = samples_.size() <= 1;
}

void
Percentiles::merge(const Percentiles &other)
{
    if (other.samples_.empty())
        return;
    const std::size_t mid = samples_.size();
    const bool both_sorted = sorted_ && other.sorted_;
    samples_.insert(samples_.end(), other.samples_.begin(),
                    other.samples_.end());
    if (both_sorted) {
        // Two sorted runs: an in-place merge is O(n) and keeps the
        // lazily-cached sorted order valid, so a quantile query
        // right after a merge skips the O(n log n) re-sort.
        std::inplace_merge(samples_.begin(),
                           samples_.begin() +
                               static_cast<std::ptrdiff_t>(mid),
                           samples_.end());
        sorted_ = true;
    } else {
        sorted_ = samples_.size() <= 1;
    }
}

void
Percentiles::ensureSorted() const
{
    if (!sorted_) {
        std::sort(samples_.begin(), samples_.end());
        sorted_ = true;
    }
}

double
Percentiles::quantile(double q) const
{
    if (samples_.empty())
        return 0.0;
    ensureSorted();
    q = std::clamp(q, 0.0, 1.0);
    const double rank = q * static_cast<double>(samples_.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, samples_.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

double
Percentiles::mean() const
{
    if (samples_.empty())
        return 0.0;
    const double sum = std::accumulate(samples_.begin(), samples_.end(),
                                       0.0);
    return sum / static_cast<double>(samples_.size());
}

double
Percentiles::fractionAbove(double threshold) const
{
    if (samples_.empty())
        return 0.0;
    ensureSorted();
    const auto it = std::upper_bound(samples_.begin(), samples_.end(),
                                     threshold);
    const auto above = std::distance(it, samples_.end());
    return static_cast<double>(above) /
        static_cast<double>(samples_.size());
}

std::vector<CdfPoint>
buildCdf(std::vector<double> samples, std::size_t points)
{
    std::vector<CdfPoint> cdf;
    if (samples.empty() || points == 0)
        return cdf;
    std::sort(samples.begin(), samples.end());
    cdf.reserve(points);
    for (std::size_t i = 0; i < points; ++i) {
        const double frac = points == 1
            ? 1.0
            : static_cast<double>(i) / static_cast<double>(points - 1);
        const double rank = frac *
            static_cast<double>(samples.size() - 1);
        const std::size_t lo = static_cast<std::size_t>(rank);
        const std::size_t hi = std::min(lo + 1, samples.size() - 1);
        const double part = rank - static_cast<double>(lo);
        cdf.push_back({samples[lo] * (1.0 - part) + samples[hi] * part,
                       frac});
    }
    return cdf;
}

double
rmse(const std::vector<double> &actual,
     const std::vector<double> &predicted)
{
    assert(actual.size() == predicted.size());
    if (actual.empty())
        return 0.0;
    double sum = 0.0;
    for (std::size_t i = 0; i < actual.size(); ++i) {
        const double diff = predicted[i] - actual[i];
        sum += diff * diff;
    }
    return std::sqrt(sum / static_cast<double>(actual.size()));
}

double
meanAbsoluteError(const std::vector<double> &actual,
                  const std::vector<double> &predicted)
{
    assert(actual.size() == predicted.size());
    if (actual.empty())
        return 0.0;
    double sum = 0.0;
    for (std::size_t i = 0; i < actual.size(); ++i)
        sum += std::abs(predicted[i] - actual[i]);
    return sum / static_cast<double>(actual.size());
}

double
meanSignedError(const std::vector<double> &actual,
                const std::vector<double> &predicted)
{
    assert(actual.size() == predicted.size());
    if (actual.empty())
        return 0.0;
    double sum = 0.0;
    for (std::size_t i = 0; i < actual.size(); ++i)
        sum += predicted[i] - actual[i];
    return sum / static_cast<double>(actual.size());
}

double
median(std::vector<double> samples)
{
    if (samples.empty())
        return 0.0;
    const std::size_t mid = samples.size() / 2;
    std::nth_element(samples.begin(), samples.begin() + mid,
                     samples.end());
    double upper = samples[mid];
    if (samples.size() % 2 == 1)
        return upper;
    std::nth_element(samples.begin(), samples.begin() + mid - 1,
                     samples.begin() + mid);
    return 0.5 * (samples[mid - 1] + upper);
}

} // namespace sim
} // namespace soc
