/**
 * @file
 * Simulated-time primitives shared by every SmartOClock subsystem.
 *
 * The simulator measures time in integer microseconds (`Tick`).  Six
 * weeks of simulated time is ~3.6e12 ticks, comfortably inside the
 * int64 range, while one tick is fine enough for the microservice
 * queueing models that need sub-millisecond latencies.
 */

#ifndef SOC_SIM_TIME_HH
#define SOC_SIM_TIME_HH

#include <cstdint>
#include <string>

namespace soc
{
namespace sim
{

/** Simulated time in microseconds since the start of the simulation. */
using Tick = std::int64_t;

constexpr Tick kMicrosecond = 1;
constexpr Tick kMillisecond = 1000 * kMicrosecond;
constexpr Tick kSecond = 1000 * kMillisecond;
constexpr Tick kMinute = 60 * kSecond;
constexpr Tick kHour = 60 * kMinute;
constexpr Tick kDay = 24 * kHour;
constexpr Tick kWeek = 7 * kDay;

/** Telemetry slot width used throughout the paper: 5 minutes. */
constexpr Tick kSlot = 5 * kMinute;

/** Number of 5-minute telemetry slots in one day. */
constexpr int kSlotsPerDay = static_cast<int>(kDay / kSlot);

/** Number of 5-minute telemetry slots in one week. */
constexpr int kSlotsPerWeek = 7 * kSlotsPerDay;

/**
 * Day-of-week for a tick.  Tick 0 is defined to be Monday 00:00 so
 * that weekday/weekend template logic is trivial to reason about.
 *
 * @param t Simulated time.
 * @return 0 = Monday ... 6 = Sunday.
 */
constexpr int
dayOfWeek(Tick t)
{
    return static_cast<int>((t / kDay) % 7);
}

/** @return true when @p t falls on Saturday or Sunday. */
constexpr bool
isWeekend(Tick t)
{
    return dayOfWeek(t) >= 5;
}

/** @return microseconds elapsed since midnight of the tick's day. */
constexpr Tick
timeOfDay(Tick t)
{
    return t % kDay;
}

/** @return index of the 5-minute slot within the tick's day. */
constexpr int
slotOfDay(Tick t)
{
    return static_cast<int>(timeOfDay(t) / kSlot);
}

/** @return fractional hour of day in [0, 24). */
constexpr double
hourOfDay(Tick t)
{
    return static_cast<double>(timeOfDay(t)) /
        static_cast<double>(kHour);
}

/** Format a tick as "d<day> hh:mm:ss" for logs and bench output. */
std::string formatTick(Tick t);

} // namespace sim
} // namespace soc

#endif // SOC_SIM_TIME_HH
