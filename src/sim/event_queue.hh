/**
 * @file
 * Discrete-event queue underlying every SmartOClock simulation.
 *
 * Two kinds of simulation run on this queue: the 5-minute-slot power
 * simulation used for the large-scale trace studies (Table I) and the
 * microsecond-scale queueing simulation used for the cluster
 * experiments (Figs. 12-14).  Both need deterministic ordering, event
 * cancellation (e.g. a scheduled scale-down cancelled by a new load
 * spike), and periodic events (control-loop ticks).
 */

#ifndef SOC_SIM_EVENT_QUEUE_HH
#define SOC_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "sim/time.hh"

namespace soc
{
namespace sim
{

/** Opaque handle identifying a scheduled event, used to cancel it. */
using EventId = std::uint64_t;

/** Sentinel returned when scheduling fails / for "no event". */
constexpr EventId kInvalidEvent = 0;

/**
 * Time-ordered event queue with stable FIFO ordering among events
 * scheduled for the same tick.
 */
class EventQueue
{
  public:
    using Handler = std::function<void(Tick)>;

    EventQueue() = default;
    ~EventQueue();

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time (the tick of the last executed event). */
    Tick now() const { return now_; }

    /**
     * Schedule @p handler to run at absolute time @p when.
     * Scheduling in the past is a programming error and asserts.
     *
     * @return handle usable with cancel().
     */
    EventId schedule(Tick when, Handler handler);

    /** Schedule @p handler to run @p delay after now(). */
    EventId scheduleAfter(Tick delay, Handler handler);

    /**
     * Cancel a previously scheduled event.
     *
     * @return true if the event was pending and is now cancelled.
     */
    bool cancel(EventId id);

    /** @return true when no runnable events remain. */
    bool empty() const;

    /** Number of pending (non-cancelled) events. */
    std::size_t size() const { return pendingCount_; }

    /**
     * Run the next event.
     *
     * @return false when the queue is empty.
     */
    bool step();

    /** Run events until the queue drains or now() would pass @p until;
     *  afterwards now() is exactly @p until. */
    void runUntil(Tick until);

    /** Run events until the queue drains. */
    void run();

    /** Total number of events executed so far. */
    std::uint64_t executedCount() const { return executed_; }

  private:
    struct Entry {
        Tick when;
        std::uint64_t seq; // tie-break: FIFO within a tick
        EventId id;
        Handler handler;
        bool cancelled = false;
    };

    struct EntryCompare {
        bool
        operator()(const Entry *a, const Entry *b) const
        {
            if (a->when != b->when)
                return a->when > b->when;
            return a->seq > b->seq;
        }
    };

    /** Pop cancelled entries off the heap head. */
    void skipCancelled();

    Tick now_ = 0;
    std::uint64_t nextSeq_ = 0;
    EventId nextId_ = 1;
    std::uint64_t executed_ = 0;
    std::size_t pendingCount_ = 0;

    std::priority_queue<Entry *, std::vector<Entry *>, EntryCompare>
        heap_;
    // Pending entries by id; cancellation flags the entry in place and
    // the heap lazily discards it when it reaches the head.  Lookup
    // only — execution order comes from the heap, never from hash
    // iteration.  soclint:allow(DET-003)
    std::unordered_map<EventId, Entry *> live_;
};

} // namespace sim
} // namespace soc

#endif // SOC_SIM_EVENT_QUEUE_HH
