#include "sim/event_queue.hh"

#include <cassert>
#include <utility>

namespace soc
{
namespace sim
{

EventQueue::~EventQueue()
{
    while (!heap_.empty()) {
        delete heap_.top();
        heap_.pop();
    }
}

EventId
EventQueue::schedule(Tick when, Handler handler)
{
    assert(when >= now_ && "scheduling into the past");
    auto *entry = new Entry{when, nextSeq_++, nextId_++,
                            std::move(handler)};
    heap_.push(entry);
    live_.emplace(entry->id, entry);
    ++pendingCount_;
    return entry->id;
}

EventId
EventQueue::scheduleAfter(Tick delay, Handler handler)
{
    return schedule(now_ + delay, std::move(handler));
}

bool
EventQueue::cancel(EventId id)
{
    auto it = live_.find(id);
    if (it == live_.end())
        return false;
    it->second->cancelled = true;
    live_.erase(it);
    --pendingCount_;
    return true;
}

bool
EventQueue::empty() const
{
    return pendingCount_ == 0;
}

void
EventQueue::skipCancelled()
{
    while (!heap_.empty() && heap_.top()->cancelled) {
        Entry *entry = heap_.top();
        heap_.pop();
        delete entry;
    }
}

bool
EventQueue::step()
{
    skipCancelled();
    if (heap_.empty())
        return false;

    Entry *entry = heap_.top();
    heap_.pop();
    live_.erase(entry->id);
    --pendingCount_;

    now_ = entry->when;
    ++executed_;

    // Move the handler out so the entry can be freed even if the
    // handler reschedules (it cannot touch this entry anymore).
    Handler handler = std::move(entry->handler);
    delete entry;
    handler(now_);
    return true;
}

void
EventQueue::runUntil(Tick until)
{
    while (true) {
        skipCancelled();
        if (heap_.empty() || heap_.top()->when > until)
            break;
        step();
    }
    if (now_ < until)
        now_ = until;
}

void
EventQueue::run()
{
    while (step()) {
    }
}

} // namespace sim
} // namespace soc
