#include "sim/time.hh"

#include <cstdio>

namespace soc
{
namespace sim
{

std::string
formatTick(Tick t)
{
    const long day = static_cast<long>(t / kDay);
    const Tick rem = timeOfDay(t);
    const int hh = static_cast<int>(rem / kHour);
    const int mm = static_cast<int>((rem % kHour) / kMinute);
    const int ss = static_cast<int>((rem % kMinute) / kSecond);
    char buf[48];
    std::snprintf(buf, sizeof(buf), "d%ld %02d:%02d:%02d", day, hh, mm,
                  ss);
    return buf;
}

} // namespace sim
} // namespace soc
