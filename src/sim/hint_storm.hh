/**
 * @file
 * Adversarial hint generators for the ingestion boundary
 * (DESIGN.md §12; ROADMAP item 5).
 *
 * A stress-ng-style *catalog* of deterministic stressors, each
 * forging `core::wire` frames that attack the `core::HintIngress`
 * in a different way:
 *
 *  - HintFlood        : valid overclock requests far beyond the
 *                       queue capacity (exercises the drop policy);
 *  - DuplicateFlood   : exact retransmits of one frame (exercises
 *                       dedup and oldest-duplicate-first eviction);
 *  - FlappingSchedule : alternating start/stop request pairs for
 *                       the same VM (exercises the sOA hysteresis);
 *  - LyingTelemetry   : metrics windows with NaN / negative /
 *                       absurd fields (must all be rejected with an
 *                       attributed counter);
 *  - StaleTelemetry   : well-formed metrics stamped hours in the
 *                       past or the future (Stale rejection);
 *  - MalformedFuzz    : byte-level corruptions drawn from a seeded
 *                       corpus (bad magic/version/tag/length,
 *                       truncation, NaN, negative, over-limit).
 *
 * Determinism follows the FaultPlan idiom: per-event decisions are
 * stateless hashes of (stream, kind, server, time), so generated
 * storms depend neither on call order nor on thread count — the
 * same seed yields bit-identical frames at 1, 2 or 8 threads.
 */

#ifndef SOC_SIM_HINT_STORM_HH
#define SOC_SIM_HINT_STORM_HH

#include <cstdint>
#include <functional>

#include "core/wire.hh"
#include "sim/time.hh"

namespace soc
{
namespace sim
{

/** The stressor catalog. */
enum class StormKind : std::uint8_t {
    HintFlood = 0,
    DuplicateFlood,
    FlappingSchedule,
    LyingTelemetry,
    StaleTelemetry,
    MalformedFuzz,
    kCount,
};

constexpr std::size_t kStormKinds =
    static_cast<std::size_t>(StormKind::kCount);

/** Catalog entry: name + what the stressor attacks. */
struct StormInfo {
    StormKind kind = StormKind::HintFlood;
    const char *name = "";
    const char *attacks = "";
};

/** The full catalog, indexed by StormKind. */
const StormInfo *stormCatalog();

const char *stormName(StormKind kind);

/**
 * Storm intensities, in expected frames per (server, step).
 * Fractional rates are realized deterministically via a stateless
 * hash (a rate of 0.25 emits one frame every ~4th step).
 */
struct HintStormConfig {
    /** Master switch; disabled generators emit nothing. */
    bool enabled = false;

    double floodPerStep = 0.0;
    double duplicatesPerStep = 0.0;
    double flapsPerStep = 0.0;
    double lyingPerStep = 0.0;
    double stalePerStep = 0.0;
    double malformedPerStep = 0.0;

    /** Age of StaleTelemetry frames (also used, negated, for
     *  future-dated ones). */
    Tick staleAge = 2 * kHour;

    /** Salt separating storm streams from workload and fault
     *  streams. */
    std::uint64_t salt = 0x5707A57707A5ULL;

    /** Throws std::invalid_argument on out-of-range knobs. */
    void validate() const;

    /** Rate for @p kind. */
    double rate(StormKind kind) const;

    /** Sum of all rates (expected frames per server-step). */
    double intensity() const;

    /** Any stressor active? */
    bool any() const;

    /** The standard mixed storm used by the chaos tests and
     *  bench_hint_storm: every stressor at a rate high enough that
     *  a short run exercises every rejection and drop path. */
    static HintStormConfig standardStorm();

    /** A single-stressor config (bench isolates each catalog
     *  entry). */
    static HintStormConfig only(StormKind kind, double perStep);
};

/**
 * Deterministic per-rack storm generator.  Owns no queue and no
 * clock: generate() forges the frames for one (server, step) pair
 * and hands them to a callback, which typically offers them to the
 * rack's HintIngress.
 */
class HintStormGenerator
{
  public:
    using Emit = std::function<void(const core::wire::Frame &)>;

    /** Inert generator (emits nothing). */
    HintStormGenerator() = default;

    /**
     * @param config       Storm rates (validated).
     * @param seed         Experiment seed.
     * @param rack         Rack index (independent streams per rack).
     * @param servers      Servers in the rack.
     * @param vmsPerServer VM ids the stressors target, [0, n).
     */
    HintStormGenerator(const HintStormConfig &config,
                       std::uint64_t seed, std::uint64_t rack,
                       int servers, int vmsPerServer);

    bool enabled() const { return config_.enabled; }
    const HintStormConfig &config() const { return config_; }

    /**
     * Forge this step's adversarial frames for @p server at @p now
     * and pass each to @p emit.  Deterministic in (server, now):
     * the same arguments always produce the same frames.
     *
     * @return frames emitted.
     */
    std::size_t generate(int server, Tick now,
                         const Emit &emit) const;

  private:
    /** Uniform in [0, 1) from a stateless hash of the operands. */
    double hashUniform(std::uint64_t kind, std::uint64_t a,
                       std::uint64_t b, std::uint64_t c = 0) const;

    /** Deterministic count realizing a fractional rate. */
    std::size_t countFor(StormKind kind, double rate, int server,
                         Tick now) const;

    core::wire::Frame forgeFlood(int server, Tick now,
                                 std::size_t i) const;
    core::wire::Frame forgeDuplicate(int server, Tick now) const;
    core::wire::Frame forgeFlap(int server, Tick now,
                                std::size_t i) const;
    core::wire::Frame forgeLying(int server, Tick now,
                                 std::size_t i) const;
    core::wire::Frame forgeStale(int server, Tick now,
                                 std::size_t i) const;
    core::wire::Frame forgeMalformed(int server, Tick now,
                                     std::size_t i) const;

    int vmFor(std::uint64_t kind, int server, Tick now,
              std::size_t i) const;

    HintStormConfig config_;
    std::uint64_t stream_ = 0;
    int servers_ = 0;
    int vmsPerServer_ = 1;
};

} // namespace sim
} // namespace soc

#endif // SOC_SIM_HINT_STORM_HH
