#include "sim/fault_injector.hh"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "sim/rng.hh"

namespace soc
{
namespace sim
{

namespace
{

/** Hash-stream tags: one per decision kind so the streams never
 *  alias even for identical (server, time) operands. */
enum : std::uint64_t {
    kTagOutage = 1,
    kTagCrash = 2,
    kTagTelemetry = 3,
    kTagBudgetLoss = 4,
    kTagBudgetDelayGate = 5,
    kTagBudgetDelayAmount = 6,
    kTagBudgetCorrupt = 7,
    kTagCorruptKind = 8,
    kTagSensorA = 9,
    kTagSensorB = 10,
};

void
requireProb(double p, const char *name)
{
    if (!(p >= 0.0 && p <= 1.0)) {
        throw std::invalid_argument(
            std::string("FaultConfig: ") + name +
            " must be in [0, 1], got " + std::to_string(p));
    }
}

void
requireNonNegative(double v, const char *name)
{
    if (!(v >= 0.0)) {
        throw std::invalid_argument(
            std::string("FaultConfig: ") + name +
            " must be >= 0, got " + std::to_string(v));
    }
}

} // namespace

void
FaultConfig::validate() const
{
    requireNonNegative(goaOutagesPerWeek, "goaOutagesPerWeek");
    requireNonNegative(soaCrashesPerServerWeek,
                       "soaCrashesPerServerWeek");
    requireProb(telemetryLossProb, "telemetryLossProb");
    requireProb(budgetLossProb, "budgetLossProb");
    requireProb(budgetDelayProb, "budgetDelayProb");
    requireProb(budgetCorruptProb, "budgetCorruptProb");
    requireNonNegative(sensorNoiseStd, "sensorNoiseStd");
    if (goaOutageMeanDuration < 0) {
        throw std::invalid_argument(
            "FaultConfig: goaOutageMeanDuration must be >= 0");
    }
    if (budgetDelayMax < 0) {
        throw std::invalid_argument(
            "FaultConfig: budgetDelayMax must be >= 0");
    }
    if (telemetryAttempts < 1) {
        throw std::invalid_argument(
            "FaultConfig: telemetryAttempts must be >= 1, got " +
            std::to_string(telemetryAttempts));
    }
}

FaultConfig
FaultConfig::standardChaos()
{
    FaultConfig config;
    config.enabled = true;
    config.goaOutagesPerWeek = 2.0;
    config.goaOutageMeanDuration = 8 * kHour;
    config.soaCrashesPerServerWeek = 1.0;
    config.telemetryLossProb = 0.20;
    config.telemetryAttempts = 3;
    config.budgetLossProb = 0.10;
    config.budgetDelayProb = 0.20;
    config.budgetDelayMax = 30 * kMinute;
    config.budgetCorruptProb = 0.05;
    config.sensorNoiseStd = 0.02;
    config.sensorBias = 0.01;
    return config;
}

void
FaultStats::merge(const FaultStats &other)
{
    goaOutages += other.goaOutages;
    recomputesSkipped += other.recomputesSkipped;
    soaCrashes += other.soaCrashes;
    telemetryDrops += other.telemetryDrops;
    telemetryRetries += other.telemetryRetries;
    budgetDrops += other.budgetDrops;
    budgetDelays += other.budgetDelays;
    budgetRejects += other.budgetRejects;
}

FaultPlan
FaultPlan::generate(const FaultConfig &config, std::uint64_t seed,
                    std::uint64_t rack, int servers, Tick horizon)
{
    config.validate();
    FaultPlan plan;
    plan.config_ = config;
    plan.enabled_ = config.enabled;
    plan.stream_ = deriveSeed(seed ^ config.salt, rack);
    if (!config.enabled || horizon <= 0)
        return plan;

    const double weeks =
        static_cast<double>(horizon) / static_cast<double>(kWeek);

    // gOA outage episodes: Poisson count over the horizon, uniform
    // starts, exponential durations, overlaps merged.
    if (config.goaOutagesPerWeek > 0.0) {
        Rng rng(deriveSeed(plan.stream_, kTagOutage));
        const std::int64_t count =
            rng.poisson(config.goaOutagesPerWeek * weeks);
        std::vector<GoaOutage> raw;
        for (std::int64_t i = 0; i < count; ++i) {
            GoaOutage outage;
            outage.start = rng.uniformInt(0, horizon - 1);
            const double span = rng.exponential(static_cast<double>(
                std::max<Tick>(1, config.goaOutageMeanDuration)));
            outage.end = outage.start +
                std::max<Tick>(kMinute, static_cast<Tick>(span));
            raw.push_back(outage);
        }
        std::sort(raw.begin(), raw.end(),
                  [](const GoaOutage &a, const GoaOutage &b) {
            return a.start < b.start;
        });
        for (const auto &outage : raw) {
            if (!plan.outages_.empty() &&
                outage.start <= plan.outages_.back().end) {
                plan.outages_.back().end =
                    std::max(plan.outages_.back().end, outage.end);
            } else {
                plan.outages_.push_back(outage);
            }
        }
    }

    // Crash schedule: independent Poisson process per server, so
    // adding a server never perturbs the others' crash times.
    if (config.soaCrashesPerServerWeek > 0.0) {
        for (int s = 0; s < servers; ++s) {
            Rng rng(deriveSeed(
                plan.stream_,
                kTagCrash * 1000003ULL + static_cast<std::uint64_t>(s)));
            const std::int64_t count =
                rng.poisson(config.soaCrashesPerServerWeek * weeks);
            for (std::int64_t i = 0; i < count; ++i) {
                SoaCrashEvent crash;
                crash.server = s;
                crash.at = rng.uniformInt(0, horizon - 1);
                plan.crashes_.push_back(crash);
            }
        }
        std::sort(plan.crashes_.begin(), plan.crashes_.end(),
                  [](const SoaCrashEvent &a, const SoaCrashEvent &b) {
            return a.at != b.at ? a.at < b.at : a.server < b.server;
        });
    }
    return plan;
}

bool
FaultPlan::goaDown(Tick now) const
{
    if (!enabled_ || outages_.empty())
        return false;
    // First episode starting after `now`; the one before it is the
    // only candidate that can contain `now`.
    auto it = std::upper_bound(
        outages_.begin(), outages_.end(), now,
        [](Tick t, const GoaOutage &o) { return t < o.start; });
    if (it == outages_.begin())
        return false;
    --it;
    return now < it->end;
}

double
FaultPlan::hashUniform(std::uint64_t kind, std::uint64_t a,
                       std::uint64_t b, std::uint64_t c) const
{
    std::uint64_t h = deriveSeed(stream_, kind);
    h = deriveSeed(h, a);
    h = deriveSeed(h, b);
    h = deriveSeed(h, c);
    return static_cast<double>(h >> 11) * 0x1.0p-53;
}

bool
FaultPlan::telemetryLost(int server, Tick now, int attempt) const
{
    if (!enabled_ || config_.telemetryLossProb <= 0.0)
        return false;
    return hashUniform(kTagTelemetry,
                       static_cast<std::uint64_t>(server),
                       static_cast<std::uint64_t>(now),
                       static_cast<std::uint64_t>(attempt)) <
        config_.telemetryLossProb;
}

bool
FaultPlan::budgetLost(int server, Tick now) const
{
    if (!enabled_ || config_.budgetLossProb <= 0.0)
        return false;
    return hashUniform(kTagBudgetLoss,
                       static_cast<std::uint64_t>(server),
                       static_cast<std::uint64_t>(now)) <
        config_.budgetLossProb;
}

Tick
FaultPlan::budgetDelay(int server, Tick now) const
{
    if (!enabled_ || config_.budgetDelayProb <= 0.0 ||
        config_.budgetDelayMax <= 0) {
        return 0;
    }
    if (hashUniform(kTagBudgetDelayGate,
                    static_cast<std::uint64_t>(server),
                    static_cast<std::uint64_t>(now)) >=
        config_.budgetDelayProb) {
        return 0;
    }
    const double frac = hashUniform(
        kTagBudgetDelayAmount, static_cast<std::uint64_t>(server),
        static_cast<std::uint64_t>(now));
    return 1 + static_cast<Tick>(
        frac * static_cast<double>(config_.budgetDelayMax));
}

bool
FaultPlan::budgetCorrupted(int server, Tick now) const
{
    if (!enabled_ || config_.budgetCorruptProb <= 0.0)
        return false;
    return hashUniform(kTagBudgetCorrupt,
                       static_cast<std::uint64_t>(server),
                       static_cast<std::uint64_t>(now)) <
        config_.budgetCorruptProb;
}

int
FaultPlan::corruptionKind(int server, Tick now) const
{
    return static_cast<int>(
        hashUniform(kTagCorruptKind,
                    static_cast<std::uint64_t>(server),
                    static_cast<std::uint64_t>(now)) * 3.0);
}

double
FaultPlan::sensorFactor(int server, Tick now) const
{
    if (!enabled_ ||
        (config_.sensorNoiseStd <= 0.0 && config_.sensorBias == 0.0)) {
        return 1.0;
    }
    double z = 0.0;
    if (config_.sensorNoiseStd > 0.0) {
        // Box-Muller over two stateless uniforms; u1 nudged away
        // from zero so the log stays finite.
        const double u1 = std::max(
            hashUniform(kTagSensorA,
                        static_cast<std::uint64_t>(server),
                        static_cast<std::uint64_t>(now)),
            1e-12);
        const double u2 = hashUniform(
            kTagSensorB, static_cast<std::uint64_t>(server),
            static_cast<std::uint64_t>(now));
        z = std::sqrt(-2.0 * std::log(u1)) *
            std::cos(2.0 * 3.14159265358979323846 * u2);
    }
    const double factor =
        1.0 + config_.sensorBias + config_.sensorNoiseStd * z;
    // A sensor may misread, but never reports negative power.
    return std::max(0.05, factor);
}

} // namespace sim
} // namespace soc
