/**
 * @file
 * Minimal worker pool for embarrassingly parallel simulation loops.
 *
 * The cluster simulators decompose into per-rack units with no
 * shared mutable state (see DESIGN.md "Threading model"), so the
 * only primitive needed is a deterministic `parallelFor`: every
 * index is executed exactly once, each index writes only its own
 * output slot, and callers merge the slots in index order
 * afterwards.  Scheduling order is therefore free to vary across
 * runs without affecting results.
 *
 * A pool of size 1 runs everything inline on the calling thread and
 * spawns no workers at all, so `threads=1` is a true serial
 * execution, not a degenerate concurrent one.
 */

#ifndef SOC_SIM_THREAD_POOL_HH
#define SOC_SIM_THREAD_POOL_HH

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace soc
{
namespace sim
{

/**
 * Fixed-size worker pool with a `parallelFor` helper.
 *
 * The calling thread always participates in the loop, so a pool of
 * size N uses N-1 background workers.
 */
class ThreadPool
{
  public:
    /**
     * @param threads Total concurrency including the calling
     *                thread; values < 1 are clamped to 1.
     */
    explicit ThreadPool(int threads = defaultThreads());
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Total concurrency (background workers + calling thread). */
    int size() const
    {
        return static_cast<int>(workers_.size()) + 1;
    }

    /**
     * Run `fn(i)` for every i in [0, n), distributing indices over
     * the pool.  Blocks until all iterations finish.  If any
     * iteration throws, the first exception is rethrown on the
     * calling thread after the loop drains.
     */
    void parallelFor(std::size_t n,
                     const std::function<void(std::size_t)> &fn);

    /**
     * Run `fn(begin, end)` over contiguous chunks of [0, n) with at
     * most @p grain indices per chunk.  Chunks are claimed through
     * an atomic cursor (work-stealing by idle threads), so chunk
     * boundaries — and hence any per-chunk accumulators — are fixed
     * by (n, grain) alone, never by the thread count: chunk c covers
     * [c*grain, min(n, (c+1)*grain)).  Callers that merge per-chunk
     * results in chunk order therefore stay bit-identical at any
     * pool size.  Blocks until all chunks finish; the first
     * exception thrown by any chunk is rethrown on the calling
     * thread after the loop drains (remaining chunks still run).
     * A grain < 1 is clamped to 1.
     */
    void parallelForChunked(
        std::size_t n, std::size_t grain,
        const std::function<void(std::size_t, std::size_t)> &fn);

    /** Hardware concurrency, with a floor of 1. */
    static int defaultThreads();

    /** @p threads if positive, otherwise defaultThreads(). */
    static int resolveThreads(int threads)
    {
        return threads > 0 ? threads : defaultThreads();
    }

  private:
    void workerLoop();

    std::vector<std::thread> workers_;
    std::mutex mutex_;
    std::condition_variable wake_;
    std::deque<std::function<void()>> tasks_;
    bool stop_ = false;
};

} // namespace sim
} // namespace soc

#endif // SOC_SIM_THREAD_POOL_HH
