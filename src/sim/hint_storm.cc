#include "sim/hint_storm.hh"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "sim/rng.hh"

namespace soc
{
namespace sim
{
namespace
{

// Stream tags keeping the stressors' hash streams independent.
constexpr std::uint64_t kTagCount = 0x11;
constexpr std::uint64_t kTagVm = 0x22;
constexpr std::uint64_t kTagSeq = 0x33;
constexpr std::uint64_t kTagLieClass = 0x44;
constexpr std::uint64_t kTagFuzzClass = 0x55;
constexpr std::uint64_t kTagStaleDir = 0x66;

const StormInfo kCatalog[kStormKinds] = {
    {StormKind::HintFlood, "hint-flood",
     "queue capacity and the oldest-duplicate-first drop policy"},
    {StormKind::DuplicateFlood, "duplicate-flood",
     "exact-duplicate suppression (same server/vm/kind/seq)"},
    {StormKind::FlappingSchedule, "flapping-schedule",
     "per-VM start/stop hysteresis in the sOA"},
    {StormKind::LyingTelemetry, "lying-telemetry",
     "NaN/negative/absurd metrics validation"},
    {StormKind::StaleTelemetry, "stale-telemetry",
     "issuedAt staleness window (past- and future-dated)"},
    {StormKind::MalformedFuzz, "malformed-fuzz",
     "byte-level frame parsing (magic/version/tag/length/truncation)"},
};

} // namespace

const StormInfo *
stormCatalog()
{
    return kCatalog;
}

const char *
stormName(StormKind kind)
{
    const std::size_t i = static_cast<std::size_t>(kind);
    return i < kStormKinds ? kCatalog[i].name : "invalid";
}

void
HintStormConfig::validate() const
{
    const double rates[] = {floodPerStep,  duplicatesPerStep,
                            flapsPerStep,  lyingPerStep,
                            stalePerStep,  malformedPerStep};
    for (double r : rates) {
        if (!(r >= 0.0) || !std::isfinite(r))
            throw std::invalid_argument(
                "HintStormConfig: rates must be finite and >= 0");
    }
    if (staleAge <= 0)
        throw std::invalid_argument(
            "HintStormConfig: staleAge must be > 0");
}

double
HintStormConfig::rate(StormKind kind) const
{
    switch (kind) {
    case StormKind::HintFlood: return floodPerStep;
    case StormKind::DuplicateFlood: return duplicatesPerStep;
    case StormKind::FlappingSchedule: return flapsPerStep;
    case StormKind::LyingTelemetry: return lyingPerStep;
    case StormKind::StaleTelemetry: return stalePerStep;
    case StormKind::MalformedFuzz: return malformedPerStep;
    case StormKind::kCount: break;
    }
    return 0.0;
}

double
HintStormConfig::intensity() const
{
    double sum = 0.0;
    for (std::size_t i = 0; i < kStormKinds; ++i)
        sum += rate(static_cast<StormKind>(i));
    return sum;
}

bool
HintStormConfig::any() const
{
    return enabled && intensity() > 0.0;
}

HintStormConfig
HintStormConfig::standardStorm()
{
    HintStormConfig c;
    c.enabled = true;
    c.floodPerStep = 4.0;
    c.duplicatesPerStep = 2.0;
    c.flapsPerStep = 1.0;
    c.lyingPerStep = 1.0;
    c.stalePerStep = 1.0;
    c.malformedPerStep = 2.0;
    return c;
}

HintStormConfig
HintStormConfig::only(StormKind kind, double perStep)
{
    HintStormConfig c;
    c.enabled = true;
    switch (kind) {
    case StormKind::HintFlood: c.floodPerStep = perStep; break;
    case StormKind::DuplicateFlood:
        c.duplicatesPerStep = perStep;
        break;
    case StormKind::FlappingSchedule:
        c.flapsPerStep = perStep;
        break;
    case StormKind::LyingTelemetry: c.lyingPerStep = perStep; break;
    case StormKind::StaleTelemetry: c.stalePerStep = perStep; break;
    case StormKind::MalformedFuzz:
        c.malformedPerStep = perStep;
        break;
    case StormKind::kCount: break;
    }
    return c;
}

HintStormGenerator::HintStormGenerator(const HintStormConfig &config,
                                       std::uint64_t seed,
                                       std::uint64_t rack,
                                       int servers, int vmsPerServer)
    : config_(config), servers_(servers),
      vmsPerServer_(vmsPerServer > 0 ? vmsPerServer : 1)
{
    config_.validate();
    stream_ = deriveSeed(seed ^ config_.salt, rack);
}

double
HintStormGenerator::hashUniform(std::uint64_t kind, std::uint64_t a,
                                std::uint64_t b,
                                std::uint64_t c) const
{
    std::uint64_t h = deriveSeed(stream_, kind);
    h = deriveSeed(h, a);
    h = deriveSeed(h, b);
    h = deriveSeed(h, c);
    return static_cast<double>(h >> 11) * 0x1.0p-53;
}

std::size_t
HintStormGenerator::countFor(StormKind kind, double rate, int server,
                             Tick now) const
{
    if (rate <= 0.0)
        return 0;
    const double whole = std::floor(rate);
    const double frac = rate - whole;
    std::size_t n = static_cast<std::size_t>(whole);
    if (frac > 0.0 &&
        hashUniform(kTagCount, static_cast<std::uint64_t>(kind),
                    static_cast<std::uint64_t>(server),
                    static_cast<std::uint64_t>(now)) < frac)
        ++n;
    return n;
}

int
HintStormGenerator::vmFor(std::uint64_t kind, int server, Tick now,
                          std::size_t i) const
{
    const double u = hashUniform(
        deriveSeed(kTagVm, kind), static_cast<std::uint64_t>(server),
        static_cast<std::uint64_t>(now), i);
    return static_cast<int>(u * vmsPerServer_);
}

core::wire::Frame
HintStormGenerator::forgeFlood(int server, Tick now,
                               std::size_t i) const
{
    core::wire::HintHeader h;
    h.server = server;
    h.vmId = vmFor(static_cast<std::uint64_t>(StormKind::HintFlood),
                   server, now, i);
    // Unique per emission so every frame survives dedup and lands
    // on the queue (that's the attack).
    h.seq = deriveSeed(
        deriveSeed(stream_, kTagSeq),
        static_cast<std::uint64_t>(server) * 1000003u +
            static_cast<std::uint64_t>(now) + i);
    h.issuedAt = now;
    core::OverclockRequest req;
    req.groupId = h.vmId;
    req.cores = 4;
    return core::wire::encodeOverclockRequest(h, req);
}

core::wire::Frame
HintStormGenerator::forgeDuplicate(int server, Tick now) const
{
    core::wire::HintHeader h;
    h.server = server;
    h.vmId = vmFor(
        static_cast<std::uint64_t>(StormKind::DuplicateFlood), server,
        now, 0);
    // Same seq for every retransmit this step: all but the first
    // must be suppressed by dedup.
    h.seq = deriveSeed(deriveSeed(stream_, kTagSeq + 1),
                       static_cast<std::uint64_t>(now));
    h.issuedAt = now;
    core::OverclockRequest req;
    req.groupId = h.vmId;
    req.cores = 4;
    return core::wire::encodeOverclockRequest(h, req);
}

core::wire::Frame
HintStormGenerator::forgeFlap(int server, Tick now,
                              std::size_t i) const
{
    core::wire::HintHeader h;
    h.server = server;
    h.vmId = vmFor(
        static_cast<std::uint64_t>(StormKind::FlappingSchedule),
        server, now, i / 2);
    h.seq = deriveSeed(
        deriveSeed(stream_, kTagSeq + 2),
        static_cast<std::uint64_t>(server) * 1000003u +
            static_cast<std::uint64_t>(now) + i);
    h.issuedAt = now;
    // Alternate stop / start for the same VM: the restart half of
    // each pair should hit the sOA's flap-hysteresis window.
    if (i % 2 == 0)
        return core::wire::encodeStopRequest(h);
    core::OverclockRequest req;
    req.groupId = h.vmId;
    req.cores = 4;
    return core::wire::encodeOverclockRequest(h, req);
}

core::wire::Frame
HintStormGenerator::forgeLying(int server, Tick now,
                               std::size_t i) const
{
    core::wire::HintHeader h;
    h.server = server;
    h.vmId = vmFor(
        static_cast<std::uint64_t>(StormKind::LyingTelemetry), server,
        now, i);
    h.seq = deriveSeed(
        deriveSeed(stream_, kTagSeq + 3),
        static_cast<std::uint64_t>(server) * 1000003u +
            static_cast<std::uint64_t>(now) + i);
    h.issuedAt = now;
    core::VmMetrics m;
    const double u = hashUniform(kTagLieClass,
                                 static_cast<std::uint64_t>(server),
                                 static_cast<std::uint64_t>(now), i);
    const int lie = static_cast<int>(u * 3.0);
    switch (lie) {
    case 0: // NaN latency -> NonFinite
        m.p99LatencyMs = std::numeric_limits<double>::quiet_NaN();
        m.utilization = 0.5;
        break;
    case 1: // negative utilization -> Negative
        m.p99LatencyMs = 10.0;
        m.utilization = -0.25;
        break;
    default: // absurd latency -> OutOfRange
        m.p99LatencyMs = 1e9;
        m.utilization = 0.5;
        break;
    }
    return core::wire::encodeMetricsWindow(h, m);
}

core::wire::Frame
HintStormGenerator::forgeStale(int server, Tick now,
                               std::size_t i) const
{
    core::wire::HintHeader h;
    h.server = server;
    h.vmId = vmFor(
        static_cast<std::uint64_t>(StormKind::StaleTelemetry), server,
        now, i);
    h.seq = deriveSeed(
        deriveSeed(stream_, kTagSeq + 4),
        static_cast<std::uint64_t>(server) * 1000003u +
            static_cast<std::uint64_t>(now) + i);
    // Half the stream is hours old, half claims to be from the
    // future; both must be rejected as Stale.  Past-dated stamps
    // are clamped at 0 so the frame stays well-formed (negative
    // issuedAt is a different rejection class).
    const bool future =
        hashUniform(kTagStaleDir, static_cast<std::uint64_t>(server),
                    static_cast<std::uint64_t>(now), i) < 0.5;
    h.issuedAt = future ? now + config_.staleAge
                        : (now > config_.staleAge
                               ? now - config_.staleAge
                               : 0);
    core::VmMetrics m;
    m.p99LatencyMs = 12.0;
    m.meanLatencyMs = 5.0;
    m.utilization = 0.5;
    m.completed = 100;
    return core::wire::encodeMetricsWindow(h, m);
}

core::wire::Frame
HintStormGenerator::forgeMalformed(int server, Tick now,
                                   std::size_t i) const
{
    // Start from a perfectly valid frame, then corrupt it into one
    // of the corpus classes.  Class choice is a stateless hash, so
    // a long run covers the whole corpus deterministically.
    core::wire::HintHeader h;
    h.server = server;
    h.vmId = vmFor(
        static_cast<std::uint64_t>(StormKind::MalformedFuzz), server,
        now, i);
    h.seq = deriveSeed(
        deriveSeed(stream_, kTagSeq + 5),
        static_cast<std::uint64_t>(server) * 1000003u +
            static_cast<std::uint64_t>(now) + i);
    h.issuedAt = now;
    core::OverclockRequest req;
    req.groupId = h.vmId;
    req.cores = 4;
    core::wire::Frame f = core::wire::encodeOverclockRequest(h, req);

    const double u = hashUniform(
        kTagFuzzClass, static_cast<std::uint64_t>(server),
        static_cast<std::uint64_t>(now), i);
    const int cls = static_cast<int>(u * 8.0);
    switch (cls) {
    case 0: // BadMagic
        f.bytes[0] = static_cast<std::uint8_t>(f.bytes[0] ^ 0xff);
        break;
    case 1: // BadVersion
        f.bytes[2] = 0x7e;
        break;
    case 2: // UnknownTag
        f.bytes[3] = 0xc8;
        break;
    case 3: // LengthMismatch (header lies about the payload size)
        core::wire::putU16(f.bytes.data() + 4,
                           core::wire::kOverclockPayloadBytes + 3);
        break;
    case 4: // Truncated (frame cut mid-header)
        f.size = core::wire::kHeaderBytes / 2;
        break;
    case 5: { // NaN payload -> NonFinite
        core::VmMetrics m;
        m.p99LatencyMs = std::numeric_limits<double>::quiet_NaN();
        f = core::wire::encodeMetricsWindow(h, m);
        break;
    }
    case 6: // Negative cores
        core::wire::putI32(f.bytes.data() + core::wire::kHeaderBytes,
                           -5);
        break;
    default: // Over-limit desiredMHz -> OutOfRange
        core::wire::putI32(
            f.bytes.data() + core::wire::kHeaderBytes + 4, 99999);
        break;
    }
    return f;
}

std::size_t
HintStormGenerator::generate(int server, Tick now,
                             const Emit &emit) const
{
    if (!config_.any())
        return 0;

    std::size_t emitted = 0;
    for (std::size_t k = 0; k < kStormKinds; ++k) {
        const StormKind kind = static_cast<StormKind>(k);
        const std::size_t n =
            countFor(kind, config_.rate(kind), server, now);
        for (std::size_t i = 0; i < n; ++i) {
            core::wire::Frame f;
            switch (kind) {
            case StormKind::HintFlood:
                f = forgeFlood(server, now, i);
                break;
            case StormKind::DuplicateFlood:
                f = forgeDuplicate(server, now);
                break;
            case StormKind::FlappingSchedule:
                f = forgeFlap(server, now, i);
                break;
            case StormKind::LyingTelemetry:
                f = forgeLying(server, now, i);
                break;
            case StormKind::StaleTelemetry:
                f = forgeStale(server, now, i);
                break;
            case StormKind::MalformedFuzz:
                f = forgeMalformed(server, now, i);
                break;
            case StormKind::kCount:
                continue;
            }
            emit(f);
            ++emitted;
        }
    }
    return emitted;
}

} // namespace sim
} // namespace soc
