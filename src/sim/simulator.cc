#include "sim/simulator.hh"

#include <cassert>
#include <utility>

namespace soc
{
namespace sim
{

TaskId
Simulator::every(Tick period, std::function<void(Tick)> task, Tick phase)
{
    assert(period > 0 && "periodic task needs a positive period");
    const TaskId id = nextTask_++;
    Periodic periodic;
    periodic.period = period;
    periodic.task = std::move(task);
    periodics_.emplace(id, std::move(periodic));

    const Tick first = now() + (phase < 0 ? period : phase);
    periodics_[id].pending = queue_.schedule(first, [this, id](Tick) {
        reschedule(id);
    });
    return id;
}

void
Simulator::reschedule(TaskId id)
{
    auto it = periodics_.find(id);
    if (it == periodics_.end() || it->second.stopped)
        return;

    Periodic &periodic = it->second;
    periodic.pending = queue_.scheduleAfter(periodic.period,
                                            [this, id](Tick) {
        reschedule(id);
    });
    // Invoke through a copy: the task may call stopPeriodic() on
    // itself, which erases the map entry that owns the callable.
    auto task = periodic.task;
    task(now());
}

bool
Simulator::stopPeriodic(TaskId id)
{
    auto it = periodics_.find(id);
    if (it == periodics_.end())
        return false;
    it->second.stopped = true;
    if (it->second.pending != kInvalidEvent)
        queue_.cancel(it->second.pending);
    periodics_.erase(it);
    return true;
}

} // namespace sim
} // namespace soc
