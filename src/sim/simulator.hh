/**
 * @file
 * Thin simulation driver over EventQueue: periodic tasks and named
 * simulation phases.  Periodic tasks are how control loops (sOA
 * feedback loop, gOA weekly budget recompute, WI metric polls) are
 * expressed throughout the code base.
 */

#ifndef SOC_SIM_SIMULATOR_HH
#define SOC_SIM_SIMULATOR_HH

#include <cstdint>
#include <functional>

#include "sim/event_queue.hh"
#include "sim/time.hh"

namespace soc
{
namespace sim
{

/** Handle for a periodic task; used to stop it. */
using TaskId = std::uint64_t;

/**
 * Simulation driver.
 *
 * Owns the event queue and provides periodic-task plumbing on top of
 * one-shot events.  All SmartOClock agents receive a `Simulator &` and
 * use it both for time and for scheduling.
 */
class Simulator
{
  public:
    Simulator() = default;

    Simulator(const Simulator &) = delete;
    Simulator &operator=(const Simulator &) = delete;

    /** Current simulated time. */
    Tick now() const { return queue_.now(); }

    /** Underlying queue, for one-shot scheduling. */
    EventQueue &queue() { return queue_; }

    /**
     * Run @p task every @p period ticks, starting at now() + @p phase.
     * The task keeps rescheduling itself until stopped.
     *
     * @param period  Interval between invocations; must be > 0.
     * @param task    Callback receiving the invocation tick.
     * @param phase   Offset of the first invocation (default: one
     *                full period from now).
     * @return handle usable with stopPeriodic().
     */
    TaskId every(Tick period, std::function<void(Tick)> task,
                 Tick phase = -1);

    /** Stop a periodic task. @return true if it was running. */
    bool stopPeriodic(TaskId id);

    /** Advance simulated time to @p until, executing due events. */
    void runUntil(Tick until) { queue_.runUntil(until); }

    /** Run until no events remain (periodic tasks must be stopped
     *  first or this never returns). */
    void run() { queue_.run(); }

  private:
    struct Periodic {
        Tick period;
        std::function<void(Tick)> task;
        EventId pending = kInvalidEvent;
        bool stopped = false;
    };

    void reschedule(TaskId id);

    EventQueue queue_;
    TaskId nextTask_ = 1;
    // Lookup only — firing order comes from the event queue, never
    // from hash iteration.  soclint:allow(DET-003)
    std::unordered_map<TaskId, Periodic> periodics_;
};

} // namespace sim
} // namespace soc

#endif // SOC_SIM_SIMULATOR_HH
