/**
 * @file
 * Deterministic fault injection for the chaos harness (§III-Q5).
 *
 * The paper's robustness claim is that enforcement is decentralized:
 * a gOA outage only freezes budget *updates* while the sOAs keep
 * enforcing locally.  This module turns that claim into a testable
 * path by generating a seed-derived *fault plan* per rack that the
 * cluster simulators thread through their control loops:
 *
 *  - gOA outage windows (recomputes are skipped; sOAs run on stale,
 *    then lease-decayed budgets);
 *  - lost/delayed/corrupted messages on both directions of the
 *    gOA<->sOA channel (telemetry pushes and budget assignments);
 *  - sOA crash-restarts (volatile exploration/grant/lease state is
 *    lost; wear accounting survives via the crash-safe wear journal,
 *    see core/lifetime.hh);
 *  - multiplicative noise/bias on the sOA's power sensor, feeding
 *    the §IV-D feedback loop with wrong readings.
 *
 * Determinism: episodic events (outages, crashes) are drawn once at
 * plan-generation time from `deriveSeed(seed ^ salt, rackIndex)`;
 * per-event decisions (drop this push? distort this reading?) are
 * *stateless* hashes of (stream, kind, server, time), so they depend
 * neither on call order nor on thread count.  Same seed + same
 * config => bit-identical fault schedule and outcomes.
 */

#ifndef SOC_SIM_FAULT_INJECTOR_HH
#define SOC_SIM_FAULT_INJECTOR_HH

#include <cstdint>
#include <vector>

#include "sim/time.hh"

namespace soc
{
namespace sim
{

/** Knobs of the chaos harness; all-zero (default) injects nothing. */
struct FaultConfig {
    /** Master switch; false keeps every simulator on the fault-free
     *  fast path regardless of the rates below. */
    bool enabled = false;

    /** Expected gOA outages per simulated week (Poisson). */
    double goaOutagesPerWeek = 0.0;
    /** Mean outage duration (exponential). */
    Tick goaOutageMeanDuration = 6 * kHour;

    /** Expected crash-restarts per sOA per simulated week. */
    double soaCrashesPerServerWeek = 0.0;

    /** Per-attempt probability an sOA->gOA telemetry push is lost. */
    double telemetryLossProb = 0.0;
    /** Push attempts per recompute (bounded retry; >= 1). */
    int telemetryAttempts = 3;

    /** Probability a gOA->sOA budget assignment is lost outright. */
    double budgetLossProb = 0.0;
    /** Probability a delivered assignment is delayed in flight. */
    double budgetDelayProb = 0.0;
    /** Maximum in-flight delay of a delayed assignment. */
    Tick budgetDelayMax = 10 * kMinute;
    /** Probability a delivered assignment arrives corrupted (NaN /
     *  negative / over-rack-limit payload; the sOA must reject it). */
    double budgetCorruptProb = 0.0;

    /** Relative Gaussian noise sigma on the sOA power sensor. */
    double sensorNoiseStd = 0.0;
    /** Relative bias on the sOA power sensor (+0.02 = reads 2% high). */
    double sensorBias = 0.0;

    /** Salt separating fault streams from workload streams. */
    std::uint64_t salt = 0xFA17FA17FA17FA17ULL;

    /** Throws std::invalid_argument on out-of-range knobs. */
    void validate() const;

    /** The standard chaos load used by bench_table_faults and the
     *  chaos test suite: a bit of everything, at rates high enough
     *  that a two-week run exercises every degraded path. */
    static FaultConfig standardChaos();
};

/** One gOA outage window [start, end). */
struct GoaOutage {
    Tick start = 0;
    Tick end = 0;
};

/** One sOA crash-restart event. */
struct SoaCrashEvent {
    int server = 0;
    Tick at = 0;
};

/**
 * Counters of injected faults and their observed handling; per-rack
 * instances are merged in rack order (see RackOutcome), keeping the
 * totals thread-count independent.
 */
struct FaultStats {
    std::uint64_t goaOutages = 0;
    std::uint64_t recomputesSkipped = 0;
    std::uint64_t soaCrashes = 0;
    std::uint64_t telemetryDrops = 0;
    std::uint64_t telemetryRetries = 0;
    std::uint64_t budgetDrops = 0;
    std::uint64_t budgetDelays = 0;
    std::uint64_t budgetRejects = 0;

    /** Total discrete fault events injected. */
    std::uint64_t total() const
    {
        return goaOutages + soaCrashes + telemetryDrops +
            budgetDrops + budgetDelays + budgetRejects;
    }

    void merge(const FaultStats &other);
};

/**
 * The deterministic fault schedule of one rack.  Default-constructed
 * plans are inert (no faults); the simulators build one per rack via
 * generate() when FaultConfig::enabled is set.
 */
class FaultPlan
{
  public:
    /** Inert plan: every query reports "no fault". */
    FaultPlan() = default;

    /**
     * Draw the episodic schedule for one rack.
     *
     * @param config  Fault rates (validated).
     * @param seed    Experiment seed (the same one the workload
     *                streams derive from).
     * @param rack    Rack index; adjacent racks get independent
     *                streams via deriveSeed.
     * @param servers Servers in the rack (crash schedule width).
     * @param horizon End of simulated time covered by the plan.
     */
    static FaultPlan generate(const FaultConfig &config,
                              std::uint64_t seed, std::uint64_t rack,
                              int servers, Tick horizon);

    bool enabled() const { return enabled_; }
    const FaultConfig &config() const { return config_; }

    /** Is the rack's gOA down at @p now? */
    bool goaDown(Tick now) const;

    /** Merged outage episodes, sorted by start. */
    const std::vector<GoaOutage> &outages() const { return outages_; }

    /** Crash events sorted by (time, server). */
    const std::vector<SoaCrashEvent> &crashes() const
    {
        return crashes_;
    }

    /** Is @p server's telemetry push at @p now lost on @p attempt? */
    bool telemetryLost(int server, Tick now, int attempt) const;

    /** Is the budget assignment to @p server at @p now lost? */
    bool budgetLost(int server, Tick now) const;

    /** In-flight delay of @p server's assignment (0 = immediate). */
    Tick budgetDelay(int server, Tick now) const;

    /** Does @p server's assignment arrive corrupted? */
    bool budgetCorrupted(int server, Tick now) const;

    /**
     * Which corruption a corrupted assignment carries: 0 = NaN,
     * 1 = negative, 2 = far over the rack limit.  Deterministic per
     * (server, now).
     */
    int corruptionKind(int server, Tick now) const;

    /** Multiplicative distortion of @p server's power sensor at
     *  @p now (1.0 when sensor faults are disabled). */
    double sensorFactor(int server, Tick now) const;

  private:
    /** Uniform in [0, 1) from a stateless hash of the operands. */
    double hashUniform(std::uint64_t kind, std::uint64_t a,
                       std::uint64_t b, std::uint64_t c = 0) const;

    FaultConfig config_;
    bool enabled_ = false;
    std::uint64_t stream_ = 0;
    std::vector<GoaOutage> outages_;
    std::vector<SoaCrashEvent> crashes_;
};

} // namespace sim
} // namespace soc

#endif // SOC_SIM_FAULT_INJECTOR_HH
