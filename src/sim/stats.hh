/**
 * @file
 * Statistics utilities used across the characterization and
 * evaluation experiments: streaming moments, exact percentiles,
 * CDF construction (Figs. 5, 8, 15), and RMSE (Fig. 8).
 */

#ifndef SOC_SIM_STATS_HH
#define SOC_SIM_STATS_HH

#include <cstddef>
#include <vector>

namespace soc
{
namespace sim
{

/**
 * Streaming mean/variance/extrema accumulator (Welford's algorithm).
 */
class OnlineStats
{
  public:
    /** Fold one observation into the accumulator. */
    void add(double x);

    /** Merge another accumulator (parallel Welford). */
    void merge(const OnlineStats &other);

    std::size_t count() const { return count_; }
    double mean() const { return count_ ? mean_ : 0.0; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }
    double sum() const { return mean_ * static_cast<double>(count_); }

    /** Population variance. */
    double variance() const;

    /** Population standard deviation. */
    double stddev() const;

  private:
    std::size_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * Sample reservoir with exact percentile queries.
 *
 * Stores all samples; at our experiment scales (<= tens of millions)
 * this is cheaper and more trustworthy than approximate sketches.
 * Percentile queries sort lazily and cache the sorted order.
 */
class Percentiles
{
  public:
    void add(double x);

    /** Append all samples of @p other. */
    void merge(const Percentiles &other);

    std::size_t count() const { return samples_.size(); }
    bool empty() const { return samples_.empty(); }

    /**
     * Exact quantile by linear interpolation between closest ranks.
     *
     * @param q Quantile in [0, 1]; e.g. 0.99 for P99.
     */
    double quantile(double q) const;

    double p50() const { return quantile(0.50); }
    double p90() const { return quantile(0.90); }
    double p95() const { return quantile(0.95); }
    double p99() const { return quantile(0.99); }

    double mean() const;
    double min() const { return quantile(0.0); }
    double max() const { return quantile(1.0); }

    /** Fraction of samples strictly above @p threshold. */
    double fractionAbove(double threshold) const;

    const std::vector<double> &samples() const { return samples_; }

  private:
    void ensureSorted() const;

    mutable std::vector<double> samples_;
    mutable bool sorted_ = true;
};

/** One (x, cumulativeFraction) point of an empirical CDF. */
struct CdfPoint {
    double value;
    double fraction;
};

/**
 * Build an empirical CDF sampled at @p points evenly spaced
 * cumulative fractions — the form the paper's CDF figures plot.
 */
std::vector<CdfPoint> buildCdf(std::vector<double> samples,
                               std::size_t points = 100);

/**
 * Root-mean-squared error between two equally long series.
 * Used to score power-template predictions (Fig. 8 / Fig. 15).
 */
double rmse(const std::vector<double> &actual,
            const std::vector<double> &predicted);

/** Mean absolute error between two equally long series. */
double meanAbsoluteError(const std::vector<double> &actual,
                         const std::vector<double> &predicted);

/**
 * Mean signed error (predicted - actual); positive means the
 * predictor overestimates.  Fig. 15 plots this per technique.
 */
double meanSignedError(const std::vector<double> &actual,
                       const std::vector<double> &predicted);

/** Exact median of a copied sample set; empty input yields 0. */
double median(std::vector<double> samples);

} // namespace sim
} // namespace soc

#endif // SOC_SIM_STATS_HH
