#include "cluster/trace_sim.hh"

#include <memory>

#include "core/goa.hh"
#include "core/soa.hh"
#include "power/rack.hh"
#include "power/rack_manager.hh"
#include "sim/stats.hh"
#include "workload/trace_generator.hh"

namespace soc
{
namespace cluster
{

double
TraceSimConfig::tierLimitFactor(PowerTier tier)
{
    // Limit relative to the baseline P99 rack draw.  High-power
    // clusters run close to their limit; low-power clusters have
    // ample headroom (Fig. 5: many racks under 73% utilization).
    switch (tier) {
      case PowerTier::High: return 1.07;
      case PowerTier::Medium: return 1.17;
      case PowerTier::Low: return 1.45;
    }
    return 1.1;
}

namespace
{

/** One rack with its servers, traces, agents, and manager. */
struct SimRack {
    std::unique_ptr<power::Rack> rack;
    std::unique_ptr<power::RackManager> manager;
    std::unique_ptr<core::GlobalOverclockingAgent> goa;
    std::vector<std::unique_ptr<core::ServerOverclockingAgent>> soas;
    std::vector<workload::ServerTrace> traces;
    /** groups[s][v]: core-group id of VM v on server s. */
    std::vector<std::vector<power::GroupId>> groups;
    /** candidate[s][v]: does this VM ever request overclocking? */
    std::vector<std::vector<bool>> candidate;
};

bool
isCandidate(const workload::VmMix &vm, double threshold)
{
    if (vm.archetype.kind == workload::ShapeKind::ConstantHigh ||
        vm.archetype.kind == workload::ShapeKind::LowIdle) {
        return false;
    }
    return vm.archetype.peakUtil >= threshold;
}

} // namespace

TraceSimResult
runTraceSim(const TraceSimConfig &config)
{
    const power::PowerModel model(config.hardware);
    workload::TraceConfig trace_cfg;
    trace_cfg.end = config.warmup + config.duration;
    workload::TraceGenerator gen(config.seed, trace_cfg);

    core::SoaConfig soa_cfg =
        core::SoaConfig::forPolicy(config.policy);
    soa_cfg.controlPeriod = config.controlStep;
    // Trace studies stress the power path; keep the lifetime budget
    // generous enough that peaks fit (the paper's operators size the
    // budget to the workloads' requirements).
    soa_cfg.overclockFraction = 0.25;

    std::vector<SimRack> racks(config.racks);
    for (int r = 0; r < config.racks; ++r) {
        SimRack &sr = racks[r];
        // Generate traces first so the rack limit can be derived
        // from the baseline power profile.
        for (int s = 0; s < config.serversPerRack; ++s) {
            sr.traces.push_back(gen.serverTrace(
                gen.randomVmMix(config.hardware.cores), model));
        }
        const telemetry::TimeSeries rack_power =
            workload::TraceGenerator::rackPower(sr.traces);
        const double limit =
            rack_power.quantile(0.99) * config.limitFactor;

        sr.rack = std::make_unique<power::Rack>(r, limit);
        sr.manager = std::make_unique<power::RackManager>(*sr.rack);
        sr.goa = std::make_unique<core::GlobalOverclockingAgent>(
            *sr.rack, model);

        for (int s = 0; s < config.serversPerRack; ++s) {
            power::Server &server = sr.rack->addServer(&model);
            std::vector<power::GroupId> server_groups;
            std::vector<bool> server_candidates;
            for (const auto &vm : sr.traces[s].mix) {
                const power::GroupId g = server.addGroup(
                    vm.cores, 0.0, power::kTurboMHz, /*priority=*/1);
                server_groups.push_back(g);
                server_candidates.push_back(
                    isCandidate(vm, config.ocUtilThreshold));
            }
            sr.groups.push_back(std::move(server_groups));
            sr.candidate.push_back(std::move(server_candidates));

            sr.soas.push_back(
                std::make_unique<core::ServerOverclockingAgent>(
                    server, soa_cfg, sr.rack.get()));
            sr.manager->addListener(sr.soas.back().get());
            sr.goa->addAgent(sr.soas.back().get());
        }
        sr.goa->assignEvenSplit();
    }

    TraceSimResult result;
    sim::OnlineStats penalty_stats;
    sim::OnlineStats rack_util_stats;
    sim::OnlineStats perf_stats;
    std::uint64_t cap_base = 0;
    std::uint64_t capped_tick_base = 0;
    std::uint64_t warn_base = 0;
    std::uint64_t req_base = 0;

    sim::Tick next_recompute = config.warmup;
    const sim::Tick end = config.warmup + config.duration;
    const double dt_s =
        static_cast<double>(config.controlStep) / sim::kSecond;

    for (sim::Tick t = 0; t < end; t += config.controlStep) {
        if (t == config.warmup) {
            // Snapshot warm-up counters so metrics cover only the
            // evaluation window.
            for (auto &sr : racks) {
                cap_base += sr.manager->stats().capEvents;
                capped_tick_base += sr.manager->stats().cappedTicks;
                warn_base += sr.manager->stats().warnings;
                for (auto &soa : sr.soas)
                    req_base += soa->stats().requests;
            }
        }
        if (t >= next_recompute && t > 0) {
            for (auto &sr : racks)
                sr.goa->recompute(t);
            next_recompute += sim::kWeek;
        }

        const bool in_eval = t >= config.warmup;
        for (auto &sr : racks) {
            for (std::size_t s = 0; s < sr.soas.size(); ++s) {
                power::Server &server = sr.rack->server(s);
                auto &soa = *sr.soas[s];
                const auto &trace = sr.traces[s];
                for (std::size_t v = 0; v < sr.groups[s].size();
                     ++v) {
                    const power::GroupId g = sr.groups[s][v];
                    const double util = trace.vmUtil[v].atTime(t);
                    server.setUtil(g, util);
                    if (!sr.candidate[s][v])
                        continue;

                    const bool want =
                        util >= config.ocUtilThreshold;
                    const bool active = soa.isOverclockActive(g);
                    if (want && !active) {
                        core::OverclockRequest request;
                        request.groupId = g;
                        request.cores = trace.mix[v].cores;
                        request.trigger =
                            core::TriggerKind::Metrics;
                        request.duration = config.requestChunk;
                        request.priority = 1;
                        soa.requestOverclock(request, t);
                    } else if (!want && active) {
                        soa.stopOverclock(g, t);
                    }

                    if (in_eval && want) {
                        ++result.wantSteps;
                        const auto *group = server.group(g);
                        const double eff = group != nullptr
                            ? group->effectiveMHz()
                            : power::kTurboMHz;
                        perf_stats.add(
                            eff /
                            static_cast<double>(power::kTurboMHz));
                        if (group != nullptr &&
                            group->overclocked()) {
                            ++result.successSteps;
                        }
                    }
                }
                soa.tick(t);
            }
            sr.manager->tick(t);

            if (in_eval) {
                rack_util_stats.add(sr.rack->utilization());
                result.energyJoules +=
                    sr.rack->powerWatts() * dt_s;
                if (sr.manager->capping()) {
                    double penalty = 0.0;
                    int affected = 0;
                    for (const auto &server : sr.rack->servers()) {
                        const int cores =
                            server->cappedNonOverclockCores();
                        penalty +=
                            server->cappingPenalty() * cores;
                        affected += cores;
                    }
                    if (affected > 0)
                        penalty_stats.add(penalty / affected);
                }
            }
        }
    }

    std::uint64_t caps = 0;
    std::uint64_t capped_ticks = 0;
    std::uint64_t warnings = 0;
    std::uint64_t requests = 0;
    for (auto &sr : racks) {
        caps += sr.manager->stats().capEvents;
        capped_ticks += sr.manager->stats().cappedTicks;
        warnings += sr.manager->stats().warnings;
        for (auto &soa : sr.soas)
            requests += soa->stats().requests;
    }
    result.capEvents = caps - cap_base;
    result.cappedTicks = capped_ticks - capped_tick_base;
    result.warnings = warnings - warn_base;
    result.requests = requests - req_base;
    result.successRate = result.wantSteps > 0
        ? static_cast<double>(result.successSteps) /
            static_cast<double>(result.wantSteps)
        : 1.0;
    result.cappingPenalty = penalty_stats.mean();
    result.normPerformance =
        perf_stats.count() > 0 ? perf_stats.mean() : 1.0;
    result.meanRackUtil = rack_util_stats.mean();
    return result;
}

} // namespace cluster
} // namespace soc
