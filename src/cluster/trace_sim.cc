#include "cluster/trace_sim.hh"

#include <algorithm>
#include <bit>
#include <cassert>
#include <chrono>
#include <memory>
#include <stdexcept>
#include <string>

#include "cluster/fleet_state.hh"
#include "core/goa.hh"
#include "core/soa.hh"
#include "power/rack.hh"
#include "power/rack_manager.hh"
#include "sim/rng.hh"
#include "sim/stats.hh"
#include "sim/thread_pool.hh"
#include "workload/trace_generator.hh"

namespace soc
{
namespace cluster
{

double
TraceSimConfig::tierLimitFactor(PowerTier tier)
{
    // Limit relative to the baseline P99 rack draw.  High-power
    // clusters run close to their limit; low-power clusters have
    // ample headroom (Fig. 5: many racks under 73% utilization).
    switch (tier) {
      case PowerTier::High: return 1.07;
      case PowerTier::Medium: return 1.17;
      case PowerTier::Low: break;
    }
    return 1.45;
}

void
TraceSimConfig::validate() const
{
    auto fail = [](const std::string &what) {
        throw std::invalid_argument("TraceSimConfig: " + what);
    };
    if (racks < 1)
        fail("racks must be >= 1 (got " + std::to_string(racks) +
             ")");
    if (serversPerRack < 1) {
        fail("serversPerRack must be >= 1 (got " +
             std::to_string(serversPerRack) + ")");
    }
    if (!(limitFactor > 0.0)) {
        fail("limitFactor must be > 0 (got " +
             std::to_string(limitFactor) + ")");
    }
    if (warmup < 0)
        fail("warmup must be non-negative");
    if (duration < 0)
        fail("duration must be non-negative");
    if (warmup + duration <= 0)
        fail("warmup + duration must be > 0 (nothing to simulate)");
    if (controlStep <= 0)
        fail("controlStep must be > 0");
    if (recomputePeriod <= 0)
        fail("recomputePeriod must be > 0");
    if (templateWindow < 0 ||
        (templateWindow > 0 && templateWindow % sim::kSlot != 0)) {
        fail("templateWindow must be 0 or a positive multiple of "
             "the telemetry slot");
    }
    faults.validate();
    ingress.validate();
    storm.validate();
    if (storm.enabled && !ingress.enabled) {
        fail("storm requires the ingress (there is no hint channel "
             "to attack otherwise)");
    }
}

namespace
{

/** How long after a discrete fault a cap event is still blamed on
 *  it (crash fallout: revoked grants, cold telemetry). */
constexpr sim::Tick kFaultAttribution = sim::kHour;

/** One rack with its servers, traces, agents, and manager. */
struct SimRack {
    std::unique_ptr<power::Rack> rack;
    std::unique_ptr<power::RackManager> manager;
    std::unique_ptr<core::GlobalOverclockingAgent> goa;
    std::vector<std::unique_ptr<core::ServerOverclockingAgent>> soas;
    std::vector<workload::ServerTrace> traces;
    /** SoA replay state over `traces` (built after generation, so
     *  the captured sample pointers are final). */
    std::unique_ptr<FleetState> fleet;
    /** groups[s][v]: core-group id of VM v on server s.  Group ids
     *  are allocated sequentially, so groups[s][v] == v (asserted
     *  at build); the fleet masks rely on that identity. */
    std::vector<std::vector<power::GroupId>> groups;
    /** candidate[s][v]: does this VM ever request overclocking? */
    std::vector<std::vector<bool>> candidate;
    /** Deterministic fault schedule (inert when faults disabled). */
    sim::FaultPlan plan;
    /** Bounded hint queue (null when the ingress is disabled). */
    std::unique_ptr<core::HintIngress> ingress;
    /** Deterministic adversarial frame source (inert when off). */
    sim::HintStormGenerator storm;
    /** seq[s][v]: next wire sequence number for server s, VM v. */
    std::vector<std::vector<std::uint64_t>> seq;
};

/**
 * Metrics one rack accumulates over its control loop.  Every rack
 * owns one instance, so the loops can run on different threads; the
 * instances are merged in rack order afterwards, which makes the
 * result independent of how racks were scheduled over threads.
 */
struct RackOutcome {
    std::uint64_t capEvents = 0;
    std::uint64_t cappedTicks = 0;
    std::uint64_t warnings = 0;
    std::uint64_t requests = 0;
    std::uint64_t wantSteps = 0;
    std::uint64_t successSteps = 0;
    double energyJoules = 0.0;
    sim::OnlineStats penalty;
    sim::OnlineStats rackUtil;
    sim::OnlineStats perf;
    sim::FaultStats faults;
    std::uint64_t capEventsFaultAttributed = 0;
    std::uint64_t staleLeaseTicks = 0;
    std::uint64_t recoveries = 0;
    sim::Tick recoverySum = 0;
    core::IngressStats ingress;
    std::uint64_t flapDenied = 0;
    /** Wall-clock accounting (not simulation state). */
    double genSeconds = 0.0;
    double simSeconds = 0.0;
};

bool
isCandidate(const workload::VmMix &vm, double threshold)
{
    if (vm.archetype.kind == workload::ShapeKind::ConstantHigh ||
        vm.archetype.kind == workload::ShapeKind::LowIdle) {
        return false;
    }
    return vm.archetype.peakUtil >= threshold;
}

/**
 * Build one rack: generate its traces from its own seed-derived RNG
 * stream, size the rack limit off the baseline power profile, then
 * wire servers, sOAs, manager and gOA.
 */
void
buildRack(SimRack &sr, int rack_index, const TraceSimConfig &config,
          const power::PowerModel &model,
          const core::SoaConfig &soa_cfg)
{
    workload::TraceConfig trace_cfg;
    trace_cfg.end = config.warmup + config.duration;
    // Per-rack stream: adding or reordering racks never perturbs
    // the draws of the others, and racks can generate in parallel.
    workload::TraceGenerator gen(
        sim::deriveSeed(config.seed,
                        static_cast<std::uint64_t>(rack_index)),
        trace_cfg);

    // Generate traces first so the rack limit can be derived from
    // the baseline power profile.
    for (int s = 0; s < config.serversPerRack; ++s) {
        sr.traces.push_back(gen.serverTrace(
            gen.randomVmMix(config.hardware.cores), model));
    }
    const telemetry::TimeSeries rack_power =
        workload::TraceGenerator::rackPower(sr.traces);
    const power::Watts limit{
        rack_power.quantile(0.99) * config.limitFactor};

    sr.rack = std::make_unique<power::Rack>(rack_index, limit);
    sr.manager = std::make_unique<power::RackManager>(*sr.rack);

    core::GoaConfig goa_cfg;
    goa_cfg.recomputePeriod = config.recomputePeriod;
    if (config.faults.enabled) {
        // Leases sized to tolerate one missed recompute before the
        // sOAs start decaying toward the safe floor.
        goa_cfg.leaseTtl = 2 * config.recomputePeriod;
        sr.plan = sim::FaultPlan::generate(
            config.faults, config.seed,
            static_cast<std::uint64_t>(rack_index),
            config.serversPerRack, config.warmup + config.duration);
    }
    sr.goa = std::make_unique<core::GlobalOverclockingAgent>(
        *sr.rack, model, goa_cfg);

    const bool faulty_sensor = config.faults.enabled &&
        (config.faults.sensorNoiseStd > 0.0 ||
         config.faults.sensorBias != 0.0);

    for (int s = 0; s < config.serversPerRack; ++s) {
        power::Server &server = sr.rack->addServer(&model);
        std::vector<power::GroupId> server_groups;
        std::vector<bool> server_candidates;
        for (const auto &vm : sr.traces[s].mix) {
            const power::GroupId g = server.addGroup(
                vm.cores, 0.0, power::kTurboMHz, /*priority=*/1);
            // The fleet bitmasks identify VM v with group id v.
            assert(g == static_cast<power::GroupId>(
                            server_groups.size()));
            server_groups.push_back(g);
            server_candidates.push_back(
                isCandidate(vm, config.ocUtilThreshold));
        }
        sr.groups.push_back(std::move(server_groups));
        sr.candidate.push_back(std::move(server_candidates));

        sr.soas.push_back(
            std::make_unique<core::ServerOverclockingAgent>(
                server, soa_cfg, sr.rack.get()));
        if (faulty_sensor) {
            // SimRack slots are pre-sized and never reallocated, so
            // the plan's address is stable for the run's lifetime.
            const sim::FaultPlan *plan = &sr.plan;
            sr.soas.back()->setPowerSensor(
                [plan, s](power::Watts watts, sim::Tick now) {
                    return watts * plan->sensorFactor(s, now);
                });
        }
        sr.manager->addListener(sr.soas.back().get());
        sr.goa->addAgent(sr.soas.back().get());
    }
    sr.goa->assignEvenSplit();

    // Flatten the replay inputs now that every trace is final.
    sr.fleet = std::make_unique<FleetState>(config.ocUtilThreshold);
    for (int s = 0; s < config.serversPerRack; ++s)
        sr.fleet->addServer(sr.traces[s], sr.candidate[s]);

    if (config.ingress.enabled) {
        sr.ingress =
            std::make_unique<core::HintIngress>(config.ingress);
        sr.seq.resize(sr.traces.size());
        std::size_t max_vms = 1;
        for (std::size_t s = 0; s < sr.traces.size(); ++s) {
            sr.seq[s].assign(sr.traces[s].mix.size(), 0);
            max_vms = std::max(max_vms, sr.traces[s].mix.size());
        }
        if (config.storm.enabled) {
            sr.storm = sim::HintStormGenerator(
                config.storm, config.seed,
                static_cast<std::uint64_t>(rack_index),
                config.serversPerRack, static_cast<int>(max_vms));
        }
    }
}

/** Run one rack's whole control loop, filling its outcome slot. */
void
simulateRack(SimRack &sr, RackOutcome &out,
             const TraceSimConfig &config)
{
    std::uint64_t cap_base = 0;
    std::uint64_t capped_tick_base = 0;
    std::uint64_t warn_base = 0;
    std::uint64_t req_base = 0;

    sim::Tick next_recompute = config.warmup;
    const sim::Tick end = config.warmup + config.duration;
    const double dt_s =
        static_cast<double>(config.controlStep) / sim::kSecond;

    const sim::FaultPlan &plan = sr.plan;
    std::size_t next_crash = 0;
    /** Budget pushes in flight (delayed deliveries), sorted by
     *  deliverAt from next_delivery on. */
    std::vector<core::PendingAssignment> in_flight;
    std::size_t next_delivery = 0;
    /** First recompute time missed to the current outage (-1 when
     *  the gOA is reachable). */
    sim::Tick outage_first_missed = -1;
    /** Per-server crash time awaiting a fresh accepted budget. */
    std::vector<sim::Tick> crash_since(sr.soas.size(), -1);
    /** Cap events up to here are blamed on a discrete fault. */
    sim::Tick fault_attribution_until = -1;
    /** Last telemetry slot pushed into the servers. */
    std::size_t last_slot = static_cast<std::size_t>(-1);
    /** Per-server superset of VMs holding an active grant. */
    std::vector<std::uint64_t> active_mask(sr.soas.size(), 0);

    // Fault-aware recompute: telemetry faults during the pull,
    // budget pushes queued (possibly delayed/corrupted) instead of
    // applied.
    auto recompute = [&](sim::Tick now) {
        if (!plan.enabled()) {
            sr.goa->recompute(now);
            return;
        }
        core::RecomputeFaults rf;
        rf.telemetryAttempts = config.faults.telemetryAttempts;
        rf.telemetryLost = [&plan, now](int server, int attempt) {
            return plan.telemetryLost(server, now, attempt);
        };
        rf.budgetLost = [&plan, now](int server) {
            return plan.budgetLost(server, now);
        };
        rf.budgetDelay = [&plan, now](int server) {
            return plan.budgetDelay(server, now);
        };
        rf.budgetCorrupt = [&plan, now](int server) {
            return plan.budgetCorrupted(server, now)
                ? plan.corruptionKind(server, now)
                : -1;
        };
        auto batch = sr.goa->recompute(now, rf);
        for (auto &pending : batch)
            in_flight.push_back(std::move(pending));
        std::stable_sort(
            in_flight.begin() +
                static_cast<std::ptrdiff_t>(next_delivery),
            in_flight.end(),
            [](const core::PendingAssignment &a,
               const core::PendingAssignment &b) {
                return a.deliverAt < b.deliverAt;
            });
    };

    for (sim::Tick t = 0; t < end; t += config.controlStep) {
        if (t == config.warmup) {
            // Snapshot warm-up counters so metrics cover only the
            // evaluation window.
            cap_base = sr.manager->stats().capEvents;
            capped_tick_base = sr.manager->stats().cappedTicks;
            warn_base = sr.manager->stats().warnings;
            for (auto &soa : sr.soas)
                req_base += soa->stats().requests;
        }

        // Scheduled sOA crash-restarts due by now.
        const auto &crashes = plan.crashes();
        while (next_crash < crashes.size() &&
               crashes[next_crash].at <= t) {
            const auto &event = crashes[next_crash];
            if (event.server >= 0 &&
                event.server < static_cast<int>(sr.soas.size())) {
                sr.soas[event.server]->crashRestart(t);
                ++out.faults.soaCrashes;
                if (crash_since[event.server] < 0)
                    crash_since[event.server] = t;
                fault_attribution_until = std::max(
                    fault_attribution_until, t + kFaultAttribution);
            }
            ++next_crash;
        }

        if (t >= next_recompute) {
            if (plan.goaDown(t)) {
                // gOA outage: the recompute is skipped and retried
                // every step; sOAs keep enforcing their last
                // budgets, decaying once the lease goes stale
                // (§III-Q5).
                ++out.faults.recomputesSkipped;
                if (outage_first_missed < 0)
                    outage_first_missed = t;
                fault_attribution_until = std::max(
                    fault_attribution_until, t + kFaultAttribution);
                next_recompute = t + config.controlStep;
            } else {
                recompute(t);
                if (outage_first_missed >= 0) {
                    out.recoverySum += t - outage_first_missed;
                    ++out.recoveries;
                    outage_first_missed = -1;
                }
                next_recompute += config.recomputePeriod;
            }
        }

        // Deliver queued budget pushes whose flight time is up.
        while (next_delivery < in_flight.size() &&
               in_flight[next_delivery].deliverAt <= t) {
            sr.goa->deliver(in_flight[next_delivery], t);
            ++next_delivery;
        }

        // A crashed sOA has recovered once it holds a budget
        // accepted after the crash.
        if (plan.enabled()) {
            for (std::size_t s = 0; s < sr.soas.size(); ++s) {
                if (crash_since[s] < 0)
                    continue;
                if (sr.soas[s]->lastAssignmentAt() >=
                    crash_since[s]) {
                    out.recoverySum += t - crash_since[s];
                    ++out.recoveries;
                    crash_since[s] = -1;
                }
            }
        }

        // Utilization is slot-constant (5-minute telemetry), so the
        // SoA gather — batch util/turbo-watts push plus want-mask
        // rebuild — runs only when the slot rolls over, not every
        // control step.  The traces are generated to cover
        // [0, warmup + duration), so the slot index is always in
        // range; a shorter trace trips the FleetState/TimeSeries
        // out-of-range assert instead of silently replaying the
        // final sample (see TimeSeries::atTime policy).
        const auto slot = static_cast<std::size_t>(t / sim::kSlot);
        if (slot != last_slot) {
            sr.fleet->applySlot(*sr.rack, slot);
            last_slot = slot;
        }

        const bool in_eval = t >= config.warmup;
        if (sr.ingress) {
            // Ingress path (DESIGN.md §12), three phases per step.
            //
            // Phase 1 — serialize: forge this step's storm frames
            // and the legitimate want/stop transitions as wire
            // messages, offering each to the bounded queue.
            // active_mask is updated at *offer* time, which keeps it
            // the documented conservative superset: if a start hint
            // is dropped, the VM still wants next step and re-offers;
            // a stale bit is cleared by the !active branch.
            for (std::size_t s = 0; s < sr.soas.size(); ++s) {
                power::Server &server = sr.rack->server(s);
                auto &soa = *sr.soas[s];
                const auto &trace = sr.traces[s];
                if (sr.storm.enabled()) {
                    sr.storm.generate(
                        static_cast<int>(s), t,
                        [&](const core::wire::Frame &frame) {
                            sr.ingress->offer(frame, t);
                        });
                }
                const std::uint64_t want_mask = sr.fleet->wantMask(s);
                std::uint64_t pending = want_mask | active_mask[s];
                while (pending != 0) {
                    const int v = std::countr_zero(pending);
                    pending &= pending - 1;
                    const auto bit = std::uint64_t{1} << v;
                    const power::GroupId g =
                        sr.groups[s][static_cast<std::size_t>(v)];
                    const bool want = (want_mask & bit) != 0;
                    const bool active = soa.isOverclockActive(g);
                    core::wire::HintHeader hdr;
                    hdr.server = static_cast<int>(s);
                    hdr.vmId = g;
                    hdr.issuedAt = t;
                    if (want && !active) {
                        hdr.seq =
                            sr.seq[s][static_cast<std::size_t>(v)]++;
                        core::OverclockRequest request;
                        request.groupId = g;
                        request.cores =
                            trace.mix[static_cast<std::size_t>(v)]
                                .cores;
                        request.trigger = core::TriggerKind::Metrics;
                        request.duration = config.requestChunk;
                        request.priority = 1;
                        sr.ingress->offer(
                            core::wire::encodeOverclockRequest(
                                hdr, request),
                            t);
                        active_mask[s] |= bit;
                    } else if (!want && active) {
                        hdr.seq =
                            sr.seq[s][static_cast<std::size_t>(v)]++;
                        sr.ingress->offer(
                            core::wire::encodeStopRequest(hdr), t);
                        active_mask[s] &= ~bit;
                    } else if (!active) {
                        active_mask[s] &= ~bit;
                    }

                    if (in_eval && want) {
                        ++out.wantSteps;
                        const auto *group = server.group(g);
                        const power::FreqMHz eff = group != nullptr
                            ? group->effectiveMHz()
                            : power::kTurboMHz;
                        out.perf.add(eff / power::kTurboMHz);
                        if (group != nullptr && group->overclocked())
                            ++out.successSteps;
                    }
                }
            }

            // Phase 2 — one batched drain dispatches the surviving
            // hints into the agents.  The sink bounds-checks the
            // addressed server/group (a forged frame may name
            // anything); hints it cannot place are sink drops.
            sr.ingress->drain(
                t, [&](const core::wire::ParsedHint &hint) {
                    if (hint.server < 0 ||
                        hint.server >=
                            static_cast<int>(sr.soas.size()))
                        return false;
                    const auto &groups =
                        sr.groups[static_cast<std::size_t>(
                            hint.server)];
                    switch (hint.kind) {
                    case core::wire::HintKind::OverclockRequest:
                        if (hint.vmId < 0 ||
                            hint.vmId >=
                                static_cast<std::int32_t>(
                                    groups.size()))
                            return false;
                        sr.soas[static_cast<std::size_t>(
                                    hint.server)]
                            ->requestOverclock(hint.request, t);
                        return true;
                    case core::wire::HintKind::StopRequest:
                        if (hint.vmId < 0 ||
                            hint.vmId >=
                                static_cast<std::int32_t>(
                                    groups.size()))
                            return false;
                        sr.soas[static_cast<std::size_t>(
                                    hint.server)]
                            ->stopOverclock(hint.vmId, t);
                        return true;
                    default:
                        // Metrics/schedule/exhaustion hints have no
                        // consumer in the trace sim (no WI layer);
                        // counted as sink drops, not crashes.
                        return false;
                    }
                });

            // Phase 3 — control ticks run after the drain so every
            // sOA sees this step's surviving hints.
            for (auto &soa : sr.soas)
                soa->tick(t);
        } else
        for (std::size_t s = 0; s < sr.soas.size(); ++s) {
            power::Server &server = sr.rack->server(s);
            auto &soa = *sr.soas[s];
            const auto &trace = sr.traces[s];
            // Only VMs that want to overclock this slot, or that may
            // still hold an active grant, need per-step processing;
            // for everyone else the old per-VM walk was a no-op.
            // active_mask is a conservative superset of the truly
            // active grants (bits are set on request, cleared when a
            // processed VM turns out inactive), so no grant can be
            // missed by the union.
            const std::uint64_t want_mask = sr.fleet->wantMask(s);
            std::uint64_t pending = want_mask | active_mask[s];
            while (pending != 0) {
                const int v = std::countr_zero(pending);
                pending &= pending - 1;
                const auto bit = std::uint64_t{1} << v;
                const power::GroupId g =
                    sr.groups[s][static_cast<std::size_t>(v)];
                const bool want = (want_mask & bit) != 0;
                const bool active = soa.isOverclockActive(g);
                if (want && !active) {
                    core::OverclockRequest request;
                    request.groupId = g;
                    request.cores =
                        trace.mix[static_cast<std::size_t>(v)].cores;
                    request.trigger = core::TriggerKind::Metrics;
                    request.duration = config.requestChunk;
                    request.priority = 1;
                    soa.requestOverclock(request, t);
                    active_mask[s] |= bit;
                } else if (!want && active) {
                    soa.stopOverclock(g, t);
                    active_mask[s] &= ~bit;
                } else if (!active) {
                    active_mask[s] &= ~bit;
                }

                if (in_eval && want) {
                    ++out.wantSteps;
                    const auto *group = server.group(g);
                    const power::FreqMHz eff = group != nullptr
                        ? group->effectiveMHz()
                        : power::kTurboMHz;
                    out.perf.add(eff / power::kTurboMHz);
                    if (group != nullptr && group->overclocked())
                        ++out.successSteps;
                }
            }
            soa.tick(t);
        }
        const std::uint64_t cap_before = sr.manager->stats().capEvents;
        sr.manager->tick(t);

        if (in_eval && plan.enabled()) {
            const std::uint64_t cap_delta =
                sr.manager->stats().capEvents - cap_before;
            if (cap_delta > 0) {
                bool attributed = t <= fault_attribution_until ||
                    plan.goaDown(t);
                for (std::size_t s = 0;
                     !attributed && s < sr.soas.size(); ++s) {
                    attributed = sr.soas[s]->leaseStale(t);
                }
                if (attributed)
                    out.capEventsFaultAttributed += cap_delta;
            }
        }

        if (in_eval) {
            out.rackUtil.add(sr.rack->utilization());
            out.energyJoules += sr.rack->powerWatts().count() * dt_s;
            if (sr.manager->capping()) {
                double penalty = 0.0;
                int affected = 0;
                for (const auto &server : sr.rack->servers()) {
                    const int cores =
                        server->cappedNonOverclockCores();
                    penalty += server->cappingPenalty() * cores;
                    affected += cores;
                }
                if (affected > 0)
                    out.penalty.add(penalty / affected);
            }
        }
    }

    out.capEvents = sr.manager->stats().capEvents - cap_base;
    out.cappedTicks =
        sr.manager->stats().cappedTicks - capped_tick_base;
    out.warnings = sr.manager->stats().warnings - warn_base;
    std::uint64_t requests = 0;
    for (auto &soa : sr.soas)
        requests += soa->stats().requests;
    out.requests = requests - req_base;

    if (plan.enabled()) {
        const core::GoaStats &goa_stats = sr.goa->stats();
        out.faults.telemetryRetries = goa_stats.telemetryRetries;
        out.faults.telemetryDrops = goa_stats.staleProfiles;
        out.faults.budgetDrops = goa_stats.assignmentsDropped;
        out.faults.budgetDelays = goa_stats.assignmentsDelayed;
        out.faults.budgetRejects = goa_stats.assignmentsRejected;
        for (const auto &outage : plan.outages())
            if (outage.start < end)
                ++out.faults.goaOutages;
        for (auto &soa : sr.soas)
            out.staleLeaseTicks += soa->stats().staleLeaseTicks;
    }

    if (sr.ingress) {
        out.ingress.merge(sr.ingress->stats());
        for (auto &soa : sr.soas)
            out.flapDenied += soa->stats().flapDenied;
    }
}

} // namespace

TraceSimResult
runTraceSim(const TraceSimConfig &config)
{
    config.validate();
    const power::PowerModel model(config.hardware);
    core::SoaConfig soa_cfg =
        core::SoaConfig::forPolicy(config.policy);
    soa_cfg.controlPeriod = config.controlStep;
    // Trace studies stress the power path; keep the lifetime budget
    // generous enough that peaks fit (the paper's operators size the
    // budget to the workloads' requirements).
    soa_cfg.overclockFraction = 0.25;
    soa_cfg.templateWindow = config.templateWindow;
    if (config.ingress.enabled)
        soa_cfg.flapHoldoff = config.ingress.flapHoldoff;

    const std::size_t n_racks =
        static_cast<std::size_t>(std::max(0, config.racks));
    const int threads = std::min<int>(
        sim::ThreadPool::resolveThreads(config.threads),
        std::max<int>(1, config.racks));
    sim::ThreadPool pool(threads);

    std::vector<RackOutcome> outcomes(n_racks);

    // Chunked work-stealing over contiguous rack ranges; each rack
    // is built, simulated and *freed* inside its chunk, so memory
    // stays O(racks in flight), not O(fleet) — what makes the 7.1k
    // rack runs of EXPERIMENTS.md feasible.  Outcomes live in
    // per-rack slots merged in rack order below, so neither the
    // chunk grain nor the thread count can affect results.
    const std::size_t grain = std::clamp<std::size_t>(
        n_racks / (4 * static_cast<std::size_t>(threads)), 1, 16);
    // Wall-clock here measures *our own* speed (gen/sim seconds in
    // the result), never simulation time: soclint:allow(DET-001)
    using Clock = std::chrono::steady_clock;
    pool.parallelForChunked(
        n_racks, grain, [&](std::size_t begin, std::size_t chunk_end) {
            for (std::size_t r = begin; r < chunk_end; ++r) {
                SimRack rack;
                const auto gen_start = Clock::now();
                buildRack(rack, static_cast<int>(r), config, model,
                          soa_cfg);
                const auto sim_start = Clock::now();
                outcomes[r].genSeconds =
                    std::chrono::duration<double>(sim_start -
                                                  gen_start)
                        .count();
                simulateRack(rack, outcomes[r], config);
                outcomes[r].simSeconds =
                    std::chrono::duration<double>(Clock::now() -
                                                  sim_start)
                        .count();
            }
        });

    // Merge in rack order: deterministic regardless of scheduling.
    TraceSimResult result;
    sim::OnlineStats penalty_stats;
    sim::OnlineStats rack_util_stats;
    sim::OnlineStats perf_stats;
    sim::Tick recovery_sum = 0;
    for (const auto &out : outcomes) {
        result.capEvents += out.capEvents;
        result.cappedTicks += out.cappedTicks;
        result.warnings += out.warnings;
        result.requests += out.requests;
        result.wantSteps += out.wantSteps;
        result.successSteps += out.successSteps;
        result.energyJoules += out.energyJoules;
        penalty_stats.merge(out.penalty);
        rack_util_stats.merge(out.rackUtil);
        perf_stats.merge(out.perf);
        result.faults.merge(out.faults);
        result.capEventsFaultAttributed +=
            out.capEventsFaultAttributed;
        result.staleLeaseTicks += out.staleLeaseTicks;
        result.recoveries += out.recoveries;
        recovery_sum += out.recoverySum;
        result.ingress.merge(out.ingress);
        result.flapDenied += out.flapDenied;
        result.genSeconds += out.genSeconds;
        result.simSeconds += out.simSeconds;
    }
    result.meanRecoveryS = result.recoveries > 0
        ? static_cast<double>(recovery_sum) /
            static_cast<double>(result.recoveries) / sim::kSecond
        : 0.0;
    result.successRate = result.wantSteps > 0
        ? static_cast<double>(result.successSteps) /
            static_cast<double>(result.wantSteps)
        : 1.0;
    result.cappingPenalty = penalty_stats.mean();
    result.normPerformance =
        perf_stats.count() > 0 ? perf_stats.mean() : 1.0;
    result.meanRackUtil = rack_util_stats.mean();
    return result;
}

std::vector<TraceSimResult>
runTraceSimBatch(const std::vector<TraceSimConfig> &configs,
                 int threads)
{
    std::vector<TraceSimResult> results(configs.size());
    sim::ThreadPool pool(std::min<int>(
        sim::ThreadPool::resolveThreads(threads),
        static_cast<int>(std::max<std::size_t>(1, configs.size()))));
    // Grain 1: configs are few and heavyweight (whole runs), so the
    // atomic cursor load-balances them individually; each result
    // lands in its own slot, keeping output order-independent.
    pool.parallelForChunked(
        configs.size(), 1, [&](std::size_t begin, std::size_t end) {
            for (std::size_t i = begin; i < end; ++i) {
                TraceSimConfig cfg = configs[i];
                cfg.threads = 1; // the batch pool is the parallelism
                results[i] = runTraceSim(cfg);
            }
        });
    return results;
}

} // namespace cluster
} // namespace soc
